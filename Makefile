# Tier-1 verification: what CI runs and what every PR must keep green.
#
#   make tier1     vet + build + race-enabled tests + short shape test + doccheck
#   make shape     the full Figure 4/5 shape-regression suite (slower)
#   make bench     core benchmarks (-benchmem) + refresh BENCH_core.json

GO ?= go

.PHONY: tier1 vet build test shape shape-full bench bench-enforce doccheck timeseries soak e2e fleet faultclasses

tier1: vet build test shape doccheck

vet:
	$(GO) vet ./...

# Every package must carry a package-level doc comment; see tools/doccheck.
doccheck:
	$(GO) run ./tools/doccheck

build:
	$(GO) build ./...

# -race guards the experiment sweep's worker pool; -short keeps the
# simulation-heavy shape assertions at their scaled-down fast variant.
test:
	$(GO) test -race -short ./...

# The short shape-regression test: a scaled-down Figure 4/5 sweep with
# coarse golden-shape assertions (seconds, not minutes).
shape:
	$(GO) test -short -run TestFig45Shape ./internal/experiments

# The full steady-state shape suite (a little over a minute single-core).
shape-full:
	$(GO) test -run TestFig45Shape -timeout 30m ./internal/experiments

# Benchmarks for the hot packages plus the tracked core baseline:
# killi-bench rewrites BENCH_core.json's "current" entry (ns/event,
# allocs/event, single-run wall-clock, serial sweep wall-clock, cold/warm
# cached sweep, K=1..8 shard-scaling curve) while preserving "baseline".
# `make bench-enforce` additionally fails on a >15% regression against the
# committed baseline (2x on the warm-cache sweep, 1.5x/2x throughput
# floors on campaign dies/s and warm-request RPS) or on a zero-valued
# gated baseline field — the same gate CI runs at K=1.
bench:
	$(GO) test -bench=. -benchmem ./internal/engine ./internal/stats
	$(GO) run ./cmd/killi-bench -o BENCH_core.json

bench-enforce:
	$(GO) run ./cmd/killi-bench -o BENCH_core.json -enforce

# The resident-service load harness (what CI's simd job runs): concurrent
# clients against the job API, asserting 429-only backpressure, identical
# results for identical requests, and a sub-10ms best warm round-trip.
soak:
	$(GO) test -run 'TestServerSoak' -short -v ./internal/simserver

# Lifecycle end-to-end tests: SIGINT mid-sweep strands nothing and exits
# nonzero; SIGTERM drains the daemon cleanly.
e2e:
	$(GO) test -v -timeout 10m ./cmd/killi-sim ./cmd/killi-simd

# The CI fleet smoke, locally: a 256-die Monte Carlo campaign over two
# schemes, writing the Vmin CDF and yield-vs-voltage CSV.
fleet:
	$(GO) run ./cmd/killi-fleet -dies 256 -schemes killi-1:64,msecc \
		-requests 500 -format csv -o campaign_256.csv
	$(GO) run ./cmd/killi-fleet -dies 256 -schemes killi-1:64,msecc \
		-requests 500 -format table

# DFH misclassification under non-persistent fault classes: the four
# measured tables in EXPERIMENTS.md § Non-persistent faults (persistent
# control, intermittent mix with and without scrubbing, aggressive
# intermittent+aging+transient mix), each against the ground-truth oracle.
faultclasses:
	$(GO) run ./cmd/killi-sim -misclass -workloads xsbench,fft,nekbone \
		-requests 4000 -warmup 2 -classes persistent
	$(GO) run ./cmd/killi-sim -misclass -workloads xsbench,fft,nekbone \
		-requests 4000 -warmup 2 -classes "mixed:i=0.5@0.3"
	$(GO) run ./cmd/killi-sim -misclass -workloads xsbench,fft,nekbone \
		-requests 4000 -warmup 2 -classes "mixed:i=0.5@0.3" -scrub-kernels 1
	$(GO) run ./cmd/killi-sim -misclass -workloads xsbench,fft,nekbone \
		-requests 4000 -warmup 2 -classes "mixed:i=0.3@0.5,a=0.1@0.05,t=2e-08"

# DFH training-dynamics time series for one memory-bound and one
# compute-bound workload (the EXPERIMENTS.md "Training dynamics" data; CI
# uploads timeseries/ as a workflow artifact).
timeseries:
	mkdir -p timeseries
	$(GO) run ./cmd/killi-sim -timeseries timeseries/xsbench.jsonl \
		-trace-events timeseries/xsbench-trace.json \
		-obs-workload xsbench -obs-scheme killi-1:64 -requests 4000 -warmup 0
	$(GO) run ./cmd/killi-sim -timeseries timeseries/nekbone.jsonl \
		-trace-events timeseries/nekbone-trace.json \
		-obs-workload nekbone -obs-scheme killi-1:64 -requests 4000 -warmup 0
