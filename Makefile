# Tier-1 verification: what CI runs and what every PR must keep green.
#
#   make tier1     vet + build + race-enabled tests + the short shape test
#   make shape     the full Figure 4/5 shape-regression suite (slower)
#   make bench     one benchmark per paper figure/table

GO ?= go

.PHONY: tier1 vet build test shape shape-full bench

tier1: vet build test shape

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -race guards the experiment sweep's worker pool; -short keeps the
# simulation-heavy shape assertions at their scaled-down fast variant.
test:
	$(GO) test -race -short ./...

# The short shape-regression test: a scaled-down Figure 4/5 sweep with
# coarse golden-shape assertions (seconds, not minutes).
shape:
	$(GO) test -short -run TestFig45Shape ./internal/experiments

# The full steady-state shape suite (a little over a minute single-core).
shape-full:
	$(GO) test -run TestFig45Shape -timeout 30m ./internal/experiments

bench:
	$(GO) test -bench=. -benchmem
