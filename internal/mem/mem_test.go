package mem

import "testing"

func TestUnloadedLatency(t *testing.T) {
	m := New(Config{LatencyCycles: 300, GapCycles: 4})
	if done := m.Access(100); done != 400 {
		t.Fatalf("done = %d, want 400", done)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	m := New(Config{LatencyCycles: 300, GapCycles: 4})
	// Burst of back-to-back requests at cycle 0: completions spaced by
	// the gap.
	var prev uint64
	for i := 0; i < 10; i++ {
		done := m.Access(0)
		want := uint64(i)*4 + 300
		if done != want {
			t.Fatalf("access %d: done=%d want %d", i, done, want)
		}
		if done <= prev && i > 0 {
			t.Fatal("completions not strictly increasing")
		}
		prev = done
	}
}

func TestIdleGapsDoNotAccumulate(t *testing.T) {
	m := New(Config{LatencyCycles: 100, GapCycles: 10})
	m.Access(0)
	// A request far in the future sees no queueing.
	if done := m.Access(1000); done != 1100 {
		t.Fatalf("done = %d, want 1100", done)
	}
}

func TestAccessCount(t *testing.T) {
	m := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		m.Access(uint64(i))
	}
	if m.Accesses() != 5 {
		t.Fatalf("Accesses = %d", m.Accesses())
	}
	m.Reset()
	if m.Accesses() != 0 {
		t.Fatal("Reset did not clear counter")
	}
	if done := m.Access(0); done != DefaultConfig().LatencyCycles {
		t.Fatalf("after reset done=%d", done)
	}
}

func TestZeroConfigFallsBackToDefault(t *testing.T) {
	m := New(Config{})
	if done := m.Access(0); done != DefaultConfig().LatencyCycles {
		t.Fatalf("zero config: done=%d", done)
	}
}

func TestWriteChannelDoesNotBlockReads(t *testing.T) {
	m := New(Config{LatencyCycles: 300, GapCycles: 4})
	// A large posted-write burst must not delay a subsequent read.
	for i := 0; i < 1000; i++ {
		m.AccessWrite(0)
	}
	if done := m.Access(0); done != 300 {
		t.Fatalf("read behind write burst: done=%d, want 300", done)
	}
	if m.Writes() != 1000 || m.Accesses() != 1 {
		t.Fatalf("counters: writes=%d reads=%d", m.Writes(), m.Accesses())
	}
}

func TestWriteChannelSerializesItself(t *testing.T) {
	m := New(Config{LatencyCycles: 100, GapCycles: 10})
	first := m.AccessWrite(0)
	second := m.AccessWrite(0)
	if second != first+10 {
		t.Fatalf("write drain times %d, %d", first, second)
	}
}
