// Package mem models the main-memory backend of the simulated GPU: a fixed
// access latency plus a bandwidth limit expressed as a minimum gap between
// request completions.
//
// Killi's performance story plays out against this backend: error-induced
// cache misses and ECC-cache-contention misses each cost a DRAM round trip,
// and the bandwidth queue makes memory-bound workloads feel contention
// super-linearly — which is why XSBENCH/FFT-like traces show the largest
// degradation at the smallest ECC cache size (Figures 4–5).
package mem

// Config describes the DRAM backend.
type Config struct {
	// LatencyCycles is the unloaded access latency in core cycles.
	LatencyCycles uint64
	// GapCycles is the minimum spacing between completions (the inverse
	// of peak bandwidth in lines per cycle).
	GapCycles uint64
}

// DefaultConfig gives a 1 GHz-core-relative DRAM: 300-cycle latency,
// one 64-byte line per 4 cycles peak.
func DefaultConfig() Config {
	return Config{LatencyCycles: 300, GapCycles: 4}
}

// Memory serializes accesses through a bandwidth queue. Reads and writes
// drain through separate channels: GPU memory controllers buffer
// write-through traffic and prioritize demand reads, so a burst of stores
// must not serialize the read path. The zero value is unusable; construct
// with New.
type Memory struct {
	cfg           Config
	nextFree      uint64
	writeNextFree uint64
	accesses      uint64
	writes        uint64
}

// New returns a memory with the given configuration.
func New(cfg Config) *Memory {
	if cfg.LatencyCycles == 0 {
		cfg = DefaultConfig()
	}
	return &Memory{cfg: cfg}
}

// Access models one line transfer starting at cycle now and returns its
// completion cycle: the unloaded latency plus any queueing delay imposed by
// the bandwidth limit.
func (m *Memory) Access(now uint64) (done uint64) {
	start := now
	if m.nextFree > start {
		start = m.nextFree
	}
	m.nextFree = start + m.cfg.GapCycles
	m.accesses++
	return start + m.cfg.LatencyCycles
}

// AccessWrite models a posted (fire-and-forget) write-through store: it
// occupies the write channel and returns the drain cycle, which nothing on
// the read path waits for.
func (m *Memory) AccessWrite(now uint64) (done uint64) {
	start := now
	if m.writeNextFree > start {
		start = m.writeNextFree
	}
	m.writeNextFree = start + m.cfg.GapCycles
	m.writes++
	return start + m.cfg.LatencyCycles
}

// Accesses returns the total read access count (the DRAM demand-traffic
// statistic).
func (m *Memory) Accesses() uint64 { return m.accesses }

// Writes returns the total posted-write count.
func (m *Memory) Writes() uint64 { return m.writes }

// Reset clears queue state and counters.
func (m *Memory) Reset() {
	m.nextFree = 0
	m.writeNextFree = 0
	m.accesses = 0
	m.writes = 0
}
