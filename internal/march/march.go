// Package march implements Memory Built-In Self-Test (MBIST) March
// algorithms against the bit-level SRAM array — the very machinery the
// paper's baselines depend on and Killi eliminates.
//
// A March test is a sequence of elements, each applying read/write
// operations with an expected value to every cell in address order. The
// classic March C- detects all stuck-at, transition, and coupling faults
// with 10 operations per cell:
//
//	⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
//
// Against this simulator's stuck-at fault model, both polarities of every
// cell are read back, so the test provably finds every active persistent
// fault — including faults that demand-access parity/ECC would see only
// after the data happens to unmask them. That completeness is exactly what
// pre-characterized schemes buy with the transition-time stall that
// internal/dvfs charges them.
package march

import (
	"killi/internal/bitvec"
	"killi/internal/sram"
)

// Result is the fault bitmap one MBIST pass produces.
type Result struct {
	// FaultyBits[line] lists the bit positions that failed the test.
	FaultyBits [][]int
	// Ops is the total number of line operations performed (reads +
	// writes), the quantity the dvfs stall model charges for.
	Ops uint64
}

// FaultCount returns the number of faulty bits found in a line.
func (r Result) FaultCount(line int) int { return len(r.FaultyBits[line]) }

// Lines returns the number of lines tested.
func (r Result) Lines() int { return len(r.FaultyBits) }

// element is one March element: an optional read-verify against expect,
// then an optional write of value. Ascending/descending order is
// irrelevant for stuck-at faults but retained for op accounting.
type element struct {
	read       bool
	expect     uint // 0 or 1 (all cells)
	write      bool
	value      uint
	descending bool
}

// marchCMinus is the 10N March C- sequence.
var marchCMinus = []element{
	{write: true, value: 0},
	{read: true, expect: 0, write: true, value: 1},
	{read: true, expect: 1, write: true, value: 0},
	{read: true, expect: 0, write: true, value: 1, descending: true},
	{read: true, expect: 1, write: true, value: 0, descending: true},
	{read: true, expect: 0},
}

// matsPlus is the 5N MATS+ sequence (detects stuck-at faults only — the
// cheapest useful pass).
var matsPlus = []element{
	{write: true, value: 0},
	{read: true, expect: 0, write: true, value: 1},
	{read: true, expect: 1, write: true, value: 0, descending: true},
}

// line-wide constant payloads.
func fill(v uint) bitvec.Line {
	var l bitvec.Line
	if v == 1 {
		for w := range l {
			l[w] = ^uint64(0)
		}
	}
	return l
}

// run applies a March sequence to lines [0, n) of the array, recording
// every mismatching bit. The array's stored contents are destroyed (MBIST
// is destructive; schemes run it on an invalidated cache).
func run(arr *sram.Array, n int, seq []element) Result {
	res := Result{FaultyBits: make([][]int, n)}
	faulty := make([]map[int]bool, n)
	for _, el := range seq {
		for i := 0; i < n; i++ {
			line := i
			if el.descending {
				line = n - 1 - i
			}
			if el.read {
				got := arr.Read(line)
				want := fill(el.expect)
				for _, bit := range got.DiffBits(want) {
					if faulty[line] == nil {
						faulty[line] = map[int]bool{}
					}
					faulty[line][bit] = true
				}
				res.Ops++
			}
			if el.write {
				arr.Write(line, fill(el.value))
				res.Ops++
			}
		}
	}
	for line, set := range faulty {
		for bit := range set {
			res.FaultyBits[line] = append(res.FaultyBits[line], bit)
		}
	}
	return res
}

// CMinus runs the full March C- pass over the first n lines.
func CMinus(arr *sram.Array, n int) Result { return run(arr, n, marchCMinus) }

// MATSPlus runs the cheaper MATS+ pass over the first n lines.
func MATSPlus(arr *sram.Array, n int) Result { return run(arr, n, matsPlus) }
