package march

import (
	"sort"
	"testing"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/sram"
	"killi/internal/xrand"
)

func newArray(t *testing.T, lines int, v float64, seed uint64) *sram.Array {
	t.Helper()
	fm := faultmodel.NewMap(xrand.New(seed), faultmodel.Default(), lines, bitvec.LineBits, 0.55, 1.0)
	return sram.New(lines, fm, v)
}

func TestMarchMatchesOracle(t *testing.T) {
	// Both March C- and MATS+ must find exactly the active stuck-at
	// faults the simulator's oracle knows about — the completeness
	// guarantee pre-characterized schemes pay for.
	for _, algo := range []struct {
		name string
		run  func(*sram.Array, int) Result
	}{
		{"march-c-", CMinus},
		{"mats+", MATSPlus},
	} {
		t.Run(algo.name, func(t *testing.T) {
			arr := newArray(t, 800, 0.575, 7)
			res := algo.run(arr, 800)
			for i := 0; i < 800; i++ {
				if res.FaultCount(i) != arr.ActiveFaultCount(i) {
					t.Fatalf("line %d: march found %d faults, oracle has %d",
						i, res.FaultCount(i), arr.ActiveFaultCount(i))
				}
			}
		})
	}
}

func TestMarchFindsSpecificStuckBits(t *testing.T) {
	faults := [][]faultmodel.Fault{
		nil,
		{{Bit: 5, StuckAt: 0}, {Bit: 300, StuckAt: 1}},
		{{Bit: 511, StuckAt: 1}},
	}
	fm := faultmodel.NewMapExplicit(faultmodel.Default(), bitvec.LineBits, 1.0, faults)
	arr := sram.New(3, fm, 0.6)
	res := CMinus(arr, 3)
	if res.FaultCount(0) != 0 {
		t.Fatalf("clean line reported %v", res.FaultyBits[0])
	}
	got := append([]int(nil), res.FaultyBits[1]...)
	sort.Ints(got)
	if len(got) != 2 || got[0] != 5 || got[1] != 300 {
		t.Fatalf("line 1 faults %v, want [5 300]", got)
	}
	if res.FaultCount(2) != 1 || res.FaultyBits[2][0] != 511 {
		t.Fatalf("line 2 faults %v", res.FaultyBits[2])
	}
}

func TestMarchOpCounts(t *testing.T) {
	arr := newArray(t, 100, 1.0, 1)
	// March C-: 10 ops per line; MATS+: 5.
	if res := CMinus(arr, 100); res.Ops != 1000 {
		t.Fatalf("March C- ops = %d, want 1000", res.Ops)
	}
	if res := MATSPlus(arr, 100); res.Ops != 500 {
		t.Fatalf("MATS+ ops = %d, want 500", res.Ops)
	}
}

func TestMarchResultAccessors(t *testing.T) {
	arr := newArray(t, 10, 1.0, 2)
	res := MATSPlus(arr, 10)
	if res.Lines() != 10 {
		t.Fatalf("Lines = %d", res.Lines())
	}
}
