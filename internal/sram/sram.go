// Package sram models a bit-level SRAM data array operating under low
// voltage.
//
// The array stores true (intended) line payloads and applies its sampled
// stuck-at fault population when a line is read, so:
//
//   - masked faults arise naturally: a stuck-at-v cell holding data bit v
//     corrupts nothing until the data changes (§5.6.2 of the paper);
//   - faults are persistent by default: the same cells corrupt every access
//     at a given voltage (§3);
//   - raising the voltage deactivates the higher-severity faults
//     (monotonicity), which is how Killi reclaims disabled lines.
//
// SetFaultClasses layers the faultmodel taxonomy on top: with a non-zero
// ClassSpec, each sampled fault's class (persistent / intermittent / aging)
// decides whether it manifests on a given access, evaluated from a
// deterministic per-(seed, line, cell, epoch) hash against the array's
// current fault epoch (SetFaultEpoch, driven by the simulator clock). The
// zero-spec path is byte-identical to the legacy persistent model.
//
// Soft errors (transient bit flips) are injected by flipping the stored
// payload itself; unlike LV faults they disappear on the next write.
// Transient fault-class strikes use the same mechanism.
//
// Per the paper's dual-rail design (§2.4), the tag array runs at nominal
// voltage, so only the data array modeled here experiences LV faults.
package sram

import (
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
)

// Array is a low-voltage SRAM data array of fixed-size 64-byte lines.
// Construct with New or NewResolved.
type Array struct {
	lines   []bitvec.Line
	faults  *faultmodel.Map
	voltage float64
	// active is the voltage-pre-resolved view of the fault map: per-line
	// active fault sets in one packed buffer, possibly shared read-only
	// with other Arrays built over the same map (NewResolved). Rebuilt on
	// SetVoltage; never mutated.
	active *faultmodel.Resolved
	// injected holds lifetime (aging) faults added after construction;
	// they are active at every voltage and survive voltage changes. Kept
	// apart from the (shared) resolved view.
	injected [][]faultmodel.Fault
	// mapWays/mapStride/mapOffset describe a strided view into the fault
	// map for arrays that hold every mapStride-th group of mapWays lines
	// (an address-interleaved cache bank over a whole-cache fault map).
	// Local line i looks up global map line
	// ((i/ways)*stride + offset)*ways + i%ways; payloads stay local.
	// NewResolved sets the identity view (stride 1, offset 0).
	mapWays   int
	mapStride int
	mapOffset int
	// classed fault evaluation (SetFaultClasses): with classed set, Read
	// consults each sampled fault's class and, for intermittent/aging
	// faults, a deterministic per-(seed, line, cell, epoch) activation
	// hash against faultEpoch (SetFaultEpoch). classed is false for the
	// legacy pure-persistent model, keeping that path branch-predictable.
	classed    bool
	spec       faultmodel.ClassSpec
	classSeed  uint64
	faultEpoch uint64
}

// mapIndex translates a local line index to its fault-map line.
func (a *Array) mapIndex(i int) int {
	if a.mapStride == 1 && a.mapOffset == 0 {
		return i
	}
	return ((i/a.mapWays)*a.mapStride+a.mapOffset)*a.mapWays + i%a.mapWays
}

// New returns an array of n lines using the given persistent fault map,
// initially operating at voltage vNorm. The fault map must cover at least n
// lines of 512 bits.
func New(n int, faults *faultmodel.Map, vNorm float64) *Array {
	return NewResolved(n, faults, faults.Resolve(vNorm))
}

// NewResolved returns an array of n lines over a fault map whose active
// set was already resolved at the operating voltage — the resolved view is
// shared read-only, so building many arrays over one map (a scheme sweep)
// resolves the map once instead of once per array. The view must come from
// the same map.
func NewResolved(n int, faults *faultmodel.Map, resolved *faultmodel.Resolved) *Array {
	if faults.Lines() < n {
		panic(fmt.Sprintf("sram: fault map covers %d lines, need %d", faults.Lines(), n))
	}
	if faults.BitsPerLine() != bitvec.LineBits {
		panic("sram: fault map is not 512 bits per line")
	}
	if resolved.Lines() < n {
		panic(fmt.Sprintf("sram: resolved view covers %d lines, need %d", resolved.Lines(), n))
	}
	return &Array{
		lines:     make([]bitvec.Line, n),
		faults:    faults,
		voltage:   resolved.Voltage(),
		active:    resolved,
		mapWays:   1,
		mapStride: 1,
	}
}

// NewResolvedView returns an n-line array that maps its lines onto a
// strided slice of a larger shared fault map: local lines are consumed in
// groups of ways, and group g (a cache set) corresponds to map group
// g*stride + offset. This is how an address-interleaved L2 bank — which
// owns every stride-th set of the cache — keeps the per-line fault
// population of the whole-cache map without copying or re-deriving it, so
// a sharded simulation sees bit-identical faults to a monolithic one.
func NewResolvedView(n int, faults *faultmodel.Map, resolved *faultmodel.Resolved, ways, stride, offset int) *Array {
	if ways < 1 || stride < 1 || offset < 0 || offset >= stride {
		panic(fmt.Sprintf("sram: bad view geometry ways=%d stride=%d offset=%d", ways, stride, offset))
	}
	if n%ways != 0 {
		panic(fmt.Sprintf("sram: %d lines not a multiple of %d ways", n, ways))
	}
	need := ((n/ways-1)*stride + offset + 1) * ways
	if faults.Lines() < need {
		panic(fmt.Sprintf("sram: fault map covers %d lines, view needs %d", faults.Lines(), need))
	}
	if faults.BitsPerLine() != bitvec.LineBits {
		panic("sram: fault map is not 512 bits per line")
	}
	if resolved.Lines() < need {
		panic(fmt.Sprintf("sram: resolved view covers %d lines, view needs %d", resolved.Lines(), need))
	}
	return &Array{
		lines:     make([]bitvec.Line, n),
		faults:    faults,
		voltage:   resolved.Voltage(),
		active:    resolved,
		mapWays:   ways,
		mapStride: stride,
		mapOffset: offset,
	}
}

// SetFaultClasses attaches a fault-class spec to the array: sampled faults
// are labelled by faultmodel.ClassOf over (seed, map line, cell) and
// non-persistent ones manifest per fault epoch via the deterministic
// activation hash. A zero spec restores the legacy persistent model.
// Classing is keyed by global fault-map line indices, so strided bank
// views over one shared map agree with a monolithic array bit-for-bit.
func (a *Array) SetFaultClasses(spec faultmodel.ClassSpec, classSeed uint64) {
	a.spec = spec
	a.classSeed = classSeed
	a.classed = !spec.IsZero()
}

// SetFaultEpoch sets the fault epoch used to evaluate intermittent and
// aging faults. The simulator advances it from its clock (cycle / epoch
// length) before touching the array, so activation is a pure function of
// simulated time — never of host scheduling.
func (a *Array) SetFaultEpoch(epoch uint64) { a.faultEpoch = epoch }

// faultActive reports whether a sampled fault manifests on an access right
// now, given its class and the current fault epoch.
func (a *Array) faultActive(mapLine, bit int) bool {
	switch faultmodel.ClassOf(a.classSeed, mapLine, bit, a.spec) {
	case faultmodel.Intermittent:
		return faultmodel.ActiveInEpoch(a.classSeed, mapLine, bit, a.faultEpoch, a.spec.IntermittentProb)
	case faultmodel.Aging:
		return faultmodel.AgingActiveInEpoch(a.classSeed, mapLine, bit, a.faultEpoch, a.spec)
	default:
		return true
	}
}

// Lines returns the number of lines in the array.
func (a *Array) Lines() int { return len(a.lines) }

// Voltage returns the current normalized operating voltage.
func (a *Array) Voltage() float64 { return a.voltage }

// SetVoltage changes the operating voltage, recomputing which persistent
// faults are active. Stored data is preserved (the true payloads; whether
// they read back correctly depends on the new fault set). The array's
// previous resolved view is replaced, never mutated, so views shared with
// other arrays are unaffected.
func (a *Array) SetVoltage(vNorm float64) {
	a.voltage = vNorm
	a.active = a.faults.Resolve(vNorm)
}

// Write stores data into line i. The true payload is retained; corruption
// is applied on read, which keeps fault application idempotent and lets
// masked faults unmask when the data changes.
func (a *Array) Write(i int, data bitvec.Line) {
	a.lines[i] = data
}

// Read returns the line as the failing cells present it: every active
// stuck-at fault overrides its bit — filtered, under a fault-class spec,
// to the faults manifesting in the current fault epoch. Lifetime
// (injected) faults apply after the voltage-dependent population, matching
// their injection order.
func (a *Array) Read(i int) bitvec.Line {
	out := a.lines[i]
	mi := a.mapIndex(i)
	if !a.classed {
		for _, f := range a.active.LineFaults(mi) {
			out.SetBit(f.Bit, f.StuckAt)
		}
	} else {
		for _, f := range a.active.LineFaults(mi) {
			if a.faultActive(mi, f.Bit) {
				out.SetBit(f.Bit, f.StuckAt)
			}
		}
	}
	if a.injected != nil {
		for _, f := range a.injected[i] {
			out.SetBit(f.Bit, f.StuckAt)
		}
	}
	return out
}

// ReadTrue returns the stored payload without fault application — the
// value a fault-free array would return. Simulation harnesses use it to
// check for silent data corruption; hardware has no such port.
func (a *Array) ReadTrue(i int) bitvec.Line { return a.lines[i] }

// ActiveFaultCount returns the number of faults in line i active at the
// current voltage — and, under a fault-class spec, in the current fault
// epoch. This is what an instantaneous test (MBIST-style characterization,
// FLAIR's fill-time probe) observes, so intermittent faults that happen to
// be dormant are missed exactly the way real profiling misses them; use
// CapableFaultCount for ground truth.
func (a *Array) ActiveFaultCount(i int) int {
	mi := a.mapIndex(i)
	n := 0
	if !a.classed {
		n = a.active.LineCount(mi)
	} else {
		for _, f := range a.active.LineFaults(mi) {
			if a.faultActive(mi, f.Bit) {
				n++
			}
		}
	}
	if a.injected != nil {
		n += len(a.injected[i])
	}
	return n
}

// CapableFaultCount returns the ground-truth fault count of line i at the
// current voltage: every fault that can corrupt data in some epoch —
// persistent and intermittent faults always, aging faults once their
// activation ramp is non-zero at the current epoch — plus injected
// lifetime faults. The DFH misclassification oracle compares classifier
// state against this; hardware has no such port.
func (a *Array) CapableFaultCount(i int) int {
	mi := a.mapIndex(i)
	n := 0
	if !a.classed {
		n = a.active.LineCount(mi)
	} else {
		for _, f := range a.active.LineFaults(mi) {
			if faultmodel.ClassOf(a.classSeed, mi, f.Bit, a.spec) != faultmodel.Aging ||
				a.spec.AgingProb(a.faultEpoch) > 0 {
				n++
			}
		}
	}
	if a.injected != nil {
		n += len(a.injected[i])
	}
	return n
}

// UnmaskedFaultCount returns the number of active faults in line i whose
// stuck value currently differs from the stored data — the faults that are
// observable right now.
func (a *Array) UnmaskedFaultCount(i int) int {
	mi := a.mapIndex(i)
	n := 0
	for _, f := range a.active.LineFaults(mi) {
		if a.classed && !a.faultActive(mi, f.Bit) {
			continue
		}
		if a.lines[i].Bit(f.Bit) != f.StuckAt {
			n++
		}
	}
	if a.injected != nil {
		for _, f := range a.injected[i] {
			if a.lines[i].Bit(f.Bit) != f.StuckAt {
				n++
			}
		}
	}
	return n
}

// InjectSoftError flips bit within the stored payload of line i, modeling a
// transient particle strike. Unlike a persistent fault it is erased by the
// next Write.
func (a *Array) InjectSoftError(i, bit int) {
	a.lines[i].FlipBit(bit)
}

// InjectPersistentFault adds a new always-active stuck-at fault to line i,
// modeling an aging (wear-out) failure that appears during the chip's
// lifetime. The paper notes Killi "responds to transient, ageing, and
// high-voltage errors the same way": the new fault surfaces as a parity
// mismatch on some later access and the line relearns its DFH state.
func (a *Array) InjectPersistentFault(i, bit int, stuckAt uint) {
	if a.injected == nil {
		a.injected = make([][]faultmodel.Fault, len(a.lines))
	}
	a.injected[i] = append(a.injected[i], faultmodel.Fault{Bit: bit, StuckAt: stuckAt & 1})
}
