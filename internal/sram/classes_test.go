package sram

import (
	"testing"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/xrand"
)

// TestClassedZeroSpecIdentity pins the bit-identity contract: attaching a
// zero ClassSpec (or never attaching one) leaves every read, fault count,
// and capable count exactly what the legacy persistent model produces.
func TestClassedZeroSpecIdentity(t *testing.T) {
	legacy := newTestArray(t, 9, 1500, 0.55)
	classed := newTestArray(t, 9, 1500, 0.55)
	classed.SetFaultClasses(faultmodel.ClassSpec{}, faultmodel.ClassSeed(9))
	classed.SetFaultEpoch(17)
	r := xrand.New(5)
	for i := 0; i < legacy.Lines(); i++ {
		l := randomLine(r)
		legacy.Write(i, l)
		classed.Write(i, l)
		if legacy.Read(i) != classed.Read(i) {
			t.Fatalf("line %d: zero-spec classed read differs from legacy", i)
		}
		if legacy.ActiveFaultCount(i) != classed.ActiveFaultCount(i) {
			t.Fatalf("line %d: zero-spec active count differs", i)
		}
		if classed.CapableFaultCount(i) != classed.ActiveFaultCount(i) {
			t.Fatalf("line %d: zero-spec capable != active", i)
		}
	}
}

// TestClassedPersistentSubsetBlinks checks the intermittent behaviour end
// to end: under a mixed spec the corrupted-bit set per line is always a
// subset of the persistent model's, varies with the fault epoch, and the
// persistent-classed faults never disappear.
func TestClassedIntermittentBlinks(t *testing.T) {
	const lines = 2000
	spec := faultmodel.ClassSpec{IntermittentFrac: 0.5, IntermittentProb: 0.5}
	seed := faultmodel.ClassSeed(9)
	legacy := newTestArray(t, 9, lines, 0.55)
	a := newTestArray(t, 9, lines, 0.55)
	a.SetFaultClasses(spec, seed)
	r := xrand.New(6)
	blinkOn, blinkOff := false, false
	for i := 0; i < lines; i++ {
		l := randomLine(r)
		legacy.Write(i, l)
		a.Write(i, l)
		legacyDiff := map[int]bool{}
		for _, b := range legacy.Read(i).DiffBits(l) {
			legacyDiff[b] = true
		}
		var prev []int
		for e := uint64(0); e < 8; e++ {
			a.SetFaultEpoch(e)
			diff := a.Read(i).DiffBits(l)
			for _, b := range diff {
				if !legacyDiff[b] {
					t.Fatalf("line %d epoch %d: bit %d corrupt under classes but not legacy", i, e, b)
				}
			}
			if e > 0 {
				if len(diff) > len(prev) {
					blinkOn = true
				}
				if len(diff) < len(prev) {
					blinkOff = true
				}
			}
			prev = diff
		}
		if got, want := a.CapableFaultCount(i), legacy.ActiveFaultCount(i); got != want {
			t.Fatalf("line %d: capable count %d, legacy active %d", i, got, want)
		}
	}
	if !blinkOn || !blinkOff {
		t.Fatalf("no intermittent blinking observed (on=%v off=%v) across %d lines × 8 epochs", blinkOn, blinkOff, lines)
	}
}

// TestClassedAgingRamp checks aging semantics at the array layer: at epoch
// 0 aging faults are invisible to both reads and CapableFaultCount; once
// the ramp saturates they corrupt like persistent faults and count as
// capable.
func TestClassedAgingRamp(t *testing.T) {
	const lines = 2000
	spec := faultmodel.ClassSpec{AgingFrac: 1, AgingRamp: 0.01}
	legacy := newTestArray(t, 9, lines, 0.55)
	a := newTestArray(t, 9, lines, 0.55)
	a.SetFaultClasses(spec, faultmodel.ClassSeed(9))
	r := xrand.New(7)
	for i := 0; i < lines; i++ {
		l := randomLine(r)
		legacy.Write(i, l)
		a.Write(i, l)
		a.SetFaultEpoch(0)
		if got := a.Read(i); got != l {
			t.Fatalf("line %d: aging fault active on a fresh device", i)
		}
		if got := a.CapableFaultCount(i); got != 0 {
			t.Fatalf("line %d: fresh device reports %d capable faults", i, got)
		}
		a.SetFaultEpoch(200) // ramp saturated: min(1, 0.01*200) = 1
		if got, want := a.Read(i), legacy.Read(i); got != want {
			t.Fatalf("line %d: saturated aging read differs from persistent", i)
		}
		if got, want := a.CapableFaultCount(i), legacy.ActiveFaultCount(i); got != want {
			t.Fatalf("line %d: saturated capable %d, want %d", i, got, want)
		}
	}
}

// TestClassedViewMatchesMonolithic pins that classing is keyed by global
// fault-map line indices: a strided bank view over a shared map reads the
// same bits as the corresponding lines of a monolithic classed array.
func TestClassedViewMatchesMonolithic(t *testing.T) {
	const total, banks = 512, 4
	fm := faultmodel.NewMap(xrand.New(21), faultmodel.Default(), total, bitvec.LineBits, 0.5, 1.0)
	res := fm.Resolve(0.55)
	spec := faultmodel.ClassSpec{IntermittentFrac: 0.6, IntermittentProb: 0.4}
	seed := faultmodel.ClassSeed(21)

	mono := NewResolved(total, fm, res)
	mono.SetFaultClasses(spec, seed)
	views := make([]*Array, banks)
	for b := range views {
		// ways=1: view line i maps to global line i*banks+b.
		views[b] = NewResolvedView(total/banks, fm, res, 1, banks, b)
		views[b].SetFaultClasses(spec, seed)
	}
	r := xrand.New(22)
	for e := uint64(0); e < 4; e++ {
		mono.SetFaultEpoch(e)
		for _, v := range views {
			v.SetFaultEpoch(e)
		}
		for g := 0; g < total; g++ {
			l := randomLine(r)
			mono.Write(g, l)
			b, i := g%banks, g/banks
			views[b].Write(i, l)
			if mono.Read(g) != views[b].Read(i) {
				t.Fatalf("epoch %d line %d: bank view read differs from monolithic", e, g)
			}
			if mono.CapableFaultCount(g) != views[b].CapableFaultCount(i) {
				t.Fatalf("epoch %d line %d: capable counts differ", e, g)
			}
		}
	}
}
