package sram

import (
	"testing"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/xrand"
)

func newTestArray(t *testing.T, seed uint64, lines int, v float64) *Array {
	t.Helper()
	fm := faultmodel.NewMap(xrand.New(seed), faultmodel.Default(), lines, bitvec.LineBits, 0.5, 1.0)
	return New(lines, fm, v)
}

func randomLine(r *xrand.Rand) bitvec.Line {
	var l bitvec.Line
	for w := range l {
		l[w] = r.Uint64()
	}
	return l
}

func TestFaultFreeRoundTrip(t *testing.T) {
	a := newTestArray(t, 1, 100, 1.0) // nominal voltage: no active faults
	r := xrand.New(2)
	for i := 0; i < a.Lines(); i++ {
		l := randomLine(r)
		a.Write(i, l)
		if got := a.Read(i); got != l {
			t.Fatalf("line %d: read != write at nominal voltage", i)
		}
	}
}

func TestStuckAtCorruption(t *testing.T) {
	a := newTestArray(t, 3, 2000, 0.55)
	r := xrand.New(4)
	sawCorruption := false
	for i := 0; i < a.Lines(); i++ {
		l := randomLine(r)
		a.Write(i, l)
		got := a.Read(i)
		diff := got.DiffBits(l)
		if len(diff) != a.UnmaskedFaultCount(i) {
			t.Fatalf("line %d: %d corrupted bits, %d unmasked faults", i, len(diff), a.UnmaskedFaultCount(i))
		}
		if len(diff) > a.ActiveFaultCount(i) {
			t.Fatalf("line %d: more corrupted bits than active faults", i)
		}
		if len(diff) > 0 {
			sawCorruption = true
		}
	}
	if !sawCorruption {
		t.Fatal("no corruption at 0.55×VDD across 2000 lines; fault injection broken")
	}
}

func TestFaultPersistence(t *testing.T) {
	// The same cells must corrupt on every read: two reads of the same
	// data agree, and rewriting identical data reproduces corruption.
	a := newTestArray(t, 5, 500, 0.55)
	r := xrand.New(6)
	for i := 0; i < a.Lines(); i++ {
		l := randomLine(r)
		a.Write(i, l)
		first := a.Read(i)
		second := a.Read(i)
		if first != second {
			t.Fatalf("line %d: reads not deterministic", i)
		}
		a.Write(i, l)
		if a.Read(i) != first {
			t.Fatalf("line %d: rewrite changed fault behaviour", i)
		}
	}
}

func TestMaskedFaultUnmasksOnDataChange(t *testing.T) {
	// Find a line with at least one active fault; write data matching the
	// stuck value (masked), then invert it (unmasked).
	a := newTestArray(t, 7, 5000, 0.55)
	found := false
	for i := 0; i < a.Lines() && !found; i++ {
		if a.ActiveFaultCount(i) == 0 {
			continue
		}
		found = true
		f := a.faults.ActiveFaults(i, a.Voltage())[0]
		var l bitvec.Line
		l.SetBit(f.Bit, f.StuckAt) // masked
		a.Write(i, l)
		if a.Read(i).Bit(f.Bit) != f.StuckAt {
			t.Fatal("masked fault corrupted matching data")
		}
		if a.UnmaskedFaultCount(i) > a.ActiveFaultCount(i)-1+1 {
			t.Fatal("unmasked accounting wrong")
		}
		l.SetBit(f.Bit, f.StuckAt^1) // unmasked
		a.Write(i, l)
		if a.Read(i).Bit(f.Bit) != f.StuckAt {
			t.Fatal("stuck-at cell returned written value")
		}
	}
	if !found {
		t.Fatal("no faulty line found at 0.55×VDD")
	}
}

func TestVoltageRaiseDeactivatesFaults(t *testing.T) {
	a := newTestArray(t, 8, 3000, 0.55)
	lowCounts := make([]int, a.Lines())
	for i := range lowCounts {
		lowCounts[i] = a.ActiveFaultCount(i)
	}
	a.SetVoltage(0.9)
	for i := 0; i < a.Lines(); i++ {
		if a.ActiveFaultCount(i) > lowCounts[i] {
			t.Fatalf("line %d gained faults when voltage rose", i)
		}
	}
	// At 0.9×VDD essentially everything is fault-free.
	faulty := 0
	for i := 0; i < a.Lines(); i++ {
		if a.ActiveFaultCount(i) > 0 {
			faulty++
		}
	}
	if faulty > 1 {
		t.Fatalf("%d faulty lines at 0.9×VDD", faulty)
	}
}

func TestVoltageChangePreservesData(t *testing.T) {
	a := newTestArray(t, 9, 100, 0.55)
	r := xrand.New(10)
	want := make([]bitvec.Line, a.Lines())
	for i := range want {
		want[i] = randomLine(r)
		a.Write(i, want[i])
	}
	a.SetVoltage(1.0)
	for i := range want {
		if a.Read(i) != want[i] {
			t.Fatalf("line %d: data lost across voltage change", i)
		}
	}
}

func TestSoftErrorTransient(t *testing.T) {
	a := newTestArray(t, 11, 10, 1.0)
	var l bitvec.Line
	a.Write(0, l)
	a.InjectSoftError(0, 37)
	if a.Read(0).Bit(37) != 1 {
		t.Fatal("soft error not visible")
	}
	a.Write(0, l) // rewrite clears the transient
	if a.Read(0).Bit(37) != 0 {
		t.Fatal("soft error survived a write")
	}
}

func TestSoftErrorOnStuckCellInvisible(t *testing.T) {
	// A soft error landing on a stuck-at cell does not change what reads
	// back — the stuck value dominates.
	a := newTestArray(t, 12, 5000, 0.55)
	for i := 0; i < a.Lines(); i++ {
		if a.ActiveFaultCount(i) == 0 {
			continue
		}
		f := a.faults.ActiveFaults(i, a.Voltage())[0]
		var l bitvec.Line
		a.Write(i, l)
		before := a.Read(i).Bit(f.Bit)
		a.InjectSoftError(i, f.Bit)
		if a.Read(i).Bit(f.Bit) != before {
			t.Fatal("stuck cell's read value changed after soft error")
		}
		return
	}
	t.Fatal("no faulty line found")
}

func TestReadTrueBypassesFaults(t *testing.T) {
	a := newTestArray(t, 13, 2000, 0.5)
	r := xrand.New(14)
	for i := 0; i < a.Lines(); i++ {
		l := randomLine(r)
		a.Write(i, l)
		if a.ReadTrue(i) != l {
			t.Fatalf("line %d: ReadTrue altered data", i)
		}
	}
}

func TestNewPanics(t *testing.T) {
	fm := faultmodel.NewMap(xrand.New(1), faultmodel.Default(), 10, bitvec.LineBits, 0.6, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("undersized fault map did not panic")
		}
	}()
	New(11, fm, 0.6)
}

func TestNewPanicsWrongWidth(t *testing.T) {
	fm := faultmodel.NewMap(xrand.New(1), faultmodel.Default(), 10, 256, 0.6, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width fault map did not panic")
		}
	}()
	New(10, fm, 0.6)
}

func BenchmarkReadFaulty(b *testing.B) {
	fm := faultmodel.NewMap(xrand.New(1), faultmodel.Default(), 1024, bitvec.LineBits, 0.575, 1.0)
	a := New(1024, fm, 0.575)
	l := randomLine(xrand.New(2))
	for i := 0; i < a.Lines(); i++ {
		a.Write(i, l)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Read(i & 1023)
	}
}

func TestInjectedPersistentFaultSurvivesVoltageChange(t *testing.T) {
	a := newTestArray(t, 20, 10, 1.0)
	var l bitvec.Line
	a.Write(0, l)
	a.InjectPersistentFault(0, 33, 1)
	if a.Read(0).Bit(33) != 1 {
		t.Fatal("aging fault not visible")
	}
	// Unlike a soft error, a rewrite does not clear it.
	a.Write(0, l)
	if a.Read(0).Bit(33) != 1 {
		t.Fatal("aging fault vanished after rewrite")
	}
	// And unlike an LV fault, a voltage change does not deactivate it.
	a.SetVoltage(0.6)
	if a.Read(0).Bit(33) != 1 {
		t.Fatal("aging fault vanished after voltage change")
	}
	a.SetVoltage(1.0)
	if a.ActiveFaultCount(0) < 1 {
		t.Fatal("aging fault missing from active count")
	}
}

// TestResolvedViewMatchesMonolithic checks the strided bank view: an array
// holding every stride-th group of ways lines must read exactly what the
// monolithic array reads at the corresponding global lines — same faults,
// same masking — at every voltage tried.
func TestResolvedViewMatchesMonolithic(t *testing.T) {
	const (
		ways   = 4
		stride = 8
		groups = 16 // global groups; each view holds groups/stride of them
		lines  = ways * groups
	)
	fm := faultmodel.NewMap(xrand.New(9), faultmodel.Default(), lines, bitvec.LineBits, 0.5, 1.0)
	for _, v := range []float64{0.55, 0.70, 1.0} {
		resolved := fm.Resolve(v)
		whole := NewResolved(lines, fm, resolved)
		r := xrand.New(11)
		payload := make([]bitvec.Line, lines)
		for i := range payload {
			payload[i] = randomLine(r)
			whole.Write(i, payload[i])
		}
		for offset := 0; offset < stride; offset++ {
			local := lines / stride
			view := NewResolvedView(local, fm, resolved, ways, stride, offset)
			for i := 0; i < local; i++ {
				g := ((i/ways)*stride+offset)*ways + i%ways
				view.Write(i, payload[g])
				if got, want := view.Read(i), whole.Read(g); got != want {
					t.Fatalf("v=%.2f offset=%d: view line %d != whole line %d", v, offset, i, g)
				}
				if got, want := view.ActiveFaultCount(i), whole.ActiveFaultCount(g); got != want {
					t.Fatalf("v=%.2f offset=%d line %d: fault count %d, want %d", v, offset, i, got, want)
				}
				if got, want := view.UnmaskedFaultCount(i), whole.UnmaskedFaultCount(g); got != want {
					t.Fatalf("v=%.2f offset=%d line %d: unmasked %d, want %d", v, offset, i, got, want)
				}
			}
		}
	}
}

func TestResolvedViewRejectsShortMap(t *testing.T) {
	fm := faultmodel.NewMap(xrand.New(1), faultmodel.Default(), 16, bitvec.LineBits, 0.5, 1.0)
	defer func() {
		if recover() == nil {
			t.Fatal("view needing lines beyond the map should panic")
		}
	}()
	// offset 3 of stride 4 with 8 local lines of 4 ways needs map line
	// ((8/4-1)*4+3+1)*4 = 32 > 16.
	NewResolvedView(8, fm, fm.Resolve(0.6), 4, 4, 3)
}
