package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleCollector builds a small but fully-featured run: a reset, training
// transitions, two complete epochs, a partial final epoch, and a second
// reset (voltage transition) mid-stream.
func sampleCollector() *Collector {
	c := NewCollector()
	c.OnReset(Reset{Cycle: 0, Voltage: 0.625, Lines: 8})
	c.OnTransition(Transition{Cycle: 5, Line: 0, From: StateInitial, To: StateStable0})
	c.OnTransition(Transition{Cycle: 9, Line: 1, From: StateInitial, To: StateStable1})
	c.OnEpoch(Sample{
		Epoch: 0, Cycle: 16,
		L2Accesses: 40, L2Misses: 12, ErrorMisses: 3,
		Instructions: 4000, StallCycles: 7,
		DisabledLines: 0, ECCOccupancy: 1, ECCEntries: 2,
		ECCAccesses: 9, ECCContentionEvictions: 1,
	})
	c.OnTransition(Transition{Cycle: 20, Line: 1, From: StateStable1, To: StateDisabled})
	c.OnEpoch(Sample{Epoch: 1, Cycle: 32, L2Accesses: 10, Instructions: 1000, DisabledLines: 1})
	c.OnReset(Reset{Cycle: 40, Voltage: 0.55, Lines: 8})
	c.OnTransition(Transition{Cycle: 44, Line: 2, From: StateInitial, To: StateStable0})
	c.OnEpoch(Sample{Epoch: 2, Cycle: 45, L2Accesses: 3})
	return c
}

func TestJSONLRoundTrip(t *testing.T) {
	c := sampleCollector()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ParseJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if !reflect.DeepEqual(got.Resets(), c.Resets()) {
		t.Errorf("resets round-trip mismatch:\n got %+v\nwant %+v", got.Resets(), c.Resets())
	}
	if !reflect.DeepEqual(got.Transitions(), c.Transitions()) {
		t.Errorf("transitions round-trip mismatch:\n got %+v\nwant %+v", got.Transitions(), c.Transitions())
	}
	if !reflect.DeepEqual(got.Epochs(), c.Epochs()) {
		t.Errorf("epochs round-trip mismatch:\n got %+v\nwant %+v", got.Epochs(), c.Epochs())
	}
	if got.Populations() != c.Populations() {
		t.Errorf("population round-trip mismatch: got %v want %v", got.Populations(), c.Populations())
	}
}

func TestJSONLChronologicalOrder(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleCollector().WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	var last uint64
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec struct {
			Type  string `json:"type"`
			Cycle uint64 `json:"cycle"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i+1, err)
		}
		if rec.Cycle < last {
			t.Fatalf("line %d: cycle %d precedes previous cycle %d", i+1, rec.Cycle, last)
		}
		last = rec.Cycle
	}
}

func TestJSONLZeroEpochSurvives(t *testing.T) {
	// Epoch index 0 and an all-zero DFH vector must round-trip even though
	// the record shape leans on omitempty: the pointer fields keep them.
	c := NewCollector()
	c.OnEpoch(Sample{Epoch: 0, Cycle: 16})
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	s := buf.String()
	if !strings.Contains(s, `"epoch":0`) || !strings.Contains(s, `"dfh":{`) {
		t.Fatalf("zero epoch index or DFH vector dropped by omitempty: %s", s)
	}
	got, err := ParseJSONL(strings.NewReader(s))
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if len(got.Epochs()) != 1 || got.Epochs()[0].Epoch != 0 {
		t.Fatalf("epoch record did not survive the round trip: %+v", got.Epochs())
	}
}

func TestParseJSONLRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"unknown type":   `{"type":"bogus","cycle":1}`,
		"unknown state":  `{"type":"transition","cycle":1,"line":0,"from":"initial","to":"wat"}`,
		"epoch sans dfh": `{"type":"epoch","cycle":1,"epoch":0}`,
		"invalid json":   `{`,
	}
	for name, line := range cases {
		if _, err := ParseJSONL(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%s: ParseJSONL accepted %q", name, line)
		}
	}
}

func TestWriteTraceEvents(t *testing.T) {
	c := sampleCollector()
	var buf bytes.Buffer
	if err := c.WriteTraceEvents(&buf); err != nil {
		t.Fatalf("WriteTraceEvents: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    uint64         `json:"ts"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range tf.TraceEvents {
		counts[ev.Phase]++
		if ev.Phase == "C" && ev.Name == "dfh population" {
			for _, k := range []string{"stable0", "initial", "stable1", "disabled"} {
				if _, ok := ev.Args[k]; !ok {
					t.Errorf("dfh population counter at ts=%d missing %q", ev.TS, k)
				}
			}
		}
	}
	// 2 resets + 4 transitions as instants; 3 epochs × 3 counter tracks.
	if counts["i"] != 6 {
		t.Errorf("instant events = %d, want 6", counts["i"])
	}
	if counts["C"] != 9 {
		t.Errorf("counter events = %d, want 9", counts["C"])
	}
	if counts["M"] != 1 {
		t.Errorf("metadata events = %d, want 1", counts["M"])
	}
}

func TestTrainingCurve(t *testing.T) {
	c := sampleCollector()
	curve := c.TrainingCurve()
	if curve == "" {
		t.Fatal("TrainingCurve returned empty for a collector with epochs")
	}
	for _, want := range []string{"stable0", "initial", "stable1", "disabled", "DFH population"} {
		if !strings.Contains(curve, want) {
			t.Errorf("training curve missing %q:\n%s", want, curve)
		}
	}
	if (&Collector{}).TrainingCurve() != "" {
		t.Error("TrainingCurve on an empty collector should return \"\"")
	}
}
