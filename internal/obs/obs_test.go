package obs

import "testing"

func TestEpochIndexBoundaries(t *testing.T) {
	const E = 4096
	cases := []struct {
		cycle uint64
		want  int
	}{
		{0, 0},           // cycle 0 belongs to epoch 0
		{1, 0},           // first cycle of epoch 0
		{E - 1, 0},       // interior
		{E, 0},           // a boundary sample closes the epoch it ends
		{E + 1, 1},       // first cycle of the next epoch
		{2 * E, 1},       // next boundary
		{2*E + 1, 2},     // and the epoch after it
		{10*E + E/2, 10}, // mid-epoch partial flush
	}
	for _, c := range cases {
		if got := EpochIndex(c.cycle, E); got != c.want {
			t.Errorf("EpochIndex(%d, %d) = %d, want %d", c.cycle, E, got, c.want)
		}
	}
	if got := EpochIndex(123, 0); got != 0 {
		t.Errorf("EpochIndex with epochCycles=0 = %d, want 0", got)
	}
}

func TestStateNameRoundTrip(t *testing.T) {
	want := [NumStates]string{"stable0", "initial", "stable1", "disabled"}
	for s := uint8(0); s < NumStates; s++ {
		name := StateName(s)
		if name != want[s] {
			t.Errorf("StateName(%d) = %q, want %q", s, name, want[s])
		}
		if back := stateIndex(name); back != s {
			t.Errorf("stateIndex(%q) = %d, want %d", name, back, s)
		}
	}
	if StateName(NumStates) != "unknown" {
		t.Error("StateName of an out-of-range index should be \"unknown\"")
	}
	if stateIndex("bogus") != NumStates {
		t.Error("stateIndex of an unknown name should be NumStates")
	}
}

func TestCollectorPopulationAccounting(t *testing.T) {
	c := NewCollector()
	c.OnReset(Reset{Cycle: 0, Voltage: 0.625, Lines: 100})
	if c.Lines() != 100 {
		t.Fatalf("Lines() = %d, want 100", c.Lines())
	}
	if p := c.Populations(); p != [NumStates]int{0, 100, 0, 0} {
		t.Fatalf("post-reset populations %v, want all-Initial", p)
	}

	// Classify 3 lines clean, 2 with one fault, 1 disabled via Stable1.
	for i := 0; i < 3; i++ {
		c.OnTransition(Transition{Cycle: 10, Line: i, From: StateInitial, To: StateStable0})
	}
	for i := 3; i < 5; i++ {
		c.OnTransition(Transition{Cycle: 20, Line: i, From: StateInitial, To: StateStable1})
	}
	c.OnTransition(Transition{Cycle: 30, Line: 4, From: StateStable1, To: StateDisabled})
	if p := c.Populations(); p != [NumStates]int{3, 95, 1, 1} {
		t.Fatalf("populations %v, want [3 95 1 1]", p)
	}

	// An epoch sample snapshots the vector at that moment.
	c.OnEpoch(Sample{Epoch: 0, Cycle: 32})
	c.OnTransition(Transition{Cycle: 40, Line: 5, From: StateInitial, To: StateStable0})
	c.OnEpoch(Sample{Epoch: 1, Cycle: 64})
	eps := c.Epochs()
	if len(eps) != 2 {
		t.Fatalf("collected %d epochs, want 2", len(eps))
	}
	if eps[0].DFH != [NumStates]int{3, 95, 1, 1} {
		t.Errorf("epoch 0 snapshot %v, want [3 95 1 1]", eps[0].DFH)
	}
	if eps[1].DFH != [NumStates]int{4, 94, 1, 1} {
		t.Errorf("epoch 1 snapshot %v, want [4 94 1 1]", eps[1].DFH)
	}

	// A second reset rebuilds the all-Initial vector.
	c.OnReset(Reset{Cycle: 70, Voltage: 0.55, Lines: 100})
	if p := c.Populations(); p != [NumStates]int{0, 100, 0, 0} {
		t.Fatalf("post-second-reset populations %v, want all-Initial", p)
	}
	if len(c.Resets()) != 2 || len(c.Transitions()) != 7 {
		t.Fatalf("recorded %d resets / %d transitions, want 2 / 7",
			len(c.Resets()), len(c.Transitions()))
	}
}

func TestSampleMPKI(t *testing.T) {
	s := Sample{L2Misses: 50, Instructions: 10000}
	if got := s.MPKI(); got != 5 {
		t.Errorf("MPKI = %v, want 5", got)
	}
	if got := (Sample{L2Misses: 7}).MPKI(); got != 0 {
		t.Errorf("MPKI with 0 instructions = %v, want 0", got)
	}
}
