// Package obs is the simulator's observability layer: cheap epoch-bucketed
// time series of the quantities behind the paper's temporal story (DFH
// state populations, ECC-cache pressure, disabled lines, interval L2 MPKI
// and stall cycles) plus a structured event log of every classification
// transition, exportable as JSONL or Chrome trace_event JSON.
//
// The simulator reports these through the Observer interface, which the
// gpu package holds nil by default: with no observer attached the
// simulation path is bit-identical and allocation-free, exactly as before
// this package existed. With an observer attached the results are still
// bit-identical — instrumentation only reads simulator state — which the
// golden-digest tests in internal/experiments pin.
//
// Collector is the standard Observer implementation; cmd/killi-sim wires
// it behind the -timeseries and -trace-events flags. The package also
// provides the expvar/HTTP metrics endpoint behind killi-sim's
// -metrics-addr flag for watching long sweeps live.
package obs

// DFH state indices, mirroring the killi package's two-bit encoding. The
// obs package cannot import killi (killi reports through protection.Host,
// whose package imports obs), so the values are duplicated here and pinned
// by a cross-package test in internal/killi.
const (
	StateStable0  = 0 // b'00: classified fault-free
	StateInitial  = 1 // b'01: unknown, in training
	StateStable1  = 2 // b'10: one known fault
	StateDisabled = 3 // b'11: >=2 faults, line disabled
	NumStates     = 4
)

var stateNames = [NumStates]string{"stable0", "initial", "stable1", "disabled"}

// StateName returns the stable lowercase name of a DFH state index, used
// by both export formats ("stable0", "initial", "stable1", "disabled").
func StateName(s uint8) string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "unknown"
}

// stateIndex inverts StateName; it returns NumStates for unknown names.
func stateIndex(name string) uint8 {
	for i, n := range stateNames {
		if n == name {
			return uint8(i)
		}
	}
	return NumStates
}

// Transition is one DFH classification event: the line at a dense L2 line
// ID moved between states at a cycle (unknown→clean, unknown→1-fault,
// →disabled, scrub reclaims, post-training relearns).
type Transition struct {
	Cycle uint64
	Line  int
	From  uint8
	To    uint8
}

// Reset is a DFH reset: power-on or a voltage transition returned every
// line (Lines of them) to the Initial state.
type Reset struct {
	Cycle   uint64
	Voltage float64
	Lines   int
}

// Sample is the machine-level snapshot the host takes at an epoch
// boundary. All throughput fields are deltas over the epoch, not
// cumulative totals; occupancy-style fields are point-in-time values.
type Sample struct {
	// Epoch is the bucket index (see EpochIndex); Cycle is the cycle the
	// sample was taken at — the epoch's right edge, or earlier for the
	// final partial epoch of a run.
	Epoch int
	Cycle uint64

	// L2 activity over the epoch. L2Misses includes error-induced misses,
	// matching gpu.Result; ErrorMisses breaks that component out.
	L2Accesses   uint64
	L2Misses     uint64
	ErrorMisses  uint64
	Instructions uint64
	StallCycles  uint64

	// Point-in-time state.
	DisabledLines int
	ECCOccupancy  int
	ECCEntries    int

	// ECC cache activity over the epoch (zero for schemes without one).
	ECCAccesses            uint64
	ECCContentionEvictions uint64
}

// MPKI returns the epoch's interval L2 MPKI (0 when no instructions
// retired in the epoch).
func (s Sample) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L2Misses) * 1000 / float64(s.Instructions)
}

// Observer receives instrumentation callbacks from the simulator. All
// methods are invoked from the simulation goroutine, in cycle order;
// implementations need no locking unless they share state elsewhere.
type Observer interface {
	// OnReset reports a DFH reset (power-on, SetVoltage) that returned
	// every line to Initial.
	OnReset(Reset)
	// OnTransition reports one line's DFH state change.
	OnTransition(Transition)
	// OnEpoch reports the host's machine-level sample for one epoch.
	OnEpoch(Sample)
}

// EpochIndex maps an absolute cycle to its epoch bucket for a given epoch
// length: bucket k covers cycles (k*epochCycles, (k+1)*epochCycles], so
// the sample a ticker takes exactly at a boundary cycle belongs to the
// epoch it closes. Cycle 0 maps to epoch 0.
func EpochIndex(cycle, epochCycles uint64) int {
	if cycle == 0 || epochCycles == 0 {
		return 0
	}
	return int((cycle - 1) / epochCycles)
}

// EpochRecord is one collected epoch: the host's Sample plus the DFH
// population snapshot the Collector maintains from transitions.
type EpochRecord struct {
	Sample
	// DFH holds the line count per state at the sample cycle, indexed by
	// StateStable0..StateDisabled.
	DFH [NumStates]int
}

// Collector accumulates everything an Observer sees, in memory, for later
// export. The zero value is ready to use; construct with NewCollector for
// symmetry with the rest of the package.
//
// Population accounting: a Reset sets the population vector to
// all-Initial; each Transition moves one line between states. The
// populations therefore track the scheme's DFH state exactly without the
// collector ever probing 32K lines.
type Collector struct {
	lines       int
	pop         [NumStates]int
	resets      []Reset
	transitions []Transition
	epochs      []EpochRecord
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// OnReset implements Observer.
func (c *Collector) OnReset(r Reset) {
	c.lines = r.Lines
	c.pop = [NumStates]int{}
	c.pop[StateInitial] = r.Lines
	c.resets = append(c.resets, r)
}

// OnTransition implements Observer.
func (c *Collector) OnTransition(t Transition) {
	if int(t.From) < NumStates {
		c.pop[t.From]--
	}
	if int(t.To) < NumStates {
		c.pop[t.To]++
	}
	c.transitions = append(c.transitions, t)
}

// OnEpoch implements Observer.
func (c *Collector) OnEpoch(s Sample) {
	c.epochs = append(c.epochs, EpochRecord{Sample: s, DFH: c.pop})
}

// Lines returns the line count of the most recent reset (0 before any).
func (c *Collector) Lines() int { return c.lines }

// Populations returns the current DFH population vector.
func (c *Collector) Populations() [NumStates]int { return c.pop }

// Resets returns the recorded DFH resets in cycle order.
func (c *Collector) Resets() []Reset { return c.resets }

// Transitions returns the recorded transitions in cycle order.
func (c *Collector) Transitions() []Transition { return c.transitions }

// Epochs returns the collected epoch records in cycle order.
func (c *Collector) Epochs() []EpochRecord { return c.epochs }
