package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Metrics publishes live sweep progress over HTTP for long-running
// invocations: an expvar-style JSON document at /metrics (plus the
// process-wide expvar page at /debug/vars) with the task counters a
// dashboard or a curl loop can poll while a sweep runs.
//
// The vars live on the Metrics value rather than in the global expvar
// registry, so repeated constructions (tests, multiple sweeps in one
// process) never collide on expvar.Publish's panic-on-duplicate.
type Metrics struct {
	start      time.Time
	tasksTotal expvar.Int
	tasksDone  expvar.Int
	vars       *expvar.Map
}

// NewMetrics returns a Metrics with zeroed counters.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now(), vars: new(expvar.Map).Init()}
	m.vars.Set("sweep_tasks_total", &m.tasksTotal)
	m.vars.Set("sweep_tasks_done", &m.tasksDone)
	m.vars.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	m.vars.Set("sweep_progress", expvar.Func(func() any {
		total := m.tasksTotal.Value()
		if total == 0 {
			return 0.0
		}
		return float64(m.tasksDone.Value()) / float64(total)
	}))
	return m
}

// TaskDone records one completed sweep task; it has the signature of
// experiments.Config.Progress and is safe for concurrent use (expvar.Int
// is atomic).
func (m *Metrics) TaskDone(done, total int) {
	m.tasksTotal.Set(int64(total))
	m.tasksDone.Set(int64(done))
}

// Handler serves the metrics document: "/metrics" (and "/") render the
// Metrics vars as a JSON object; "/debug/vars" serves the standard expvar
// page for process-wide vars (memstats, cmdline).
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.vars.String())
	}
	mux.HandleFunc("/", serve)
	mux.HandleFunc("/metrics", serve)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Serve starts the HTTP endpoint on addr (e.g. "localhost:8060"; a ":0"
// port picks a free one) and returns the bound address. The server runs on
// a background goroutine for the life of the process — sweep tools exit
// when done, so there is no graceful-shutdown dance.
func (m *Metrics) Serve(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: m.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}
