package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Metrics publishes live sweep progress over HTTP for long-running
// invocations: an expvar-style JSON document at /metrics (plus the
// process-wide expvar page at /debug/vars) with the task counters a
// dashboard or a curl loop can poll while a sweep runs.
//
// The vars live on the Metrics value rather than in the global expvar
// registry, so repeated constructions (tests, multiple sweeps in one
// process) never collide on expvar.Publish's panic-on-duplicate.
type Metrics struct {
	start      time.Time
	tasksTotal expvar.Int
	tasksDone  expvar.Int
	vars       *expvar.Map

	mu  sync.Mutex
	srv *http.Server
}

// NewMetrics returns a Metrics with zeroed counters.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now(), vars: new(expvar.Map).Init()}
	m.vars.Set("sweep_tasks_total", &m.tasksTotal)
	m.vars.Set("sweep_tasks_done", &m.tasksDone)
	m.vars.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	m.vars.Set("sweep_progress", expvar.Func(func() any {
		total := m.tasksTotal.Value()
		if total == 0 {
			return 0.0
		}
		return float64(m.tasksDone.Value()) / float64(total)
	}))
	return m
}

// TaskDone records one completed sweep task; it has the signature of
// experiments.Config.Progress and is safe for concurrent use (expvar.Int
// is atomic).
func (m *Metrics) TaskDone(done, total int) {
	m.tasksTotal.Set(int64(total))
	m.tasksDone.Set(int64(done))
}

// Handler serves the metrics document: "/metrics" (and "/") render the
// Metrics vars as a JSON object; "/debug/vars" serves the standard expvar
// page for process-wide vars (memstats, cmdline).
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.vars.String())
	}
	mux.HandleFunc("/", serve)
	mux.HandleFunc("/metrics", serve)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Set publishes an additional var in the /metrics document under name —
// the hook long-running hosts (killi-simd) use to add their own gauges and
// counters (queue depth, jobs served) next to the sweep-progress vars.
func (m *Metrics) Set(name string, v expvar.Var) { m.vars.Set(name, v) }

// Serve starts the HTTP endpoint on addr (e.g. "localhost:8060"; a ":0"
// port picks a free one) and returns the bound address. The server runs on
// a background goroutine until Close; a Metrics serves at most one address
// at a time.
func (m *Metrics) Serve(addr string) (net.Addr, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.srv != nil {
		return nil, fmt.Errorf("obs: Metrics is already serving")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: m.Handler()}
	m.srv = srv
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Close stops the metrics endpoint, releasing its listener and closing any
// active connections. It is a no-op on a Metrics that never served (or has
// already been closed), so hosts can defer it unconditionally; after Close
// the Metrics may Serve again on a fresh address.
func (m *Metrics) Close() error {
	m.mu.Lock()
	srv := m.srv
	m.srv = nil
	m.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
