package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"killi/internal/asciiplot"
)

// jsonRecord is the single JSONL record shape: Type selects which fields
// are meaningful ("reset", "transition", "epoch"). One shape for all three
// keeps parsing trivial for downstream tools (jq, pandas.read_json).
type jsonRecord struct {
	Type  string `json:"type"`
	Cycle uint64 `json:"cycle"`

	// reset
	Voltage float64 `json:"voltage,omitempty"`
	Lines   int     `json:"lines,omitempty"`

	// transition
	Line int    `json:"line,omitempty"`
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`

	// epoch
	Epoch                  *int     `json:"epoch,omitempty"`
	DFH                    *dfhJSON `json:"dfh,omitempty"`
	L2Accesses             uint64   `json:"l2_accesses,omitempty"`
	L2Misses               uint64   `json:"l2_misses,omitempty"`
	ErrorMisses            uint64   `json:"error_misses,omitempty"`
	Instructions           uint64   `json:"instructions,omitempty"`
	MPKI                   float64  `json:"mpki,omitempty"`
	StallCycles            uint64   `json:"stall_cycles,omitempty"`
	DisabledLines          int      `json:"disabled_lines,omitempty"`
	ECCOccupancy           int      `json:"ecc_occupancy,omitempty"`
	ECCEntries             int      `json:"ecc_entries,omitempty"`
	ECCAccesses            uint64   `json:"ecc_accesses,omitempty"`
	ECCContentionEvictions uint64   `json:"ecc_contention_evictions,omitempty"`
}

// dfhJSON renders the population vector with stable field order.
type dfhJSON struct {
	Stable0  int `json:"stable0"`
	Initial  int `json:"initial"`
	Stable1  int `json:"stable1"`
	Disabled int `json:"disabled"`
}

func popToJSON(p [NumStates]int) *dfhJSON {
	return &dfhJSON{Stable0: p[StateStable0], Initial: p[StateInitial],
		Stable1: p[StateStable1], Disabled: p[StateDisabled]}
}

func (d *dfhJSON) pop() [NumStates]int {
	var p [NumStates]int
	p[StateStable0], p[StateInitial] = d.Stable0, d.Initial
	p[StateStable1], p[StateDisabled] = d.Stable1, d.Disabled
	return p
}

// WriteJSONL streams every recorded event as one JSON object per line, in
// cycle order; records sharing a cycle appear as reset, then transitions,
// then the epoch sample (a boundary sample closes the epoch that the
// same-cycle transitions belong to). The output is deterministic for a
// deterministic run, so committed artifacts diff cleanly across PRs.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	ri, ti, ei := 0, 0, 0
	for ri < len(c.resets) || ti < len(c.transitions) || ei < len(c.epochs) {
		var rec jsonRecord
		switch {
		case ri < len(c.resets) &&
			(ti >= len(c.transitions) || c.resets[ri].Cycle <= c.transitions[ti].Cycle) &&
			(ei >= len(c.epochs) || c.resets[ri].Cycle <= c.epochs[ei].Cycle):
			r := c.resets[ri]
			ri++
			rec = jsonRecord{Type: "reset", Cycle: r.Cycle, Voltage: r.Voltage, Lines: r.Lines}
		case ti < len(c.transitions) &&
			(ei >= len(c.epochs) || c.transitions[ti].Cycle <= c.epochs[ei].Cycle):
			t := c.transitions[ti]
			ti++
			rec = jsonRecord{Type: "transition", Cycle: t.Cycle, Line: t.Line,
				From: StateName(t.From), To: StateName(t.To)}
		default:
			e := c.epochs[ei]
			ei++
			epoch := e.Epoch
			rec = jsonRecord{Type: "epoch", Cycle: e.Cycle, Epoch: &epoch,
				DFH:        popToJSON(e.DFH),
				L2Accesses: e.L2Accesses, L2Misses: e.L2Misses,
				ErrorMisses: e.ErrorMisses, Instructions: e.Instructions,
				MPKI: e.MPKI(), StallCycles: e.StallCycles,
				DisabledLines: e.DisabledLines,
				ECCOccupancy:  e.ECCOccupancy, ECCEntries: e.ECCEntries,
				ECCAccesses:            e.ECCAccesses,
				ECCContentionEvictions: e.ECCContentionEvictions,
			}
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reconstructs a Collector from WriteJSONL output — the reverse
// direction of the round trip the export tests pin, and a building block
// for offline analysis of committed time-series artifacts.
func ParseJSONL(r io.Reader) (*Collector, error) {
	c := NewCollector()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec jsonRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", line, err)
		}
		switch rec.Type {
		case "reset":
			c.OnReset(Reset{Cycle: rec.Cycle, Voltage: rec.Voltage, Lines: rec.Lines})
		case "transition":
			from, to := stateIndex(rec.From), stateIndex(rec.To)
			if from == NumStates || to == NumStates {
				return nil, fmt.Errorf("obs: line %d: unknown DFH state %q -> %q", line, rec.From, rec.To)
			}
			c.OnTransition(Transition{Cycle: rec.Cycle, Line: rec.Line, From: from, To: to})
		case "epoch":
			if rec.Epoch == nil || rec.DFH == nil {
				return nil, fmt.Errorf("obs: line %d: epoch record missing epoch/dfh", line)
			}
			e := EpochRecord{
				Sample: Sample{
					Epoch: *rec.Epoch, Cycle: rec.Cycle,
					L2Accesses: rec.L2Accesses, L2Misses: rec.L2Misses,
					ErrorMisses: rec.ErrorMisses, Instructions: rec.Instructions,
					StallCycles:   rec.StallCycles,
					DisabledLines: rec.DisabledLines,
					ECCOccupancy:  rec.ECCOccupancy, ECCEntries: rec.ECCEntries,
					ECCAccesses:            rec.ECCAccesses,
					ECCContentionEvictions: rec.ECCContentionEvictions,
				},
				DFH: rec.DFH.pop(),
			}
			// Bypass OnEpoch: the record carries its own population
			// snapshot, which OnEpoch would overwrite with c.pop.
			c.epochs = append(c.epochs, e)
			c.pop = e.DFH
		default:
			return nil, fmt.Errorf("obs: line %d: unknown record type %q", line, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

// traceEvent is one Chrome trace_event entry (the JSON Object Format of
// the Trace Event specification; load the file at chrome://tracing or
// https://ui.perfetto.dev).
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace_event container.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTraceEvents renders the collected run in Chrome trace_event JSON:
// per-epoch counter tracks ("ph":"C") for the DFH populations, ECC-cache
// occupancy, disabled lines, and interval MPKI, plus instant events
// ("ph":"i") for every classification transition and DFH reset. Cycles map
// 1:1 onto trace microseconds (the viewer's unit label is nominal).
func (c *Collector) WriteTraceEvents(w io.Writer) error {
	tf := traceFile{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"generator": "killi-sim", "time_unit": "cycles"},
	}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "killi-sim"},
	})
	for _, r := range c.resets {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "dfh_reset", Phase: "i", TS: r.Cycle, PID: 1, TID: 1, Scope: "g",
			Args: map[string]any{"voltage": r.Voltage, "lines": r.Lines},
		})
	}
	for _, e := range c.epochs {
		tf.TraceEvents = append(tf.TraceEvents,
			traceEvent{Name: "dfh population", Phase: "C", TS: e.Cycle, PID: 1,
				Args: map[string]any{
					"stable0":  e.DFH[StateStable0],
					"initial":  e.DFH[StateInitial],
					"stable1":  e.DFH[StateStable1],
					"disabled": e.DFH[StateDisabled],
				}},
			traceEvent{Name: "ecc cache", Phase: "C", TS: e.Cycle, PID: 1,
				Args: map[string]any{"occupancy": e.ECCOccupancy}},
			traceEvent{Name: "l2", Phase: "C", TS: e.Cycle, PID: 1,
				Args: map[string]any{
					"interval_mpki":  e.MPKI(),
					"disabled_lines": e.DisabledLines,
				}},
		)
	}
	for _, t := range c.transitions {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name:  StateName(t.From) + "→" + StateName(t.To),
			Phase: "i", TS: t.Cycle, PID: 1, TID: 2, Scope: "t",
			Args: map[string]any{"line": t.Line},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// TrainingCurve renders the DFH population time series as a terminal line
// chart: one series per state over the sampled epochs, the x axis in
// cycles. It returns "" when no epochs were collected.
func (c *Collector) TrainingCurve() string {
	if len(c.epochs) == 0 {
		return ""
	}
	xs := make([]float64, len(c.epochs))
	var series [NumStates]asciiplot.Series
	markers := [NumStates]byte{'o', '?', '1', 'x'}
	for s := 0; s < NumStates; s++ {
		series[s] = asciiplot.Series{
			Name:   StateName(uint8(s)),
			Y:      make([]float64, len(c.epochs)),
			Marker: markers[s],
		}
	}
	for i, e := range c.epochs {
		xs[i] = float64(e.Cycle)
		for s := 0; s < NumStates; s++ {
			series[s].Y[i] = float64(e.DFH[s])
		}
	}
	title := fmt.Sprintf("DFH population per state vs cycle (%d lines, %d epochs)",
		c.lines, len(c.epochs))
	return asciiplot.Render(title, xs, series[:], asciiplot.Options{Width: 72, Height: 18})
}
