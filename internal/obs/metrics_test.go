package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	m := NewMetrics()
	m.TaskDone(3, 12)
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for _, path := range []string{"/metrics", "/", "/debug/vars"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		if !json.Valid(body) {
			t.Fatalf("GET %s: response is not valid JSON: %s", path, body)
		}
		if path == "/metrics" {
			var doc struct {
				Total    int64   `json:"sweep_tasks_total"`
				Done     int64   `json:"sweep_tasks_done"`
				Progress float64 `json:"sweep_progress"`
				Uptime   float64 `json:"uptime_seconds"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("decode /metrics: %v", err)
			}
			if doc.Total != 12 || doc.Done != 3 {
				t.Errorf("tasks done/total = %d/%d, want 3/12", doc.Done, doc.Total)
			}
			if doc.Progress != 0.25 {
				t.Errorf("sweep_progress = %v, want 0.25", doc.Progress)
			}
			if doc.Uptime < 0 {
				t.Errorf("uptime_seconds = %v, want >= 0", doc.Uptime)
			}
		}
	}
}

func TestMetricsProgressZeroTotal(t *testing.T) {
	m := NewMetrics()
	var doc struct {
		Progress float64 `json:"sweep_progress"`
	}
	if err := json.Unmarshal([]byte(m.vars.String()), &doc); err != nil {
		t.Fatalf("decode vars: %v", err)
	}
	if doc.Progress != 0 {
		t.Errorf("sweep_progress with no tasks = %v, want 0", doc.Progress)
	}
}

// TestMetricsNoGlobalCollision pins the reason the vars live on the value:
// constructing two Metrics in one process must not panic on duplicate
// expvar.Publish names.
func TestMetricsNoGlobalCollision(t *testing.T) {
	_ = NewMetrics()
	_ = NewMetrics()
}

// TestMetricsClose pins the listener-leak fix: Close must release the bound
// port (a second Serve on the same address succeeds) and refuse requests
// afterwards, double-Close and Close-before-Serve are no-ops, and a Metrics
// cannot serve two addresses at once.
func TestMetricsClose(t *testing.T) {
	m := NewMetrics()
	if err := m.Close(); err != nil {
		t.Fatalf("Close before Serve: %v", err)
	}
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if _, err := m.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("second concurrent Serve succeeded, want already-serving error")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("GET while serving: %v", err)
	}
	resp.Body.Close()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
		t.Fatal("GET after Close succeeded, want connection refused")
	}
	// The port is free again: rebinding the exact address must work.
	if _, err := m.Serve(addr.String()); err != nil {
		t.Fatalf("re-Serve on the closed address: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
}

// TestMetricsSet pins the extension hook: vars published with Set appear in
// the /metrics document alongside the built-in sweep vars.
func TestMetricsSet(t *testing.T) {
	m := NewMetrics()
	var queue expvar.Int
	queue.Set(7)
	m.Set("queue_depth", &queue)
	var doc struct {
		Queue int64 `json:"queue_depth"`
	}
	if err := json.Unmarshal([]byte(m.vars.String()), &doc); err != nil {
		t.Fatalf("decode vars: %v", err)
	}
	if doc.Queue != 7 {
		t.Errorf("queue_depth = %d, want 7", doc.Queue)
	}
}
