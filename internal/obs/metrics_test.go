package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	m := NewMetrics()
	m.TaskDone(3, 12)
	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	for _, path := range []string{"/metrics", "/", "/debug/vars"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		if !json.Valid(body) {
			t.Fatalf("GET %s: response is not valid JSON: %s", path, body)
		}
		if path == "/metrics" {
			var doc struct {
				Total    int64   `json:"sweep_tasks_total"`
				Done     int64   `json:"sweep_tasks_done"`
				Progress float64 `json:"sweep_progress"`
				Uptime   float64 `json:"uptime_seconds"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("decode /metrics: %v", err)
			}
			if doc.Total != 12 || doc.Done != 3 {
				t.Errorf("tasks done/total = %d/%d, want 3/12", doc.Done, doc.Total)
			}
			if doc.Progress != 0.25 {
				t.Errorf("sweep_progress = %v, want 0.25", doc.Progress)
			}
			if doc.Uptime < 0 {
				t.Errorf("uptime_seconds = %v, want >= 0", doc.Uptime)
			}
		}
	}
}

func TestMetricsProgressZeroTotal(t *testing.T) {
	m := NewMetrics()
	var doc struct {
		Progress float64 `json:"sweep_progress"`
	}
	if err := json.Unmarshal([]byte(m.vars.String()), &doc); err != nil {
		t.Fatalf("decode vars: %v", err)
	}
	if doc.Progress != 0 {
		t.Errorf("sweep_progress with no tasks = %v, want 0", doc.Progress)
	}
}

// TestMetricsNoGlobalCollision pins the reason the vars live on the value:
// constructing two Metrics in one process must not panic on duplicate
// expvar.Publish names.
func TestMetricsNoGlobalCollision(t *testing.T) {
	_ = NewMetrics()
	_ = NewMetrics()
}
