package engine

import (
	"testing"
)

// testNode is a synthetic domain: every event mixes its payload and the
// firing cycle into a running digest, then derives follow-on events from a
// domain-private xorshift stream. Because the stream is consumed in the
// domain's canonical event order, the digest is sensitive to any ordering
// or timing difference between shard counts.
type testNode struct {
	d      *Domain
	peers  []*testNode
	rng    uint64
	digest uint64
	fired  uint64
}

func (n *testNode) next() uint64 {
	n.rng ^= n.rng << 13
	n.rng ^= n.rng >> 7
	n.rng ^= n.rng << 17
	return n.rng
}

func mix(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	return h
}

// OnEvent interprets a as the remaining fan-out budget.
func (n *testNode) OnEvent(kind uint8, a, b uint64) {
	n.fired++
	n.digest = mix(n.digest, n.d.Now())
	n.digest = mix(n.digest, uint64(kind))
	n.digest = mix(n.digest, a)
	n.digest = mix(n.digest, b)
	if a == 0 {
		return
	}
	r := n.next()
	// Always one local successor (possibly same-cycle), sometimes a
	// message to a pseudo-random peer with delay >= 1.
	n.d.After(r%4, uint8(r%7), a-1, r)
	if r%3 != 0 {
		peer := n.peers[(r>>8)%uint64(len(n.peers))]
		n.d.Send(peer.d, 1+(r>>16)%5, uint8(r%5), a-1, r>>24)
	}
}

type shardedRun struct {
	digest uint64
	fired  uint64
	now    uint64
}

func runSynthetic(t *testing.T, domains, shards int, seed uint64) shardedRun {
	t.Helper()
	s := NewSharded(domains)
	s.SetShards(shards)
	nodes := make([]*testNode, domains)
	for i := range nodes {
		nodes[i] = &testNode{d: s.Domain(i), rng: seed + uint64(i)*0x9e3779b97f4a7c15 + 1}
	}
	for i, n := range nodes {
		n.peers = nodes
		n.d.Bind(n)
		// Seed a few initial events per domain with varied budgets.
		n.d.After(uint64(i%5), 0, 6+uint64(i%3), uint64(i))
	}
	now := s.Run()
	if s.Pending() != 0 {
		t.Fatalf("K=%d: %d events still pending after Run", shards, s.Pending())
	}
	out := shardedRun{now: now}
	for _, n := range nodes {
		out.digest = mix(out.digest, n.digest)
		out.fired += n.fired
	}
	return out
}

// TestShardInvariance is the core determinism property: the same synthetic
// workload produces bit-identical per-domain digests, event counts, and
// final clock at every shard count, including shard counts above the
// domain count (clamped) and above GOMAXPROCS.
func TestShardInvariance(t *testing.T) {
	for _, domains := range []int{1, 3, 24} {
		want := runSynthetic(t, domains, 1, 42)
		if want.fired == 0 {
			t.Fatalf("domains=%d: synthetic workload fired no events", domains)
		}
		for _, k := range []int{2, 3, 4, 7, 16, 64} {
			got := runSynthetic(t, domains, k, 42)
			if got != want {
				t.Errorf("domains=%d K=%d: got %+v, want %+v (serial)", domains, k, got, want)
			}
		}
	}
}

// TestShardInvarianceAcrossSeeds varies the workload shape too.
func TestShardInvarianceAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		want := runSynthetic(t, 24, 1, seed)
		for _, k := range []int{4, 16} {
			if got := runSynthetic(t, 24, k, seed); got != want {
				t.Errorf("seed=%d K=%d: got %+v, want %+v", seed, k, got, want)
			}
		}
	}
}

func TestSendZeroDelayPanics(t *testing.T) {
	s := NewSharded(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Send with delay 0 should panic: it would break the lookahead invariant")
		}
	}()
	s.Domain(0).Send(s.Domain(1), 0, 0, 0, 0)
}

func TestSetShardsWithPendingPanics(t *testing.T) {
	s := NewSharded(2)
	s.Domain(0).Bind(sinkFunc(func(uint8, uint64, uint64) {}))
	s.Domain(0).After(5, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("SetShards with queued events should panic")
		}
	}()
	s.SetShards(2)
}

type sinkFunc func(kind uint8, a, b uint64)

func (f sinkFunc) OnEvent(kind uint8, a, b uint64) { f(kind, a, b) }

// TestPacerBoundaries pins the pacer contract at K=1 and K>1: the hook
// fires once per boundary, in order, exactly for the boundaries up to the
// last event's cycle, and never while any domain event at or after the
// boundary has fired.
func TestPacerBoundaries(t *testing.T) {
	for _, k := range []int{1, 3} {
		s := NewSharded(3)
		s.SetShards(k)
		var lastEvent uint64
		for i := 0; i < 3; i++ {
			d := s.Domain(i)
			d.Bind(sinkFunc(func(kind uint8, a, b uint64) {
				if d.Now() > lastEvent {
					lastEvent = d.Now()
				}
				if a > 0 {
					d.After(900, kind, a-1, b)
				}
			}))
		}
		// lastEvent is written from several workers at K>1; that is safe
		// here only because each domain's events are far apart in time so
		// writes land in distinct rounds. Keep it that way.
		var fired []uint64
		s.SetPacer(1000, func(b uint64) { fired = append(fired, b) })
		s.Domain(0).After(10, 1, 4, 0) // events at 10, 910, 1810, 2710, 3610
		end := s.Run()
		if end != 3610 {
			t.Fatalf("K=%d: final cycle %d, want 3610", k, end)
		}
		want := []uint64{1000, 2000, 3000}
		if len(fired) != len(want) {
			t.Fatalf("K=%d: pacer fired at %v, want %v", k, fired, want)
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("K=%d: pacer fired at %v, want %v", k, fired, want)
			}
		}
		// A second run continues the boundary sequence from the armed
		// position rather than re-firing old boundaries.
		fired = fired[:0]
		s.Domain(1).After(600, 1, 0, 0) // event at 4210; boundary 4000 fires
		s.Run()
		if len(fired) != 1 || fired[0] != 4000 {
			t.Fatalf("K=%d: second run pacer fired at %v, want [4000]", k, fired)
		}
	}
}

// TestTickerSlots pins the multi-ticker contract at K=1 and K>1: slots
// tick independently at their own periods, a boundary due in several slots
// fires them in ascending slot order, removing one slot leaves the others
// armed, and the firing sequence is identical at every shard count.
func TestTickerSlots(t *testing.T) {
	type firing struct {
		slot     int
		boundary uint64
	}
	runOnce := func(k int, dropSlot0 bool) []firing {
		s := NewSharded(3)
		s.SetShards(k)
		for i := 0; i < 3; i++ {
			d := s.Domain(i)
			d.Bind(sinkFunc(func(kind uint8, a, b uint64) {
				if a > 0 {
					d.After(700, kind, a-1, b)
				}
			}))
		}
		var fired []firing
		s.SetPacer(1000, func(b uint64) { fired = append(fired, firing{0, b}) })
		s.SetTicker(1, 1500, func(b uint64) { fired = append(fired, firing{1, b}) })
		s.SetTicker(2, 3000, func(b uint64) { fired = append(fired, firing{2, b}) })
		if dropSlot0 {
			s.SetPacer(0, nil)
		}
		s.Domain(0).After(10, 1, 5, 0) // events at 10, 710, ..., 3510
		s.Run()
		return fired
	}
	want := []firing{
		{0, 1000}, {1, 1500}, {0, 2000}, {0, 3000}, {1, 3000}, {2, 3000},
	}
	wantDropped := []firing{{1, 1500}, {1, 3000}, {2, 3000}}
	for _, k := range []int{1, 3} {
		got := runOnce(k, false)
		if len(got) != len(want) {
			t.Fatalf("K=%d: tickers fired %v, want %v", k, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("K=%d: tickers fired %v, want %v", k, got, want)
			}
		}
		// Removing slot 0 (the obs pacer pattern) must not disturb the
		// other slots — the regression the slot API exists to prevent.
		got = runOnce(k, true)
		if len(got) != len(wantDropped) {
			t.Fatalf("K=%d dropped slot 0: tickers fired %v, want %v", k, got, wantDropped)
		}
		for i := range wantDropped {
			if got[i] != wantDropped[i] {
				t.Fatalf("K=%d dropped slot 0: tickers fired %v, want %v", k, got, wantDropped)
			}
		}
	}
}

// TestShardedRunReuse runs the same engine twice and checks the clock is
// monotone and domain Now() agrees with the engine between runs.
func TestShardedRunReuse(t *testing.T) {
	s := NewSharded(4)
	s.SetShards(2)
	for i := 0; i < 4; i++ {
		d := s.Domain(i)
		d.Bind(sinkFunc(func(kind uint8, a, b uint64) {
			if a > 0 {
				d.Send(s.Domain((d.ID()+1)%4), 3, kind, a-1, b)
			}
		}))
	}
	s.Domain(0).After(1, 0, 10, 0)
	first := s.Run()
	if first == 0 {
		t.Fatal("first run did not advance the clock")
	}
	for i := 0; i < 4; i++ {
		if got := s.Domain(i).Now(); got != first {
			t.Fatalf("domain %d Now() = %d after run, want %d", i, got, first)
		}
	}
	s.Domain(2).After(5, 0, 4, 0)
	second := s.Run()
	if second <= first {
		t.Fatalf("second run clock %d did not advance past %d", second, first)
	}
}

// TestShardedHeapOrdering drives one domain through interleaved pushes and
// pops via the public API and checks canonical order: cycle first, then
// local events before messages, then scheduling sequence.
func TestShardedHeapOrdering(t *testing.T) {
	s := NewSharded(2)
	var order []uint64
	s.Domain(0).Bind(sinkFunc(func(kind uint8, a, b uint64) { order = append(order, a) }))
	s.Domain(1).Bind(sinkFunc(func(kind uint8, a, b uint64) {}))
	// Same-cycle: a message scheduled *before* the locals must still fire
	// after them.
	s.Domain(1).Send(s.Domain(0), 7, 0, 100, 0)
	s.Domain(0).After(7, 0, 1, 0)
	s.Domain(0).After(7, 0, 2, 0)
	s.Domain(0).After(3, 0, 0, 0)
	s.Run()
	want := []uint64{0, 1, 2, 100}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func BenchmarkShardedSerial(b *testing.B) {
	s := NewSharded(1)
	d := s.Domain(0)
	d.Bind(sinkFunc(func(kind uint8, a, b uint64) {
		if a%2 == 0 {
			d.After(d.Now()%13, kind, a+1, b)
		}
	}))
	for i := 0; i < 128; i++ {
		d.After(uint64(i%13), 0, uint64(i), 0)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			d.After(uint64(j%13), 0, uint64(j), 0)
		}
		s.Run()
	}
}
