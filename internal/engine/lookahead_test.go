package engine

import (
	"runtime"
	"sync"
	"testing"
)

// This file pins the lookahead-coalesced round scheduler: bit-identity
// against the serial engine under randomized declared topologies, the
// oversubscribed barrier path, deterministic round accounting, and the
// declared-edge enforcement contract.

// edgeSpec is one declared edge of a random topology.
type edgeSpec struct {
	dst   int
	floor uint64
}

// topoNode fires like testNode but routes messages along declared edges
// only, with delays at or above each edge's floor.
type topoNode struct {
	d      *Domain
	nodes  []*topoNode
	edges  []edgeSpec
	rng    uint64
	digest uint64
	fired  uint64
}

func (n *topoNode) next() uint64 {
	n.rng ^= n.rng << 13
	n.rng ^= n.rng >> 7
	n.rng ^= n.rng << 17
	return n.rng
}

func (n *topoNode) OnEvent(kind uint8, a, b uint64) {
	n.fired++
	n.digest = mix(n.digest, n.d.Now())
	n.digest = mix(n.digest, uint64(kind))
	n.digest = mix(n.digest, a)
	n.digest = mix(n.digest, b)
	if a == 0 {
		return
	}
	r := n.next()
	n.d.After(r%4, uint8(r%7), a-1, r)
	if len(n.edges) > 0 && r%3 != 0 {
		e := n.edges[(r>>8)%uint64(len(n.edges))]
		n.d.Send(n.nodes[e.dst].d, e.floor+(r>>16)%4, uint8(r%5), a-1, r>>24)
	}
}

// buildTopology derives a random directed edge set over `domains` domains
// from the seed. Dense mode declares each ordered pair with probability
// ~1/3 and a floor in [1, 12] — an adversarial graph whose shard-pair
// lookahead usually bottoms out at 1. Bipartite mode mirrors the GPU's
// requester/bank shape: edges only cross the halves, probability 1/2,
// floors in [4, 11], so every shard pair's lookahead is >= 4 and rounds
// must coalesce. The same seed always yields the same topology.
func buildTopology(domains int, seed uint64, bipartite bool) [][]edgeSpec {
	rng := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	half := domains / 2
	edges := make([][]edgeSpec, domains)
	for src := 0; src < domains; src++ {
		for dst := 0; dst < domains; dst++ {
			if src == dst {
				continue
			}
			r := next()
			if bipartite {
				if (src < half) == (dst < half) || r%2 == 0 {
					continue
				}
				edges[src] = append(edges[src], edgeSpec{dst: dst, floor: 4 + (r>>32)%8})
				continue
			}
			if r%3 == 0 {
				edges[src] = append(edges[src], edgeSpec{dst: dst, floor: 1 + (r>>32)%12})
			}
		}
	}
	return edges
}

func runTopo(t testing.TB, domains, shards int, seed uint64, edges [][]edgeSpec) (shardedRun, RunStats) {
	t.Helper()
	s := NewSharded(domains)
	for src, row := range edges {
		for _, e := range row {
			s.DeclareEdge(src, e.dst, e.floor)
		}
	}
	s.SetShards(shards)
	nodes := make([]*topoNode, domains)
	for i := range nodes {
		nodes[i] = &topoNode{d: s.Domain(i), edges: edges[i], rng: seed + uint64(i)*0x9e3779b97f4a7c15 + 1}
	}
	for i, n := range nodes {
		n.nodes = nodes
		n.d.Bind(n)
		n.d.After(uint64(i%5), 0, 7+uint64(i%3), uint64(i))
	}
	now := s.Run()
	if s.Pending() != 0 {
		t.Fatalf("K=%d: %d events still pending after Run", shards, s.Pending())
	}
	out := shardedRun{now: now}
	for _, n := range nodes {
		out.digest = mix(out.digest, n.digest)
		out.fired += n.fired
	}
	return out, s.Stats()
}

// TestLookaheadCoalescingInvariance is the property test for the coalesced
// scheduler: under randomized declared per-edge delays, every shard count
// fires the exact same events at the same cycles in the same per-domain
// order as the serial engine. On the bipartite topology (all lookaheads
// >= 4) coalescing must genuinely happen: rounds per run strictly below the
// serial engine's distinct-timestamp count, which is the round count the
// pre-lookahead scheduler needed.
func TestLookaheadCoalescingInvariance(t *testing.T) {
	const domains = 24
	for seed := uint64(1); seed <= 6; seed++ {
		for _, bipartite := range []bool{false, true} {
			edges := buildTopology(domains, seed, bipartite)
			want, serialStats := runTopo(t, domains, 1, seed, edges)
			if want.fired == 0 {
				t.Fatalf("seed=%d: workload fired no events", seed)
			}
			if serialStats.Rounds != 0 {
				t.Fatalf("seed=%d: serial run reported %d barrier rounds, want 0", seed, serialStats.Rounds)
			}
			for _, k := range []int{2, 4, 16} {
				got, stats := runTopo(t, domains, k, seed, edges)
				if got != want {
					t.Errorf("seed=%d bipartite=%v K=%d: got %+v, want %+v (serial)", seed, bipartite, k, got, want)
				}
				if stats.Events != serialStats.Events {
					t.Errorf("seed=%d bipartite=%v K=%d: fired %d events, serial fired %d",
						seed, bipartite, k, stats.Events, serialStats.Events)
				}
				if stats.Rounds == 0 || stats.Rounds > serialStats.Timestamps {
					t.Errorf("seed=%d bipartite=%v K=%d: %d rounds vs %d serial timestamps — more rounds than per-timestamp scheduling",
						seed, bipartite, k, stats.Rounds, serialStats.Timestamps)
				}
				if bipartite && stats.Rounds*2 > serialStats.Timestamps {
					t.Errorf("seed=%d K=%d: %d rounds vs %d serial timestamps — lookahead >= 4 did not coalesce",
						seed, k, stats.Rounds, serialStats.Timestamps)
				}
			}
		}
	}
}

// TestRunStatsDeterministic pins that the scheduling ledger is a pure
// function of the simulation and shard count: two identical runs agree
// exactly, on every field.
func TestRunStatsDeterministic(t *testing.T) {
	edges := buildTopology(24, 3, true)
	for _, k := range []int{2, 4} {
		res1, stats1 := runTopo(t, 24, k, 3, edges)
		res2, stats2 := runTopo(t, 24, k, 3, edges)
		if res1 != res2 {
			t.Fatalf("K=%d: results differ across identical runs", k)
		}
		if stats1 != stats2 {
			t.Errorf("K=%d: RunStats differ across identical runs: %+v vs %+v", k, stats1, stats2)
		}
		if stats1.CrossShardMessages == 0 {
			t.Errorf("K=%d: no cross-shard messages counted in a multi-shard run", k)
		}
	}
}

// TestOversubscribedShards runs far more shards than GOMAXPROCS (the
// barrier's backoff/park path) and checks bit-identity; CI runs this
// package under -race, which also validates the barrier's synchronization.
func TestOversubscribedShards(t *testing.T) {
	const domains = 64
	k := 4 * runtime.GOMAXPROCS(0)
	if k > domains {
		k = domains
	}
	want := runSynthetic(t, domains, 1, 7)
	got := runSynthetic(t, domains, k, 7)
	if got != want {
		t.Fatalf("K=%d (GOMAXPROCS=%d): got %+v, want %+v", k, runtime.GOMAXPROCS(0), got, want)
	}
	edges := buildTopology(domains, 7, true)
	wantT, _ := runTopo(t, domains, 1, 7, edges)
	gotT, _ := runTopo(t, domains, k, 7, edges)
	if gotT != wantT {
		t.Fatalf("declared topology K=%d: got %+v, want %+v", k, gotT, wantT)
	}
}

// TestBulkIngestMatchesPush pins that the heapify bulk-ingest path yields
// the same pop sequence as per-event pushes, over an adversarial batch.
func TestBulkIngestMatchesPush(t *testing.T) {
	rng := uint64(99)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var batch []sevent
	for i := 0; i < 200; i++ {
		r := next()
		batch = append(batch, sevent{when: r % 16, key: msgClass | r>>4, dst: 0, kind: uint8(i)})
	}
	var a, b shardState
	for _, ev := range batch {
		a.push(ev)
	}
	b.heap = append(b.heap, batch...)
	b.heapify()
	for i := 0; len(a.heap) > 0; i++ {
		if len(b.heap) == 0 {
			t.Fatal("bulk heap drained early")
		}
		x, y := a.pop(), b.pop()
		if x != y {
			t.Fatalf("pop %d: push path %+v, heapify path %+v", i, x, y)
		}
	}
	if len(b.heap) != 0 {
		t.Fatal("bulk heap has leftover events")
	}
}

// TestDeclaredEdgeEnforcement pins the declared-topology contract: Sends on
// undeclared edges or below the declared floor panic instead of silently
// breaking the lookahead bound.
func TestDeclaredEdgeEnforcement(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	s := NewSharded(3)
	s.DeclareEdge(0, 1, 5)
	sink := sinkFunc(func(uint8, uint64, uint64) {})
	for i := 0; i < 3; i++ {
		s.Domain(i).Bind(sink)
	}
	s.Domain(0).Send(s.Domain(1), 5, 0, 0, 0) // at the floor: fine
	s.Run()
	mustPanic("below floor", func() { s.Domain(0).Send(s.Domain(1), 4, 0, 0, 0) })
	mustPanic("undeclared edge", func() { s.Domain(0).Send(s.Domain(2), 9, 0, 0, 0) })
	mustPanic("zero floor", func() { s.DeclareEdge(1, 2, 0) })
	mustPanic("self edge", func() { s.DeclareEdge(1, 1, 3) })
	mustPanic("bad placement", func() {
		s2 := NewSharded(4)
		s2.AssignShards(2, func(d int) int { return 2 })
	})
}

// BenchmarkBarrier measures one barrier round trip per worker at several
// sizes (sizes above GOMAXPROCS exercise the backoff path).
func BenchmarkBarrier(b *testing.B) {
	for _, size := range []int{1, 2, 4} {
		b.Run("size"+itoa(size), func(b *testing.B) {
			bar := newBarrier(uint64(size))
			var wg sync.WaitGroup
			b.ResetTimer()
			for w := 0; w < size; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						bar.wait(nil)
					}
				}()
			}
			wg.Wait()
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkMailboxIngest compares the per-event push path (small batches)
// with the append-then-heapify path (batches large relative to the heap).
func BenchmarkMailboxIngest(b *testing.B) {
	bench := func(name string, batch, heapSize int) {
		b.Run(name, func(b *testing.B) {
			s := NewSharded(2)
			s.SetShards(2)
			row := make([]sevent, batch)
			for i := range row {
				row[i] = sevent{when: uint64(i * 7 % 97), key: msgClass | uint64(i), dst: 0}
			}
			base := make([]sevent, heapSize)
			for i := range base {
				base[i] = sevent{when: uint64(i * 13 % 89), key: uint64(i), dst: 0}
			}
			sh := &s.shards[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.heap = append(sh.heap[:0], base...)
				sh.heapify()
				s.shards[1].out[0] = append(s.shards[1].out[0][:0], row...)
				s.ingest(0)
			}
		})
	}
	bench("push16into256", 16, 256)
	bench("bulk256into64", 256, 64)
	bench("bulk1024into128", 1024, 128)
}
