package engine

import (
	"container/heap"
	"testing"

	"killi/internal/xrand"
)

// refEvent and refHeap are a straight container/heap re-implementation of
// the pre-typed-heap queue, kept as the ordering oracle for the property
// test below.
type refEvent struct {
	when uint64
	seq  uint64
	fn   func()
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// refEngine mirrors Engine's API on top of container/heap.
type refEngine struct {
	now    uint64
	seq    uint64
	events refHeap
}

func (e *refEngine) Now() uint64 { return e.now }
func (e *refEngine) Schedule(delay uint64, fn func()) {
	e.seq++
	heap.Push(&e.events, refEvent{when: e.now + delay, seq: e.seq, fn: fn})
}
func (e *refEngine) Run() uint64 {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(refEvent)
		e.now = ev.when
		ev.fn()
	}
	return e.now
}

// trace records (id, cycle) pairs for comparison across implementations.
type trace struct {
	ids    []int
	cycles []uint64
}

func (t *trace) hit(id int, cycle uint64) {
	t.ids = append(t.ids, id)
	t.cycles = append(t.cycles, cycle)
}

// scheduler abstracts the two engines for the shared workload generator.
type scheduler interface {
	Now() uint64
	Schedule(delay uint64, fn func())
}

// runRandomSchedule drives a randomized event workload: a mix of plain
// events, events that schedule follow-ups (including zero-delay), and
// self-rescheduling events that re-queue themselves at delay 0 a few times
// before expiring — the adversarial case for same-cycle FIFO order.
func runRandomSchedule(e scheduler, run func() uint64, seed uint64) *trace {
	r := xrand.New(seed)
	tr := &trace{}
	nextID := 0
	for i := 0; i < 200; i++ {
		id := nextID
		nextID++
		switch r.Uint64() % 3 {
		case 0: // plain event
			e.Schedule(r.Uint64()%50, func() { tr.hit(id, e.Now()) })
		case 1: // event that chains a zero-delay follow-up
			childID := nextID
			nextID++
			e.Schedule(r.Uint64()%50, func() {
				tr.hit(id, e.Now())
				e.Schedule(0, func() { tr.hit(childID, e.Now()) })
			})
		case 2: // zero-delay self-rescheduling event
			remaining := int(r.Uint64()%3) + 1
			var fn func()
			fn = func() {
				tr.hit(id, e.Now())
				remaining--
				if remaining > 0 {
					e.Schedule(0, fn)
				}
			}
			e.Schedule(r.Uint64()%50, fn)
		}
	}
	run()
	return tr
}

// TestMatchesReferenceHeap checks the typed four-ary heap against the
// container/heap oracle on randomized schedules: identical firing order and
// identical cycles, across many seeds.
func TestMatchesReferenceHeap(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		var typed Engine
		var ref refEngine
		got := runRandomSchedule(&typed, typed.Run, seed)
		want := runRandomSchedule(&ref, ref.Run, seed)
		if len(got.ids) != len(want.ids) {
			t.Fatalf("seed %d: fired %d events, reference fired %d",
				seed, len(got.ids), len(want.ids))
		}
		for i := range got.ids {
			if got.ids[i] != want.ids[i] || got.cycles[i] != want.cycles[i] {
				t.Fatalf("seed %d: event %d diverges: got (id=%d,cycle=%d), want (id=%d,cycle=%d)",
					seed, i, got.ids[i], got.cycles[i], want.ids[i], want.cycles[i])
			}
		}
	}
}

// TestSameCycleSchedulingOrderProperty fires many events at colliding cycles
// and asserts the global property directly: among events with equal cycles,
// firing order equals scheduling order.
func TestSameCycleSchedulingOrderProperty(t *testing.T) {
	r := xrand.New(7)
	var e Engine
	type rec struct {
		schedOrder int
		cycle      uint64
	}
	var fired []rec
	for i := 0; i < 500; i++ {
		i := i
		e.Schedule(r.Uint64()%8, func() { fired = append(fired, rec{i, e.Now()}) })
	}
	e.Run()
	if len(fired) != 500 {
		t.Fatalf("fired %d of 500", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		prev, cur := fired[i-1], fired[i]
		if cur.cycle < prev.cycle {
			t.Fatalf("cycle went backwards at %d: %d after %d", i, cur.cycle, prev.cycle)
		}
		if cur.cycle == prev.cycle && cur.schedOrder < prev.schedOrder {
			t.Fatalf("same-cycle events out of scheduling order at %d: %d fired after %d",
				i, cur.schedOrder, prev.schedOrder)
		}
	}
}

// reusableHandler is a no-capture Handler used to measure steady-state
// allocation behavior.
type reusableHandler struct {
	e     *Engine
	count int
}

func (h *reusableHandler) Fire() {
	h.count++
	if h.count%2 == 0 {
		h.e.ScheduleHandler(h.e.now%13, h)
	}
}

// TestScheduleHandlerAllocFree verifies that scheduling reused Handler
// objects allocates nothing once the heap's backing array has grown.
func TestScheduleHandlerAllocFree(t *testing.T) {
	var e Engine
	h := &reusableHandler{e: &e}
	// Pre-grow the backing array.
	for i := 0; i < 64; i++ {
		e.ScheduleHandler(uint64(i%7), h)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			e.ScheduleHandler(uint64(i%7), h)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ScheduleHandler/Run allocates %v per run", allocs)
	}
}

// BenchmarkSteadyState measures the per-event cost of the queue with a
// reused engine and handler: the target is 0 allocs/op.
func BenchmarkSteadyState(b *testing.B) {
	var e Engine
	h := &reusableHandler{e: &e}
	for i := 0; i < 128; i++ {
		e.ScheduleHandler(uint64(i%13), h)
	}
	e.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			e.ScheduleHandler(uint64(j%13), h)
		}
		e.Run()
	}
}
