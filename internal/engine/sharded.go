package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the bank-sharded parallel event engine: a
// multi-domain discrete-event simulator whose results are bit-identical at
// any shard count.
//
// The model is conservative parallel discrete-event simulation with
// per-edge lookahead. All simulator state is partitioned into domains; an
// event is owned by exactly one domain and only that domain's sink
// observes it. Within a domain, events fire in a canonical total order —
// (cycle, key), where the key packs the event's class, origin domain, and
// a per-domain scheduling sequence — that is a function of the simulation
// alone, never of how domains are grouped onto shards. Sharding therefore
// only decides which OS thread fires an event, not when or in what order
// relative to the rest of its domain, which is what makes K-invariance
// hold by construction instead of by careful merging.
//
// Cross-domain communication must use Send with a delivery delay of at
// least the declared minimum for the (source, destination) edge — the
// lookahead. In legacy mode (no DeclareEdge calls) every edge has floor 1.
// In declared-topology mode the floors can be much larger, and each
// parallel round lets every shard fire all events strictly below its
// bound: the earliest cycle at which any other shard's pending work could
// still deliver a message to it. Rounds then advance by the latency graph's
// real slack instead of one timestamp at a time, collapsing the barrier
// count by the average lookahead.

// EventSink receives a domain's events. Exactly one sink is bound per
// domain; OnEvent is called only from the shard worker that owns the
// domain (or the caller's goroutine in serial mode), so a sink may touch
// its domain's state without locking — and must touch no other domain's.
type EventSink interface {
	OnEvent(kind uint8, a, b uint64)
}

const (
	seqBits    = 48
	domainBits = 15
	// msgClass marks cross-domain messages in the canonical key. At equal
	// cycle a domain fires its local events before delivered messages;
	// messages order among themselves by (source domain, source sequence).
	msgClass = uint64(1) << 63
	noEvent  = ^uint64(0)
)

// RunStats is the deterministic scheduling ledger of one Run: a pure
// function of the simulation and the shard count, independent of host
// speed, GOMAXPROCS, or thread scheduling — so it can be asserted in tests
// and gated in benchmarks even on a single-core machine.
type RunStats struct {
	// Rounds counts barrier rounds (parallel) or is 0 for serial runs,
	// which have no barrier.
	Rounds uint64
	// Events counts fired events.
	Events uint64
	// Timestamps counts distinct event cycles fired, summed over shards in
	// parallel mode and globally in serial mode. A serial run's Timestamps
	// equals the rounds the pre-lookahead engine would have needed.
	Timestamps uint64
	// CrossShardMessages counts Sends that crossed a shard boundary.
	CrossShardMessages uint64
	// IngestsSkipped counts rounds whose mailbox phase was skipped because
	// no shard sent a cross-shard message since the previous ingest.
	IngestsSkipped uint64
}

// sevent is one queued event: payload (kind, a, b) for the sink of domain
// dst, firing at cycle `when`, totally ordered by (when, key).
type sevent struct {
	when uint64
	key  uint64
	a, b uint64
	dst  int32
	kind uint8
}

func (e sevent) less(o sevent) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	return e.key < o.key
}

// shardState is one shard's private event heap plus its outboxes. During a
// parallel round, shard w appends outgoing messages to out[dst] (only w
// writes its own rows) and, in the ingest phase, drains column w of every
// shard's outbox (only w reads/resets that column); the round barriers
// order the two phases, so no slice is ever touched concurrently.
//
// Layout audit: heap/out headers and now are written every round by the
// owning worker only; cross-worker coordination words live in the padded
// pub/bound slots owned by the engine, not here. The trailing pad keeps
// two adjacent shardStates' hot words on distinct cache lines.
type shardState struct {
	heap []sevent
	out  [][]sevent
	// now is the cycle the shard is processing; Domain.Now reads it, so it
	// is written only by the owning worker (or single-threaded code).
	now uint64
	// Owner-private round accounting, merged into Sharded.stats after the
	// run (worker-local, no sharing).
	events     uint64
	timestamps uint64
	crossSent  uint64
	_pad       [40]byte // keep hot per-shard words off shared cache lines
}

func (sh *shardState) push(ev sevent) {
	sh.heap = append(sh.heap, ev)
	siftUp(sh.heap, len(sh.heap)-1)
}

func siftUp(h []sevent, i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

// siftDown restores the four-ary heap property at index i, assuming the
// subtrees below are already heaps: bottom-up hole sift — walk the hole
// down the min-child path, then sift the displaced element back up.
func siftDown(h []sevent, i int) {
	n := len(h)
	moved := h[i]
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h[c].less(h[best]) {
				best = c
			}
		}
		h[i] = h[best]
		i = best
	}
	for i > start {
		parent := (i - 1) / 4
		if parent < start {
			break
		}
		if !moved.less(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = moved
}

func (sh *shardState) pop() sevent {
	top := sh.heap[0]
	n := len(sh.heap) - 1
	last := sh.heap[n]
	sh.heap = sh.heap[:n]
	if n == 0 {
		return top
	}
	sh.heap[0] = last
	siftDown(sh.heap, 0)
	return top
}

// heapify establishes the heap property over the whole slice in O(n)
// (Floyd's method) — used by bulk mailbox ingest when the incoming batch
// is large relative to the heap.
func (sh *shardState) heapify() {
	h := sh.heap
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		siftDown(h, i)
	}
}

func (sh *shardState) minWhen() uint64 {
	if len(sh.heap) == 0 {
		return noEvent
	}
	return sh.heap[0].when
}

// Domain is one partition of simulator state: an event queue identity
// whose events all fire on one shard, in canonical order. Obtain domains
// from Sharded.Domain; the zero value is not usable.
type Domain struct {
	eng   *Sharded
	id    int32
	shard int32
	seq   uint64
	sink  EventSink
}

// Bind attaches the sink that receives this domain's events.
func (d *Domain) Bind(sink EventSink) { d.sink = sink }

// ID returns the domain's index.
func (d *Domain) ID() int { return int(d.id) }

// Now returns the cycle the domain's shard is processing (equal to the
// engine clock outside Run).
func (d *Domain) Now() uint64 { return d.eng.shards[d.shard].now }

// After schedules a local event on this domain, delay cycles from its
// current cycle. A delay of 0 fires later in the same cycle, after the
// domain's already-queued same-cycle local events. Call it during setup
// (between Runs) or from this domain's own sink; never from another
// domain's.
func (d *Domain) After(delay uint64, kind uint8, a, b uint64) {
	sh := &d.eng.shards[d.shard]
	d.seq++
	sh.push(sevent{
		when: sh.now + delay,
		key:  uint64(d.id)<<seqBits | d.seq,
		a:    a, b: b,
		dst:  d.id,
		kind: kind,
	})
}

// Send schedules an event on another domain, delay cycles from the sending
// domain's current cycle. The delay must be at least the edge's declared
// minimum (1 in legacy mode) — the lookahead: it is what lets shards
// process a whole window of timestamps in one barrier round, knowing no
// message can still be in flight into that window. Delivery order at equal
// cycle is canonical — after the destination's local events, ordered by
// (sending domain, sending sequence) — so results do not depend on shard
// grouping.
func (d *Domain) Send(dst *Domain, delay uint64, kind uint8, a, b uint64) {
	e := d.eng
	if e.edgeMin != nil {
		floor := e.edgeMin[int(d.id)*len(e.domains)+int(dst.id)]
		if floor == 0 {
			panic(fmt.Sprintf("engine: Send on undeclared edge %d->%d (declared-topology mode)", d.id, dst.id))
		}
		if delay < floor {
			panic(fmt.Sprintf("engine: Send delay %d below declared minimum %d for edge %d->%d", delay, floor, d.id, dst.id))
		}
	} else if delay == 0 {
		panic("engine: Send requires delay >= 1 (the cross-domain lookahead)")
	}
	sh := &e.shards[d.shard]
	d.seq++
	ev := sevent{
		when: sh.now + delay,
		key:  msgClass | uint64(d.id)<<seqBits | d.seq,
		a:    a, b: b,
		dst:  dst.id,
		kind: kind,
	}
	if ds := dst.shard; ds == d.shard {
		sh.push(ev)
	} else {
		sh.out[ds] = append(sh.out[ds], ev)
		sh.crossSent++
		e.pub[d.shard].sent.Store(1)
	}
}

// pubSlot is one shard's published coordination word set, padded to a full
// cache line: the owner worker writes min/sent between barriers, the
// combiner (last barrier arriver) reads them. Keeping each shard's slot on
// its own line means publishing never invalidates a peer's line.
type pubSlot struct {
	min  uint64
	sent atomic.Uint32
	_    [52]byte
}

// boundSlot is one shard's per-round fire bound, written by the combiner
// and read by the owner — padded for the same reason as pubSlot.
type boundSlot struct {
	v uint64
	_ [56]byte
}

// planHeader carries the combiner's global outputs for a round.
type planHeader struct {
	globalMin uint64
	ingest    uint32
	_         [52]byte
}

// Sharded is a discrete-event engine over a fixed set of domains, able to
// fire independent domains' events in parallel. Construct with NewSharded.
//
// With one shard (the default) Run is a plain serial pop loop with zero
// steady-state allocations — the fast path the sweep uses. With K shards,
// K workers advance in lock-step rounds under a combining barrier; each
// round every shard fires all events strictly below its lookahead bound.
// Every statistic, event order, and observer stream is bit-identical to
// the serial run at any K.
type Sharded struct {
	domains []Domain
	shards  []shardState
	now     uint64

	// edgeMin is the declared per-edge minimum Send delay, dense D×D
	// (src*D+dst), 0 = undeclared. nil = legacy mode (all edges floor 1).
	edgeMin []uint64
	// look[to*K+from] is the per-shard-pair lookahead: the minimum edgeMin
	// over all (src in from, dst in to) domain pairs; noEvent when no edge
	// connects the pair. Rebuilt by each parallel Run.
	look []uint64

	// pub/bounds/hdr are the padded coordination arrays for parallel runs;
	// pub is allocated by setShards because setup-time Sends set the sent
	// flag before any Run.
	pub    []pubSlot
	bounds []boundSlot
	hdr    planHeader

	stats RunStats

	// tickers are optional hooks fired once per boundary (multiples of
	// each slot's period) strictly between rounds: every domain is parked
	// when one runs, so it may read — and, alone among extension points,
	// mutate — simulator state. A ticker fires for each boundary B <= the
	// next event cycle, which reproduces the semantics of a daemon ticker
	// event on the serial engine: a boundary with no remaining events
	// after it never fires. A boundary shared by several slots fires them
	// in ascending slot order. Slot 0 is the legacy pacer (SetPacer, the
	// observability sampler); gpu's fault-class strike ticker rides in
	// slot 1.
	tickers []ticker
}

// ticker is one registered boundary hook (see SetTicker).
type ticker struct {
	fn    func(boundary uint64)
	every uint64
	next  uint64
}

// NewSharded returns an engine over numDomains domains, initially with one
// shard (serial execution).
func NewSharded(numDomains int) *Sharded {
	if numDomains < 1 || numDomains >= 1<<domainBits {
		panic(fmt.Sprintf("engine: %d domains out of range", numDomains))
	}
	s := &Sharded{domains: make([]Domain, numDomains)}
	for i := range s.domains {
		s.domains[i] = Domain{eng: s, id: int32(i)}
	}
	s.setShards(1)
	return s
}

// Domain returns domain i.
func (s *Sharded) Domain(i int) *Domain { return &s.domains[i] }

// NumDomains returns the number of domains.
func (s *Sharded) NumDomains() int { return len(s.domains) }

// Now returns the engine clock: the cycle of the last fired event.
func (s *Sharded) Now() uint64 { return s.now }

// Shards returns the current shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Stats returns the scheduling ledger of the most recent Run.
func (s *Sharded) Stats() RunStats { return s.stats }

// DeclareEdge switches the engine to declared-topology mode and records
// that domain src may Send to domain dst with delay >= minDelay (>= 1).
// In this mode every Send must use a declared edge at or above its floor
// (undeclared Sends panic), and the parallel scheduler derives per-shard
// lookahead from the declared graph: shard pairs connected only by long
// edges — or by no edge at all — let rounds advance many cycles at once.
// Declare edges during setup, before the first Run; redeclaring an edge
// keeps the smaller floor.
func (s *Sharded) DeclareEdge(src, dst int, minDelay uint64) {
	if minDelay == 0 {
		panic("engine: DeclareEdge requires minDelay >= 1")
	}
	if src == dst {
		panic("engine: DeclareEdge on a self edge (use After for local events)")
	}
	d := len(s.domains)
	if s.edgeMin == nil {
		s.edgeMin = make([]uint64, d*d)
	}
	at := src*d + dst
	if cur := s.edgeMin[at]; cur == 0 || minDelay < cur {
		s.edgeMin[at] = minDelay
	}
	s.look = nil
}

// Pending returns the number of queued events across all shards.
func (s *Sharded) Pending() int {
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].heap)
		for _, row := range s.shards[i].out {
			total += len(row)
		}
	}
	return total
}

// SetShards regroups the domains onto k shards (clamped to [1, domains])
// round-robin. It must be called with no queued events — between Runs —
// because events live in per-shard heaps. Results are identical at any k;
// only wall-clock changes.
func (s *Sharded) SetShards(k int) {
	if s.Pending() != 0 {
		panic("engine: SetShards with events queued")
	}
	if k < 1 {
		k = 1
	}
	if k > len(s.domains) {
		k = len(s.domains)
	}
	s.setShards(k)
	for i := range s.domains {
		s.domains[i].shard = int32(i % k)
	}
}

// AssignShards regroups the domains onto k shards with an explicit
// placement: shardOf(i) returns the shard (in [0, k)) owning domain i.
// Like SetShards it requires no queued events. Placement never affects
// results — only which pairs of domains share a thread, and therefore the
// per-shard-pair lookahead the scheduler can exploit.
func (s *Sharded) AssignShards(k int, shardOf func(domain int) int) {
	if s.Pending() != 0 {
		panic("engine: AssignShards with events queued")
	}
	if k < 1 || k > len(s.domains) {
		panic(fmt.Sprintf("engine: AssignShards k=%d out of range [1,%d]", k, len(s.domains)))
	}
	assign := make([]int32, len(s.domains))
	for i := range s.domains {
		sh := shardOf(i)
		if sh < 0 || sh >= k {
			panic(fmt.Sprintf("engine: AssignShards placed domain %d on shard %d (k=%d)", i, sh, k))
		}
		assign[i] = int32(sh)
	}
	s.setShards(k)
	for i := range s.domains {
		s.domains[i].shard = assign[i]
	}
}

func (s *Sharded) setShards(k int) {
	s.shards = make([]shardState, k)
	for i := range s.shards {
		s.shards[i].out = make([][]sevent, k)
		s.shards[i].now = s.now
	}
	s.pub = make([]pubSlot, k)
	s.bounds = make([]boundSlot, k)
	s.look = nil
}

// buildLookahead fills look[to*K+from] with the minimum total delay of any
// WALK (one or more edges, possibly through other shards) from a domain on
// shard `from` to a domain on shard `to`; noEvent when no such walk
// exists. The diagonal holds each shard's shortest return cycle.
//
// The walk closure — not just the direct edge minimum — is what makes the
// per-round fire bounds conservative: a shard's bound must protect it from
// every chain of cause and effect rooted at another shard's round-start
// minimum, including chains that bounce through third shards or that
// originate in the shard's own heap and return to it. Each hop of such a
// chain adds at least the traversed edge's declared floor, so the earliest
// any chain rooted at cycle m on shard f can deliver into shard t is
// m + look[t*K+f].
func (s *Sharded) buildLookahead() {
	k := len(s.shards)
	s.look = make([]uint64, k*k)
	for i := range s.look {
		s.look[i] = noEvent
	}
	if s.edgeMin == nil {
		// Legacy mode: every cross-domain edge has floor 1.
		for to := 0; to < k; to++ {
			for from := 0; from < k; from++ {
				if from != to {
					s.look[to*k+from] = 1
				} else if k > 1 {
					s.look[to*k+from] = 2 // shortest return cycle
				}
			}
		}
		return
	}
	d := len(s.domains)
	for src := 0; src < d; src++ {
		sf := int(s.domains[src].shard)
		row := s.edgeMin[src*d : src*d+d]
		for dst, m := range row {
			if m == 0 {
				continue
			}
			df := int(s.domains[dst].shard)
			if df == sf {
				continue // same-shard delivery needs no cross-shard bound
			}
			at := df*k + sf
			if m < s.look[at] {
				s.look[at] = m
			}
		}
	}
	// Floyd–Warshall over the shard graph (diagonal starts at noEvent, so
	// the result is the min-delay walk with >= 1 edge for every pair,
	// including each shard's shortest return cycle on the diagonal).
	for mid := 0; mid < k; mid++ {
		for from := 0; from < k; from++ {
			a := s.look[mid*k+from]
			if a == noEvent {
				continue
			}
			for to := 0; to < k; to++ {
				b := s.look[to*k+mid]
				if b == noEvent {
					continue
				}
				if v := a + b; v < s.look[to*k+from] {
					s.look[to*k+from] = v
				}
			}
		}
	}
}

// SetPacer installs (or, with fn == nil or every == 0, removes) the
// boundary hook in ticker slot 0, armed at the first multiple of every
// strictly after the current cycle. The pacer persists across Runs.
func (s *Sharded) SetPacer(every uint64, fn func(boundary uint64)) {
	s.SetTicker(0, every, fn)
}

// SetTicker installs (or, with fn == nil or every == 0, removes) a
// boundary hook in the given slot, armed at the first multiple of every
// strictly after the current cycle. Slots are independent, so several
// subsystems (the observability sampler, the fault-class strike injector)
// can tick at different periods without clobbering each other; a boundary
// due in several slots fires them in ascending slot order. Tickers persist
// across Runs and must only be (un)installed between Runs.
func (s *Sharded) SetTicker(slot int, every uint64, fn func(boundary uint64)) {
	if slot < 0 {
		panic("engine: negative ticker slot")
	}
	for slot >= len(s.tickers) {
		s.tickers = append(s.tickers, ticker{})
	}
	if fn == nil || every == 0 {
		s.tickers[slot] = ticker{}
	} else {
		s.tickers[slot] = ticker{fn: fn, every: every, next: s.now - s.now%every + every}
	}
	// Trim dead tail slots so an armed-ticker check is len(tickers) > 0.
	for n := len(s.tickers); n > 0 && s.tickers[n-1].fn == nil; n = len(s.tickers) {
		s.tickers = s.tickers[:n-1]
	}
}

// tickNext returns the earliest pending ticker boundary and its slot (a
// shared boundary resolves to the lowest slot); noEvent and -1 when no
// ticker is armed.
func (s *Sharded) tickNext() (uint64, int) {
	b, slot := uint64(noEvent), -1
	for i := range s.tickers {
		if t := &s.tickers[i]; t.fn != nil && t.next < b {
			b, slot = t.next, i
		}
	}
	return b, slot
}

// fireTickers fires every pending ticker boundary <= limit in (boundary,
// slot) order, advancing each slot past its fired boundary.
func (s *Sharded) fireTickers(limit uint64) {
	for {
		b, slot := s.tickNext()
		if slot < 0 || b > limit {
			return
		}
		t := &s.tickers[slot]
		t.next += t.every
		t.fn(b)
	}
}

// Run fires events until every queue drains and returns the final cycle.
func (s *Sharded) Run() uint64 {
	s.stats = RunStats{}
	if len(s.shards) == 1 {
		return s.runSerial()
	}
	return s.runParallel()
}

func (s *Sharded) runSerial() uint64 {
	sh := &s.shards[0]
	var events, stamps, last uint64
	last = noEvent
	hasTickers := len(s.tickers) > 0
	for len(sh.heap) > 0 {
		if hasTickers {
			s.fireTickers(sh.heap[0].when)
		}
		ev := sh.pop()
		if ev.when != last {
			stamps++
			last = ev.when
		}
		events++
		sh.now = ev.when
		s.now = ev.when
		s.domains[ev.dst].sink.OnEvent(ev.kind, ev.a, ev.b)
	}
	s.stats.Events = events
	s.stats.Timestamps = stamps
	return s.now
}

func (s *Sharded) runParallel() uint64 {
	k := len(s.shards)
	if s.look == nil {
		s.buildLookahead()
	}
	bar := newBarrier(uint64(k))
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(w, bar)
		}(w)
	}
	wg.Wait()
	// The engine clock is the cycle of the last fired event: with
	// coalesced rounds each shard's now holds its own last-fired cycle, so
	// the global clock is their maximum (unchanged if nothing fired).
	for i := range s.shards {
		if sh := &s.shards[i]; sh.events != 0 && sh.now > s.now {
			s.now = sh.now
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.now = s.now
		s.stats.Events += sh.events
		s.stats.Timestamps += sh.timestamps
		s.stats.CrossShardMessages += sh.crossSent
		sh.events, sh.timestamps, sh.crossSent = 0, 0, 0
	}
	return s.now
}

// combinePlan runs inside the barrier on the last arriver: it reads every
// shard's published min, computes the global minimum and each shard's fire
// bound for the next round, and collects the cross-shard-traffic flag. A
// shard's bound is the earliest cycle at which any OTHER shard could still
// deliver a message to it — min over peers of (peer min + pair lookahead)
// — so firing everything strictly below the bound is safe. The shard
// holding the global minimum always has bound > globalMin (its peers are
// at >= globalMin and every lookahead is >= 1), which guarantees progress.
func (s *Sharded) combinePlan() {
	k := len(s.shards)
	g := noEvent
	for i := range s.pub {
		if m := s.pub[i].min; m < g {
			g = m
		}
	}
	s.hdr.globalMin = g
	if g == noEvent {
		return
	}
	// Clear any sent flags left by setup-time Sends: the pre-run ingest
	// already drained those outboxes, and this runs on the first barrier
	// with every worker parked. In steady state Sends only happen during
	// firing and are collected by combineTraffic, so this scan is a no-op.
	for i := range s.pub {
		if s.pub[i].sent.Load() != 0 {
			s.pub[i].sent.Store(0)
		}
	}
	// bound[to] = min over every shard `from` (including to itself, via
	// its shortest return cycle) of from's round-start minimum plus the
	// closed-walk lookahead from→to: the earliest cycle at which any chain
	// of not-yet-fired work anywhere could deliver an event into `to`.
	for to := 0; to < k; to++ {
		bound := noEvent
		row := s.look[to*k : to*k+k]
		for from := 0; from < k; from++ {
			m := s.pub[from].min
			l := row[from]
			if m == noEvent || l == noEvent {
				continue
			}
			v := m + l
			if v < m { // overflow: treat as unbounded
				continue
			}
			if v < bound {
				bound = v
			}
		}
		s.bounds[to].v = bound
	}
}

// worker advances one shard through lock-step rounds. Each round fires all
// local events strictly below the shard's bound (computed by the previous
// barrier's combiner), then synchronizes: a traffic barrier whose combiner
// ORs the per-shard sent flags, an optional mailbox ingest, and a plan
// barrier whose combiner publishes the next global minimum and bounds.
// Because every cross-shard Send travels an edge with lookahead >= the
// pair's table entry, a message created by an event at cycle >= peerMin
// arrives at >= peerMin + lookahead >= bound — never inside the window a
// shard is firing.
func (s *Sharded) worker(w int, bar *barrier) {
	sh := &s.shards[w]
	pub := &s.pub[w]
	// Setup-time Sends may have left rows in cross-shard outboxes (and set
	// sent flags); ingest them before publishing the initial minimum so no
	// shard's first min misses mailbox-only events.
	s.ingest(w)
	pub.min = sh.minWhen()
	bar.wait(s.combinePlan)
	for {
		t := s.hdr.globalMin
		if t == noEvent {
			return
		}
		if len(s.tickers) > 0 {
			if b, _ := s.tickNext(); b <= t {
				// Every worker saw the same t and ticker state (written only
				// by worker 0 between barriers), so all take this branch
				// together; worker 0 fires the hooks while the rest hold at
				// the second barrier with their domains parked.
				bar.wait(nil)
				if w == 0 {
					s.fireTickers(t)
				}
				bar.wait(nil)
			}
		}
		bound := s.bounds[w].v
		if len(s.tickers) > 0 {
			if b, _ := s.tickNext(); b < bound {
				// Never fire past the next ticker boundary: hooks must run
				// with all shards parked before any event at or after it.
				bound = b
			}
		}
		last := noEvent
		for len(sh.heap) > 0 && sh.heap[0].when < bound {
			ev := sh.pop()
			if ev.when != last {
				sh.timestamps++
				last = ev.when
			}
			sh.events++
			sh.now = ev.when
			s.domains[ev.dst].sink.OnEvent(ev.kind, ev.a, ev.b)
		}
		bar.wait(s.combineTraffic)
		if s.hdr.ingest != 0 {
			s.ingest(w)
		} else if w == 0 {
			s.stats.IngestsSkipped++
		}
		if w == 0 {
			s.stats.Rounds++
		}
		pub.min = sh.minWhen()
		bar.wait(s.combinePlan)
	}
}

// combineTraffic ORs and clears the per-shard sent flags so the round's
// ingest phase can be skipped when no cross-shard message is in flight.
func (s *Sharded) combineTraffic() {
	ingest := uint32(0)
	for i := range s.pub {
		if s.pub[i].sent.Load() != 0 {
			ingest = 1
			s.pub[i].sent.Store(0)
		}
	}
	s.hdr.ingest = ingest
}

// ingest drains column w of every shard's outbox into shard w's heap.
// Small batches push per event; a batch large relative to the heap appends
// everything and re-heapifies in O(heap+batch) (Floyd), which is cheaper
// than batch×log pushes. Either way the heap ends with the same element
// set, and because (when, key) is a strict total order the subsequent pop
// sequence — the only thing the simulation observes — is identical.
func (s *Sharded) ingest(w int) {
	sh := &s.shards[w]
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].out[w])
	}
	if total == 0 {
		return
	}
	if total > 32 && total > len(sh.heap) {
		for i := range s.shards {
			src := &s.shards[i]
			row := src.out[w]
			sh.heap = append(sh.heap, row...)
			src.out[w] = row[:0]
		}
		sh.heapify()
		return
	}
	for i := range s.shards {
		src := &s.shards[i]
		row := src.out[w]
		for j := range row {
			sh.push(row[j])
		}
		src.out[w] = row[:0]
	}
}

// barrier is a monotone-counter combining barrier: arrival n completes
// phase n/size; the last arriver of a phase runs the phase's combine
// function (with every peer parked, so it may read all published slots)
// and then releases the phase. The counters never reset, which avoids the
// classic sense-reversal race where a fast worker laps a slow one.
type barrier struct {
	size    uint64
	arrive  atomic.Uint64
	_       [48]byte
	release atomic.Uint64
	_pad2   [56]byte
	// spinBudget is how long a waiter hot-spins before yielding; shrunk
	// when size exceeds GOMAXPROCS so oversubscribed runs park instead of
	// burning whole quanta.
	spinBudget int
	oversubed  bool
}

func newBarrier(size uint64) *barrier {
	b := &barrier{size: size, spinBudget: 64}
	if int(size) > runtime.GOMAXPROCS(0) {
		b.spinBudget = 1
		b.oversubed = true
	}
	return b
}

// wait blocks until all size workers arrive; the last arriver runs combine
// (if non-nil) before releasing the phase. The release store happens after
// combine's writes and the waiters' loads synchronize with it, so combine's
// results are visible to every worker on return.
func (b *barrier) wait(combine func()) {
	a := b.arrive.Add(1)
	phase := (a + b.size - 1) / b.size
	if a == phase*b.size {
		if combine != nil {
			combine()
		}
		b.release.Store(phase)
		return
	}
	backoff := 0
	for spins := 0; b.release.Load() < phase; spins++ {
		if spins < b.spinBudget {
			continue
		}
		if !b.oversubed {
			runtime.Gosched()
			continue
		}
		// Oversubscribed: escalate from yield to sleep so K ≫ GOMAXPROCS
		// degrades to scheduling latency instead of livelock-adjacent spin.
		if backoff < 6 {
			runtime.Gosched()
			backoff++
			continue
		}
		shift := backoff - 6
		if shift > 6 {
			shift = 6
		}
		time.Sleep(time.Microsecond << shift)
		backoff++
	}
}
