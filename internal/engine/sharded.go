package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the bank-sharded parallel event engine: a
// multi-domain discrete-event simulator whose results are bit-identical at
// any shard count.
//
// The model is conservative parallel discrete-event simulation with unit
// lookahead. All simulator state is partitioned into domains; an event is
// owned by exactly one domain and only that domain's sink observes it.
// Within a domain, events fire in a canonical total order — (cycle, key),
// where the key packs the event's class, origin domain, and a per-domain
// scheduling sequence — that is a function of the simulation alone, never
// of how domains are grouped onto shards. Sharding therefore only decides
// which OS thread fires an event, not when or in what order relative to
// the rest of its domain, which is what makes K-invariance hold by
// construction instead of by careful merging.
//
// Cross-domain communication must use Send with a delivery delay of at
// least one cycle — the engine's lookahead. That guarantee means every
// message bound for cycle t exists in its destination shard's heap before
// the barrier round that processes t begins, so each timestamp is handled
// in exactly one round and no message can arrive "late" behind a
// same-cycle event that already fired.

// EventSink receives a domain's events. Exactly one sink is bound per
// domain; OnEvent is called only from the shard worker that owns the
// domain (or the caller's goroutine in serial mode), so a sink may touch
// its domain's state without locking — and must touch no other domain's.
type EventSink interface {
	OnEvent(kind uint8, a, b uint64)
}

const (
	seqBits    = 48
	domainBits = 15
	// msgClass marks cross-domain messages in the canonical key. At equal
	// cycle a domain fires its local events before delivered messages;
	// messages order among themselves by (source domain, source sequence).
	msgClass = uint64(1) << 63
	noEvent  = ^uint64(0)
)

// sevent is one queued event: payload (kind, a, b) for the sink of domain
// dst, firing at cycle `when`, totally ordered by (when, key).
type sevent struct {
	when uint64
	key  uint64
	a, b uint64
	dst  int32
	kind uint8
}

func (e sevent) less(o sevent) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	return e.key < o.key
}

// shardState is one shard's private event heap plus its outboxes. During a
// parallel round, shard w appends outgoing messages to out[dst] (only w
// writes its own rows) and, in the ingest phase, drains column w of every
// shard's outbox (only w reads/resets that column); the round barriers
// order the two phases, so no slice is ever touched concurrently.
type shardState struct {
	heap []sevent
	out  [][]sevent
	// now is the cycle the shard is processing; Domain.Now reads it, so it
	// is written only by the owning worker (or single-threaded code).
	now uint64
	// min is the shard's next event cycle (noEvent when drained),
	// published between barriers so every worker derives the next round's
	// timestamp from the same snapshot.
	min  uint64
	_pad [40]byte // keep hot per-shard words off shared cache lines
}

func (sh *shardState) push(ev sevent) {
	sh.heap = append(sh.heap, ev)
	i := len(sh.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.less(sh.heap[parent]) {
			break
		}
		sh.heap[i] = sh.heap[parent]
		i = parent
	}
	sh.heap[i] = ev
}

func (sh *shardState) pop() sevent {
	top := sh.heap[0]
	n := len(sh.heap) - 1
	last := sh.heap[n]
	sh.heap = sh.heap[:n]
	if n == 0 {
		return top
	}
	// Bottom-up hole sift, as in Engine.siftDown: walk the hole down the
	// min-child path, then sift the displaced last element back up.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if sh.heap[c].less(sh.heap[best]) {
				best = c
			}
		}
		sh.heap[i] = sh.heap[best]
		i = best
	}
	for i > 0 {
		parent := (i - 1) / 4
		if !last.less(sh.heap[parent]) {
			break
		}
		sh.heap[i] = sh.heap[parent]
		i = parent
	}
	sh.heap[i] = last
	return top
}

func (sh *shardState) minWhen() uint64 {
	if len(sh.heap) == 0 {
		return noEvent
	}
	return sh.heap[0].when
}

// Domain is one partition of simulator state: an event queue identity
// whose events all fire on one shard, in canonical order. Obtain domains
// from Sharded.Domain; the zero value is not usable.
type Domain struct {
	eng   *Sharded
	id    int32
	shard int32
	seq   uint64
	sink  EventSink
}

// Bind attaches the sink that receives this domain's events.
func (d *Domain) Bind(sink EventSink) { d.sink = sink }

// ID returns the domain's index.
func (d *Domain) ID() int { return int(d.id) }

// Now returns the cycle the domain's shard is processing (equal to the
// engine clock outside Run).
func (d *Domain) Now() uint64 { return d.eng.shards[d.shard].now }

// After schedules a local event on this domain, delay cycles from its
// current cycle. A delay of 0 fires later in the same cycle, after the
// domain's already-queued same-cycle local events. Call it during setup
// (between Runs) or from this domain's own sink; never from another
// domain's.
func (d *Domain) After(delay uint64, kind uint8, a, b uint64) {
	sh := &d.eng.shards[d.shard]
	d.seq++
	sh.push(sevent{
		when: sh.now + delay,
		key:  uint64(d.id)<<seqBits | d.seq,
		a:    a, b: b,
		dst:  d.id,
		kind: kind,
	})
}

// Send schedules an event on another domain, delay cycles from the sending
// domain's current cycle. The delay must be at least 1 — the engine's
// lookahead: it is what lets shards process a timestamp in one barrier
// round, knowing no same-cycle message can still be in flight. Delivery
// order at equal cycle is canonical — after the destination's local
// events, ordered by (sending domain, sending sequence) — so results do
// not depend on shard grouping.
func (d *Domain) Send(dst *Domain, delay uint64, kind uint8, a, b uint64) {
	if delay == 0 {
		panic("engine: Send requires delay >= 1 (the cross-domain lookahead)")
	}
	e := d.eng
	sh := &e.shards[d.shard]
	d.seq++
	ev := sevent{
		when: sh.now + delay,
		key:  msgClass | uint64(d.id)<<seqBits | d.seq,
		a:    a, b: b,
		dst:  dst.id,
		kind: kind,
	}
	if ds := dst.shard; ds == d.shard {
		sh.push(ev)
	} else {
		sh.out[ds] = append(sh.out[ds], ev)
	}
}

// Sharded is a discrete-event engine over a fixed set of domains, able to
// fire independent domains' events in parallel. Construct with NewSharded.
//
// With one shard (the default) Run is a plain serial pop loop with zero
// steady-state allocations — the fast path the sweep uses. With K shards,
// K workers advance in lock-step rounds of one timestamp each under a spin
// barrier; every statistic, event order, and observer stream is
// bit-identical to the serial run at any K.
type Sharded struct {
	domains []Domain
	shards  []shardState
	now     uint64

	// pacer is an optional hook fired once per boundary (multiples of
	// pacerEvery) strictly between rounds: every domain is parked when it
	// runs, so it may read all simulator state. It fires for each boundary
	// B <= the next event cycle, which reproduces the semantics of a
	// daemon ticker event on the serial engine: a boundary with no
	// remaining events after it never fires.
	pacer      func(boundary uint64)
	pacerEvery uint64
	pacerNext  uint64
}

// NewSharded returns an engine over numDomains domains, initially with one
// shard (serial execution).
func NewSharded(numDomains int) *Sharded {
	if numDomains < 1 || numDomains >= 1<<domainBits {
		panic(fmt.Sprintf("engine: %d domains out of range", numDomains))
	}
	s := &Sharded{domains: make([]Domain, numDomains)}
	for i := range s.domains {
		s.domains[i] = Domain{eng: s, id: int32(i)}
	}
	s.setShards(1)
	return s
}

// Domain returns domain i.
func (s *Sharded) Domain(i int) *Domain { return &s.domains[i] }

// NumDomains returns the number of domains.
func (s *Sharded) NumDomains() int { return len(s.domains) }

// Now returns the engine clock: the cycle of the last fired event.
func (s *Sharded) Now() uint64 { return s.now }

// Shards returns the current shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Pending returns the number of queued events across all shards.
func (s *Sharded) Pending() int {
	total := 0
	for i := range s.shards {
		total += len(s.shards[i].heap)
		for _, row := range s.shards[i].out {
			total += len(row)
		}
	}
	return total
}

// SetShards regroups the domains onto k shards (clamped to [1, domains]).
// It must be called with no queued events — between Runs — because events
// live in per-shard heaps. Results are identical at any k; only wall-clock
// changes.
func (s *Sharded) SetShards(k int) {
	if s.Pending() != 0 {
		panic("engine: SetShards with events queued")
	}
	if k < 1 {
		k = 1
	}
	if k > len(s.domains) {
		k = len(s.domains)
	}
	s.setShards(k)
}

func (s *Sharded) setShards(k int) {
	s.shards = make([]shardState, k)
	for i := range s.shards {
		s.shards[i].out = make([][]sevent, k)
		s.shards[i].now = s.now
		s.shards[i].min = noEvent
	}
	for i := range s.domains {
		s.domains[i].shard = int32(i % k)
	}
}

// SetPacer installs (or, with fn == nil or every == 0, removes) the
// boundary hook, armed at the first multiple of every strictly after the
// current cycle. The pacer persists across Runs.
func (s *Sharded) SetPacer(every uint64, fn func(boundary uint64)) {
	if fn == nil || every == 0 {
		s.pacer = nil
		s.pacerEvery = 0
		return
	}
	s.pacer = fn
	s.pacerEvery = every
	s.pacerNext = s.now - s.now%every + every
}

// Run fires events until every queue drains and returns the final cycle.
func (s *Sharded) Run() uint64 {
	if len(s.shards) == 1 {
		return s.runSerial()
	}
	return s.runParallel()
}

func (s *Sharded) runSerial() uint64 {
	sh := &s.shards[0]
	for len(sh.heap) > 0 {
		if s.pacer != nil {
			for t := sh.heap[0].when; s.pacerNext <= t; {
				b := s.pacerNext
				s.pacerNext += s.pacerEvery
				s.pacer(b)
			}
		}
		ev := sh.pop()
		sh.now = ev.when
		s.now = ev.when
		s.domains[ev.dst].sink.OnEvent(ev.kind, ev.a, ev.b)
	}
	return s.now
}

func (s *Sharded) runParallel() uint64 {
	k := len(s.shards)
	bar := newBarrier(uint64(k))
	var wg sync.WaitGroup
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s.worker(w, bar)
		}(w)
	}
	wg.Wait()
	for i := range s.shards {
		s.shards[i].now = s.now
	}
	return s.now
}

// worker advances one shard through lock-step rounds. Each round handles
// exactly one timestamp t (the global minimum): fire all local events at
// t, barrier, ingest cross-shard messages and republish the local minimum,
// barrier. Because Send enforces a delay of >= 1, messages generated in
// round t deliver at t+1 or later, so t never needs a second round.
func (s *Sharded) worker(w int, bar *barrier) {
	sh := &s.shards[w]
	sh.min = sh.minWhen()
	bar.wait()
	for {
		t := noEvent
		for i := range s.shards {
			if m := s.shards[i].min; m < t {
				t = m
			}
		}
		if t == noEvent {
			return
		}
		if s.pacer != nil && s.pacerNext <= t {
			// Every worker saw the same t and pacerNext, so all take this
			// branch together; worker 0 fires the hook while the rest hold
			// at the second barrier with their domains parked.
			bar.wait()
			if w == 0 {
				for s.pacerNext <= t {
					b := s.pacerNext
					s.pacerNext += s.pacerEvery
					s.pacer(b)
				}
			}
			bar.wait()
		}
		sh.now = t
		if w == 0 {
			s.now = t
		}
		for len(sh.heap) > 0 && sh.heap[0].when == t {
			ev := sh.pop()
			s.domains[ev.dst].sink.OnEvent(ev.kind, ev.a, ev.b)
		}
		bar.wait()
		for i := range s.shards {
			src := &s.shards[i]
			row := src.out[w]
			for j := range row {
				sh.push(row[j])
			}
			src.out[w] = row[:0]
		}
		sh.min = sh.minWhen()
		bar.wait()
	}
}

// barrier is a monotone-counter spin barrier: arrival n completes phase
// n/size, and a waiter spins until its own phase completes. The counter
// never resets, which avoids the classic sense-reversal race where a fast
// worker laps a slow one.
type barrier struct {
	size   uint64
	arrive atomic.Uint64
}

func newBarrier(size uint64) *barrier { return &barrier{size: size} }

func (b *barrier) wait() {
	a := b.arrive.Add(1)
	target := (a + b.size - 1) / b.size * b.size
	for spins := 0; b.arrive.Load() < target; spins++ {
		if spins >= 64 {
			// Beyond a short spin, yield: shard counts above the core
			// count (or a loaded machine) must make progress, not burn the
			// quantum.
			runtime.Gosched()
		}
	}
}
