package engine

import "testing"

func TestZeroValueUsable(t *testing.T) {
	var e Engine
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatal("zero engine not at cycle 0")
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventOrderingByTime(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	final := e.Run()
	if final != 30 {
		t.Fatalf("final cycle %d", final)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestSameCycleFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of scheduling order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []uint64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(4, func() {
			hits = append(hits, e.Now())
			e.Schedule(0, func() { hits = append(hits, e.Now()) })
		})
	})
	e.Run()
	want := []uint64{1, 5, 5}
	if len(hits) != 3 || hits[0] != want[0] || hits[1] != want[1] || hits[2] != want[2] {
		t.Fatalf("hits %v, want %v", hits, want)
	}
}

func TestZeroDelayRunsAfterQueuedSameCycle(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(0, func() { order = append(order, 1) })
	e.Schedule(0, func() { order = append(order, 2) })
	e.Run()
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("order %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	if e.RunUntil(15) {
		t.Fatal("RunUntil reported drain with a pending event")
	}
	if fired != 1 || e.Now() != 10 {
		t.Fatalf("fired=%d now=%d", fired, e.Now())
	}
	if !e.RunUntil(100) {
		t.Fatal("RunUntil did not drain")
	}
	if fired != 2 {
		t.Fatalf("fired=%d", fired)
	}
}

func TestClockMonotone(t *testing.T) {
	var e Engine
	last := uint64(0)
	for i := 0; i < 100; i++ {
		d := uint64(i % 7)
		e.Schedule(d, func() {
			if e.Now() < last {
				t.Fatal("clock went backwards")
			}
			last = e.Now()
		})
	}
	e.Run()
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 100; j++ {
			e.Schedule(uint64(j%13), func() {})
		}
		e.Run()
	}
}
