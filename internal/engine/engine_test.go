package engine

import "testing"

func TestZeroValueUsable(t *testing.T) {
	var e Engine
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatal("zero engine not at cycle 0")
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestEventOrderingByTime(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	final := e.Run()
	if final != 30 {
		t.Fatalf("final cycle %d", final)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestSameCycleFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events fired out of scheduling order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var hits []uint64
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(4, func() {
			hits = append(hits, e.Now())
			e.Schedule(0, func() { hits = append(hits, e.Now()) })
		})
	})
	e.Run()
	want := []uint64{1, 5, 5}
	if len(hits) != 3 || hits[0] != want[0] || hits[1] != want[1] || hits[2] != want[2] {
		t.Fatalf("hits %v, want %v", hits, want)
	}
}

func TestZeroDelayRunsAfterQueuedSameCycle(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(0, func() { order = append(order, 1) })
	e.Schedule(0, func() { order = append(order, 2) })
	e.Run()
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("order %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	if e.RunUntil(15) {
		t.Fatal("RunUntil reported drain with a pending event")
	}
	if fired != 1 || e.Now() != 10 {
		t.Fatalf("fired=%d now=%d", fired, e.Now())
	}
	if !e.RunUntil(100) {
		t.Fatal("RunUntil did not drain")
	}
	if fired != 2 {
		t.Fatalf("fired=%d", fired)
	}
}

func TestClockMonotone(t *testing.T) {
	var e Engine
	last := uint64(0)
	for i := 0; i < 100; i++ {
		d := uint64(i % 7)
		e.Schedule(d, func() {
			if e.Now() < last {
				t.Fatal("clock went backwards")
			}
			last = e.Now()
		})
	}
	e.Run()
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 100; j++ {
			e.Schedule(uint64(j%13), func() {})
		}
		e.Run()
	}
}

// countHandler is a reusable Handler for daemon tests; reschedule, when
// non-zero, makes it re-queue itself as a daemon event after each firing.
type countHandler struct {
	e          *Engine
	fired      []uint64
	reschedule uint64
}

func (h *countHandler) Fire() {
	h.fired = append(h.fired, h.e.Now())
	if h.reschedule != 0 {
		h.e.ScheduleDaemonHandler(h.reschedule, h)
	}
}

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	var e Engine
	d := &countHandler{e: &e}
	e.ScheduleDaemonHandler(5, d)
	if got := e.Run(); got != 0 {
		t.Fatalf("Run with only a daemon queued advanced to cycle %d, want 0", got)
	}
	if len(d.fired) != 0 {
		t.Fatalf("daemon fired %d times with no live events", len(d.fired))
	}
	if e.Pending() != 1 || e.PendingLive() != 0 {
		t.Fatalf("Pending=%d PendingLive=%d, want 1/0", e.Pending(), e.PendingLive())
	}
}

func TestDaemonInterleavesWithLiveEvents(t *testing.T) {
	var e Engine
	d := &countHandler{e: &e, reschedule: 10}
	e.ScheduleDaemonHandler(10, d)
	e.Schedule(35, func() {})
	if got := e.Run(); got != 35 {
		t.Fatalf("final cycle %d, want 35", got)
	}
	// Boundaries 10, 20, 30 precede the live event at 35; the tick armed
	// for 40 stays queued.
	if len(d.fired) != 3 || d.fired[0] != 10 || d.fired[1] != 20 || d.fired[2] != 30 {
		t.Fatalf("daemon fired at %v, want [10 20 30]", d.fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("rearmed daemon not left queued: Pending=%d", e.Pending())
	}
}

func TestDaemonPersistsAcrossRuns(t *testing.T) {
	var e Engine
	d := &countHandler{e: &e, reschedule: 10}
	e.ScheduleDaemonHandler(10, d)
	e.Schedule(15, func() {})
	e.Run()
	if len(d.fired) != 1 || d.fired[0] != 10 {
		t.Fatalf("first run: daemon fired at %v, want [10]", d.fired)
	}
	// A second Run with fresh live events resumes the same daemon from its
	// queued position (cycle 20) without rearming.
	e.Schedule(30, func() {}) // now=15, so fires at 45
	e.Run()
	if len(d.fired) != 4 || d.fired[1] != 20 || d.fired[2] != 30 || d.fired[3] != 40 {
		t.Fatalf("second run: daemon fired at %v, want [10 20 30 40]", d.fired)
	}
}

func TestDaemonSameCycleFIFOWithLive(t *testing.T) {
	var e Engine
	var order []string
	e.Schedule(5, func() { order = append(order, "live1") })
	e.ScheduleDaemonHandler(5, funcHandler(func() { order = append(order, "daemon") }))
	e.Schedule(5, func() { order = append(order, "live2") })
	e.Run()
	if len(order) != 3 || order[0] != "live1" || order[1] != "daemon" || order[2] != "live2" {
		t.Fatalf("same-cycle order %v, want [live1 daemon live2]", order)
	}
}

func TestRunUntilStopsOnDaemonOnlyQueue(t *testing.T) {
	var e Engine
	d := &countHandler{e: &e, reschedule: 10}
	e.ScheduleDaemonHandler(10, d)
	e.Schedule(25, func() {})
	if !e.RunUntil(100) {
		t.Fatal("RunUntil(100) did not drain the live queue")
	}
	if e.Now() != 25 {
		t.Fatalf("stopped at cycle %d, want 25", e.Now())
	}
}

// TestScheduleHandlerSteadyStateAllocFree pins the zero-allocation property
// the simulator's hot path depends on: once the queue's backing array has
// grown, scheduling reused handlers (daemon or not) and draining them
// allocates nothing.
func TestScheduleHandlerSteadyStateAllocFree(t *testing.T) {
	var e Engine
	live := &countHandler{e: &e}
	daemon := &countHandler{e: &e}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 8; i++ {
			e.ScheduleHandler(uint64(i%3), live)
		}
		e.ScheduleDaemonHandler(1, daemon)
		e.Run()
		live.fired = live.fired[:0]
		daemon.fired = daemon.fired[:0]
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/run allocated %.1f times per iteration", allocs)
	}
}
