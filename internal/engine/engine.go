// Package engine provides the discrete-event simulation kernel: a clock and
// event queues with deterministic same-cycle ordering.
//
// The GPU memory-hierarchy model is expressed as events (request issue,
// bank response, DRAM completion) scheduled at future cycles. Determinism
// matters: two events at the same cycle fire in a canonical order, so a
// simulation configuration plus a seed fully determines every statistic.
//
// The production kernel is Sharded (sharded.go): simulator state is
// partitioned into domains, each with a bound EventSink, and domains are
// grouped onto K shards that advance in lock-step barrier rounds. Each
// round fires every event below a per-shard bound derived from the
// transitive closure of declared per-edge minimum Send delays (DeclareEdge),
// so one round coalesces many cycles of work; without declarations the
// engine falls back to a conservative one-cycle lookahead. K=1 is a plain
// serial pop loop with zero steady-state allocations; results are
// bit-identical at every K.
//
// Engine (this file) is the original single-queue kernel, kept as the
// compact reference implementation: a typed four-ary min-heap ordered by
// (cycle, scheduling sequence) with the same zero-allocation discipline
// (reusable Handler objects via ScheduleHandler). Sharded reuses its heap
// layout per shard; the oracle tests in determinism_test.go pin its
// ordering against a naive reference queue.
package engine

// Handler is a scheduled callback object. Implementations that are reused
// (e.g. drawn from a free list) make scheduling allocation-free.
type Handler interface {
	Fire()
}

// funcHandler adapts a plain func to Handler. Func values without captured
// variables convert for free; capturing closures still allocate once, as
// they did under the previous container/heap queue.
type funcHandler func()

func (f funcHandler) Fire() { f() }

// event is a queue entry: a handler and its (when, seq) total order. The
// low bit of seq flags daemon events (see ScheduleDaemonHandler); the
// remaining bits carry the monotone scheduling sequence, so the packed
// value preserves FIFO order without widening the struct.
type event struct {
	when uint64
	seq  uint64
	h    Handler
}

// daemonBit marks an event that does not keep Run alive.
const daemonBit = 1

// less orders events by cycle, breaking ties by scheduling sequence so that
// same-cycle events fire in FIFO order.
func (a event) less(b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// seedCap is the queue capacity served by the Engine's inline backing
// array. Queues that stay within it (the simulator's in-flight event count
// rarely passes a few hundred) never allocate for event storage.
const seedCap = 128

// Engine is a discrete-event simulator clock. The zero value is ready to
// use at cycle 0. An Engine must not be copied after its first Schedule:
// the queue starts on the inline seed array.
type Engine struct {
	now    uint64
	seq    uint64
	events []event // four-ary heap: children of i at 4i+1..4i+4
	// live counts queued non-daemon events; Run and RunUntil stop when it
	// reaches zero even if daemon events (observability tickers) remain.
	live int
	// seed is the initial backing array for events, so a fresh Engine
	// schedules without the append growth ladder (and, when the Engine
	// itself is stack-allocated, without any heap allocation at all).
	seed [seedCap]event
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in the
// current cycle, after already-queued same-cycle events.
func (e *Engine) Schedule(delay uint64, fn func()) {
	e.ScheduleHandler(delay, funcHandler(fn))
}

// ScheduleHandler runs h.Fire() delay cycles from now, with the same
// same-cycle FIFO ordering as Schedule. Reusing handler objects keeps the
// call allocation-free.
func (e *Engine) ScheduleHandler(delay uint64, h Handler) {
	e.push(delay, h, 0)
}

// ScheduleDaemonHandler queues h like ScheduleHandler but as a daemon
// event: it fires in its normal (when, seq) position while other events
// are being drained, yet does not by itself keep Run or RunUntil alive.
// This is what periodic instrumentation (the gpu package's epoch sampler)
// uses to tick for as long as the simulation runs without turning Run into
// an infinite loop. Daemon events left in the queue when Run returns stay
// queued and resume firing on the next Run call.
func (e *Engine) ScheduleDaemonHandler(delay uint64, h Handler) {
	e.push(delay, h, daemonBit)
}

func (e *Engine) push(delay uint64, h Handler, flag uint64) {
	if e.events == nil {
		e.events = e.seed[:0]
	}
	e.seq++
	if flag == 0 {
		e.live++
	}
	e.events = append(e.events, event{when: e.now + delay, seq: e.seq<<1 | flag, h: h})
	e.siftUp(len(e.events) - 1)
}

func (e *Engine) siftUp(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.less(e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = ev
}

// siftDown restores heap order after the element at i was replaced
// (typically by the former last element during a pop). It uses the
// bottom-up variant: walk the hole down the min-child path to a leaf
// comparing only siblings, then sift the displaced element back up. The
// displaced element is usually among the most recently scheduled, so it
// belongs near a leaf and the up-pass ends after one comparison — saving
// the per-level compare against it that the classic loop pays.
func (e *Engine) siftDown(i int) {
	n := len(e.events)
	ev := e.events[i]
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.events[c].less(e.events[best]) {
				best = c
			}
		}
		e.events[i] = e.events[best]
		i = best
	}
	for i > start {
		parent := (i - 1) / 4
		if !ev.less(e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = ev
}

// Pending returns the number of queued events, daemon events included.
func (e *Engine) Pending() int { return len(e.events) }

// PendingLive returns the number of queued non-daemon events — the count
// that keeps Run going.
func (e *Engine) PendingLive() int { return e.live }

// Step fires the next event (daemon or not), advancing the clock to its
// cycle. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{} // release the Handler reference
	e.events = e.events[:n]
	if n > 0 {
		e.siftDown(0)
	}
	if ev.seq&daemonBit == 0 {
		e.live--
	}
	e.now = ev.when
	ev.h.Fire()
	return true
}

// Run fires events until every non-daemon event has drained, returning the
// final cycle. Daemon events interleave in (when, seq) order while the
// queue is live; any still queued when the last non-daemon event retires
// are left for a future Run.
func (e *Engine) Run() uint64 {
	for e.live > 0 {
		e.Step()
	}
	return e.now
}

// RunUntil fires events up to and including cycle limit, returning true if
// the non-daemon queue drained (false means the limit cut the run short).
func (e *Engine) RunUntil(limit uint64) bool {
	for e.live > 0 {
		if e.events[0].when > limit {
			return false
		}
		e.Step()
	}
	return true
}
