// Package engine provides the discrete-event simulation kernel: a clock and
// an event queue with deterministic same-cycle ordering.
//
// The GPU memory-hierarchy model is expressed as events (request issue,
// bank response, DRAM completion) scheduled at future cycles. Determinism
// matters: two events at the same cycle fire in scheduling order, so a
// simulation configuration plus a seed fully determines every statistic.
package engine

import "container/heap"

// Event is a scheduled callback.
type event struct {
	when uint64
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a discrete-event simulator clock. The zero value is ready to
// use at cycle 0.
type Engine struct {
	now    uint64
	seq    uint64
	events eventHeap
}

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// Schedule runs fn delay cycles from now. A delay of 0 runs fn later in the
// current cycle, after already-queued same-cycle events.
func (e *Engine) Schedule(delay uint64, fn func()) {
	e.seq++
	heap.Push(&e.events, event{when: e.now + delay, seq: e.seq, fn: fn})
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Step fires the next event, advancing the clock to its cycle. It returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.when
	ev.fn()
	return true
}

// Run fires events until the queue drains, returning the final cycle.
func (e *Engine) Run() uint64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events up to and including cycle limit, returning true if
// the queue drained (false means the limit cut the run short).
func (e *Engine) RunUntil(limit uint64) bool {
	for len(e.events) > 0 {
		if e.events[0].when > limit {
			return false
		}
		e.Step()
	}
	return true
}
