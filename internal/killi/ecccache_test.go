package killi

import (
	"testing"
)

func TestECCCacheSizing(t *testing.T) {
	cases := []struct {
		l2Lines, ratio, assoc int
		wantEntries           int
	}{
		{32768, 16, 4, 2048},
		{32768, 256, 4, 128},
		{32768, 64, 4, 512},
		{16, 4, 4, 4}, // exactly one set
		// Degenerate sizing shrinks associativity instead of padding
		// capacity: the 1:ratio entry budget survives per-bank splits.
		{16, 32, 4, 1},
		{16, 8, 4, 2},
	}
	for _, c := range cases {
		e := newECCCache(c.l2Lines, c.ratio, c.assoc)
		if got := e.Entries(); got != c.wantEntries {
			t.Errorf("newECCCache(%d, %d, %d).Entries() = %d, want %d",
				c.l2Lines, c.ratio, c.assoc, got, c.wantEntries)
		}
	}
}

func TestECCCacheAllocateReusesExisting(t *testing.T) {
	e := newECCCache(64, 4, 4) // 16 entries, 4 sets
	entry1, ev, _ := e.allocate(0, 100)
	if ev != -1 {
		t.Fatal("first allocation evicted")
	}
	entry1.parity12 = 0xabc
	entry2, ev, _ := e.allocate(0, 100)
	if ev != -1 {
		t.Fatal("re-allocation evicted")
	}
	if entry2.parity12 != 0xabc {
		t.Fatal("re-allocation returned a different entry")
	}
	if e.occupancy() != 1 {
		t.Fatalf("occupancy = %d", e.occupancy())
	}
}

func TestECCCacheEvictionReportsVictimAndOldEntry(t *testing.T) {
	e := newECCCache(16, 4, 4) // 4 entries, 1 set
	for i := 0; i < 4; i++ {
		entry, ev, _ := e.allocate(0, 100+i)
		entry.parity12 = uint16(i)
		if ev != -1 {
			t.Fatalf("allocation %d evicted", i)
		}
	}
	// Fifth allocation evicts the LRU (line 100) and hands back its
	// metadata.
	_, ev, old := e.allocate(0, 200)
	if ev != 100 {
		t.Fatalf("evicted line %d, want 100", ev)
	}
	if old.parity12 != 0 {
		t.Fatalf("old entry parity = %#x, want 0 (line 100's)", old.parity12)
	}
}

func TestECCCacheTouchProtectsFromEviction(t *testing.T) {
	e := newECCCache(16, 4, 4)
	for i := 0; i < 4; i++ {
		e.allocate(0, 100+i)
	}
	// Touch the would-be LRU.
	if _, set, way, hit := e.lookup(0, 100); !hit {
		t.Fatal("lookup failed")
	} else {
		e.touch(set, way)
	}
	_, ev, _ := e.allocate(0, 200)
	if ev == 100 {
		t.Fatal("touched entry evicted")
	}
}

func TestECCCacheInvalidate(t *testing.T) {
	e := newECCCache(16, 4, 4)
	e.allocate(0, 5)
	e.invalidate(0, 5)
	if _, _, _, hit := e.lookup(0, 5); hit {
		t.Fatal("entry alive after invalidate")
	}
	if e.occupancy() != 0 {
		t.Fatal("occupancy nonzero after invalidate")
	}
	// Invalidating a missing entry is a no-op.
	e.invalidate(0, 99)
}

func TestECCCacheReset(t *testing.T) {
	e := newECCCache(64, 4, 4)
	for i := 0; i < 10; i++ {
		entry, _, _ := e.allocate(i%4, i)
		entry.parity12 = 0xfff
	}
	e.reset()
	if e.occupancy() != 0 {
		t.Fatal("occupancy after reset")
	}
	entry, _, _ := e.allocate(0, 0)
	if entry.parity12 != 0 {
		t.Fatal("reset left stale metadata")
	}
}

func TestECCCacheSetAliasing(t *testing.T) {
	// Disjoint L2 sets alias onto the same ECC set — the contention the
	// paper describes. With 4 ECC sets, L2 sets 0 and 4 must share.
	e := newECCCache(64, 4, 4)
	if e.setFor(0) != e.setFor(4) {
		t.Fatal("L2 sets 0 and 4 do not alias with 4 ECC sets")
	}
	if e.setFor(0) == e.setFor(1) {
		t.Fatal("adjacent L2 sets should map to different ECC sets")
	}
}
