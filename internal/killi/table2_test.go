package killi

// Exhaustive tests for the paper's Table 2: every reachable row of the DFH
// transition table, driven through real fault injection rather than by
// poking the FSM directly.

import (
	"testing"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/protection"
	"killi/internal/xrand"
)

// row helper: build host+scheme with given faults on line (0,0), fill with
// data, optionally mutate, then read-hit and check verdict+state.
type table2Case struct {
	name    string
	faults  []faultmodel.Fault
	data    func(r *xrand.Rand) bitvec.Line
	mutate  func(h *testHost, k *Scheme, id int) // after classification
	preHits int                                  // classification hits before the checked one
	want    protection.Verdict
	wantDFH DFH
}

func runTable2(t *testing.T, tc table2Case) {
	t.Helper()
	h := newHost(t, 4, 4, [][]faultmodel.Fault{tc.faults}, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	r := xrand.New(99)
	data := tc.data(r)
	fill(h, k, 0, 0, data)
	id := h.tags.LineID(0, 0)
	for i := 0; i < tc.preHits; i++ {
		got := h.data.Read(id)
		if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
			t.Fatalf("pre-hit %d: verdict %v", i, v)
		}
	}
	if tc.mutate != nil {
		tc.mutate(h, k, id)
	}
	got := h.data.Read(id)
	v := k.OnReadHit(0, 0, &got)
	if v != tc.want {
		t.Fatalf("verdict %v, want %v", v, tc.want)
	}
	if dfh := k.DFHOf(0, 0); dfh != tc.wantDFH {
		t.Fatalf("DFH %v, want %v", dfh, tc.wantDFH)
	}
	if v == protection.Deliver && got != h.data.ReadTrue(id) {
		t.Fatal("delivered data differs from ground truth")
	}
}

func zeroLine(r *xrand.Rand) bitvec.Line { return bitvec.Line{} }

func TestTable2Row_00_Clean(t *testing.T) {
	// b'00, S✓ → send clean line, stay b'00.
	runTable2(t, table2Case{
		data:    randomLine,
		preHits: 1, // classify to b'00
		want:    protection.Deliver,
		wantDFH: Stable0,
	})
}

func TestTable2Row_00_SingleMismatch(t *testing.T) {
	// b'00, S✗ → error-induced miss, back to b'01 ("initial
	// classification incorrect").
	runTable2(t, table2Case{
		data:    randomLine,
		preHits: 1,
		mutate: func(h *testHost, k *Scheme, id int) {
			h.data.InjectSoftError(id, 42)
		},
		want:    protection.ErrorMiss,
		wantDFH: Initial,
	})
}

func TestTable2Row_00_MultiMismatch(t *testing.T) {
	// b'00, S✗✗ → disable ("multi-bit error discovered after training").
	runTable2(t, table2Case{
		data:    randomLine,
		preHits: 1,
		mutate: func(h *testHost, k *Scheme, id int) {
			h.data.InjectSoftError(id, 0) // fold segment 0
			h.data.InjectSoftError(id, 1) // fold segment 1
		},
		want:    protection.ErrorMiss,
		wantDFH: Disabled,
	})
}

func TestTable2Row_01_NoError(t *testing.T) {
	// b'01, ✓✓✓ → invalidate ECC entry, send clean, b'00. "Most frequent
	// scenario."
	runTable2(t, table2Case{
		data:    randomLine,
		want:    protection.Deliver,
		wantDFH: Stable0,
	})
}

func TestTable2Row_01_OneBitLVError(t *testing.T) {
	// b'01, ✗✗✗ → correct using checkbits, b'10.
	runTable2(t, table2Case{
		faults:  []faultmodel.Fault{stuck(13, 1)},
		data:    zeroLine,
		want:    protection.Deliver,
		wantDFH: Stable1,
	})
}

func TestTable2Row_01_SameSegmentDouble(t *testing.T) {
	// b'01, S✓ (both errors share interleaved segment 0), syndrome ✗,
	// G✓ → "even number of errors" → b'11. ECC catches what parity
	// misses.
	runTable2(t, table2Case{
		faults:  []faultmodel.Fault{stuck(0, 1), stuck(16, 1)},
		data:    zeroLine,
		want:    protection.ErrorMiss,
		wantDFH: Disabled,
	})
}

func TestTable2Row_01_CrossSegmentDouble(t *testing.T) {
	// b'01, S✗✗, syndrome ✗, G✓ → "multi-bit error" → b'11.
	runTable2(t, table2Case{
		faults:  []faultmodel.Fault{stuck(0, 1), stuck(5, 1)},
		data:    zeroLine,
		want:    protection.ErrorMiss,
		wantDFH: Disabled,
	})
}

func TestTable2Row_01_OddMultiBit(t *testing.T) {
	// b'01, S✗✗, G✗ → "odd number of multi-bit errors" → b'11.
	runTable2(t, table2Case{
		faults:  []faultmodel.Fault{stuck(0, 1), stuck(5, 1), stuck(9, 1)},
		data:    zeroLine,
		want:    protection.ErrorMiss,
		wantDFH: Disabled,
	})
}

func TestTable2Row_01_ForgedSingleErrorSignatureCaught(t *testing.T) {
	// Three errors, two sharing an interleaved segment: the signature
	// (S✗ single, syndrome ✗, G✗ odd) mimics the 1-bit row, but the
	// post-correction parity recheck must catch the SECDED miscorrection
	// and disable the line (§5.3's joint parity∧SECDED detection).
	runTable2(t, table2Case{
		faults:  []faultmodel.Fault{stuck(0, 1), stuck(16, 1), stuck(5, 1)},
		data:    zeroLine,
		want:    protection.ErrorMiss,
		wantDFH: Disabled,
	})
}

func TestTable2Row_10_ErrorVanished(t *testing.T) {
	// b'10, ✓✓✓ → b'00 ("non-LV transient error that was subsequently
	// overwritten"). Emulate with a severity-thresholded fault that
	// deactivates when the voltage rises mid-run... simpler: a soft error
	// classified as the "LV fault", then overwritten by a store.
	h := newHost(t, 4, 4, nil, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	id := h.tags.LineID(0, 0)
	data := randomLine(xrand.New(5))
	fill(h, k, 0, 0, data)
	h.data.InjectSoftError(id, 99) // transient masquerading as LV fault
	got := h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("setup: %v / %v", v, k.DFHOf(0, 0))
	}
	// The write-through store overwrites the transient.
	h.data.Write(id, data)
	k.OnWriteHit(0, 0, data)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Stable0 {
		t.Fatalf("DFH %v, want b'00", k.DFHOf(0, 0))
	}
	if k.ECCOccupancy() != 0 {
		t.Fatal("ECC entry not invalidated on b'10→b'00")
	}
}

func TestTable2Row_10_SingleBitLVError(t *testing.T) {
	// b'10, don't-care S, syndrome ✗, G✗ → correct, stay b'10.
	runTable2(t, table2Case{
		faults:  []faultmodel.Fault{stuck(200, 0)},
		data:    func(r *xrand.Rand) bitvec.Line { l := randomLine(r); l.SetBit(200, 1); return l },
		preHits: 1, // classify to b'10
		want:    protection.Deliver,
		wantDFH: Stable1,
	})
}

func TestTable2Row_10_ExtraErrorDisables(t *testing.T) {
	// b'10 + an additional error (S✗✗, syndrome ✗/✓, G✓) → b'11.
	runTable2(t, table2Case{
		faults:  []faultmodel.Fault{stuck(200, 0)},
		data:    func(r *xrand.Rand) bitvec.Line { l := randomLine(r); l.SetBit(200, 1); return l },
		preHits: 1,
		mutate: func(h *testHost, k *Scheme, id int) {
			h.data.InjectSoftError(id, 7)
		},
		want:    protection.ErrorMiss,
		wantDFH: Disabled,
	})
}

func TestTable2Row_11_NeverAccessed(t *testing.T) {
	// b'11: lookups must miss and the victim policy must never pick the
	// line.
	faults := [][]faultmodel.Fault{{stuck(0, 1), stuck(1, 1)}}
	h := newHost(t, 1, 2, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(0)
	k.OnReadHit(0, 0, &got) // disables way 0
	if k.DFHOf(0, 0) != Disabled {
		t.Fatal("setup failed")
	}
	if _, hit := h.tags.Lookup(0, 0); hit {
		t.Fatal("disabled line produced a hit")
	}
	for i := 0; i < 10; i++ {
		way, ok := h.tags.Victim(0, k.VictimFunc())
		if !ok || way == 0 {
			t.Fatalf("victim picked disabled way (way=%d ok=%v)", way, ok)
		}
		h.tags.Install(0, way, uint64(i+10))
		h.data.Write(h.tags.LineID(0, way), data)
		k.OnFill(0, way, data)
	}
}

func TestClassificationSoundnessProperty(t *testing.T) {
	// Property over random fault patterns (0–5 stuck cells, random data):
	//
	//   - within design strength (≤2 faults) a Deliver verdict is always
	//     exact;
	//   - beyond it, a corrupt delivery may only occur through the §5.3
	//     joint-failure window: SECDED fails (≥3 visible errors) AND the
	//     visible error pattern leaves at most one interleaved-16 segment
	//     with an odd error count. Anything else is an implementation bug.
	//
	// Note the test samples fault counts uniformly, which makes the ≥3
	// window ~10^5 times more likely than the field distribution at
	// 0.625×VDD — the escapes observed here are the ones Figure 6's
	// near-100% (not exactly 100%) coverage quantifies.
	r := xrand.New(123)
	escapes := 0
	for trial := 0; trial < 1500; trial++ {
		n := r.Intn(6)
		faults := make([]faultmodel.Fault, 0, n)
		for _, b := range r.Sample(bitvec.LineBits, n) {
			faults = append(faults, stuck(b, uint(r.Uint64()&1)))
		}
		h := newHost(t, 1, 1, [][]faultmodel.Fault{faults}, 0.625)
		k := attach(h, Config{Ratio: 1}, 0.625)
		data := randomLine(r)
		fill(h, k, 0, 0, data)
		got := h.data.Read(0)
		v := k.OnReadHit(0, 0, &got)
		if v != protection.Deliver || got == data {
			continue
		}
		escapes++
		// Corrupt delivery: verify it is the documented window.
		visible := 0
		segOdd := map[int]int{}
		for _, f := range faults {
			if data.Bit(f.Bit) != f.StuckAt {
				visible++
				segOdd[f.Bit%16]++
			}
		}
		oddSegs := 0
		for _, c := range segOdd {
			if c%2 == 1 {
				oddSegs++
			}
		}
		if visible < 3 {
			t.Fatalf("trial %d: corrupt delivery with only %d visible errors (within SECDED strength)", trial, visible)
		}
		if oddSegs > 1 {
			t.Fatalf("trial %d: corrupt delivery with %d odd segments — parity should have flagged multi-bit", trial, oddSegs)
		}
	}
	if escapes > 20 {
		t.Fatalf("%d corrupt deliveries in 1500 adversarial trials; window too wide", escapes)
	}
}

func TestInvertedTrainingSoundnessStrict(t *testing.T) {
	// With §5.6.2 inverted training, the polarity check counts every
	// stuck cell before any stable classification, so Deliver is exact
	// for ALL stuck-at patterns (no soft errors here).
	r := xrand.New(456)
	for trial := 0; trial < 1500; trial++ {
		n := r.Intn(6)
		faults := make([]faultmodel.Fault, 0, n)
		for _, b := range r.Sample(bitvec.LineBits, n) {
			faults = append(faults, stuck(b, uint(r.Uint64()&1)))
		}
		h := newHost(t, 1, 1, [][]faultmodel.Fault{faults}, 0.625)
		k := attach(h, Config{Ratio: 1, InvertedTraining: true}, 0.625)
		data := randomLine(r)
		fill(h, k, 0, 0, data)
		got := h.data.Read(0)
		if v := k.OnReadHit(0, 0, &got); v == protection.Deliver && got != data {
			t.Fatalf("trial %d (%d faults): inverted training delivered corrupt data", trial, n)
		}
	}
}

func TestClassificationEventuallyStable(t *testing.T) {
	// Repeated hits on any line must reach a stable state (no infinite
	// oscillation at fixed data): after at most a few transitions the DFH
	// stops changing.
	r := xrand.New(321)
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(4)
		faults := make([]faultmodel.Fault, 0, n)
		for _, b := range r.Sample(bitvec.LineBits, n) {
			faults = append(faults, stuck(b, uint(r.Uint64()&1)))
		}
		h := newHost(t, 1, 1, [][]faultmodel.Fault{faults}, 0.625)
		k := attach(h, Config{Ratio: 1}, 0.625)
		data := randomLine(r)
		fill(h, k, 0, 0, data)
		prev := k.DFHOf(0, 0)
		changes := 0
		for i := 0; i < 10; i++ {
			if h.tags.Entry(0, 0).Disabled {
				break
			}
			if !h.tags.Entry(0, 0).Valid {
				fill(h, k, 0, 0, data) // refetch after an error miss
			}
			got := h.data.Read(0)
			k.OnReadHit(0, 0, &got)
			if cur := k.DFHOf(0, 0); cur != prev {
				changes++
				prev = cur
			}
		}
		if changes > 3 {
			t.Fatalf("trial %d: DFH changed %d times on fixed data", trial, changes)
		}
	}
}
