package killi

import (
	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/ecc/secded"
)

// eccEntry is one ECC cache line (paper Table 3: 41 bits — 11 SECDED
// checkbits + 12 overflow parity bits + the index/way tag; our tag lives in
// the cache structure). In DECTED mode the 11+12 bits are recombined into a
// 21-bit DECTED code plus 2 spare (§5.2 / §5.6.1).
type eccEntry struct {
	check    secded.Check
	parity12 uint16 // the 12 high parity bits of an Initial line
	// dected holds the 21-bit DECTED checkbits when the entry protects a
	// line in the DECTED-extended stable state. nil otherwise.
	dected       *bitvec.Vector
	dectedGlobal uint
	// olscCheck holds the OLSC checkbit vector in §5.5 low-Vmin mode.
	olscCheck *bitvec.Vector
}

// eccCache is Killi's on-demand error-correction metadata store: a small
// set-associative cache holding checkbits for the subset of L2 lines that
// currently need them (all Initial lines plus Stable1 lines). It is indexed
// by the L2 set (same physical address), and its tags hold the protected
// line's dense (set, way) identifier rather than the physical address,
// which is what keeps its tag area small.
type eccCache struct {
	tags    *cache.Cache
	entries []eccEntry
	// xorIndex folds high L2-set bits into the ECC set index, spreading
	// the aliasing pattern (an ablation of the paper's direct modulo
	// indexing).
	xorIndex bool
}

// newECCCache sizes the ECC cache for an L2 of l2Lines lines at the given
// ratio (entries = l2Lines / ratio) with the paper's 4-way associativity.
func newECCCache(l2Lines, ratio, assoc int) *eccCache {
	entries := l2Lines / ratio
	if entries < 1 {
		entries = 1
	}
	if entries < assoc {
		// Degenerate sizing (a small L2 bank at a large ratio): shrink the
		// associativity instead of padding capacity up to a full set, so
		// the total entry budget — the paper's 1:ratio provisioning, and
		// the contention behavior it drives — is preserved when the L2 is
		// split into per-bank slices.
		assoc = entries
	}
	sets := entries / assoc
	if sets < 1 {
		sets = 1
	}
	return &eccCache{
		tags:    cache.New(cache.Config{Sets: sets, Ways: assoc, LineBytes: 64}),
		entries: make([]eccEntry, sets*assoc),
	}
}

// Entries returns the ECC cache capacity in entries.
func (e *eccCache) Entries() int { return e.tags.Config().Lines() }

// setFor maps an L2 set to the ECC cache set serving it. Disjoint L2 sets
// alias onto the same ECC set — the contention the paper discusses. The
// default is the paper's same-physical-address (modulo) indexing; the
// xorIndex ablation folds the high bits in first.
func (e *eccCache) setFor(l2Set int) int {
	sets := e.tags.Config().Sets
	if e.xorIndex {
		return (l2Set ^ (l2Set / sets) ^ (l2Set / (sets * sets))) % sets
	}
	return l2Set % sets
}

// lookup finds the entry protecting l2Line (a dense L2 line ID), if
// present.
func (e *eccCache) lookup(l2Set, l2Line int) (*eccEntry, int, int, bool) {
	set := e.setFor(l2Set)
	way, hit := e.tags.Lookup(set, uint64(l2Line))
	if !hit {
		return nil, 0, 0, false
	}
	return &e.entries[e.tags.LineID(set, way)], set, way, true
}

// touch promotes the entry protecting l2Line to MRU — the coordinated
// replacement of §4.4.
func (e *eccCache) touch(set, way int) { e.tags.Touch(set, way) }

// allocate obtains an entry for l2Line, evicting the LRU entry of the
// target set if needed. When an eviction occurs, it returns the dense line
// ID of the L2 line that just lost its protection (evictedLine >= 0)
// together with a copy of the dying entry, so the caller can classify the
// victim line's DFH while its checkbits are still known — the eviction
// training of §4.4 applied to ECC-cache-contention evictions.
func (e *eccCache) allocate(l2Set, l2Line int) (entry *eccEntry, evictedLine int, old eccEntry) {
	evictedLine = -1
	if got, _, way, hit := e.lookup(l2Set, l2Line); hit {
		e.tags.Touch(e.setFor(l2Set), way)
		return got, -1, eccEntry{}
	}
	set := e.setFor(l2Set)
	way, ok := e.tags.Victim(set, nil)
	if !ok {
		// Cannot happen: ECC cache entries are never disabled.
		panic("killi: ECC cache victim unavailable")
	}
	id := e.tags.LineID(set, way)
	if v := e.tags.Entry(set, way); v.Valid {
		evictedLine = int(v.Tag)
		old = e.entries[id]
	}
	e.tags.Install(set, way, uint64(l2Line))
	e.entries[id] = eccEntry{}
	return &e.entries[id], evictedLine, old
}

// invalidate frees the entry protecting l2Line, if present.
func (e *eccCache) invalidate(l2Set, l2Line int) {
	if _, set, way, hit := e.lookup(l2Set, l2Line); hit {
		e.tags.Invalidate(set, way)
	}
}

// reset clears every entry.
func (e *eccCache) reset() {
	e.tags.ForEach(func(set, way int, entry *cache.Entry) {
		entry.Valid = false
	})
	for i := range e.entries {
		e.entries[i] = eccEntry{}
	}
}

// occupancy returns the number of valid entries.
func (e *eccCache) occupancy() int {
	n := 0
	e.tags.ForEach(func(set, way int, entry *cache.Entry) {
		if entry.Valid {
			n++
		}
	})
	return n
}
