package killi_test

import (
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/faultmodel"
	"killi/internal/killi"
	"killi/internal/obs"
	"killi/internal/protection"
	"killi/internal/sram"
	"killi/internal/stats"
)

// exampleHost is a minimal protection.Host for the examples.
type exampleHost struct {
	tags *cache.Cache
	data *sram.Array
	ctr  stats.Counters
}

func (h *exampleHost) Tags() *cache.Cache            { return h.tags }
func (h *exampleHost) Data() *sram.Array             { return h.data }
func (h *exampleHost) Stats() *stats.Counters        { return &h.ctr }
func (h *exampleHost) SchemeInvalidate(set, way int) { h.tags.Invalidate(set, way) }
func (h *exampleHost) Now() uint64                   { return 0 }
func (h *exampleHost) Observer() obs.Observer        { return nil }

// Example walks one cache line through Killi's runtime classification: a
// line with a single stuck-at fault is corrected on its first hit and
// settles in DFH state b'10.
func Example() {
	// One line with one persistent stuck-at-1 fault at bit 100.
	faults := [][]faultmodel.Fault{{{Bit: 100, StuckAt: 1}}}
	fm := faultmodel.NewMapExplicit(faultmodel.Default(), bitvec.LineBits, 1.0, faults)
	h := &exampleHost{
		tags: cache.New(cache.Config{Sets: 1, Ways: 1, LineBytes: 64}),
		data: sram.New(1, fm, 0.625),
	}

	k := killi.New(killi.Config{Ratio: 1})
	k.Attach(h)
	k.Reset(0.625) // no MBIST: every line starts in b'01

	// The controller fills data whose bit 100 is 0, so the fault is
	// unmasked.
	var data bitvec.Line
	h.tags.Install(0, 0, 42)
	h.data.Write(0, data)
	k.OnFill(0, 0, data)
	fmt.Println("after fill:", k.DFHOf(0, 0))

	// First load hit: parity + SECDED classify and correct on the fly.
	got := h.data.Read(0)
	verdict := k.OnReadHit(0, 0, &got)
	fmt.Println("verdict:", verdict, "- data clean:", got == data)
	fmt.Println("after hit:", k.DFHOf(0, 0))

	// Output:
	// after fill: b'01
	// verdict: deliver - data clean: true
	// after hit: b'10
}

// ExampleScheme_Reset shows the no-MBIST voltage transition: a reset
// returns even disabled lines to the unknown state for relearning.
func ExampleScheme_Reset() {
	faults := [][]faultmodel.Fault{{{Bit: 0, StuckAt: 1}, {Bit: 1, StuckAt: 1}}}
	fm := faultmodel.NewMapExplicit(faultmodel.Default(), bitvec.LineBits, 1.0, faults)
	h := &exampleHost{
		tags: cache.New(cache.Config{Sets: 1, Ways: 1, LineBytes: 64}),
		data: sram.New(1, fm, 0.625),
	}
	k := killi.New(killi.Config{Ratio: 1})
	k.Attach(h)
	k.Reset(0.625)

	var data bitvec.Line
	h.tags.Install(0, 0, 7)
	h.data.Write(0, data)
	k.OnFill(0, 0, data)
	got := h.data.Read(0)
	_ = k.OnReadHit(0, 0, &got) // two faults: the line is disabled
	fmt.Println("at 0.625xVDD:", k.DFHOf(0, 0))

	// A voltage change is just a DFH reset — no MBIST pass anywhere.
	k.Reset(1.0)
	fmt.Println("after transition:", k.DFHOf(0, 0))

	// Output:
	// at 0.625xVDD: b'11
	// after transition: b'01
}

var _ protection.Scheme = (*killi.Scheme)(nil)
