// Package killi implements the paper's contribution: runtime LV fault
// classification for a write-through cache using Detected Fault History
// (DFH) bits, decoupled parity-based detection, and an on-demand ECC cache
// — no MBIST anywhere.
//
// Per-line protection follows Table 1:
//
//	DFH b'00  stable, 0 faults   4-bit segmented parity
//	DFH b'01  initial, unknown   16-bit segmented parity + SECDED ECC
//	DFH b'10  stable, 1 fault    4-bit parity + SECDED ECC
//	DFH b'11  disabled           (≥2 faults; unusable until DFH reset)
//
// The 16 parity bits of an unknown line are split 4 in the cache proper and
// 12 in the ECC cache next to the 11 SECDED checkbits; once the line is
// classified the ECC cache entry is freed (b'00) or retained (b'10) and the
// cache-resident parity becomes a 4-bit fold over 128-bit segments.
//
// Classification happens on load hits and evictions by combining three
// signals (Table 2): segmented parity (S), the SECDED syndrome, and the
// SECDED global parity (G). The package also implements the paper's
// optional extensions: a DECTED-in-the-ECC-cache mode that reuses the 12
// freed parity bits to store a 21-bit DECTED code (§5.2), and inverted-data
// retraining that closes the multi-bit masked-fault window (§5.6.2).
package killi

import "fmt"

// DFH is the two-bit Detected Fault History state of a cache line
// (Table 1).
type DFH int

const (
	// Stable0 (b'00): zero known faults; 4-bit parity only.
	Stable0 DFH = 0
	// Initial (b'01): unknown fault count; 16-bit parity + SECDED.
	Initial DFH = 1
	// Stable1 (b'10): one known fault; 4-bit parity + SECDED.
	Stable1 DFH = 2
	// Disabled (b'11): two or more faults; line unusable until DFH reset.
	Disabled DFH = 3
)

// String renders the DFH state in the paper's b'xx notation.
func (d DFH) String() string {
	switch d {
	case Stable0:
		return "b'00"
	case Initial:
		return "b'01"
	case Stable1:
		return "b'10"
	case Disabled:
		return "b'11"
	default:
		return fmt.Sprintf("killi.DFH(%d)", int(d))
	}
}

// Valid reports whether d is one of the four architected states.
func (d DFH) Valid() bool { return d >= Stable0 && d <= Disabled }
