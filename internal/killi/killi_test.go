package killi

import (
	"strings"
	"testing"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/faultmodel"
	"killi/internal/obs"
	"killi/internal/protection"
	"killi/internal/sram"
	"killi/internal/stats"
	"killi/internal/xrand"
)

// testHost is a minimal protection.Host for driving the scheme directly.
type testHost struct {
	tags        *cache.Cache
	data        *sram.Array
	ctr         stats.Counters
	invalidated []int // line IDs invalidated at the scheme's request
	cycle       uint64
	obs         obs.Observer
}

func (h *testHost) Tags() *cache.Cache     { return h.tags }
func (h *testHost) Data() *sram.Array      { return h.data }
func (h *testHost) Stats() *stats.Counters { return &h.ctr }
func (h *testHost) Now() uint64            { return h.cycle }
func (h *testHost) Observer() obs.Observer { return h.obs }
func (h *testHost) SchemeInvalidate(set, way int) {
	h.invalidated = append(h.invalidated, h.tags.LineID(set, way))
	h.tags.Invalidate(set, way)
}

// newHost builds a host whose line i carries faults[i] (may be nil).
func newHost(t *testing.T, sets, ways int, faults [][]faultmodel.Fault, v float64) *testHost {
	t.Helper()
	cfg := cache.Config{Sets: sets, Ways: ways, LineBytes: 64}
	for len(faults) < cfg.Lines() {
		faults = append(faults, nil)
	}
	fm := faultmodel.NewMapExplicit(faultmodel.Default(), bitvec.LineBits, 1.0, faults)
	return &testHost{
		tags: cache.New(cfg),
		data: sram.New(cfg.Lines(), fm, v),
	}
}

// attach wires a fresh Killi scheme to a host at the given voltage.
func attach(h *testHost, cfg Config, v float64) *Scheme {
	k := New(cfg)
	k.Attach(h)
	k.Reset(v)
	return k
}

func randomLine(r *xrand.Rand) bitvec.Line {
	var l bitvec.Line
	for w := range l {
		l[w] = r.Uint64()
	}
	return l
}

// fill installs data at (set, way) through the host+scheme as the
// controller would.
func fill(h *testHost, k *Scheme, set, way int, data bitvec.Line) {
	h.tags.Install(set, way, uint64(set*1000+way))
	h.data.Write(h.tags.LineID(set, way), data)
	k.OnFill(set, way, data)
}

// stuck returns an always-active stuck-at fault.
func stuck(bit int, at uint) faultmodel.Fault {
	return faultmodel.Fault{Bit: bit, StuckAt: at, Severity: 0}
}

func TestDFHStrings(t *testing.T) {
	if Stable0.String() != "b'00" || Initial.String() != "b'01" ||
		Stable1.String() != "b'10" || Disabled.String() != "b'11" {
		t.Fatal("DFH notation wrong")
	}
	if !Stable1.Valid() || DFH(7).Valid() {
		t.Fatal("DFH validity wrong")
	}
	if !strings.Contains(DFH(7).String(), "7") {
		t.Fatal("unknown DFH formatting")
	}
}

func TestResetMarksEverythingInitial(t *testing.T) {
	h := newHost(t, 4, 4, nil, 0.625)
	k := attach(h, DefaultConfig(), 0.625)
	h.tags.ForEach(func(set, way int, e *cache.Entry) {
		if DFH(e.Class) != Initial || e.Disabled || e.Valid {
			t.Fatalf("(%d,%d) not reset: class=%v disabled=%v", set, way, DFH(e.Class), e.Disabled)
		}
	})
	if k.ECCOccupancy() != 0 {
		t.Fatal("ECC cache not empty after reset")
	}
}

func TestCleanLineClassifiesStable0(t *testing.T) {
	h := newHost(t, 4, 4, nil, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625) // ample ECC cache
	data := randomLine(xrand.New(1))
	fill(h, k, 0, 0, data)
	if k.DFHOf(0, 0) != Initial {
		t.Fatal("line not Initial after fill")
	}
	if k.ECCOccupancy() != 1 {
		t.Fatalf("ECC occupancy = %d, want 1 during training", k.ECCOccupancy())
	}
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("clean read verdict %v", v)
	}
	if got != data {
		t.Fatal("delivered data corrupted")
	}
	if k.DFHOf(0, 0) != Stable0 {
		t.Fatalf("DFH = %v, want b'00", k.DFHOf(0, 0))
	}
	if k.ECCOccupancy() != 0 {
		t.Fatal("ECC entry not freed on b'01→b'00 (the paper's most frequent case)")
	}
	if h.ctr.Get("killi.dfh_b'01_to_b'00") != 1 {
		t.Fatal("transition counter missing")
	}
}

func TestSingleFaultCorrectedAndStable1(t *testing.T) {
	// Line 0 (set 0, way 0) has one stuck-at fault.
	faults := [][]faultmodel.Fault{{stuck(100, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	data := randomLine(xrand.New(2))
	data.SetBit(100, 0) // ensure the fault is unmasked
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	if got == data {
		t.Fatal("fault did not corrupt the read")
	}
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("verdict %v, want deliver (1-bit LV error row of Table 2)", v)
	}
	if got != data {
		t.Fatal("data not corrected")
	}
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH = %v, want b'10", k.DFHOf(0, 0))
	}
	if k.ECCOccupancy() != 1 {
		t.Fatal("Stable1 line must keep its ECC entry")
	}
	// Subsequent hits stay Stable1 and keep correcting.
	got = h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || got != data {
		t.Fatal("repeat Stable1 hit failed")
	}
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatal("Stable1 did not persist")
	}
}

func TestDoubleFaultDisables(t *testing.T) {
	// Two stuck-at faults in different 32-bit interleaved segments.
	faults := [][]faultmodel.Fault{{stuck(0, 1), stuck(1, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	var data bitvec.Line // zeros: both faults unmasked
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("verdict %v, want error-miss", v)
	}
	if k.DFHOf(0, 0) != Disabled {
		t.Fatalf("DFH = %v, want b'11", k.DFHOf(0, 0))
	}
	e := h.tags.Entry(0, 0)
	if !e.Disabled || e.Valid {
		t.Fatal("line not disabled/invalidated")
	}
	if k.ECCOccupancy() != 0 {
		t.Fatal("disabled line's ECC entry not freed")
	}
}

func TestSameSegmentDoubleFaultCaughtByECC(t *testing.T) {
	// Bits 0 and 16 share interleaved-16 segment 0: segmented parity is
	// blind, but SECDED's syndrome+global-parity sees two errors
	// (the "Even number of errors" row).
	faults := [][]faultmodel.Fault{{stuck(0, 1), stuck(16, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Disabled {
		t.Fatalf("DFH = %v, want b'11", k.DFHOf(0, 0))
	}
}

func TestMaskedFaultMisclassifiesThenRelearns(t *testing.T) {
	// A stuck-at-1 fault under data that has that bit set is invisible:
	// the line trains to b'00. When a write flips the bit, the fault
	// unmasks; the next read sees one parity mismatch, returns the line
	// to b'01 (error-induced miss), and the refill + read reclassifies it
	// to b'10 — the §4.3 oscillation.
	faults := [][]faultmodel.Fault{{stuck(200, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	id := h.tags.LineID(0, 0)

	masked := randomLine(xrand.New(3))
	masked.SetBit(200, 1)
	fill(h, k, 0, 0, masked)
	got := h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || k.DFHOf(0, 0) != Stable0 {
		t.Fatalf("masked fault should classify b'00, got %v / %v", v, k.DFHOf(0, 0))
	}

	unmasked := masked
	unmasked.SetBit(200, 0)
	h.data.Write(id, unmasked)
	k.OnWriteHit(0, 0, unmasked)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("unmasked fault verdict %v, want error-miss", v)
	}
	if k.DFHOf(0, 0) != Initial {
		t.Fatalf("DFH = %v, want back to b'01 for relearning", k.DFHOf(0, 0))
	}
	if h.ctr.Get("killi.post_training_single_error") != 1 {
		t.Fatal("post-training error not counted")
	}

	// Refill (the error-induced miss's refetch) and reclassify.
	fill(h, k, 0, 0, unmasked)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || got != unmasked {
		t.Fatal("reclassification read failed")
	}
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH = %v, want b'10 after relearning", k.DFHOf(0, 0))
	}
}

func TestStable1FaultVanishesReclassifiesStable0(t *testing.T) {
	// A Stable1 line whose data is rewritten so the fault masks again
	// reads clean: Table 2 row (b'10, ✓, ✓, ✓) → b'00.
	faults := [][]faultmodel.Fault{{stuck(64, 0)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	id := h.tags.LineID(0, 0)
	data := randomLine(xrand.New(4))
	data.SetBit(64, 1) // unmasked
	fill(h, k, 0, 0, data)
	got := h.data.Read(id)
	k.OnReadHit(0, 0, &got)
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("setup failed: DFH %v", k.DFHOf(0, 0))
	}
	masked := data
	masked.SetBit(64, 0) // masks the stuck-at-0 cell
	h.data.Write(id, masked)
	k.OnWriteHit(0, 0, masked)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Stable0 {
		t.Fatalf("DFH = %v, want b'00", k.DFHOf(0, 0))
	}
	if k.ECCOccupancy() != 0 {
		t.Fatal("ECC entry not freed on b'10→b'00")
	}
}

func TestStable1PlusSoftErrorDisables(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(10, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	id := h.tags.LineID(0, 0)
	var data bitvec.Line // stuck-at-1 on bit 10 is unmasked
	fill(h, k, 0, 0, data)
	got := h.data.Read(id)
	k.OnReadHit(0, 0, &got)
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("setup failed: %v", k.DFHOf(0, 0))
	}
	// A soft error on top of the LV fault: two errors, SECDED detects,
	// cannot correct → disable.
	h.data.InjectSoftError(id, 300)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Disabled {
		t.Fatalf("DFH = %v, want b'11 (error on line with existing 1-bit LV error)", k.DFHOf(0, 0))
	}
}

func TestSoftErrorOnStable0Relearns(t *testing.T) {
	h := newHost(t, 4, 4, nil, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	id := h.tags.LineID(0, 0)
	data := randomLine(xrand.New(5))
	fill(h, k, 0, 0, data)
	got := h.data.Read(id)
	k.OnReadHit(0, 0, &got) // → Stable0
	h.data.InjectSoftError(id, 7)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Initial {
		t.Fatalf("DFH = %v, want b'01", k.DFHOf(0, 0))
	}
	// The refetch overwrites the transient; the line trains back to b'00.
	fill(h, k, 0, 0, data)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || k.DFHOf(0, 0) != Stable0 {
		t.Fatal("line did not recover to b'00 after transient")
	}
}

func TestEvictionTraining(t *testing.T) {
	cases := []struct {
		name   string
		faults []faultmodel.Fault
		want   DFH
	}{
		{"clean", nil, Stable0},
		{"one fault", []faultmodel.Fault{stuck(5, 1)}, Stable1},
		{"two faults", []faultmodel.Fault{stuck(5, 1), stuck(6, 1)}, Disabled},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHost(t, 4, 4, [][]faultmodel.Fault{tc.faults}, 0.625)
			k := attach(h, Config{Ratio: 1}, 0.625)
			var data bitvec.Line
			fill(h, k, 0, 0, data)
			k.OnEvict(0, 0)
			h.tags.Invalidate(0, 0)
			if got := k.DFHOf(0, 0); got != tc.want {
				t.Fatalf("DFH after eviction training = %v, want %v", got, tc.want)
			}
			if k.ECCOccupancy() != 0 {
				t.Fatal("ECC entry not freed after eviction")
			}
			if h.ctr.Get("killi.eviction_trainings") != 1 {
				t.Fatal("eviction training not counted")
			}
		})
	}
}

// contentionHost builds a 16-set direct-mapped host whose line 0 carries
// the given faults and drives 5 fills through a 4-entry ECC cache, so the
// 5th allocation evicts line 0's entry and triggers contention training.
func contentionHost(t *testing.T, faults []faultmodel.Fault, cfg Config) (*testHost, *Scheme) {
	t.Helper()
	cfg.Ratio, cfg.Assoc = 4, 4 // 16/4 = 4 entries, one set
	h := newHost(t, 16, 1, [][]faultmodel.Fault{faults}, 0.625)
	k := attach(h, cfg, 0.625)
	if k.ECCEntries() != 4 {
		t.Fatalf("ECC entries = %d, want 4", k.ECCEntries())
	}
	r := xrand.New(6)
	for set := 0; set < 5; set++ {
		fill(h, k, set, 0, randomLine(r))
	}
	if h.ctr.Get("killi.ecc_contention_evictions") == 0 {
		t.Fatal("contention eviction not counted")
	}
	return h, k
}

func TestECCContentionCleanVictimStaysResident(t *testing.T) {
	// A fault-free victim is classified on the way out of the ECC cache and,
	// having no fault to protect against, stays resident in the L2 under its
	// folded 4-bit parity (§4.4 training applied to contention evictions).
	h, k := contentionHost(t, nil, Config{})
	if len(h.invalidated) != 0 {
		t.Fatalf("clean contention victim invalidated: %v", h.invalidated)
	}
	if !h.tags.Entry(0, 0).Valid {
		t.Fatal("clean victim no longer valid")
	}
	if got := k.DFHOf(0, 0); got != Stable0 {
		t.Fatalf("victim DFH = %v, want b'00", got)
	}
	// The resident line must still read correctly through its folded parity.
	data := h.data.Read(h.tags.LineID(0, 0))
	truth := h.data.ReadTrue(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &data); v != protection.Deliver {
		t.Fatalf("read verdict on kept victim = %v", v)
	}
	if data != truth {
		t.Fatal("kept victim delivered corrupt data")
	}
}

func TestECCContentionFaultyVictimInvalidated(t *testing.T) {
	// A victim with an unmasked stuck-at fault (data bit 7 is 1, the cell
	// sticks at 0) classifies Stable1; its checkbits die with the ECC
	// entry, so the line must leave the L2.
	h, k := contentionHost(t, []faultmodel.Fault{stuck(7, 0)}, Config{})
	if len(h.invalidated) != 1 || h.invalidated[0] != 0 {
		t.Fatalf("invalidated = %v, want [0]", h.invalidated)
	}
	if h.tags.Entry(0, 0).Valid {
		t.Fatal("faulty victim still valid")
	}
	if got := k.DFHOf(0, 0); got != Stable1 {
		t.Fatalf("victim DFH = %v, want b'10", got)
	}
}

func TestECCContentionMaskedFaultCaughtByPolarityTest(t *testing.T) {
	// A fault masked by matching data passes parity+ECC classification, but
	// the keep-resident path runs the §5.6.2 polarity test before trusting
	// the line to 4-bit parity alone — the masked fault must be unmasked
	// and the line evicted as Stable1, not kept as Stable0.
	// Data bit 0 of the first fill is 1, so a stuck-at-1 cell there is
	// masked and invisible to parity+ECC.
	h, k := contentionHost(t, []faultmodel.Fault{stuck(0, 1)}, Config{})
	if h.ctr.Get("killi.inverted_unmasked_single") == 0 {
		t.Fatal("polarity test did not unmask the masked fault")
	}
	if got := k.DFHOf(0, 0); got != Stable1 {
		t.Fatalf("victim DFH = %v, want b'10", got)
	}
	if len(h.invalidated) != 1 || h.invalidated[0] != 0 {
		t.Fatalf("invalidated = %v, want [0]", h.invalidated)
	}
}

func TestECCContentionNoEvictionTrainingInvalidates(t *testing.T) {
	// With eviction training disabled, an Initial victim loses its entry
	// untrained and unprotected: it must leave the L2 still Initial.
	h, k := contentionHost(t, nil, Config{NoEvictionTraining: true})
	if len(h.invalidated) != 1 || h.invalidated[0] != 0 {
		t.Fatalf("invalidated = %v, want [0]", h.invalidated)
	}
	if got := k.DFHOf(0, 0); got != Initial {
		t.Fatalf("victim DFH = %v, want b'01", got)
	}
}

func TestVictimPriority(t *testing.T) {
	h := newHost(t, 1, 4, nil, 0.625)
	k := attach(h, DefaultConfig(), 0.625)
	tags := h.tags
	// way0: invalid Stable1, way1: invalid Stable0, way2: invalid
	// Initial, way3: valid. Priority says way2 (b'01) first.
	tags.Entry(0, 0).Class = int(Stable1)
	tags.Entry(0, 1).Class = int(Stable0)
	tags.Entry(0, 2).Class = int(Initial)
	tags.Install(0, 3, 99)
	way, ok := tags.Victim(0, k.VictimFunc())
	if !ok || way != 2 {
		t.Fatalf("victim = %d, want the b'01 way 2", way)
	}
	tags.Install(0, 2, 98)
	way, _ = tags.Victim(0, k.VictimFunc())
	if way != 1 {
		t.Fatalf("victim = %d, want the b'00 way 1", way)
	}
	tags.Install(0, 1, 97)
	way, _ = tags.Victim(0, k.VictimFunc())
	if way != 0 {
		t.Fatalf("victim = %d, want the b'10 way 0", way)
	}
	// All valid: LRU fallback.
	tags.Install(0, 0, 96)
	tags.Touch(0, 3)
	way, _ = tags.Victim(0, k.VictimFunc())
	if way == 3 {
		t.Fatal("LRU fallback picked the MRU way")
	}
}

func TestResetReclaimsDisabledLines(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(0, 1), stuck(1, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(0)
	k.OnReadHit(0, 0, &got)
	if k.DFHOf(0, 0) != Disabled {
		t.Fatal("setup failed")
	}
	// Voltage raise: faults with Severity 0 stay active, but the DFH
	// reset must still return the line to Initial for relearning.
	k.Reset(0.9)
	if k.DFHOf(0, 0) != Initial || h.tags.Entry(0, 0).Disabled {
		t.Fatal("disabled line not reclaimed by DFH reset")
	}
}

func TestInvertedTrainingCatchesMaskedFault(t *testing.T) {
	// Without inverted training the masked fault trains to b'00; with it,
	// the polarity check unmasks the stuck cell immediately → b'10.
	faults := [][]faultmodel.Fault{{stuck(200, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1, InvertedTraining: true}, 0.625)
	id := h.tags.LineID(0, 0)
	masked := randomLine(xrand.New(7))
	masked.SetBit(200, 1)
	fill(h, k, 0, 0, masked)
	got := h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH = %v, want b'10 (inverted check unmasks the fault)", k.DFHOf(0, 0))
	}
	if h.ctr.Get("killi.inverted_unmasked_single") != 1 {
		t.Fatal("unmask not counted")
	}
	// The check must restore the original data.
	if h.data.ReadTrue(id) != masked {
		t.Fatal("inverted check corrupted stored data")
	}
}

func TestInvertedTrainingMultiMaskedDisables(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(100, 1), stuck(101, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1, InvertedTraining: true}, 0.625)
	masked := randomLine(xrand.New(8))
	masked.SetBit(100, 1)
	masked.SetBit(101, 1)
	fill(h, k, 0, 0, masked)
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Disabled {
		t.Fatalf("DFH = %v, want b'11", k.DFHOf(0, 0))
	}
}

func TestDECTEDModeKeepsTwoFaultLineEnabled(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(0, 1), stuck(16, 1)}} // same parity segment
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1, UseDECTED: true}, 0.625)
	id := h.tags.LineID(0, 0)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(id)
	// First read: classification discovers 2 errors → promote to DECTED,
	// refetch required.
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("promotion verdict %v", v)
	}
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH = %v, want b'10 (DECTED-extended)", k.DFHOf(0, 0))
	}
	if h.tags.Entry(0, 0).Disabled {
		t.Fatal("2-fault line disabled despite DECTED mode")
	}
	// Refill (the refetch) and read again: DECTED corrects both faults.
	fill(h, k, 0, 0, data)
	got = h.data.Read(id)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("DECTED read verdict %v", v)
	}
	if got != data {
		t.Fatal("DECTED did not correct the two stuck bits")
	}
	if h.ctr.Get("killi.dected_promotions") != 1 {
		t.Fatal("promotion not counted")
	}
}

func TestDECTEDModeThreeFaultsStillDisable(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(0, 1), stuck(1, 1), stuck(2, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	k := attach(h, Config{Ratio: 1, UseDECTED: true}, 0.625)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Disabled {
		t.Fatalf("DFH = %v, want b'11 (3 faults exceed DECTED)", k.DFHOf(0, 0))
	}
}

func TestName(t *testing.T) {
	if New(Config{Ratio: 64}).Name() != "killi-1:64" {
		t.Fatal("name wrong")
	}
	if New(Config{Ratio: 16, UseDECTED: true}).Name() != "killi-dected-1:16" {
		t.Fatal("DECTED name wrong")
	}
}

func TestDefaultsApplied(t *testing.T) {
	k := New(Config{})
	h := newHost(t, 64, 4, nil, 0.625)
	k.Attach(h)
	k.Reset(0.625)
	if k.ECCEntries() != 64*4/64 {
		t.Fatalf("default ratio not applied: %d entries", k.ECCEntries())
	}
}

func TestCoordinatedPromotionKeepsHotEntryResident(t *testing.T) {
	// Two Stable1 lines contending... simpler: verify a touched Initial
	// line's ECC entry survives contention better than an untouched one.
	// With a 4-entry single-set ECC cache and 5 lines, after touching
	// line 0 repeatedly, allocating a 5th entry must not evict line 0's.
	h := newHost(t, 16, 1, nil, 0.625)
	k := attach(h, Config{Ratio: 4, Assoc: 4}, 0.625)
	r := xrand.New(9)
	datas := make([]bitvec.Line, 5)
	for set := 0; set < 4; set++ {
		datas[set] = randomLine(r)
		fill(h, k, set, 0, datas[set])
	}
	// Touch line (0,0) via a read hit; it stays Initial? No: a clean read
	// classifies it b'00 and frees the entry. Use a faulty line instead.
	// Simply re-touch via OnFill (write) to refresh recency.
	k.OnWriteHit(0, 0, datas[0])
	fill(h, k, 4, 0, datas[4] /* 5th allocation */)
	// Line 0's entry must still be present: a read hit on it must not
	// panic (Initial requires an entry).
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("verdict %v", v)
	}
}

func TestScrubReclaimsSoftErrorDisabledLines(t *testing.T) {
	// A clean line disabled by a double soft error must come back as
	// Stable0 after a scrub; a genuinely 2-fault line must not.
	faults := [][]faultmodel.Fault{
		nil,                        // line (0,0): clean
		{stuck(0, 1), stuck(1, 1)}, // line (0,1): persistent 2-fault
	}
	h := newHost(t, 4, 2, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)

	// Disable (0,0) via two soft errors in distinct fold segments.
	data := randomLine(xrand.New(31))
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	k.OnReadHit(0, 0, &got) // classify Stable0
	h.data.InjectSoftError(h.tags.LineID(0, 0), 0)
	h.data.InjectSoftError(h.tags.LineID(0, 0), 1)
	got = h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss || k.DFHOf(0, 0) != Disabled {
		t.Fatalf("setup: %v / %v", v, k.DFHOf(0, 0))
	}

	// Disable (0,1) via its persistent faults.
	var zero bitvec.Line
	fill(h, k, 0, 1, zero)
	got = h.data.Read(h.tags.LineID(0, 1))
	if v := k.OnReadHit(0, 1, &got); v != protection.ErrorMiss || k.DFHOf(0, 1) != Disabled {
		t.Fatalf("setup persistent: %v / %v", v, k.DFHOf(0, 1))
	}

	if n := k.Scrub(); n != 1 {
		t.Fatalf("scrub reclaimed %d lines, want 1", n)
	}
	if k.DFHOf(0, 0) != Stable0 {
		t.Fatalf("soft-error line DFH = %v after scrub, want b'00", k.DFHOf(0, 0))
	}
	if k.DFHOf(0, 1) != Disabled {
		t.Fatalf("persistent 2-fault line DFH = %v after scrub, want b'11", k.DFHOf(0, 1))
	}
	if h.ctr.Get("killi.scrub_tests") != 2 || h.ctr.Get("killi.scrub_reclaimed") != 1 {
		t.Fatal("scrub counters wrong")
	}
	// The reclaimed line must be usable again.
	fill(h, k, 0, 0, data)
	got = h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || got != data {
		t.Fatal("reclaimed line unusable")
	}
}

func TestScrubReclaimsOneFaultLineAsStable1(t *testing.T) {
	// A 1-fault line disabled by (fault + soft error) comes back as
	// Stable1 once the transient is gone.
	faults := [][]faultmodel.Fault{{stuck(10, 1)}}
	h := newHost(t, 2, 1, faults, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(0)
	k.OnReadHit(0, 0, &got) // Stable1
	h.data.InjectSoftError(0, 300)
	got = h.data.Read(0)
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss || k.DFHOf(0, 0) != Disabled {
		t.Fatalf("setup: %v / %v", v, k.DFHOf(0, 0))
	}
	if n := k.Scrub(); n != 1 {
		t.Fatalf("scrub reclaimed %d", n)
	}
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH = %v after scrub, want b'10", k.DFHOf(0, 0))
	}
	// Usable again, with SECDED correcting the persistent fault.
	fill(h, k, 0, 0, data)
	got = h.data.Read(0)
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || got != data {
		t.Fatal("reclaimed Stable1 line unusable")
	}
}

func TestScrubNoopWithoutDisabledLines(t *testing.T) {
	h := newHost(t, 2, 2, nil, 0.625)
	k := attach(h, Config{Ratio: 1}, 0.625)
	if n := k.Scrub(); n != 0 {
		t.Fatalf("scrub on healthy cache reclaimed %d", n)
	}
	if h.ctr.Get("killi.scrub_tests") != 0 {
		t.Fatal("scrub tested enabled lines")
	}
}

func TestOLSCModeKeepsManyFaultLinesEnabled(t *testing.T) {
	// §5.5: with OLSC in the ECC cache, a line with 8 stuck faults stays
	// enabled and its data is corrected on every read.
	many := make([]faultmodel.Fault, 8)
	for i := range many {
		many[i] = stuck(i*61, 1)
	}
	h := newHost(t, 4, 4, [][]faultmodel.Fault{many}, 0.575)
	k := attach(h, Config{Ratio: 1, OLSCStrength: 11}, 0.575)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("verdict %v", v)
	}
	if got != data {
		t.Fatal("OLSC did not correct 8 faults")
	}
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH %v, want b'10 (enabled under OLSC)", k.DFHOf(0, 0))
	}
	// Repeat reads keep correcting.
	got = h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || got != data {
		t.Fatal("repeat OLSC read failed")
	}
}

func TestOLSCModeDisablesBeyondStrength(t *testing.T) {
	many := make([]faultmodel.Fault, 12)
	for i := range many {
		many[i] = stuck(i*41, 1)
	}
	h := newHost(t, 4, 4, [][]faultmodel.Fault{many}, 0.575)
	k := attach(h, Config{Ratio: 1, OLSCStrength: 11}, 0.575)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if k.DFHOf(0, 0) != Disabled {
		t.Fatalf("DFH %v, want b'11 (12 > 11)", k.DFHOf(0, 0))
	}
}

func TestOLSCModeCleanLineFreesEntry(t *testing.T) {
	h := newHost(t, 4, 4, nil, 0.575)
	k := attach(h, Config{Ratio: 1, OLSCStrength: 11}, 0.575)
	data := randomLine(xrand.New(61))
	fill(h, k, 0, 0, data)
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver || got != data {
		t.Fatal("clean OLSC read failed")
	}
	if k.DFHOf(0, 0) != Stable0 || k.ECCOccupancy() != 0 {
		t.Fatal("clean line did not release its entry in OLSC mode")
	}
}

func TestOLSCModeEvictionTraining(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(3, 1), stuck(77, 1), stuck(300, 1)}}
	h := newHost(t, 4, 4, faults, 0.575)
	k := attach(h, Config{Ratio: 1, OLSCStrength: 11}, 0.575)
	var data bitvec.Line
	fill(h, k, 0, 0, data)
	k.OnEvict(0, 0)
	h.tags.Invalidate(0, 0)
	if k.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH after OLSC eviction training = %v, want b'10", k.DFHOf(0, 0))
	}
}

func TestOLSCAndDECTEDMutuallyExclusive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UseDECTED+OLSCStrength did not panic")
		}
	}()
	New(Config{UseDECTED: true, OLSCStrength: 11})
}

func TestOLSCModeName(t *testing.T) {
	if New(Config{Ratio: 2, OLSCStrength: 11}).Name() != "killi-olsc11-1:2" {
		t.Fatal("OLSC-mode name wrong")
	}
}
