package killi

// §5.5: "To run at such low voltages, both Killi's ECC cache and MS-ECC
// must use ECC based on Orthogonal Latin Square Codes (OLSC). … Killi's
// parity support remains unchanged."
//
// In OLSC mode the ECC cache entry stores an OLSC checkbit vector instead
// of SECDED(+DECTED) bits. Any line whose faults the code can correct
// (up to OLSCStrength, 11 in the Table 7 configuration) stays enabled in
// the Stable1 state; only lines beyond that are disabled. This is what
// lets Killi chase MS-ECC's Vmin with a fraction of the area (Table 7).

import (
	"killi/internal/bitvec"
	"killi/internal/ecc/olsc"
	"killi/internal/ecc/parity"
	"killi/internal/protection"
)

// olscFill generates OLSC-mode metadata for a fill into any enabled state.
func (k *Scheme) olscFill(set, way, id int, data bitvec.Line) {
	switch k.DFHOf(set, way) {
	case Initial:
		p16 := k.p16.Generate(data)
		k.parity4[id] = uint8(p16 & 0xf)
		entry := k.allocECC(set, way)
		entry.parity12 = uint16(p16 >> 4)
		entry.olscCheck = k.olsc.Encode(lineVector(data))
	case Stable0:
		k.parity4[id] = uint8(k.p4.Generate(data))
	case Stable1:
		k.parity4[id] = uint8(k.p4.Generate(data))
		entry := k.allocECC(set, way)
		entry.olscCheck = k.olsc.Encode(lineVector(data))
	default:
		panic("killi: fill into a disabled line")
	}
}

// olscReadInitial classifies an unknown line with segmented parity plus
// the OLSC decoder: fault-free lines release their entry, correctable
// lines stay enabled under OLSC, anything beyond is disabled.
func (k *Scheme) olscReadInitial(set, way int, data *bitvec.Line) protection.Verdict {
	id := k.h.Tags().LineID(set, way)
	entry, eSet, eWay, hit := k.ecc.lookup(set, id)
	if !hit {
		panic("killi: Initial line without an ECC cache entry")
	}
	k.ecc.touch(eSet, eWay)
	stored16 := uint64(k.parity4[id]) | uint64(entry.parity12)<<4

	vec := lineVector(*data)
	res := k.olsc.Decode(vec, entry.olscCheck)
	switch res.Status {
	case olsc.OK:
		if _, segMis := k.p16.Check(*data, stored16); segMis != 0 {
			// Parity and OLSC disagree: distrust the line.
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
		k.setDFH(set, way, Stable0)
		k.parity4[id] = uint8(parity.Fold(stored16))
		k.ecc.invalidate(set, id)
		return protection.Deliver
	case olsc.Corrected:
		for _, b := range res.DataBitsFlipped {
			data.FlipBit(b)
		}
		if _, bad := k.p16.Check(*data, stored16); bad != 0 {
			k.h.Stats().IncC(cMiscorrection)
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
		k.h.Stats().IncC(cCorrectedReads)
		k.setDFH(set, way, Stable1)
		k.parity4[id] = uint8(parity.Fold(stored16))
		return protection.Deliver
	default:
		k.setDFH(set, way, Disabled)
		k.ecc.invalidate(set, id)
		return protection.ErrorMiss
	}
}

// olscReadStable1 verifies an OLSC-protected line.
func (k *Scheme) olscReadStable1(set, way int, data *bitvec.Line) protection.Verdict {
	id := k.h.Tags().LineID(set, way)
	entry, eSet, eWay, hit := k.ecc.lookup(set, id)
	if !hit {
		panic("killi: Stable1 line without an ECC cache entry")
	}
	k.ecc.touch(eSet, eWay)
	vec := lineVector(*data)
	res := k.olsc.Decode(vec, entry.olscCheck)
	switch res.Status {
	case olsc.OK:
		return protection.Deliver
	case olsc.Corrected:
		for _, b := range res.DataBitsFlipped {
			data.FlipBit(b)
		}
		if _, bad := k.p4.Check(*data, uint64(k.parity4[id])); bad != 0 {
			k.h.Stats().IncC(cMiscorrection)
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
		k.h.Stats().IncC(cCorrectedReads)
		return protection.Deliver
	default:
		k.setDFH(set, way, Disabled)
		k.ecc.invalidate(set, id)
		return protection.ErrorMiss
	}
}

// olscClassifyDeparting is eviction training in OLSC mode.
func (k *Scheme) olscClassifyDeparting(set, way, id int, entry *eccEntry) {
	data := k.h.Data().Read(id)
	stored16 := uint64(k.parity4[id]) | uint64(entry.parity12)<<4
	_, segMis := k.p16.Check(data, stored16)
	k.h.Stats().IncC(cEvictionTrainings)
	vec := lineVector(data)
	res := k.olsc.Decode(vec, entry.olscCheck)
	switch {
	case res.Status == olsc.OK && segMis == 0:
		k.setDFH(set, way, Stable0)
	case res.Status == olsc.Corrected:
		k.setDFH(set, way, Stable1)
	default:
		k.setDFH(set, way, Disabled)
	}
}
