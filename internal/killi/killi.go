package killi

import (
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/ecc/bch"
	"killi/internal/ecc/olsc"
	"killi/internal/ecc/parity"
	"killi/internal/ecc/secded"
	"killi/internal/obs"
	"killi/internal/protection"
	"killi/internal/sram"
	"killi/internal/stats"
)

// Pre-interned counter handles for every event the scheme counts on a hot
// path; the DFH transition matrix covers all 16 prev→next pairs so setDFH
// never formats a counter name per event.
var (
	cLinesReclaim      = stats.Intern("killi.lines_reclaim_attempted")
	cLinesDisabled     = stats.Intern("killi.lines_disabled")
	cECCAccesses       = stats.Intern("killi.ecc_accesses")
	cECCContention     = stats.Intern("killi.ecc_contention_evictions")
	cInvertedSingle    = stats.Intern("killi.inverted_unmasked_single")
	cInvertedMulti     = stats.Intern("killi.inverted_unmasked_multi")
	cDECTEDPromotions  = stats.Intern("killi.dected_promotions")
	cPostSingle        = stats.Intern("killi.post_training_single_error")
	cPostMulti         = stats.Intern("killi.post_training_multi_error")
	cMiscorrection     = stats.Intern("killi.miscorrection_caught")
	cCorrectedReads    = stats.Intern("killi.corrected_reads")
	cInvertedChecks    = stats.Intern("killi.inverted_checks")
	cEvictionTrainings = stats.Intern("killi.eviction_trainings")
	cScrubTests        = stats.Intern("killi.scrub_tests")
	cScrubReclaimed    = stats.Intern("killi.scrub_reclaimed")

	cDFHTransition = func() (m [4][4]stats.Counter) {
		for p := Stable0; p <= Disabled; p++ {
			for n := Stable0; n <= Disabled; n++ {
				m[p][n] = stats.Intern(fmt.Sprintf("killi.dfh_%s_to_%s", p, n))
			}
		}
		return
	}()
)

// Config parameterizes a Killi instance.
type Config struct {
	// Ratio sizes the ECC cache: one ECC entry per Ratio L2 lines. The
	// paper sweeps 16, 32, 64, 128, 256.
	Ratio int
	// Assoc is the ECC cache associativity (Table 3: 4).
	Assoc int
	// UseDECTED enables the §5.2 extension: once a line is classified,
	// the 12 freed parity bits are recombined with the 11 SECDED bits to
	// hold a 21-bit DECTED code, so 2-fault lines stay enabled instead of
	// being disabled.
	UseDECTED bool
	// InvertedTraining enables the §5.6.2 mitigation: before a line is
	// declared fault-free, its data is rewritten inverted and read back,
	// which unmasks any stuck-at fault hiding behind matching data.
	InvertedTraining bool

	// Ablation switches (not part of the paper's design; they exist to
	// measure the value of §4.4's optimizations):

	// PlainLRUAllocation disables the b'01 > b'00 > b'10 allocation
	// priority, falling back to ordinary invalid-first LRU.
	PlainLRUAllocation bool
	// NoEvictionTraining disables DFH classification on evictions
	// (including ECC-contention evictions); lines then classify only on
	// load hits, which slows training convergence dramatically.
	NoEvictionTraining bool
	// XORHashECCIndex replaces the ECC cache's modulo set indexing with
	// an XOR-folded hash, spreading which L2 sets alias together.
	XORHashECCIndex bool
	// OLSCStrength switches the ECC cache to Orthogonal Latin Square
	// codes correcting up to this many errors per line (§5.5; Table 7
	// uses 11). Lines with any correctable fault count stay enabled.
	// Mutually exclusive with UseDECTED.
	OLSCStrength int
}

// DefaultConfig returns the paper's default: a 1:64 ECC cache, 4-way.
func DefaultConfig() Config { return Config{Ratio: 64, Assoc: 4} }

func (c Config) withDefaults() Config {
	if c.Ratio <= 0 {
		c.Ratio = 64
	}
	if c.Assoc <= 0 {
		c.Assoc = 4
	}
	return c
}

// Scheme is the Killi protection mechanism. It implements
// protection.Scheme. Construct with New.
type Scheme struct {
	cfg    Config
	h      protection.Host
	code   *secded.Code
	dected *bch.Code
	p16    parity.Scheme
	p4     parity.Scheme
	ecc    *eccCache

	// parity4 holds each line's cache-resident parity bits: during
	// Initial, interleaved-16 segments 0–3; in stable states, the 4-bit
	// fold over 128-bit segments.
	parity4 []uint8
	// dectedOn marks Stable1 lines protected by DECTED instead of SECDED
	// (only with UseDECTED).
	dectedOn []bool
	// olsc is the §5.5 low-Vmin codec (nil unless OLSCStrength > 0).
	olsc *olsc.Code
}

// New returns a Killi scheme with the given configuration.
func New(cfg Config) *Scheme {
	cfg = cfg.withDefaults()
	s := &Scheme{
		cfg:  cfg,
		code: secded.New(bitvec.LineBits),
		p16:  parity.NewInterleaved(16),
		p4:   parity.NewInterleaved(4),
	}
	if cfg.UseDECTED && cfg.OLSCStrength > 0 {
		panic("killi: UseDECTED and OLSCStrength are mutually exclusive")
	}
	if cfg.UseDECTED {
		s.dected = bch.NewLine(2)
	}
	if cfg.OLSCStrength > 0 {
		s.olsc = olsc.NewLine(cfg.OLSCStrength)
	}
	return s
}

// Name implements protection.Scheme.
func (k *Scheme) Name() string {
	switch {
	case k.cfg.UseDECTED:
		return fmt.Sprintf("killi-dected-1:%d", k.cfg.Ratio)
	case k.cfg.OLSCStrength > 0:
		return fmt.Sprintf("killi-olsc%d-1:%d", k.cfg.OLSCStrength, k.cfg.Ratio)
	default:
		return fmt.Sprintf("killi-1:%d", k.cfg.Ratio)
	}
}

// Attach implements protection.Scheme.
func (k *Scheme) Attach(h protection.Host) {
	k.h = h
	lines := h.Tags().Config().Lines()
	k.ecc = newECCCache(lines, k.cfg.Ratio, k.cfg.Assoc)
	k.ecc.xorIndex = k.cfg.XORHashECCIndex
	k.parity4 = make([]uint8, lines)
	k.dectedOn = make([]bool, lines)
}

// ECCEntries exposes the ECC cache capacity for reports and area checks.
func (k *Scheme) ECCEntries() int { return k.ecc.Entries() }

// ECCOccupancy returns the number of live ECC cache entries — high during
// DFH warmup, low once most lines are classified fault-free.
func (k *Scheme) ECCOccupancy() int { return k.ecc.occupancy() }

// DFHOf returns the DFH state of the line at (set, way).
func (k *Scheme) DFHOf(set, way int) DFH {
	return DFH(k.h.Tags().Entry(set, way).Class)
}

// DFHCode returns the raw Table 1 two-bit encoding of the line's DFH state
// (0 = b'00 stable/0-fault, 1 = b'01 initial, 2 = b'10 stable/1-fault,
// 3 = b'11 disabled), for scheme-agnostic probes such as the gpu package's
// misclassification oracle. Note what the classifier knows: DFH records
// detected activations, not ground truth — a fault that never manifested
// during training (dormant intermittent, unramped aging) leaves no trace
// here, which is exactly the gap the oracle measures.
func (k *Scheme) DFHCode(set, way int) uint8 { return uint8(k.DFHOf(set, way)) }

// Reset implements protection.Scheme: the DFH reset that runs at power-on
// or any voltage change. Every line — including previously disabled ones —
// returns to the Initial state and will be reclassified on the fly; there
// is no MBIST pass.
func (k *Scheme) Reset(vNorm float64) {
	tags := k.h.Tags()
	stats := k.h.Stats()
	// Direct set iteration: ForEach's per-entry closure call is measurable
	// across the 32K-line reset that every task performs.
	for s := 0; s < tags.Config().Sets; s++ {
		es := tags.Set(s)
		for w := range es {
			e := &es[w]
			if e.Disabled {
				stats.IncC(cLinesReclaim)
			}
			e.Disabled = false
			e.Valid = false
			e.Class = int(Initial)
		}
	}
	k.ecc.reset()
	for i := range k.parity4 {
		k.parity4[i] = 0
		k.dectedOn[i] = false
	}
	if o := k.h.Observer(); o != nil {
		o.OnReset(obs.Reset{Cycle: k.h.Now(), Voltage: vNorm, Lines: len(k.parity4)})
	}
}

// VictimFunc implements protection.Scheme: Killi's allocation priority
// (§4.4). Among invalid lines it prefers Initial > Stable0 > Stable1 —
// filling Initial lines first accelerates DFH training, and preferring
// Stable0 over Stable1 lowers the SDC exposure of combined soft-error +
// LV-fault patterns. With no invalid line it falls back to LRU.
func (k *Scheme) VictimFunc() cache.VictimFunc {
	if k.cfg.PlainLRUAllocation {
		return nil
	}
	return func(entries []cache.Entry) int {
		best, bestPri := -1, -1
		for w := range entries {
			e := &entries[w]
			if e.Disabled || e.Valid {
				continue
			}
			pri := 0
			switch DFH(e.Class) {
			case Initial:
				pri = 3
			case Stable0:
				pri = 2
			case Stable1:
				pri = 1
			}
			if pri > bestPri {
				best, bestPri = w, pri
			}
		}
		if best >= 0 {
			return best
		}
		return cache.LRUVictim(entries)
	}
}

// setDFH records a state transition on the tag entry and counts it. With
// an observer attached it also emits the transition as a timestamped
// event; the nil-observer check is the only cost on the default path.
func (k *Scheme) setDFH(set, way int, next DFH) {
	e := k.h.Tags().Entry(set, way)
	prev := DFH(e.Class)
	if prev != next {
		k.h.Stats().IncC(cDFHTransition[prev][next])
		if o := k.h.Observer(); o != nil {
			o.OnTransition(obs.Transition{
				Cycle: k.h.Now(),
				Line:  k.h.Tags().LineID(set, way),
				From:  uint8(prev),
				To:    uint8(next),
			})
		}
	}
	e.Class = int(next)
	if next == Disabled {
		e.Disabled = true
		e.Valid = false
		k.h.Stats().IncC(cLinesDisabled)
	}
}

// allocECC obtains the ECC cache entry for a line. When contention evicts
// another line's checkbits, the victim line's DFH is first trained against
// the dying checkbits, exactly as a regular L2 eviction would (§4.4). This
// on-the-way-out classification is what lets training converge even through
// a heavily contended ECC cache: most victims classify b'00, switch to
// their folded 4-bit parity, and stay resident — only a line that still
// needs checkbits after training (Stable1, or Initial with eviction
// training disabled) is evicted from the L2 (the paper's ECC-cache-induced
// L2 replacement).
func (k *Scheme) allocECC(set, way int) *eccEntry {
	tags := k.h.Tags()
	id := tags.LineID(set, way)
	k.h.Stats().IncC(cECCAccesses)
	entry, evicted, old := k.ecc.allocate(set, id)
	if evicted >= 0 {
		k.h.Stats().IncC(cECCContention)
		ways := tags.Config().Ways
		vSet, vWay := evicted/ways, evicted%ways
		ve := tags.Entry(vSet, vWay)
		if ve.Valid {
			switch DFH(ve.Class) {
			case Initial:
				if k.cfg.NoEvictionTraining {
					// Untrained and unprotected: must leave the L2.
					k.h.SchemeInvalidate(vSet, vWay)
					break
				}
				k.classifyDeparting(vSet, vWay, evicted, &old)
				// A victim classified Stable0 keeps operating on its
				// folded parity and stays resident; Disabled already
				// invalidated itself; Stable1 loses its checkbits with
				// the entry and must leave.
				if DFH(ve.Class) == Stable0 && !k.cfg.InvertedTraining {
					// Unlike eviction training, the line's data stays
					// live under 4-bit parity alone, so a fault masked by
					// matching data (§5.6.2) would go unwatched until a
					// write unmasks it. The polarity test costs one
					// write/read pair and closes that window; with
					// InvertedTraining it already ran inside
					// classifyDeparting. Lines whose masked faults the
					// codec could still correct go to Stable1 (refilled
					// under fresh checkbits); only faults beyond its
					// strength disable the line.
					limit := 1
					switch {
					case k.olsc != nil:
						limit = k.cfg.OLSCStrength
					case k.cfg.UseDECTED:
						limit = 2
					}
					switch faults := k.invertedCheck(evicted, k.h.Data().Read(evicted)); {
					case faults == 0:
						// Genuinely clean: stays resident.
					case faults <= limit:
						k.h.Stats().IncC(cInvertedSingle)
						if k.cfg.UseDECTED && faults == 2 {
							k.h.Stats().IncC(cDECTEDPromotions)
							k.dectedOn[evicted] = true
						}
						k.setDFH(vSet, vWay, Stable1)
					default:
						k.h.Stats().IncC(cInvertedMulti)
						k.setDFH(vSet, vWay, Disabled)
					}
				}
				if DFH(ve.Class) == Stable1 {
					k.h.SchemeInvalidate(vSet, vWay)
				}
			case Stable1:
				k.h.SchemeInvalidate(vSet, vWay)
			}
		}
	}
	return entry
}

// OnFill implements protection.Scheme: metadata generation for data just
// written into (set, way). data is the encoder-input (true) payload.
func (k *Scheme) OnFill(set, way int, data bitvec.Line) {
	id := k.h.Tags().LineID(set, way)
	if k.olsc != nil {
		k.olscFill(set, way, id, data)
		return
	}
	switch k.DFHOf(set, way) {
	case Initial:
		p16 := k.p16.Generate(data)
		k.parity4[id] = uint8(p16 & 0xf)
		entry := k.allocECC(set, way)
		entry.parity12 = uint16(p16 >> 4)
		entry.check = k.code.EncodeLine(data)
		entry.dected = nil
	case Stable0:
		k.parity4[id] = uint8(k.p4.Generate(data))
	case Stable1:
		k.parity4[id] = uint8(k.p4.Generate(data))
		entry := k.allocECC(set, way)
		if k.dectedOn[id] {
			ck := k.dected.Encode(lineVector(data))
			entry.dected = ck.Bits
			entry.dectedGlobal = ck.Global
		} else {
			entry.check = k.code.EncodeLine(data)
			entry.dected = nil
		}
	default:
		panic("killi: fill into a disabled line")
	}
}

// OnWriteHit implements protection.Scheme: a write-through store updated
// the line; regenerate its metadata for the new data.
func (k *Scheme) OnWriteHit(set, way int, data bitvec.Line) {
	k.OnFill(set, way, data)
}

// OnReadHit implements protection.Scheme: the Table 2 state machine.
func (k *Scheme) OnReadHit(set, way int, data *bitvec.Line) protection.Verdict {
	switch k.DFHOf(set, way) {
	case Stable0:
		return k.readStable0(set, way, data)
	case Initial:
		if k.olsc != nil {
			return k.olscReadInitial(set, way, data)
		}
		return k.readInitial(set, way, data)
	case Stable1:
		if k.olsc != nil {
			return k.olscReadStable1(set, way, data)
		}
		return k.readStable1(set, way, data)
	default:
		panic("killi: read hit on a disabled line")
	}
}

// readStable0 handles hits on lines believed fault-free: 4-bit parity only.
func (k *Scheme) readStable0(set, way int, data *bitvec.Line) protection.Verdict {
	id := k.h.Tags().LineID(set, way)
	_, mism := k.p4.Check(*data, uint64(k.parity4[id]))
	switch {
	case mism == 0:
		return protection.Deliver
	case mism == 1:
		// A 1-bit error surfaced after training: the initial
		// classification was wrong (a masked fault unmasked) or a soft
		// error struck. Return the line to Initial and relearn.
		k.h.Stats().IncC(cPostSingle)
		k.setDFH(set, way, Initial)
		k.h.Tags().Invalidate(set, way)
		return protection.ErrorMiss
	default:
		k.h.Stats().IncC(cPostMulti)
		k.setDFH(set, way, Disabled)
		return protection.ErrorMiss
	}
}

// readInitial classifies a line on its first (or any subsequent) hit while
// in the unknown state, using segmented parity + SECDED syndrome + global
// parity.
func (k *Scheme) readInitial(set, way int, data *bitvec.Line) protection.Verdict {
	tags := k.h.Tags()
	id := tags.LineID(set, way)
	entry, eSet, eWay, hit := k.ecc.lookup(set, id)
	if !hit {
		// The entry was lost to contention and the line should have been
		// invalidated then; reaching here is a controller bug.
		panic("killi: Initial line without an ECC cache entry")
	}
	k.h.Stats().IncC(cECCAccesses)
	k.ecc.touch(eSet, eWay)
	stored16 := uint64(k.parity4[id]) | uint64(entry.parity12)<<4
	_, segMis := k.p16.Check(*data, stored16)
	syn, gErr := k.code.SyndromeLine(*data, entry.check)

	switch {
	case segMis == 0 && syn == 0 && !gErr:
		// No error — the most frequent case. Free the checkbits.
		return k.finishTrainingClean(set, way, id, data, stored16, entry)

	case segMis == 1 && syn != 0 && gErr:
		// Single-bit LV error signature: correct with the stored
		// checkbits, then verify the corrected data against ALL 16
		// stored parity bits. A ≥3-error pattern can forge this
		// signature (two errors sharing a segment plus one more) and
		// trick SECDED into a miscorrection; the post-correction parity
		// recheck is what makes detection the parity∧SECDED joint of the
		// paper's §5.3 coverage analysis.
		res := k.code.DecodeLine(data, entry.check)
		if res.Status != secded.CorrectedData && res.Status != secded.CorrectedCheck {
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
		if _, stillBad := k.p16.Check(*data, stored16); stillBad != 0 {
			k.h.Stats().IncC(cMiscorrection)
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
		if k.cfg.InvertedTraining {
			// §5.6.2 applied to the 1-error path as well: additional
			// faults may be hiding behind matching data; the polarity
			// check counts every stuck cell.
			switch faults := k.invertedCheck(id, *data); {
			case faults >= 2:
				k.h.Stats().IncC(cInvertedMulti)
				k.setDFH(set, way, Disabled)
				k.ecc.invalidate(set, id)
				return protection.ErrorMiss
			case faults == 0:
				// The corrected error was transient: the line is clean.
				k.h.Stats().IncC(cCorrectedReads)
				k.setDFH(set, way, Stable0)
				k.parity4[id] = uint8(parity.Fold(stored16))
				k.ecc.invalidate(set, id)
				return protection.Deliver
			}
		}
		k.h.Stats().IncC(cCorrectedReads)
		k.setDFH(set, way, Stable1)
		k.parity4[id] = uint8(parity.Fold(stored16))
		return protection.Deliver

	case syn != 0 && !gErr && k.cfg.UseDECTED:
		// Even error count (very likely exactly two). The DECTED
		// extension keeps such lines enabled: refetch clean data and
		// re-protect with the 21-bit code.
		k.h.Stats().IncC(cDECTEDPromotions)
		k.setDFH(set, way, Stable1)
		k.dectedOn[id] = true
		k.parity4[id] = uint8(parity.Fold(stored16))
		k.ecc.invalidate(set, id)
		tags.Invalidate(set, way)
		return protection.ErrorMiss

	default:
		// Every remaining Table 2 row disables the line: multi-bit with
		// even parity, odd multi-bit, or parity/ECC disagreement.
		k.setDFH(set, way, Disabled)
		k.ecc.invalidate(set, id)
		return protection.ErrorMiss
	}
}

// finishTrainingClean completes an Initial→Stable0 transition, optionally
// running the inverted-data masked-fault check first (§5.6.2).
func (k *Scheme) finishTrainingClean(set, way, id int, data *bitvec.Line, stored16 uint64, entry *eccEntry) protection.Verdict {
	if k.cfg.InvertedTraining {
		faults := k.invertedCheck(id, *data)
		switch {
		case faults == 1:
			// A masked single fault: classify Stable1 and keep the
			// checkbits (they match the current clean data).
			k.h.Stats().IncC(cInvertedSingle)
			k.setDFH(set, way, Stable1)
			k.parity4[id] = uint8(parity.Fold(stored16))
			return protection.Deliver
		case faults >= 2:
			k.h.Stats().IncC(cInvertedMulti)
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
	}
	k.setDFH(set, way, Stable0)
	k.parity4[id] = uint8(parity.Fold(stored16))
	k.ecc.invalidate(set, id)
	return protection.Deliver
}

// invertedCheck runs the §5.6.2 polarity test via the host's data array.
func (k *Scheme) invertedCheck(id int, data bitvec.Line) int {
	k.h.Stats().IncC(cInvertedChecks)
	return invertedFaultCount(k.h.Data(), id, data)
}

// invertedFaultCount writes the line's inverted data, reads it back,
// restores the original, and returns the number of cells that failed
// either polarity — which is exactly the line's unmasked-able stuck-at
// fault count (§5.6.2's write → read → write-inverted → read flow).
func invertedFaultCount(arr *sram.Array, id int, data bitvec.Line) int {
	inv := data.Invert()
	arr.Write(id, inv)
	mismatch := map[int]bool{}
	for _, b := range arr.Read(id).DiffBits(inv) {
		mismatch[b] = true
	}
	arr.Write(id, data)
	for _, b := range arr.Read(id).DiffBits(data) {
		mismatch[b] = true
	}
	return len(mismatch)
}

// readStable1 handles hits on lines with one known LV fault.
func (k *Scheme) readStable1(set, way int, data *bitvec.Line) protection.Verdict {
	tags := k.h.Tags()
	id := tags.LineID(set, way)
	entry, eSet, eWay, hit := k.ecc.lookup(set, id)
	if !hit {
		panic("killi: Stable1 line without an ECC cache entry")
	}
	k.h.Stats().IncC(cECCAccesses)
	// Coordinated replacement: the protected line was just touched, so
	// its metadata moves to MRU with it (§4.4).
	k.ecc.touch(eSet, eWay)

	if k.dectedOn[id] {
		return k.readDECTED(set, way, id, data, entry)
	}

	_, segMis := k.p4.Check(*data, uint64(k.parity4[id]))
	syn, gErr := k.code.SyndromeLine(*data, entry.check)
	switch {
	case syn == 0 && !gErr && segMis == 0:
		// The known fault has vanished (a transient that was overwritten,
		// or a masked fault flipped back): reclassify as fault-free.
		k.setDFH(set, way, Stable0)
		k.ecc.invalidate(set, id)
		return protection.Deliver
	case syn == 0 && !gErr && segMis > 0:
		// Parity disagrees while ECC sees nothing: a combination ECC
		// cannot untangle (likely LV fault + new error). Disable.
		k.setDFH(set, way, Disabled)
		k.ecc.invalidate(set, id)
		return protection.ErrorMiss
	case syn != 0 && gErr:
		// The single-bit LV error, as expected: correct and deliver
		// (segmented parity is a don't-care for the decision per
		// Table 2, but the corrected data must agree with the stored
		// 4-bit parity — a cheap guard against ≥3-error aliases).
		res := k.code.DecodeLine(data, entry.check)
		if res.Status != secded.CorrectedData && res.Status != secded.CorrectedCheck {
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
		if _, stillBad := k.p4.Check(*data, uint64(k.parity4[id])); stillBad != 0 {
			k.h.Stats().IncC(cMiscorrection)
			k.setDFH(set, way, Disabled)
			k.ecc.invalidate(set, id)
			return protection.ErrorMiss
		}
		k.h.Stats().IncC(cCorrectedReads)
		return protection.Deliver
	default:
		// syn != 0 && !gErr (an additional error on top of the known
		// one), or syn == 0 && gErr: disable.
		k.setDFH(set, way, Disabled)
		k.ecc.invalidate(set, id)
		return protection.ErrorMiss
	}
}

// readDECTED verifies a DECTED-protected stable line (§5.2 extension).
func (k *Scheme) readDECTED(set, way, id int, data *bitvec.Line, entry *eccEntry) protection.Verdict {
	vec := lineVector(*data)
	res := k.dected.Decode(vec, bch.Check{Bits: entry.dected, Global: entry.dectedGlobal})
	switch res.Status {
	case bch.OK:
		return protection.Deliver
	case bch.Corrected:
		for _, b := range res.DataBitsFlipped {
			data.FlipBit(b)
		}
		k.h.Stats().IncC(cCorrectedReads)
		return protection.Deliver
	default:
		k.setDFH(set, way, Disabled)
		k.ecc.invalidate(set, id)
		return protection.ErrorMiss
	}
}

// OnEvict implements protection.Scheme: training on eviction (§4.4). For a
// departing Initial line, Killi reads the data out, classifies it exactly
// as a hit would, and persists the DFH verdict; the ECC entry is freed in
// all cases because there is no resident data left to protect.
func (k *Scheme) OnEvict(set, way int) {
	tags := k.h.Tags()
	id := tags.LineID(set, way)
	switch k.DFHOf(set, way) {
	case Stable0:
		return
	case Stable1:
		k.ecc.invalidate(set, id)
		return
	case Disabled:
		return
	}
	// Initial: classify the evicted data.
	entry, _, _, hit := k.ecc.lookup(set, id)
	if !hit {
		panic("killi: evicting Initial line without an ECC cache entry")
	}
	if !k.cfg.NoEvictionTraining {
		k.classifyDeparting(set, way, id, entry)
	}
	k.ecc.invalidate(set, id)
}

// classifyDeparting runs §4.4 eviction training for an Initial line that is
// leaving the cache (a regular L2 eviction or an ECC-cache contention
// eviction): read the data out, evaluate parity + ECC against the given
// (possibly already dying) entry, and persist the DFH verdict.
func (k *Scheme) classifyDeparting(set, way, id int, entry *eccEntry) {
	if k.olsc != nil {
		k.olscClassifyDeparting(set, way, id, entry)
		return
	}
	data := k.h.Data().Read(id)
	stored16 := uint64(k.parity4[id]) | uint64(entry.parity12)<<4
	_, segMis := k.p16.Check(data, stored16)
	syn, gErr := k.code.SyndromeLine(data, entry.check)
	k.h.Stats().IncC(cEvictionTrainings)

	switch {
	case segMis == 0 && syn == 0 && !gErr:
		if k.cfg.InvertedTraining {
			switch faults := k.invertedCheck(id, data); {
			case faults == 1:
				k.setDFH(set, way, Stable1)
			case faults >= 2:
				k.setDFH(set, way, Disabled)
			default:
				k.setDFH(set, way, Stable0)
			}
		} else {
			k.setDFH(set, way, Stable0)
		}
	case segMis == 1 && syn != 0 && gErr:
		if k.cfg.InvertedTraining {
			switch faults := k.invertedCheck(id, data); {
			case faults >= 2:
				k.setDFH(set, way, Disabled)
			case faults == 0:
				k.setDFH(set, way, Stable0)
			default:
				k.setDFH(set, way, Stable1)
			}
		} else {
			k.setDFH(set, way, Stable1)
		}
	case syn != 0 && !gErr && k.cfg.UseDECTED:
		k.h.Stats().IncC(cDECTEDPromotions)
		k.setDFH(set, way, Stable1)
		k.dectedOn[id] = true
	default:
		k.setDFH(set, way, Disabled)
	}
	// A line that reached a stable state switches from the 16-bit training
	// parity to the 4-bit fold — required when a cleanly-classified
	// contention victim stays resident, and harmless for true departures
	// (OnFill regenerates parity on the next install).
	if c := k.DFHOf(set, way); c == Stable0 || c == Stable1 {
		k.parity4[id] = uint8(parity.Fold(stored16))
	}
}

// Scrub re-tests every disabled line with the §5.6.2 polarity flow and
// reclaims those whose faults turn out not to be persistent — the paper's
// footnote 7: "Disabled lines due to soft errors can also be reclaimed by
// a scrubber." Lines with zero stuck cells return as Stable0, one stuck
// cell as Stable1; genuine multi-bit LV faults stay disabled. The scrubber
// is meant for idle cycles; it touches only invalid (disabled) lines, so
// no resident data is at risk.
func (k *Scheme) Scrub() (reclaimed int) {
	tags := k.h.Tags()
	arr := k.h.Data()
	tags.ForEach(func(set, way int, e *cache.Entry) {
		if !e.Disabled {
			return
		}
		id := tags.LineID(set, way)
		k.h.Stats().IncC(cScrubTests)
		// The line is invalid, so a test pattern can be written freely.
		var pattern bitvec.Line
		arr.Write(id, pattern)
		faults := invertedFaultCount(arr, id, pattern)
		if faults >= 2 {
			return
		}
		e.Disabled = false
		if faults == 1 {
			e.Class = int(Stable1)
		} else {
			e.Class = int(Stable0)
		}
		if o := k.h.Observer(); o != nil {
			o.OnTransition(obs.Transition{Cycle: k.h.Now(), Line: id,
				From: uint8(Disabled), To: uint8(DFH(e.Class))})
		}
		k.h.Stats().IncC(cScrubReclaimed)
		reclaimed++
	})
	return reclaimed
}

// lineVector copies a Line into a 512-bit Vector for the BCH codec.
func lineVector(l bitvec.Line) *bitvec.Vector {
	return bitvec.LineVector(l)
}
