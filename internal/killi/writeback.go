package killi

import (
	"errors"
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/ecc/bch"
	"killi/internal/ecc/parity"
	"killi/internal/ecc/secded"
	"killi/internal/faultmodel"
	"killi/internal/sram"
	"killi/internal/stats"
)

// ErrDataLoss reports an uncorrectable error on a dirty line: unlike the
// write-through configuration, a write-back cache holds the only copy of
// modified data, so a detected-but-uncorrectable pattern cannot be
// recovered by refetching.
var ErrDataLoss = errors.New("killi: uncorrectable error on dirty line")

// WriteBackConfig parameterizes the write-back variant.
type WriteBackConfig struct {
	Sets, Ways int
	// Ratio sizes the ECC cache relative to the cache's line count.
	Ratio int
	// Assoc is the ECC cache associativity.
	Assoc int
	// InvertedTraining applies the §5.6.2 polarity check before a line is
	// classified fault-free, unmasking hidden stuck-at faults. Strongly
	// recommended for write-back operation: masked multi-bit faults under
	// dirty data are the variant's residual silent-corruption window.
	InvertedTraining bool
}

// WriteBackCache is the §5.6.1 extension: Killi on a write-back cache.
//
// The policy difference from the write-through design is how dirty lines
// are protected. A clean line can always be refetched, so parity detection
// suffices; a dirty line is the only copy of its data, so Killi raises the
// correction strength one level relative to the line's LV fault count:
//
//	dirty + DFH b'00 (no LV fault) → SECDED in the ECC cache
//	dirty + DFH b'10 (1 LV fault)  → DECTED in the ECC cache
//
// matching the failure probability a safe-voltage SECDED cache would give
// dirty data. The 21-bit DECTED code fits the ECC cache entry because the
// 12 parity overflow bits are free after training (11 + 12 = 23 ≥ 21) — no
// extra storage. Lines still in DFH b'01 keep the training-time
// SECDED + 16-bit parity and are treated like dirty b'00 lines.
//
// This type is a self-contained single-level cache (with its own backing
// store) rather than a protection.Scheme, because the write-through Scheme
// contract assumes every line is refetchable.
type WriteBackCache struct {
	cfg     WriteBackConfig
	tags    *cache.Cache
	data    *sram.Array
	backing map[uint64]bitvec.Line

	secded *secded.Code
	dected *bch.Code
	p16    parity.Scheme
	p4     parity.Scheme
	ecc    *eccCache

	parity4 []uint8
	dirty   []bool
	secdedC []secded.Check // valid when protection is SECDED-in-ECC-cache
	useDEC  []bool

	ctr stats.Counters
}

// NewWriteBack builds a write-back Killi cache over the given fault map at
// normalized voltage vNorm.
func NewWriteBack(cfg WriteBackConfig, faults *faultmodel.Map, vNorm float64) *WriteBackCache {
	if cfg.Ratio <= 0 {
		cfg.Ratio = 64
	}
	if cfg.Assoc <= 0 {
		cfg.Assoc = 4
	}
	tags := cache.New(cache.Config{Sets: cfg.Sets, Ways: cfg.Ways, LineBytes: 64})
	lines := tags.Config().Lines()
	c := &WriteBackCache{
		cfg:     cfg,
		tags:    tags,
		data:    sram.New(lines, faults, vNorm),
		backing: make(map[uint64]bitvec.Line),
		secded:  secded.New(bitvec.LineBits),
		dected:  bch.NewLine(2),
		p16:     parity.NewInterleaved(16),
		p4:      parity.NewInterleaved(4),
		ecc:     newECCCache(lines, cfg.Ratio, cfg.Assoc),
		parity4: make([]uint8, lines),
		dirty:   make([]bool, lines),
		secdedC: make([]secded.Check, lines),
		useDEC:  make([]bool, lines),
	}
	tags.ForEach(func(set, way int, e *cache.Entry) { e.Class = int(Initial) })
	return c
}

// Stats exposes the cache's counters.
func (c *WriteBackCache) Stats() *stats.Counters { return &c.ctr }

// DFHOf returns the DFH state at (set, way).
func (c *WriteBackCache) DFHOf(set, way int) DFH {
	return DFH(c.tags.Entry(set, way).Class)
}

// Write stores a full line. The data stays dirty in the cache until
// evicted or flushed.
func (c *WriteBackCache) Write(addr uint64, data bitvec.Line) error {
	set, tag := c.tags.Index(addr), c.tags.Tag(addr)
	way, hit := c.tags.Lookup(set, tag)
	if !hit {
		var err error
		way, err = c.allocate(set, tag)
		if err != nil {
			// No usable way: write through to backing.
			c.ctr.Inc("wb.write_bypass")
			c.backing[addr/64] = data
			return nil
		}
	}
	c.tags.Touch(set, way)
	id := c.tags.LineID(set, way)
	c.data.Write(id, data)
	c.dirty[id] = true
	c.protect(set, way, id, data)
	c.ctr.Inc("wb.writes")

	// §5.6.2-style write verification for unclassified lines: a dirty
	// store into a DFH b'01 line immediately reads back and checks, so
	// the only copy of modified data is never parked on a line that turns
	// out to be multi-bit faulty. On failure the line is disabled and the
	// store lands safely in the backing store.
	if DFH(c.tags.Entry(set, way).Class) == Initial {
		got := c.data.Read(id)
		if got != data {
			entry, _, _, hit := c.ecc.lookup(set, id)
			if hit {
				res := c.secded.DecodeLine(&got, entry.check)
				if (res.Status == secded.CorrectedData || res.Status == secded.CorrectedCheck) && got == data {
					if !c.cfg.InvertedTraining || invertedFaultCount(c.data, id, data) < 2 {
						// Single stuck-at cell: classify as a one-fault
						// line right away; protect() re-encodes per the
						// dirty Stable1 policy (DECTED).
						c.setWBDFH(set, way, Stable1)
						c.protect(set, way, id, data)
						return nil
					}
				}
			}
			// Uncorrectable at write time: disable, divert the store.
			c.setWBDFH(set, way, Disabled)
			c.ecc.invalidate(set, id)
			c.dirty[id] = false
			c.backing[addr/64] = data
			c.ctr.Inc("wb.write_verify_diverted")
		}
	}
	return nil
}

// Read returns the line's data, correcting errors where possible. A clean
// line with an uncorrectable error is refetched transparently; a dirty one
// returns ErrDataLoss.
func (c *WriteBackCache) Read(addr uint64) (bitvec.Line, error) {
	set, tag := c.tags.Index(addr), c.tags.Tag(addr)
	way, hit := c.tags.Lookup(set, tag)
	if !hit {
		way, err := c.allocate(set, tag)
		if err != nil {
			c.ctr.Inc("wb.read_bypass")
			return c.backing[addr/64], nil
		}
		data := c.backing[addr/64]
		id := c.tags.LineID(set, way)
		c.data.Write(id, data)
		c.dirty[id] = false
		c.protect(set, way, id, data)
		c.ctr.Inc("wb.read_misses")
		return data, nil
	}
	c.tags.Touch(set, way)
	c.ctr.Inc("wb.read_hits")
	id := c.tags.LineID(set, way)
	data := c.data.Read(id)
	clean, err := c.verify(set, way, id, &data)
	if err != nil {
		return bitvec.Line{}, err
	}
	if clean {
		return data, nil
	}
	// Uncorrectable but the line is clean: refetch from backing, reinstall
	// elsewhere on the next access.
	c.ctr.Inc("wb.error_refetch")
	c.tags.Invalidate(set, way)
	return c.backing[addr/64], nil
}

// Flush writes every dirty line back to the backing store, verifying each
// on the way out. It returns the first data-loss error encountered, if any.
func (c *WriteBackCache) Flush() error {
	var firstErr error
	c.tags.ForEach(func(set, way int, e *cache.Entry) {
		if !e.Valid {
			return
		}
		id := c.tags.LineID(set, way)
		if !c.dirty[id] {
			return
		}
		if err := c.writeback(set, way, id, e); err != nil && firstErr == nil {
			firstErr = err
		}
	})
	return firstErr
}

// allocate finds a way for a new line, writing back the victim if dirty.
func (c *WriteBackCache) allocate(set int, tag uint64) (int, error) {
	way, ok := c.tags.Victim(set, nil)
	if !ok {
		return -1, errors.New("killi: set fully disabled")
	}
	e := c.tags.Entry(set, way)
	if e.Valid {
		id := c.tags.LineID(set, way)
		if c.dirty[id] {
			// A lost dirty victim was already counted by verify; the
			// allocation itself proceeds.
			_ = c.writeback(set, way, id, e)
		}
		c.ecc.invalidate(set, id)
	}
	if c.tags.Entry(set, way).Disabled {
		return -1, errors.New("killi: victim disabled during writeback")
	}
	c.tags.Install(set, way, tag)
	return way, nil
}

// writeback verifies and writes a dirty line to backing.
func (c *WriteBackCache) writeback(set, way, id int, e *cache.Entry) error {
	data := c.data.Read(id)
	clean, err := c.verify(set, way, id, &data)
	if err != nil {
		return err
	}
	if !clean {
		c.ctr.Inc("wb.data_loss")
		return ErrDataLoss
	}
	lineAddr := c.lineAddr(set, e.Tag)
	c.backing[lineAddr] = data
	c.dirty[id] = false
	c.ctr.Inc("wb.writebacks")
	return nil
}

// lineAddr reconstructs the line address from (set, tag).
func (c *WriteBackCache) lineAddr(set int, tag uint64) uint64 {
	return tag*uint64(c.cfg.Sets) + uint64(set)
}

// protect (re)generates metadata for a line per the §5.6.1 policy.
func (c *WriteBackCache) protect(set, way, id int, data bitvec.Line) {
	switch DFH(c.tags.Entry(set, way).Class) {
	case Initial:
		p16 := c.p16.Generate(data)
		c.parity4[id] = uint8(p16 & 0xf)
		entry := c.allocWB(set, way)
		entry.parity12 = uint16(p16 >> 4)
		entry.check = c.secded.EncodeLine(data)
		c.useDEC[id] = false
	case Stable0:
		c.parity4[id] = uint8(c.p4.Generate(data))
		if c.dirty[id] {
			// Dirty data on a fault-free line: SECDED on demand.
			entry := c.allocWB(set, way)
			entry.check = c.secded.EncodeLine(data)
			c.useDEC[id] = false
		}
	case Stable1:
		c.parity4[id] = uint8(c.p4.Generate(data))
		entry := c.allocWB(set, way)
		if c.dirty[id] {
			// Dirty data on a 1-fault line: upgrade to DECTED using the
			// entry's 23 free bits.
			ck := c.dected.Encode(lineVector(data))
			entry.dected = ck.Bits
			entry.dectedGlobal = ck.Global
			c.useDEC[id] = true
		} else {
			entry.check = c.secded.EncodeLine(data)
			entry.dected = nil
			c.useDEC[id] = false
		}
	default:
		panic("killi: protect on disabled line")
	}
}

// allocWB allocates an ECC entry, evicting a contending line (which, in
// the write-back design, must be written back first if dirty).
func (c *WriteBackCache) allocWB(set, way int) *eccEntry {
	id := c.tags.LineID(set, way)
	entry, evicted, old := c.ecc.allocate(set, id)
	if evicted >= 0 {
		c.ctr.Inc("wb.ecc_contention_evictions")
		ways := c.tags.Config().Ways
		vSet, vWay := evicted/ways, evicted%ways
		ve := c.tags.Entry(vSet, vWay)
		if ve.Valid {
			vID := c.tags.LineID(vSet, vWay)
			if c.dirty[vID] {
				// The victim loses its checkbits: it cannot stay dirty in
				// the cache. Write it back now (§5.6.1's extra ECC-cache
				// pressure from dirty lines), verifying against the dying
				// entry since the ECC slot has already been reassigned.
				data := c.data.Read(vID)
				if clean, _ := c.verifyWith(vSet, vWay, vID, &data, &old); clean {
					c.backing[c.lineAddr(vSet, ve.Tag)] = data
					c.dirty[vID] = false
					c.ctr.Inc("wb.writebacks")
				}
			}
			c.tags.Invalidate(vSet, vWay)
		}
	}
	return entry
}

// verify checks a line against its metadata, correcting data in place.
// clean=false with err=nil means detected-uncorrectable on clean data
// (refetchable); ErrDataLoss is returned for dirty data.
func (c *WriteBackCache) verify(set, way, id int, data *bitvec.Line) (clean bool, err error) {
	var entry *eccEntry
	if state := DFH(c.tags.Entry(set, way).Class); state != Stable0 || c.dirty[id] {
		got, _, _, hit := c.ecc.lookup(set, id)
		if !hit {
			panic(fmt.Sprintf("killi: write-back %v line without ECC entry", state))
		}
		entry = got
	}
	return c.verifyWith(set, way, id, data, entry)
}

// verifyWith is verify with an explicit metadata entry, so departing lines
// whose ECC slot was already reassigned can still be checked against a
// copy of the dying entry. entry may be nil only for clean Stable0 lines.
func (c *WriteBackCache) verifyWith(set, way, id int, data *bitvec.Line, entry *eccEntry) (clean bool, err error) {
	fail := func() (bool, error) {
		c.setWBDFH(set, way, Disabled)
		c.ecc.invalidate(set, id)
		if c.dirty[id] {
			c.ctr.Inc("wb.data_loss")
			return false, fmt.Errorf("%w: set %d way %d", ErrDataLoss, set, way)
		}
		return false, nil
	}
	switch DFH(c.tags.Entry(set, way).Class) {
	case Initial:
		stored16 := uint64(c.parity4[id]) | uint64(entry.parity12)<<4
		_, segMis := c.p16.Check(*data, stored16)
		syn, gErr := c.secded.SyndromeLine(*data, entry.check)
		switch {
		case segMis == 0 && syn == 0 && !gErr:
			if c.cfg.InvertedTraining {
				switch faults := invertedFaultCount(c.data, id, *data); {
				case faults >= 2:
					// ≥2 stuck cells hide behind data that passed parity
					// and SECDED. Usually every fault is masked (data
					// fine), but a zero-syndrome aliasing pattern is also
					// possible, so a clean line is refetched rather than
					// trusted. A dirty line has no other copy; it is
					// saved and delivered (the documented residual risk).
					c.setWBDFH(set, way, Disabled)
					c.ecc.invalidate(set, id)
					c.ctr.Inc("wb.inverted_unmasked_multi")
					if c.dirty[id] {
						e := c.tags.Entry(set, way)
						c.backing[c.lineAddr(set, e.Tag)] = *data
						c.dirty[id] = false
						c.ctr.Inc("wb.writebacks")
						return true, nil
					}
					return false, nil
				case faults == 1:
					c.setWBDFH(set, way, Stable1)
					c.parity4[id] = uint8(parity.Fold(stored16))
					c.protect(set, way, id, *data)
					c.ctr.Inc("wb.inverted_unmasked_single")
					return true, nil
				}
			}
			c.setWBDFH(set, way, Stable0)
			c.parity4[id] = uint8(parity.Fold(stored16))
			if c.dirty[id] {
				// Keep SECDED for the dirty data.
				entry.check = c.secded.EncodeLine(*data)
			} else {
				c.ecc.invalidate(set, id)
			}
			return true, nil
		case segMis == 1 && syn != 0 && gErr:
			res := c.secded.DecodeLine(data, entry.check)
			if res.Status != secded.CorrectedData && res.Status != secded.CorrectedCheck {
				return fail()
			}
			if _, bad := c.p16.Check(*data, stored16); bad != 0 {
				return fail()
			}
			if c.cfg.InvertedTraining {
				if faults := invertedFaultCount(c.data, id, *data); faults >= 2 {
					// More stuck cells hide behind the corrected data:
					// retire the line; refetch if clean, save-and-deliver
					// if dirty.
					c.setWBDFH(set, way, Disabled)
					c.ecc.invalidate(set, id)
					c.ctr.Inc("wb.inverted_unmasked_multi")
					if c.dirty[id] {
						e := c.tags.Entry(set, way)
						c.backing[c.lineAddr(set, e.Tag)] = *data
						c.dirty[id] = false
						c.ctr.Inc("wb.writebacks")
						return true, nil
					}
					return false, nil
				}
			}
			c.ctr.Inc("wb.corrected_reads")
			c.setWBDFH(set, way, Stable1)
			c.parity4[id] = uint8(parity.Fold(stored16))
			if c.dirty[id] {
				ck := c.dected.Encode(lineVector(*data))
				entry.dected = ck.Bits
				entry.dectedGlobal = ck.Global
				c.useDEC[id] = true
			}
			return true, nil
		default:
			return fail()
		}
	case Stable0:
		if c.dirty[id] {
			res := c.secded.DecodeLine(data, entry.check)
			switch res.Status {
			case secded.OK:
				return true, nil
			case secded.CorrectedData, secded.CorrectedCheck:
				// Guard against ≥3-error aliases: corrected data must
				// agree with the stored 4-bit parity.
				if _, bad := c.p4.Check(*data, uint64(c.parity4[id])); bad != 0 {
					return fail()
				}
				c.ctr.Inc("wb.corrected_reads")
				return true, nil
			default:
				return fail()
			}
		}
		if _, mism := c.p4.Check(*data, uint64(c.parity4[id])); mism != 0 {
			c.setWBDFH(set, way, Initial)
			c.tags.Invalidate(set, way)
			return false, nil
		}
		return true, nil
	case Stable1:
		if c.useDEC[id] {
			vec := lineVector(*data)
			res := c.dected.Decode(vec, bch.Check{Bits: entry.dected, Global: entry.dectedGlobal})
			switch res.Status {
			case bch.OK:
				return true, nil
			case bch.Corrected:
				for _, b := range res.DataBitsFlipped {
					data.FlipBit(b)
				}
				c.ctr.Inc("wb.corrected_reads")
				return true, nil
			default:
				return fail()
			}
		}
		syn, gErr := c.secded.SyndromeLine(*data, entry.check)
		if syn == 0 && !gErr {
			return true, nil
		}
		if syn != 0 && gErr {
			res := c.secded.DecodeLine(data, entry.check)
			if res.Status == secded.CorrectedData || res.Status == secded.CorrectedCheck {
				if _, bad := c.p4.Check(*data, uint64(c.parity4[id])); bad != 0 {
					return fail()
				}
				c.ctr.Inc("wb.corrected_reads")
				return true, nil
			}
		}
		return fail()
	default:
		panic("killi: verify on disabled line")
	}
}

// setWBDFH mirrors setDFH for the write-back variant.
func (c *WriteBackCache) setWBDFH(set, way int, next DFH) {
	e := c.tags.Entry(set, way)
	prev := DFH(e.Class)
	if prev != next {
		c.ctr.Inc(fmt.Sprintf("wb.dfh_%s_to_%s", prev, next))
	}
	e.Class = int(next)
	if next == Disabled {
		e.Disabled = true
		e.Valid = false
		c.ctr.Inc("wb.lines_disabled")
	}
}
