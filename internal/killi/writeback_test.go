package killi

import (
	"errors"
	"testing"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/xrand"
)

// newWB builds a write-back cache whose line i carries faults[i].
func newWB(t *testing.T, sets, ways int, faults [][]faultmodel.Fault, v float64) *WriteBackCache {
	t.Helper()
	lines := sets * ways
	for len(faults) < lines {
		faults = append(faults, nil)
	}
	fm := faultmodel.NewMapExplicit(faultmodel.Default(), bitvec.LineBits, 1.0, faults)
	return NewWriteBack(WriteBackConfig{Sets: sets, Ways: ways, Ratio: 1}, fm, v)
}

func TestWriteBackBasicRoundTrip(t *testing.T) {
	c := newWB(t, 8, 2, nil, 0.625)
	r := xrand.New(1)
	want := map[uint64]bitvec.Line{}
	for i := 0; i < 100; i++ {
		addr := uint64(i) * 64
		l := randomLine(r)
		want[addr] = l
		if err := c.Write(addr, l); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for addr, l := range want {
		got, err := c.Read(addr)
		if err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if got != l {
			t.Fatalf("read %#x: wrong data", addr)
		}
	}
}

func TestWriteBackFlushPersists(t *testing.T) {
	c := newWB(t, 4, 2, nil, 0.625)
	r := xrand.New(2)
	l := randomLine(r)
	if err := c.Write(640, l); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if c.Stats().Get("wb.writebacks") == 0 {
		t.Fatal("no writebacks recorded")
	}
	if c.backing[10] != l {
		t.Fatal("backing store missing flushed data")
	}
}

func TestWriteBackSingleFaultDirtyLineSurvives(t *testing.T) {
	// Dirty data on a 1-fault line gets DECTED: the LV fault corrupts the
	// stored copy, and the read must still return the written value.
	faults := [][]faultmodel.Fault{{stuck(77, 1)}}
	c := newWB(t, 4, 1, faults, 0.625)
	r := xrand.New(3)

	// Train the line first with a read-path install whose data unmasks
	// the fault.
	seed := randomLine(r)
	seed.SetBit(77, 0)
	c.backing[0] = seed
	if _, err := c.Read(0); err != nil { // install (miss)
		t.Fatal(err)
	}
	if _, err := c.Read(0); err != nil { // hit → classify
		t.Fatal(err)
	}
	if c.DFHOf(0, 0) != Stable1 {
		t.Fatalf("DFH = %v, want b'10", c.DFHOf(0, 0))
	}

	// Now dirty the line; §5.6.1 upgrades it to DECTED.
	dirtyData := randomLine(r)
	dirtyData.SetBit(77, 0) // fault unmasked under the new data too
	if err := c.Write(0, dirtyData); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(0)
	if err != nil {
		t.Fatalf("read of dirty 1-fault line: %v", err)
	}
	if got != dirtyData {
		t.Fatal("dirty data corrupted")
	}
	if c.Stats().Get("wb.corrected_reads") == 0 {
		t.Fatal("no corrections recorded")
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if c.backing[0] != dirtyData {
		t.Fatal("flushed data wrong")
	}
}

func TestWriteBackDirtyDataLossSurfaces(t *testing.T) {
	// A dirty line accumulating more errors than its protection corrects
	// must report ErrDataLoss, not silent corruption. Use a clean-trained
	// Stable0 line (SECDED when dirty) and hit it with two soft errors.
	c := newWB(t, 4, 1, nil, 0.625)
	r := xrand.New(4)
	data := randomLine(r)
	c.backing[0] = data
	if _, err := c.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(0); err != nil { // classify b'00
		t.Fatal(err)
	}
	if err := c.Write(0, data); err != nil { // dirty, SECDED protected
		t.Fatal(err)
	}
	id := c.tags.LineID(0, 0)
	c.data.InjectSoftError(id, 5)
	c.data.InjectSoftError(id, 300)
	_, err := c.Read(0)
	if !errors.Is(err, ErrDataLoss) {
		t.Fatalf("err = %v, want ErrDataLoss", err)
	}
	if c.Stats().Get("wb.data_loss") == 0 {
		t.Fatal("data loss not counted")
	}
}

func TestWriteBackCleanLineRefetches(t *testing.T) {
	// The same double-error on a CLEAN line is transparently refetched.
	c := newWB(t, 4, 1, nil, 0.625)
	r := xrand.New(5)
	data := randomLine(r)
	c.backing[0] = data
	if _, err := c.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(0); err != nil { // classify b'00 (clean, parity only)
		t.Fatal(err)
	}
	id := c.tags.LineID(0, 0)
	c.data.InjectSoftError(id, 5)
	c.data.InjectSoftError(id, 6) // two different 128-bit fold segments
	got, err := c.Read(0)
	if err != nil {
		t.Fatalf("clean-line error: %v", err)
	}
	if got != data {
		t.Fatal("refetched data wrong")
	}
}

func TestWriteBackDirtyVictimWrittenBackOnEviction(t *testing.T) {
	// Fill a 1-way set twice: the dirty first line must land in backing.
	c := newWB(t, 2, 1, nil, 0.625)
	r := xrand.New(6)
	l1 := randomLine(r)
	if err := c.Write(0, l1); err != nil { // set 0
		t.Fatal(err)
	}
	l2 := randomLine(r)
	if err := c.Write(2*64, l2); err != nil { // same set, different tag
		t.Fatal(err)
	}
	if c.backing[0] != l1 {
		t.Fatal("dirty victim not written back")
	}
	got, err := c.Read(2 * 64)
	if err != nil || got != l2 {
		t.Fatal("resident line wrong after eviction")
	}
}

func TestWriteBackStable0DirtyGetsSECDED(t *testing.T) {
	// After classification, a dirty store on a b'00 line must allocate an
	// ECC entry (on-demand SECDED) and survive a single soft error.
	c := newWB(t, 4, 1, nil, 0.625)
	r := xrand.New(7)
	data := randomLine(r)
	c.backing[0] = data
	c.Read(0)
	c.Read(0) // b'00
	if c.DFHOf(0, 0) != Stable0 {
		t.Fatal("classification failed")
	}
	if err := c.Write(0, data); err != nil {
		t.Fatal(err)
	}
	if c.ecc.occupancy() != 1 {
		t.Fatalf("ECC occupancy = %d; dirty b'00 line must hold SECDED", c.ecc.occupancy())
	}
	id := c.tags.LineID(0, 0)
	c.data.InjectSoftError(id, 111)
	got, err := c.Read(0)
	if err != nil || got != data {
		t.Fatalf("dirty b'00 line not corrected: %v", err)
	}
}

func TestWriteBackTwoFaultLineDisabled(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(0, 1), stuck(1, 1)}}
	c := newWB(t, 2, 1, faults, 0.625)
	var data bitvec.Line
	c.backing[0] = data
	c.Read(0)
	if _, err := c.Read(0); err != nil {
		t.Fatalf("clean-line classification read must refetch, got %v", err)
	}
	if c.DFHOf(0, 0) != Disabled {
		t.Fatalf("DFH = %v, want b'11", c.DFHOf(0, 0))
	}
}

func TestWriteBackECCContentionForcesWriteback(t *testing.T) {
	// A 4-entry ECC cache with many dirty Stable0 lines: allocating the
	// 5th protection entry must write the victim back (it cannot stay
	// dirty without checkbits).
	lines := 16
	fm := faultmodel.NewMapExplicit(faultmodel.Default(), bitvec.LineBits, 1.0, make([][]faultmodel.Fault, lines))
	c := NewWriteBack(WriteBackConfig{Sets: 16, Ways: 1, Ratio: 4, Assoc: 4}, fm, 0.625)
	r := xrand.New(8)
	for set := 0; set < 6; set++ {
		addr := uint64(set) * 64
		data := randomLine(r)
		c.backing[addr/64] = data
		c.Read(addr)
		c.Read(addr) // classify b'00
		if err := c.Write(addr, data); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Get("wb.ecc_contention_evictions") == 0 {
		t.Fatal("no ECC contention with 6 dirty lines and 4 entries")
	}
	if c.Stats().Get("wb.writebacks") == 0 {
		t.Fatal("contention victim not written back")
	}
	// No data may be lost: flush and verify all six lines via backing.
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestWriteBackInvertedTrainingNoSilentCorruption(t *testing.T) {
	// End-to-end §5.6.1+§5.6.2: at an aggressive voltage, every read of a
	// written line either returns exactly the written data or an explicit
	// error — never silent corruption — when inverted training is on.
	const sets, ways = 128, 4
	fm := faultmodel.NewMap(xrand.New(21), faultmodel.Default(),
		sets*ways, bitvec.LineBits, 0.575, 1.0)
	c := NewWriteBack(WriteBackConfig{
		Sets: sets, Ways: ways, Ratio: 8, InvertedTraining: true,
	}, fm, 0.575)

	r := xrand.New(22)
	written := map[uint64]bitvec.Line{}
	for i := 0; i < 3000; i++ {
		addr := uint64(r.Intn(1024)) * 64
		if r.Intn(3) == 0 || written[addr] == (bitvec.Line{}) {
			l := randomLine(r)
			if err := c.Write(addr, l); err != nil {
				t.Fatalf("write: %v", err)
			}
			written[addr] = l
			continue
		}
		got, err := c.Read(addr)
		if err != nil {
			continue // explicit data loss is allowed, silence is not
		}
		if got != written[addr] {
			t.Fatalf("silent corruption at %#x after %d ops", addr, i)
		}
	}
	if err := c.Flush(); err == nil {
		// Verify everything through the backing store after a clean flush.
		for addr, want := range written {
			got, err := c.Read(addr)
			if err != nil {
				continue
			}
			if got != want {
				t.Fatalf("silent corruption at %#x after flush", addr)
			}
		}
	}
}
