package killi

import (
	"testing"

	"killi/internal/faultmodel"
	"killi/internal/obs"
	"killi/internal/protection"
	"killi/internal/xrand"
)

// TestObsStateConstantsMatch pins the obs package's duplicated DFH state
// indices to this package's encoding. obs cannot import killi (killi
// reports through protection.Host, whose package imports obs), so the
// values are duplicated there — this cross-package test is what keeps them
// from drifting.
func TestObsStateConstantsMatch(t *testing.T) {
	if int(Stable0) != obs.StateStable0 || int(Initial) != obs.StateInitial ||
		int(Stable1) != obs.StateStable1 || int(Disabled) != obs.StateDisabled {
		t.Fatalf("obs state indices diverged from killi DFH encoding: killi %d/%d/%d/%d, obs %d/%d/%d/%d",
			Stable0, Initial, Stable1, Disabled,
			obs.StateStable0, obs.StateInitial, obs.StateStable1, obs.StateDisabled)
	}
	if obs.NumStates != int(Disabled)+1 {
		t.Fatalf("obs.NumStates = %d, want %d", obs.NumStates, int(Disabled)+1)
	}
}

// TestSchemeEmitsObservations drives a scheme with a Collector attached and
// checks that Reset and every DFH transition are reported with the right
// cycle, line, and states.
func TestSchemeEmitsObservations(t *testing.T) {
	h := newHost(t, 4, 4, nil, 0.625)
	col := obs.NewCollector()
	h.obs = col
	h.cycle = 100
	k := attach(h, Config{Ratio: 1}, 0.625)

	if len(col.Resets()) != 1 {
		t.Fatalf("recorded %d resets, want 1", len(col.Resets()))
	}
	if r := col.Resets()[0]; r.Cycle != 100 || r.Voltage != 0.625 || r.Lines != 16 {
		t.Fatalf("reset %+v, want cycle 100, voltage 0.625, 16 lines", r)
	}
	if p := col.Populations(); p[obs.StateInitial] != 16 {
		t.Fatalf("post-reset populations %v, want all 16 Initial", p)
	}

	// A clean read classifies (0,0) Initial→Stable0 and must emit exactly
	// that transition at the host's current cycle.
	data := randomLine(xrand.New(1))
	fill(h, k, 0, 0, data)
	h.cycle = 250
	got := h.data.Read(h.tags.LineID(0, 0))
	if v := k.OnReadHit(0, 0, &got); v != protection.Deliver {
		t.Fatalf("clean read verdict %v", v)
	}
	trs := col.Transitions()
	if len(trs) != 1 {
		t.Fatalf("recorded %d transitions, want 1", len(trs))
	}
	tr := trs[0]
	if tr.Cycle != 250 || tr.Line != h.tags.LineID(0, 0) ||
		tr.From != uint8(Initial) || tr.To != uint8(Stable0) {
		t.Fatalf("transition %+v, want cycle 250, line %d, initial→stable0", tr, h.tags.LineID(0, 0))
	}
	if p := col.Populations(); p[obs.StateStable0] != 1 || p[obs.StateInitial] != 15 {
		t.Fatalf("populations %v after classification", p)
	}

	// A second Reset (voltage transition) re-emits and rebuilds the vector.
	h.cycle = 400
	k.Reset(0.55)
	if len(col.Resets()) != 2 || col.Resets()[1].Cycle != 400 || col.Resets()[1].Voltage != 0.55 {
		t.Fatalf("second reset not recorded: %+v", col.Resets())
	}
	if p := col.Populations(); p[obs.StateInitial] != 16 {
		t.Fatalf("populations %v after second reset, want all Initial", p)
	}
}

// TestSchemeObserverDisabledPath pins the disable path: two faults drive a
// line through initial→disabled (via the §4.2 combined-signal rules), and
// the observer sees every hop end at StateDisabled.
func TestSchemeObserverDisabledPath(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(100, 1), stuck(300, 1)}}
	h := newHost(t, 4, 4, faults, 0.625)
	col := obs.NewCollector()
	h.obs = col
	k := attach(h, Config{Ratio: 1}, 0.625)
	data := randomLine(xrand.New(3))
	fill(h, k, 0, 0, data)
	var got = h.data.Read(h.tags.LineID(0, 0))
	k.OnReadHit(0, 0, &got)
	if k.DFHOf(0, 0) != Disabled {
		t.Skipf("2-fault line ended %v, not Disabled (masking); transitions=%d",
			k.DFHOf(0, 0), len(col.Transitions()))
	}
	if p := col.Populations(); p[obs.StateDisabled] != 1 {
		t.Fatalf("populations %v, want one Disabled", p)
	}
	last := col.Transitions()[len(col.Transitions())-1]
	if last.To != uint8(Disabled) {
		t.Fatalf("last transition %+v does not end Disabled", last)
	}
}
