// Package asciiplot renders multi-series line charts as plain text, so the
// figure-regeneration tools can draw the paper's curves directly in a
// terminal (no plotting dependencies — the module is offline and
// stdlib-only).
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one curve: Y values aligned with the shared X axis, drawn with
// Marker.
type Series struct {
	Name   string
	Y      []float64
	Marker byte
}

// Options controls the rendering.
type Options struct {
	// Width and Height are the plot area size in characters (defaults
	// 64×16).
	Width, Height int
	// LogY plots log10(y); non-positive values are clamped to YMin.
	LogY bool
	// YMin/YMax fix the vertical range; when both are zero the range is
	// derived from the data.
	YMin, YMax float64
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// Render draws the series over the shared xs axis. Series shorter than xs
// are drawn for the points they have. The result ends with a newline.
func Render(title string, xs []float64, series []Series, opts Options) string {
	opts = opts.withDefaults()
	tr := newTransform(series, opts)

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		n := len(s.Y)
		if n > len(xs) {
			n = len(xs)
		}
		for i := 0; i < n; i++ {
			col := 0
			if len(xs) > 1 {
				col = int(math.Round(float64(i) / float64(len(xs)-1) * float64(opts.Width-1)))
			}
			row := tr.row(s.Y[i], opts.Height)
			if row >= 0 && row < opts.Height && col >= 0 && col < opts.Width {
				grid[row][col] = marker
			}
		}
	}

	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for r := 0; r < opts.Height; r++ {
		label := ""
		switch r {
		case 0:
			label = tr.label(tr.max)
		case opts.Height - 1:
			label = tr.label(tr.min)
		}
		fmt.Fprintf(&sb, "%10s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%10s +%s+\n", "", strings.Repeat("-", opts.Width))
	if len(xs) > 0 {
		fmt.Fprintf(&sb, "%10s  %-*.4g%*.4g\n", "x:", opts.Width/2, xs[0], opts.Width-opts.Width/2, xs[len(xs)-1])
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&sb, "%10s  %c %s\n", "", marker, s.Name)
	}
	return sb.String()
}

// transform maps data values to rows.
type transform struct {
	min, max float64
	logY     bool
}

func newTransform(series []Series, opts Options) transform {
	tr := transform{logY: opts.LogY}
	if opts.YMin != 0 || opts.YMax != 0 {
		tr.min, tr.max = opts.YMin, opts.YMax
	} else {
		tr.min, tr.max = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, y := range s.Y {
				if opts.LogY && y <= 0 {
					continue
				}
				tr.min = math.Min(tr.min, y)
				tr.max = math.Max(tr.max, y)
			}
		}
		if math.IsInf(tr.min, 1) {
			tr.min, tr.max = 0, 1
		}
	}
	if tr.min == tr.max {
		tr.max = tr.min + 1
	}
	return tr
}

// scale maps a value to [0, 1] bottom-to-top.
func (t transform) scale(y float64) float64 {
	lo, hi, v := t.min, t.max, y
	if t.logY {
		clamp := func(x float64) float64 {
			if x <= 0 {
				return t.min
			}
			return x
		}
		lo, hi, v = math.Log10(clamp(lo)), math.Log10(clamp(hi)), math.Log10(clamp(y))
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return f
}

// row converts a value to a grid row (row 0 is the top).
func (t transform) row(y float64, height int) int {
	return int(math.Round((1 - t.scale(y)) * float64(height-1)))
}

// label formats an axis endpoint.
func (t transform) label(v float64) string {
	if t.logY || math.Abs(v) < 1e-3 && v != 0 {
		return fmt.Sprintf("%.1e", v)
	}
	return fmt.Sprintf("%.4g", v)
}
