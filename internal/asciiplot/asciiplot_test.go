package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	out := Render("demo", xs, []Series{
		{Name: "up", Y: []float64{0, 1, 2, 3}, Marker: 'u'},
		{Name: "down", Y: []float64{3, 2, 1, 0}, Marker: 'd'},
	}, Options{Width: 20, Height: 8})
	if !strings.HasPrefix(out, "demo\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "u up") || !strings.Contains(out, "d down") {
		t.Fatal("legend missing")
	}
	lines := strings.Split(out, "\n")
	// Title + 8 rows + axis + x labels + 2 legend + trailing empty.
	if len(lines) != 1+8+1+1+2+1 {
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	// The rising series must appear at top-right, the falling at top-left.
	top := lines[1]
	if !strings.Contains(top, "u") || !strings.Contains(top, "d") {
		t.Fatalf("top row missing extremes: %q", top)
	}
	if strings.Index(top, "d") > strings.Index(top, "u") {
		t.Fatal("orientation wrong: falling series should peak on the left")
	}
}

func TestRenderMonotonePlacement(t *testing.T) {
	xs := make([]float64, 10)
	ys := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i)
	}
	out := Render("", xs, []Series{{Name: "lin", Y: ys}}, Options{Width: 30, Height: 10})
	rows := strings.Split(out, "\n")
	// Column position of the marker must increase as row index increases
	// top-to-bottom inverted (monotone line).
	prevCol := 1 << 30
	for _, row := range rows[:10] {
		idx := strings.IndexByte(row, '*')
		if idx < 0 {
			continue
		}
		if idx > prevCol {
			t.Fatalf("line not monotone in render:\n%s", out)
		}
		prevCol = idx
	}
}

func TestRenderLogScale(t *testing.T) {
	xs := []float64{0, 1, 2}
	out := Render("log", xs, []Series{{Name: "p", Y: []float64{1e-8, 1e-4, 1e-1}}},
		Options{Width: 20, Height: 10, LogY: true})
	if !strings.Contains(out, "1.0e-08") {
		t.Fatalf("log axis label missing:\n%s", out)
	}
	// With log scaling the three points must occupy distinct rows
	// (count plot rows only; the legend also shows the marker).
	marks := 0
	for _, row := range strings.Split(out, "\n")[1:11] {
		if strings.Contains(row, "*") {
			marks++
		}
	}
	if marks != 3 {
		t.Fatalf("%d marked rows, want 3 (log spread)", marks)
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	out := Render("", nil, nil, Options{})
	if out == "" {
		t.Fatal("empty render produced nothing")
	}
	// Constant series must not divide by zero.
	out = Render("", []float64{0, 1}, []Series{{Name: "c", Y: []float64{5, 5}}}, Options{})
	if !strings.Contains(out, "c") {
		t.Fatal("constant series broke rendering")
	}
	// Non-positive values with LogY are clamped, not crashed.
	_ = Render("", []float64{0, 1}, []Series{{Name: "z", Y: []float64{0, 10}}}, Options{LogY: true})
}

func TestFixedRangeClamping(t *testing.T) {
	xs := []float64{0, 1}
	out := Render("", xs, []Series{{Name: "s", Y: []float64{-5, 50}}},
		Options{Width: 10, Height: 5, YMin: 0, YMax: 10})
	rows := strings.Split(out, "\n")
	if !strings.Contains(rows[0], "10") {
		t.Fatalf("fixed max label missing: %q", rows[0])
	}
	// Both out-of-range points are clamped into the grid (present);
	// count only the 5 plot rows (the legend also shows the marker).
	marks := 0
	for _, r := range rows[:5] {
		marks += strings.Count(r, "*")
	}
	if marks != 2 {
		t.Fatalf("marks=%d, want 2 (clamped)", marks)
	}
}
