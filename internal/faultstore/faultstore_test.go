package faultstore

import (
	"testing"

	"killi/internal/bitvec"
	"killi/internal/faultmodel"
	"killi/internal/xrand"
)

func buildTestStore(t *testing.T, lines int) (*Store, *faultmodel.Map) {
	t.Helper()
	fm := faultmodel.NewMap(xrand.New(3), faultmodel.Default(), lines, bitvec.LineBits, 0.55, 1.0)
	return Build(fm, []float64{0.625, 0.6, 0.575}), fm
}

func TestBuildSortsVoltages(t *testing.T) {
	s, _ := buildTestStore(t, 100)
	vs := s.Voltages()
	if len(vs) != 3 || vs[0] != 0.575 || vs[2] != 0.625 {
		t.Fatalf("voltages %v", vs)
	}
}

func TestAtSelectsSafeRecord(t *testing.T) {
	s, _ := buildTestStore(t, 100)
	// Exact hit.
	rec, ok := s.At(0.6)
	if !ok || rec.Voltage != 0.6 {
		t.Fatalf("At(0.6) = %v, %v", rec.Voltage, ok)
	}
	// Between points: must pick the LOWER (superset, safe) record.
	rec, ok = s.At(0.61)
	if !ok || rec.Voltage != 0.6 {
		t.Fatalf("At(0.61) = %v, want 0.6", rec.Voltage)
	}
	// Above every point: highest record still safe.
	rec, ok = s.At(0.9)
	if !ok || rec.Voltage != 0.625 {
		t.Fatalf("At(0.9) = %v", rec.Voltage)
	}
	// Below every characterized point: not covered.
	if _, ok := s.At(0.5); ok {
		t.Fatal("At(0.5) claimed coverage below the characterized range")
	}
}

func TestRecordsMatchFaultMap(t *testing.T) {
	s, fm := buildTestStore(t, 500)
	rec, _ := s.At(0.575)
	for line := 0; line < 500; line++ {
		want := fm.ActiveFaults(line, 0.575)
		got := rec.PerLine[line]
		if len(got) != len(want) {
			t.Fatalf("line %d: %d faults stored, %d active", line, len(got), len(want))
		}
		for i := range want {
			if got[i].Bit != want[i].Bit || got[i].StuckAt != want[i].StuckAt {
				t.Fatalf("line %d fault %d mismatch", line, i)
			}
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s, _ := buildTestStore(t, 300)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Store
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(back.records) != len(s.records) {
		t.Fatal("record count changed")
	}
	for i := range s.records {
		if back.records[i].Voltage != s.records[i].Voltage {
			t.Fatal("voltage changed")
		}
		for l := range s.records[i].PerLine {
			a, b := s.records[i].PerLine[l], back.records[i].PerLine[l]
			if len(a) != len(b) {
				t.Fatalf("record %d line %d fault count changed", i, l)
			}
			for fi := range a {
				if a[fi].Bit != b[fi].Bit || a[fi].StuckAt != b[fi].StuckAt {
					t.Fatal("fault changed in round trip")
				}
			}
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var s Store
	if err := s.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Fatal("short garbage accepted")
	}
	if err := s.UnmarshalBinary(make([]byte, 64)); err == nil {
		t.Fatal("zero garbage accepted")
	}
	// Corrupt the version of a valid blob.
	good, _ := buildTestStore(t, 10)
	data, _ := good.MarshalBinary()
	data[4] = 0xff
	if err := s.UnmarshalBinary(data); err == nil {
		t.Fatal("bad version accepted")
	}
	// Truncated payload.
	data, _ = good.MarshalBinary()
	if err := s.UnmarshalBinary(data[:len(data)-3]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestFootprintScalesWithFaultPopulation(t *testing.T) {
	fm := faultmodel.NewMap(xrand.New(4), faultmodel.Default(), 2048, bitvec.LineBits, 0.55, 1.0)
	small := Build(fm, []float64{0.65}) // few faults active
	large := Build(fm, []float64{0.55}) // many faults active
	if small.FootprintBytes() >= large.FootprintBytes() {
		t.Fatalf("footprint not monotone: %d vs %d", small.FootprintBytes(), large.FootprintBytes())
	}
	// Baseline skeleton: ≥ 2 bytes per line per record.
	if small.FootprintBytes() < 2048*2 {
		t.Fatalf("footprint %d implausibly small", small.FootprintBytes())
	}
}

func TestPaperScaleFootprintVsKilli(t *testing.T) {
	// The §1 cost argument quantified: covering five LV operating points
	// for the 2 MB L2 costs hundreds of kilobytes of stored fault map —
	// an order of magnitude beyond Killi's ~25-34 KB of on-chip state.
	fm := faultmodel.NewMap(xrand.New(5), faultmodel.Default(), 32768, bitvec.LineBits, 0.55, 1.0)
	s := Build(fm, []float64{0.675, 0.65, 0.625, 0.6, 0.575})
	fp := s.FootprintBytes()
	if fp < 300<<10 {
		t.Fatalf("five-point fault map footprint = %d bytes; expected several hundred KB", fp)
	}
	// Reloading it at a transition is not free either.
	if LoadStallCycles(fp, 16) == 0 {
		t.Fatal("reload stall collapsed to zero")
	}
}

func TestLoadStallCycles(t *testing.T) {
	if LoadStallCycles(1024, 16) != 64 {
		t.Fatal("stall math wrong")
	}
	if LoadStallCycles(1, 16) != 1 {
		t.Fatal("ceil missing")
	}
	if LoadStallCycles(100, 0) != 0 {
		t.Fatal("zero bandwidth should yield 0")
	}
}

func TestEmptyStore(t *testing.T) {
	var s Store
	if _, ok := s.At(0.6); ok {
		t.Fatal("empty store claimed coverage")
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Store
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(back.Voltages()) != 0 {
		t.Fatal("empty round trip gained records")
	}
}
