// Package faultstore implements the alternative the paper dismisses in §1:
// "per-voltage fault population could be maintained in memory, but that
// solution is costly and complex."
//
// To make that cost concrete, the package builds, serializes, and reloads
// per-voltage fault maps for an SRAM array — exactly what a
// pre-characterized scheme would have to persist across power states to
// avoid re-running MBIST. The measured artifacts are:
//
//   - the DRAM/flash footprint (FootprintBytes), which must cover every
//     supported voltage/frequency operating point and be rebuilt whenever
//     aging shifts the fault population;
//   - the reload stall (LoadStallCycles) charged at every power-state
//     transition, in place of the MBIST pass;
//   - the code itself, which is the "complex" part: versioned binary
//     formats, integrity checks, and per-operating-point indexing, all of
//     which Killi's two DFH bits per line replace.
package faultstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"killi/internal/faultmodel"
)

// magic and version identify the serialized format.
const (
	magic   uint32 = 0x4b494c46 // "KILF"
	version uint16 = 1
)

// Record is one operating point's fault population.
type Record struct {
	// Voltage is the normalized operating voltage this record covers.
	Voltage float64
	// PerLine lists each line's active faults (may be empty).
	PerLine [][]faultmodel.Fault
}

// Store is a multi-voltage fault map, ordered by ascending voltage.
// The zero value is an empty store.
type Store struct {
	records []Record
}

// Build characterizes the array at each voltage (ascending order enforced)
// — the offline work MBIST would perform once per operating point.
func Build(fm *faultmodel.Map, voltages []float64) *Store {
	vs := append([]float64(nil), voltages...)
	sort.Float64s(vs)
	s := &Store{}
	for _, v := range vs {
		rec := Record{Voltage: v, PerLine: make([][]faultmodel.Fault, fm.Lines())}
		for line := 0; line < fm.Lines(); line++ {
			rec.PerLine[line] = fm.ActiveFaults(line, v)
		}
		s.records = append(s.records, rec)
	}
	return s
}

// Voltages returns the operating points the store covers.
func (s *Store) Voltages() []float64 {
	out := make([]float64, len(s.records))
	for i, r := range s.records {
		out[i] = r.Voltage
	}
	return out
}

// At returns the fault record covering a requested voltage: the highest
// characterized point that is ≤ v would UNDER-protect (fewer faults than
// reality at lower v), so the store returns the nearest characterized
// point at or BELOW v — a superset of the actual faults, which is safe.
// ok is false if v is below every characterized point.
func (s *Store) At(v float64) (Record, bool) {
	idx := -1
	for i, r := range s.records {
		if r.Voltage <= v {
			idx = i
		}
	}
	if idx < 0 {
		return Record{}, false
	}
	return s.records[idx], true
}

// MarshalBinary serializes the store:
//
//	u32 magic | u16 version | u16 #records
//	per record: f64 voltage | u32 #lines | per line: u16 #faults |
//	            per fault: u16 bit | u8 stuckAt
//
// Severities are not persisted: a record is already specialized to its
// voltage.
func (s *Store) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v interface{}) {
		_ = binary.Write(&buf, binary.LittleEndian, v)
	}
	w(magic)
	w(version)
	if len(s.records) > math.MaxUint16 {
		return nil, errors.New("faultstore: too many records")
	}
	w(uint16(len(s.records)))
	for _, rec := range s.records {
		w(rec.Voltage)
		w(uint32(len(rec.PerLine)))
		for _, faults := range rec.PerLine {
			if len(faults) > math.MaxUint16 {
				return nil, errors.New("faultstore: too many faults in one line")
			}
			w(uint16(len(faults)))
			for _, f := range faults {
				if f.Bit < 0 || f.Bit > math.MaxUint16 {
					return nil, fmt.Errorf("faultstore: fault bit %d out of range", f.Bit)
				}
				w(uint16(f.Bit))
				w(uint8(f.StuckAt & 1))
			}
		}
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary reloads a serialized store, validating the header.
func (s *Store) UnmarshalBinary(data []byte) error {
	buf := bytes.NewReader(data)
	rd := func(v interface{}) error {
		return binary.Read(buf, binary.LittleEndian, v)
	}
	var m uint32
	if err := rd(&m); err != nil || m != magic {
		return errors.New("faultstore: bad magic")
	}
	var ver uint16
	if err := rd(&ver); err != nil || ver != version {
		return fmt.Errorf("faultstore: unsupported version %d", ver)
	}
	var nRec uint16
	if err := rd(&nRec); err != nil {
		return err
	}
	s.records = make([]Record, nRec)
	for i := range s.records {
		if err := rd(&s.records[i].Voltage); err != nil {
			return err
		}
		var nLines uint32
		if err := rd(&nLines); err != nil {
			return err
		}
		s.records[i].PerLine = make([][]faultmodel.Fault, nLines)
		for l := range s.records[i].PerLine {
			var nf uint16
			if err := rd(&nf); err != nil {
				return err
			}
			if nf == 0 {
				continue
			}
			faults := make([]faultmodel.Fault, nf)
			for fi := range faults {
				var bit uint16
				var stuck uint8
				if err := rd(&bit); err != nil {
					return err
				}
				if err := rd(&stuck); err != nil {
					return err
				}
				faults[fi] = faultmodel.Fault{Bit: int(bit), StuckAt: uint(stuck)}
			}
			s.records[i].PerLine[l] = faults
		}
	}
	return nil
}

// FootprintBytes returns the serialized size — the memory a
// pre-characterized design must dedicate per chip to avoid MBIST reruns.
func (s *Store) FootprintBytes() int {
	b, err := s.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(b)
}

// LoadStallCycles converts a reload of the footprint into transition-stall
// cycles at the given memory bandwidth (bytes per cycle) — the fault-map
// alternative's answer to dvfs.MBISTModel.StallCycles.
func LoadStallCycles(footprintBytes int, bytesPerCycle float64) uint64 {
	if bytesPerCycle <= 0 {
		return 0
	}
	return uint64(math.Ceil(float64(footprintBytes) / bytesPerCycle))
}
