// Package simserver is the resident simulation service behind cmd/killi-simd:
// a job engine that accepts single-run, sweep, and fleet-campaign requests,
// dedupes identical
// in-flight requests (singleflight-style coalescing keyed on the simcache
// SHA-256 digest of the job's result-determining inputs), bounds concurrent
// work with a worker pool budgeted against GOMAXPROCS (shards × workers),
// applies backpressure when the queue is full, streams per-epoch obs samples
// to observe subscribers, and drains gracefully on shutdown.
//
// cmd/killi-sim submits its sweep through the same in-process API, so the
// CLI and the daemon share one validation, caching, cancellation, and
// metrics path; cmd/killi-simd puts the HTTP/JSON layer (Handler) in front
// of it. Results are bit-identical to direct experiments calls — the engine
// adds scheduling, never simulation semantics.
package simserver

import (
	"fmt"
	"strings"

	"killi/internal/campaign"
	"killi/internal/experiments"
	"killi/internal/faultmodel"
	"killi/internal/gpu"
	"killi/internal/simcache"
	"killi/internal/workload"
)

// Job kinds.
const (
	KindSweep    = "sweep"    // the Figure 4/5 workload × scheme grid
	KindRun      = "run"      // one workload × scheme simulation
	KindCampaign = "campaign" // a fleet Monte Carlo campaign (internal/campaign)
)

// JobRequest describes one job. The zero value of every optional field
// means "the default" (mirroring the experiments.Config conventions), and
// normalization makes the defaults explicit so identical jobs written
// differently — {} vs {"seed":1} — coalesce and cache identically.
//
// The GPU model is always the paper's Table 3 configuration; jobs
// parameterize the operating point, trace, and protection scheme around it.
type JobRequest struct {
	// Kind is KindSweep or KindRun.
	Kind string `json:"kind"`
	// Voltage is the LV operating point (default 0.625).
	Voltage float64 `json:"voltage,omitempty"`
	// RequestsPerCU is the trace length per compute unit (default 4000).
	RequestsPerCU int `json:"requests_per_cu,omitempty"`
	// Seed drives trace generation and fault sampling (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// WarmupKernels precede the measured kernel (default 0).
	WarmupKernels int `json:"warmup_kernels,omitempty"`
	// Shards is the per-simulation shard count (default: the server's).
	// Results are bit-identical at every value, so it does not participate
	// in the job key.
	Shards int `json:"shards,omitempty"`
	// Parallelism bounds a sweep's internal worker pool (default: the
	// server budget). Like Shards it never changes results, only wall-clock.
	Parallelism int `json:"parallelism,omitempty"`
	// Workloads restricts a sweep (default: the full ten-workload catalog).
	Workloads []string `json:"workloads,omitempty"`
	// Workload and Scheme select a run job's pair (Scheme uses the
	// experiments.SchemeSyntax grammar).
	Workload string `json:"workload,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	// EpochCycles sets the sampling epoch for observe streams (default
	// gpu.DefaultEpochCycles). Ignored for plain jobs.
	EpochCycles uint64 `json:"epoch_cycles,omitempty"`
	// Dies is a campaign job's Monte Carlo device-instance count (required
	// for campaigns, rejected elsewhere).
	Dies int `json:"dies,omitempty"`
	// Voltages is a campaign job's operating-point grid (default: the
	// paper's 0.575..0.700 grid). Campaigns sweep a grid, so they take this
	// instead of the scalar Voltage.
	Voltages []float64 `json:"voltages,omitempty"`
	// Schemes is a campaign job's protection-scheme list (default
	// {"killi-1:64", "msecc"}).
	Schemes []string `json:"schemes,omitempty"`
	// PassThreshold is a campaign job's yield criterion (default 1.10).
	PassThreshold float64 `json:"pass_threshold,omitempty"`
	// FaultClasses selects non-persistent fault populations by
	// faultmodel.ClassSyntax spec. Run and sweep jobs take at most one
	// (their single population); campaign jobs take a list (a campaign
	// axis). Absent, empty, and ["persistent"] all mean the paper's
	// persistent-only model and coalesce identically.
	FaultClasses []string `json:"fault_classes,omitempty"`
}

// campaignConfig translates a campaign request into the campaign.Config its
// execution uses; campaign.Config.Normalized is the single validation and
// defaulting path, so a job and a killi-fleet invocation with the same
// inputs mean the same campaign.
func (r JobRequest) campaignConfig() campaign.Config {
	return campaign.Config{
		Workloads:     r.Workloads,
		Schemes:       r.Schemes,
		FaultClasses:  r.FaultClasses,
		Voltages:      r.Voltages,
		Dies:          r.Dies,
		Seed:          r.Seed,
		RequestsPerCU: r.RequestsPerCU,
		WarmupKernels: r.WarmupKernels,
		Parallelism:   r.Parallelism,
		Shards:        r.Shards,
		PassThreshold: r.PassThreshold,
	}
}

// normalized returns the request with every default made explicit, or a
// one-line validation error. maxProcs parameterizes the oversubscription
// check exactly as experiments.ValidateFlags.
func (r JobRequest) normalized(defaultShards, maxProcs int) (JobRequest, error) {
	switch r.Kind {
	case KindSweep, KindRun:
	case KindCampaign:
		return r.normalizedCampaign(defaultShards, maxProcs)
	case "":
		return r, fmt.Errorf(`job kind is required ("%s", "%s", or "%s")`, KindSweep, KindRun, KindCampaign)
	default:
		return r, fmt.Errorf("unknown job kind %q (want %q, %q, or %q)", r.Kind, KindSweep, KindRun, KindCampaign)
	}
	if r.Dies != 0 || len(r.Voltages) != 0 || len(r.Schemes) != 0 || r.PassThreshold != 0 {
		return r, fmt.Errorf(`"dies"/"voltages"/"schemes"/"pass_threshold" are campaign fields`)
	}
	if r.Voltage == 0 {
		r.Voltage = 0.625
	}
	if r.Voltage < 0 || r.Voltage > 2 {
		return r, fmt.Errorf("voltage %.3f is outside the plausible (0, 2] x VDD range", r.Voltage)
	}
	if r.RequestsPerCU == 0 {
		r.RequestsPerCU = 4000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.WarmupKernels < 0 {
		return r, fmt.Errorf("warmup_kernels must be >= 0, got %d", r.WarmupKernels)
	}
	if r.Shards == 0 {
		r.Shards = defaultShards
	}
	if r.Parallelism == 0 {
		r.Parallelism = -1
	}
	if err := experiments.ValidateFlags(r.RequestsPerCU, r.Parallelism, r.Shards, maxProcs); err != nil {
		return r, err
	}
	if r.EpochCycles == 0 {
		r.EpochCycles = gpu.DefaultEpochCycles
	}
	if len(r.FaultClasses) > 1 {
		return r, fmt.Errorf(`a %s job takes at most one "fault_classes" spec (the list is a campaign axis)`, r.Kind)
	}
	if len(r.FaultClasses) == 1 {
		spec, err := faultmodel.ParseClassSpec(r.FaultClasses[0])
		if err != nil {
			return r, err
		}
		if spec.IsZero() {
			r.FaultClasses = nil // the default population; coalesce with absent
		} else {
			r.FaultClasses = []string{spec.String()}
		}
	}
	switch r.Kind {
	case KindRun:
		if len(r.Workloads) != 0 {
			return r, fmt.Errorf(`"workloads" is a sweep field; a run job takes "workload"`)
		}
		if r.Workload == "" || r.Scheme == "" {
			return r, fmt.Errorf(`a run job needs "workload" and "scheme"`)
		}
		if _, err := workload.ByName(r.Workload); err != nil {
			return r, err
		}
		if _, err := experiments.SchemeByName(r.Scheme); err != nil {
			return r, err
		}
	case KindSweep:
		if r.Workload != "" || r.Scheme != "" {
			return r, fmt.Errorf(`"workload"/"scheme" are run fields; a sweep job takes "workloads"`)
		}
		if len(r.Workloads) == 0 {
			for _, w := range workload.Catalog() {
				r.Workloads = append(r.Workloads, w.Name)
			}
		}
		for _, name := range r.Workloads {
			if _, err := workload.ByName(name); err != nil {
				return r, err
			}
		}
	}
	return r, nil
}

// normalizedCampaign is the campaign arm of normalized:
// campaign.Config.Normalized does the defaulting and validation, and its
// canonical values (sorted grid, explicit defaults) are copied back so
// identical campaigns written differently share one key. Campaign defaults
// deliberately differ from run/sweep where the statistics say they should —
// 2000 requests per CU, not 4000: a campaign buys power from die count, not
// trace length.
func (r JobRequest) normalizedCampaign(defaultShards, maxProcs int) (JobRequest, error) {
	if r.Workload != "" || r.Scheme != "" {
		return r, fmt.Errorf(`"workload"/"scheme" are run fields; a campaign takes "workloads" and "schemes"`)
	}
	if r.Voltage != 0 {
		return r, fmt.Errorf(`"voltage" is a run/sweep field; a campaign takes the "voltages" grid`)
	}
	if r.EpochCycles != 0 {
		return r, fmt.Errorf(`"epoch_cycles" is an observe field; campaigns stream progress, not epochs`)
	}
	if r.Shards == 0 {
		r.Shards = defaultShards
	}
	if r.Parallelism == 0 {
		r.Parallelism = -1
	}
	if err := experiments.ValidateFlags(max(r.RequestsPerCU, 1), r.Parallelism, r.Shards, maxProcs); err != nil {
		return r, err
	}
	cc, err := r.campaignConfig().Normalized()
	if err != nil {
		return r, err
	}
	r.Workloads, r.Schemes, r.Voltages = cc.Workloads, cc.Schemes, cc.Voltages
	r.FaultClasses = cc.FaultClasses
	r.Seed = cc.Seed
	r.RequestsPerCU = cc.RequestsPerCU
	r.WarmupKernels = cc.WarmupKernels
	r.PassThreshold = cc.PassThreshold
	return r, nil
}

// key is the job's content address: the simcache SHA-256 digest of its
// result-determining inputs. Shards and Parallelism are deliberately
// excluded — results are bit-identical at every value of either (pinned by
// the shard/parallelism invariance tests in internal/experiments and the
// campaign parallelism-invariance test), so jobs differing only in
// execution knobs coalesce into one simulation. v2 added the campaign
// fields (they hash as empty for run/sweep jobs); v3 added the fault-class
// list (empty = persistent-only, canonicalized by normalization so every
// spelling of the same mix shares a key).
func (r JobRequest) key() string {
	volts := make([]string, len(r.Voltages))
	for i, v := range r.Voltages {
		volts[i] = fmt.Sprintf("%.17g", v)
	}
	return simcache.Key(fmt.Sprintf(
		"simserver-job/v3\nkind=%s\nvoltage=%.17g\nrequests=%d\nseed=%d\nwarmup=%d\nworkloads=%s\nworkload=%s\nscheme=%s\ndies=%d\nvoltages=%s\nschemes=%s\nthreshold=%.17g\nclasses=%s",
		r.Kind, r.Voltage, r.RequestsPerCU, r.Seed, r.WarmupKernels,
		strings.Join(r.Workloads, ","), r.Workload, r.Scheme,
		r.Dies, strings.Join(volts, ","), strings.Join(r.Schemes, ","), r.PassThreshold,
		strings.Join(r.FaultClasses, ",")))
}

// config translates the normalized request into the experiments.Config its
// execution uses. CacheDir comes from the server, Progress is attached by
// the executor.
func (r JobRequest) config(cacheDir string) experiments.Config {
	cfg := experiments.Config{
		Voltage:       r.Voltage,
		RequestsPerCU: r.RequestsPerCU,
		Seed:          r.Seed,
		WarmupKernels: r.WarmupKernels,
		Parallelism:   r.Parallelism,
		Shards:        r.Shards,
		CacheDir:      cacheDir,
		Workloads:     r.Workloads,
	}
	if len(r.FaultClasses) == 1 {
		cfg.FaultClasses = r.FaultClasses[0]
	}
	return cfg
}

// RunResult is the scalar outcome of a run job.
type RunResult struct {
	Cycles        uint64  `json:"cycles"`
	Instructions  uint64  `json:"instructions"`
	L2Misses      uint64  `json:"l2_misses"`
	L2Accesses    uint64  `json:"l2_accesses"`
	MemAccesses   uint64  `json:"mem_accesses"`
	DisabledLines int     `json:"disabled_lines"`
	L2MPKI        float64 `json:"l2_mpki"`
}

// JobResult is a completed job as returned to every (possibly coalesced)
// submitter.
type JobResult struct {
	Kind string `json:"kind"`
	// Key is the job's content address, also usable as an ETag.
	Key string `json:"key"`
	// Rows carries a sweep's Figure 4/5 rows.
	Rows []experiments.Row `json:"rows,omitempty"`
	// Run carries a run job's result.
	Run *RunResult `json:"run,omitempty"`
	// Campaign carries a campaign job's aggregated result.
	Campaign *campaign.Result `json:"campaign,omitempty"`
	// Cached reports that a run job was served from the content-addressed
	// result cache without simulating (sweeps cache per-task; their flag
	// stays false even when every task hit).
	Cached bool `json:"cached"`
	// Coalesced reports that this submitter joined another submitter's
	// in-flight execution of the identical job.
	Coalesced bool `json:"coalesced"`
	// ElapsedSeconds is the executor's wall-clock for the job (coalesced
	// submitters see the leader's).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}
