package simserver

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"

	"killi/internal/campaign"
	"killi/internal/experiments"
	"killi/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs     submit a JobRequest, block for the JobResult (JSON).
//	                  429 + Retry-After when the queue is full, 400 on a
//	                  bad request, 503 while draining.
//	GET  /v1/jobs/{key}  re-fetch a completed job from the bounded retained
//	                  registry by its content-address key (the POST
//	                  response's "key"/ETag). 404 once evicted by the
//	                  registry's max-entries/TTL bound or when retention
//	                  is disabled.
//	GET  /v1/observe  run one workload × scheme pair and stream its DFH
//	                  resets and per-epoch samples as Server-Sent Events
//	                  (query params: workload, scheme, voltage, requests,
//	                  seed, warmup, shards, epoch), ending with a "result"
//	                  event. Slow subscribers miss events rather than stall
//	                  the simulation; a "done" event reports the drop count.
//	GET  /v1/campaign run a fleet Monte Carlo campaign and stream its
//	                  per-die progress as Server-Sent Events (query params:
//	                  dies, workloads, schemes, voltages, requests, seed,
//	                  warmup, shards, threshold), ending with a "result"
//	                  event carrying the aggregated campaign.Result. Plain
//	                  (non-streamed) campaigns POST /v1/jobs with kind
//	                  "campaign" instead and get coalescing and retention.
//	GET  /healthz     liveness + queue stats (JSON).
//	GET  /metrics     the obs.Metrics document when the server has one.
//	GET  /debug/vars  the standard expvar page.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{key}", s.handleGetJob)
	mux.HandleFunc("GET /v1/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/campaign", s.handleCampaign)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if m := s.cfg.Metrics; m != nil {
		mux.Handle("GET /metrics", m.Handler())
	}
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// retryAfterSeconds is the backpressure hint on 429 responses: the queue
// holds whole simulations, so "shortly" is seconds, not milliseconds.
const retryAfterSeconds = 1

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding job: %v", err))
		return
	}
	res, err := s.Submit(r.Context(), req)
	if err != nil {
		s.writeSubmitError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("ETag", `"`+res.Key+`"`)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

// handleGetJob serves a completed job from the retained registry.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var res *JobResult
	if s.retain != nil {
		res = s.retain.get(key)
	}
	if res == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no retained job %q (completed jobs are evicted by the registry's size/TTL bound)", key))
		return
	}
	s.retainedHits.Add(1)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("ETag", `"`+res.Key+`"`)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

// writeSubmitError maps Submit errors onto HTTP statuses.
func (s *Server) writeSubmitError(w http.ResponseWriter, r *http.Request, err error) {
	var verr *ValidationError
	switch {
	case errors.As(err, &verr):
		httpError(w, http.StatusBadRequest, verr.Err.Error())
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
	case r.Context().Err() != nil:
		// The client is gone; nobody reads this status.
		httpError(w, http.StatusRequestTimeout, r.Context().Err().Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	doc := struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}{Status: status, Stats: s.Stats()}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// observeEvent is one SSE payload on the /v1/observe stream.
type observeEvent struct {
	name string
	data any
}

// epochEvent is the per-epoch sample the stream carries: the machine-level
// obs.Sample plus the DFH population vector by state name.
type epochEvent struct {
	obs.Sample
	L2MPKI float64        `json:"l2_mpki"`
	DFH    map[string]int `json:"dfh"`
}

// streamObserver forwards per-epoch samples (and resets) from the
// simulation goroutine to the HTTP goroutine. The channel is buffered and
// sends never block: a subscriber slower than the simulation misses events
// (counted in dropped) rather than stalling a worker.
type streamObserver struct {
	ch      chan observeEvent
	pop     [obs.NumStates]int
	dropped int64
}

func newStreamObserver() *streamObserver {
	return &streamObserver{ch: make(chan observeEvent, 256)}
}

func (o *streamObserver) send(ev observeEvent) {
	select {
	case o.ch <- ev:
	default:
		o.dropped++
	}
}

// OnReset implements obs.Observer.
func (o *streamObserver) OnReset(r obs.Reset) {
	o.pop = [obs.NumStates]int{}
	o.pop[obs.StateInitial] = r.Lines
	o.send(observeEvent{name: "reset", data: map[string]any{
		"cycle": r.Cycle, "voltage": r.Voltage, "lines": r.Lines,
	}})
}

// OnTransition implements obs.Observer. Transitions are folded into the
// population vector rather than streamed — a training run has hundreds of
// thousands of them.
func (o *streamObserver) OnTransition(t obs.Transition) {
	if int(t.From) < obs.NumStates {
		o.pop[t.From]--
	}
	if int(t.To) < obs.NumStates {
		o.pop[t.To]++
	}
}

// OnEpoch implements obs.Observer.
func (o *streamObserver) OnEpoch(sample obs.Sample) {
	dfh := make(map[string]int, obs.NumStates)
	for st, n := range o.pop {
		dfh[obs.StateName(uint8(st))] = n
	}
	o.send(observeEvent{name: "epoch", data: epochEvent{Sample: sample, L2MPKI: sample.MPKI(), DFH: dfh}})
}

// outcome is a streamed job's final result, handed from the submitting
// goroutine to the SSE loop.
type outcome struct {
	res *JobResult
	err error
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	req, err := observeRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	o := newStreamObserver()
	done := make(chan outcome, 1)
	go func() {
		res, err := s.SubmitObserved(r.Context(), req, o)
		done <- outcome{res, err}
	}()
	s.streamSSE(w, r, flusher, o.ch, done, func() int64 { return o.dropped })
}

// handleCampaign runs a campaign job with a live progress subscription:
// throttled "progress" events while dies aggregate, then the "result" and
// "done" events the observe stream also ends with.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	req, err := campaignRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	ch := make(chan observeEvent, 64)
	var dropped int64
	var lastSent int
	// Called in die order on the aggregating goroutine (one goroutine, so
	// lastSent needs no lock). Throttled to ~0.5% steps; sends never block,
	// so a slow subscriber misses progress rather than stalling aggregation.
	progress := func(p campaign.ProgressInfo) {
		if step := max(1, p.Total/200); p.Done != p.Total && p.Done-lastSent < step {
			return
		}
		lastSent = p.Done
		select {
		case ch <- observeEvent{name: "progress", data: map[string]int{
			"dies_done": p.Done, "dies_total": p.Total,
			"dies_cached": p.Cached, "dies_resumed": p.Resumed,
		}}:
		default:
			dropped++
		}
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.SubmitCampaignObserved(r.Context(), req, progress)
		done <- outcome{res, err}
	}()
	s.streamSSE(w, r, flusher, ch, done, func() int64 { return dropped })
}

// streamSSE pumps a streamed job's events and final outcome to an SSE
// subscriber. The SSE headers are only correct once the job is admitted; a
// queue rejection must still be a plain 429. Admission is fast (it never
// waits on simulations), so peek for an immediate error before committing
// to the stream: the first event or the outcome, whichever comes first,
// decides. dropped is read only after the job finishes (the submit
// goroutine's send on done orders it).
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, flusher http.Flusher, events <-chan observeEvent, done <-chan outcome, dropped func() int64) {
	var started bool
	writeEvent := func(ev observeEvent) {
		if !started {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-store")
			w.WriteHeader(http.StatusOK)
			started = true
		}
		buf, err := json.Marshal(ev.data)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, buf)
		flusher.Flush()
	}
	for {
		select {
		case ev := <-events:
			writeEvent(ev)
		case out := <-done:
			// Drain events the job emitted before finishing.
			for {
				select {
				case ev := <-events:
					writeEvent(ev)
					continue
				default:
				}
				break
			}
			if out.err != nil {
				if !started {
					s.writeSubmitError(w, r, out.err)
					return
				}
				writeEvent(observeEvent{name: "error", data: map[string]string{"error": out.err.Error()}})
				return
			}
			writeEvent(observeEvent{name: "result", data: out.res})
			writeEvent(observeEvent{name: "done", data: map[string]int64{"dropped_events": dropped()}})
			return
		case <-r.Context().Done():
			// Subscriber gone; the submit path cancels the job. Drain the
			// goroutine and stop.
			<-done
			return
		}
	}
}

// observeRequest builds the run JobRequest from /v1/observe query params.
func observeRequest(r *http.Request) (JobRequest, error) {
	q := r.URL.Query()
	req := JobRequest{
		Kind:     KindRun,
		Workload: q.Get("workload"),
		Scheme:   q.Get("scheme"),
	}
	for name, set := range map[string]func(uint64){
		"requests": func(v uint64) { req.RequestsPerCU = int(v) },
		"seed":     func(v uint64) { req.Seed = v },
		"warmup":   func(v uint64) { req.WarmupKernels = int(v) },
		"shards":   func(v uint64) { req.Shards = int(v) },
		"epoch":    func(v uint64) { req.EpochCycles = v },
	} {
		if raw := q.Get(name); raw != "" {
			v, err := strconv.ParseUint(raw, 10, 63)
			if err != nil {
				return req, fmt.Errorf("bad %s %q: %v", name, raw, err)
			}
			set(v)
		}
	}
	if raw := q.Get("voltage"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return req, fmt.Errorf("bad voltage %q: %v", raw, err)
		}
		req.Voltage = v
	}
	return req, nil
}

// campaignRequest builds the campaign JobRequest from /v1/campaign query
// params. Validation proper happens in normalization — this only parses.
func campaignRequest(r *http.Request) (JobRequest, error) {
	q := r.URL.Query()
	req := JobRequest{
		Kind:      KindCampaign,
		Workloads: experiments.SplitList(q.Get("workloads")),
		Schemes:   experiments.SplitList(q.Get("schemes")),
	}
	for name, set := range map[string]func(uint64){
		"dies":     func(v uint64) { req.Dies = int(v) },
		"requests": func(v uint64) { req.RequestsPerCU = int(v) },
		"seed":     func(v uint64) { req.Seed = v },
		"warmup":   func(v uint64) { req.WarmupKernels = int(v) },
		"shards":   func(v uint64) { req.Shards = int(v) },
	} {
		if raw := q.Get(name); raw != "" {
			v, err := strconv.ParseUint(raw, 10, 63)
			if err != nil {
				return req, fmt.Errorf("bad %s %q: %v", name, raw, err)
			}
			set(v)
		}
	}
	if raw := q.Get("threshold"); raw != "" {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return req, fmt.Errorf("bad threshold %q: %v", raw, err)
		}
		req.PassThreshold = v
	}
	for _, raw := range experiments.SplitList(q.Get("voltages")) {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return req, fmt.Errorf("bad voltage %q: %v", raw, err)
		}
		req.Voltages = append(req.Voltages, v)
	}
	return req, nil
}
