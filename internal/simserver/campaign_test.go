package simserver

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
)

// smallCampaign is a fast campaign job for tests: 2 dies over one scheme
// and a two-point grid.
func smallCampaign() JobRequest {
	return JobRequest{
		Kind:          KindCampaign,
		Dies:          2,
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"killi-1:64"},
		Voltages:      []float64{0.625, 0.650},
		RequestsPerCU: 200,
	}
}

func TestSubmitCampaign(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()

	res, err := s.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindCampaign || res.Campaign == nil {
		t.Fatalf("degenerate campaign result: %+v", res)
	}
	c := res.Campaign
	if c.Dies != 2 || len(c.Cells) != 2 || len(c.Vmin) != 1 {
		t.Fatalf("campaign shape: dies=%d cells=%d vmin=%d, want 2/2/1", c.Dies, len(c.Cells), len(c.Vmin))
	}
	if c.Cells[0].Dies != 2 {
		t.Fatalf("cell aggregated %d dies, want 2", c.Cells[0].Dies)
	}

	// An identical re-submission is served from the retained registry with
	// the identical aggregates.
	again, err := s.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical repeat campaign did not hit the retained registry")
	}
	if !reflect.DeepEqual(again.Campaign, res.Campaign) {
		t.Fatal("retained campaign result diverges from the original")
	}
}

// TestCampaignDieCache pins that campaign jobs honor the server's result
// store at the die grain: with retention disabled (so the registry cannot
// answer), an identical re-submission streams whole-die records from the
// cache, reports Cached, and returns identical aggregates.
func TestCampaignDieCache(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheDir: t.TempDir(), RetainJobs: -1})
	ctx := context.Background()

	cold, err := s.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached || cold.Campaign.CachedDies != 0 {
		t.Fatalf("cold campaign reported cache hits: %+v", cold.Campaign.CachedDies)
	}
	warm, err := s.Submit(ctx, smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Coalesced {
		t.Fatal("sequential submissions cannot coalesce")
	}
	if !warm.Cached {
		t.Fatal("warm campaign not marked cached despite a full die-cache run")
	}
	if warm.Campaign.CachedDies != 2 {
		t.Fatalf("warm campaign CachedDies = %d, want 2", warm.Campaign.CachedDies)
	}
	// The aggregates must be bit-identical; only execution metadata may
	// differ between the passes.
	a, b := *cold.Campaign, *warm.Campaign
	a.ElapsedSeconds, a.DiesPerSecond, a.CachedDies, a.ResumedDies, a.CellCacheHits = 0, 0, 0, 0, 0
	b.ElapsedSeconds, b.DiesPerSecond, b.CachedDies, b.ResumedDies, b.CellCacheHits = 0, 0, 0, 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatal("die-cache campaign aggregates diverge from the cold run")
	}
}

// TestCampaignKeyCanonical pins that defaults and explicit values produce
// the same content address: a campaign written tersely coalesces with its
// fully spelled-out twin, and execution knobs stay out of the key.
func TestCampaignKeyCanonical(t *testing.T) {
	terse := JobRequest{Kind: KindCampaign, Dies: 50}
	full := JobRequest{
		Kind:          KindCampaign,
		Dies:          50,
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"killi-1:64", "msecc"},
		Voltages:      []float64{0.700, 0.675, 0.650, 0.625, 0.600, 0.575}, // unsorted on purpose
		Seed:          1,
		RequestsPerCU: 2000,
		PassThreshold: 1.10,
		Shards:        2,  // execution knob: excluded from the key
		Parallelism:   -1, // execution knob: excluded from the key
	}
	a, err := terse.normalized(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := full.normalized(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Fatalf("terse and explicit campaign keys differ:\n%s\n%s", a.key(), b.key())
	}
	other := terse
	other.Dies = 51
	c, err := other.normalized(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.key() == a.key() {
		t.Fatal("campaigns with different die counts share a key")
	}
}

func TestCampaignValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	for name, req := range map[string]JobRequest{
		"no dies":                {Kind: KindCampaign},
		"campaign with workload": {Kind: KindCampaign, Dies: 2, Workload: "xsbench"},
		"campaign with scheme":   {Kind: KindCampaign, Dies: 2, Scheme: "msecc"},
		"campaign with voltage":  {Kind: KindCampaign, Dies: 2, Voltage: 0.625},
		"campaign with epoch":    {Kind: KindCampaign, Dies: 2, EpochCycles: 4096},
		"bad scheme list":        {Kind: KindCampaign, Dies: 2, Schemes: []string{"nope"}},
		"bad workload list":      {Kind: KindCampaign, Dies: 2, Workloads: []string{"nope"}},
		"duplicate voltages":     {Kind: KindCampaign, Dies: 2, Voltages: []float64{0.6, 0.6}},
		"silly threshold":        {Kind: KindCampaign, Dies: 2, PassThreshold: 0.5},
		"run with dies":          {Kind: KindRun, Workload: "xsbench", Scheme: "msecc", Dies: 5},
		"sweep with schemes":     {Kind: KindSweep, Schemes: []string{"msecc"}},
		"sweep with threshold":   {Kind: KindSweep, PassThreshold: 1.2},
	} {
		_, err := s.Submit(ctx, req)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: err = %v, want a ValidationError", name, err)
		}
	}
	if got := s.Stats().Executed; got != 0 {
		t.Fatalf("%d jobs executed for invalid requests, want 0", got)
	}
}

// TestCampaignStream exercises GET /v1/campaign end to end: progress events
// arrive in order, the stream ends with result and done, and the result
// carries the aggregated campaign.
func TestCampaignStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/campaign?dies=4&schemes=killi-1:64&voltages=0.625,0.650&requests=200")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	events := parseSSE(t, resp)
	if events["progress"] < 1 {
		t.Fatalf("%d progress events, want at least 1", events["progress"])
	}
	if events["result"] != 1 || events["done"] != 1 {
		t.Fatalf("stream ended with result=%d done=%d, want 1/1", events["result"], events["done"])
	}

	// Bad params are a plain 400, not a broken stream.
	for _, q := range []string{
		"/v1/campaign?dies=0",
		"/v1/campaign?dies=4&voltages=abc",
		"/v1/campaign?dies=4&threshold=zero",
	} {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
