package simserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock is an injectable time source for retainer unit tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func result(key string) *JobResult           { return &JobResult{Kind: KindRun, Key: key} }
func keyOf(i int) string                     { return fmt.Sprintf("job-%04d", i) }
func recordN(r *retainer, lo, hi int) (last int) {
	for i := lo; i < hi; i++ {
		r.record(result(keyOf(i)))
	}
	return hi - 1
}

// TestRetainerCapacityBound pins FIFO eviction: the registry never holds
// more than max entries, the newest survive, and the oldest are gone.
func TestRetainerCapacityBound(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := newRetainer(8, 0, clk.now) // ttl <= 0: capacity only
	recordN(r, 0, 100)
	if got := r.count(); got != 8 {
		t.Fatalf("retained %d entries, want 8", got)
	}
	for i := 92; i < 100; i++ {
		if r.get(keyOf(i)) == nil {
			t.Errorf("newest entry %s was evicted", keyOf(i))
		}
	}
	if r.get(keyOf(91)) != nil {
		t.Error("entry beyond capacity survived")
	}
}

// TestRetainerTTL pins age-based eviction, including entries that are not
// at the FIFO front when they expire.
func TestRetainerTTL(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := newRetainer(100, time.Minute, clk.now)
	r.record(result("old"))
	clk.advance(30 * time.Second)
	r.record(result("young"))
	// Re-complete "old": its age resets even though its FIFO slot is stale.
	clk.advance(20 * time.Second)
	r.record(result("old"))
	clk.advance(15 * time.Second) // old is 15s, young is 35s
	if r.get("young") == nil {
		t.Fatal("young entry evicted early")
	}
	clk.advance(30 * time.Second) // young is 65s: expired; old is 45s
	if r.get("young") != nil {
		t.Fatal("expired entry served")
	}
	if r.get("old") == nil {
		t.Fatal("re-completed entry did not get a fresh TTL")
	}
	clk.advance(time.Minute)
	if got := r.count(); got != 0 {
		t.Fatalf("%d entries survive past the TTL, want 0", got)
	}
}

// TestRetainerOrderStaysBounded is the soak property: arbitrarily many
// completions — including endless re-completions of the same keys — leave
// both the entry map and the internal FIFO bounded.
func TestRetainerOrderStaysBounded(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := newRetainer(16, time.Hour, clk.now)
	for round := 0; round < 500; round++ {
		recordN(r, 0, 8) // the same 8 keys, re-completed forever
		r.record(result(keyOf(1000 + round)))
		clk.advance(time.Second)
	}
	if got := r.count(); got > 16 {
		t.Fatalf("registry holds %d entries, bound is 16", got)
	}
	if got := len(r.order); got > 2*16+16 {
		t.Fatalf("FIFO holds %d refs after the soak — stale refs are accumulating", got)
	}
}

// TestServerRetainsCompletedJobs is the integration path: completed jobs
// are re-fetchable and identical re-submissions are served from memory
// without executing, while the registry honors its configured bound.
func TestServerRetainsCompletedJobs(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetainJobs: 2})
	ctx := context.Background()

	first, err := s.Submit(ctx, smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	executed := s.Stats().Executed

	again, err := s.Submit(ctx, smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical re-submission did not hit the retained registry")
	}
	if *again.Run != *first.Run {
		t.Fatalf("retained result diverges: %+v vs %+v", again.Run, first.Run)
	}
	if got := s.Stats().Executed; got != executed {
		t.Fatalf("re-submission executed a simulation (%d -> %d jobs)", executed, got)
	}
	if got := s.Stats().RetainedHits; got != 1 {
		t.Fatalf("retained_hits = %d, want 1", got)
	}

	// Two more distinct jobs evict the first (bound 2): it re-executes.
	if _, err := s.Submit(ctx, smallRun(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, smallRun(3)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Retained; got != 2 {
		t.Fatalf("retained = %d, want 2", got)
	}
	evicted, err := s.Submit(ctx, smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if evicted.Cached {
		t.Fatal("evicted job was served from the registry")
	}
}

// TestRetentionDisabled pins the opt-out: RetainJobs < 0 keeps no results.
func TestRetentionDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetainJobs: -1})
	ctx := context.Background()
	if _, err := s.Submit(ctx, smallRun(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Retained; got != 0 {
		t.Fatalf("retained = %d with retention disabled", got)
	}
	res, err := s.Submit(ctx, smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("result served from a disabled registry")
	}
}

// TestHTTPGetRetainedJob pins GET /v1/jobs/{key}: a completed job is
// re-fetchable by the key the POST response carried, and an unknown or
// evicted key is a 404.
func TestHTTPGetRetainedJob(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RetainJobs: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var posted JobResult
	if err := json.NewDecoder(resp.Body).Decode(&posted); err != nil {
		t.Fatal(err)
	}
	if posted.Key == "" {
		t.Fatal("POST response has no job key")
	}

	got, err := http.Get(ts.URL + "/v1/jobs/" + posted.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Body.Close()
	if got.StatusCode != http.StatusOK {
		t.Fatalf("GET retained job: status %d", got.StatusCode)
	}
	var fetched JobResult
	if err := json.NewDecoder(got.Body).Decode(&fetched); err != nil {
		t.Fatal(err)
	}
	if fetched.Key != posted.Key || *fetched.Run != *posted.Run {
		t.Fatalf("retained fetch diverges: %+v vs %+v", fetched, posted)
	}

	miss, err := http.Get(ts.URL + "/v1/jobs/no-such-key")
	if err != nil {
		t.Fatal(err)
	}
	defer miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: status %d, want 404", miss.StatusCode)
	}
}
