package simserver

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// soakJob renders the i-th distinct job body of the soak grid.
func soakJob(i int) string {
	schemes := []string{"killi-1:64", "killi-1:16", "flair", "dected"}
	return fmt.Sprintf(
		`{"kind":"run","workload":"xsbench","scheme":"%s","requests_per_cu":300,"seed":%d}`,
		schemes[i%len(schemes)], 1+i/len(schemes))
}

// postJob submits one job body, retrying on 429 by honoring Retry-After
// (capped well below the test deadline). It returns the decoded response.
func postJob(t *testing.T, url, body string) (map[string]any, time.Duration) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		start := time.Now()
		resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		elapsed := time.Since(start)
		var doc map[string]any
		derr := json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			if derr != nil {
				t.Fatalf("decoding 200 response: %v", derr)
			}
			return doc, elapsed
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			if time.Now().After(deadline) {
				t.Fatal("server stayed busy past the soak deadline")
			}
			time.Sleep(50 * time.Millisecond)
		default:
			t.Fatalf("status %d: %v", resp.StatusCode, doc)
		}
	}
}

// TestServerSoak is the load harness behind the "heavy traffic" story: a
// concurrent client fleet drives the HTTP API cold (every job simulates)
// and then hot (every job is a cache hit), asserting
//
//   - every request eventually succeeds (backpressure is 429 + retry,
//     never a hang or a 500),
//   - identical requests return identical results across the whole soak
//     (bit-stable scalars, any concurrency),
//   - no duplicate simulation: after the cold pass, every response is
//     flagged cached (served by the content-addressed store) or coalesced
//     (joined an in-flight leader) — nothing simulates twice,
//   - the best warm round-trip stays under 10ms — the microsecond-class
//     cache read plus local HTTP, nowhere near simulation time.
//
// -short trims the grid and fleet; CI runs the short form on every push.
func TestServerSoak(t *testing.T) {
	jobs, clients, rounds := 8, 8, 6
	if testing.Short() {
		jobs, clients, rounds = 4, 4, 3
	}
	s := newTestServer(t, Config{CacheDir: t.TempDir(), QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Cold phase: the distinct grid, all at once, from one goroutine per
	// job. Coalescing is incidental here (distinct bodies), the queue and
	// backpressure do the work.
	reference := make([]map[string]any, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc, _ := postJob(t, ts.URL, soakJob(i))
			reference[i] = doc
		}(i)
	}
	wg.Wait()
	for i, doc := range reference {
		if doc["run"] == nil {
			t.Fatalf("cold job %d: no run payload: %v", i, doc)
		}
	}

	// Hot phase: a client fleet hammers random jobs from the same grid for
	// several rounds. Every response must now be cache-served and match
	// the cold reference exactly.
	var best time.Duration = time.Hour
	var bestMu sync.Mutex
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for r := 0; r < rounds; r++ {
				i := rng.Intn(jobs)
				doc, elapsed := postJob(t, ts.URL, soakJob(i))
				if doc["cached"] != true && doc["coalesced"] != true {
					t.Errorf("hot request for job %d simulated again: %v", i, doc)
					return
				}
				if fmt.Sprint(doc["run"]) != fmt.Sprint(reference[i]["run"]) {
					t.Errorf("hot job %d diverged from cold reference:\nhot  %v\ncold %v",
						i, doc["run"], reference[i]["run"])
					return
				}
				bestMu.Lock()
				if elapsed < best {
					best = elapsed
				}
				bestMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if best > 10*time.Millisecond {
		t.Errorf("best warm request took %v, want < 10ms (cache-hit serving must be I/O-class, not simulation-class)", best)
	}
}

// TestServerSoakSweepDeterminism drives concurrent identical sweep jobs
// through the in-process API and checks every submitter sees bit-identical
// rows — the Run determinism contract surviving the queue and coalescing.
func TestServerSoakSweepDeterminism(t *testing.T) {
	s := newTestServer(t, Config{CacheDir: t.TempDir(), Workers: 2, QueueDepth: 32})
	ctx := context.Background()
	req := JobRequest{Kind: KindSweep, Workloads: []string{"xsbench", "fft"}, RequestsPerCU: 300}

	const n = 6
	var wg sync.WaitGroup
	results := make([]*JobResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(ctx, req)
		}(i)
	}
	wg.Wait()
	want, err := json.Marshal(results[0].Rows)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("sweep %d: %v", i, errs[i])
		}
		got, err := json.Marshal(results[i].Rows)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("sweep %d rows diverge", i)
		}
	}
}
