package simserver

import (
	"sync"
	"time"
)

// Completed-job retention defaults (Config.RetainJobs / Config.RetainTTL).
const (
	defaultRetainJobs = 1024
	defaultRetainTTL  = 10 * time.Minute
)

// retainer is the bounded registry of completed job results: a fleet
// driving the daemon can re-fetch a finished job by key (GET /v1/jobs/{key})
// or re-submit it and be served from memory, while the registry's memory
// stays bounded by max entries and a TTL no matter how long the daemon
// soaks. Eviction is FIFO by completion time with lazy age checks — there
// is no background goroutine to leak; every record/get prunes.
type retainer struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration // <= 0: no age-based eviction
	now     func() time.Time
	seq     uint64
	entries map[string]*retainEntry
	// order holds completion-ordered (key, seq) refs. A re-completed key
	// gets a fresh ref; stale refs (seq mismatch) are skipped on pop and
	// compacted when the slice outgrows 2×max, so order is bounded too.
	order []retainRef
}

type retainEntry struct {
	res *JobResult
	at  time.Time
	seq uint64
}

type retainRef struct {
	key string
	seq uint64
}

func newRetainer(max int, ttl time.Duration, now func() time.Time) *retainer {
	return &retainer{
		max:     max,
		ttl:     ttl,
		now:     now,
		entries: make(map[string]*retainEntry),
	}
}

// record retains a completed job's result, evicting the oldest entries
// beyond the capacity or TTL bound.
func (r *retainer) record(res *JobResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.entries[res.Key] = &retainEntry{res: res, at: r.now(), seq: r.seq}
	r.order = append(r.order, retainRef{key: res.Key, seq: r.seq})
	r.pruneLocked()
	if len(r.order) > 2*r.max+16 {
		r.compactLocked()
	}
}

// get returns the retained result for key, or nil. An expired entry is
// evicted on access even when it is not at the front of the FIFO.
func (r *retainer) get(key string) *JobResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	e, ok := r.entries[key]
	if !ok {
		return nil
	}
	if r.ttl > 0 && r.now().Sub(e.at) >= r.ttl {
		delete(r.entries, key)
		return nil
	}
	return e.res
}

// count returns the number of retained results.
func (r *retainer) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	return len(r.entries)
}

// pruneLocked pops the FIFO front while it is stale, expired, or beyond
// capacity. Entries whose age check is blocked by a refreshed front are
// still capacity-bounded and evicted on direct access.
func (r *retainer) pruneLocked() {
	for len(r.order) > 0 {
		ref := r.order[0]
		e, ok := r.entries[ref.key]
		if !ok || e.seq != ref.seq {
			r.order = r.order[1:] // stale ref: the key was re-completed later
			continue
		}
		expired := r.ttl > 0 && r.now().Sub(e.at) >= r.ttl
		if expired || len(r.entries) > r.max {
			delete(r.entries, ref.key)
			r.order = r.order[1:]
			continue
		}
		break
	}
	if len(r.order) == 0 && r.order != nil {
		r.order = nil // release the drained backing array
	}
}

// compactLocked rewrites order without stale refs, bounding its length by
// the live entry count.
func (r *retainer) compactLocked() {
	live := r.order[:0:0]
	for _, ref := range r.order {
		if e, ok := r.entries[ref.key]; ok && e.seq == ref.seq {
			live = append(live, ref)
		}
	}
	r.order = live
}
