package simserver

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"killi/internal/campaign"
	"killi/internal/experiments"
	"killi/internal/gpu"
	"killi/internal/obs"
	"killi/internal/simcache"
)

// ErrBusy is returned when the job queue is full; HTTP maps it to 429 with
// a Retry-After hint. ErrClosed is returned once shutdown has begun (503).
var (
	ErrBusy   = errors.New("simserver: job queue is full")
	ErrClosed = errors.New("simserver: server is shutting down")
)

// Config parameterizes a Server.
type Config struct {
	// CacheDir roots the content-addressed result cache shared by every
	// job ("" disables caching — every job simulates).
	CacheDir string
	// Shards is the per-simulation shard count jobs default to (0 = 1).
	Shards int
	// Workers bounds concurrently executing jobs. 0 budgets
	// max(1, GOMAXPROCS/Shards), so shards × workers never oversubscribes
	// the machine.
	Workers int
	// QueueDepth bounds jobs waiting beyond the running ones; a full queue
	// rejects new work with ErrBusy. 0 means 4 × Workers.
	QueueDepth int
	// Metrics, when non-nil, receives job counters (jobs_executed,
	// jobs_coalesced, jobs_rejected, queue_depth, jobs_running) and the
	// most recent sweep's task progress next to its built-in vars.
	Metrics *obs.Metrics
	// RetainJobs bounds the in-memory registry of completed job results
	// (re-fetchable via GET /v1/jobs/{key}; identical re-submissions are
	// served from it without queueing). 0 means 1024; negative disables
	// retention entirely.
	RetainJobs int
	// RetainTTL bounds a retained result's age: entries older than it are
	// evicted lazily on every record and lookup. 0 means 10 minutes;
	// negative keeps entries until capacity evicts them.
	RetainTTL time.Duration
}

// call is one keyed execution: the leader submits it, coalesced followers
// wait on done.
type call struct {
	req      JobRequest
	key      string
	observer obs.Observer                // non-nil: an observe job (never coalesced)
	progress func(campaign.ProgressInfo) // non-nil: a streamed campaign (never coalesced)
	subCtx   context.Context             // observe/streamed only: the subscriber's context
	done     chan struct{}
	res      *JobResult
	err      error
}

// streamed reports whether this call has a live subscriber: such calls are
// never coalesced (each subscriber needs its own stream), never retained,
// and are cancelled when their subscriber vanishes.
func (c *call) streamed() bool { return c.observer != nil || c.progress != nil }

// Server is the resident job engine. Construct with New, submit with
// Submit (or the HTTP Handler), stop with Close.
type Server struct {
	cfg     Config
	workers int
	store   *simcache.Store // nil when caching is disabled
	retain  *retainer       // nil when retention is disabled

	mu       sync.Mutex
	closed   bool
	inflight map[string]*call
	jobs     chan *call

	wg        sync.WaitGroup
	runCtx    context.Context
	cancelRun context.CancelFunc
	drained   chan struct{}

	executed     atomic.Int64 // jobs a worker actually ran
	coalesced    atomic.Int64 // submissions served by joining an in-flight job
	rejected     atomic.Int64 // submissions bounced with ErrBusy
	queued       atomic.Int64 // jobs waiting in the queue right now
	running      atomic.Int64 // jobs executing right now
	retainedHits atomic.Int64 // submissions served from the retained registry
}

// Stats is a snapshot of the server's job counters.
type Stats struct {
	Executed  int64 `json:"executed"`  // jobs run by the worker pool
	Coalesced int64 `json:"coalesced"` // submissions that joined an identical in-flight job
	Rejected  int64 `json:"rejected"`  // submissions rejected with ErrBusy
	Queued    int64 `json:"queued"`    // jobs waiting right now
	Running   int64 `json:"running"`   // jobs executing right now
	Workers   int   `json:"workers"`   // worker-pool size
	Queue     int   `json:"queue"`     // queue capacity
	// Retained is the number of completed job results currently held by
	// the bounded registry; RetainedHits counts submissions served from it.
	Retained     int   `json:"retained"`
	RetainedHits int64 `json:"retained_hits"`
}

// Stats returns a snapshot of the job counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Executed:     s.executed.Load(),
		Coalesced:    s.coalesced.Load(),
		Rejected:     s.rejected.Load(),
		Queued:       s.queued.Load(),
		Running:      s.running.Load(),
		Workers:      s.workers,
		Queue:        cap(s.jobs),
		RetainedHits: s.retainedHits.Load(),
	}
	if s.retain != nil {
		st.Retained = s.retain.count()
	}
	return st
}

// New starts a Server: its worker pool runs until Close.
func New(cfg Config) (*Server, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = max(1, runtime.GOMAXPROCS(0)/cfg.Shards)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * workers
	}
	var store *simcache.Store
	if cfg.CacheDir != "" {
		var err error
		if store, err = simcache.Open(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		workers:   workers,
		store:     store,
		inflight:  make(map[string]*call),
		jobs:      make(chan *call, depth),
		runCtx:    ctx,
		cancelRun: cancel,
		drained:   make(chan struct{}),
	}
	if cfg.RetainJobs >= 0 {
		maxJobs := cfg.RetainJobs
		if maxJobs == 0 {
			maxJobs = defaultRetainJobs
		}
		ttl := cfg.RetainTTL
		if ttl == 0 {
			ttl = defaultRetainTTL
		}
		s.retain = newRetainer(maxJobs, ttl, time.Now)
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.publishMetrics()
	return s, nil
}

// publishMetrics adds the server's gauges and counters to the optional
// obs.Metrics document.
func (s *Server) publishMetrics() {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	gauge := func(f func() int64) expvar.Var { return expvar.Func(func() any { return f() }) }
	m.Set("jobs_executed", gauge(s.executed.Load))
	m.Set("jobs_coalesced", gauge(s.coalesced.Load))
	m.Set("jobs_rejected", gauge(s.rejected.Load))
	m.Set("jobs_running", gauge(s.running.Load))
	m.Set("queue_depth", gauge(s.queued.Load))
	m.Set("queue_capacity", gauge(func() int64 { return int64(cap(s.jobs)) }))
	m.Set("workers", gauge(func() int64 { return int64(s.workers) }))
	m.Set("jobs_retained", gauge(func() int64 {
		if s.retain == nil {
			return 0
		}
		return int64(s.retain.count())
	}))
	m.Set("retained_hits", gauge(s.retainedHits.Load))
}

// worker executes queued jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for c := range s.jobs {
		s.queued.Add(-1)
		s.running.Add(1)
		c.res, c.err = s.execute(s.runCtx, c)
		s.running.Add(-1)
		if c.err == nil && !c.streamed() && s.retain != nil {
			s.retain.record(c.res)
		}
		s.mu.Lock()
		// Guarded delete: a streamed job never registers as leader, so an
		// unconditional delete could evict a still-running plain leader that
		// shares its key.
		if s.inflight[c.key] == c {
			delete(s.inflight, c.key)
		}
		s.mu.Unlock()
		close(c.done)
	}
}

// execute runs one job under the server's lifecycle context.
func (s *Server) execute(ctx context.Context, c *call) (*JobResult, error) {
	s.executed.Add(1)
	start := time.Now()
	req := c.req
	cfg := req.config(s.cfg.CacheDir)
	out := &JobResult{Kind: req.Kind, Key: c.key}
	// A vanished subscriber cancels its own job (but never the server's
	// other work): merge the subscriber context into the lifecycle one.
	runCtx := ctx
	if c.subCtx != nil {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		stop := context.AfterFunc(c.subCtx, cancel)
		defer stop()
	}
	switch {
	case c.observer != nil:
		newScheme, err := experiments.SchemeFactoryByName(req.Scheme)
		if err != nil {
			return nil, err
		}
		// Observed runs bypass the cache: their value is the stream.
		res, err := experiments.RunOneObserved(runCtx, cfg, req.Workload, newScheme, req.Voltage, c.observer, req.EpochCycles)
		if err != nil {
			return nil, err
		}
		out.Run = runResult(res)
	case req.Kind == KindCampaign:
		ccfg := req.campaignConfig()
		// Campaign jobs honor the server's result cache at both grains
		// (whole-die records and per-cell entries); the retained-result
		// registry sits in front of this unchanged.
		ccfg.CacheDir = s.cfg.CacheDir
		ccfg.Progress = c.progress
		if ccfg.Progress == nil {
			if m := s.cfg.Metrics; m != nil {
				ccfg.Progress = func(p campaign.ProgressInfo) { m.TaskDone(p.Done, p.Total) }
			}
		}
		res, err := campaign.Run(runCtx, ccfg)
		if err != nil {
			return nil, err
		}
		out.Campaign = res
		// Every die served whole from the store means the campaign touched
		// no simulator at all — the campaign analogue of a cached run.
		out.Cached = s.store != nil && res.CachedDies == res.Dies
	case req.Kind == KindSweep:
		if m := s.cfg.Metrics; m != nil {
			cfg.Progress = m.TaskDone
		}
		rows, err := experiments.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		out.Rows = rows
	default: // KindRun
		res, err := experiments.RunOneNamed(ctx, cfg, req.Workload, req.Scheme, req.Voltage)
		if err != nil {
			return nil, err
		}
		out.Run = runResult(res)
		// RunOneNamed attaches Counters only when it simulated; a bare
		// scalar result came from the content-addressed cache.
		out.Cached = res.Counters == nil && s.store != nil
	}
	out.ElapsedSeconds = time.Since(start).Seconds()
	return out, nil
}

func runResult(res gpu.Result) *RunResult {
	return &RunResult{
		Cycles:        res.Cycles,
		Instructions:  res.Instructions,
		L2Misses:      res.L2Misses,
		L2Accesses:    res.L2Accesses,
		MemAccesses:   res.MemAccesses,
		DisabledLines: res.DisabledLines,
		L2MPKI:        res.MPKI(),
	}
}

// Submit validates and executes one job, blocking until the result is
// ready. Identical concurrent submissions coalesce: one simulates, the
// rest wait on it and receive the same result with Coalesced set. A job
// identical to one the bounded retained registry still holds is served
// from memory immediately, with Cached set, without touching the queue.
// When the queue is full Submit fails fast with ErrBusy; after Close
// begins it fails with ErrClosed.
//
// Cancelling ctx abandons the wait and returns ctx.Err(); the job itself
// keeps running (other submitters may be coalesced onto it, and its result
// still warms the cache). Job execution is cancelled only by server
// shutdown.
func (s *Server) Submit(ctx context.Context, req JobRequest) (*JobResult, error) {
	norm, err := req.normalized(s.cfg.Shards, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, &ValidationError{Err: err}
	}
	key := norm.key()
	if s.retain != nil {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		// Jobs are content-addressed and simulations deterministic, so a
		// retained result can never be stale. Draining servers still refuse:
		// shutdown semantics beat the fast path.
		if res := s.retain.get(key); res != nil && !closed {
			s.retainedHits.Add(1)
			out := *res
			out.Cached = true
			return &out, nil
		}
	}
	c, coalesced, err := s.admit(&call{req: norm, key: key, done: make(chan struct{})})
	if err != nil {
		return nil, err
	}
	res, err := s.wait(ctx, c)
	if err != nil || !coalesced {
		return res, err
	}
	joined := *res
	joined.Coalesced = true
	return &joined, nil
}

// SubmitObserved is Submit for a run job with a live observer attached:
// o receives the run's DFH resets, classification transitions, and
// per-epoch samples from the simulation goroutine while the job executes.
// Observed jobs go through the same queue, budget, and backpressure as
// plain jobs but are never coalesced (each subscriber needs its own event
// stream) and never served from the result cache. Unlike Submit,
// cancelling ctx also cancels the running simulation at its next kernel
// boundary — a vanished subscriber must not keep burning a worker.
func (s *Server) SubmitObserved(ctx context.Context, req JobRequest, o obs.Observer) (*JobResult, error) {
	if req.Kind != KindRun {
		return nil, &ValidationError{Err: fmt.Errorf("observe streams are run jobs; got kind %q", req.Kind)}
	}
	norm, err := req.normalized(s.cfg.Shards, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, &ValidationError{Err: err}
	}
	c := &call{req: norm, key: norm.key(), observer: o, subCtx: ctx, done: make(chan struct{})}
	if _, _, err := s.admit(c); err != nil {
		return nil, err
	}
	return s.wait(ctx, c)
}

// SubmitCampaignObserved is Submit for a campaign job with a live progress
// subscriber: progress receives cumulative die counts (done/total plus how
// many were served from the die cache or replayed from a checkpoint) in die
// order while the campaign executes — the feed behind killi-simd's
// GET /v1/campaign SSE stream. Like observe streams, subscribed campaigns
// share the queue, budget, and backpressure but are never coalesced or
// retained, and cancelling ctx cancels the running campaign at the next
// kernel boundary. Plain (unsubscribed) campaigns go through Submit like
// any other job and get coalescing, retention, and metrics-based progress
// for free.
func (s *Server) SubmitCampaignObserved(ctx context.Context, req JobRequest, progress func(campaign.ProgressInfo)) (*JobResult, error) {
	if req.Kind != KindCampaign {
		return nil, &ValidationError{Err: fmt.Errorf("campaign streams are campaign jobs; got kind %q", req.Kind)}
	}
	if progress == nil {
		return nil, &ValidationError{Err: fmt.Errorf("campaign stream needs a progress callback; use Submit for a plain campaign")}
	}
	norm, err := req.normalized(s.cfg.Shards, runtime.GOMAXPROCS(0))
	if err != nil {
		return nil, &ValidationError{Err: err}
	}
	c := &call{req: norm, key: norm.key(), progress: progress, subCtx: ctx, done: make(chan struct{})}
	if _, _, err := s.admit(c); err != nil {
		return nil, err
	}
	return s.wait(ctx, c)
}

// admit coalesces c onto an identical in-flight call or enqueues it,
// returning the call to wait on and whether it was coalesced.
func (s *Server) admit(c *call) (*call, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if !c.streamed() {
		if leader, ok := s.inflight[c.key]; ok {
			s.mu.Unlock()
			s.coalesced.Add(1)
			return leader, true, nil
		}
	}
	select {
	case s.jobs <- c:
		// Streamed jobs are keyed but never joined (each subscriber needs
		// its own event stream), so only plain jobs register as leaders.
		if !c.streamed() {
			s.inflight[c.key] = c
		}
		s.queued.Add(1)
		s.mu.Unlock()
		return c, false, nil
	default:
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, false, ErrBusy
	}
}

// wait blocks until c completes or ctx is cancelled.
func (s *Server) wait(ctx context.Context, c *call) (*JobResult, error) {
	select {
	case <-c.done:
		return c.res, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close shuts the server down gracefully: no new submissions are admitted,
// queued and running jobs drain to completion, and stranded cache temp
// files are swept. If ctx expires first, in-flight simulations are
// cancelled at their next kernel boundary and Close returns once the pool
// has stopped (returning ctx.Err() to signal the forced drain). Close is
// idempotent; later calls wait for the first drain.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.drained
		return nil
	}
	s.closed = true
	close(s.jobs) // admit holds the lock for every send, so this is safe
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancelRun()
		<-done
		err = ctx.Err()
	}
	s.cancelRun()
	if s.store != nil {
		// All workers have stopped; any temp file left is stranded.
		_, _ = s.store.RemoveTemps()
	}
	close(s.drained)
	return err
}

// ValidationError marks a request the caller got wrong (HTTP 400), as
// opposed to a server-side failure.
type ValidationError struct{ Err error }

func (e *ValidationError) Error() string { return fmt.Sprintf("simserver: invalid job: %v", e.Err) }
func (e *ValidationError) Unwrap() error { return e.Err }
