package simserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// smallRun is a fast run job for tests (~10ms of simulation).
func smallRun(seed uint64) JobRequest {
	return JobRequest{
		Kind:          KindRun,
		Workload:      "xsbench",
		Scheme:        "killi-1:64",
		RequestsPerCU: 300,
		Seed:          seed,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s
}

func TestSubmitRunAndSweep(t *testing.T) {
	s := newTestServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	ctx := context.Background()

	run, err := s.Submit(ctx, smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if run.Kind != KindRun || run.Run == nil || run.Run.Cycles == 0 {
		t.Fatalf("degenerate run result: %+v", run)
	}
	if run.Cached {
		t.Fatal("first submission reported a cache hit")
	}

	sweep, err := s.Submit(ctx, JobRequest{
		Kind:          KindSweep,
		Workloads:     []string{"xsbench"},
		RequestsPerCU: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Kind != KindSweep || len(sweep.Rows) != 1 || sweep.Rows[0].Workload != "xsbench" {
		t.Fatalf("degenerate sweep result: %+v", sweep)
	}
	// The sweep cached its killi-1:64 task under the same per-task key a
	// run job uses, and the earlier run job cached its own entry: the
	// identical run now hits.
	warm, err := s.Submit(ctx, smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("identical repeat run did not hit the result cache")
	}
	if *warm.Run != *run.Run {
		t.Fatalf("cache-served run diverges: warm %+v, cold %+v", warm.Run, run.Run)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	for name, req := range map[string]JobRequest{
		"no kind":             {},
		"bad kind":            {Kind: "compile"},
		"run without pair":    {Kind: KindRun},
		"unknown workload":    {Kind: KindRun, Workload: "nope", Scheme: "killi-1:64"},
		"unknown scheme":      {Kind: KindRun, Workload: "xsbench", Scheme: "nope"},
		"sweep with workload": {Kind: KindSweep, Workload: "xsbench", Scheme: "killi-1:64"},
		"run with workloads":  {Kind: KindRun, Workload: "xsbench", Scheme: "killi-1:64", Workloads: []string{"fft"}},
		"bad sweep subset":    {Kind: KindSweep, Workloads: []string{"nope"}},
		"negative requests":   {Kind: KindRun, Workload: "xsbench", Scheme: "killi-1:64", RequestsPerCU: -1},
		"negative warmup":     {Kind: KindRun, Workload: "xsbench", Scheme: "killi-1:64", WarmupKernels: -1},
		"silly voltage":       {Kind: KindRun, Workload: "xsbench", Scheme: "killi-1:64", Voltage: 9},
		"bad shards":          {Kind: KindRun, Workload: "xsbench", Scheme: "killi-1:64", Shards: -2},
	} {
		_, err := s.Submit(ctx, req)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: err = %v, want a ValidationError", name, err)
		}
	}
	if got := s.Stats().Executed; got != 0 {
		t.Fatalf("%d jobs executed for invalid requests, want 0", got)
	}
}

// TestCoalescing pins the request-coalescing contract: N identical
// concurrent jobs run exactly one simulation and every submitter gets an
// identical result, the followers marked Coalesced.
func TestCoalescing(t *testing.T) {
	// One worker and a deep queue: a blocker job occupies the worker while
	// the identical submissions arrive, so the leader is deterministically
	// still in flight (queued) when every follower looks it up.
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 16})
	ctx := context.Background()
	const n = 8

	var blockerWG sync.WaitGroup
	blockerWG.Add(1)
	go func() {
		defer blockerWG.Done()
		blocker := smallRun(99)
		blocker.RequestsPerCU = 20000
		_, _ = s.Submit(ctx, blocker)
	}()
	waitFor(t, func() bool { return s.Stats().Running == 1 })

	req := smallRun(7)
	var wg sync.WaitGroup
	results := make([]*JobResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(ctx, req)
		}(i)
	}
	wg.Wait()
	blockerWG.Wait()

	coalesced := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if results[i].Run == nil {
			t.Fatalf("submission %d: no run result", i)
		}
		if *results[i].Run != *results[0].Run {
			t.Fatalf("submission %d diverges: %+v vs %+v", i, results[i].Run, results[0].Run)
		}
		if results[i].Coalesced {
			coalesced++
		}
	}
	st := s.Stats()
	if st.Executed != 2 { // the blocker plus exactly one leader
		t.Fatalf("%d simulations executed for %d identical jobs (+1 blocker), want 2", st.Executed, n)
	}
	if coalesced != n-1 || st.Coalesced != n-1 {
		t.Fatalf("coalesced responses %d (stats %d), want %d", coalesced, st.Coalesced, n-1)
	}
}

// TestCoalescingIgnoresExecutionKnobs pins that shards/parallelism — which
// never change results — do not fragment the key space.
func TestCoalescingIgnoresExecutionKnobs(t *testing.T) {
	a := smallRun(1)
	b := smallRun(1)
	b.Shards = 2
	b.Parallelism = 3
	na, err := a.normalized(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.normalized(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if na.key() != nb.key() {
		t.Fatal("jobs differing only in shards/parallelism got distinct keys")
	}
	c := smallRun(2)
	nc, err := c.normalized(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if na.key() == nc.key() {
		t.Fatal("jobs with distinct seeds share a key")
	}
}

// TestBackpressure fills the queue and checks the overflow submission is
// rejected with ErrBusy (the HTTP layer's 429) rather than queued or hung.
func TestBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	// Occupy the worker and the single queue slot with distinct jobs.
	var wg sync.WaitGroup
	launch := func(seed uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := smallRun(seed)
			req.RequestsPerCU = 20000
			_, _ = s.Submit(ctx, req)
		}()
	}
	launch(11)
	waitFor(t, func() bool { return s.Stats().Running == 1 })
	launch(12)
	waitFor(t, func() bool { return s.Stats().Queued == 1 })

	if _, err := s.Submit(ctx, smallRun(13)); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow submission: err = %v, want ErrBusy", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	wg.Wait()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseDrainsQueue pins graceful shutdown: jobs admitted before Close
// complete, submissions after Close fail with ErrClosed, and Close is
// idempotent.
func TestCloseDrainsQueue(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 3
	var wg sync.WaitGroup
	results := make([]*JobResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := smallRun(uint64(100 + i))
			req.RequestsPerCU = 20000 // slow enough that all three are admitted together
			results[i], errs[i] = s.Submit(ctx, req)
		}(i)
	}
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Running+st.Queued == n
	})
	closeCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := s.Close(closeCtx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil || results[i].Run == nil {
			t.Fatalf("pre-Close job %d: res %+v err %v, want a drained result", i, results[i], errs[i])
		}
	}
	if _, err := s.Submit(ctx, smallRun(200)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close submission: err = %v, want ErrClosed", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseCancelsOnDeadline pins the forced-drain path: a Close whose
// context expires cancels in-flight simulations instead of waiting them
// out, and still returns with the pool stopped.
func TestCloseCancelsOnDeadline(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := smallRun(1)
	req.RequestsPerCU = 200000 // minutes of simulation — must be cut short
	req.WarmupKernels = 4
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, req)
		errc <- err
	}()
	waitFor(t, func() bool { return s.Stats().Running == 1 })

	closeCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.Close(closeCtx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced Close: err = %v, want DeadlineExceeded", err)
	}
	// The long job's kernels are ~seconds each; a forced drain must come
	// back at kernel granularity, far under the full runtime.
	if took := time.Since(start); took > 90*time.Second {
		t.Fatalf("forced Close took %v", took)
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job's submitter got %v, want context.Canceled", err)
	}
}

// TestHTTPJobEndpoint drives the JSON API end to end: a job round-trips,
// malformed and invalid bodies get 400, and identical requests produce
// identical payloads (determinism over HTTP).
func TestHTTPJobEndpoint(t *testing.T) {
	s := newTestServer(t, Config{CacheDir: t.TempDir(), Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
		return resp, doc
	}

	body := `{"kind":"run","workload":"xsbench","scheme":"killi-1:64","requests_per_cu":300}`
	resp, doc := post(body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, doc)
	}
	if doc["run"] == nil || doc["kind"] != "run" {
		t.Fatalf("bad payload: %v", doc)
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("no ETag on a job response")
	}

	resp2, doc2 := post(body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	if doc2["cached"] != true {
		t.Fatalf("repeat request not served from cache: %v", doc2)
	}
	if !reflect.DeepEqual(doc["run"], doc2["run"]) {
		t.Fatalf("identical requests diverged: %v vs %v", doc["run"], doc2["run"])
	}

	for name, body := range map[string]string{
		"malformed":     `{"kind":`,
		"unknown field": `{"kind":"run","workload":"xsbench","scheme":"killi-1:64","frobnicate":1}`,
		"invalid":       `{"kind":"run"}`,
	} {
		if resp, doc := post(body); resp.StatusCode != http.StatusBadRequest || doc["error"] == "" {
			t.Errorf("%s: status %d doc %v, want 400 with error", name, resp.StatusCode, doc)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Stats.Workers != 2 {
		t.Fatalf("healthz: %+v", health)
	}
}

// TestHTTPBackpressure pins the 429 + Retry-After contract over the wire.
func TestHTTPBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	slow := func(seed int) string {
		return fmt.Sprintf(`{"kind":"run","workload":"xsbench","scheme":"killi-1:64","requests_per_cu":20000,"seed":%d}`, seed)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slow(11+i)))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Running == 1 && st.Queued == 1
	})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slow(13)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	wg.Wait()
}

// TestObserveStream pins the SSE endpoint: epoch events arrive with DFH
// populations and the stream terminates with result + done events.
func TestObserveStream(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/observe?workload=xsbench&scheme=killi-1:64&requests=400&epoch=2048")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	events := parseSSE(t, resp)
	if events["reset"] == 0 {
		t.Fatal("no reset event on the stream")
	}
	if events["epoch"] < 2 {
		t.Fatalf("%d epoch events, want at least 2", events["epoch"])
	}
	if events["result"] != 1 || events["done"] != 1 {
		t.Fatalf("stream ended with result=%d done=%d, want 1/1", events["result"], events["done"])
	}

	// Bad params are a plain 400, not a broken stream.
	resp2, err := http.Get(ts.URL + "/v1/observe?workload=nope&scheme=killi-1:64")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-workload status %d, want 400", resp2.StatusCode)
	}
}

// parseSSE counts events by name and sanity-checks each data line is JSON.
func parseSSE(t *testing.T, resp *http.Response) map[string]int {
	t.Helper()
	counts := map[string]int{}
	var current string
	buf := make([]byte, 0, 1<<16)
	tmp := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			break
		}
	}
	for _, line := range strings.Split(string(buf), "\n") {
		switch {
		case strings.HasPrefix(line, "event: "):
			current = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			counts[current]++
			if !json.Valid([]byte(strings.TrimPrefix(line, "data: "))) {
				t.Fatalf("event %q carries invalid JSON: %s", current, line)
			}
		}
	}
	return counts
}

// TestFaultClassJobs pins the fault-class plumbing through the job layer:
// spellings of the same spec coalesce, the persistent spelling coalesces
// with an absent field, distinct mixes get distinct keys, run/sweep jobs
// reject a multi-element list, malformed specs fail validation, and a
// classed run job actually reaches the simulator (its result differs from
// the persistent run).
func TestFaultClassJobs(t *testing.T) {
	norm := func(r JobRequest) JobRequest {
		t.Helper()
		n, err := r.normalized(1, 8)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	plain := norm(smallRun(1))
	persistent := smallRun(1)
	persistent.FaultClasses = []string{"persistent"}
	if k := norm(persistent).key(); k != plain.key() {
		t.Error("explicit persistent job does not coalesce with the default")
	}
	a := smallRun(1)
	a.FaultClasses = []string{"mixed:i=0.50@0.300"}
	b := smallRun(1)
	b.FaultClasses = []string{"mixed:i=0.5@0.3"}
	if norm(a).key() != norm(b).key() {
		t.Error("two spellings of one mix got distinct keys")
	}
	if norm(a).key() == plain.key() {
		t.Error("mixed job shares a key with the persistent job")
	}

	s := newTestServer(t, Config{Workers: 1})
	ctx := context.Background()
	for name, req := range map[string]JobRequest{
		"malformed spec": {Kind: KindRun, Workload: "xsbench", Scheme: "killi-1:64", FaultClasses: []string{"mixed:zzz"}},
		"list on a run":  {Kind: KindRun, Workload: "xsbench", Scheme: "killi-1:64", FaultClasses: []string{"persistent", "mixed:i=0.5@0.3"}},
	} {
		_, err := s.Submit(ctx, req)
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Errorf("%s: err = %v, want a ValidationError", name, err)
		}
	}

	base, err := s.Submit(ctx, smallRun(1))
	if err != nil {
		t.Fatal(err)
	}
	classed := smallRun(1)
	classed.FaultClasses = []string{"mixed:i=0.5@0.3"}
	got, err := s.Submit(ctx, classed)
	if err != nil {
		t.Fatal(err)
	}
	if *got.Run == *base.Run {
		t.Error("classed run job returned the persistent result; classes are not reaching the simulator")
	}

	// A campaign job carries the list as an axis and echoes the canonical
	// specs in its result.
	camp, err := s.Submit(ctx, JobRequest{
		Kind:          KindCampaign,
		Dies:          1,
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"killi-1:64"},
		Voltages:      []float64{0.625},
		RequestsPerCU: 200,
		FaultClasses:  []string{"", "mixed:i=0.50@0.300"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"persistent", "mixed:i=0.5@0.3"}
	if !reflect.DeepEqual(camp.Campaign.FaultClasses, want) {
		t.Errorf("campaign fault classes = %v, want %v", camp.Campaign.FaultClasses, want)
	}
	if len(camp.Campaign.Cells) != 2 {
		t.Errorf("campaign produced %d cells, want 2 (one per class)", len(camp.Campaign.Cells))
	}
}
