package energy

import (
	"testing"

	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/workload"
)

func run(t *testing.T, v float64, newScheme protection.Factory, warm int) gpu.Result {
	t.Helper()
	cfg := gpu.DefaultConfig()
	cfg.L2Bytes = 128 << 10
	cfg.Voltage = v
	w, err := workload.ByName("nekbone")
	if err != nil {
		t.Fatal(err)
	}
	traces := w.Traces(cfg.CUs, 2500, 3)
	sys := gpu.New(cfg, newScheme)
	for i := 0; i < warm; i++ {
		sys.Run(traces)
	}
	return sys.Run(traces)
}

func TestUndervoltingSavesEnergy(t *testing.T) {
	// The headline, from activity: Killi at 0.625×VDD burns materially
	// less L2 energy than the fault-free baseline at nominal voltage on
	// the same (steady-state) kernel.
	c := DefaultCosts()
	base := FromRun(run(t, 1.0, func() protection.Scheme { return protection.NewNone() }, 1), 1.0, c)
	lv := FromRun(run(t, 0.625, func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, 1), 0.625, c)
	pct := Table6Percent(lv, base)
	if pct >= 80 {
		t.Fatalf("LV subsystem energy = %.1f%% of nominal; undervolting saved almost nothing", pct)
	}
	if pct <= 30 {
		t.Fatalf("LV subsystem energy = %.1f%%; below the V² floor", pct)
	}
	// The all-in ratio (common DRAM traffic included) is necessarily
	// closer to 100%.
	if all := NormalizedPercent(lv, base); all <= pct {
		t.Fatalf("total ratio %.1f%% below subsystem ratio %.1f%%", all, pct)
	}
}

func TestECCEnergyScalesWithECCCacheSize(t *testing.T) {
	// A busier ECC cache burns more ECC energy during training.
	c := DefaultCosts()
	small := FromRun(run(t, 0.625, func() protection.Scheme { return killi.New(killi.Config{Ratio: 256}) }, 0), 0.625, c)
	if small.ECC <= 0 {
		t.Fatal("no ECC energy recorded for Killi")
	}
	none := FromRun(run(t, 1.0, func() protection.Scheme { return protection.NewNone() }, 0), 1.0, c)
	if none.ECC >= small.ECC {
		t.Fatal("baseline shows more ECC energy than Killi")
	}
}

func TestBreakdownComponents(t *testing.T) {
	c := DefaultCosts()
	b := FromRun(run(t, 0.625, func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, 0), 0.625, c)
	if b.Array <= 0 || b.DRAM <= 0 || b.Leakage <= 0 {
		t.Fatalf("degenerate breakdown: %+v", b)
	}
	if b.Total() != b.Array+b.ECC+b.DRAM+b.Leakage {
		t.Fatal("Total does not sum components")
	}
}

func TestNormalizedPercentEdge(t *testing.T) {
	if NormalizedPercent(Breakdown{Array: 1}, Breakdown{}) != 0 {
		t.Fatal("zero baseline should yield 0")
	}
}

func TestVoltageScalingDirection(t *testing.T) {
	// The same activity charged at lower voltage must cost less.
	res := run(t, 0.625, func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, 0)
	c := DefaultCosts()
	lo := FromRun(res, 0.625, c)
	hi := FromRun(res, 1.0, c)
	if lo.Array >= hi.Array || lo.Leakage >= hi.Leakage {
		t.Fatal("voltage scaling inverted")
	}
	if lo.DRAM != hi.DRAM || lo.ECC != hi.ECC {
		t.Fatal("nominal-rail components must not scale with array voltage")
	}
}
