// Package energy computes L2-subsystem energy from simulation activity —
// the empirical counterpart of analytic.Table6's calibrated power model.
//
// Every counted event (data-array accesses, ECC cache touches, DRAM
// transfers) is charged a per-event energy at nominal voltage; array events
// scale with V² when the data array is undervolted, while the ECC cache,
// tag logic, and DRAM stay at nominal (the paper's dual-rail design,
// §2.4). Leakage is charged per cycle, scaling linearly with voltage.
//
// The absolute unit is arbitrary (one 64-byte nominal-voltage array read
// = 1); only ratios are meaningful, exactly as in the paper's Table 6.
package energy

import "killi/internal/gpu"

// Costs are per-event energies at nominal voltage, in units of one
// nominal-voltage 64-byte data-array read.
type Costs struct {
	// L2Access is one data-array read or write (512 bits).
	L2Access float64
	// ECCEntryAccess is one ECC cache touch (41-bit entry: tag + data).
	ECCEntryAccess float64
	// CodecOp is one encoder/decoder pass (SECDED/parity class).
	CodecOp float64
	// DRAMAccess is one line transfer to/from memory.
	DRAMAccess float64
	// LeakPerKCycle is array leakage per thousand cycles at nominal
	// voltage.
	LeakPerKCycle float64
}

// DefaultCosts returns plausible relative energies: the 41-bit ECC cache
// entry costs ~8 % of a 512-bit line access, a codec pass ~5 %, a DRAM
// line transfer ~20× an array access.
func DefaultCosts() Costs {
	return Costs{
		L2Access:       1.0,
		ECCEntryAccess: 0.08,
		CodecOp:        0.05,
		DRAMAccess:     20.0,
		LeakPerKCycle:  1.0,
	}
}

// Breakdown is the energy split for one run.
type Breakdown struct {
	Array   float64 // data-array dynamic energy (V²-scaled)
	ECC     float64 // ECC cache + codec energy (nominal rail)
	DRAM    float64 // memory traffic energy
	Leakage float64 // array leakage (V-scaled)
}

// Total returns the summed energy.
func (b Breakdown) Total() float64 { return b.Array + b.ECC + b.DRAM + b.Leakage }

// Subsystem returns the L2-subsystem energy (array + ECC + leakage),
// excluding memory traffic — the scope of the paper's Table 6, which adds
// back only the traffic a scheme *causes* (see Table6Percent).
func (b Breakdown) Subsystem() float64 { return b.Array + b.ECC + b.Leakage }

// FromRun charges a run's activity counters at data-array voltage vNorm.
func FromRun(res gpu.Result, vNorm float64, c Costs) Breakdown {
	ctr := res.Counters
	arrayEvents := float64(res.L2Accesses) + // reads (tag+data)
		float64(ctr.Get("l2.write_updates")) +
		float64(ctr.Get("l2.evictions")) // eviction readout (training)
	codecEvents := float64(res.L2Accesses) + // parity/ECC check per access
		float64(ctr.Get("killi.corrected_reads")) +
		float64(ctr.Get("killi.inverted_checks"))*2 // extra write+read pass
	eccEvents := float64(ctr.Get("killi.ecc_accesses"))

	return Breakdown{
		Array:   arrayEvents * c.L2Access * vNorm * vNorm,
		ECC:     eccEvents*c.ECCEntryAccess + codecEvents*c.CodecOp,
		DRAM:    float64(res.MemAccesses) * c.DRAMAccess,
		Leakage: float64(res.Cycles) / 1000 * c.LeakPerKCycle * vNorm,
	}
}

// NormalizedPercent expresses a run's total energy (memory traffic
// included) relative to a baseline run, as a percentage.
func NormalizedPercent(run, baseline Breakdown) float64 {
	if baseline.Total() == 0 {
		return 0
	}
	return run.Total() / baseline.Total() * 100
}

// Table6Percent is the paper's Table 6 metric computed from activity: the
// run's L2-subsystem energy plus only the memory traffic it causes beyond
// the baseline ("memory accesses on account of cache misses due to
// contention in the ECC cache"), normalized to the baseline's subsystem
// energy.
func Table6Percent(run, baseline Breakdown) float64 {
	if baseline.Subsystem() == 0 {
		return 0
	}
	extraDRAM := run.DRAM - baseline.DRAM
	if extraDRAM < 0 {
		extraDRAM = 0
	}
	return (run.Subsystem() + extraDRAM) / baseline.Subsystem() * 100
}
