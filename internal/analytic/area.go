package analytic

import (
	"fmt"
	"math"
)

// Storage-area accounting for a 2 MB, 16-way, 64 B-line L2 (Tables 4, 5
// and 7). All figures are in bits unless noted; ratios are normalized to
// the conventional SECDED-per-line design, exactly as the paper reports
// them.

// L2Geometry describes the cache being protected.
type L2Geometry struct {
	Lines    int // number of cache lines
	LineBits int // data bits per line (512)
	Sets     int
	Ways     int
}

// PaperL2 returns the paper's 2 MB / 16-way / 64 B configuration.
func PaperL2() L2Geometry {
	return L2Geometry{Lines: 32768, LineBits: 512, Sets: 2048, Ways: 16}
}

// Per-line protection constants.
const (
	secdedCheckBits = 11 // SECDED over a 64 B line
	dectedCheckBits = 21
	tecqedCheckBits = 31
	sixEC7EDBits    = 61
	olscMSECCBits   = 506 // OLSC t=11 over 512 bits (Table 7 comparisons)
	disableBit      = 1   // per-line disable flag of MBIST schemes

	// killiPerLineBits: 4 cache-resident parity bits + 2 DFH bits.
	killiPerLineBits = 6

	// eccEntryOverheadBits: the non-checkbit portion of an ECC cache
	// entry — index+way tag (11+4 for the paper's L2), valid, and 2 LRU
	// bits. Together with the 11 SECDED + 12 parity payload this gives
	// the paper's 41-bit ECC cache line (Table 3).
	eccEntryOverheadBits = 18

	// killiTrainingPayloadBits: 11 SECDED checkbits + 12 overflow parity
	// bits needed while a line is in DFH b'01. A stable-state code
	// needing at most these 23 bits (SECDED, DECTED=21) reuses them; a
	// stronger code extends the entry.
	killiTrainingPayloadBits = secdedCheckBits + 12

	// msECCAreaBitsPerLine is MS-ECC's per-line area as published in
	// Table 5 (38.6 % of a 512-bit line ⇒ ~198 bits). The paper's MS-ECC
	// configuration stores part of its OLSC checkbits in reclaimed ways,
	// so its *extra area* is below the raw 506-bit OLSC cost; we adopt
	// the published figure for Table 5 reproduction.
	msECCAreaBitsPerLine = 198
)

// SECDEDPerLineBits returns the total extra bits of the conventional
// SECDED-per-line LV design (checkbits + disable bit per line) — the
// normalization denominator of Tables 4 and 5.
func SECDEDPerLineBits(g L2Geometry) int {
	return g.Lines * (secdedCheckBits + disableBit)
}

// DECTEDPerLineBits returns DECTED-per-line extra bits.
func DECTEDPerLineBits(g L2Geometry) int {
	return g.Lines * (dectedCheckBits + disableBit)
}

// MSECCBits returns MS-ECC's extra bits per Table 5's published density.
func MSECCBits(g L2Geometry) int {
	return g.Lines * msECCAreaBitsPerLine
}

// KilliECCEntryBits returns the size of one ECC cache entry when the
// stable-state code needs codeCheckBits: the training payload (23 bits) is
// reused when the code fits within it (§5.2's DECTED trick), otherwise the
// entry holds the code alongside the 12 training parity bits.
func KilliECCEntryBits(codeCheckBits int) int {
	payload := killiTrainingPayloadBits
	if codeCheckBits > payload {
		payload = codeCheckBits + 12
	}
	return payload + eccEntryOverheadBits
}

// KilliBits returns Killi's total extra bits for an ECC cache with one
// entry per ratio L2 lines, using a stable-state code of codeCheckBits
// (11 = SECDED, 21 = DECTED, …).
func KilliBits(g L2Geometry, ratio, codeCheckBits int) int {
	entries := g.Lines / ratio
	return g.Lines*killiPerLineBits + entries*KilliECCEntryBits(codeCheckBits)
}

// KilliRatio returns Killi's storage normalized to SECDED-per-line — the
// cells of Tables 4 and 5.
func KilliRatio(g L2Geometry, ratio, codeCheckBits int) float64 {
	return float64(KilliBits(g, ratio, codeCheckBits)) / float64(SECDEDPerLineBits(g))
}

// PercentOverL2 expresses extra bits as a percentage of the L2 data
// capacity (Table 5's last row).
func PercentOverL2(g L2Geometry, extraBits int) float64 {
	return float64(extraBits) / float64(g.Lines*g.LineBits) * 100
}

// Table4Row is one row of Table 4: a stable-state code across the five
// ECC cache ratios.
type Table4Row struct {
	Code   string
	Ratios map[int]float64 // ECC-cache ratio → area normalized to SECDED
}

// Table4 reproduces the paper's Table 4 (Killi with DECTED, TECQED and
// 6EC7ED codes, normalized to SECDED-per-line).
func Table4(g L2Geometry) []Table4Row {
	codes := []struct {
		name string
		bits int
	}{
		{"DECTED", dectedCheckBits},
		{"TECQED", tecqedCheckBits},
		{"6EC7ED", sixEC7EDBits},
	}
	out := make([]Table4Row, 0, len(codes))
	for _, c := range codes {
		row := Table4Row{Code: c.name, Ratios: map[int]float64{}}
		for _, r := range []int{256, 128, 64, 32, 16} {
			row.Ratios[r] = KilliRatio(g, r, c.bits)
		}
		out = append(out, row)
	}
	return out
}

// Table5Entry is one column of Table 5.
type Table5Entry struct {
	Scheme    string
	Bits      int
	Ratio     float64 // normalized to SECDED-per-line
	PctOverL2 float64
}

// Table5 reproduces the area comparison of Table 5 for the paper's L2.
func Table5(g L2Geometry) []Table5Entry {
	secded := SECDEDPerLineBits(g)
	entries := []Table5Entry{
		{Scheme: "DECTED", Bits: DECTEDPerLineBits(g)},
		{Scheme: "MS-ECC", Bits: MSECCBits(g)},
		{Scheme: "SECDED", Bits: secded},
	}
	for _, r := range []int{256, 128, 64, 32, 16} {
		entries = append(entries, Table5Entry{
			Scheme: fmt.Sprintf("Killi 1:%d", r),
			Bits:   KilliBits(g, r, secdedCheckBits),
		})
	}
	for i := range entries {
		entries[i].Ratio = float64(entries[i].Bits) / float64(secded)
		entries[i].PctOverL2 = PercentOverL2(g, entries[i].Bits)
	}
	return entries
}

// KilliBytesForRatio returns Killi's total overhead in kilobytes — the
// paper quotes 24.6 KB (1:256) to 34.25 KB (1:16) for the 2 MB L2.
func KilliBytesForRatio(g L2Geometry, ratio int) float64 {
	return float64(KilliBits(g, ratio, secdedCheckBits)) / 8 / 1024
}

// Table7Row is one row of Table 7: Killi-with-OLSC area normalized to
// MS-ECC-with-OLSC at a target voltage.
type Table7Row struct {
	Voltage        float64
	CapacityTarget float64 // % of L2 lines usable with OLSC t=11
	ECCRatio       int     // ECC cache sizing achieving that capacity
	KilliOverMSECC float64 // Killi area / MS-ECC area
}

// Table7 reproduces Table 7: at 0.6×VDD Killi protects one in eight lines,
// at 0.575×VDD one in two, against MS-ECC provisioning OLSC for every
// line. pcell maps voltage to the per-cell failure probability.
func Table7(g L2Geometry, pcell func(v float64) float64) []Table7Row {
	msecc := g.Lines * olscMSECCBits
	rows := []Table7Row{
		{Voltage: 0.600, ECCRatio: 8},
		{Voltage: 0.575, ECCRatio: 2},
	}
	for i := range rows {
		p := pcell(rows[i].Voltage)
		// Usable capacity: lines with ≤11 faults over data+checkbits.
		rows[i].CapacityTarget = binomCDF(g.LineBits+olscMSECCBits, 11, p) * 100
		killiBits := g.Lines*killiPerLineBits +
			(g.Lines/rows[i].ECCRatio)*KilliECCEntryBits(olscMSECCBits)
		rows[i].KilliOverMSECC = float64(killiBits) / float64(msecc)
	}
	return rows
}

// roundTo is a small helper for table rendering.
func roundTo(x float64, digits int) float64 {
	m := math.Pow(10, float64(digits))
	return math.Round(x*m) / m
}
