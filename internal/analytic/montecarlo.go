package analytic

import (
	"killi/internal/bitvec"
	"killi/internal/ecc/parity"
	"killi/internal/ecc/secded"
	"killi/internal/xrand"
)

// Monte Carlo validation of the §5.3 closed forms: instead of binomial
// algebra, inject random stuck-at fault patterns into random data and run
// the *real* classification machinery (16-segment interleaved parity +
// SECDED syndrome/global parity + post-correction recheck), counting how
// often the verdict disagrees with the ground-truth fault count.
//
// This is the cross-check the paper cannot print: its Figure 6 comes from
// the formulas alone, while here the formulas and the implementation
// validate each other.

// MCResult summarizes a Monte Carlo coverage estimation.
type MCResult struct {
	Trials int
	// Misclassified counts trials whose classification verdict was wrong:
	// a multi-fault line not flagged for disable, a corrupt line declared
	// clean, or a miscorrection that slipped the recheck.
	Misclassified int
	// ByTrueCount histograms misclassifications by the true number of
	// unmasked faults (index clamped at 4).
	ByTrueCount [5]int
}

// Coverage returns the estimated correct-classification percentage.
func (m MCResult) Coverage() float64 {
	if m.Trials == 0 {
		return 100
	}
	return (1 - float64(m.Misclassified)/float64(m.Trials)) * 100
}

// mcClassifier bundles the real codec machinery for reuse across trials.
type mcClassifier struct {
	code *secded.Code
	p16  parity.Scheme
}

func newMCClassifier() *mcClassifier {
	return &mcClassifier{
		code: secded.New(bitvec.LineBits),
		p16:  parity.NewInterleaved(16),
	}
}

// verdict classifies a corrupted line exactly as Killi's Initial-state FSM
// does, returning the number of faults the classifier believes the line
// has: 0, 1, or 2 (meaning "two or more; disable").
func (c *mcClassifier) verdict(truth, corrupted bitvec.Line, stored16 uint64, check secded.Check) int {
	_, segMis := c.p16.Check(corrupted, stored16)
	syn, gErr := c.code.SyndromeLine(corrupted, check)
	switch {
	case segMis == 0 && syn == 0 && !gErr:
		return 0
	case segMis == 1 && syn != 0 && gErr:
		fixed := corrupted
		res := c.code.DecodeLine(&fixed, check)
		if res.Status != secded.CorrectedData && res.Status != secded.CorrectedCheck {
			return 2
		}
		if _, bad := c.p16.Check(fixed, stored16); bad != 0 {
			return 2 // post-correction recheck caught the alias
		}
		if fixed != truth {
			// Miscorrection that passed every check: a genuine Killi
			// classification failure — the caller scores it.
			return -1
		}
		return 1
	default:
		return 2
	}
}

// MonteCarloKilliCoverage runs trials of Killi's classification at
// per-cell fault probability pCell: sample the line's stuck-at faults,
// generate metadata from true data, corrupt through the fault set, and
// compare the FSM verdict against ground truth.
func MonteCarloKilliCoverage(r *xrand.Rand, pCell float64, trials int) MCResult {
	c := newMCClassifier()
	res := MCResult{Trials: trials}
	for t := 0; t < trials; t++ {
		var data bitvec.Line
		for w := range data {
			data[w] = r.Uint64()
		}
		stored16 := c.p16.Generate(data)
		check := c.code.EncodeLine(data)

		// Sample stuck-at faults over the 512 data cells and apply the
		// unmasked ones.
		corrupted := data
		unmasked := 0
		for bit := r.Geometric(pCell); bit < bitvec.LineBits; {
			stuckAt := uint(r.Uint64() & 1)
			if data.Bit(bit) != stuckAt {
				corrupted.SetBit(bit, stuckAt)
				unmasked++
			}
			skip := r.Geometric(pCell)
			if skip >= bitvec.LineBits {
				break
			}
			bit += skip + 1
		}

		got := c.verdict(data, corrupted, stored16, check)
		ok := false
		switch {
		case got == -1:
			ok = false // silent miscorrection
		case unmasked == 0:
			ok = got == 0
		case unmasked == 1:
			ok = got == 1
		default:
			ok = got == 2
		}
		if !ok {
			res.Misclassified++
			idx := unmasked
			if idx > 4 {
				idx = 4
			}
			res.ByTrueCount[idx]++
		}
	}
	return res
}

// MonteCarloSECDEDDetect estimates the detect-only coverage of bare SECDED
// (classify correctly iff the visible fault count is ≤ 2), the Figure 6
// SECDED curve, empirically.
func MonteCarloSECDEDDetect(r *xrand.Rand, pCell float64, trials int) MCResult {
	res := MCResult{Trials: trials}
	for t := 0; t < trials; t++ {
		unmasked := 0
		for bit := r.Geometric(pCell); bit < bitvec.LineBits; {
			if r.Uint64()&1 == 0 {
				unmasked++
			}
			skip := r.Geometric(pCell)
			if skip >= bitvec.LineBits {
				break
			}
			bit += skip + 1
		}
		if unmasked > 2 {
			res.Misclassified++
			idx := unmasked
			if idx > 4 {
				idx = 4
			}
			res.ByTrueCount[idx]++
		}
	}
	return res
}
