package analytic

import "math"

// Power model behind Table 6: L2 data+tag array power at 0.625×VDD,
// normalized to a fault-free cache at nominal voltage (= 100).
//
// The model is activity-based and calibrated:
//
//   - the dominant term is dynamic-power voltage scaling, V²;
//   - storing and cycling checkbits scales the array energy by
//     (1 + extraBitsPerLine / 512);
//   - each scheme adds a decode/maintenance term: heavyweight BCH decoding
//     for DECTED, DMR comparison for FLAIR, cheap majority logic for
//     MS-ECC, and for Killi the ECC cache's access energy, which grows
//     with its size (bitline/wordline length ~ √entries) — this is why the
//     1:16 configuration burns more power than 1:256 despite causing fewer
//     misses (§5.4 of the paper's Table 6 discussion).
const (
	dectedDecodeCost = 3.0
	msECCDecodeCost  = 1.1
	flairDecodeCost  = 2.6
	killiBaseCost    = 0.127
	killiECCCost     = 10.3 // scaled by 1/√ratio
)

// PowerBase returns the voltage-scaled baseline array power (in % of
// nominal).
func PowerBase(v float64) float64 { return 100 * v * v }

// storageFactor converts extra stored bits per line into an array-energy
// multiplier.
func storageFactor(extraBitsPerLine float64) float64 {
	return 1 + extraBitsPerLine/512
}

// PowerDECTED returns DECTED-per-line's normalized power at voltage v.
func PowerDECTED(v float64) float64 {
	return PowerBase(v)*storageFactor(dectedCheckBits+disableBit) + dectedDecodeCost
}

// PowerMSECC returns MS-ECC's normalized power at voltage v.
func PowerMSECC(v float64) float64 {
	return PowerBase(v)*storageFactor(msECCAreaBitsPerLine) + msECCDecodeCost
}

// PowerFLAIR returns FLAIR's normalized power at voltage v (steady state,
// SECDED + disable bit, plus DMR/decode overheads).
func PowerFLAIR(v float64) float64 {
	return PowerBase(v)*storageFactor(secdedCheckBits+disableBit) + flairDecodeCost
}

// PowerKilli returns Killi's normalized power at voltage v for an ECC
// cache of one entry per ratio L2 lines.
func PowerKilli(v float64, ratio int) float64 {
	extra := float64(killiPerLineBits) + float64(KilliECCEntryBits(secdedCheckBits))/float64(ratio)
	return PowerBase(v)*storageFactor(extra) + killiBaseCost + killiECCCost/math.Sqrt(float64(ratio))
}

// Table6Entry is one cell of Table 6.
type Table6Entry struct {
	Scheme string
	Power  float64 // % of nominal fault-free
}

// Table6 reproduces the paper's Table 6 at the given voltage (0.625 in the
// paper).
func Table6(v float64) []Table6Entry {
	out := []Table6Entry{
		{"DECTED", PowerDECTED(v)},
		{"MS-ECC", PowerMSECC(v)},
		{"FLAIR", PowerFLAIR(v)},
	}
	for _, r := range []int{256, 128, 64, 32, 16} {
		out = append(out, Table6Entry{
			Scheme: killiName(r),
			Power:  PowerKilli(v, r),
		})
	}
	return out
}

func killiName(ratio int) string {
	switch ratio {
	case 256:
		return "Killi 1:256"
	case 128:
		return "Killi 1:128"
	case 64:
		return "Killi 1:64"
	case 32:
		return "Killi 1:32"
	case 16:
		return "Killi 1:16"
	default:
		return "Killi"
	}
}

// PowerSavingVsNominal returns the percentage power reduction a scheme
// achieves against the nominal-voltage fault-free baseline — the paper's
// headline "Killi can reduce the power consumption of the L2 cache by
// 59.3 %" corresponds to the middle Killi configurations at 0.625×VDD.
func PowerSavingVsNominal(power float64) float64 { return 100 - power }

// OvervoltHeadroom closes the paper's introductory motivation: "undervolting
// of GPU L2 caches … allows for graceful over-volting of compute units for
// improved performance within the allowed power budget". Given the L2's
// share of total GPU power and the fractional L2 power saving a scheme
// achieves, it returns the iso-power CU voltage uplift (CU power scales as
// V³ when frequency tracks voltage).
func OvervoltHeadroom(l2Share, l2SavingFraction float64) (cuVoltageUplift float64) {
	if l2Share <= 0 || l2Share >= 1 || l2SavingFraction <= 0 {
		return 0
	}
	freed := l2Share * l2SavingFraction
	cuShare := 1 - l2Share
	return math.Cbrt(1+freed/cuShare) - 1
}
