// Package analytic implements the paper's closed-form models: the §5.3
// fault-classification coverage equations behind Figure 6, the storage-area
// accounting behind Tables 4, 5 and 7, and the calibrated power model
// behind Table 6.
//
// All binomial arithmetic runs in log space (log-gamma based) so the
// formulas stay stable for per-cell probabilities down to 1e-14.
package analytic

import "math"

// logChoose returns ln C(n, k).
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	ln2, _ := math.Lgamma(float64(k + 1))
	ln3, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - ln2 - ln3
}

// binomPMF returns P(X = k) for X ~ Binomial(n, p).
func binomPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// binomCDF returns P(X <= k).
func binomCDF(n, k int, p float64) float64 {
	if k >= n {
		return 1
	}
	sum := 0.0
	for i := 0; i <= k; i++ {
		sum += binomPMF(n, i, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Paper constants (§5.3): SECDED protects 523 bits (512 data + 11 check);
// each of the 16 parity segments covers 33 bits (32 data + 1 parity).
const (
	secdedWordBits = 523
	segments       = 16
	segmentBits    = 33
)

// SECDEDFailProb is P_fail(SECDED): the probability of three or more cell
// failures in the 523-bit protected word (the paper conservatively treats
// every ≥3-error pattern as a SECDED failure).
func SECDEDFailProb(pCell float64) float64 {
	return 1 - binomCDF(secdedWordBits, 2, pCell)
}

// SegProbs returns the paper's per-segment probabilities over a 33-bit
// segment: zero failures, an even (≥2) number, and an odd (≥3) number.
func SegProbs(pCell float64) (p0, pEven, pOdd float64) {
	p0 = binomPMF(segmentBits, 0, pCell)
	for i := 2; i <= segmentBits; i += 2 {
		pEven += binomPMF(segmentBits, i, pCell)
	}
	for i := 3; i <= segmentBits; i += 2 {
		pOdd += binomPMF(segmentBits, i, pCell)
	}
	return p0, pEven, pOdd
}

// SegParityFailProb is the paper's P_fail(Seg.Parity): the probability that
// the 16-segment interleaved parity fails to flag a multi-bit failure —
// at most one segment with an odd (≥3) count while every other segment has
// zero or an even number of failures. It follows §5.3's published
// formulation:
//
//	P_fail = P¹⁵seg0·PsegOdd + Σᵢ P¹⁶⁻ⁱsegEven·Pⁱseg0
func SegParityFailProb(pCell float64) float64 {
	p0, pEven, pOdd := SegProbs(pCell)
	pn := func(p float64, n int) float64 {
		// Pⁿ of the paper: binomial over segments.
		return math.Exp(logChoose(segments, n) + float64(n)*safeLog(p) + float64(segments-n)*math.Log1p(-clamp01(p)))
	}
	fail := pn(p0, segments-1) * pOdd
	for i := 0; i <= segments-1; i++ {
		fail += pn(pEven, segments-i) * math.Pow(p0, float64(i))
	}
	return clamp01(fail)
}

func safeLog(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	return math.Log(p)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// KilliFailProb is P_fail(Killi) = P_fail(SECDED) × P_fail(Seg.Parity):
// both independent detectors must fail for a line to be misclassified.
func KilliFailProb(pCell float64) float64 {
	return SECDEDFailProb(pCell) * SegParityFailProb(pCell)
}

// KilliCoverage is the §5.3 coverage: the percentage of lines whose fault
// count Killi classifies correctly.
func KilliCoverage(pCell float64) float64 {
	return (1 - KilliFailProb(pCell)) * 100
}

// DetectCoverage is the coverage of a plain detect-up-to-d code over a
// word of the given bit width: the fraction of lines with at most d
// failures (Figure 6's DECTED d=3, MS-ECC d=11 curves; SECDED alone is
// d=2). Following the paper, no MBIST pre-characterization is assumed.
func DetectCoverage(wordBits, d int, pCell float64) float64 {
	return binomCDF(wordBits, d, pCell) * 100
}

// FLAIRCoverage models FLAIR's training-time coverage: SECDED plus Dual
// Modular Redundancy. A fault pattern escapes only if SECDED fails (≥3
// errors) and every failing cell fails identically in both DMR copies —
// each erroneous bit needs its twin to be faulty (p) and stuck at the
// matching polarity (×1/2).
func FLAIRCoverage(pCell float64) float64 {
	escape := SECDEDFailProb(pCell) * math.Pow(pCell/2, 3)
	return (1 - clamp01(escape)) * 100
}

// MaskedFaultSDCProb is the §5.6.2 analysis: the probability that a line
// carries a multi-bit masked LV fault confined to one 128-bit fold segment
// — the pattern that trains to b'00 and can silently corrupt when a later
// write unmasks it. The paper reports 0.003 % at 0.625×VDD.
//
// Derivation: exactly two faults (higher counts are negligible at the
// operating point) × both landing in the same 4-way interleaved fold
// segment (127/511) × both masked under the resident data (1/4).
func MaskedFaultSDCProb(pCell float64) float64 {
	pTwo := binomPMF(512, 2, pCell)
	sameSegment := 127.0 / 511.0
	bothMasked := 0.25
	return pTwo * sameSegment * bothMasked
}

// CoveragePoint is one Figure 6 sample.
type CoveragePoint struct {
	Voltage float64
	PCell   float64
	Killi   float64
	FLAIR   float64
	SECDED  float64
	DECTED  float64
	MSECC   float64
}

// CoverageCurve evaluates every Figure 6 series at the given voltages
// using pcell(v) (typically faultmodel.Model.CellFailureProb at 1 GHz).
func CoverageCurve(voltages []float64, pcell func(v float64) float64) []CoveragePoint {
	out := make([]CoveragePoint, 0, len(voltages))
	for _, v := range voltages {
		p := pcell(v)
		out = append(out, CoveragePoint{
			Voltage: v,
			PCell:   p,
			Killi:   KilliCoverage(p),
			FLAIR:   FLAIRCoverage(p),
			SECDED:  DetectCoverage(secdedWordBits, 2, p),
			DECTED:  DetectCoverage(533, 3, p),
			MSECC:   DetectCoverage(1018, 11, p),
		})
	}
	return out
}
