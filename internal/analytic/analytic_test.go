package analytic

import (
	"math"
	"testing"

	"killi/internal/faultmodel"
	"killi/internal/xrand"
)

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10},
		{10, 0, 1},
		{10, 10, 1},
		{523, 1, 523},
	}
	for _, c := range cases {
		got := math.Exp(logChoose(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(logChoose(5, 6), -1) || !math.IsInf(logChoose(5, -1), -1) {
		t.Fatal("out-of-range logChoose not -Inf")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, p := range []float64{0.001, 0.1, 0.5, 0.9} {
		sum := 0.0
		for k := 0; k <= 33; k++ {
			sum += binomPMF(33, k, p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("p=%v: pmf sums to %v", p, sum)
		}
	}
}

func TestBinomEdgeCases(t *testing.T) {
	if binomPMF(10, 0, 0) != 1 || binomPMF(10, 3, 0) != 0 {
		t.Fatal("p=0 pmf wrong")
	}
	if binomPMF(10, 10, 1) != 1 || binomPMF(10, 9, 1) != 0 {
		t.Fatal("p=1 pmf wrong")
	}
	if binomCDF(10, 10, 0.3) != 1 {
		t.Fatal("full-range CDF != 1")
	}
}

func TestSECDEDFailProbMonotone(t *testing.T) {
	prev := 0.0
	for p := 1e-8; p < 0.1; p *= 2 {
		f := SECDEDFailProb(p)
		if f < prev {
			t.Fatalf("P_fail(SECDED) not monotone at p=%v", p)
		}
		if f < 0 || f > 1 {
			t.Fatalf("P_fail out of range: %v", f)
		}
		prev = f
	}
}

func TestSECDEDFailAgainstDirectSum(t *testing.T) {
	// Cross-check against the literal paper formula Σ_{k=3}^{523}.
	for _, p := range []float64{1e-4, 1e-3, 1e-2} {
		direct := 0.0
		for k := 3; k <= secdedWordBits; k++ {
			direct += binomPMF(secdedWordBits, k, p)
		}
		got := SECDEDFailProb(p)
		if math.Abs(got-direct) > 1e-9 {
			t.Fatalf("p=%v: %v vs direct %v", p, got, direct)
		}
	}
}

func TestSegProbsConsistent(t *testing.T) {
	for _, p := range []float64{1e-4, 1e-3, 1e-2, 0.05} {
		p0, pEven, pOdd := SegProbs(p)
		// p0 + pEven + pOdd + P(exactly 1) = 1.
		p1 := binomPMF(segmentBits, 1, p)
		if math.Abs(p0+pEven+pOdd+p1-1) > 1e-9 {
			t.Fatalf("p=%v: segment probabilities inconsistent", p)
		}
	}
}

func TestKilliFailIsProductAndTiny(t *testing.T) {
	p := 8e-5 // ≈0.625×VDD
	kf := KilliFailProb(p)
	if kf != SECDEDFailProb(p)*SegParityFailProb(p) {
		t.Fatal("Killi fail not the §5.3 product")
	}
	if kf > 1e-6 {
		t.Fatalf("P_fail(Killi) = %v at 0.625×VDD, want ≈ 0", kf)
	}
}

func TestCoverageAnchors(t *testing.T) {
	m := faultmodel.Default()
	pc := func(v float64) float64 { return m.CellFailureProb(v, 1.0) }

	// Figure 6: at 0.6×VDD every technique classifies essentially all
	// lines.
	for name, cov := range map[string]float64{
		"killi":  KilliCoverage(pc(0.600)),
		"flair":  FLAIRCoverage(pc(0.600)),
		"dected": DetectCoverage(533, 3, pc(0.600)),
		"msecc":  DetectCoverage(1018, 11, pc(0.600)),
	} {
		if cov < 99 {
			t.Errorf("%s coverage %.2f%% at 0.600×VDD, want ≥ 99%%", name, cov)
		}
	}

	// Below 0.6 only Killi and FLAIR stay near 100%: at 0.55 the gap to
	// SECDED/DECTED must be pronounced.
	p55 := pc(0.55)
	killi, flair := KilliCoverage(p55), FLAIRCoverage(p55)
	secded := DetectCoverage(secdedWordBits, 2, p55)
	dected := DetectCoverage(533, 3, p55)
	if killi < 99 || flair < 99 {
		t.Fatalf("Killi/FLAIR coverage at 0.55: %.2f / %.2f, want ≥ 99%%", killi, flair)
	}
	if secded > 50 || dected > 80 {
		t.Fatalf("SECDED/DECTED coverage at 0.55: %.2f / %.2f — should have collapsed", secded, dected)
	}
	if killi < dected || dected < secded {
		t.Fatal("coverage ordering violated: Killi ≥ DECTED ≥ SECDED expected")
	}
}

func TestCoverageCurveShape(t *testing.T) {
	m := faultmodel.Default()
	vs := []float64{0.50, 0.55, 0.575, 0.60, 0.625, 0.65, 0.70}
	curve := CoverageCurve(vs, func(v float64) float64 { return m.CellFailureProb(v, 1.0) })
	if len(curve) != len(vs) {
		t.Fatal("curve length wrong")
	}
	for i := 1; i < len(curve); i++ {
		// The plain detect-up-to-d coverages are binomial CDFs: monotone
		// non-decreasing in voltage. (Killi's joint-failure product is
		// allowed to wiggle at extreme fault rates — detection gets
		// easier again when every segment has errors.)
		if curve[i].SECDED+1e-9 < curve[i-1].SECDED ||
			curve[i].DECTED+1e-9 < curve[i-1].DECTED ||
			curve[i].MSECC+1e-9 < curve[i-1].MSECC {
			t.Fatalf("coverage not monotone between %.3f and %.3f", vs[i-1], vs[i])
		}
	}
	for _, pt := range curve {
		if pt.Killi < pt.SECDED-1e-9 {
			t.Fatalf("v=%.3f: Killi (%.3f) below bare SECDED (%.3f)", pt.Voltage, pt.Killi, pt.SECDED)
		}
		// The paper's headline: Killi stays near 100% everywhere.
		if pt.Killi < 99 {
			t.Fatalf("v=%.3f: Killi coverage %.3f%%", pt.Voltage, pt.Killi)
		}
	}
}

func TestKilliAreaMatchesPaperKB(t *testing.T) {
	// Paper §5.4: "For a 2MB L2, the Killi area overhead ranges from
	// 24.6KB (1:256) to 34.25KB (1:16)".
	g := PaperL2()
	if got := KilliBytesForRatio(g, 256); math.Abs(got-24.6) > 0.1 {
		t.Fatalf("Killi 1:256 = %.2f KB, paper 24.6 KB", got)
	}
	if got := KilliBytesForRatio(g, 16); math.Abs(got-34.25) > 0.1 {
		t.Fatalf("Killi 1:16 = %.2f KB, paper 34.25 KB", got)
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	want := map[string]struct {
		ratio float64
		tol   float64
	}{
		"DECTED":      {1.9, 0.1},
		"MS-ECC":      {18, 2.0}, // paper's published density; rounding is coarse
		"SECDED":      {1.0, 0.001},
		"Killi 1:256": {0.51, 0.01},
		"Killi 1:128": {0.52, 0.01},
		"Killi 1:64":  {0.55, 0.01},
		"Killi 1:32":  {0.60, 0.01},
		"Killi 1:16":  {0.71, 0.01},
	}
	for _, e := range Table5(PaperL2()) {
		w, ok := want[e.Scheme]
		if !ok {
			t.Fatalf("unexpected scheme %q", e.Scheme)
		}
		if math.Abs(e.Ratio-w.ratio) > w.tol {
			t.Errorf("%s ratio = %.3f, paper %.2f", e.Scheme, e.Ratio, w.ratio)
		}
	}
	// Percent-over-L2 row: SECDED 2.3%, DECTED 4.3%, Killi 1.2–1.67%.
	for _, e := range Table5(PaperL2()) {
		switch e.Scheme {
		case "SECDED":
			if math.Abs(e.PctOverL2-2.3) > 0.1 {
				t.Errorf("SECDED %% over L2 = %.2f, paper 2.3", e.PctOverL2)
			}
		case "DECTED":
			if math.Abs(e.PctOverL2-4.3) > 0.1 {
				t.Errorf("DECTED %% over L2 = %.2f, paper 4.3", e.PctOverL2)
			}
		case "Killi 1:256":
			if math.Abs(e.PctOverL2-1.2) > 0.05 {
				t.Errorf("Killi 1:256 %% = %.2f, paper 1.2", e.PctOverL2)
			}
		case "Killi 1:16":
			if math.Abs(e.PctOverL2-1.67) > 0.05 {
				t.Errorf("Killi 1:16 %% = %.2f, paper 1.67", e.PctOverL2)
			}
		}
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	want := map[string]map[int]float64{
		"DECTED": {256: 0.51, 128: 0.53, 64: 0.55, 32: 0.61, 16: 0.71},
		"TECQED": {256: 0.52, 128: 0.54, 64: 0.58, 32: 0.66, 16: 0.82},
		"6EC7ED": {256: 0.53, 128: 0.56, 64: 0.62, 32: 0.74, 16: 0.97},
	}
	for _, row := range Table4(PaperL2()) {
		for r, got := range row.Ratios {
			if math.Abs(got-want[row.Code][r]) > 0.015 {
				t.Errorf("%s 1:%d = %.3f, paper %.2f", row.Code, r, got, want[row.Code][r])
			}
		}
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	want := map[string]float64{
		"DECTED":      43.7,
		"MS-ECC":      55.3,
		"FLAIR":       42.6,
		"Killi 1:256": 40.3,
		"Killi 1:128": 40.7,
		"Killi 1:64":  41.1,
		"Killi 1:32":  41.7,
		"Killi 1:16":  42.4,
	}
	for _, e := range Table6(0.625) {
		if math.Abs(e.Power-want[e.Scheme]) > 0.5 {
			t.Errorf("%s power = %.2f%%, paper %.1f%%", e.Scheme, e.Power, want[e.Scheme])
		}
	}
}

func TestPowerSavingHeadline(t *testing.T) {
	// "an 8-CU GPU with Killi can reduce the power consumption of the L2
	// cache by 59.3%" — 100 − 40.7 for the 1:128 configuration.
	saving := PowerSavingVsNominal(PowerKilli(0.625, 128))
	if math.Abs(saving-59.3) > 0.6 {
		t.Fatalf("headline saving = %.1f%%, paper 59.3%%", saving)
	}
}

func TestPowerOrdering(t *testing.T) {
	// MS-ECC is the most power-hungry; Killi configurations are the
	// least; bigger ECC caches burn more than smaller ones.
	v := 0.625
	if !(PowerMSECC(v) > PowerDECTED(v) && PowerDECTED(v) > PowerFLAIR(v)) {
		t.Fatal("existing-scheme power ordering wrong")
	}
	if !(PowerKilli(v, 16) > PowerKilli(v, 64) && PowerKilli(v, 64) > PowerKilli(v, 256)) {
		t.Fatal("Killi power not monotone in ECC cache size")
	}
	if PowerKilli(v, 256) >= PowerFLAIR(v) {
		t.Fatal("smallest Killi not below FLAIR")
	}
}

func TestTable7MatchesPaperShape(t *testing.T) {
	m := faultmodel.Default()
	rows := Table7(PaperL2(), func(v float64) float64 { return m.CellFailureProb(v, 1.0) })
	if len(rows) != 2 {
		t.Fatal("Table 7 must have two voltage rows")
	}
	r600, r575 := rows[0], rows[1]
	// Paper: 99.8% capacity at 0.6, 69.6% at 0.575 — we require the
	// calibrated fault model to land in the same regime.
	if r600.CapacityTarget < 99 {
		t.Fatalf("capacity at 0.600 = %.2f%%, paper 99.8%%", r600.CapacityTarget)
	}
	if r575.CapacityTarget < 55 || r575.CapacityTarget > 85 {
		t.Fatalf("capacity at 0.575 = %.2f%%, paper 69.6%%", r575.CapacityTarget)
	}
	// Killi area advantage: large at 0.6 (paper 17%), smaller at 0.575
	// (paper 65%), and strictly ordered.
	if r600.KilliOverMSECC > 0.30 {
		t.Fatalf("Killi/MS-ECC at 0.600 = %.2f, paper 0.17", r600.KilliOverMSECC)
	}
	if r575.KilliOverMSECC < 0.40 || r575.KilliOverMSECC > 0.80 {
		t.Fatalf("Killi/MS-ECC at 0.575 = %.2f, paper 0.65", r575.KilliOverMSECC)
	}
	if r600.KilliOverMSECC >= r575.KilliOverMSECC {
		t.Fatal("area advantage must shrink as voltage drops")
	}
}

func TestRoundTo(t *testing.T) {
	if roundTo(0.5149, 2) != 0.51 || roundTo(0.715, 2) != 0.72 {
		t.Fatal("roundTo wrong")
	}
}

func TestSegParityFailBounds(t *testing.T) {
	for p := 1e-9; p <= 0.3; p *= 3 {
		f := SegParityFailProb(p)
		if f < 0 || f > 1 {
			t.Fatalf("p=%v: seg parity fail %v out of [0,1]", p, f)
		}
	}
}

func TestMonteCarloValidatesKilliFormula(t *testing.T) {
	// At 0.575×VDD-equivalent cell probability, both the closed form and
	// the Monte Carlo estimate of Killi's classification coverage must
	// sit near 100 %, far above bare SECDED's.
	r := xrand.New(77)
	const p = 1e-2
	mc := MonteCarloKilliCoverage(r, p, 40000)
	// The Monte Carlo runs slightly below the closed form (see the
	// independence-assumption note in TestMonteCarloCleanAtOperatingPoint)
	// but must stay near 100 %.
	if mc.Coverage() < 98.5 {
		t.Fatalf("Monte Carlo Killi coverage %.3f%% at p=%v", mc.Coverage(), p)
	}
	formula := KilliCoverage(p)
	if formula < 99.0 {
		t.Fatalf("formula coverage %.3f%%", formula)
	}
	sec := MonteCarloSECDEDDetect(xrand.New(78), p, 40000)
	if sec.Coverage() > mc.Coverage() {
		t.Fatalf("bare SECDED (%.2f%%) beat Killi (%.2f%%)", sec.Coverage(), mc.Coverage())
	}
	// SECDED alone collapses at this fault rate (formula says ~10%
	// counting masked faults ~ half visible: noticeably below 90%).
	if sec.Coverage() > 90 {
		t.Fatalf("bare SECDED coverage %.2f%% did not degrade at p=%v", sec.Coverage(), p)
	}
}

func TestMonteCarloSECDEDMatchesBinomial(t *testing.T) {
	// The SECDED detect-only Monte Carlo must agree with the binomial
	// CDF over visible faults (p/2 per cell after masking).
	r := xrand.New(79)
	const p = 6e-3
	mc := MonteCarloSECDEDDetect(r, p, 60000)
	want := DetectCoverage(512, 2, p/2)
	if diff := mc.Coverage() - want; diff > 0.5 || diff < -0.5 {
		t.Fatalf("MC %.3f%% vs binomial %.3f%%", mc.Coverage(), want)
	}
}

func TestMonteCarloCleanAtOperatingPoint(t *testing.T) {
	// At the paper's 0.625×VDD operating point misclassification is
	// essentially unobservable: the rate is bounded by the ≥3-fault line
	// population (~1e-5) times the joint-failure geometry (~0.2).
	//
	// Reproduction finding: the paper's product formula
	// P_fail(SECDED)·P_fail(Seg.Parity) treats the detectors as
	// independent, but conditioned on a SECDED failure (≥3 errors) the
	// parity-misleading geometry has probability ~0.2, not the tiny
	// unconditional value — so the closed form *underestimates* the
	// true misclassification rate by orders of magnitude. Both are still
	// "≈100 %% coverage" at the rendering precision of Figure 6.
	r := xrand.New(80)
	mc := MonteCarloKilliCoverage(r, 8e-5, 30000)
	if mc.Misclassified > 3 {
		t.Fatalf("%d misclassifications at 0.625×VDD equivalent", mc.Misclassified)
	}
	if mc.Coverage() < 99.99 {
		t.Fatalf("coverage %.4f%%", mc.Coverage())
	}
}

func TestMCResultCoverageEdges(t *testing.T) {
	if (MCResult{}).Coverage() != 100 {
		t.Fatal("empty result coverage")
	}
	if (MCResult{Trials: 4, Misclassified: 1}).Coverage() != 75 {
		t.Fatal("coverage math wrong")
	}
}

func TestMaskedFaultSDCWindowMatchesPaper(t *testing.T) {
	// §5.6.2: "We determined the probability of such a scenario to be
	// 0.003%" at 0.625×VDD. Our calibrated P_cell puts the same closed
	// form in the 0.001–0.01% band.
	got := MaskedFaultSDCProb(8e-5) * 100
	if got < 0.001 || got > 0.01 {
		t.Fatalf("masked-SDC window = %.5f%%, paper reports 0.003%%", got)
	}
	// And the paper's complementary phrasing: 99.997% of lines are safe.
	if safe := 100 - got; safe < 99.99 {
		t.Fatalf("safe fraction %.4f%%", safe)
	}
}

func TestMaskedFaultSDCMonteCarlo(t *testing.T) {
	// Empirical cross-check of the closed form at an exaggerated fault
	// rate (so the window is observable): sample fault pairs and count
	// same-fold-segment, both-masked patterns.
	r := xrand.New(91)
	const p = 5e-3
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		// Sample the fault count cheaply.
		n := r.Binomial(512, p)
		if n != 2 {
			continue
		}
		bits := r.Sample(512, 2)
		if bits[0]%4 != bits[1]%4 {
			continue
		}
		// Each fault masked with probability 1/2 independently.
		if r.Bool() && r.Bool() {
			hits++
		}
	}
	want := MaskedFaultSDCProb(p)
	got := float64(hits) / trials
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("MC masked-SDC %.3e vs closed form %.3e", got, want)
	}
}

func TestOvervoltHeadroom(t *testing.T) {
	// A 10%-of-GPU L2 saving 59.3% of its power frees ~5.9% of the
	// budget: the CUs can over-volt by ~2%, i.e. a similar frequency
	// uplift — the intro's "graceful over-volting" quantified.
	up := OvervoltHeadroom(0.10, 0.593)
	if up < 0.015 || up > 0.03 {
		t.Fatalf("uplift = %.4f, want ~0.02", up)
	}
	// Degenerate inputs yield zero headroom.
	for _, c := range [][2]float64{{0, 0.5}, {1, 0.5}, {0.1, 0}, {-0.1, 0.5}} {
		if OvervoltHeadroom(c[0], c[1]) != 0 {
			t.Fatalf("headroom(%v) != 0", c)
		}
	}
	// More saving, more headroom.
	if OvervoltHeadroom(0.1, 0.6) <= OvervoltHeadroom(0.1, 0.4) {
		t.Fatal("headroom not monotone in saving")
	}
}
