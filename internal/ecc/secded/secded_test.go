package secded

import (
	"testing"
	"testing/quick"

	"killi/internal/bitvec"
	"killi/internal/xrand"
)

func randomVector(r *xrand.Rand, n int) *bitvec.Vector {
	v := bitvec.NewVector(n)
	for i := 0; i < n; i++ {
		v.SetBit(i, uint(r.Uint64()&1))
	}
	return v
}

func randomLine(r *xrand.Rand) bitvec.Line {
	var l bitvec.Line
	for w := range l {
		l[w] = r.Uint64()
	}
	return l
}

func TestCheckBitCounts(t *testing.T) {
	cases := []struct{ k, want int }{
		{512, 11}, // the paper's configuration: 11 checkbits for a 64B line
		{64, 8},
		{8, 5},
		{1, 3},
		{4, 4},
		{26, 6},
	}
	for _, c := range cases {
		code := New(c.k)
		if got := code.CheckBits(); got != c.want {
			t.Errorf("New(%d).CheckBits() = %d, want %d", c.k, got, c.want)
		}
		if code.CodewordBits() != c.k+c.want {
			t.Errorf("CodewordBits inconsistent for k=%d", c.k)
		}
	}
}

func TestPaperCodewordWidth(t *testing.T) {
	// Paper §5.3: "SECDED ECC requires 11 checkbits to protect 523-bits of
	// data (512 bits of data and 11 ECC checkbits)".
	c := New(512)
	if c.CodewordBits() != 523 {
		t.Fatalf("codeword = %d bits, want 523", c.CodewordBits())
	}
}

func TestNoErrorRoundTrip(t *testing.T) {
	r := xrand.New(1)
	c := New(512)
	for trial := 0; trial < 100; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		res := c.Decode(data, check)
		if res.Status != OK {
			t.Fatalf("clean decode returned %v", res.Status)
		}
		if res.Syndrome != 0 || res.GlobalParityError {
			t.Fatalf("clean decode produced syndrome %#x gpErr=%v", res.Syndrome, res.GlobalParityError)
		}
	}
}

func TestSingleBitCorrectionAllPositions(t *testing.T) {
	c := New(64) // small enough to sweep every data bit
	r := xrand.New(2)
	data := randomVector(r, 64)
	check := c.Encode(data)
	for bit := 0; bit < 64; bit++ {
		corrupted := data.Clone()
		corrupted.FlipBit(bit)
		res := c.Decode(corrupted, check)
		if res.Status != CorrectedData {
			t.Fatalf("bit %d: status %v", bit, res.Status)
		}
		if res.BitFlipped != bit {
			t.Fatalf("bit %d: corrected %d", bit, res.BitFlipped)
		}
		if !corrupted.Equal(data) {
			t.Fatalf("bit %d: data not restored", bit)
		}
	}
}

func TestSingleBitCorrection512(t *testing.T) {
	c := New(512)
	r := xrand.New(3)
	for trial := 0; trial < 300; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		bit := r.Intn(512)
		corrupted := data.Clone()
		corrupted.FlipBit(bit)
		res := c.Decode(corrupted, check)
		if res.Status != CorrectedData || res.BitFlipped != bit || !corrupted.Equal(data) {
			t.Fatalf("trial %d bit %d: res=%+v", trial, bit, res)
		}
	}
}

func TestDoubleBitDetection(t *testing.T) {
	c := New(512)
	r := xrand.New(4)
	for trial := 0; trial < 300; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		bits := r.Sample(512, 2)
		corrupted := data.Clone()
		corrupted.FlipBit(bits[0])
		corrupted.FlipBit(bits[1])
		res := c.Decode(corrupted, check)
		if res.Status != DetectedUncorrectable {
			t.Fatalf("double error at %v: status %v", bits, res.Status)
		}
		if res.GlobalParityError {
			t.Fatal("double error must leave global parity intact (even flips)")
		}
		if res.Syndrome == 0 {
			t.Fatal("double error must produce non-zero syndrome")
		}
	}
}

func TestCheckbitErrorCorrection(t *testing.T) {
	c := New(512)
	r := xrand.New(5)
	data := randomVector(r, 512)
	check := c.Encode(data)
	// Flip each stored Hamming checkbit: data must be reported intact.
	for j := 0; j < c.hamming; j++ {
		bad := check
		bad.Bits ^= 1 << uint(j)
		cpy := data.Clone()
		res := c.Decode(cpy, bad)
		if res.Status != CorrectedCheck {
			t.Fatalf("checkbit %d flip: status %v", j, res.Status)
		}
		if !cpy.Equal(data) {
			t.Fatal("checkbit error must not modify data")
		}
	}
	// Flip the stored global parity bit.
	bad := check
	bad.Global ^= 1
	cpy := data.Clone()
	if res := c.Decode(cpy, bad); res.Status != CorrectedCheck {
		t.Fatalf("global parity flip: status %v", res.Status)
	}
}

func TestDataPlusCheckbitDoubleDetected(t *testing.T) {
	// One data bit + one checkbit is still a double error and must be
	// detected, not miscorrected.
	c := New(512)
	r := xrand.New(6)
	for trial := 0; trial < 100; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		corrupted := data.Clone()
		corrupted.FlipBit(r.Intn(512))
		bad := check
		bad.Bits ^= 1 << uint(r.Intn(c.hamming))
		res := c.Decode(corrupted, bad)
		if res.Status != DetectedUncorrectable && res.Status != CorrectedData {
			// data+check double: syndrome = dataPos ^ checkPos, global even
			// → must be DetectedUncorrectable. CorrectedData would be a
			// miscorrection; extended Hamming guarantees it cannot happen.
			t.Fatalf("status %v", res.Status)
		}
		if res.Status == CorrectedData {
			t.Fatal("miscorrected a double (data+check) error")
		}
	}
}

func TestTripleErrorNotSilent(t *testing.T) {
	// Triple errors may alias to a single-bit "correction" (that is the
	// known SECDED limitation the paper leans on segmented parity for),
	// but they must never decode as OK.
	c := New(512)
	r := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		corrupted := data.Clone()
		for _, b := range r.Sample(512, 3) {
			corrupted.FlipBit(b)
		}
		res := c.Decode(corrupted, check)
		if res.Status == OK {
			t.Fatal("triple error decoded as OK")
		}
	}
}

func TestSyndromeZeroMeansMatch(t *testing.T) {
	c := New(512)
	r := xrand.New(8)
	data := randomVector(r, 512)
	check := c.Encode(data)
	syn, gp := c.Syndrome(data, check)
	if syn != 0 || gp {
		t.Fatalf("syndrome=%#x gp=%v on clean data", syn, gp)
	}
}

func TestLineAndVectorAgree(t *testing.T) {
	c := New(512)
	r := xrand.New(9)
	for trial := 0; trial < 50; trial++ {
		l := randomLine(r)
		v := bitvec.NewVector(512)
		for i := 0; i < 512; i++ {
			v.SetBit(i, l.Bit(i))
		}
		cv := c.Encode(v)
		cl := c.EncodeLine(l)
		if cv != cl {
			t.Fatalf("Encode and EncodeLine disagree: %+v vs %+v", cv, cl)
		}
	}
}

func TestDecodeLineCorrects(t *testing.T) {
	c := New(512)
	r := xrand.New(10)
	for trial := 0; trial < 100; trial++ {
		l := randomLine(r)
		check := c.EncodeLine(l)
		bad := l
		bit := r.Intn(512)
		bad.FlipBit(bit)
		res := c.DecodeLine(&bad, check)
		if res.Status != CorrectedData || bad != l {
			t.Fatalf("DecodeLine failed: %+v", res)
		}
	}
}

func TestEncodeWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode with wrong width did not panic")
		}
	}()
	New(512).Encode(bitvec.NewVector(64))
}

func TestNewPanicsOnNonPositive(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestStatusString(t *testing.T) {
	names := map[Status]string{
		OK:                    "ok",
		CorrectedData:         "corrected-data",
		CorrectedCheck:        "corrected-check",
		DetectedUncorrectable: "detected-uncorrectable",
		Status(42):            "secded.Status(42)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func BenchmarkEncodeLine(b *testing.B) {
	c := New(512)
	l := randomLine(xrand.New(11))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.EncodeLine(l)
	}
}

func BenchmarkDecodeLineClean(b *testing.B) {
	c := New(512)
	l := randomLine(xrand.New(12))
	check := c.EncodeLine(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ll := l
		_ = c.DecodeLine(&ll, check)
	}
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	// testing/quick property: for arbitrary line contents and an
	// arbitrary flipped bit, decode restores the data exactly.
	c := New(512)
	f := func(w0, w1, w2, w3, w4, w5, w6, w7 uint64, bit uint16) bool {
		l := bitvec.Line{w0, w1, w2, w3, w4, w5, w6, w7}
		check := c.EncodeLine(l)
		bad := l
		bad.FlipBit(int(bit) % 512)
		res := c.DecodeLine(&bad, check)
		return res.Status == CorrectedData && bad == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSyndromeLinearity(t *testing.T) {
	// The Hamming syndrome is linear in the data: flipping data bit i
	// always produces syndrome equal to that bit's codeword position,
	// regardless of the surrounding contents.
	c := New(512)
	f := func(w0, w1, w2, w3, w4, w5, w6, w7 uint64, bit uint16) bool {
		l := bitvec.Line{w0, w1, w2, w3, w4, w5, w6, w7}
		check := c.EncodeLine(l)
		i := int(bit) % 512
		bad := l
		bad.FlipBit(i)
		syn, gErr := c.SyndromeLine(bad, check)
		return gErr && int(syn) == c.dataPos[i]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
