// Package secded implements a Single Error Correction, Double Error
// Detection code as an extended Hamming code over an arbitrary number of
// data bits.
//
// For a 512-bit cache line the code uses 10 Hamming checkbits plus one
// overall (global) parity bit — 11 checkbits protecting 523 total bits,
// exactly the configuration in the Killi paper (§4.1).
//
// The decoder additionally exposes the raw syndrome and global parity,
// because Killi's DFH state machine (paper Table 2) keys on the
// (segmented parity, syndrome, global parity) triple rather than on a
// packaged correct/detect verdict.
package secded

import (
	"math/bits"

	"fmt"

	"killi/internal/bitvec"
)

// Status classifies the outcome of a decode.
type Status int

const (
	// OK: no error detected.
	OK Status = iota
	// CorrectedData: a single-bit error in the data was corrected.
	CorrectedData
	// CorrectedCheck: a single-bit error in a checkbit was corrected
	// (the data is intact).
	CorrectedCheck
	// DetectedUncorrectable: a double-bit (or detectable multi-bit) error
	// was found; the data cannot be trusted.
	DetectedUncorrectable
)

// String returns a short human-readable name for the status.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case DetectedUncorrectable:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("secded.Status(%d)", int(s))
	}
}

// Result reports the outcome of a decode.
type Result struct {
	Status Status
	// BitFlipped is the data-bit index that was corrected when Status is
	// CorrectedData, else -1.
	BitFlipped int
	// Syndrome is the raw Hamming syndrome (0 means all parity checks
	// passed). GlobalParityError reports whether the overall parity over
	// data and checkbits mismatched.
	Syndrome          uint32
	GlobalParityError bool
}

// Code is a SECDED code for a fixed number of data bits. The zero value is
// unusable; construct with New.
type Code struct {
	k        int   // data bits
	hamming  int   // Hamming checkbits (excluding global parity)
	dataPos  []int // codeword position (1-based) of each data bit
	checkPos []int // codeword position of each Hamming checkbit (powers of two)
	posData  map[int]int
	// colMask[j] marks, word-parallel over a 512-bit line, the data bits
	// participating in Hamming check j: checkbit j is the XOR-parity of
	// data & colMask[j]. Only built for 512-bit codes (the fast path).
	colMask [][bitvec.LineWords]uint64
}

// New returns a SECDED code over k data bits. It panics if k <= 0.
func New(k int) *Code {
	if k <= 0 {
		panic("secded: data width must be positive")
	}
	// Smallest r with 2^r >= k + r + 1.
	r := 1
	for (1 << uint(r)) < k+r+1 {
		r++
	}
	c := &Code{k: k, hamming: r, posData: make(map[int]int, k)}
	c.checkPos = make([]int, r)
	for j := 0; j < r; j++ {
		c.checkPos[j] = 1 << uint(j)
	}
	c.dataPos = make([]int, 0, k)
	for pos := 1; len(c.dataPos) < k; pos++ {
		if pos&(pos-1) == 0 { // power of two: checkbit slot
			continue
		}
		c.posData[pos] = len(c.dataPos)
		c.dataPos = append(c.dataPos, pos)
	}
	if k == bitvec.LineBits {
		c.colMask = make([][bitvec.LineWords]uint64, r)
		for i, pos := range c.dataPos {
			for j := 0; j < r; j++ {
				if pos&(1<<uint(j)) != 0 {
					c.colMask[j][i>>6] |= 1 << (uint(i) & 63)
				}
			}
		}
	}
	return c
}

// DataBits returns the number of data bits the code protects.
func (c *Code) DataBits() int { return c.k }

// CheckBits returns the total number of checkbits, including the global
// parity bit (11 for k=512).
func (c *Code) CheckBits() int { return c.hamming + 1 }

// CodewordBits returns the total protected width: data + checkbits.
func (c *Code) CodewordBits() int { return c.k + c.CheckBits() }

// Check is the stored checkbit container: the Hamming checkbits in Bits'
// low bits (bit j is the checkbit at codeword position 2^j) and the global
// parity in Global.
type Check struct {
	Bits   uint32
	Global uint
}

// Encode computes the checkbits for the given data bits. The data vector
// must be exactly DataBits wide.
func (c *Code) Encode(data *bitvec.Vector) Check {
	if data.Len() != c.k {
		panic(fmt.Sprintf("secded: Encode data width %d, want %d", data.Len(), c.k))
	}
	var check Check
	ones := 0
	for i := 0; i < c.k; i++ {
		if data.Bit(i) == 0 {
			continue
		}
		ones++
		pos := c.dataPos[i]
		for j := 0; j < c.hamming; j++ {
			if pos&(1<<uint(j)) != 0 {
				check.Bits ^= 1 << uint(j)
			}
		}
	}
	// Global parity covers data bits and Hamming checkbits, so that the
	// total codeword (including the global bit itself) has even parity.
	g := uint(ones) & 1
	for j := 0; j < c.hamming; j++ {
		g ^= uint(check.Bits>>uint(j)) & 1
	}
	check.Global = g
	return check
}

// EncodeLine is a convenience for 512-bit codes that encodes a cache line
// using word-parallel column masks. It panics if the code is not 512 bits
// wide.
func (c *Code) EncodeLine(l bitvec.Line) Check {
	if c.k != bitvec.LineBits {
		panic("secded: EncodeLine on non-512-bit code")
	}
	var check Check
	for j := 0; j < c.hamming; j++ {
		ones := 0
		for w := 0; w < bitvec.LineWords; w++ {
			ones += bits.OnesCount64(l[w] & c.colMask[j][w])
		}
		check.Bits |= uint32(ones&1) << uint(j)
	}
	g := uint(l.PopCount()) & 1
	g ^= uint(bits.OnesCount32(check.Bits)) & 1
	check.Global = g
	return check
}

// Syndrome returns the raw Hamming syndrome (recomputed data parities XOR
// the stored checkbits) and whether the global parity over the received
// codeword — data bits, stored Hamming checkbits, and the stored global
// bit — is odd. A zero syndrome with even global parity means no detectable
// error.
//
// Note the global check runs over the *received* codeword; recomputing
// fresh checkbits for it would let a data-bit flip cancel against the
// checkbit flips it induces.
func (c *Code) Syndrome(data *bitvec.Vector, stored Check) (syndrome uint32, globalErr bool) {
	fresh := c.Encode(data)
	syndrome = fresh.Bits ^ stored.Bits
	globalErr = c.receivedParityOdd(data.PopCount(), stored)
	return syndrome, globalErr
}

// SyndromeLine is Syndrome for 512-bit codes operating on a cache line.
func (c *Code) SyndromeLine(l bitvec.Line, stored Check) (syndrome uint32, globalErr bool) {
	fresh := c.EncodeLine(l)
	return fresh.Bits ^ stored.Bits, c.receivedParityOdd(l.PopCount(), stored)
}

// receivedParityOdd reports whether the received codeword (dataOnes data
// ones plus the stored checkbits and global bit) has odd parity.
func (c *Code) receivedParityOdd(dataOnes int, stored Check) bool {
	p := uint(dataOnes) & 1
	p ^= uint(bits.OnesCount32(stored.Bits)) & 1
	p ^= stored.Global & 1
	return p == 1
}

// Decode checks data against the stored checkbits, correcting data in place
// when a single-bit data error is found.
//
// SECDED semantics with an extended Hamming code:
//
//	syndrome == 0, global ok   → no error
//	syndrome != 0, global bad  → single error; correct it
//	syndrome != 0, global ok   → double error; detected, uncorrectable
//	syndrome == 0, global bad  → error in the global parity bit itself
func (c *Code) Decode(data *bitvec.Vector, stored Check) Result {
	syndrome, globalErr := c.Syndrome(data, stored)
	res := Result{BitFlipped: -1, Syndrome: syndrome, GlobalParityError: globalErr}
	switch {
	case syndrome == 0 && !globalErr:
		res.Status = OK
	case syndrome == 0 && globalErr:
		// The global parity bit itself flipped; data and Hamming bits fine.
		res.Status = CorrectedCheck
	case syndrome != 0 && globalErr:
		pos := int(syndrome)
		if idx, isData := c.posData[pos]; isData {
			data.FlipBit(idx)
			res.Status = CorrectedData
			res.BitFlipped = idx
		} else if pos&(pos-1) == 0 && pos < 1<<uint(c.hamming) {
			// A stored Hamming checkbit flipped.
			res.Status = CorrectedCheck
		} else {
			// Syndrome points outside the codeword: ≥3 errors aliasing.
			res.Status = DetectedUncorrectable
		}
	default: // syndrome != 0 && !globalErr
		res.Status = DetectedUncorrectable
	}
	return res
}

// DecodeLine is Decode for 512-bit codes operating on a cache line.
func (c *Code) DecodeLine(l *bitvec.Line, stored Check) Result {
	syndrome, globalErr := c.SyndromeLine(*l, stored)
	res := Result{BitFlipped: -1, Syndrome: syndrome, GlobalParityError: globalErr}
	switch {
	case syndrome == 0 && !globalErr:
		res.Status = OK
	case syndrome == 0 && globalErr:
		res.Status = CorrectedCheck
	case syndrome != 0 && globalErr:
		pos := int(syndrome)
		if idx, isData := c.posData[pos]; isData {
			l.FlipBit(idx)
			res.Status = CorrectedData
			res.BitFlipped = idx
		} else if pos&(pos-1) == 0 && pos < 1<<uint(c.hamming) {
			res.Status = CorrectedCheck
		} else {
			res.Status = DetectedUncorrectable
		}
	default:
		res.Status = DetectedUncorrectable
	}
	return res
}
