package ecc_test

import (
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/ecc"
)

// Example demonstrates the codec family on a cache line: SECDED corrects a
// single flipped bit; DECTED corrects two.
func Example() {
	var line bitvec.Line
	line[0] = 0xdeadbeefcafef00d

	secded := ecc.SECDED()
	check := secded.Encode(line)
	corrupted := line
	corrupted.FlipBit(17)
	out := secded.Decode(&corrupted, check)
	fmt.Printf("secded: %v, %d bit corrected, restored=%v\n",
		out.Status, out.DataBitsCorrected, corrupted == line)

	dected := ecc.DECTED()
	check = dected.Encode(line)
	corrupted = line
	corrupted.FlipBit(17)
	corrupted.FlipBit(401)
	out = dected.Decode(&corrupted, check)
	fmt.Printf("dected: %v, %d bits corrected, restored=%v\n",
		out.Status, out.DataBitsCorrected, corrupted == line)

	// Checkbit budgets per 64-byte line (paper §4.1 / §5.2):
	for _, c := range []ecc.Codec{secded, dected, ecc.TECQED(), ecc.SixEC7ED(), ecc.OLSC(11)} {
		fmt.Printf("%s: %d checkbits, corrects %d\n", c.Name(), c.CheckBits(), c.CorrectsUpTo())
	}

	// Output:
	// secded: corrected, 1 bit corrected, restored=true
	// dected: corrected, 2 bits corrected, restored=true
	// secded: 11 checkbits, corrects 1
	// dected: 21 checkbits, corrects 2
	// tecqed: 31 checkbits, corrects 3
	// 6ec7ed: 61 checkbits, corrects 6
	// olsc-11: 506 checkbits, corrects 11
}
