package parity

import (
	"testing"
	"testing/quick"

	"killi/internal/bitvec"
	"killi/internal/xrand"
)

// naive computes segment parities bit by bit, as the hardware definition
// states, for cross-checking the folded implementation.
func naive(l bitvec.Line, segments int) uint64 {
	var p uint64
	for i := 0; i < bitvec.LineBits; i++ {
		if l.Bit(i) == 1 {
			p ^= 1 << uint(i%segments)
		}
	}
	return p
}

func randomLine(r *xrand.Rand) bitvec.Line {
	var l bitvec.Line
	for w := range l {
		l[w] = r.Uint64()
	}
	return l
}

func TestGenerateMatchesNaive(t *testing.T) {
	r := xrand.New(1)
	for _, segs := range []int{1, 2, 4, 8, 16, 32, 64} {
		s := NewInterleaved(segs)
		for trial := 0; trial < 50; trial++ {
			l := randomLine(r)
			if got, want := s.Generate(l), naive(l, segs); got != want {
				t.Fatalf("segments=%d: Generate=%#x naive=%#x", segs, got, want)
			}
		}
	}
}

func TestGenerateZeroLine(t *testing.T) {
	var l bitvec.Line
	for _, segs := range []int{4, 16} {
		if p := NewInterleaved(segs).Generate(l); p != 0 {
			t.Fatalf("zero line parity = %#x", p)
		}
	}
}

func TestSingleBitFlipHitsExactlyOneSegment(t *testing.T) {
	r := xrand.New(2)
	s := NewInterleaved(16)
	for trial := 0; trial < 200; trial++ {
		l := randomLine(r)
		stored := s.Generate(l)
		bit := r.Intn(bitvec.LineBits)
		l.FlipBit(bit)
		mask, n := s.Check(l, stored)
		if n != 1 {
			t.Fatalf("single flip produced %d mismatches", n)
		}
		if mask != 1<<uint(s.SegmentOf(bit)) {
			t.Fatalf("flip of bit %d: mask=%#x, want segment %d", bit, mask, s.SegmentOf(bit))
		}
	}
}

func TestTwoFlipsSameSegmentUndetected(t *testing.T) {
	s := NewInterleaved(16)
	var l bitvec.Line
	stored := s.Generate(l)
	// Bits 0 and 16 share segment 0 in the interleaved layout.
	l.FlipBit(0)
	l.FlipBit(16)
	if _, n := s.Check(l, stored); n != 0 {
		t.Fatalf("two flips in one segment detected (%d mismatches); interleaving broken", n)
	}
}

func TestTwoFlipsDifferentSegmentsDetected(t *testing.T) {
	s := NewInterleaved(16)
	var l bitvec.Line
	stored := s.Generate(l)
	l.FlipBit(0)
	l.FlipBit(1)
	if _, n := s.Check(l, stored); n != 2 {
		t.Fatalf("flips in two segments gave %d mismatches, want 2", n)
	}
}

func TestAdjacentMultiBitSoftErrorDetected(t *testing.T) {
	// The motivation for interleaving: up to 16 physically adjacent bit
	// flips all land in distinct segments and are all visible.
	s := NewInterleaved(16)
	r := xrand.New(3)
	for burst := 2; burst <= 16; burst++ {
		l := randomLine(r)
		stored := s.Generate(l)
		start := r.Intn(bitvec.LineBits - burst)
		for b := 0; b < burst; b++ {
			l.FlipBit(start + b)
		}
		if _, n := s.Check(l, stored); n != burst {
			t.Fatalf("adjacent burst of %d flips: %d segment mismatches", burst, n)
		}
	}
}

func TestSegmentOf(t *testing.T) {
	s := NewInterleaved(16)
	if s.SegmentOf(0) != 0 || s.SegmentOf(15) != 15 || s.SegmentOf(16) != 0 || s.SegmentOf(511) != 15 {
		t.Fatal("SegmentOf wrong for interleaved layout")
	}
}

func TestNewInterleavedPanics(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 5, 12, 65, 128} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInterleaved(%d) did not panic", bad)
				}
			}()
			NewInterleaved(bad)
		}()
	}
}

func TestGlobalMatchesPopCount(t *testing.T) {
	r := xrand.New(4)
	for trial := 0; trial < 100; trial++ {
		l := randomLine(r)
		if got, want := Global(l), uint(l.PopCount())&1; got != want {
			t.Fatalf("Global=%d want %d", got, want)
		}
	}
}

func TestFoldMatchesDirectGeneration(t *testing.T) {
	r := xrand.New(5)
	s16 := NewInterleaved(16)
	s4 := NewInterleaved(4)
	for trial := 0; trial < 200; trial++ {
		l := randomLine(r)
		if got, want := Fold(s16.Generate(l)), s4.Generate(l); got != want {
			t.Fatalf("Fold(p16)=%#x, direct p4=%#x", got, want)
		}
	}
}

func TestCheckMasksHighBits(t *testing.T) {
	s := NewInterleaved(4)
	var l bitvec.Line
	// Stored word polluted above the segment width must not create
	// phantom mismatches.
	if _, n := s.Check(l, 0xfff0); n != 0 {
		t.Fatalf("high garbage bits caused %d mismatches", n)
	}
}

func TestParityEvenOddProperty(t *testing.T) {
	// Flipping any odd number of bits within one segment flips that
	// segment's parity; an even number restores it.
	r := xrand.New(6)
	s := NewInterleaved(16)
	for trial := 0; trial < 100; trial++ {
		l := randomLine(r)
		stored := s.Generate(l)
		seg := r.Intn(16)
		flips := 1 + r.Intn(31)
		for f := 0; f < flips; f++ {
			// Bit positions in segment seg are seg, seg+16, seg+32, ...
			slot := r.Intn(bitvec.LineBits / 16)
			l.FlipBit(seg + 16*slot)
		}
		_, n := s.Check(l, stored)
		// We may have flipped the same position multiple times; recompute
		// expected parity change from actual diff popcount.
		// n is 1 if the net number of changed bits in the segment is odd.
		if n > 1 {
			t.Fatalf("flips confined to one segment changed %d segments", n)
		}
	}
}

func BenchmarkGenerate16(b *testing.B) {
	s := NewInterleaved(16)
	l := randomLine(xrand.New(7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Generate(l)
	}
}

func TestQuickParityLinearity(t *testing.T) {
	// Parity is linear: P(a XOR b) == P(a) XOR P(b) for every segment
	// count. testing/quick drives the line contents.
	for _, segs := range []int{4, 16} {
		s := NewInterleaved(segs)
		f := func(a0, a1, a2, a3, a4, a5, a6, a7, b0, b1, b2, b3, b4, b5, b6, b7 uint64) bool {
			a := bitvec.Line{a0, a1, a2, a3, a4, a5, a6, a7}
			b := bitvec.Line{b0, b1, b2, b3, b4, b5, b6, b7}
			return s.Generate(a.Xor(b)) == (s.Generate(a) ^ s.Generate(b))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("segments=%d: %v", segs, err)
		}
	}
}

func TestQuickGlobalIsParityOfSegments(t *testing.T) {
	// The global parity equals the XOR of all 16 segment parities.
	s := NewInterleaved(16)
	f := func(w0, w1, w2, w3, w4, w5, w6, w7 uint64) bool {
		l := bitvec.Line{w0, w1, w2, w3, w4, w5, w6, w7}
		p := s.Generate(l)
		var x uint64
		for i := 0; i < 16; i++ {
			x ^= (p >> uint(i)) & 1
		}
		return uint(x) == Global(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
