// Package parity implements the segmented, interleaved parity used by Killi
// for cheap error detection (paper §4.1).
//
// A 512-bit cache line is logically divided into S interleaved segments:
// bit i belongs to segment i mod S. One even-parity bit is kept per segment.
// Interleaving improves coverage for spatially adjacent multi-bit soft
// errors; for LV faults (randomly placed) it is neutral. Killi uses S=16
// (32-bit segments) while a line's fault status is unknown, and S=4 (128-bit
// segments) once the line has a stable classification.
package parity

import (
	"fmt"
	"math/bits"

	"killi/internal/bitvec"
)

// Scheme computes interleaved segmented parity over a 512-bit line.
// The zero value is unusable; construct with NewInterleaved.
type Scheme struct {
	segments int
}

// NewInterleaved returns a parity scheme with the given number of
// interleaved segments. The segment count must be a power of two between 1
// and 64 so that segment membership is constant across the line's 64-bit
// words (64 is a multiple of every such count).
func NewInterleaved(segments int) Scheme {
	if segments < 1 || segments > 64 || segments&(segments-1) != 0 {
		panic(fmt.Sprintf("parity: segment count %d must be a power of two in [1,64]", segments))
	}
	return Scheme{segments: segments}
}

// Segments returns the number of parity segments (and parity bits).
func (s Scheme) Segments() int { return s.segments }

// SegmentOf returns the segment that owns bit i of the line.
func (s Scheme) SegmentOf(i int) int { return i % s.segments }

// Generate returns the parity word: bit g of the result is the even parity
// of segment g. Only the low Segments() bits are meaningful.
func (s Scheme) Generate(l bitvec.Line) uint64 {
	// Bit i of word w has global index w*64 + p, and since the segment
	// count divides 64, its segment is p mod segments. XOR-folding all
	// words, then folding 64 bits down to the segment width, yields all
	// segment parities at once.
	var fold uint64
	for _, w := range l {
		fold ^= w
	}
	for width := 64; width > s.segments; width >>= 1 {
		fold ^= fold >> uint(width/2)
	}
	if s.segments == 64 {
		return fold
	}
	return fold & (1<<uint(s.segments) - 1)
}

// Check compares freshly generated parity for l against the stored parity
// word and returns the per-segment mismatch mask and the number of
// mismatching segments.
func (s Scheme) Check(l bitvec.Line, stored uint64) (mask uint64, mismatches int) {
	mask = s.Generate(l) ^ stored
	if s.segments < 64 {
		mask &= 1<<uint(s.segments) - 1
	}
	return mask, bits.OnesCount64(mask)
}

// Global returns the single-bit even parity over the entire line (the XOR of
// all 512 bits).
func Global(l bitvec.Line) uint {
	var fold uint64
	for _, w := range l {
		fold ^= w
	}
	return uint(bits.OnesCount64(fold)) & 1
}

// Fold reduces a 16-segment parity word to the corresponding 4-segment
// parity word. Because segments are interleaved (segment = bit index mod S),
// the 4-wide segment g is the union of 16-wide segments {g, g+4, g+8, g+12},
// so its parity is the XOR of those four bits. Killi uses this when a line
// transitions from the unknown state (16 parity bits) to a stable state
// (4 parity bits) without re-reading the data array.
func Fold(p16 uint64) uint64 {
	p16 &= 0xffff
	return (p16 ^ p16>>4 ^ p16>>8 ^ p16>>12) & 0xf
}
