package bch

import (
	"testing"
	"testing/quick"

	"killi/internal/bitvec"
	"killi/internal/xrand"
)

func randomVector(r *xrand.Rand, n int) *bitvec.Vector {
	v := bitvec.NewVector(n)
	for i := 0; i < n; i++ {
		v.SetBit(i, uint(r.Uint64()&1))
	}
	return v
}

func TestFieldTables(t *testing.T) {
	for m := 3; m <= 13; m++ {
		f := NewField(m)
		if f.N() != (1<<uint(m))-1 {
			t.Fatalf("m=%d: N=%d", m, f.N())
		}
		// α generates the full multiplicative group: all exp values in
		// [0,n) distinct and nonzero.
		seen := make(map[uint32]bool)
		for i := 0; i < f.N(); i++ {
			v := f.Pow(i)
			if v == 0 || seen[v] {
				t.Fatalf("m=%d: exp table degenerate at %d", m, i)
			}
			seen[v] = true
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	f := NewField(10)
	r := xrand.New(1)
	for trial := 0; trial < 500; trial++ {
		a := uint32(r.Intn(f.N())) + 1
		b := uint32(r.Intn(f.N())) + 1
		c := uint32(r.Intn(f.N())) + 1
		if f.Mul(a, b) != f.Mul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
			t.Fatal("multiplication not associative")
		}
		// Distributivity over XOR (field addition).
		if f.Mul(a, b^c) != f.Mul(a, b)^f.Mul(a, c) {
			t.Fatal("multiplication not distributive")
		}
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatal("a * a^-1 != 1")
		}
		if f.Div(f.Mul(a, b), b) != a {
			t.Fatal("division inconsistent")
		}
	}
	if f.Mul(0, 5) != 0 || f.Mul(7, 0) != 0 {
		t.Fatal("multiplication by zero")
	}
}

func TestFieldPanics(t *testing.T) {
	f := NewField(4)
	for name, fn := range map[string]func(){
		"Inv(0)":       func() { f.Inv(0) },
		"Div(1,0)":     func() { f.Div(1, 0) },
		"Log(0)":       func() { f.Log(0) },
		"NewField(2)":  func() { NewField(2) },
		"NewField(14)": func() { NewField(14) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPowNegative(t *testing.T) {
	f := NewField(10)
	for e := -5; e <= 5; e++ {
		if f.Mul(f.Pow(e), f.Pow(-e)) != 1 {
			t.Fatalf("Pow(%d)*Pow(%d) != 1", e, -e)
		}
	}
}

func TestGeneratorDividesCodewords(t *testing.T) {
	// Every encoded codeword must be divisible by g(x): encoding followed
	// by a zero-syndrome check on clean data verifies this indirectly.
	for _, tt := range []int{1, 2, 3} {
		c := New(10, tt, 512, false)
		r := xrand.New(uint64(tt))
		for trial := 0; trial < 10; trial++ {
			data := randomVector(r, 512)
			check := c.Encode(data)
			for _, s := range c.syndromes(data, check) {
				if s != 0 {
					t.Fatalf("t=%d: clean codeword has nonzero syndrome", tt)
				}
			}
		}
	}
}

func TestPaperCheckbitCounts(t *testing.T) {
	// Paper §5.2: "DECTED ECC for 64B data requires only 21 bits for
	// checkbits". TECQED and 6EC7ED scale as m·t + 1.
	cases := []struct{ t, want int }{
		{2, 21},
		{3, 31},
		{6, 61},
	}
	for _, c := range cases {
		code := NewLine(c.t)
		if got := code.CheckBits(); got != c.want {
			t.Errorf("NewLine(%d).CheckBits() = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestCleanDecode(t *testing.T) {
	c := NewLine(2)
	r := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		if res := c.Decode(data, check); res.Status != OK {
			t.Fatalf("clean decode: %v", res.Status)
		}
	}
}

func TestCorrectUpToT(t *testing.T) {
	for _, tt := range []int{1, 2, 3, 6} {
		c := NewLine(tt)
		r := xrand.New(uint64(100 + tt))
		for e := 1; e <= tt; e++ {
			for trial := 0; trial < 10; trial++ {
				data := randomVector(r, 512)
				check := c.Encode(data)
				orig := data.Clone()
				for _, b := range r.Sample(512, e) {
					data.FlipBit(b)
				}
				res := c.Decode(data, check)
				if res.Status != Corrected {
					t.Fatalf("t=%d e=%d: status %v", tt, e, res.Status)
				}
				if !data.Equal(orig) {
					t.Fatalf("t=%d e=%d: data not restored", tt, e)
				}
				if len(res.DataBitsFlipped) != e {
					t.Fatalf("t=%d e=%d: flipped %d bits", tt, e, len(res.DataBitsFlipped))
				}
			}
		}
	}
}

func TestDetectTPlusOne(t *testing.T) {
	// Extended code: t+1 errors must be detected, never silently
	// miscorrected (the DECTED / TECQED guarantee).
	for _, tt := range []int{2, 3} {
		c := NewLine(tt)
		r := xrand.New(uint64(200 + tt))
		for trial := 0; trial < 40; trial++ {
			data := randomVector(r, 512)
			check := c.Encode(data)
			orig := data.Clone()
			for _, b := range r.Sample(512, tt+1) {
				data.FlipBit(b)
			}
			res := c.Decode(data, check)
			if res.Status == OK {
				t.Fatalf("t=%d: %d errors decoded as OK", tt, tt+1)
			}
			if res.Status == Corrected && !data.Equal(orig) {
				t.Fatalf("t=%d: %d errors miscorrected", tt, tt+1)
			}
		}
	}
}

func TestCheckbitErrorsCorrected(t *testing.T) {
	c := NewLine(2)
	r := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		orig := data.Clone()
		// Flip one checkbit and one data bit: both within t=2.
		bad := Check{Bits: check.Bits.Clone(), Global: check.Global}
		bad.Bits.FlipBit(r.Intn(bad.Bits.Len()))
		data.FlipBit(r.Intn(512))
		res := c.Decode(data, bad)
		if res.Status != Corrected {
			t.Fatalf("status %v", res.Status)
		}
		if !data.Equal(orig) {
			t.Fatal("data not restored")
		}
		if res.CheckBitsFlipped != 1 || len(res.DataBitsFlipped) != 1 {
			t.Fatalf("flip accounting: %+v", res)
		}
	}
}

func TestExtensionBitFlip(t *testing.T) {
	c := NewLine(2)
	r := xrand.New(4)
	data := randomVector(r, 512)
	check := c.Encode(data)
	bad := Check{Bits: check.Bits, Global: check.Global ^ 1}
	res := c.Decode(data, bad)
	if res.Status != Corrected || res.CheckBitsFlipped != 1 {
		t.Fatalf("extension-bit flip: %+v", res)
	}
}

func TestNonExtendedHasNoParityBit(t *testing.T) {
	c := New(10, 2, 512, false)
	if c.CheckBits() != 20 {
		t.Fatalf("non-extended t=2 checkbits = %d, want 20", c.CheckBits())
	}
	if c.Extended() {
		t.Fatal("Extended() true for non-extended code")
	}
}

func TestShortCode(t *testing.T) {
	// A tiny code (m=4, t=1, k=5) exercises boundary arithmetic.
	c := New(4, 1, 5, true)
	r := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		data := randomVector(r, 5)
		check := c.Encode(data)
		orig := data.Clone()
		data.FlipBit(r.Intn(5))
		if res := c.Decode(data, check); res.Status != Corrected || !data.Equal(orig) {
			t.Fatalf("short code failed: %+v", res)
		}
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"t=0":        func() { New(10, 0, 512, false) },
		"k=0":        func() { New(10, 2, 0, false) },
		"k too big":  func() { New(4, 1, 100, false) },
		"wrong data": func() { NewLine(2).Encode(bitvec.NewVector(100)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDecodePropertyRandomErrors(t *testing.T) {
	// Property: for random error counts e in [0, t], decode always
	// restores the original data exactly.
	c := NewLine(2)
	r := xrand.New(6)
	for trial := 0; trial < 100; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		orig := data.Clone()
		e := r.Intn(3)
		for _, b := range r.Sample(512, e) {
			data.FlipBit(b)
		}
		res := c.Decode(data, check)
		if !data.Equal(orig) {
			t.Fatalf("e=%d: data corrupted after decode (%v)", e, res.Status)
		}
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		DetectedUncorrectable.String() != "detected-uncorrectable" {
		t.Fatal("status names wrong")
	}
	if Status(9).String() != "bch.Status(9)" {
		t.Fatal("unknown status formatting wrong")
	}
}

func BenchmarkEncodeDECTED(b *testing.B) {
	c := NewLine(2)
	data := randomVector(xrand.New(7), 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Encode(data)
	}
}

func BenchmarkDecodeDECTEDTwoErrors(b *testing.B) {
	c := NewLine(2)
	r := xrand.New(8)
	data := randomVector(r, 512)
	check := c.Encode(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := data.Clone()
		d.FlipBit(13)
		d.FlipBit(400)
		_ = c.Decode(d, check)
	}
}

func TestQuickDECTEDRoundTrip(t *testing.T) {
	// testing/quick property: arbitrary data, two arbitrary (distinct)
	// error positions — DECTED always restores the data.
	c := NewLine(2)
	f := func(seed uint64, b1, b2 uint16) bool {
		r := xrand.New(seed)
		data := randomVector(r, 512)
		check := c.Encode(data)
		orig := data.Clone()
		p1, p2 := int(b1)%512, int(b2)%512
		data.FlipBit(p1)
		if p2 != p1 {
			data.FlipBit(p2)
		}
		res := c.Decode(data, check)
		return res.Status == Corrected && data.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSyndromesZeroForCodewords(t *testing.T) {
	// Every encoded word has all-zero syndromes, for arbitrary data.
	c := New(10, 3, 512, true)
	f := func(seed uint64) bool {
		data := randomVector(xrand.New(seed), 512)
		check := c.Encode(data)
		for _, s := range c.syndromes(data, check) {
			if s != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
