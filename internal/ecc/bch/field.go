// Package bch implements binary primitive BCH codes over GF(2^m) with
// configurable error-correction strength t, plus an optional extended
// (overall-parity) bit that adds one level of error detection.
//
// The Killi paper uses this family for its stronger-than-SECDED options:
//
//	DECTED  = t=2 extended  (21 checkbits for a 64-byte line: 2×10 + 1)
//	TECQED  = t=3 extended  (31 checkbits)
//	6EC7ED  = t=6 extended  (61 checkbits)
//
// The implementation is from scratch: GF(2^m) log/antilog tables, generator
// polynomial construction from cyclotomic cosets, systematic LFSR encoding,
// Berlekamp–Massey error-locator synthesis and Chien search decoding over
// the shortened code.
package bch

import "fmt"

// primitivePoly[m] is a primitive polynomial of degree m over GF(2),
// represented with bit i = coefficient of x^i (the x^m term included).
var primitivePoly = map[int]uint32{
	3:  0xb,    // x^3+x+1
	4:  0x13,   // x^4+x+1
	5:  0x25,   // x^5+x^2+1
	6:  0x43,   // x^6+x+1
	7:  0x89,   // x^7+x^3+1
	8:  0x11d,  // x^8+x^4+x^3+x^2+1
	9:  0x211,  // x^9+x^4+1
	10: 0x409,  // x^10+x^3+1
	11: 0x805,  // x^11+x^2+1
	12: 0x1053, // x^12+x^6+x^4+x+1
	13: 0x201b, // x^13+x^4+x^3+x+1
}

// Field is GF(2^m) with precomputed log/antilog tables. The zero value is
// unusable; construct with NewField.
type Field struct {
	m   int
	n   int      // multiplicative group order: 2^m - 1
	exp []uint32 // exp[i] = α^i for i in [0, 2n)
	log []int    // log[x] = i with α^i = x, for x in [1, 2^m)
}

// NewField returns GF(2^m). Supported m range is [3, 13]; it panics
// otherwise (cache-line BCH uses m=10).
func NewField(m int) *Field {
	poly, ok := primitivePoly[m]
	if !ok {
		panic(fmt.Sprintf("bch: unsupported field degree m=%d", m))
	}
	n := (1 << uint(m)) - 1
	f := &Field{
		m:   m,
		n:   n,
		exp: make([]uint32, 2*n),
		log: make([]int, 1<<uint(m)),
	}
	x := uint32(1)
	for i := 0; i < n; i++ {
		f.exp[i] = x
		f.exp[i+n] = x // duplicated so Mul can skip a modulo
		f.log[x] = i
		x <<= 1
		if x&(1<<uint(m)) != 0 {
			x ^= poly
		}
	}
	return f
}

// M returns the field degree m.
func (f *Field) M() int { return f.m }

// N returns the multiplicative group order 2^m - 1 (the natural BCH code
// length).
func (f *Field) N() int { return f.n }

// Mul returns the product a·b in GF(2^m).
func (f *Field) Mul(a, b uint32) uint32 {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a. It panics on a == 0.
func (f *Field) Inv(a uint32) uint32 {
	if a == 0 {
		panic("bch: inverse of zero")
	}
	return f.exp[f.n-f.log[a]]
}

// Div returns a/b. It panics on b == 0.
func (f *Field) Div(a, b uint32) uint32 {
	if b == 0 {
		panic("bch: division by zero")
	}
	if a == 0 {
		return 0
	}
	return f.exp[(f.log[a]-f.log[b]+f.n)%f.n]
}

// Pow returns α^e for any integer e (negative allowed).
func (f *Field) Pow(e int) uint32 {
	e %= f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}

// Log returns the discrete log of a (the e with α^e = a). It panics on
// a == 0.
func (f *Field) Log(a uint32) int {
	if a == 0 {
		panic("bch: log of zero")
	}
	return f.log[a]
}

// PolyEval evaluates the polynomial with coefficients coeffs (coeffs[i] is
// the coefficient of x^i) at the point x, using Horner's rule.
func (f *Field) PolyEval(coeffs []uint32, x uint32) uint32 {
	var acc uint32
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ coeffs[i]
	}
	return acc
}
