package bch

import (
	"fmt"

	"killi/internal/bitvec"
)

// Status classifies a decode outcome.
type Status int

const (
	// OK: no error detected.
	OK Status = iota
	// Corrected: up to t errors were located and corrected in place.
	Corrected
	// DetectedUncorrectable: more errors than the code can correct were
	// detected; the data cannot be trusted.
	DetectedUncorrectable
)

// String returns a short human-readable status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case DetectedUncorrectable:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("bch.Status(%d)", int(s))
	}
}

// Result reports the outcome of a decode.
type Result struct {
	Status Status
	// DataBitsFlipped lists data-bit indexes that were corrected.
	// Corrections confined to checkbits do not appear here.
	DataBitsFlipped []int
	// CheckBitsFlipped counts corrected errors that fell in the checkbit
	// region.
	CheckBitsFlipped int
}

// Code is a binary primitive BCH code shortened to k data bits, correcting
// up to t errors, with an optional extended overall-parity bit for one
// extra bit of detection (e.g. DECTED = t=2 extended). The zero value is
// unusable; construct with New.
type Code struct {
	f        *Field
	t        int
	k        int
	gen      []byte // generator polynomial over GF(2); gen[i] = coeff of x^i
	degG     int
	extended bool
}

// New returns a BCH code over GF(2^m) correcting t errors, shortened to k
// data bits. If extended is true, one overall parity bit is appended to the
// checkbits, upgrading detection from 2t to 2t+1 errors. It panics if the
// parameters do not fit (k + deg(g) must be ≤ 2^m - 1).
func New(m, t, k int, extended bool) *Code {
	if t < 1 {
		panic("bch: t must be >= 1")
	}
	if k < 1 {
		panic("bch: k must be >= 1")
	}
	f := NewField(m)
	gen := generator(f, t)
	degG := len(gen) - 1
	if k+degG > f.n {
		panic(fmt.Sprintf("bch: k=%d + checkbits=%d exceeds n=%d for m=%d", k, degG, f.n, m))
	}
	return &Code{f: f, t: t, k: k, gen: gen, degG: degG, extended: extended}
}

// NewLine returns the standard cache-line instantiation: GF(2^10), 512 data
// bits, correcting t errors, extended.
//
//	t=2 → DECTED (21 checkbits), t=3 → TECQED (31), t=6 → 6EC7ED (61)
func NewLine(t int) *Code { return New(10, t, bitvec.LineBits, true) }

// generator returns the generator polynomial g(x) over GF(2) for a t-error-
// correcting primitive BCH code: the least common multiple of the minimal
// polynomials of α, α^2, …, α^2t. Because conjugates share a minimal
// polynomial, it suffices to take distinct cyclotomic cosets.
func generator(f *Field, t int) []byte {
	covered := make(map[int]bool)
	g := []byte{1}
	for s := 1; s <= 2*t; s++ {
		if covered[s] {
			continue
		}
		// Cyclotomic coset of s: {s, 2s, 4s, ...} mod n.
		coset := []int{}
		for c := s; !covered[c]; c = (2 * c) % f.n {
			covered[c] = true
			coset = append(coset, c)
		}
		// Minimal polynomial: Π (x + α^c), computed in GF(2^m); the result
		// has all coefficients in {0,1}.
		mp := []uint32{1}
		for _, c := range coset {
			root := f.Pow(c)
			next := make([]uint32, len(mp)+1)
			for i, coef := range mp {
				next[i+1] ^= coef            // x * mp
				next[i] ^= f.Mul(coef, root) // root * mp
			}
			mp = next
		}
		// Multiply g by mp over GF(2).
		mpBits := make([]byte, len(mp))
		for i, coef := range mp {
			if coef > 1 {
				panic("bch: minimal polynomial has non-binary coefficient")
			}
			mpBits[i] = byte(coef)
		}
		g = polyMulGF2(g, mpBits)
	}
	return g
}

// polyMulGF2 multiplies two polynomials over GF(2).
func polyMulGF2(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= bj
		}
	}
	return out
}

// DataBits returns k, the number of data bits.
func (c *Code) DataBits() int { return c.k }

// T returns the error-correction strength.
func (c *Code) T() int { return c.t }

// CheckBits returns the number of checkbits, including the extension bit
// when present (21 for NewLine(2)).
func (c *Code) CheckBits() int {
	if c.extended {
		return c.degG + 1
	}
	return c.degG
}

// Extended reports whether the code carries an overall parity bit.
func (c *Code) Extended() bool { return c.extended }

// Check holds the stored checkbits: Bits is degG parity bits (bit i of the
// vector = codeword coefficient of x^i); Global is the extension parity bit
// (always 0 when the code is not extended).
type Check struct {
	Bits   *bitvec.Vector
	Global uint
}

// Encode computes the checkbits for data systematically: the codeword is
// x^degG·d(x) + ((x^degG·d(x)) mod g(x)), so data occupies the high
// coefficient positions and the remainder forms the checkbits.
func (c *Code) Encode(data *bitvec.Vector) Check {
	if data.Len() != c.k {
		panic(fmt.Sprintf("bch: Encode data width %d, want %d", data.Len(), c.k))
	}
	// LFSR division of x^degG·d(x) by g(x). Feed data MSB-first (highest
	// codeword coefficient first).
	reg := make([]byte, c.degG)
	for i := c.k - 1; i >= 0; i-- {
		fb := byte(data.Bit(i)) ^ reg[c.degG-1]
		copy(reg[1:], reg[:c.degG-1])
		reg[0] = 0
		if fb == 1 {
			for j := 0; j < c.degG; j++ {
				reg[j] ^= c.gen[j]
			}
		}
	}
	check := Check{Bits: bitvec.NewVector(c.degG)}
	ones := 0
	for i, b := range reg {
		if b == 1 {
			check.Bits.SetBit(i, 1)
			ones++
		}
	}
	if c.extended {
		check.Global = uint(data.PopCount()+ones) & 1
	}
	return check
}

// codewordBit returns coefficient i of the received codeword assembled from
// data and stored checkbits: positions [0, degG) are checkbits, positions
// [degG, degG+k) are data bits.
func (c *Code) codewordBit(data *bitvec.Vector, check Check, i int) uint {
	if i < c.degG {
		return check.Bits.Bit(i)
	}
	return data.Bit(i - c.degG)
}

// syndromes returns S_1..S_2t, where S_j = r(α^j) over the received
// codeword r.
func (c *Code) syndromes(data *bitvec.Vector, check Check) []uint32 {
	syn := make([]uint32, 2*c.t)
	// Collect the set coefficient positions once (ones are typically ~50%
	// of the codeword for random data).
	positions := check.Bits.OneBits()
	for _, p := range data.OneBits() {
		positions = append(positions, p+c.degG)
	}
	for j := 1; j <= 2*c.t; j++ {
		var s uint32
		for _, p := range positions {
			s ^= c.f.Pow(p * j)
		}
		syn[j-1] = s
	}
	return syn
}

// berlekampMassey returns the error-locator polynomial σ(x) (σ[0] = 1) for
// the given syndromes.
func (c *Code) berlekampMassey(syn []uint32) []uint32 {
	f := c.f
	sigma := []uint32{1}
	b := []uint32{1}
	L, mShift := 0, 1
	var bCoef uint32 = 1
	for n := 0; n < len(syn); n++ {
		// Discrepancy d = S_n + Σ σ_i · S_{n-i}.
		d := syn[n]
		for i := 1; i <= L && i < len(sigma); i++ {
			d ^= f.Mul(sigma[i], syn[n-i])
		}
		if d == 0 {
			mShift++
			continue
		}
		if 2*L <= n {
			tPoly := append([]uint32(nil), sigma...)
			coef := f.Div(d, bCoef)
			sigma = polyAddScaledShift(f, sigma, b, coef, mShift)
			b = tPoly
			L = n + 1 - L
			bCoef = d
			mShift = 1
		} else {
			coef := f.Div(d, bCoef)
			sigma = polyAddScaledShift(f, sigma, b, coef, mShift)
			mShift++
		}
	}
	// Trim trailing zeros.
	for len(sigma) > 1 && sigma[len(sigma)-1] == 0 {
		sigma = sigma[:len(sigma)-1]
	}
	return sigma
}

// polyAddScaledShift returns a + coef·x^shift·b over GF(2^m).
func polyAddScaledShift(f *Field, a, b []uint32, coef uint32, shift int) []uint32 {
	n := len(b) + shift
	if len(a) > n {
		n = len(a)
	}
	out := make([]uint32, n)
	copy(out, a)
	for i, bi := range b {
		out[i+shift] ^= f.Mul(coef, bi)
	}
	return out
}

// chien locates error positions by searching for roots of σ over the
// shortened codeword positions [0, degG+k). A root of σ at x = α^{-p}
// marks an error at coefficient position p. The second return value is
// false if any root falls outside the shortened range or the root count
// does not match deg σ (decoder failure → detected uncorrectable).
func (c *Code) chien(sigma []uint32) ([]int, bool) {
	degSigma := len(sigma) - 1
	if degSigma == 0 {
		return nil, true
	}
	nTotal := c.degG + c.k
	positions := make([]int, 0, degSigma)
	for p := 0; p < c.f.n; p++ {
		if c.f.PolyEval(sigma, c.f.Pow(-p)) == 0 {
			if p >= nTotal {
				return nil, false // error located in the shortened (absent) region
			}
			positions = append(positions, p)
			if len(positions) > degSigma {
				return nil, false
			}
		}
	}
	if len(positions) != degSigma {
		return nil, false
	}
	return positions, true
}

// Decode checks data against the stored checkbits, correcting up to t
// errors in place. With the extended parity bit, a (t+1)-error pattern that
// would otherwise alias to a ≤t-error correction of the wrong parity is
// flagged as uncorrectable instead.
func (c *Code) Decode(data *bitvec.Vector, check Check) Result {
	if data.Len() != c.k {
		panic(fmt.Sprintf("bch: Decode data width %d, want %d", data.Len(), c.k))
	}
	syn := c.syndromes(data, check)
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	parityMismatch := false
	if c.extended {
		got := uint(data.PopCount()+check.Bits.PopCount()) & 1
		parityMismatch = got != check.Global&1
	}
	if allZero {
		if parityMismatch {
			// Single flip of the stored extension bit itself (or an even
			// aliasing pattern): correct by trusting the zero syndromes.
			return Result{Status: Corrected, CheckBitsFlipped: 1}
		}
		return Result{Status: OK}
	}
	sigma := c.berlekampMassey(syn)
	if len(sigma)-1 > c.t {
		return Result{Status: DetectedUncorrectable}
	}
	positions, ok := c.chien(sigma)
	if !ok {
		return Result{Status: DetectedUncorrectable}
	}
	if c.extended && (len(positions)&1 == 1) != parityMismatch {
		// The corrected-error count disagrees with the overall parity:
		// at least 2t+1 errors are present.
		return Result{Status: DetectedUncorrectable}
	}
	res := Result{Status: Corrected}
	for _, p := range positions {
		if p < c.degG {
			res.CheckBitsFlipped++
		} else {
			data.FlipBit(p - c.degG)
			res.DataBitsFlipped = append(res.DataBitsFlipped, p-c.degG)
		}
	}
	return res
}
