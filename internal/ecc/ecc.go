// Package ecc unifies the error-correction codecs used by the simulator
// behind a single cache-line-level interface.
//
// The concrete codes live in subpackages (parity, secded, bch, olsc); this
// package adapts them to a common Codec interface so that protection
// schemes (Killi, DECTED-per-line, FLAIR, MS-ECC) can be composed without
// caring which code family supplies correction.
package ecc

import (
	"fmt"
	"sync"

	"killi/internal/bitvec"
	"killi/internal/ecc/bch"
	"killi/internal/ecc/olsc"
	"killi/internal/ecc/secded"
)

// Status classifies a decode outcome, collapsing the per-code statuses.
type Status int

const (
	// OK: no error detected.
	OK Status = iota
	// Corrected: every detected error was corrected; data is clean.
	Corrected
	// Detected: errors were detected but could not be corrected.
	Detected
)

// String returns a short status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return fmt.Sprintf("ecc.Status(%d)", int(s))
	}
}

// Outcome reports a decode.
type Outcome struct {
	Status Status
	// DataBitsCorrected is the number of data-bit flips applied.
	DataBitsCorrected int
}

// Check is an opaque stored-checkbit container produced by a Codec's
// Encode and consumed by its Decode. Checks are not interchangeable across
// codecs.
type Check struct {
	bits   *bitvec.Vector
	global uint
}

// Bits exposes the checkbit payload width for storage accounting.
func (c Check) Bits() int {
	n := 0
	if c.bits != nil {
		n = c.bits.Len()
	}
	return n
}

// Codec encodes and decodes 512-bit cache lines.
type Codec interface {
	// Name is a short stable identifier ("secded", "dected", ...).
	Name() string
	// CheckBits is the stored checkbit count per line.
	CheckBits() int
	// CorrectsUpTo is the guaranteed correctable error count t.
	CorrectsUpTo() int
	// DetectsUpTo is the guaranteed detectable error count.
	DetectsUpTo() int
	// Encode computes checkbits for a line.
	Encode(l bitvec.Line) Check
	// Decode verifies l against stored checkbits, correcting l in place
	// when possible.
	Decode(l *bitvec.Line, c Check) Outcome
}

// --- SECDED adapter ---

type secdedCodec struct{ c *secded.Code }

func (s secdedCodec) Name() string      { return "secded" }
func (s secdedCodec) CheckBits() int    { return s.c.CheckBits() }
func (s secdedCodec) CorrectsUpTo() int { return 1 }
func (s secdedCodec) DetectsUpTo() int  { return 2 }

func (s secdedCodec) Encode(l bitvec.Line) Check {
	ck := s.c.EncodeLine(l)
	v := bitvec.NewVector(s.c.CheckBits() - 1)
	for j := 0; j < v.Len(); j++ {
		v.SetBit(j, uint(ck.Bits>>uint(j))&1)
	}
	return Check{bits: v, global: ck.Global}
}

func (s secdedCodec) Decode(l *bitvec.Line, c Check) Outcome {
	var ck secded.Check
	for j := 0; j < c.bits.Len(); j++ {
		ck.Bits |= uint32(c.bits.Bit(j)) << uint(j)
	}
	ck.Global = c.global
	res := s.c.DecodeLine(l, ck)
	switch res.Status {
	case secded.OK:
		return Outcome{Status: OK}
	case secded.CorrectedData:
		return Outcome{Status: Corrected, DataBitsCorrected: 1}
	case secded.CorrectedCheck:
		return Outcome{Status: Corrected}
	default:
		return Outcome{Status: Detected}
	}
}

// --- BCH adapter ---

type bchCodec struct {
	name string
	c    *bch.Code
}

func (b bchCodec) Name() string      { return b.name }
func (b bchCodec) CheckBits() int    { return b.c.CheckBits() }
func (b bchCodec) CorrectsUpTo() int { return b.c.T() }
func (b bchCodec) DetectsUpTo() int  { return b.c.T() + 1 }

func (b bchCodec) Encode(l bitvec.Line) Check {
	data := lineToVector(l)
	ck := b.c.Encode(data)
	return Check{bits: ck.Bits, global: ck.Global}
}

func (b bchCodec) Decode(l *bitvec.Line, c Check) Outcome {
	data := lineToVector(*l)
	res := b.c.Decode(data, bch.Check{Bits: c.bits, Global: c.global})
	switch res.Status {
	case bch.OK:
		return Outcome{Status: OK}
	case bch.Corrected:
		for _, bit := range res.DataBitsFlipped {
			l.FlipBit(bit)
		}
		return Outcome{Status: Corrected, DataBitsCorrected: len(res.DataBitsFlipped)}
	default:
		return Outcome{Status: Detected}
	}
}

// --- OLSC adapter ---

type olscCodec struct {
	name string
	c    *olsc.Code
}

func (o olscCodec) Name() string      { return o.name }
func (o olscCodec) CheckBits() int    { return o.c.CheckBits() }
func (o olscCodec) CorrectsUpTo() int { return o.c.T() }
func (o olscCodec) DetectsUpTo() int  { return o.c.T() }

func (o olscCodec) Encode(l bitvec.Line) Check {
	return Check{bits: o.c.Encode(lineToVector(l))}
}

func (o olscCodec) Decode(l *bitvec.Line, c Check) Outcome {
	data := lineToVector(*l)
	res := o.c.Decode(data, c.bits)
	switch res.Status {
	case olsc.OK:
		return Outcome{Status: OK}
	case olsc.Corrected:
		for _, bit := range res.DataBitsFlipped {
			l.FlipBit(bit)
		}
		return Outcome{Status: Corrected, DataBitsCorrected: len(res.DataBitsFlipped)}
	default:
		return Outcome{Status: Detected}
	}
}

func lineToVector(l bitvec.Line) *bitvec.Vector {
	return bitvec.LineVector(l)
}

// Cached singleton codecs: construction (especially BCH generator
// synthesis) is not free, and the codes are immutable.
var (
	secdedOnce sync.Once
	secdedInst Codec
	bchOnce    = map[int]*sync.Once{2: {}, 3: {}, 6: {}}
	bchInst    = map[int]Codec{}
	bchMu      sync.Mutex
	olscMu     sync.Mutex
	olscInst   = map[int]Codec{}
)

// SECDED returns the 11-checkbit SECDED codec for 64-byte lines.
func SECDED() Codec {
	secdedOnce.Do(func() { secdedInst = secdedCodec{secded.New(bitvec.LineBits)} })
	return secdedInst
}

// DECTED returns the 21-checkbit double-error-correcting codec.
func DECTED() Codec { return bchByT("dected", 2) }

// TECQED returns the 31-checkbit triple-error-correcting codec.
func TECQED() Codec { return bchByT("tecqed", 3) }

// SixEC7ED returns the 61-checkbit six-error-correcting codec.
func SixEC7ED() Codec { return bchByT("6ec7ed", 6) }

func bchByT(name string, t int) Codec {
	bchMu.Lock()
	defer bchMu.Unlock()
	if c, ok := bchInst[t]; ok {
		return c
	}
	c := bchCodec{name: name, c: bch.NewLine(t)}
	bchInst[t] = c
	return c
}

// OLSC returns an Orthogonal-Latin-Square codec correcting t errors per
// line (t=11 is the MS-ECC configuration).
func OLSC(t int) Codec {
	olscMu.Lock()
	defer olscMu.Unlock()
	if c, ok := olscInst[t]; ok {
		return c
	}
	c := olscCodec{name: fmt.Sprintf("olsc-%d", t), c: olsc.NewLine(t)}
	olscInst[t] = c
	return c
}

// ByName resolves a codec by its Name. Recognized: "secded", "dected",
// "tecqed", "6ec7ed", and "olsc-<t>".
func ByName(name string) (Codec, error) {
	switch name {
	case "secded":
		return SECDED(), nil
	case "dected":
		return DECTED(), nil
	case "tecqed":
		return TECQED(), nil
	case "6ec7ed":
		return SixEC7ED(), nil
	}
	var t int
	if _, err := fmt.Sscanf(name, "olsc-%d", &t); err == nil && t > 0 {
		return OLSC(t), nil
	}
	return nil, fmt.Errorf("ecc: unknown codec %q", name)
}
