package ecc

import (
	"testing"

	"killi/internal/bitvec"
	"killi/internal/xrand"
)

func randomLine(r *xrand.Rand) bitvec.Line {
	var l bitvec.Line
	for w := range l {
		l[w] = r.Uint64()
	}
	return l
}

func allCodecs() []Codec {
	return []Codec{SECDED(), DECTED(), TECQED(), SixEC7ED(), OLSC(11)}
}

func TestCheckBitCounts(t *testing.T) {
	want := map[string]int{
		"secded":  11,
		"dected":  21,
		"tecqed":  31,
		"6ec7ed":  61,
		"olsc-11": 506,
	}
	for _, c := range allCodecs() {
		if got := c.CheckBits(); got != want[c.Name()] {
			t.Errorf("%s: CheckBits = %d, want %d", c.Name(), got, want[c.Name()])
		}
	}
}

func TestCorrectionStrengths(t *testing.T) {
	want := map[string]int{"secded": 1, "dected": 2, "tecqed": 3, "6ec7ed": 6, "olsc-11": 11}
	for _, c := range allCodecs() {
		if got := c.CorrectsUpTo(); got != want[c.Name()] {
			t.Errorf("%s: CorrectsUpTo = %d, want %d", c.Name(), got, want[c.Name()])
		}
	}
}

func TestRoundTripClean(t *testing.T) {
	r := xrand.New(1)
	for _, c := range allCodecs() {
		for trial := 0; trial < 5; trial++ {
			l := randomLine(r)
			check := c.Encode(l)
			if check.Bits() == 0 {
				t.Fatalf("%s: empty check", c.Name())
			}
			cpy := l
			if out := c.Decode(&cpy, check); out.Status != OK || cpy != l {
				t.Fatalf("%s: clean decode %v", c.Name(), out.Status)
			}
		}
	}
}

func TestCorrectAtFullStrength(t *testing.T) {
	r := xrand.New(2)
	for _, c := range allCodecs() {
		tcap := c.CorrectsUpTo()
		for trial := 0; trial < 5; trial++ {
			l := randomLine(r)
			check := c.Encode(l)
			bad := l
			for _, b := range r.Sample(bitvec.LineBits, tcap) {
				bad.FlipBit(b)
			}
			out := c.Decode(&bad, check)
			if out.Status != Corrected || bad != l {
				t.Fatalf("%s: %d errors not corrected (%v)", c.Name(), tcap, out.Status)
			}
			if out.DataBitsCorrected != tcap {
				t.Fatalf("%s: corrected %d, want %d", c.Name(), out.DataBitsCorrected, tcap)
			}
		}
	}
}

func TestDetectBeyondStrength(t *testing.T) {
	// One error past the correction capability must never return OK and
	// must not be silently miscorrected for codes that guarantee t+1
	// detection.
	r := xrand.New(3)
	for _, c := range []Codec{SECDED(), DECTED(), TECQED()} {
		e := c.CorrectsUpTo() + 1
		for trial := 0; trial < 20; trial++ {
			l := randomLine(r)
			check := c.Encode(l)
			bad := l
			for _, b := range r.Sample(bitvec.LineBits, e) {
				bad.FlipBit(b)
			}
			out := c.Decode(&bad, check)
			if out.Status == OK {
				t.Fatalf("%s: %d errors decoded as OK", c.Name(), e)
			}
			if out.Status == Corrected && bad != l {
				t.Fatalf("%s: %d errors miscorrected", c.Name(), e)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"secded", "dected", "tecqed", "6ec7ed", "olsc-11", "olsc-3"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown codec did not error")
	}
	if _, err := ByName("olsc-0"); err == nil {
		t.Fatal("olsc-0 did not error")
	}
}

func TestSingletonsAreReused(t *testing.T) {
	if SECDED() != SECDED() || DECTED() != DECTED() || OLSC(11) != OLSC(11) {
		t.Fatal("codec singletons not reused")
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Fatal("status names wrong")
	}
	if Status(5).String() != "ecc.Status(5)" {
		t.Fatal("unknown status formatting wrong")
	}
}

func BenchmarkSECDEDEncodeDecode(b *testing.B) {
	c := SECDED()
	l := randomLine(xrand.New(4))
	check := c.Encode(l)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cpy := l
		cpy.FlipBit(100)
		_ = c.Decode(&cpy, check)
	}
}
