package olsc

import (
	"testing"

	"killi/internal/bitvec"
	"killi/internal/xrand"
)

func randomVector(r *xrand.Rand, n int) *bitvec.Vector {
	v := bitvec.NewVector(n)
	for i := 0; i < n; i++ {
		v.SetBit(i, uint(r.Uint64()&1))
	}
	return v
}

func TestMSECCConfiguration(t *testing.T) {
	// MS-ECC: correct up to 11 errors in a 64B line, costing about half
	// the line in checkbits.
	c := NewLine(11)
	if c.M() != 23 {
		t.Fatalf("m = %d, want 23 (smallest prime with m²≥512, m+1≥22)", c.M())
	}
	if c.CheckBits() != 506 {
		t.Fatalf("checkbits = %d, want 506", c.CheckBits())
	}
}

func TestOrthogonality(t *testing.T) {
	// Any two groups from different families must share at most one data
	// bit — the property that makes one-step majority decoding sound.
	c := New(512, 4)
	for f1 := range c.groups {
		for f2 := f1 + 1; f2 < len(c.groups); f2++ {
			for _, g1 := range c.groups[f1] {
				for _, g2 := range c.groups[f2] {
					shared := 0
					inG2 := make(map[int]bool, len(g2))
					for _, idx := range g2 {
						inG2[idx] = true
					}
					for _, idx := range g1 {
						if inG2[idx] {
							shared++
						}
					}
					if shared > 1 {
						t.Fatalf("families %d,%d share %d bits in one group pair", f1, f2, shared)
					}
				}
			}
		}
	}
}

func TestEachBitHas2TGroups(t *testing.T) {
	c := New(512, 11)
	for idx, groups := range c.bitGroups {
		if len(groups) != 2*c.t {
			t.Fatalf("bit %d covered by %d groups, want %d", idx, len(groups), 2*c.t)
		}
	}
}

func TestCleanDecode(t *testing.T) {
	c := NewLine(11)
	r := xrand.New(1)
	for trial := 0; trial < 20; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		if res := c.Decode(data, check); res.Status != OK {
			t.Fatalf("clean decode: %v", res.Status)
		}
	}
}

func TestCorrectUpToT(t *testing.T) {
	for _, tt := range []int{1, 2, 4, 11} {
		c := NewLine(tt)
		r := xrand.New(uint64(tt))
		for e := 1; e <= tt; e++ {
			for trial := 0; trial < 5; trial++ {
				data := randomVector(r, 512)
				check := c.Encode(data)
				orig := data.Clone()
				for _, b := range r.Sample(512, e) {
					data.FlipBit(b)
				}
				res := c.Decode(data, check)
				if res.Status != Corrected {
					t.Fatalf("t=%d e=%d: status %v", tt, e, res.Status)
				}
				if !data.Equal(orig) {
					t.Fatalf("t=%d e=%d: data not restored", tt, e)
				}
			}
		}
	}
}

func TestCheckbitErrorsTolerated(t *testing.T) {
	c := NewLine(11)
	r := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		orig := data.Clone()
		// A few checkbit flips plus a few data flips, total ≤ t.
		for _, b := range r.Sample(check.Len(), 3) {
			check.FlipBit(b)
		}
		for _, b := range r.Sample(512, 5) {
			data.FlipBit(b)
		}
		res := c.Decode(data, check)
		if res.Status != Corrected {
			t.Fatalf("status %v", res.Status)
		}
		if !data.Equal(orig) {
			t.Fatal("data not restored")
		}
		if res.CheckGroupErrors != 3 {
			t.Fatalf("check group errors = %d, want 3", res.CheckGroupErrors)
		}
	}
}

func TestMassiveErrorsDetected(t *testing.T) {
	// Far more errors than t must not decode as OK. (They may in rare
	// patterns miscorrect — that is inherent to any bounded-distance
	// decoder — but the common case is detection.)
	c := NewLine(4)
	r := xrand.New(3)
	detected := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		data := randomVector(r, 512)
		check := c.Encode(data)
		for _, b := range r.Sample(512, 40) {
			data.FlipBit(b)
		}
		res := c.Decode(data, check)
		if res.Status == OK {
			t.Fatal("40 errors decoded as OK")
		}
		if res.Status == DetectedUncorrectable {
			detected++
		}
	}
	if detected < trials*9/10 {
		t.Fatalf("only %d/%d massive-error patterns detected", detected, trials)
	}
}

func TestSmallCode(t *testing.T) {
	c := New(9, 1) // m=3 grid, single correction
	if c.M() != 3 || c.CheckBits() != 6 {
		t.Fatalf("m=%d check=%d", c.M(), c.CheckBits())
	}
	r := xrand.New(4)
	for trial := 0; trial < 50; trial++ {
		data := randomVector(r, 9)
		check := c.Encode(data)
		orig := data.Clone()
		data.FlipBit(r.Intn(9))
		if res := c.Decode(data, check); res.Status != Corrected || !data.Equal(orig) {
			t.Fatalf("small code: %+v", res)
		}
	}
}

func TestNonSquareK(t *testing.T) {
	// k=512 on a 23×23 grid leaves 17 unused cells; they must be
	// handled as implicit zeros.
	c := New(500, 3)
	r := xrand.New(5)
	data := randomVector(r, 500)
	check := c.Encode(data)
	orig := data.Clone()
	for _, b := range r.Sample(500, 3) {
		data.FlipBit(b)
	}
	if res := c.Decode(data, check); res.Status != Corrected || !data.Equal(orig) {
		t.Fatalf("shortened code: %+v", res)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"k=0":         func() { New(0, 1) },
		"t=0":         func() { New(9, 0) },
		"enc width":   func() { New(9, 1).Encode(bitvec.NewVector(4)) },
		"dec width":   func() { New(9, 1).Decode(bitvec.NewVector(4), bitvec.NewVector(6)) },
		"check width": func() { New(9, 1).Decode(bitvec.NewVector(9), bitvec.NewVector(7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		DetectedUncorrectable.String() != "detected-uncorrectable" ||
		Status(7).String() != "olsc.Status(7)" {
		t.Fatal("status names wrong")
	}
}

func BenchmarkDecodeMSECC(b *testing.B) {
	c := NewLine(11)
	r := xrand.New(6)
	data := randomVector(r, 512)
	check := c.Encode(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := data.Clone()
		d.FlipBit(17)
		d.FlipBit(300)
		_ = c.Decode(d, check)
	}
}
