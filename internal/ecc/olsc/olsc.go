// Package olsc implements Orthogonal Latin Square Codes: one-step
// majority-logic decodable codes that correct t errors using 2t·m checkbits
// over m² data bits.
//
// MS-ECC (Chishti et al., MICRO'09), one of the Killi paper's comparison
// points, protects ultra-low-voltage cache lines with OLSC because its
// majority-logic decoder is fast and its strength scales linearly with
// storage: for a 64-byte line, t=11 needs 2·11·23 = 506 checkbits — about
// half the line size, which is exactly MS-ECC's "sacrifice 50 % of cache
// capacity" design point. Killi §5.5 reuses the same code inside the ECC
// cache to chase lower Vmin.
//
// Construction: data bits occupy an m×m grid (m prime). Parity-check family
// 0 sums rows, family 1 sums columns, and family f ≥ 2 sums the cells on
// which the Latin square L_{f-1}(i,j) = (f-1)·i + j (mod m) is constant.
// For prime m these squares are mutually orthogonal, so any two groups from
// different families share exactly one cell; each data bit is checked by 2t
// groups that are otherwise disjoint, enabling one-step majority decoding:
// a bit is flipped iff more than t of its 2t checks fail.
package olsc

import (
	"math/bits"

	"fmt"

	"killi/internal/bitvec"
)

// Status classifies a decode outcome.
type Status int

const (
	// OK: no error detected.
	OK Status = iota
	// Corrected: all errors were corrected by majority logic.
	Corrected
	// DetectedUncorrectable: errors remain after the correction pass.
	DetectedUncorrectable
)

// String returns a short human-readable status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case DetectedUncorrectable:
		return "detected-uncorrectable"
	default:
		return fmt.Sprintf("olsc.Status(%d)", int(s))
	}
}

// Result reports a decode outcome.
type Result struct {
	Status Status
	// DataBitsFlipped lists corrected data-bit indexes.
	DataBitsFlipped []int
	// CheckGroupErrors counts residual parity-group mismatches attributed
	// to checkbit errors.
	CheckGroupErrors int
}

// Code is an OLS code over k data bits correcting up to t errors. The zero
// value is unusable; construct with New.
type Code struct {
	k, t, m int
	// groups[f][g] lists the data-bit indexes (only those < k) in group g
	// of family f.
	groups [][][]int
	// bitGroups[i] lists the (family, group) check indexes covering data
	// bit i, flattened as f*m+g.
	bitGroups [][]int
	// groupMask[f*m+g] is the word-parallel membership mask of a group:
	// the group's parity is the XOR-popcount of data AND mask.
	groupMask [][]uint64
	words     int
}

// New returns an OLS code for k data bits correcting t errors. The grid
// size m is the smallest prime with m² ≥ k and m+1 ≥ 2t. It panics on
// non-positive parameters.
func New(k, t int) *Code {
	if k <= 0 || t <= 0 {
		panic("olsc: k and t must be positive")
	}
	m := choosePrime(k, t)
	c := &Code{k: k, t: t, m: m}
	nf := 2 * t
	c.groups = make([][][]int, nf)
	c.bitGroups = make([][]int, k)
	for f := 0; f < nf; f++ {
		c.groups[f] = make([][]int, m)
	}
	for idx := 0; idx < k; idx++ {
		i, j := idx/m, idx%m
		for f := 0; f < nf; f++ {
			var g int
			switch f {
			case 0:
				g = i
			case 1:
				g = j
			default:
				g = ((f-1)*i + j) % m
			}
			c.groups[f][g] = append(c.groups[f][g], idx)
			c.bitGroups[idx] = append(c.bitGroups[idx], f*m+g)
		}
	}
	c.words = (k + 63) / 64
	c.groupMask = make([][]uint64, c.CheckBits())
	for f := range c.groups {
		for g, members := range c.groups[f] {
			mask := make([]uint64, c.words)
			for _, idx := range members {
				mask[idx>>6] |= 1 << (uint(idx) & 63)
			}
			c.groupMask[f*m+g] = mask
		}
	}
	return c
}

// NewLine returns the cache-line instantiation over 512 data bits.
// NewLine(11) is the MS-ECC configuration (506 checkbits).
func NewLine(t int) *Code { return New(bitvec.LineBits, t) }

// choosePrime returns the smallest prime m with m*m >= k and m+1 >= 2t.
func choosePrime(k, t int) int {
	m := 2
	for m*m < k || m+1 < 2*t {
		m++
	}
	for !isPrime(m) {
		m++
	}
	return m
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// DataBits returns k.
func (c *Code) DataBits() int { return c.k }

// T returns the correction strength.
func (c *Code) T() int { return c.t }

// M returns the grid dimension (a prime).
func (c *Code) M() int { return c.m }

// CheckBits returns the number of checkbits: 2·t·m.
func (c *Code) CheckBits() int { return 2 * c.t * c.m }

// Encode returns the checkbit vector: bit f·m+g is the even parity of
// group g in family f.
func (c *Code) Encode(data *bitvec.Vector) *bitvec.Vector {
	if data.Len() != c.k {
		panic(fmt.Sprintf("olsc: Encode data width %d, want %d", data.Len(), c.k))
	}
	check := bitvec.NewVector(c.CheckBits())
	words := data.Words()
	for ck, mask := range c.groupMask {
		check.SetBit(ck, c.maskParity(words, mask))
	}
	return check
}

// maskParity returns the even parity of data AND mask, word-parallel.
func (c *Code) maskParity(words, mask []uint64) uint {
	ones := 0
	for w := 0; w < c.words; w++ {
		ones += bits.OnesCount64(words[w] & mask[w])
	}
	return uint(ones) & 1
}

// Decode corrects data in place by one-step majority logic, then verifies.
// Up to t data-bit errors are always corrected; residual parity mismatches
// that cannot be attributed to checkbit errors within the t budget are
// reported as DetectedUncorrectable.
func (c *Code) Decode(data *bitvec.Vector, check *bitvec.Vector) Result {
	if data.Len() != c.k {
		panic(fmt.Sprintf("olsc: Decode data width %d, want %d", data.Len(), c.k))
	}
	if check.Len() != c.CheckBits() {
		panic(fmt.Sprintf("olsc: Decode check width %d, want %d", check.Len(), c.CheckBits()))
	}
	failed := c.failedGroups(data, check)
	anyFailed := false
	for _, f := range failed {
		if f {
			anyFailed = true
			break
		}
	}
	if !anyFailed {
		return Result{Status: OK}
	}
	// Majority vote per data bit: flip iff more than t of its 2t checks
	// fail.
	res := Result{}
	for idx := 0; idx < c.k; idx++ {
		votes := 0
		for _, ck := range c.bitGroups[idx] {
			if failed[ck] {
				votes++
			}
		}
		if votes > c.t {
			data.FlipBit(idx)
			res.DataBitsFlipped = append(res.DataBitsFlipped, idx)
		}
	}
	// Verify: recompute. Remaining single-group mismatches are checkbit
	// errors; they are tolerable while the total error count stays ≤ t.
	failed = c.failedGroups(data, check)
	remaining := 0
	for _, f := range failed {
		if f {
			remaining++
		}
	}
	res.CheckGroupErrors = remaining
	if remaining == 0 {
		res.Status = Corrected
		return res
	}
	if len(res.DataBitsFlipped)+remaining <= c.t {
		res.Status = Corrected
		return res
	}
	res.Status = DetectedUncorrectable
	return res
}

// failedGroups recomputes every parity group over data and compares with
// the stored checkbits, returning a mismatch flag per flattened group
// index.
func (c *Code) failedGroups(data *bitvec.Vector, check *bitvec.Vector) []bool {
	failed := make([]bool, c.CheckBits())
	words := data.Words()
	for ck, mask := range c.groupMask {
		if c.maskParity(words, mask) != check.Bit(ck) {
			failed[ck] = true
		}
	}
	return failed
}
