package tracefile

import (
	"bytes"
	"strings"
	"testing"

	"killi/internal/workload"
)

func TestParseBasic(t *testing.T) {
	in := `
# comment
0 R 0x1000 8
0 W 1040 4

1 r 0x2000 12
`
	traces, err := Parse(strings.NewReader(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces[0]) != 2 || len(traces[1]) != 1 {
		t.Fatalf("stream lengths %d/%d", len(traces[0]), len(traces[1]))
	}
	if traces[0][0] != (workload.Request{Addr: 0x1000, Instrs: 8}) {
		t.Fatalf("first request %+v", traces[0][0])
	}
	if !traces[0][1].Write || traces[0][1].Addr != 0x1040 {
		t.Fatalf("write request %+v", traces[0][1])
	}
	if traces[1][0].Addr != 0x2000 || traces[1][0].Instrs != 12 {
		t.Fatalf("cu1 request %+v", traces[1][0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad fields": "0 R 0x10",
		"bad cu":     "9 R 0x10 4",
		"neg cu":     "-1 R 0x10 4",
		"bad op":     "0 X 0x10 4",
		"bad addr":   "0 R zz 4",
		"zero instr": "0 R 0x10 0",
		"bad instr":  "0 R 0x10 abc",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in), 2); err == nil {
			t.Errorf("%s: no error for %q", name, in)
		}
	}
	if _, err := Parse(strings.NewReader(""), 0); err == nil {
		t.Error("zero CU count accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	w, err := workload.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	traces := w.Traces(4, 300, 9)
	var buf bytes.Buffer
	if err := Write(&buf, traces); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	for cu := range traces {
		if len(back[cu]) != len(traces[cu]) {
			t.Fatalf("cu %d: %d requests, want %d", cu, len(back[cu]), len(traces[cu]))
		}
		for i := range traces[cu] {
			if back[cu][i] != traces[cu][i] {
				t.Fatalf("cu %d req %d: %+v != %+v", cu, i, back[cu][i], traces[cu][i])
			}
		}
	}
}

func TestWriteHeaderAndFormat(t *testing.T) {
	var buf bytes.Buffer
	traces := [][]workload.Request{{{Addr: 0xabc0, Write: true, Instrs: 7}}}
	if err := Write(&buf, traces); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "#") {
		t.Fatal("missing header comment")
	}
	if !strings.Contains(out, "0 W 0xabc0 7") {
		t.Fatalf("unexpected rendering: %q", out)
	}
}

func TestParseEmptyIsEmptyStreams(t *testing.T) {
	traces, err := Parse(strings.NewReader("# nothing\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for cu, reqs := range traces {
		if len(reqs) != 0 {
			t.Fatalf("cu %d has %d requests", cu, len(reqs))
		}
	}
}
