// Package tracefile reads and writes memory traces in a plain text format,
// so the simulator can consume address streams captured from real
// applications instead of the built-in synthetic workloads.
//
// Format: one request per line,
//
//	<cu> <R|W> <address-hex> <instrs>
//
// where cu is the issuing compute unit, address is a byte address (0x
// prefix optional), and instrs is the instruction count the access
// represents. Blank lines and lines starting with '#' are ignored.
//
//	# cu op addr instrs
//	0 R 0x40001000 8
//	0 W 0x40001040 4
//	1 R 0x80000000 12
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"killi/internal/workload"
)

// Parse reads a trace, returning one request stream per CU. cus sets the
// stream count; requests naming a CU outside [0, cus) are an error.
func Parse(r io.Reader, cus int) ([][]workload.Request, error) {
	if cus <= 0 {
		return nil, fmt.Errorf("tracefile: cu count %d must be positive", cus)
	}
	out := make([][]workload.Request, cus)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("tracefile: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		cu, err := strconv.Atoi(fields[0])
		if err != nil || cu < 0 || cu >= cus {
			return nil, fmt.Errorf("tracefile: line %d: bad cu %q (have %d CUs)", lineNo, fields[0], cus)
		}
		var write bool
		switch strings.ToUpper(fields[1]) {
		case "R":
			write = false
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("tracefile: line %d: op %q is not R or W", lineNo, fields[1])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("tracefile: line %d: bad address %q: %v", lineNo, fields[2], err)
		}
		instrs, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil || instrs == 0 {
			return nil, fmt.Errorf("tracefile: line %d: bad instruction count %q", lineNo, fields[3])
		}
		out[cu] = append(out[cu], workload.Request{
			Addr:   addr,
			Write:  write,
			Instrs: uint32(instrs),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracefile: %v", err)
	}
	return out, nil
}

// Write serializes per-CU request streams in the Parse format,
// interleaving CUs round-robin so replay order roughly matches issue
// order.
func Write(w io.Writer, traces [][]workload.Request) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# cu op addr instrs")
	idx := make([]int, len(traces))
	for {
		wrote := false
		for cu, reqs := range traces {
			if idx[cu] >= len(reqs) {
				continue
			}
			req := reqs[idx[cu]]
			idx[cu]++
			wrote = true
			op := "R"
			if req.Write {
				op = "W"
			}
			if _, err := fmt.Fprintf(bw, "%d %s 0x%x %d\n", cu, op, req.Addr, req.Instrs); err != nil {
				return err
			}
		}
		if !wrote {
			break
		}
	}
	return bw.Flush()
}
