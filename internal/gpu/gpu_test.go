package gpu

import (
	"testing"

	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/workload"
)

// smallConfig shrinks the system for fast tests: 128 KB L2 keeps the
// fault-map and warm-up costs low while preserving all mechanisms.
func smallConfig(v float64) Config {
	cfg := DefaultConfig()
	cfg.L2Bytes = 128 << 10
	cfg.Voltage = v
	return cfg
}

// fac adapts a no-argument scheme constructor to the Factory the System
// consumes (it builds one instance per bank).
func fac[S protection.Scheme](newS func() S) protection.Factory {
	return func() protection.Scheme { return newS() }
}

// killiFac builds a per-bank factory for Killi with the given config.
func killiFac(c killi.Config) protection.Factory {
	return func() protection.Scheme { return killi.New(c) }
}

func shortTraces(name string, n int) [][]workload.Request {
	w, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return w.Traces(8, n, 42)
}

func TestBaselineNominalRuns(t *testing.T) {
	sys := New(smallConfig(1.0), fac(protection.NewNone))
	res := sys.Run(shortTraces("nekbone", 2000))
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatal("SDC in a fault-free system")
	}
	if res.Counters.Get("l2.error_misses") != 0 {
		t.Fatal("error misses in a fault-free system")
	}
	if res.DisabledLines != 0 {
		t.Fatal("disabled lines in a fault-free system")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
		return sys.Run(shortTraces("xsbench", 1500))
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.L2Misses != b.L2Misses || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestKilliLowVoltageRunsClean(t *testing.T) {
	sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	res := sys.Run(shortTraces("lulesh", 3000))
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatalf("SDC count = %d; Killi must deliver clean data",
			res.Counters.Get("l2.silent_data_corruption"))
	}
	// Training must have happened.
	if res.Counters.Get("killi.dfh_b'01_to_b'00") == 0 {
		t.Fatal("no lines classified fault-free")
	}
}

func TestKilliClassifiesFaultPopulation(t *testing.T) {
	// At a very low voltage the fault population is rich: expect some
	// Stable1 classifications and disabled lines.
	cfg := smallConfig(0.575)
	sys := New(cfg, killiFac(killi.Config{Ratio: 16}))
	res := sys.Run(shortTraces("xsbench", 3000))
	if res.Counters.Get("killi.dfh_b'01_to_b'10") == 0 {
		t.Fatal("no single-fault lines discovered at 0.575×VDD")
	}
	if res.Counters.Get("killi.lines_disabled") == 0 {
		t.Fatal("no multi-fault lines disabled at 0.575×VDD")
	}
	// A handful of SDCs is faithful at this voltage (Figure 6's sub-100%
	// coverage); wholesale corruption is not.
	if sdc := res.Counters.Get("l2.silent_data_corruption"); sdc > 20 {
		t.Fatalf("SDC = %d at 0.575×VDD", sdc)
	}
}

func TestKilliPerformanceNearBaseline(t *testing.T) {
	// Paper Figure 4: at 0.625×VDD Killi's slowdown vs the nominal
	// fault-free baseline stays small. Allow generous slack for the tiny
	// test configuration.
	traces := shortTraces("lulesh", 3000)
	base := New(smallConfig(1.0), fac(protection.NewNone)).Run(traces)
	lv := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 16})).Run(traces)
	slowdown := float64(lv.Cycles) / float64(base.Cycles)
	if slowdown > 1.10 {
		t.Fatalf("Killi slowdown %.3f at 0.625×VDD, want < 1.10", slowdown)
	}
	if slowdown < 0.95 {
		t.Fatalf("suspicious speedup %.3f", slowdown)
	}
}

func TestSmallerECCCacheNeverFaster(t *testing.T) {
	// Figure 4's trend: smaller ECC caches mean more contention, so
	// execution time is monotone (within noise) in 1/ratio for a
	// memory-bound workload.
	traces := shortTraces("xsbench", 2500)
	big := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 16})).Run(traces)
	small := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 256})).Run(traces)
	if float64(small.Cycles) < float64(big.Cycles)*0.99 {
		t.Fatalf("1:256 (%d cycles) materially faster than 1:16 (%d cycles)", small.Cycles, big.Cycles)
	}
	if small.Counters.Get("killi.ecc_contention_evictions") <
		big.Counters.Get("killi.ecc_contention_evictions") {
		t.Fatal("smaller ECC cache shows less contention")
	}
}

func TestWorkloadClassesSeparate(t *testing.T) {
	// Figure 5's split under the full-size L2: memory-bound MPKI is far
	// above compute-bound MPKI.
	cfg := DefaultConfig() // full 2 MB L2
	memRes := New(cfg, fac(protection.NewNone)).Run(shortTraces("xsbench", 3000))
	cmpRes := New(cfg, fac(protection.NewNone)).Run(shortTraces("nekbone", 3000))
	if memRes.MPKI() < 100 {
		t.Fatalf("xsbench MPKI = %.1f, want > 100 (memory-bound)", memRes.MPKI())
	}
	if cmpRes.MPKI() > 50 {
		t.Fatalf("nekbone MPKI = %.1f, want < 50 (compute-bound)", cmpRes.MPKI())
	}
}

func TestAllSchemesRunAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke test")
	}
	schemes := []protection.Factory{
		fac(protection.NewSECDEDPerLine),
		fac(protection.NewDECTEDPerLine),
		fac(protection.NewFLAIR),
		fac(protection.NewMSECC),
		killiFac(killi.Config{Ratio: 64}),
	}
	for _, w := range workload.Catalog() {
		traces := w.Traces(8, 600, 7)
		for _, newScheme := range schemes {
			name := newScheme().Name()
			sys := New(smallConfig(0.625), newScheme)
			res := sys.Run(traces)
			if res.Cycles == 0 {
				t.Fatalf("%s/%s produced no cycles", w.Name, name)
			}
			if sdc := res.Counters.Get("l2.silent_data_corruption"); sdc != 0 {
				t.Errorf("%s/%s: SDC = %d", w.Name, name, sdc)
			}
		}
	}
}

func TestSoftErrorInjectionHandled(t *testing.T) {
	cfg := smallConfig(0.625)
	cfg.SoftErrorPerRead = 0.01
	sys := New(cfg, killiFac(killi.Config{Ratio: 32}))
	// nekbone's shared hot set produces plenty of L2 read hits, the only
	// place soft errors are injected.
	res := sys.Run(shortTraces("nekbone", 2500))
	if res.Counters.Get("l2.soft_errors_injected") == 0 {
		t.Fatal("no soft errors injected at 1% per read")
	}
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatalf("soft errors caused %d SDCs",
			res.Counters.Get("l2.silent_data_corruption"))
	}
}

func TestVeryLowVoltageBoundedSDC(t *testing.T) {
	// Below ~0.6×VDD Killi's coverage dips under 100 % (Figure 6; the
	// §5.6.2 masked-multi-bit window): a bounded, tiny SDC count is the
	// faithful behaviour. The system must terminate with most multi-bit
	// lines disabled.
	sys := New(smallConfig(0.575), killiFac(killi.Config{Ratio: 16}))
	res := sys.Run(shortTraces("nekbone", 1500))
	sdc := res.Counters.Get("l2.silent_data_corruption")
	if sdc > res.Counters.Get("l2.read_hits")/4+25 {
		t.Fatalf("SDC = %d of %d hits at 0.575×VDD; coverage collapsed",
			sdc, res.Counters.Get("l2.read_hits"))
	}
	if res.Counters.Get("killi.lines_disabled") == 0 {
		t.Fatal("no disabled lines at 0.575×VDD")
	}
}

func TestInvertedTrainingEliminatesSDC(t *testing.T) {
	// §5.6.2: the inverted-data retraining flow closes the masked-fault
	// SDC window entirely (in the absence of multi-bit soft errors).
	for _, v := range []float64{0.625, 0.575, 0.55} {
		sys := New(smallConfig(v), killiFac(killi.Config{Ratio: 16, InvertedTraining: true}))
		res := sys.Run(shortTraces("nekbone", 1500))
		if sdc := res.Counters.Get("l2.silent_data_corruption"); sdc != 0 {
			t.Fatalf("v=%v: SDC = %d with inverted training", v, sdc)
		}
	}
}

func TestWritesExerciseWriteThroughPath(t *testing.T) {
	sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	res := sys.Run(shortTraces("fft", 2000)) // fft has a write mix
	if res.Counters.Get("l1.writes") == 0 {
		t.Fatal("fft trace produced no writes")
	}
	if res.Counters.Get("l2.write_updates") == 0 {
		t.Fatal("no write-through L2 updates")
	}
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatal("write path caused SDC")
	}
}

func TestMSECCLowestMPKIAtVeryLowVoltage(t *testing.T) {
	// Figure 5: MS-ECC keeps the most capacity, so at aggressive voltage
	// its MPKI is no worse than SECDED-per-line's.
	traces := shortTraces("xsbench", 2000)
	ms := New(smallConfig(0.575), fac(protection.NewMSECC)).Run(traces)
	sec := New(smallConfig(0.575), fac(protection.NewSECDEDPerLine)).Run(traces)
	if ms.MPKI() > sec.MPKI()+1e-9 {
		t.Fatalf("MS-ECC MPKI %.2f > SECDED %.2f at 0.575×VDD", ms.MPKI(), sec.MPKI())
	}
	if ms.DisabledLines >= sec.DisabledLines {
		t.Fatalf("MS-ECC disabled %d lines, SECDED %d", ms.DisabledLines, sec.DisabledLines)
	}
}

func BenchmarkKilliSimulation(b *testing.B) {
	traces := shortTraces("lulesh", 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
		_ = sys.Run(traces)
	}
}

func TestSteadyStateNearBaseline(t *testing.T) {
	// After a warm-up kernel trains the DFH bits, Killi's steady-state
	// execution time approaches the paper's ≤1% band even on a
	// reuse-heavy workload.
	traces := shortTraces("miniamr", 3000)
	base := New(smallConfig(1.0), fac(protection.NewNone))
	base.Run(traces)
	baseRes := base.Run(traces)

	lv := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	lv.Run(traces) // warm-up kernel: DFH training happens here
	lvRes := lv.Run(traces)

	slow := float64(lvRes.Cycles) / float64(baseRes.Cycles)
	if slow > 1.03 {
		t.Fatalf("steady-state slowdown %.4f, want ≤ 1.03", slow)
	}
}

func TestRunDeltasAreIndependent(t *testing.T) {
	// Two identical back-to-back kernels on a fault-free system must
	// report (nearly) identical per-run results.
	sys := New(smallConfig(1.0), fac(protection.NewNone))
	traces := shortTraces("nekbone", 1500)
	a := sys.Run(traces)
	b := sys.Run(traces)
	if b.Instructions != a.Instructions {
		t.Fatalf("instruction deltas differ: %d vs %d", a.Instructions, b.Instructions)
	}
	// The second kernel starts warm, so it cannot miss more than the
	// first.
	if b.L2Misses > a.L2Misses {
		t.Fatalf("warm kernel missed more: %d vs %d", b.L2Misses, a.L2Misses)
	}
}

func TestKilliDECTEDModeKeepsMoreCapacity(t *testing.T) {
	// §5.2's DECTED extension: at a voltage with many 2-fault lines,
	// DECTED-mode Killi disables fewer lines than plain Killi.
	traces := shortTraces("xsbench", 2500)
	plain := New(smallConfig(0.59), killiFac(killi.Config{Ratio: 16}))
	pRes := plain.Run(traces)
	dected := New(smallConfig(0.59), killiFac(killi.Config{Ratio: 16, UseDECTED: true}))
	dRes := dected.Run(traces)
	if dRes.DisabledLines >= pRes.DisabledLines {
		t.Fatalf("DECTED mode disabled %d lines, plain %d", dRes.DisabledLines, pRes.DisabledLines)
	}
	if dRes.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatal("DECTED mode caused SDC")
	}
	if dRes.Counters.Get("killi.dected_promotions") == 0 {
		t.Fatal("no DECTED promotions at 0.59xVDD")
	}
}

func TestFLAIROnlineTrainingCostsPerformance(t *testing.T) {
	// The paper's §5.3 argument for Killi: FLAIR's online MBIST phase
	// sacrifices capacity (7/16 ways) while it runs. With training long
	// enough to cover the run, execution slows versus pre-trained FLAIR.
	traces := shortTraces("nekbone", 2500)
	pre := New(smallConfig(0.625), fac(protection.NewFLAIR)).Run(traces)
	online := New(smallConfig(0.625), func() protection.Scheme {
		return protection.NewFLAIROnline(1 << 40)
	}).Run(traces)
	if online.Cycles <= pre.Cycles {
		t.Fatalf("online-training FLAIR (%d cycles) not slower than pre-trained (%d)",
			online.Cycles, pre.Cycles)
	}
	if online.L2Misses <= pre.L2Misses {
		t.Fatal("online training did not increase misses despite capacity loss")
	}
}

func TestAblationEvictionTrainingMatters(t *testing.T) {
	// DESIGN.md design choice: training on evictions (incl. ECC-cache
	// contention) is what makes DFH warmup converge. Without it, far
	// fewer lines reach a stable state in the same run.
	traces := shortTraces("xsbench", 2500)
	with := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64})).Run(traces)
	without := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64, NoEvictionTraining: true})).Run(traces)
	trained := func(r Result) uint64 {
		return r.Counters.Get("killi.dfh_b'01_to_b'00") + r.Counters.Get("killi.dfh_b'01_to_b'10")
	}
	if trained(without) >= trained(with) {
		t.Fatalf("eviction training off classified %d lines vs %d with it on",
			trained(without), trained(with))
	}
	if without.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatal("ablation variant caused SDC")
	}
}

func TestAblationAllocationPriorityStillCorrect(t *testing.T) {
	// Plain-LRU allocation must stay functionally correct (the priority
	// is a performance/SDC-exposure optimization only).
	traces := shortTraces("nekbone", 2000)
	res := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64, PlainLRUAllocation: true})).Run(traces)
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatal("plain-LRU allocation caused SDC")
	}
	if res.Counters.Get("killi.dfh_b'01_to_b'00") == 0 {
		t.Fatal("no training with plain-LRU allocation")
	}
}

func TestAgingFaultsRelearnedWithoutSDC(t *testing.T) {
	// The lifetime-adaptation claim (§4.3): run a kernel, wear the array
	// out between kernels, run again. Killi must relearn the aged lines
	// (post-training errors → retrain) and never deliver corrupt data.
	sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	traces := shortTraces("nekbone", 2500)
	sys.Run(traces) // train
	// 60 faults over 2048 lines keeps the probability of two new faults
	// sharing one line's fold segment (the §5.6.2-style post-training
	// blind spot, which no scheme catches without re-characterization)
	// negligible — as it is at realistic wear rates.
	sys.InjectAgingFaults(99, 60)
	res := sys.Run(traces)
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatalf("aging caused %d SDCs", res.Counters.Get("l2.silent_data_corruption"))
	}
	if res.Counters.Get("killi.post_training_single_error") == 0 {
		t.Fatal("no post-training errors despite 60 new faults on a hot working set")
	}
	if res.Counters.Get("l2.aging_faults_injected") != 60 {
		t.Fatal("aging counter wrong")
	}
}

func TestTagSoftErrorsAreSafeMisses(t *testing.T) {
	// A hot set that thrashes the 256-line L1s but fits the 2048-line L2
	// with room to spare: without tag errors every post-warmup L2 read
	// hits, so each parity event on a resident line is necessarily one
	// extra miss (there are no conflict misses an invalidation could
	// offset).
	hot := func() [][]workload.Request {
		traces := make([][]workload.Request, 8)
		for cu := range traces {
			for i := 0; i < 4000; i++ {
				traces[cu] = append(traces[cu],
					workload.Request{Addr: uint64(i%1024) * 64, Instrs: 4})
			}
		}
		return traces
	}
	cfg := smallConfig(1.0)
	cfg.TagSoftErrorPerLookup = 0.02
	res := New(cfg, fac(protection.NewNone)).Run(hot())
	if res.Counters.Get("l2.tag_parity_misses") == 0 {
		t.Fatal("no tag parity events at 2% per lookup")
	}
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatal("tag soft errors corrupted data")
	}
	// A clean run must beat the tag-error run on misses.
	clean := New(smallConfig(1.0), fac(protection.NewNone)).Run(hot())
	if clean.L2Misses >= res.L2Misses {
		t.Fatalf("tag parity misses did not increase miss count: clean %d, tag-error %d",
			clean.L2Misses, res.L2Misses)
	}
}

func TestAblationXORIndexStillCorrect(t *testing.T) {
	sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64, XORHashECCIndex: true}))
	res := sys.Run(shortTraces("xsbench", 2000))
	if res.Counters.Get("l2.silent_data_corruption") != 0 {
		t.Fatal("XOR-indexed ECC cache caused SDC")
	}
	if res.Counters.Get("killi.dfh_b'01_to_b'00") == 0 {
		t.Fatal("no training with XOR indexing")
	}
}

func TestTable7OLSCModeCapacity(t *testing.T) {
	// §5.5 / Table 7 behavioral side: at 0.575×VDD, Killi-with-OLSC
	// (1:2 ECC cache) keeps most lines usable while plain Killi loses
	// nearly everything; MS-ECC is the capacity ceiling.
	traces := shortTraces("xsbench", 2500)
	lines := smallConfig(0.575).L2Bytes / 64
	plain := New(smallConfig(0.575), killiFac(killi.Config{Ratio: 2})).Run(traces)
	olscRes := New(smallConfig(0.575), killiFac(killi.Config{Ratio: 2, OLSCStrength: 11})).Run(traces)
	ms := New(smallConfig(0.575), fac(protection.NewMSECC)).Run(traces)

	plainDisabledPct := float64(plain.DisabledLines) / float64(lines) * 100
	olscDisabledPct := float64(olscRes.DisabledLines) / float64(lines) * 100
	msDisabledPct := float64(ms.DisabledLines) / float64(lines) * 100

	if plainDisabledPct < 50 {
		t.Fatalf("plain Killi disabled only %.1f%% at 0.575; expected a collapse", plainDisabledPct)
	}
	if olscDisabledPct > 45 {
		t.Fatalf("OLSC-mode Killi disabled %.1f%%; should retain most touched lines", olscDisabledPct)
	}
	// §6: Killi "takes advantage of LV fault masking to enable a higher
	// number of cache lines than full knowledge of faults would allow" —
	// runtime classification only sees unmasked faults, so it disables
	// no MORE than the oracle-driven MS-ECC characterization.
	if olscDisabledPct > msDisabledPct+1 {
		t.Fatalf("OLSC Killi disabled %.1f%% vs MS-ECC oracle %.1f%%",
			olscDisabledPct, msDisabledPct)
	}
	if sdc := olscRes.Counters.Get("l2.silent_data_corruption"); sdc > 5 {
		t.Fatalf("OLSC mode SDC = %d", sdc)
	}
}
