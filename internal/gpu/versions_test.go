package gpu

import (
	"testing"

	"killi/internal/protection"
	"killi/internal/workload"
)

// streamTraces builds a pure streaming read-then-write trace: every request
// pair touches a line address never seen before, starting at startLine.
// This is the worst case for the version map — every store creates an
// entry, and no line is ever revisited.
func streamTraces(cus, pairs int, startLine uint64) ([][]workload.Request, uint64) {
	traces := make([][]workload.Request, cus)
	next := startLine
	for cu := 0; cu < cus; cu++ {
		tr := make([]workload.Request, 0, 2*pairs)
		for i := 0; i < pairs; i++ {
			addr := next * 64
			next++
			tr = append(tr,
				workload.Request{Addr: addr, Instrs: 4},
				workload.Request{Addr: addr, Write: true, Instrs: 4})
		}
		traces[cu] = tr
	}
	return traces, next
}

// liveLineStateEntries sums the live line-state entries over all banks.
func liveLineStateEntries(sys *System) int {
	n := 0
	for _, b := range sys.banks {
		n += b.lineState.live
	}
	return n
}

// TestVersionsMapBounded runs a streaming write workload over fresh
// addresses across many Run calls and checks the per-bank line-state
// tables stay bounded: entries for lines no longer observable through any
// cache level are pruned once a bank's table crosses its high-water mark,
// instead of growing with the total footprint forever.
func TestVersionsMapBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CUs = 2
	cfg.L1Bytes = 4 << 10
	cfg.L2Bytes = 64 << 10 // 1024 lines -> summed high water at 4096 entries
	cfg.L2Banks = 4
	sys := New(cfg, fac(protection.NewNone))

	// Pending increments do not trigger a prune themselves, so between
	// prunes the tables can overshoot their summed high-water mark by at
	// most the in-flight read window.
	highWater := 0
	for _, b := range sys.banks {
		highWater += b.versionsHighWater
	}
	bound := highWater + cfg.CUs*cfg.WindowPerCU

	totalLines := uint64(0)
	next := uint64(1)
	for run := 0; run < 8; run++ {
		var traces [][]workload.Request
		traces, next = streamTraces(cfg.CUs, 1000, next)
		sys.Run(traces)
		totalLines += uint64(cfg.CUs) * 1000
		// pendingDec decrements counts to zero in place (dead entries are
		// swept in bulk at the high-water mark, not removed one by one);
		// after a drain there must be no positive count left.
		for _, b := range sys.banks {
			for i, k := range b.lineState.keys {
				if k == 0 {
					continue
				}
				if n := packedPending(b.lineState.vals[i]); n > 0 {
					t.Fatalf("run %d: bank %d line %#x has %d pending reads after drain",
						run, b.bank, k-1, n)
				}
			}
		}
		if live := liveLineStateEntries(sys); live > bound {
			t.Fatalf("run %d: line-state tables grew to %d entries (summed high water %d)",
				run, live, highWater)
		}
	}
	if totalLines <= uint64(highWater) {
		t.Fatalf("test footprint %d lines does not exceed the high-water mark %d",
			totalLines, highWater)
	}
	// Between prunes a table may grow back up to its high-water mark plus
	// the entries added before the next prune fires; the total must not
	// track the full 16000-line footprint.
	if live := liveLineStateEntries(sys); live > bound {
		t.Fatalf("line-state tables grew to %d entries (summed high water %d, footprint %d lines)",
			live, highWater, totalLines)
	}
	sys.mergeCounters()
	if sys.ctr.Get("l2.version_prunes") == 0 {
		t.Fatal("pruning never triggered despite footprint above high water")
	}
}

// TestUnobservableStoreSkipsVersionEntry checks that a store to a line
// absent from every cache level (and with no read in flight) does not
// record a version bump.
func TestUnobservableStoreSkipsVersionEntry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CUs = 1
	sys := New(cfg, fac(protection.NewNone))
	lineStateOf := func(addr uint64) uint64 {
		bank, _, _ := sys.split(addr)
		return sys.banks[bank].lineState.get(addr >> sys.lineShift)
	}
	traces := [][]workload.Request{{
		{Addr: 0x1000, Write: true, Instrs: 4}, // blind store, nothing resident
	}}
	sys.Run(traces)
	if v := packedVersion(lineStateOf(0x1000)); v != 0 {
		t.Fatalf("blind store recorded version %d, want 0", v)
	}

	// A read followed by a store to the same line must record the version:
	// the line is resident (or in flight) when the store lands.
	traces = [][]workload.Request{{
		{Addr: 0x2000, Instrs: 4},
		{Addr: 0x2000, Write: true, Instrs: 4},
	}}
	sys.Run(traces)
	if v := packedVersion(lineStateOf(0x2000)); v != 1 {
		t.Fatalf("observable store recorded version %d, want 1", v)
	}
}

// TestRandomValidWayWideAssoc verifies the victim candidate buffer scales
// with the configured associativity: with 128 ways and every way valid,
// selection must be able to return ways above the old 64-entry cap.
func TestRandomValidWayWideAssoc(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2Bytes = 128 * 64 * 4 // 4 global sets of 128 ways
	cfg.L2Ways = 128
	cfg.L2Banks = 2
	sys := New(cfg, fac(protection.NewNone))
	b := sys.banks[0]
	for way := 0; way < cfg.L2Ways; way++ {
		b.tags.Install(0, way, uint64(way))
	}
	seen := make(map[int]bool)
	for i := 0; i < 4096; i++ {
		seen[b.randomValidWay(0, 0)] = true
	}
	high := 0
	for w := range seen {
		if w > high {
			high = w
		}
	}
	if high < 64 {
		t.Fatalf("no way above 63 ever selected in 4096 draws (max %d): candidate buffer capped", high)
	}
	if len(seen) < cfg.L2Ways/2 {
		t.Fatalf("only %d of %d ways ever selected", len(seen), cfg.L2Ways)
	}
}
