package gpu

import (
	"testing"

	"killi/internal/killi"
	"killi/internal/obs"
)

// TestObservedRunIsBitIdentical runs the same fixed-seed simulation with
// and without a Collector attached and demands identical results: the
// observer only reads state, and its daemon ticker events must not perturb
// the non-daemon event order.
func TestObservedRunIsBitIdentical(t *testing.T) {
	run := func(col obs.Observer) Result {
		sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
		if col != nil {
			sys.SetObserver(col, 2048)
		}
		return sys.Run(shortTraces("xsbench", 1500))
	}
	plain := run(nil)
	col := obs.NewCollector()
	observed := run(col)
	if plain.Cycles != observed.Cycles || plain.L2Misses != observed.L2Misses ||
		plain.Instructions != observed.Instructions ||
		plain.DisabledLines != observed.DisabledLines {
		t.Fatalf("observation perturbed the run:\nplain    %+v\nobserved %+v", plain, observed)
	}
	for _, n := range plain.Counters.Names() {
		if plain.Counters.Get(n) != observed.Counters.Get(n) {
			t.Errorf("counter %s: plain %d, observed %d", n, plain.Counters.Get(n), observed.Counters.Get(n))
		}
	}
}

// TestObserverCollectsCoherentSeries checks the collected series against
// the simulator's own statistics: an initial reset, monotone epoch cycles,
// a final-flush sample at the run end, epoch deltas tiling the run totals,
// and a disabled population matching the tag store.
func TestObserverCollectsCoherentSeries(t *testing.T) {
	const epoch = 2048
	sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	col := obs.NewCollector()
	sys.SetObserver(col, epoch)
	res := sys.Run(shortTraces("xsbench", 1500))

	if len(col.Resets()) != 1 {
		t.Fatalf("recorded %d resets, want the initial one", len(col.Resets()))
	}
	if r := col.Resets()[0]; r.Cycle != 0 || r.Voltage != 0.625 || r.Lines != col.Lines() {
		t.Fatalf("initial reset %+v malformed", r)
	}
	eps := col.Epochs()
	if len(eps) == 0 {
		t.Fatal("no epochs collected")
	}
	var accs, misses, instrs uint64
	last := uint64(0)
	for i, e := range eps {
		if e.Cycle <= last {
			t.Fatalf("epoch %d cycle %d not after previous %d", i, e.Cycle, last)
		}
		if want := obs.EpochIndex(e.Cycle, epoch); e.Epoch != want {
			t.Fatalf("epoch %d index %d, want %d for cycle %d", i, e.Epoch, want, e.Cycle)
		}
		// All but the final sample land exactly on epoch boundaries.
		if i < len(eps)-1 && e.Cycle%epoch != 0 {
			t.Fatalf("epoch %d sampled off-boundary at cycle %d", i, e.Cycle)
		}
		last = e.Cycle
		accs += e.L2Accesses
		misses += e.L2Misses
		instrs += e.Instructions
	}
	if eps[len(eps)-1].Cycle != res.Cycles {
		t.Fatalf("final flush at cycle %d, want run end %d", eps[len(eps)-1].Cycle, res.Cycles)
	}
	if accs != res.L2Accesses || misses != res.L2Misses || instrs != res.Instructions {
		t.Fatalf("epoch deltas don't tile the run: acc %d/%d miss %d/%d instr %d/%d",
			accs, res.L2Accesses, misses, res.L2Misses, instrs, res.Instructions)
	}
	if got := col.Populations()[obs.StateDisabled]; got != res.DisabledLines {
		t.Fatalf("collector disabled population %d, tag store says %d", got, res.DisabledLines)
	}
	if len(col.Transitions()) == 0 {
		t.Fatal("no DFH transitions recorded at 0.625xVDD")
	}
}

// TestObserverTicksAcrossRuns pins the daemon-ticker lifecycle: the epoch
// ticker armed in the first Run persists in the queue and keeps sampling in
// later Runs (warm-up kernel followed by a measured kernel) without gaps.
func TestObserverTicksAcrossRuns(t *testing.T) {
	sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	col := obs.NewCollector()
	sys.SetObserver(col, 2048)
	traces := shortTraces("xsbench", 1000)
	res1 := sys.Run(traces)
	n1 := len(col.Epochs())
	res2 := sys.Run(traces)
	if n1 == 0 || len(col.Epochs()) <= n1 {
		t.Fatalf("epochs per run: first %d, after second %d — ticker died between Runs",
			n1, len(col.Epochs()))
	}
	last := uint64(0)
	for i, e := range col.Epochs() {
		if e.Cycle <= last {
			t.Fatalf("epoch %d cycle %d not after previous %d across Runs", i, e.Cycle, last)
		}
		last = e.Cycle
	}
	// Result.Cycles is per-Run; the collector records absolute engine
	// cycles, so the final flush lands at the sum of both kernels.
	if last != res1.Cycles+res2.Cycles {
		t.Fatalf("final sample at %d, want cumulative run end %d", last, res1.Cycles+res2.Cycles)
	}
}
