package gpu

import (
	"killi/internal/obs"
	"killi/internal/stats"
)

// ECC-cache activity counters interned by name. They are owned (and
// incremented) by the killi package; gpu cannot import killi without a
// cycle, but the stats registry is name-keyed and process-wide, so
// interning the same names here yields the same handles. Schemes without
// an ECC cache simply never touch them and the epoch sampler reads zeros.
var (
	cObsECCAccesses   = stats.Intern("killi.ecc_accesses")
	cObsECCContention = stats.Intern("killi.ecc_contention_evictions")
)

// DefaultEpochCycles is the epoch length SetObserver falls back to: fine
// enough to resolve DFH training (tens of samples over a short kernel),
// coarse enough that sampling cost is invisible next to simulation.
const DefaultEpochCycles = 4096

// eccProber is the optional scheme interface the epoch sampler probes for
// ECC-cache occupancy. killi.Scheme implements it; baselines do not.
type eccProber interface {
	ECCOccupancy() int
	ECCEntries() int
}

// Now implements protection.Host: the current simulation cycle.
func (s *System) Now() uint64 { return s.eng.Now() }

// Observer implements protection.Host: the attached observability sink,
// nil when observability is off.
func (s *System) Observer() obs.Observer { return s.observer }

// SetObserver attaches an observability sink and an epoch length in cycles
// (0 means DefaultEpochCycles). Call it after New and before the first
// Run; the observer immediately receives a Reset describing the current
// state (every line Initial — exactly what the scheme's construction-time
// DFH reset left behind), and from then on an epoch Sample at every epoch
// boundary plus classification transitions as the scheme reports them.
//
// With o == nil (the default) the simulation schedules no sampling events
// and emits nothing: the hot path is unchanged, allocation-free, and
// bit-identical — pinned by the golden-digest tests. With an observer
// attached the simulated machine still behaves identically (sampling only
// reads state); only the wall-clock cost changes.
func (s *System) SetObserver(o obs.Observer, epochCycles uint64) {
	s.observer = o
	if epochCycles == 0 {
		epochCycles = DefaultEpochCycles
	}
	s.obsEpoch = epochCycles
	s.obsTicker = nil
	if o == nil {
		return
	}
	o.OnReset(obs.Reset{
		Cycle:   s.eng.Now(),
		Voltage: s.cfg.Voltage,
		Lines:   s.l2tags.Config().Lines(),
	})
}

// obsTicker is the self-rescheduling daemon event that samples one epoch.
// It keeps the previous cumulative counter values so each Sample carries
// interval deltas.
type obsTicker struct {
	s         *System
	every     uint64
	lastCycle uint64 // cycle of the last emitted sample

	// cumulative values at the last sample
	lastAcc, lastReadMiss, lastErrMiss uint64
	lastStall, lastInstr               uint64
	lastECCAcc, lastECCEvict           uint64
}

// startObserver lazily creates and arms the epoch ticker on the first Run
// after SetObserver. Re-arming across Runs is unnecessary: the daemon
// event persists in the engine queue between kernels.
func (s *System) startObserver() {
	if s.obsTicker != nil {
		return
	}
	s.obsTicker = &obsTicker{s: s, every: s.obsEpoch, lastCycle: s.eng.Now()}
	s.obsTicker.arm()
}

// arm schedules the ticker at the next epoch boundary strictly after now.
func (t *obsTicker) arm() {
	now := t.s.eng.Now()
	next := now - now%t.every + t.every
	t.s.eng.ScheduleDaemonHandler(next-now, t)
}

// Fire implements engine.Handler: sample the closing epoch, re-arm.
func (t *obsTicker) Fire() {
	t.sample()
	t.arm()
}

// sample emits one obs.Sample with deltas since the previous sample. It is
// also called once at the end of every Run to flush the final partial
// epoch (skipped when no cycles elapsed since the last boundary).
func (t *obsTicker) sample() {
	s := t.s
	now := s.eng.Now()
	acc := s.ctr.GetC(cL2Accesses)
	readMiss := s.ctr.GetC(cReadMisses)
	errMiss := s.ctr.GetC(cErrorMisses)
	stall := s.ctr.GetC(cTransitionStall)
	eccAcc := s.ctr.GetC(cObsECCAccesses)
	eccEvict := s.ctr.GetC(cObsECCContention)
	smp := obs.Sample{
		Epoch:                  obs.EpochIndex(now, t.every),
		Cycle:                  now,
		L2Accesses:             acc - t.lastAcc,
		L2Misses:               (readMiss + errMiss) - (t.lastReadMiss + t.lastErrMiss),
		ErrorMisses:            errMiss - t.lastErrMiss,
		Instructions:           s.instrsIssued - t.lastInstr,
		StallCycles:            stall - t.lastStall,
		DisabledLines:          s.l2tags.DisabledLines(),
		ECCAccesses:            eccAcc - t.lastECCAcc,
		ECCContentionEvictions: eccEvict - t.lastECCEvict,
	}
	if p, ok := s.scheme.(eccProber); ok {
		smp.ECCOccupancy = p.ECCOccupancy()
		smp.ECCEntries = p.ECCEntries()
	}
	t.lastCycle = now
	t.lastAcc, t.lastReadMiss, t.lastErrMiss = acc, readMiss, errMiss
	t.lastStall, t.lastInstr = stall, s.instrsIssued
	t.lastECCAcc, t.lastECCEvict = eccAcc, eccEvict
	s.observer.OnEpoch(smp)
}

// flushObserver emits the final partial epoch of a Run, if any cycles
// elapsed since the last boundary sample.
func (s *System) flushObserver() {
	if s.obsTicker != nil && s.eng.Now() > s.obsTicker.lastCycle {
		s.obsTicker.sample()
	}
}
