package gpu

import (
	"sort"

	"killi/internal/obs"
	"killi/internal/stats"
)

// ECC-cache activity counters interned by name. They are owned (and
// incremented) by the killi package; gpu cannot import killi without a
// cycle, but the stats registry is name-keyed and process-wide, so
// interning the same names here yields the same handles. Schemes without
// an ECC cache simply never touch them and the epoch sampler reads zeros.
var (
	cObsECCAccesses   = stats.Intern("killi.ecc_accesses")
	cObsECCContention = stats.Intern("killi.ecc_contention_evictions")
)

// DefaultEpochCycles is the epoch length SetObserver falls back to: fine
// enough to resolve DFH training (tens of samples over a short kernel),
// coarse enough that sampling cost is invisible next to simulation.
const DefaultEpochCycles = 4096

// eccProber is the optional scheme interface the epoch sampler probes for
// ECC-cache occupancy. killi.Scheme implements it; baselines do not.
type eccProber interface {
	ECCOccupancy() int
	ECCEntries() int
}

// Observer implements protection.Host for a bank: the bank's buffering
// sink when observability is on, nil otherwise (the common case, which
// schemes must keep allocation-free by emitting nothing).
func (b *bankDomain) Observer() obs.Observer {
	if b.sys.observer == nil {
		return nil
	}
	return b.obsBuf
}

// SetObserver attaches an observability sink and an epoch length in cycles
// (0 means DefaultEpochCycles). Call it after New and before the first
// Run; the observer immediately receives a Reset describing the current
// state (every line Initial — exactly what the schemes' construction-time
// DFH reset left behind), and from then on an epoch Sample at every epoch
// boundary plus classification transitions as the schemes report them.
//
// With o == nil (the default) the simulation arms no pacer and emits
// nothing: the hot path is unchanged, allocation-free, and bit-identical —
// pinned by the golden-digest tests. With an observer attached the
// simulated machine still behaves identically (sampling only reads state);
// only the wall-clock cost changes.
//
// Emission ordering is deterministic at every shard count: each bank
// buffers its schemes' events (translating bank-local line IDs to whole-L2
// ones), and the buffers are drained sorted by (cycle, bank) at epoch
// boundaries and Run edges — same-cycle per-bank DFH resets coalesce into
// one whole-cache Reset. The intra-bank order is the bank's canonical
// event order, which the engine guarantees is shard-invariant.
func (s *System) SetObserver(o obs.Observer, epochCycles uint64) {
	s.observer = o
	if epochCycles == 0 {
		epochCycles = DefaultEpochCycles
	}
	s.obsEpoch = epochCycles
	s.sampler = nil
	if o == nil {
		s.eng.SetPacer(0, nil)
		for _, b := range s.banks {
			b.obsBuf = nil
		}
		return
	}
	for _, b := range s.banks {
		b.obsBuf = &bankObserver{b: b}
	}
	o.OnReset(obs.Reset{
		Cycle:   s.eng.Now(),
		Voltage: s.cfg.Voltage,
		Lines:   s.L2Lines(),
	})
}

// bufferedObsEvent is one buffered scheme emission awaiting the
// deterministic cross-bank flush. kind 0 is a Reset, 1 a Transition.
type bufferedObsEvent struct {
	cycle uint64
	bank  int
	kind  uint8
	reset obs.Reset
	trans obs.Transition
}

// bankObserver is the obs.Observer a bank hands its scheme: it only
// buffers, so emission cost never perturbs cross-bank event timing and the
// flush can impose a shard-count-independent order.
type bankObserver struct {
	b      *bankDomain
	events []bufferedObsEvent
}

// OnReset buffers a scheme's DFH reset. The scheme reports its own (bank)
// line count; same-cycle resets across banks are summed into one
// whole-cache Reset at flush.
func (o *bankObserver) OnReset(r obs.Reset) {
	o.events = append(o.events, bufferedObsEvent{cycle: r.Cycle, bank: o.b.bank, kind: 0, reset: r})
}

// OnTransition buffers a classification transition, translating the
// scheme's bank-local line ID into the whole-L2 ID the export format uses.
func (o *bankObserver) OnTransition(t obs.Transition) {
	t.Line = o.b.globalLineID(t.Line)
	o.events = append(o.events, bufferedObsEvent{cycle: t.Cycle, bank: o.b.bank, kind: 1, trans: t})
}

// OnEpoch is never called by schemes — epoch samples are assembled by the
// System's pacer hook.
func (o *bankObserver) OnEpoch(obs.Sample) {}

// obsSampler holds the cumulative counter values at the last emitted
// sample, so each Sample carries interval deltas.
type obsSampler struct {
	every     uint64
	lastCycle uint64

	lastAcc, lastReadMiss, lastErrMiss uint64
	lastStall, lastInstr               uint64
	lastECCAcc, lastECCEvict           uint64
}

// startObserver lazily arms the engine pacer on the first Run after
// SetObserver and flushes any emissions buffered between Runs (voltage
// transitions reset DFH state outside the event loop).
func (s *System) startObserver() {
	s.flushBuffered()
	if s.sampler != nil {
		return
	}
	s.sampler = &obsSampler{every: s.obsEpoch, lastCycle: s.eng.Now()}
	s.eng.SetPacer(s.obsEpoch, s.onBoundary)
}

// onBoundary is the engine pacer hook: it runs strictly between event
// rounds (every domain parked), so it may read all domain state. It fires
// once per epoch boundary that precedes a remaining event.
func (s *System) onBoundary(boundary uint64) {
	s.flushBuffered()
	s.sample(boundary)
}

// flushObserver emits buffered events and the final partial epoch of a
// Run, if any cycles elapsed since the last boundary sample.
func (s *System) flushObserver() {
	s.flushBuffered()
	if s.sampler != nil && s.eng.Now() > s.sampler.lastCycle {
		s.sample(s.eng.Now())
	}
}

// flushBuffered drains every bank's buffered emissions to the observer in
// deterministic order: sorted by cycle, ties broken by bank index, and
// within a bank by its canonical event order (a stable sort over the
// bank-major collection preserves both). Consecutive same-cycle Resets
// coalesce into one whole-cache Reset with summed line counts — the per-
// bank schemes reset together, and the export format describes the cache,
// not the banking.
func (s *System) flushBuffered() {
	if s.observer == nil {
		return
	}
	all := s.obsScratch[:0]
	for _, b := range s.banks {
		if b.obsBuf != nil {
			all = append(all, b.obsBuf.events...)
			b.obsBuf.events = b.obsBuf.events[:0]
		}
	}
	if len(all) == 0 {
		s.obsScratch = all
		return
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].cycle < all[j].cycle })
	for i := 0; i < len(all); {
		ev := all[i]
		if ev.kind != 0 {
			s.observer.OnTransition(ev.trans)
			i++
			continue
		}
		r := ev.reset
		i++
		for i < len(all) && all[i].kind == 0 && all[i].cycle == r.Cycle {
			r.Lines += all[i].reset.Lines
			i++
		}
		s.observer.OnReset(r)
	}
	s.obsScratch = all[:0]
}

// sample emits one obs.Sample for the epoch closing at the given cycle,
// with deltas since the previous sample. Counter state is merged across
// domains first; every domain is parked (or the engine idle), so the scan
// is safe and — because merge order is fixed and addition commutes —
// deterministic at every shard count.
func (s *System) sample(cycle uint64) {
	t := s.sampler
	s.mergeCounters()
	acc := s.ctr.GetC(cL2Accesses)
	readMiss := s.ctr.GetC(cReadMisses)
	errMiss := s.ctr.GetC(cErrorMisses)
	stall := s.ctr.GetC(cTransitionStall)
	eccAcc := s.ctr.GetC(cObsECCAccesses)
	eccEvict := s.ctr.GetC(cObsECCContention)
	var instrs uint64
	for _, c := range s.cus {
		instrs += c.instrsTotal
	}
	smp := obs.Sample{
		Epoch:                  obs.EpochIndex(cycle, t.every),
		Cycle:                  cycle,
		L2Accesses:             acc - t.lastAcc,
		L2Misses:               (readMiss + errMiss) - (t.lastReadMiss + t.lastErrMiss),
		ErrorMisses:            errMiss - t.lastErrMiss,
		Instructions:           instrs - t.lastInstr,
		StallCycles:            stall - t.lastStall,
		DisabledLines:          s.DisabledLines(),
		ECCAccesses:            eccAcc - t.lastECCAcc,
		ECCContentionEvictions: eccEvict - t.lastECCEvict,
	}
	if occ, entries, ok := s.ECCStats(); ok {
		smp.ECCOccupancy = occ
		smp.ECCEntries = entries
	}
	t.lastCycle = cycle
	t.lastAcc, t.lastReadMiss, t.lastErrMiss = acc, readMiss, errMiss
	t.lastStall, t.lastInstr = stall, instrs
	t.lastECCAcc, t.lastECCEvict = eccAcc, eccEvict
	s.observer.OnEpoch(smp)
}
