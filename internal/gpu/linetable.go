package gpu

import "math/bits"

// lineTable is an open-addressed hash table from line address to that
// line's write version (high 32 bits) and in-flight L2-side read count
// (low 32 bits, two's complement). It replaces two runtime maps on the
// simulator's hottest paths — the store path's version bump and the L1
// miss path's pending increment/retire — with single-probe fibonacci
// hashing and linear probing, and merges the two lookups those paths used
// to make into one.
//
// Entries are only ever removed wholesale (System.pruneLines rebuilds the
// table without the dead entries), so probing needs no tombstones.
type lineTable struct {
	keys []uint64 // lineAddr+1; 0 marks an empty slot
	vals []uint64 // version<<32 | uint32(pending)
	live int
	// shift maps the fibonacci product's high bits onto the table size:
	// len(keys) == 1<<(64-shift).
	shift uint
}

const lineTableMinCap = 1024 // power of two

func packedVersion(v uint64) uint32 { return uint32(v >> 32) }
func packedPending(v uint64) int32  { return int32(uint32(v)) }

// init replaces the table with an empty one of at least the given capacity.
func (t *lineTable) init(capacity int) {
	n := lineTableMinCap
	for n < capacity {
		n <<= 1
	}
	t.keys = make([]uint64, n)
	t.vals = make([]uint64, n)
	t.live = 0
	t.shift = uint(64 - bits.TrailingZeros(uint(n)))
}

func (t *lineTable) idx(key uint64) uint64 {
	return key * 0x9e3779b97f4a7c15 >> t.shift
}

// get returns the packed value for lineAddr, or 0 when absent (a zero
// value and an absent entry are semantically identical: version 0, no
// in-flight reads).
func (t *lineTable) get(lineAddr uint64) uint64 {
	if t.keys == nil {
		return 0
	}
	k := lineAddr + 1
	mask := uint64(len(t.keys) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return t.vals[i]
		case 0:
			return 0
		}
	}
}

// ref returns a pointer to lineAddr's packed value, inserting a zero entry
// (and growing the table) as needed. The pointer is invalidated by the
// next ref call.
func (t *lineTable) ref(lineAddr uint64) *uint64 {
	if t.keys == nil {
		t.init(lineTableMinCap)
	} else if 4*(t.live+1) > 3*len(t.keys) {
		t.grow()
	}
	k := lineAddr + 1
	mask := uint64(len(t.keys) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return &t.vals[i]
		case 0:
			t.keys[i] = k
			t.live++
			return &t.vals[i]
		}
	}
}

func (t *lineTable) grow() {
	old := *t
	t.init(2 * len(old.keys))
	for i, k := range old.keys {
		if k != 0 {
			*t.ref(k - 1) = old.vals[i]
		}
	}
}
