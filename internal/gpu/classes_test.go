package gpu

import (
	"testing"

	"killi/internal/faultmodel"
	"killi/internal/killi"
	"killi/internal/protection"
)

func mixedSpec(t *testing.T, s string) faultmodel.ClassSpec {
	t.Helper()
	spec, err := faultmodel.ParseClassSpec(s)
	if err != nil {
		t.Fatalf("ParseClassSpec(%q): %v", s, err)
	}
	return spec
}

// classedConfig is smallConfig with a mixed fault population: intermittent
// and aging faults plus a transient-strike rate high enough that every
// class exercises its path within a short trace.
func classedConfig(t *testing.T, v float64) Config {
	cfg := smallConfig(v)
	cfg.Classes = mixedSpec(t, "mixed:i=0.3@0.5,a=0.1@0.05,t=2e-08")
	return cfg
}

// TestClassedZeroSpecBitIdentity pins the tentpole compatibility contract
// at the system level: a Config whose Classes field is the zero spec runs
// bit-identically — cycles, every counter, disabled lines — to the same
// Config without the field ever having existed (the legacy path).
func TestClassedZeroSpecBitIdentity(t *testing.T) {
	traces := shortTraces("xsbench", 1200)
	legacy := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	classed := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
	// smallConfig leaves Classes zero; assert that explicitly so the test
	// keeps meaning if defaults ever change.
	if !classed.cfg.Classes.IsZero() {
		t.Fatal("smallConfig no longer has a zero ClassSpec")
	}
	d1 := resultDigest(legacy.Run(traces))
	d2 := resultDigest(classed.Run(traces))
	if d1 != d2 {
		t.Fatalf("zero-spec digest %#x differs from legacy %#x", d2, d1)
	}
}

// TestClassedShardCountInvariant extends the determinism gate to a mixed
// fault population: intermittent activation, aging ramp, and the
// transient-strike ticker must all be pure functions of simulated time, so
// the digest is identical at K = 1, 2, 4, 16.
func TestClassedShardCountInvariant(t *testing.T) {
	traces := shortTraces("xsbench", 1200)
	var want uint64
	var wantStrikes uint64
	for i, k := range shardCounts {
		sys := New(classedConfig(t, 0.625), killiFac(killi.Config{Ratio: 64}))
		sys.SetShards(k)
		res := sys.Run(traces)
		d := resultDigest(res)
		if i == 0 {
			want = d
			wantStrikes = res.TransientStrikes
			if wantStrikes == 0 {
				t.Fatal("strike ticker injected nothing; raise the rate so the test exercises it")
			}
			continue
		}
		if d != want {
			t.Fatalf("K=%d classed digest %#x differs from K=1 digest %#x", k, d, want)
		}
		if res.TransientStrikes != wantStrikes {
			t.Fatalf("K=%d strikes %d, K=1 %d", k, res.TransientStrikes, wantStrikes)
		}
	}
}

// TestClassedShardInvariantAcrossRuns covers the cross-kernel state: the
// fault epoch derives from the monotone engine clock and the strike ticker
// stays armed between Runs, so warm-up + measured kernels agree at every
// shard count.
func TestClassedShardInvariantAcrossRuns(t *testing.T) {
	traces := shortTraces("nekbone", 1000)
	run := func(k int) (uint64, uint64) {
		sys := New(classedConfig(t, 0.625), killiFac(killi.Config{Ratio: 64}))
		sys.SetShards(k)
		warm := sys.Run(traces)
		meas := sys.Run(traces)
		return resultDigest(warm), resultDigest(meas)
	}
	w1, m1 := run(1)
	for _, k := range []int{2, 4, 16} {
		wk, mk := run(k)
		if wk != w1 || mk != m1 {
			t.Fatalf("K=%d classed diverges across runs: warm %#x/%#x measured %#x/%#x",
				k, wk, w1, mk, m1)
		}
	}
}

// TestMisclassificationOracle pins the oracle's contract: available exactly
// for DFH schemes, internally consistent, and — under an intermittent
// population — reporting the nonzero misclassification the taxonomy
// exists to measure. The persistent-only control must show no false trust
// of Stable0 lines after the same training.
func TestMisclassificationOracle(t *testing.T) {
	traces := shortTraces("xsbench", 3000)

	if _, ok := New(smallConfig(0.625), fac(protection.NewNone)).Misclassification(); ok {
		t.Fatal("oracle claims availability on a scheme without DFH codes")
	}

	check := func(sys *System) Misclass {
		t.Helper()
		res := sys.Run(traces)
		if !res.HasMisclass {
			t.Fatal("killi run did not report misclassification")
		}
		m := res.Misclass
		if m.Lines != sys.L2Lines() {
			t.Fatalf("oracle inspected %d lines, L2 has %d", m.Lines, sys.L2Lines())
		}
		if m.FalseDisable > m.Disabled {
			t.Fatalf("false disables %d exceed disabled %d", m.FalseDisable, m.Disabled)
		}
		if m.TrueFaulty == 0 {
			t.Fatal("fault map produced no capable-faulty lines at 0.625V")
		}
		return m
	}

	cfg := smallConfig(0.625)
	cfg.Classes = mixedSpec(t, "mixed:i=0.5@0.3")
	intermittent := check(New(cfg, killiFac(killi.Config{Ratio: 64})))
	if intermittent.FalseTrust == 0 && intermittent.FalseDisable == 0 {
		t.Fatal("intermittent population trained with zero misclassification; dormant faults should fool the DFH")
	}
}

// TestScrubReclaimsAndChurns pins System.Scrub: unavailable without a
// scheme scrubber, and under an intermittent population reclaiming
// disabled lines whose faults are dormant at scrub time (the churn the
// EXPERIMENTS coverage-vs-scrub sweep quantifies).
func TestScrubReclaims(t *testing.T) {
	if _, ok := New(smallConfig(0.625), fac(protection.NewNone)).Scrub(); ok {
		t.Fatal("Scrub claims availability on a scheme without a scrubber")
	}
	traces := shortTraces("xsbench", 3000)
	cfg := smallConfig(0.625)
	cfg.Classes = mixedSpec(t, "mixed:i=0.6@0.3")
	sys := New(cfg, killiFac(killi.Config{Ratio: 64}))
	res := sys.Run(traces)
	if res.Misclass.Disabled == 0 {
		t.Skip("no lines disabled; cannot exercise the scrubber")
	}
	n, ok := sys.Scrub()
	if !ok {
		t.Fatal("killi scheme does not expose its scrubber")
	}
	if n == 0 {
		t.Fatal("scrubber reclaimed nothing from an intermittent population")
	}
	if got := sys.Stats().Get("killi.scrub_reclaimed"); got != uint64(n) {
		t.Fatalf("scrub counter %d, Scrub returned %d", got, n)
	}
}
