// Package gpu is the cycle-based GPU memory-hierarchy simulator the Killi
// evaluation runs on.
//
// The paper evaluates Killi on gem5's GCN3 GPU model; we substitute a
// from-scratch model of the parts that matter to the result: 8 compute
// units issuing coalesced memory requests through per-CU L1 caches into a
// banked, write-through, 16-way 2 MB shared L2 whose data array runs at low
// voltage, backed by a latency/bandwidth DRAM model. Killi's performance
// effects — ECC-cache contention evictions, error-induced misses, disabled
// lines — are all L2-level phenomena, so an address-stream-driven hierarchy
// reproduces them; the compute pipeline only sets request arrival rates,
// which the workload's instructions-per-access figure models.
//
// Timing follows the paper's Table 3: 2-cycle L2 tag, 2-cycle L2 data,
// 1-cycle SECDED/parity; the ECC cache's 1+1 cycle access is hidden under
// the L2 data access and adds no hit latency.
//
// The simulation hot paths are allocation-free in the steady state: counter
// updates go through pre-interned stats handles, and the recurring events
// (request issue, completion, L2 read, hit/fill completion) are fixed-size
// structs drawn from a free list rather than per-event closures.
package gpu

import (
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/engine"
	"killi/internal/faultmodel"
	"killi/internal/mem"
	"killi/internal/obs"
	"killi/internal/protection"
	"killi/internal/sram"
	"killi/internal/stats"
	"killi/internal/workload"
	"killi/internal/xrand"
)

// Pre-interned counter handles: the per-event increment is a slice index,
// not a string-keyed map operation. Names are unchanged from the original
// string-keyed API.
var (
	cSchemeInvalidations = stats.Intern("l2.scheme_invalidations")
	cVoltageTransitions  = stats.Intern("l2.voltage_transitions")
	cTransitionStall     = stats.Intern("l2.transition_stall_cycles")
	cAgingFaults         = stats.Intern("l2.aging_faults_injected")
	cL1Writes            = stats.Intern("l1.writes")
	cL1Reads             = stats.Intern("l1.reads")
	cL1Hits              = stats.Intern("l1.hits")
	cL2Accesses          = stats.Intern("l2.accesses")
	cTagParityMisses     = stats.Intern("l2.tag_parity_misses")
	cReadMisses          = stats.Intern("l2.read_misses")
	cReadHits            = stats.Intern("l2.read_hits")
	cSDC                 = stats.Intern("l2.silent_data_corruption")
	cErrorMisses         = stats.Intern("l2.error_misses")
	cSoftErrors          = stats.Intern("l2.soft_errors_injected")
	cEvictions           = stats.Intern("l2.evictions")
	cBypassFills         = stats.Intern("l2.bypass_fills")
	cWriteUpdates        = stats.Intern("l2.write_updates")
	cVersionPrunes       = stats.Intern("l2.version_prunes")
)

// Config is the simulated GPU configuration (defaults mirror Table 3).
type Config struct {
	CUs              int // number of compute units
	L1Bytes          int // per-CU L1 size
	L1Ways           int
	L2Bytes          int
	L2Ways           int
	L2Banks          int
	LineBytes        int
	L2TagLat         uint64 // cycles
	L2DataLat        uint64 // cycles
	ECCLat           uint64 // SECDED/parity latency, cycles
	L1Lat            uint64 // L1 hit latency, cycles
	WindowPerCU      int    // outstanding-request window per CU
	IssueIPC         float64
	Mem              mem.Config
	Voltage          float64 // normalized L2 data-array voltage
	FreqGHz          float64
	FaultModel       faultmodel.Model
	FaultSeed        uint64
	RefVoltage       float64 // lowest voltage the fault map must serve (0 = Voltage)
	SoftErrorPerRead float64 // probability of one transient flip per L2 read
	// TagSoftErrorPerLookup is the probability that an L2 lookup hits a
	// transient tag-bit flip. The tag array runs at nominal voltage and
	// carries parity (§4.1), so the flip is always detected; the entry is
	// invalidated and the access becomes a safe miss.
	TagSoftErrorPerLookup float64
}

// DefaultConfig returns the paper's Table 3 GPU configuration at nominal
// voltage.
func DefaultConfig() Config {
	return Config{
		CUs:         8,
		L1Bytes:     16 << 10,
		L1Ways:      4,
		L2Bytes:     2 << 20,
		L2Ways:      16,
		L2Banks:     16,
		LineBytes:   64,
		L2TagLat:    2,
		L2DataLat:   2,
		ECCLat:      1,
		L1Lat:       1,
		WindowPerCU: 32,
		IssueIPC:    4,
		Mem:         mem.DefaultConfig(),
		Voltage:     1.0,
		FreqGHz:     1.0,
		FaultModel:  faultmodel.Default(),
		FaultSeed:   1,
	}
}

// Result summarizes a simulation run.
type Result struct {
	Cycles        uint64
	Instructions  uint64
	L2Misses      uint64
	L2Accesses    uint64
	MemAccesses   uint64
	DisabledLines int
	Counters      *stats.Counters
}

// MPKI returns the run's L2 misses per kilo-instruction.
func (r Result) MPKI() float64 { return stats.MPKI(r.L2Misses, r.Instructions) }

// System is one simulated GPU with an attached protection scheme.
// Construct with New.
type System struct {
	cfg    Config
	eng    engine.Engine
	scheme protection.Scheme

	l2tags *cache.Cache
	l2data *sram.Array
	l1     []*cache.Cache

	memory *mem.Memory
	// lineState packs, per line address, the write version (meaningful for
	// lines whose version can still be observed: resident in some cache
	// level or with an L2-side read in flight) together with the count of
	// in-flight L2-side reads — from the L1 miss that schedules the L2 read
	// until the hit or fill completes. A store during that window must
	// advance the version because the fill evaluates memory content when it
	// lands. Once the table outgrows versionsHighWater, entries that are no
	// longer observable are pruned, bounding memory on streaming workloads
	// across repeated Runs.
	lineState         lineTable
	versionsHighWater int
	// lineData mirrors the true (fault-free) content of each resident L2
	// line, so the SDC ground-truth check on read hits is an 8-word compare
	// instead of a rehash. Invariant: while l2tags holds a valid entry at
	// (set,way), lineData[LineID(set,way)] equals the current memContent of
	// the resident address — installs and write-through updates maintain it,
	// and a resident line's version can only advance through the store path
	// in access(), which refreshes both copies.
	lineData []bitvec.Line
	bankFree []uint64

	ctr     stats.Counters
	softRNG *xrand.Rand
	replRNG *xrand.Rand

	// stallUntil gates request issue after a voltage transition whose
	// scheme requires an offline MBIST pass.
	stallUntil uint64

	cus []*cuState

	eventPool  []*gpuEvent
	wayScratch []int // victim candidates, sized to L2Ways

	// instrsIssued accumulates instructions across all CUs and Runs, so
	// the epoch sampler can report interval deltas without summing cus.
	instrsIssued uint64

	// observer is the attached observability sink (nil = off, the
	// default; see SetObserver in obs.go). obsTicker is the daemon epoch
	// sampler, created lazily on the first observed Run.
	observer  obs.Observer
	obsEpoch  uint64
	obsTicker *obsTicker
}

type cuState struct {
	id        int
	trace     []workload.Request
	idx       int
	inflight  int
	lastIssue uint64
	started   bool
	instrs    uint64
}

// SharedFaults bundles a persistent fault map with its voltage-resolved
// view. Both halves are immutable, so one SharedFaults built by
// BuildSharedFaults can back every System of a sweep whose tasks run at the
// same (FaultSeed, model, line count, reference voltage, frequency,
// operating voltage) — the sweep builds the 32K-line population once
// instead of once per simulation.
type SharedFaults struct {
	Map      *faultmodel.Map
	Resolved *faultmodel.Resolved
}

// BuildSharedFaults samples the fault population a System with this
// configuration would build in New, pre-resolved at cfg.Voltage. The result
// is bit-identical to the per-System map: same seed, same sampling order.
func BuildSharedFaults(cfg Config) *SharedFaults {
	refV := cfg.RefVoltage
	if refV == 0 {
		refV = cfg.Voltage
	}
	// Same rounding as the tag-array geometry (sets × ways), so the map is
	// bit-identical to the one a private System would sample.
	lines := (cfg.L2Bytes / cfg.LineBytes / cfg.L2Ways) * cfg.L2Ways
	fm := faultmodel.NewMap(xrand.New(cfg.FaultSeed), cfg.FaultModel,
		lines, bitvec.LineBits, refV, cfg.FreqGHz)
	return &SharedFaults{Map: fm, Resolved: fm.Resolve(cfg.Voltage)}
}

// New builds a system with the given configuration and protection scheme.
// The scheme is attached and Reset at the configured voltage.
func New(cfg Config, scheme protection.Scheme) *System {
	return NewShared(cfg, scheme, nil)
}

// NewShared builds a system over a pre-built fault population (nil falls
// back to sampling a private map exactly as New does). The shared map and
// resolved view are read-only; the System never mutates them, so one
// SharedFaults can serve concurrent simulations. The view's voltage must
// match cfg.Voltage and the map must cover the L2.
func NewShared(cfg Config, scheme protection.Scheme, shared *SharedFaults) *System {
	if cfg.CUs <= 0 || cfg.L2Banks <= 0 || cfg.WindowPerCU <= 0 {
		panic("gpu: invalid configuration")
	}
	l2Sets := cfg.L2Bytes / cfg.LineBytes / cfg.L2Ways
	s := &System{
		cfg:      cfg,
		scheme:   scheme,
		l2tags:   cache.New(cache.Config{Sets: l2Sets, Ways: cfg.L2Ways, LineBytes: cfg.LineBytes}),
		memory:   mem.New(cfg.Mem),
		bankFree: make([]uint64, cfg.L2Banks),
		softRNG:  xrand.New(cfg.FaultSeed ^ 0x5eed50f7),
		replRNG:  xrand.New(cfg.FaultSeed ^ 0xbe91ace5eed),
	}
	if shared == nil {
		shared = BuildSharedFaults(cfg)
	}
	if shared.Map.Lines() < s.l2tags.Config().Lines() {
		panic(fmt.Sprintf("gpu: shared fault map covers %d lines, L2 has %d",
			shared.Map.Lines(), s.l2tags.Config().Lines()))
	}
	if shared.Resolved.Voltage() != cfg.Voltage {
		panic(fmt.Sprintf("gpu: shared fault view resolved at %v, system runs at %v",
			shared.Resolved.Voltage(), cfg.Voltage))
	}
	s.l2data = sram.NewResolved(s.l2tags.Config().Lines(), shared.Map, shared.Resolved)
	s.lineData = make([]bitvec.Line, s.l2tags.Config().Lines())
	s.versionsHighWater = 4 * s.l2tags.Config().Lines()
	s.wayScratch = make([]int, cfg.L2Ways)
	l1Sets := cfg.L1Bytes / cfg.LineBytes / cfg.L1Ways
	s.l1 = make([]*cache.Cache, cfg.CUs)
	for i := range s.l1 {
		s.l1[i] = cache.New(cache.Config{Sets: l1Sets, Ways: cfg.L1Ways, LineBytes: cfg.LineBytes})
	}
	scheme.Attach(s)
	scheme.Reset(cfg.Voltage)
	return s
}

// --- protection.Host implementation ---

// Tags implements protection.Host.
func (s *System) Tags() *cache.Cache { return s.l2tags }

// Data implements protection.Host.
func (s *System) Data() *sram.Array { return s.l2data }

// SchemeInvalidate implements protection.Host.
func (s *System) SchemeInvalidate(set, way int) {
	if s.l2tags.Entry(set, way).Valid {
		s.ctr.IncC(cSchemeInvalidations)
		s.l2tags.Invalidate(set, way)
	}
}

// Stats implements protection.Host.
func (s *System) Stats() *stats.Counters { return &s.ctr }

// SetVoltage transitions the L2 data array to a new operating point
// between kernels: active persistent faults are recomputed, the protection
// scheme's fault knowledge is reset, and the cache stalls for stallCycles
// — the offline MBIST pre-characterization pass that pre-trained schemes
// need at every transition, and that Killi's runtime classification makes
// zero (the paper's headline deployment argument).
func (s *System) SetVoltage(vNorm float64, stallCycles uint64) {
	s.cfg.Voltage = vNorm
	s.l2data.SetVoltage(vNorm)
	s.scheme.Reset(vNorm)
	s.stallUntil = s.eng.Now() + stallCycles
	s.ctr.IncC(cVoltageTransitions)
	s.ctr.AddC(cTransitionStall, stallCycles)
}

// Voltage returns the L2 data array's current normalized voltage.
func (s *System) Voltage() float64 { return s.cfg.Voltage }

// InjectAgingFaults sprinkles n new persistent stuck-at faults uniformly
// over the data array, modeling wear-out accumulating between kernels.
// Killi discovers them as post-training errors and relearns the affected
// lines; MBIST schemes stay blind until their next characterization pass.
func (s *System) InjectAgingFaults(seed uint64, n int) {
	r := xrand.New(seed)
	lines := s.l2tags.Config().Lines()
	for i := 0; i < n; i++ {
		s.l2data.InjectPersistentFault(r.Intn(lines), r.Intn(bitvec.LineBits), uint(r.Uint64()&1))
	}
	s.ctr.AddC(cAgingFaults, uint64(n))
}

// --- data content model ---

// lineContent returns the deterministic memory content of a line address at
// a write version: memory is a pure function, so the backing store needs no
// per-line storage.
func lineContent(addr uint64, version uint32) bitvec.Line {
	var l bitvec.Line
	x := addr*0x9e3779b97f4a7c15 ^ uint64(version)*0xda942042e4dd58b5
	for w := range l {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		l[w] = z ^ (z >> 31)
	}
	return l
}

// memContent returns the current true content of a line address.
func (s *System) memContent(lineAddr uint64) bitvec.Line {
	return lineContent(lineAddr, packedVersion(s.lineState.get(lineAddr)))
}

// observableElsewhere reports whether a line's version can be observed
// through a cache level other than the querying CU's own L1, or through an
// in-flight L2-side read. Stores to unobservable lines skip the version
// bump: no resident copy exists and no pending fill will evaluate the
// content, so the pseudo-random line a future fetch generates is equally
// arbitrary either way.
func (s *System) observableElsewhere(lineAddr uint64, exceptCU int) bool {
	if packedPending(s.lineState.get(lineAddr)) > 0 {
		return true
	}
	addr := lineAddr * uint64(s.cfg.LineBytes)
	for i, l1 := range s.l1 {
		if i == exceptCU {
			continue
		}
		if _, hit := l1.Lookup(l1.Index(addr), l1.Tag(addr)); hit {
			return true
		}
	}
	return false
}

// resident reports whether any cache level holds the line.
func (s *System) resident(lineAddr uint64) bool {
	addr := lineAddr * uint64(s.cfg.LineBytes)
	if _, hit := s.l2tags.Lookup(s.l2tags.Index(addr), s.l2tags.Tag(addr)); hit {
		return true
	}
	for _, l1 := range s.l1 {
		if _, hit := l1.Lookup(l1.Index(addr), l1.Tag(addr)); hit {
			return true
		}
	}
	return false
}

// pruneLines rebuilds the line-state table without entries for lines that
// are no longer observable (not resident in any cache level and with no
// read in flight) once it exceeds its high-water mark (4x the L2 line
// count), bounding memory across repeated Runs on streaming workloads.
// Survivors keep their exact packed state, and the table never shrinks
// below the capacity the run has already justified, so a prune cannot
// perturb simulation results beyond the documented version reset on
// unobservable lines.
func (s *System) pruneLines() {
	if s.lineState.live <= s.versionsHighWater {
		return
	}
	old := s.lineState
	s.lineState.init(len(old.keys))
	for i, k := range old.keys {
		if k == 0 {
			continue
		}
		lineAddr := k - 1
		v := old.vals[i]
		if packedPending(v) > 0 || s.resident(lineAddr) {
			*s.lineState.ref(lineAddr) = v
		}
	}
	s.ctr.IncC(cVersionPrunes)
}

// pendingDec retires one in-flight L2-side read for a line address. The
// count is decremented to zero rather than removed — table rebuilds on
// every retire would show up in sweep profiles, and every reader treats a
// zero count as absent. Dead entries are swept out wholesale by pruneLines
// once the table outgrows its high-water mark.
func (s *System) pendingDec(lineAddr uint64) {
	p := s.lineState.ref(lineAddr)
	*p = *p&^0xFFFFFFFF | uint64(uint32(*p)-1)
	s.pruneLines()
}

// --- event plumbing ---

// Event kinds for the free-listed simulation events.
const (
	evAccess   uint8 = iota // a CU request reaches its L1
	evComplete              // a request retires after a fixed latency
	evL2Read                // an L1 miss reaches the L2 bank
	evHitDone               // an L2 hit's data returns: fill L1, retire
	evFillDone              // a memory fetch lands: install L2, fill L1, retire
)

// gpuEvent is a reusable simulation event. The recurring per-request events
// flow through a free list on the System, so the steady-state simulation
// loop performs no per-event allocation.
type gpuEvent struct {
	s     *System
	cu    *cuState
	addr  uint64
	kind  uint8
	write bool
}

// Fire implements engine.Handler. The event returns itself to the pool
// before dispatching, so the handlers it schedules can reuse it.
func (e *gpuEvent) Fire() {
	s, cu, addr, kind, write := e.s, e.cu, e.addr, e.kind, e.write
	s.eventPool = append(s.eventPool, e)
	switch kind {
	case evAccess:
		s.access(cu, addr, write)
	case evComplete:
		s.complete(cu)
	case evL2Read:
		s.l2Read(cu, addr)
	case evHitDone:
		s.pendingDec(addr / uint64(s.cfg.LineBytes))
		s.l1Fill(cu.id, addr)
		s.complete(cu)
	case evFillDone:
		s.fillDone(cu, addr)
	}
}

// schedule queues a free-listed event delay cycles from now.
func (s *System) schedule(delay uint64, kind uint8, cu *cuState, addr uint64, write bool) {
	var e *gpuEvent
	if n := len(s.eventPool); n > 0 {
		e = s.eventPool[n-1]
		s.eventPool = s.eventPool[:n-1]
	} else {
		e = &gpuEvent{s: s}
	}
	e.cu, e.addr, e.kind, e.write = cu, addr, kind, write
	s.eng.ScheduleHandler(delay, e)
}

// --- simulation ---

// Run simulates the given per-CU traces to completion and returns the
// result. The trace slice must have at least cfg.CUs entries; extras are
// ignored.
//
// Run may be called repeatedly on the same System: cache, scheme, and DFH
// state persist across calls (the paper's "training happens once per
// reset cycle, not per kernel"), and the Result reports only the latest
// run's cycles and event deltas. This is how steady-state measurements
// exclude one-time warmup.
func (s *System) Run(traces [][]workload.Request) Result {
	if len(traces) < s.cfg.CUs {
		panic(fmt.Sprintf("gpu: %d traces for %d CUs", len(traces), s.cfg.CUs))
	}
	startCycle := s.eng.Now()
	snap := s.ctr.Snapshot()
	startMem := s.memory.Accesses()
	if s.observer != nil {
		s.startObserver()
	}
	s.cus = make([]*cuState, s.cfg.CUs)
	for i := range s.cus {
		s.cus[i] = &cuState{id: i, trace: traces[i]}
		s.issueMore(s.cus[i])
	}
	cycles := s.eng.Run()
	if s.observer != nil {
		s.flushObserver()
	}
	res := Result{
		Cycles:      cycles - startCycle,
		L2Misses:    s.ctr.Since(snap, "l2.read_misses") + s.ctr.Since(snap, "l2.error_misses"),
		L2Accesses:  s.ctr.Since(snap, "l2.accesses"),
		MemAccesses: s.memory.Accesses() - startMem,
		Counters:    &s.ctr,
	}
	for _, cu := range s.cus {
		res.Instructions += cu.instrs
	}
	res.DisabledLines = s.l2tags.DisabledLines()
	return res
}

// issueMore launches trace requests for a CU until its window fills or the
// trace ends. Issue spacing models compute between accesses:
// instructions-per-access divided by the CU's issue IPC.
func (s *System) issueMore(cu *cuState) {
	for cu.inflight < s.cfg.WindowPerCU && cu.idx < len(cu.trace) {
		req := cu.trace[cu.idx]
		cu.idx++
		cu.inflight++
		gap := uint64(float64(req.Instrs) / s.cfg.IssueIPC)
		issueAt := s.eng.Now()
		if issueAt < s.stallUntil {
			issueAt = s.stallUntil
		}
		if cu.started && cu.lastIssue+gap > issueAt {
			issueAt = cu.lastIssue + gap
		}
		cu.started = true
		cu.lastIssue = issueAt
		cu.instrs += uint64(req.Instrs)
		s.instrsIssued += uint64(req.Instrs)
		s.schedule(issueAt-s.eng.Now(), evAccess, cu, req.Addr, req.Write)
	}
}

// complete retires one in-flight request for a CU and refills its window.
func (s *System) complete(cu *cuState) {
	cu.inflight--
	s.issueMore(cu)
}

// access starts one memory request at the current cycle.
func (s *System) access(cu *cuState, addr uint64, write bool) {
	lineAddr := addr / uint64(s.cfg.LineBytes)
	l1 := s.l1[cu.id]
	l1Set := l1.Index(addr)
	l1Tag := l1.Tag(addr)

	if write {
		s.ctr.IncC(cL1Writes)
		// Write-through, no-allocate at both levels; the store retires
		// without a completion dependency. The version advances only when
		// some cached copy or in-flight fill can observe the new value.
		l1Way, l1Hit := l1.Lookup(l1Set, l1Tag)
		l2Set := s.l2tags.Index(addr)
		l2Tag := s.l2tags.Tag(addr)
		l2Way, l2Hit := s.l2tags.Lookup(l2Set, l2Tag)
		if l1Hit || l2Hit || s.observableElsewhere(lineAddr, cu.id) {
			*s.lineState.ref(lineAddr) += 1 << 32
			s.pruneLines()
		}
		if l1Hit {
			l1.Touch(l1Set, l1Way)
		}
		if l2Hit {
			s.ctr.IncC(cWriteUpdates)
			s.l2tags.Touch(l2Set, l2Way)
			id := s.l2tags.LineID(l2Set, l2Way)
			newData := s.memContent(lineAddr)
			s.l2data.Write(id, newData)
			s.lineData[id] = newData
			s.scheme.OnWriteHit(l2Set, l2Way, newData)
		}
		s.memory.AccessWrite(s.eng.Now())
		s.schedule(s.cfg.L1Lat, evComplete, cu, 0, false)
		return
	}

	s.ctr.IncC(cL1Reads)
	if way, hit := l1.Lookup(l1Set, l1Tag); hit {
		s.ctr.IncC(cL1Hits)
		l1.Touch(l1Set, way)
		s.schedule(s.cfg.L1Lat, evComplete, cu, 0, false)
		return
	}
	// L1 miss: go to the L2 bank. The line has an observer from here until
	// the hit or fill completes.
	p := s.lineState.ref(lineAddr)
	*p = *p&^0xFFFFFFFF | uint64(uint32(*p)+1)
	s.schedule(s.cfg.L1Lat, evL2Read, cu, addr, false)
}

// bankStart reserves the L2 bank serving addr and returns the cycle at
// which the access begins (bank conflicts delay it).
func (s *System) bankStart(addr uint64) uint64 {
	set := s.l2tags.Index(addr)
	bank := set % s.cfg.L2Banks
	start := s.eng.Now()
	if s.bankFree[bank] > start {
		start = s.bankFree[bank]
	}
	s.bankFree[bank] = start + s.cfg.L2TagLat + s.cfg.L2DataLat
	return start
}

// l2Read performs the L2 read pipeline for one request.
func (s *System) l2Read(cu *cuState, addr uint64) {
	s.ctr.IncC(cL2Accesses)
	start := s.bankStart(addr)
	set := s.l2tags.Index(addr)
	tag := s.l2tags.Tag(addr)

	if s.cfg.TagSoftErrorPerLookup > 0 && s.softRNG.Bernoulli(s.cfg.TagSoftErrorPerLookup) {
		// Tag parity catches the flip; the affected entry is dropped and
		// the access refetches — never a wrong-line hit.
		s.ctr.IncC(cTagParityMisses)
		if way, hit := s.l2tags.Lookup(set, tag); hit {
			s.scheme.OnEvict(set, way)
			s.l2tags.Invalidate(set, way)
		}
		s.ctr.IncC(cReadMisses)
		s.fetchAndFill(cu, addr, start+s.cfg.L2TagLat)
		return
	}

	if way, hit := s.l2tags.Lookup(set, tag); hit {
		s.l2tags.Touch(set, way)
		id := s.l2tags.LineID(set, way)
		if s.cfg.SoftErrorPerRead > 0 && s.softRNG.Bernoulli(s.cfg.SoftErrorPerRead) {
			s.l2data.InjectSoftError(id, s.softRNG.Intn(bitvec.LineBits))
			s.ctr.IncC(cSoftErrors)
		}
		data := s.l2data.Read(id)
		verdict := s.scheme.OnReadHit(set, way, &data)
		if verdict == protection.Deliver {
			s.ctr.IncC(cReadHits)
			if data != s.lineData[id] {
				// Delivered data differs from ground truth: silent data
				// corruption the scheme failed to catch.
				s.ctr.IncC(cSDC)
			}
			done := start + s.cfg.L2TagLat + s.cfg.L2DataLat + s.cfg.ECCLat
			s.schedule(done-s.eng.Now(), evHitDone, cu, addr, false)
			return
		}
		// Error-induced cache miss: the scheme already invalidated or
		// disabled the line; refetch from memory.
		s.ctr.IncC(cErrorMisses)
		s.fetchAndFill(cu, addr, start+s.cfg.L2TagLat+s.cfg.L2DataLat+s.cfg.ECCLat)
		return
	}
	s.ctr.IncC(cReadMisses)
	s.fetchAndFill(cu, addr, start+s.cfg.L2TagLat)
}

// fetchAndFill fetches a line from memory at earliest cycle "from"; the
// fill event installs it into the L2 (if a way is available), fills the L1,
// and completes the request.
func (s *System) fetchAndFill(cu *cuState, addr uint64, from uint64) {
	done := s.memory.Access(from)
	s.schedule(done-s.eng.Now(), evFillDone, cu, addr, false)
}

// fillDone lands a memory fetch: the line's content is evaluated at fill
// time (so stores that raced the fetch are reflected), installed into L2,
// and forwarded to the requesting CU's L1.
func (s *System) fillDone(cu *cuState, addr uint64) {
	lineAddr := addr / uint64(s.cfg.LineBytes)
	s.pendingDec(lineAddr)
	s.installL2(addr, s.memContent(lineAddr))
	s.l1Fill(cu.id, addr)
	s.complete(cu)
}

// installL2 places fetched data into the L2, driving victim selection,
// eviction training, and fill metadata generation on the scheme. When every
// way of the set is disabled the line bypasses the cache.
func (s *System) installL2(addr uint64, data bitvec.Line) {
	set := s.l2tags.Index(addr)
	tag := s.l2tags.Tag(addr)
	if _, hit := s.l2tags.Lookup(set, tag); hit {
		// A racing fill already installed this line.
		return
	}
	// Eviction training can disable the chosen victim (Killi discovering a
	// multi-bit faulty line on its way out); re-pick until an installable
	// way is found or the set is exhausted.
	way := -1
	for attempt := 0; attempt < s.cfg.L2Ways; attempt++ {
		w, ok := s.l2tags.Victim(set, s.scheme.VictimFunc())
		if !ok {
			break
		}
		if s.l2tags.Entry(set, w).Valid {
			// No invalid way was available and the scheme fell through to
			// its recency tie-break. Real GPU L2s do not implement true
			// LRU; pick pseudo-randomly among the valid enabled ways
			// instead, which also keeps streaming fills from
			// deterministically flushing resident reuse data.
			w = s.randomValidWay(set, w)
		}
		if s.l2tags.Entry(set, w).Valid {
			s.ctr.IncC(cEvictions)
			s.scheme.OnEvict(set, w)
		}
		if !s.l2tags.Entry(set, w).Disabled {
			way = w
			break
		}
	}
	if way < 0 {
		s.ctr.IncC(cBypassFills)
		return
	}
	s.l2tags.Install(set, way, tag)
	id := s.l2tags.LineID(set, way)
	s.l2data.Write(id, data)
	s.lineData[id] = data
	s.scheme.OnFill(set, way, data)
}

// randomValidWay picks a pseudo-random valid, enabled way of an L2 set as
// the replacement victim, falling back to the scheme's pick if the set has
// none (cannot happen when the fallback way itself is valid and enabled).
// The candidate scratch is sized to the configured associativity, so no
// way can be silently excluded.
func (s *System) randomValidWay(set, fallback int) int {
	cand := s.wayScratch
	n := 0
	for w, e := range s.l2tags.Set(set) {
		if e.Valid && !e.Disabled {
			cand[n] = w
			n++
		}
	}
	if n == 0 {
		return fallback
	}
	return cand[s.replRNG.Intn(n)]
}

// l1Fill installs a line into a CU's L1 (plain LRU, no protection — the
// paper's scope is the L2).
func (s *System) l1Fill(cuID int, addr uint64) {
	l1 := s.l1[cuID]
	set := l1.Index(addr)
	tag := l1.Tag(addr)
	if _, hit := l1.Lookup(set, tag); hit {
		return
	}
	way, ok := l1.Victim(set, nil)
	if !ok {
		return
	}
	l1.Install(set, way, tag)
}
