// Package gpu is the cycle-based GPU memory-hierarchy simulator the Killi
// evaluation runs on.
//
// The paper evaluates Killi on gem5's GCN3 GPU model; we substitute a
// from-scratch model of the parts that matter to the result: 8 compute
// units issuing coalesced memory requests through per-CU L1 caches into a
// banked, write-through, 16-way 2 MB shared L2 whose data array runs at low
// voltage, backed by per-bank DRAM channel queues. Killi's performance
// effects — ECC-cache contention evictions, error-induced misses, disabled
// lines — are all L2-level phenomena, so an address-stream-driven hierarchy
// reproduces them; the compute pipeline only sets request arrival rates,
// which the workload's instructions-per-access figure models.
//
// Timing follows the paper's Table 3: 2-cycle L2 tag, 2-cycle L2 data,
// 1-cycle SECDED/parity; the ECC cache's 1+1 cycle access is hidden under
// the L2 data access and adds no hit latency. Every L2-side response pays
// one response-network cycle back to the CU.
//
// The machine is decomposed into engine domains — one per CU front-end
// (with its L1) and one per address-interleaved L2 bank (tags, data slice,
// per-bank ECC scheme instance, DRAM channel queue, stat counters) — that
// communicate only through timed engine messages with at least one cycle
// of latency. That structure lets engine.Sharded fire independent banks'
// events in parallel while keeping every statistic and observer stream
// bit-identical to the serial schedule at any shard count (see
// System.SetShards). The simulation hot paths remain allocation-free in
// the steady state: counter updates go through pre-interned stats handles
// and events are fixed-size values inside the engine's per-shard heaps.
package gpu

import (
	"fmt"
	"math/bits"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/engine"
	"killi/internal/faultmodel"
	"killi/internal/mem"
	"killi/internal/obs"
	"killi/internal/protection"
	"killi/internal/sram"
	"killi/internal/stats"
	"killi/internal/workload"
	"killi/internal/xrand"
)

// Pre-interned counter handles: the per-event increment is a slice index,
// not a string-keyed map operation. Names are unchanged from the original
// string-keyed API.
var (
	cSchemeInvalidations = stats.Intern("l2.scheme_invalidations")
	cVoltageTransitions  = stats.Intern("l2.voltage_transitions")
	cTransitionStall     = stats.Intern("l2.transition_stall_cycles")
	cAgingFaults         = stats.Intern("l2.aging_faults_injected")
	cL1Writes            = stats.Intern("l1.writes")
	cL1Reads             = stats.Intern("l1.reads")
	cL1Hits              = stats.Intern("l1.hits")
	cL2Accesses          = stats.Intern("l2.accesses")
	cTagParityMisses     = stats.Intern("l2.tag_parity_misses")
	cReadMisses          = stats.Intern("l2.read_misses")
	cReadHits            = stats.Intern("l2.read_hits")
	cSDC                 = stats.Intern("l2.silent_data_corruption")
	cErrorMisses         = stats.Intern("l2.error_misses")
	cSoftErrors          = stats.Intern("l2.soft_errors_injected")
	cTransientStrikes    = stats.Intern("l2.transient_strikes")
	cEvictions           = stats.Intern("l2.evictions")
	cBypassFills         = stats.Intern("l2.bypass_fills")
	cWriteUpdates        = stats.Intern("l2.write_updates")
	cVersionPrunes       = stats.Intern("l2.version_prunes")
)

// Config is the simulated GPU configuration (defaults mirror Table 3).
type Config struct {
	CUs              int // number of compute units
	L1Bytes          int // per-CU L1 size
	L1Ways           int
	L2Bytes          int
	L2Ways           int
	L2Banks          int
	LineBytes        int
	L2TagLat         uint64 // cycles
	L2DataLat        uint64 // cycles
	ECCLat           uint64 // SECDED/parity latency, cycles
	L1Lat            uint64 // L1 hit latency, cycles (>= 1: the CU-to-bank lookahead)
	WindowPerCU      int    // outstanding-request window per CU
	IssueIPC         float64
	Mem              mem.Config
	Voltage          float64 // normalized L2 data-array voltage
	FreqGHz          float64
	FaultModel       faultmodel.Model
	FaultSeed        uint64
	RefVoltage       float64 // lowest voltage the fault map must serve (0 = Voltage)
	SoftErrorPerRead float64 // probability of one transient flip per L2 read
	// TagSoftErrorPerLookup is the probability that an L2 lookup hits a
	// transient tag-bit flip. The tag array runs at nominal voltage and
	// carries parity (§4.1), so the flip is always detected; the entry is
	// invalidated and the access becomes a safe miss.
	TagSoftErrorPerLookup float64
	// Classes layers the faultmodel taxonomy over the sampled fault
	// population: intermittent and aging faults manifest per fault epoch,
	// transient strikes arrive as a Poisson rate per cell-cycle. The zero
	// spec (the default) is the paper's pure-persistent model, bit-identical
	// to a configuration without the field.
	Classes faultmodel.ClassSpec
	// ClassEpochCycles is the fault-epoch length for intermittent/aging
	// activation and the transient-strike tick (0 = DefaultEpochCycles).
	ClassEpochCycles uint64
}

// DefaultConfig returns the paper's Table 3 GPU configuration at nominal
// voltage.
func DefaultConfig() Config {
	return Config{
		CUs:         8,
		L1Bytes:     16 << 10,
		L1Ways:      4,
		L2Bytes:     2 << 20,
		L2Ways:      16,
		L2Banks:     16,
		LineBytes:   64,
		L2TagLat:    2,
		L2DataLat:   2,
		ECCLat:      1,
		L1Lat:       1,
		WindowPerCU: 32,
		IssueIPC:    4,
		Mem:         mem.DefaultConfig(),
		Voltage:     1.0,
		FreqGHz:     1.0,
		FaultModel:  faultmodel.Default(),
		FaultSeed:   1,
	}
}

// Result summarizes a simulation run.
type Result struct {
	Cycles        uint64
	Instructions  uint64
	L2Misses      uint64
	L2Accesses    uint64
	MemAccesses   uint64
	DisabledLines int
	// SDC counts reads this run that delivered data differing from ground
	// truth without the scheme noticing (the l2.silent_data_corruption
	// delta). TransientStrikes counts fault-class strikes injected this run.
	SDC              uint64
	TransientStrikes uint64
	// Misclass is the DFH-vs-ground-truth tally at the end of the run,
	// valid when HasMisclass is set (the scheme exposes DFH codes).
	Misclass    Misclass
	HasMisclass bool
	Counters    *stats.Counters
	// Sched is the engine's deterministic scheduling ledger for this run
	// (barrier rounds, fired events/timestamps, cross-shard traffic). It is
	// a pure function of the simulation and the shard count — not of the
	// host — so benchmarks can gate on it even on a single-core machine. It
	// is deliberately excluded from result digests: scheduling is not
	// simulation semantics.
	Sched engine.RunStats
}

// MPKI returns the run's L2 misses per kilo-instruction.
func (r Result) MPKI() float64 { return stats.MPKI(r.L2Misses, r.Instructions) }

// Event kinds. Each kind is interpreted by one domain type's sink.
const (
	// CU domain events.
	ckRead       uint8 = iota // a trace read reaches the CU's L1 (a = addr)
	ckWrite                   // a trace write reaches the CU's L1 (a = addr)
	ckRetire                  // a request retires
	ckRetireFill              // an L2/memory response arrives: fill L1, retire (a = addr)
	// Bank domain events.
	bkRead  // an L1 read miss arrives at the bank (a = addr, b = CU index)
	bkStore // a write-through store arrives (a = addr, b = 1 if the store hit the CU's L1)
	bkFill  // the bank's DRAM channel delivers a line (a = addr, b = CU index)
)

// System is one simulated GPU with an attached protection scheme (one
// instance per L2 bank, built by the factory). Construct with New.
type System struct {
	cfg Config
	eng *engine.Sharded

	cus   []*cuDomain
	banks []*bankDomain

	// Address-interleave geometry. effBanks is the usable bank count
	// (L2Banks clamped to the set count); globalSets the whole-L2 set
	// count. pow2 fast paths mirror cache.Cache's address slicing.
	effBanks   int
	globalSets int
	lineShift  uint
	pow2Sets   bool
	setMask    uint64
	setShift   uint
	pow2Banks  bool
	bankMask   uint64
	bankShift  uint

	// ctr is the merged, externally visible counter set (Result.Counters
	// points here); it is rebuilt from sysCtr and every domain's counters
	// at Run boundaries and observer samples. sysCtr holds between-run
	// system operations (voltage transitions, aging injection).
	ctr    stats.Counters
	sysCtr stats.Counters

	// stallUntil gates request issue after a voltage transition whose
	// scheme requires an offline MBIST pass. Written only between Runs.
	stallUntil uint64

	// classed is set when cfg.Classes is non-zero; classEpoch is the fault
	// epoch length in cycles (always valid, defaulted in NewShared).
	classed    bool
	classEpoch uint64

	shards int

	// observer is the attached observability sink (nil = off, the
	// default; see SetObserver in obs.go).
	observer   obs.Observer
	obsEpoch   uint64
	sampler    *obsSampler
	obsScratch []bufferedObsEvent
}

// cuDomain is one compute unit front-end: trace issue window plus its
// private L1. All its state is touched only by its own engine domain.
type cuDomain struct {
	sys *System
	d   *engine.Domain
	id  int
	l1  *cache.Cache
	ctr stats.Counters

	trace     []workload.Request
	idx       int
	inflight  int
	lastIssue uint64
	started   bool
	instrs    uint64 // this Run
	// instrsTotal accumulates across Runs for the epoch sampler.
	instrsTotal uint64
}

// bankDomain is one address-interleaved L2 bank: its slice of the tag and
// data arrays, its own protection-scheme instance, line-state table, DRAM
// channel queue, RNG streams, and stat counters. It implements
// protection.Host for its scheme. All state is domain-private.
type bankDomain struct {
	sys  *System
	d    *engine.Domain
	bank int

	tags   *cache.Cache // localSets x ways, addressed by (localSet, global tag)
	data   *sram.Array  // strided view of the shared fault map
	scheme protection.Scheme
	mem    *mem.Memory // this bank's DRAM channel queue

	// lineState packs, per line address served by this bank, the write
	// version together with the count of in-flight fetches; see the
	// monolithic predecessor's commentary in linetable.go. Versions are
	// observable while the line is resident in this bank or being fetched.
	lineState         lineTable
	versionsHighWater int
	// lineData mirrors the true (fault-free) content of each resident
	// line, indexed by bank-local line ID, for the SDC ground-truth check.
	lineData []bitvec.Line

	free uint64 // bank pipeline busy-until cycle

	ctr        stats.Counters
	softRNG    *xrand.Rand
	replRNG    *xrand.Rand
	strikeRNG  *xrand.Rand // transient fault-class strikes; nil unless armed
	wayScratch []int

	// obsBuf buffers scheme emissions for deterministic cross-bank
	// ordering; nil while no observer is attached (see obs.go).
	obsBuf *bankObserver
}

// SharedFaults bundles a persistent fault map with its voltage-resolved
// view. Both halves are immutable, so one SharedFaults built by
// BuildSharedFaults can back every System of a sweep whose tasks run at the
// same (FaultSeed, model, line count, reference voltage, frequency,
// operating voltage) — the sweep builds the 32K-line population once
// instead of once per simulation.
type SharedFaults struct {
	Map      *faultmodel.Map
	Resolved *faultmodel.Resolved
}

// BuildSharedFaults samples the fault population a System with this
// configuration would build in New, pre-resolved at cfg.Voltage. The result
// is bit-identical to the per-System map: same seed, same sampling order.
func BuildSharedFaults(cfg Config) *SharedFaults {
	refV := cfg.RefVoltage
	if refV == 0 {
		refV = cfg.Voltage
	}
	// Same rounding as the tag-array geometry (sets x ways), so the map is
	// bit-identical to the one a private System would sample. The map is
	// indexed by whole-L2 line ID; banks view it through strided slices.
	lines := (cfg.L2Bytes / cfg.LineBytes / cfg.L2Ways) * cfg.L2Ways
	fm := faultmodel.NewMap(xrand.New(cfg.FaultSeed), cfg.FaultModel,
		lines, bitvec.LineBits, refV, cfg.FreqGHz)
	return &SharedFaults{Map: fm, Resolved: fm.Resolve(cfg.Voltage)}
}

// New builds a system with the given configuration; newScheme constructs
// one protection-scheme instance per L2 bank, each attached and Reset at
// the configured voltage.
func New(cfg Config, newScheme protection.Factory) *System {
	return NewShared(cfg, newScheme, nil)
}

// NewShared builds a system over a pre-built fault population (nil falls
// back to sampling a private map exactly as New does). The shared map and
// resolved view are read-only; the System never mutates them, so one
// SharedFaults can serve concurrent simulations. The view's voltage must
// match cfg.Voltage and the map must cover the L2.
func NewShared(cfg Config, newScheme protection.Factory, shared *SharedFaults) *System {
	if cfg.CUs <= 0 || cfg.L2Banks <= 0 || cfg.WindowPerCU <= 0 {
		panic("gpu: invalid configuration")
	}
	if cfg.L1Lat < 1 {
		panic("gpu: L1Lat must be >= 1 (it is the CU-to-bank message latency)")
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("gpu: LineBytes must be a positive power of two")
	}
	globalSets := cfg.L2Bytes / cfg.LineBytes / cfg.L2Ways
	effBanks := cfg.L2Banks
	if effBanks > globalSets {
		effBanks = globalSets
	}
	if globalSets%effBanks != 0 {
		panic(fmt.Sprintf("gpu: %d L2 sets not divisible across %d banks", globalSets, effBanks))
	}
	s := &System{
		cfg:        cfg,
		effBanks:   effBanks,
		globalSets: globalSets,
		lineShift:  uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		shards:     1,
	}
	if globalSets&(globalSets-1) == 0 {
		s.pow2Sets = true
		s.setMask = uint64(globalSets - 1)
		s.setShift = uint(bits.TrailingZeros(uint(globalSets)))
	}
	if effBanks&(effBanks-1) == 0 {
		s.pow2Banks = true
		s.bankMask = uint64(effBanks - 1)
		s.bankShift = uint(bits.TrailingZeros(uint(effBanks)))
	}
	if shared == nil {
		shared = BuildSharedFaults(cfg)
	}
	totalLines := globalSets * cfg.L2Ways
	if shared.Map.Lines() < totalLines {
		panic(fmt.Sprintf("gpu: shared fault map covers %d lines, L2 has %d",
			shared.Map.Lines(), totalLines))
	}
	if shared.Resolved.Voltage() != cfg.Voltage {
		panic(fmt.Sprintf("gpu: shared fault view resolved at %v, system runs at %v",
			shared.Resolved.Voltage(), cfg.Voltage))
	}

	s.eng = engine.NewSharded(cfg.CUs + effBanks)

	l1Sets := cfg.L1Bytes / cfg.LineBytes / cfg.L1Ways
	s.cus = make([]*cuDomain, cfg.CUs)
	for i := range s.cus {
		c := &cuDomain{
			sys: s,
			d:   s.eng.Domain(i),
			id:  i,
			l1:  cache.New(cache.Config{Sets: l1Sets, Ways: cfg.L1Ways, LineBytes: cfg.LineBytes}),
		}
		c.d.Bind(c)
		s.cus[i] = c
	}

	localSets := globalSets / effBanks
	bankLines := localSets * cfg.L2Ways
	s.banks = make([]*bankDomain, effBanks)
	for i := range s.banks {
		b := &bankDomain{
			sys:  s,
			d:    s.eng.Domain(cfg.CUs + i),
			bank: i,
			tags: cache.New(cache.Config{Sets: localSets, Ways: cfg.L2Ways, LineBytes: cfg.LineBytes}),
			data: sram.NewResolvedView(bankLines, shared.Map, shared.Resolved,
				cfg.L2Ways, effBanks, i),
			// Each bank owns a DRAM channel queue; scaling the completion
			// gap by the bank count keeps whole-GPU peak bandwidth equal
			// to the configured mem.Config.
			mem: mem.New(mem.Config{
				LatencyCycles: orDefault(cfg.Mem).LatencyCycles,
				GapCycles:     orDefault(cfg.Mem).GapCycles * uint64(effBanks),
			}),
			versionsHighWater: 4 * bankLines,
			lineData:          make([]bitvec.Line, bankLines),
			softRNG:           xrand.New(cfg.FaultSeed ^ 0x5eed50f7 ^ (uint64(i)+1)*0x9e3779b97f4a7c15),
			replRNG:           xrand.New(cfg.FaultSeed ^ 0xbe91ace5eed ^ (uint64(i)+1)*0xda942042e4dd58b5),
			wayScratch:        make([]int, cfg.L2Ways),
		}
		b.d.Bind(b)
		s.banks[i] = b
	}
	for _, b := range s.banks {
		b.scheme = newScheme()
		b.scheme.Attach(b)
		b.scheme.Reset(cfg.Voltage)
	}

	s.classEpoch = cfg.ClassEpochCycles
	if s.classEpoch == 0 {
		s.classEpoch = DefaultEpochCycles
	}
	if !cfg.Classes.IsZero() {
		s.classed = true
		classSeed := faultmodel.ClassSeed(cfg.FaultSeed)
		for _, b := range s.banks {
			b.data.SetFaultClasses(cfg.Classes, classSeed)
		}
		if cfg.Classes.TransientRate > 0 {
			for i, b := range s.banks {
				b.strikeRNG = xrand.New(cfg.FaultSeed ^ 0x57a1c3b0175eed ^ (uint64(i)+1)*0xd6e8feb86659fd93)
			}
			// Slot 1: the observer pacer owns slot 0 (obs.go). The ticker
			// fires with every shard parked, so the handler may touch all
			// banks; its fire-set is a pure function of the event timeline,
			// never of the shard count.
			s.eng.SetTicker(1, s.classEpoch, s.onStrikeTick)
		}
	}

	// Declare the latency topology so the engine can derive real per-shard
	// lookahead instead of assuming the worst-case one-cycle floor. The
	// graph is bipartite: CUs message banks (reads/stores) no sooner than
	// the L1 latency, banks message CUs (responses) no sooner than the
	// fastest response path — a hit (tag+data+ECC) or, for configurations
	// with extreme pipeline latencies, a miss (tag+DRAM) — plus the one
	// cycle every response spends in delivery. CUs never message CUs and
	// banks never message banks, which the engine exploits: those shard
	// pairs constrain each other only through round trips.
	resp := cfg.L2TagLat + cfg.L2DataLat + cfg.ECCLat
	if miss := cfg.L2TagLat + orDefault(cfg.Mem).LatencyCycles; miss < resp {
		resp = miss
	}
	resp++
	for ci := 0; ci < cfg.CUs; ci++ {
		for bi := 0; bi < effBanks; bi++ {
			s.eng.DeclareEdge(ci, cfg.CUs+bi, cfg.L1Lat)
			s.eng.DeclareEdge(cfg.CUs+bi, ci, resp)
		}
	}
	return s
}

func orDefault(c mem.Config) mem.Config {
	if c.LatencyCycles == 0 {
		return mem.DefaultConfig()
	}
	return c
}

// --- geometry ---

// split decomposes an address into its owning bank, the bank-local set,
// and the global tag (which uniquely identifies the address within that
// (bank, local set) pair).
func (s *System) split(addr uint64) (bank, localSet int, tag uint64) {
	line := addr >> s.lineShift
	var gset uint64
	if s.pow2Sets {
		gset = line & s.setMask
		tag = line >> s.setShift
	} else {
		gset = line % uint64(s.globalSets)
		tag = line / uint64(s.globalSets)
	}
	if s.pow2Banks {
		bank = int(gset & s.bankMask)
		localSet = int(gset >> s.bankShift)
	} else {
		bank = int(gset % uint64(s.effBanks))
		localSet = int(gset / uint64(s.effBanks))
	}
	return bank, localSet, tag
}

// globalLineID maps a bank-local dense line ID to the whole-L2 line ID
// (the index space of fault maps and observer transition events).
func (b *bankDomain) globalLineID(localID int) int {
	ways := b.sys.cfg.L2Ways
	localSet := localID / ways
	way := localID % ways
	return (localSet*b.sys.effBanks+b.bank)*ways + way
}

// --- shard control ---

// SetShards selects how many engine shards (worker goroutines) the next
// Run uses. Results are bit-identical at every shard count — the engine's
// lookahead barrier fires each domain's events in canonical order
// regardless of grouping — so the knob trades only wall-clock. K = 1 (the
// default) is the serial fast path. Must be called between Runs.
//
// For K >= 2 the CUs and the banks are placed on disjoint shard sets
// (roughly half each, clamped to the population sizes). The latency graph
// is bipartite — CUs only message banks and vice versa — so keeping the
// two populations apart means every shard pair is connected only by the
// declared CU→bank / bank→CU floors (or only by round trips through
// them), which is what lets the engine coalesce many cycles into each
// barrier round. Placement is a pure scheduling choice: it never affects
// results.
func (s *System) SetShards(k int) {
	if k < 1 {
		k = 1
	}
	n := s.cfg.CUs + s.effBanks
	if k > n {
		k = n
	}
	if k == 1 {
		s.eng.SetShards(1)
		s.shards = 1
		return
	}
	kc := k / 2
	if kc > s.cfg.CUs {
		kc = s.cfg.CUs
	}
	kb := k - kc
	if kb > s.effBanks {
		kb = s.effBanks
		kc = k - kb
	}
	cus := s.cfg.CUs
	s.eng.AssignShards(k, func(dom int) int {
		if dom < cus {
			return dom % kc
		}
		return kc + (dom-cus)%kb
	})
	s.shards = s.eng.Shards()
}

// Shards returns the effective shard count (after clamping to the domain
// count).
func (s *System) Shards() int { return s.shards }

// --- protection.Host implementation (per bank) ---

// Tags implements protection.Host: the bank's slice of the L2 tag array.
func (b *bankDomain) Tags() *cache.Cache { return b.tags }

// Data implements protection.Host: the bank's slice of the low-voltage
// data array.
func (b *bankDomain) Data() *sram.Array { return b.data }

// SchemeInvalidate implements protection.Host.
func (b *bankDomain) SchemeInvalidate(set, way int) {
	if b.tags.Entry(set, way).Valid {
		b.ctr.IncC(cSchemeInvalidations)
		b.tags.Invalidate(set, way)
	}
}

// Stats implements protection.Host: the bank's private counter set, merged
// into the System totals at Run boundaries.
func (b *bankDomain) Stats() *stats.Counters { return &b.ctr }

// Now implements protection.Host: the bank's current cycle.
func (b *bankDomain) Now() uint64 { return b.d.Now() }

// --- system-level operations (between Runs) ---

// SetVoltage transitions the L2 data array to a new operating point
// between kernels: active persistent faults are recomputed, every bank
// scheme's fault knowledge is reset, and the cache stalls for stallCycles
// — the offline MBIST pre-characterization pass that pre-trained schemes
// need at every transition, and that Killi's runtime classification makes
// zero (the paper's headline deployment argument).
func (s *System) SetVoltage(vNorm float64, stallCycles uint64) {
	s.cfg.Voltage = vNorm
	for _, b := range s.banks {
		b.data.SetVoltage(vNorm)
		b.scheme.Reset(vNorm)
	}
	s.stallUntil = s.eng.Now() + stallCycles
	s.sysCtr.IncC(cVoltageTransitions)
	s.sysCtr.AddC(cTransitionStall, stallCycles)
}

// Voltage returns the L2 data array's current normalized voltage.
func (s *System) Voltage() float64 { return s.cfg.Voltage }

// Stats merges the per-domain counter sets and returns the system's
// cumulative counters. Call only between Runs.
func (s *System) Stats() *stats.Counters {
	s.mergeCounters()
	return &s.ctr
}

// L2Lines returns the total L2 line count across banks.
func (s *System) L2Lines() int { return s.globalSets * s.cfg.L2Ways }

// DisabledLines returns the current disabled-line count across banks.
func (s *System) DisabledLines() int {
	n := 0
	for _, b := range s.banks {
		n += b.tags.DisabledLines()
	}
	return n
}

// SchemeProbe returns one of the per-bank scheme instances, for callers
// that need to inspect the scheme's type or static configuration (e.g.
// MBIST-need classification). All banks hold identically configured
// instances.
func (s *System) SchemeProbe() protection.Scheme { return s.banks[0].scheme }

// ECCStats sums ECC-cache occupancy and capacity across the per-bank
// scheme instances; ok reports whether the scheme exposes an ECC cache at
// all (Killi does, the baselines do not).
func (s *System) ECCStats() (occupancy, entries int, ok bool) {
	for _, b := range s.banks {
		p, is := b.scheme.(eccProber)
		if !is {
			return 0, 0, false
		}
		occupancy += p.ECCOccupancy()
		entries += p.ECCEntries()
	}
	return occupancy, entries, true
}

// InjectAgingFaults sprinkles n new persistent stuck-at faults uniformly
// over the data array, modeling wear-out accumulating between kernels.
// Killi discovers them as post-training errors and relearns the affected
// lines; MBIST schemes stay blind until their next characterization pass.
// The RNG stream draws whole-L2 line IDs, so the fault population is
// independent of the bank decomposition.
func (s *System) InjectAgingFaults(seed uint64, n int) {
	r := xrand.New(seed)
	ways := s.cfg.L2Ways
	lines := s.L2Lines()
	for i := 0; i < n; i++ {
		g := r.Intn(lines)
		bit := r.Intn(bitvec.LineBits)
		stuck := uint(r.Uint64() & 1)
		gset := g / ways
		way := g % ways
		b := s.banks[gset%s.effBanks]
		b.data.InjectPersistentFault((gset/s.effBanks)*ways+way, bit, stuck)
	}
	s.sysCtr.AddC(cAgingFaults, uint64(n))
}

// onStrikeTick is the slot-1 engine ticker armed when the fault-class spec
// has a transient rate: at each fault-epoch boundary it draws this epoch's
// strike count per bank from the bank's private Poisson stream (banks in
// index order, so the draw order is canonical) and flips stored bits.
// Strikes corrupt the payload itself and are erased by the next write —
// the same mechanism as SoftErrorPerRead, but time-driven rather than
// access-driven, so cold resident lines accumulate flips.
func (s *System) onStrikeTick(boundary uint64) {
	for _, b := range s.banks {
		cells := float64(b.data.Lines()) * float64(bitvec.LineBits)
		n := b.strikeRNG.Poisson(s.cfg.Classes.TransientRate * cells * float64(s.classEpoch))
		for j := 0; j < n; j++ {
			b.data.InjectSoftError(b.strikeRNG.Intn(b.data.Lines()), b.strikeRNG.Intn(bitvec.LineBits))
		}
		if n > 0 {
			b.ctr.AddC(cTransientStrikes, uint64(n))
		}
	}
}

// dfhProber is implemented by classifier schemes that expose their per-line
// DFH state (killi.Scheme does). Codes follow the paper's Table 1 two-bit
// encoding: 0 = stable/0-fault, 1 = initial, 2 = stable/1-fault,
// 3 = disabled. The interface lives here so gpu needs no import of the
// scheme package.
type dfhProber interface{ DFHCode(set, way int) uint8 }

// scrubber is implemented by schemes with an idle-cycle disabled-line
// scrubber (killi's footnote-7 scrubber).
type scrubber interface{ Scrub() int }

// Misclass tallies the DFH classifier's state against fault-map ground
// truth. The ground truth (CapableFaultCount) is a simulator-only port:
// hardware cannot see dormant intermittent faults, which is precisely why
// the paper's runtime classification can misclassify them — this oracle
// measures how often.
type Misclass struct {
	Lines        int // lines inspected (all L2 lines)
	TrueFaulty   int // ground truth: lines with >= 1 capable fault
	Disabled     int // lines the classifier has disabled
	Initial      int // lines still unclassified (neither false-* applies)
	FalseDisable int // disabled although SECDED could serve them (< 2 capable faults)
	FalseTrust   int // trusted at a protection level below the capable fault count
}

// Misclassification compares every line's DFH state against fault-map
// ground truth at the current fault epoch; ok reports whether the attached
// scheme exposes DFH codes at all. A Stable0 line with any capable fault,
// or a Stable1 line with two or more, counts as false trust (an SDC
// window); a Disabled line with fewer than two counts as false disable
// (lost capacity). Call only between Runs.
func (s *System) Misclassification() (Misclass, bool) {
	var m Misclass
	if _, ok := s.banks[0].scheme.(dfhProber); !ok {
		return m, false
	}
	ways := s.cfg.L2Ways
	epoch := s.eng.Now() / s.classEpoch
	for _, b := range s.banks {
		if s.classed {
			b.data.SetFaultEpoch(epoch)
		}
		p := b.scheme.(dfhProber)
		sets := b.data.Lines() / ways
		for set := 0; set < sets; set++ {
			for way := 0; way < ways; way++ {
				capable := b.data.CapableFaultCount(set*ways + way)
				m.Lines++
				if capable >= 1 {
					m.TrueFaulty++
				}
				switch p.DFHCode(set, way) {
				case 3:
					m.Disabled++
					if capable < 2 {
						m.FalseDisable++
					}
				case 1:
					m.Initial++
				case 2:
					if capable >= 2 {
						m.FalseTrust++
					}
				default: // stable, 0 known faults
					if capable >= 1 {
						m.FalseTrust++
					}
				}
			}
		}
	}
	return m, true
}

// Scrub runs each bank scheme's disabled-line scrubber, if the scheme has
// one, and returns the total number of reclaimed lines. Call only between
// Runs. Under a classed fault population the scrubber's re-test observes
// the current fault epoch, so intermittent faults that are dormant right
// now pass the test and the line is reclaimed only to fail again later —
// exactly the churn the misclassification oracle measures.
func (s *System) Scrub() (reclaimed int, ok bool) {
	if _, is := s.banks[0].scheme.(scrubber); !is {
		return 0, false
	}
	epoch := s.eng.Now() / s.classEpoch
	for _, b := range s.banks {
		if s.classed {
			b.data.SetFaultEpoch(epoch)
		}
		reclaimed += b.scheme.(scrubber).Scrub()
	}
	return reclaimed, true
}

// mergeCounters rebuilds the merged counter view from the system counters
// and every domain's private set, in fixed order. Addition commutes, so
// the merged values are independent of shard count and scheduling.
func (s *System) mergeCounters() {
	s.ctr.Reset()
	s.ctr.MergeFrom(&s.sysCtr)
	for _, c := range s.cus {
		s.ctr.MergeFrom(&c.ctr)
	}
	for _, b := range s.banks {
		s.ctr.MergeFrom(&b.ctr)
	}
}

func (s *System) memReads() uint64 {
	var n uint64
	for _, b := range s.banks {
		n += b.mem.Accesses()
	}
	return n
}

// --- data content model ---

// lineContent returns the deterministic memory content of a line address at
// a write version: memory is a pure function, so the backing store needs no
// per-line storage.
func lineContent(addr uint64, version uint32) bitvec.Line {
	var l bitvec.Line
	x := addr*0x9e3779b97f4a7c15 ^ uint64(version)*0xda942042e4dd58b5
	for w := range l {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		l[w] = z ^ (z >> 31)
	}
	return l
}

// memContent returns the current true content of a line address. Any given
// line address is always served by the same bank, so the version lives in
// exactly one lineState table.
func (b *bankDomain) memContent(lineAddr uint64) bitvec.Line {
	return lineContent(lineAddr, packedVersion(b.lineState.get(lineAddr)))
}

// pruneLines rebuilds the bank's line-state table without entries for
// lines that are no longer observable (not resident in this bank and with
// no fetch in flight) once it exceeds its high-water mark (4x the bank
// line count), bounding memory across repeated Runs on streaming
// workloads. Survivors keep their exact packed state.
func (b *bankDomain) pruneLines() {
	if b.lineState.live <= b.versionsHighWater {
		return
	}
	old := b.lineState
	b.lineState.init(len(old.keys))
	for i, k := range old.keys {
		if k == 0 {
			continue
		}
		lineAddr := k - 1
		v := old.vals[i]
		if packedPending(v) > 0 || b.resident(lineAddr) {
			*b.lineState.ref(lineAddr) = v
		}
	}
	b.ctr.IncC(cVersionPrunes)
}

// resident reports whether this bank holds the line.
func (b *bankDomain) resident(lineAddr uint64) bool {
	_, lset, tag := b.sys.split(lineAddr << b.sys.lineShift)
	_, hit := b.tags.Lookup(lset, tag)
	return hit
}

// pendingDec retires one in-flight fetch for a line address. The count is
// decremented to zero rather than removed; dead entries are swept out
// wholesale by pruneLines once the table outgrows its high-water mark.
func (b *bankDomain) pendingDec(lineAddr uint64) {
	p := b.lineState.ref(lineAddr)
	*p = *p&^0xFFFFFFFF | uint64(uint32(*p)-1)
	b.pruneLines()
}

// --- simulation ---

// Run simulates the given per-CU traces to completion and returns the
// result. The trace slice must have at least cfg.CUs entries; extras are
// ignored.
//
// Run may be called repeatedly on the same System: cache, scheme, and DFH
// state persist across calls (the paper's "training happens once per
// reset cycle, not per kernel"), and the Result reports only the latest
// run's cycles and event deltas. This is how steady-state measurements
// exclude one-time warmup.
func (s *System) Run(traces [][]workload.Request) Result {
	if len(traces) < s.cfg.CUs {
		panic(fmt.Sprintf("gpu: %d traces for %d CUs", len(traces), s.cfg.CUs))
	}
	startCycle := s.eng.Now()
	s.mergeCounters()
	snap := s.ctr.Snapshot()
	startMem := s.memReads()
	if s.observer != nil {
		s.startObserver()
	}
	for i, c := range s.cus {
		c.trace = traces[i]
		c.idx = 0
		c.inflight = 0
		c.lastIssue = 0
		c.started = false
		c.instrs = 0
		c.issueMore()
	}
	cycles := s.eng.Run()
	if s.observer != nil {
		s.flushObserver()
	}
	s.mergeCounters()
	res := Result{
		Cycles:           cycles - startCycle,
		L2Misses:         s.ctr.Since(snap, "l2.read_misses") + s.ctr.Since(snap, "l2.error_misses"),
		L2Accesses:       s.ctr.Since(snap, "l2.accesses"),
		MemAccesses:      s.memReads() - startMem,
		DisabledLines:    s.DisabledLines(),
		SDC:              s.ctr.Since(snap, "l2.silent_data_corruption"),
		TransientStrikes: s.ctr.Since(snap, "l2.transient_strikes"),
		Counters:         &s.ctr,
		Sched:            s.eng.Stats(),
	}
	if mc, ok := s.Misclassification(); ok {
		res.Misclass = mc
		res.HasMisclass = true
	}
	for _, c := range s.cus {
		res.Instructions += c.instrs
	}
	return res
}

// --- CU domain ---

// OnEvent implements engine.EventSink for a CU front-end.
func (c *cuDomain) OnEvent(kind uint8, a, b uint64) {
	switch kind {
	case ckRead:
		c.read(a)
	case ckWrite:
		c.write(a)
	case ckRetire:
		c.complete()
	case ckRetireFill:
		c.l1Fill(a)
		c.complete()
	}
}

// issueMore launches trace requests for a CU until its window fills or the
// trace ends. Issue spacing models compute between accesses:
// instructions-per-access divided by the CU's issue IPC.
func (c *cuDomain) issueMore() {
	now := c.d.Now()
	for c.inflight < c.sys.cfg.WindowPerCU && c.idx < len(c.trace) {
		req := c.trace[c.idx]
		c.idx++
		c.inflight++
		gap := uint64(float64(req.Instrs) / c.sys.cfg.IssueIPC)
		issueAt := now
		if issueAt < c.sys.stallUntil {
			issueAt = c.sys.stallUntil
		}
		if c.started && c.lastIssue+gap > issueAt {
			issueAt = c.lastIssue + gap
		}
		c.started = true
		c.lastIssue = issueAt
		c.instrs += uint64(req.Instrs)
		c.instrsTotal += uint64(req.Instrs)
		kind := ckRead
		if req.Write {
			kind = ckWrite
		}
		c.d.After(issueAt-now, kind, req.Addr, 0)
	}
}

// complete retires one in-flight request and refills the window.
func (c *cuDomain) complete() {
	c.inflight--
	c.issueMore()
}

// read starts one load at the current cycle: L1 hit retires locally, a
// miss posts a read message to the owning L2 bank.
func (c *cuDomain) read(addr uint64) {
	c.ctr.IncC(cL1Reads)
	set := c.l1.Index(addr)
	if way, hit := c.l1.Lookup(set, c.l1.Tag(addr)); hit {
		c.ctr.IncC(cL1Hits)
		c.l1.Touch(set, way)
		c.d.After(c.sys.cfg.L1Lat, ckRetire, 0, 0)
		return
	}
	bank, _, _ := c.sys.split(addr)
	c.d.Send(c.sys.banks[bank].d, c.sys.cfg.L1Lat, bkRead, addr, uint64(c.id))
}

// write starts one store: write-through, no-allocate at both levels; the
// store retires after the L1 latency without a completion dependency,
// while the update travels to the bank as a posted message.
func (c *cuDomain) write(addr uint64) {
	c.ctr.IncC(cL1Writes)
	set := c.l1.Index(addr)
	var l1Hit uint64
	if way, hit := c.l1.Lookup(set, c.l1.Tag(addr)); hit {
		c.l1.Touch(set, way)
		l1Hit = 1
	}
	c.d.After(c.sys.cfg.L1Lat, ckRetire, 0, 0)
	bank, _, _ := c.sys.split(addr)
	c.d.Send(c.sys.banks[bank].d, c.sys.cfg.L1Lat, bkStore, addr, l1Hit)
}

// l1Fill installs a line into the CU's L1 (plain LRU, no protection — the
// paper's scope is the L2).
func (c *cuDomain) l1Fill(addr uint64) {
	set := c.l1.Index(addr)
	tag := c.l1.Tag(addr)
	if _, hit := c.l1.Lookup(set, tag); hit {
		return
	}
	way, ok := c.l1.Victim(set, nil)
	if !ok {
		return
	}
	c.l1.Install(set, way, tag)
}

// --- bank domain ---

// OnEvent implements engine.EventSink for an L2 bank.
func (b *bankDomain) OnEvent(kind uint8, a, bb uint64) {
	if b.sys.classed {
		// Keep the data array's fault epoch in step with the bank's clock so
		// intermittent/aging activation is a pure function of simulated time.
		b.data.SetFaultEpoch(b.d.Now() / b.sys.classEpoch)
	}
	switch kind {
	case bkRead:
		b.read(a, int(bb))
	case bkStore:
		b.store(a, bb != 0)
	case bkFill:
		b.fill(a, int(bb))
	}
}

// read performs the L2 read pipeline for one request arriving from a CU.
func (b *bankDomain) read(addr uint64, cu int) {
	b.ctr.IncC(cL2Accesses)
	now := b.d.Now()
	start := now
	if b.free > start {
		start = b.free
	}
	b.free = start + b.sys.cfg.L2TagLat + b.sys.cfg.L2DataLat
	_, set, tag := b.sys.split(addr)

	if b.sys.cfg.TagSoftErrorPerLookup > 0 && b.softRNG.Bernoulli(b.sys.cfg.TagSoftErrorPerLookup) {
		// Tag parity catches the flip; the affected entry is dropped and
		// the access refetches — never a wrong-line hit.
		b.ctr.IncC(cTagParityMisses)
		if way, hit := b.tags.Lookup(set, tag); hit {
			b.scheme.OnEvict(set, way)
			b.tags.Invalidate(set, way)
		}
		b.ctr.IncC(cReadMisses)
		b.fetch(addr, cu, start+b.sys.cfg.L2TagLat)
		return
	}

	if way, hit := b.tags.Lookup(set, tag); hit {
		b.tags.Touch(set, way)
		id := b.tags.LineID(set, way)
		if b.sys.cfg.SoftErrorPerRead > 0 && b.softRNG.Bernoulli(b.sys.cfg.SoftErrorPerRead) {
			b.data.InjectSoftError(id, b.softRNG.Intn(bitvec.LineBits))
			b.ctr.IncC(cSoftErrors)
		}
		data := b.data.Read(id)
		verdict := b.scheme.OnReadHit(set, way, &data)
		if verdict == protection.Deliver {
			b.ctr.IncC(cReadHits)
			if data != b.lineData[id] {
				// Delivered data differs from ground truth: silent data
				// corruption the scheme failed to catch.
				b.ctr.IncC(cSDC)
			}
			done := start + b.sys.cfg.L2TagLat + b.sys.cfg.L2DataLat + b.sys.cfg.ECCLat
			b.d.Send(b.sys.cus[cu].d, done+1-now, ckRetireFill, addr, 0)
			return
		}
		// Error-induced cache miss: the scheme already invalidated or
		// disabled the line; refetch from memory.
		b.ctr.IncC(cErrorMisses)
		b.fetch(addr, cu, start+b.sys.cfg.L2TagLat+b.sys.cfg.L2DataLat+b.sys.cfg.ECCLat)
		return
	}
	b.ctr.IncC(cReadMisses)
	b.fetch(addr, cu, start+b.sys.cfg.L2TagLat)
}

// fetch queues a line fetch on the bank's DRAM channel starting no earlier
// than cycle from. The line has an observer (a pending fetch that will
// evaluate memory content) from here until the fill lands.
//
// The CU's response is scheduled here, at fetch time, rather than when the
// fill lands: the DRAM channel already knows the completion cycle, so the
// response can be posted for done+1 — the same delivery cycle the fill
// event would have produced — carrying only the address (the CU's L1 fill
// is content-free). Timing this early is what gives the bank→CU latency
// edge its large declared floor, and with it the engine's multi-cycle
// round coalescing.
func (b *bankDomain) fetch(addr uint64, cu int, from uint64) {
	lineAddr := addr >> b.sys.lineShift
	p := b.lineState.ref(lineAddr)
	*p = *p&^0xFFFFFFFF | uint64(uint32(*p)+1)
	done := b.mem.Access(from)
	now := b.d.Now()
	b.d.After(done-now, bkFill, addr, uint64(cu))
	b.d.Send(b.sys.cus[cu].d, done+1-now, ckRetireFill, addr, 0)
}

// fill lands a fetch: the line's content is evaluated at fill time (so
// stores that raced the fetch are reflected) and installed into the bank.
// The CU response was already posted at fetch time for the cycle after
// this event.
func (b *bankDomain) fill(addr uint64, cu int) {
	lineAddr := addr >> b.sys.lineShift
	b.pendingDec(lineAddr)
	b.installL2(addr, b.memContent(lineAddr))
}

// store applies a write-through update at the bank. The line's content
// version advances only when some copy or in-flight fetch can observe the
// new value: the storing CU's L1, this bank, or a pending fill.
func (b *bankDomain) store(addr uint64, l1Hit bool) {
	lineAddr := addr >> b.sys.lineShift
	_, set, tag := b.sys.split(addr)
	way, l2Hit := b.tags.Lookup(set, tag)
	if l1Hit || l2Hit || packedPending(b.lineState.get(lineAddr)) > 0 {
		*b.lineState.ref(lineAddr) += 1 << 32
		b.pruneLines()
	}
	if l2Hit {
		b.ctr.IncC(cWriteUpdates)
		b.tags.Touch(set, way)
		id := b.tags.LineID(set, way)
		newData := b.memContent(lineAddr)
		b.data.Write(id, newData)
		b.lineData[id] = newData
		b.scheme.OnWriteHit(set, way, newData)
	}
	b.mem.AccessWrite(b.d.Now())
}

// installL2 places fetched data into the bank, driving victim selection,
// eviction training, and fill metadata generation on the scheme. When every
// way of the set is disabled the line bypasses the cache.
func (b *bankDomain) installL2(addr uint64, data bitvec.Line) {
	_, set, tag := b.sys.split(addr)
	if _, hit := b.tags.Lookup(set, tag); hit {
		// A racing fill already installed this line.
		return
	}
	// Eviction training can disable the chosen victim (Killi discovering a
	// multi-bit faulty line on its way out); re-pick until an installable
	// way is found or the set is exhausted.
	way := -1
	for attempt := 0; attempt < b.sys.cfg.L2Ways; attempt++ {
		w, ok := b.tags.Victim(set, b.scheme.VictimFunc())
		if !ok {
			break
		}
		if b.tags.Entry(set, w).Valid {
			// No invalid way was available and the scheme fell through to
			// its recency tie-break. Real GPU L2s do not implement true
			// LRU; pick pseudo-randomly among the valid enabled ways
			// instead, which also keeps streaming fills from
			// deterministically flushing resident reuse data.
			w = b.randomValidWay(set, w)
		}
		if b.tags.Entry(set, w).Valid {
			b.ctr.IncC(cEvictions)
			b.scheme.OnEvict(set, w)
		}
		if !b.tags.Entry(set, w).Disabled {
			way = w
			break
		}
	}
	if way < 0 {
		b.ctr.IncC(cBypassFills)
		return
	}
	b.tags.Install(set, way, tag)
	id := b.tags.LineID(set, way)
	b.data.Write(id, data)
	b.lineData[id] = data
	b.scheme.OnFill(set, way, data)
}

// randomValidWay picks a pseudo-random valid, enabled way of a bank set as
// the replacement victim, falling back to the scheme's pick if the set has
// none (cannot happen when the fallback way itself is valid and enabled).
// The candidate scratch is sized to the configured associativity, so no
// way can be silently excluded.
func (b *bankDomain) randomValidWay(set, fallback int) int {
	cand := b.wayScratch
	n := 0
	for w, e := range b.tags.Set(set) {
		if e.Valid && !e.Disabled {
			cand[n] = w
			n++
		}
	}
	if n == 0 {
		return fallback
	}
	return cand[b.replRNG.Intn(n)]
}
