package gpu

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"killi/internal/killi"
	"killi/internal/obs"
	"killi/internal/protection"
)

// shardMatrix is the scheme × workload grid the shard-invariance tests
// sweep: one state-heavy scheme (Killi: ECC cache, DFH training, contention
// evictions) and one stateless-per-line baseline, on one memory-bound and
// one compute-bound workload.
var shardMatrix = []struct {
	scheme    string
	newScheme protection.Factory
	workload  string
}{
	{"killi-1:64", killiFac(killi.Config{Ratio: 64}), "xsbench"},
	{"killi-1:64", killiFac(killi.Config{Ratio: 64}), "nekbone"},
	{"secded", fac(protection.NewSECDEDPerLine), "xsbench"},
	{"secded", fac(protection.NewSECDEDPerLine), "nekbone"},
}

var shardCounts = []int{1, 2, 4, 16}

// resultDigest hashes a Result's fields and full counter set.
func resultDigest(res Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cycles=%d instrs=%d acc=%d miss=%d mem=%d disabled=%d\n",
		res.Cycles, res.Instructions, res.L2Accesses, res.L2Misses,
		res.MemAccesses, res.DisabledLines)
	for _, n := range res.Counters.Names() {
		fmt.Fprintf(h, "%s=%d\n", n, res.Counters.Get(n))
	}
	return h.Sum64()
}

// TestShardCountInvariant is the tentpole determinism gate: for every
// scheme × workload cell, running the identical simulation at K = 1, 2, 4,
// 16 shards must produce bit-identical results — same cycles, same counter
// set, same disabled lines — because the engine delivers every domain the
// same events in the same order regardless of how domains are placed on
// shards.
func TestShardCountInvariant(t *testing.T) {
	for _, tc := range shardMatrix {
		t.Run(tc.scheme+"/"+tc.workload, func(t *testing.T) {
			traces := shortTraces(tc.workload, 1200)
			var want uint64
			for i, k := range shardCounts {
				sys := New(smallConfig(0.625), tc.newScheme)
				sys.SetShards(k)
				if got := sys.Shards(); k > 1 && got < 2 {
					t.Fatalf("SetShards(%d) clamped to %d", k, got)
				}
				res := sys.Run(traces)
				d := resultDigest(res)
				if i == 0 {
					want = d
					continue
				}
				if d != want {
					t.Fatalf("K=%d digest %#x differs from K=1 digest %#x", k, d, want)
				}
			}
		})
	}
}

// TestShardCountInvariantObserved extends the gate to the observability
// export: the JSONL byte stream a Collector records (resets, transitions
// with global line IDs, epoch samples) must be identical at every shard
// count — per-bank buffering plus the deterministic cross-bank flush order
// make emission independent of worker interleaving.
func TestShardCountInvariantObserved(t *testing.T) {
	for _, tc := range shardMatrix {
		t.Run(tc.scheme+"/"+tc.workload, func(t *testing.T) {
			traces := shortTraces(tc.workload, 1200)
			var want []byte
			var wantDigest uint64
			for i, k := range shardCounts {
				sys := New(smallConfig(0.625), tc.newScheme)
				sys.SetShards(k)
				col := obs.NewCollector()
				sys.SetObserver(col, 2048)
				res := sys.Run(traces)
				var buf bytes.Buffer
				if err := col.WriteJSONL(&buf); err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					want = buf.Bytes()
					wantDigest = resultDigest(res)
					continue
				}
				if d := resultDigest(res); d != wantDigest {
					t.Fatalf("K=%d observed-run digest %#x differs from K=1 %#x", k, d, wantDigest)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					a, b := want, buf.Bytes()
					n := min(len(a), len(b))
					at := n
					for j := 0; j < n; j++ {
						if a[j] != b[j] {
							at = j
							break
						}
					}
					lo := max(0, at-120)
					t.Fatalf("K=%d obs JSONL diverges from K=1 at byte %d (lens %d vs %d):\nK=1: …%s\nK=%d: …%s",
						k, at, len(a), len(b), a[lo:min(len(a), at+120)], k, b[lo:min(len(b), at+120)])
				}
			}
		})
	}
}

// TestShardCountInvariantAcrossRuns checks invariance holds for state that
// persists between kernels: warm-up + measured kernel with a voltage
// transition in between, the dvfs pattern.
func TestShardCountInvariantAcrossRuns(t *testing.T) {
	traces := shortTraces("xsbench", 1000)
	run := func(k int) (uint64, uint64) {
		sys := New(smallConfig(0.625), killiFac(killi.Config{Ratio: 64}))
		sys.SetShards(k)
		warm := sys.Run(traces)
		sys.SetVoltage(1.0, 0)
		sys.SetVoltage(0.625, 0)
		meas := sys.Run(traces)
		return resultDigest(warm), resultDigest(meas)
	}
	w1, m1 := run(1)
	for _, k := range []int{2, 4, 16} {
		wk, mk := run(k)
		if wk != w1 || mk != m1 {
			t.Fatalf("K=%d diverges across runs: warm %#x/%#x measured %#x/%#x",
				k, wk, w1, mk, m1)
		}
	}
}

// TestSetShardsMidLifeRejected pins the contract: the shard layout may only
// change between runs (the engine refuses while events are pending), and
// out-of-range values clamp.
func TestSetShardsMidLifeRejected(t *testing.T) {
	sys := New(smallConfig(1.0), fac(protection.NewNone))
	sys.SetShards(1 << 20)
	if sys.Shards() > sys.cfg.CUs+sys.effBanks {
		t.Fatalf("Shards() = %d exceeds domain count", sys.Shards())
	}
	sys.SetShards(0)
	if sys.Shards() != 1 {
		t.Fatalf("Shards() = %d after SetShards(0), want 1", sys.Shards())
	}
}
