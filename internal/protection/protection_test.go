package protection

import (
	"testing"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/faultmodel"
	"killi/internal/obs"
	"killi/internal/sram"
	"killi/internal/stats"
	"killi/internal/xrand"
)

type testHost struct {
	tags *cache.Cache
	data *sram.Array
	ctr  stats.Counters
}

func (h *testHost) Tags() *cache.Cache        { return h.tags }
func (h *testHost) Data() *sram.Array         { return h.data }
func (h *testHost) Stats() *stats.Counters    { return &h.ctr }
func (h *testHost) SchemeInvalidate(s, w int) { h.tags.Invalidate(s, w) }
func (h *testHost) Now() uint64               { return 0 }
func (h *testHost) Observer() obs.Observer    { return nil }

func newHost(t *testing.T, sets, ways int, faults [][]faultmodel.Fault, v float64) *testHost {
	t.Helper()
	cfg := cache.Config{Sets: sets, Ways: ways, LineBytes: 64}
	for len(faults) < cfg.Lines() {
		faults = append(faults, nil)
	}
	fm := faultmodel.NewMapExplicit(faultmodel.Default(), bitvec.LineBits, 1.0, faults)
	return &testHost{tags: cache.New(cfg), data: sram.New(cfg.Lines(), fm, v)}
}

func stuck(bit int, at uint) faultmodel.Fault {
	return faultmodel.Fault{Bit: bit, StuckAt: at, Severity: 0}
}

func randomLine(r *xrand.Rand) bitvec.Line {
	var l bitvec.Line
	for w := range l {
		l[w] = r.Uint64()
	}
	return l
}

func fill(h *testHost, s Scheme, set, way int, data bitvec.Line) {
	h.tags.Install(set, way, uint64(set*1000+way))
	h.data.Write(h.tags.LineID(set, way), data)
	s.OnFill(set, way, data)
}

func TestVerdictString(t *testing.T) {
	if Deliver.String() != "deliver" || ErrorMiss.String() != "error-miss" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() != "protection.Verdict(9)" {
		t.Fatal("unknown verdict formatting")
	}
}

func TestNonePassesEverything(t *testing.T) {
	h := newHost(t, 2, 2, nil, 1.0)
	n := NewNone()
	n.Attach(h)
	n.Reset(1.0)
	data := randomLine(xrand.New(1))
	fill(h, n, 0, 0, data)
	got := h.data.Read(0)
	if v := n.OnReadHit(0, 0, &got); v != Deliver || got != data {
		t.Fatal("None altered behaviour")
	}
	if n.Name() != "none" || n.VictimFunc() != nil {
		t.Fatal("None metadata wrong")
	}
	n.OnWriteHit(0, 0, data)
	n.OnEvict(0, 0)
}

func TestSECDEDPerLineDisablesMultiFaultLines(t *testing.T) {
	faults := [][]faultmodel.Fault{
		{},                          // line 0 clean
		{stuck(3, 1)},               // line 1: correctable
		{stuck(3, 1), stuck(99, 1)}, // line 2: 2 faults → disabled
	}
	h := newHost(t, 4, 1, faults, 0.625)
	s := NewSECDEDPerLine()
	s.Attach(h)
	s.Reset(0.625)
	if h.tags.Entry(0, 0).Disabled || h.tags.Entry(1, 0).Disabled {
		t.Fatal("fault-free/1-fault lines disabled")
	}
	if !h.tags.Entry(2, 0).Disabled {
		t.Fatal("2-fault line not disabled by MBIST pre-characterization")
	}
	if h.ctr.Get("protection.lines_disabled") != 1 {
		t.Fatal("disable not counted")
	}
}

func TestPerLineCorrectsSingleFault(t *testing.T) {
	faults := [][]faultmodel.Fault{{stuck(7, 1)}}
	h := newHost(t, 4, 1, faults, 0.625)
	s := NewSECDEDPerLine()
	s.Attach(h)
	s.Reset(0.625)
	var data bitvec.Line
	fill(h, s, 0, 0, data)
	got := h.data.Read(0)
	if got == data {
		t.Fatal("fault not visible")
	}
	if v := s.OnReadHit(0, 0, &got); v != Deliver || got != data {
		t.Fatal("SECDED did not correct the single fault")
	}
	if h.ctr.Get("protection.corrected_reads") != 1 {
		t.Fatal("correction not counted")
	}
}

func TestPerLineUncorrectableBecomesErrorMiss(t *testing.T) {
	// A soft error on a 1-fault line: SECDED detects 2 errors, cannot
	// correct → invalidate + refetch (write-through makes this safe).
	faults := [][]faultmodel.Fault{{stuck(7, 1)}}
	h := newHost(t, 4, 1, faults, 0.625)
	s := NewSECDEDPerLine()
	s.Attach(h)
	s.Reset(0.625)
	var data bitvec.Line
	fill(h, s, 0, 0, data)
	h.data.InjectSoftError(0, 400)
	got := h.data.Read(0)
	if v := s.OnReadHit(0, 0, &got); v != ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if h.tags.Entry(0, 0).Valid {
		t.Fatal("line not invalidated")
	}
}

func TestDECTEDPerLineEnablesTwoFaultLines(t *testing.T) {
	faults := [][]faultmodel.Fault{
		{stuck(3, 1), stuck(99, 1)},                // 2 faults: enabled, corrected
		{stuck(3, 1), stuck(99, 1), stuck(200, 1)}, // 3 faults: disabled
	}
	h := newHost(t, 4, 1, faults, 0.625)
	s := NewDECTEDPerLine()
	s.Attach(h)
	s.Reset(0.625)
	if h.tags.Entry(0, 0).Disabled {
		t.Fatal("2-fault line disabled under DECTED")
	}
	if !h.tags.Entry(1, 0).Disabled {
		t.Fatal("3-fault line not disabled under DECTED")
	}
	var data bitvec.Line
	fill(h, s, 0, 0, data)
	got := h.data.Read(0)
	if v := s.OnReadHit(0, 0, &got); v != Deliver || got != data {
		t.Fatal("DECTED did not correct 2 faults")
	}
}

func TestMSECCEnablesUpToEleven(t *testing.T) {
	many := make([]faultmodel.Fault, 11)
	for i := range many {
		many[i] = stuck(i*37, 1)
	}
	tooMany := append(append([]faultmodel.Fault{}, many...), stuck(499, 1))
	h := newHost(t, 4, 1, [][]faultmodel.Fault{many, tooMany}, 0.625)
	s := NewMSECC()
	s.Attach(h)
	s.Reset(0.625)
	if h.tags.Entry(0, 0).Disabled {
		t.Fatal("11-fault line disabled under MS-ECC")
	}
	if !h.tags.Entry(1, 0).Disabled {
		t.Fatal("12-fault line not disabled under MS-ECC")
	}
	var data bitvec.Line
	fill(h, s, 0, 0, data)
	got := h.data.Read(0)
	if v := s.OnReadHit(0, 0, &got); v != Deliver || got != data {
		t.Fatal("MS-ECC did not correct 11 faults")
	}
}

func TestPerLineWriteRegeneratesCheckbits(t *testing.T) {
	h := newHost(t, 2, 1, nil, 1.0)
	s := NewSECDEDPerLine()
	s.Attach(h)
	s.Reset(1.0)
	r := xrand.New(2)
	d1 := randomLine(r)
	fill(h, s, 0, 0, d1)
	d2 := randomLine(r)
	h.data.Write(0, d2)
	s.OnWriteHit(0, 0, d2)
	got := h.data.Read(0)
	if v := s.OnReadHit(0, 0, &got); v != Deliver || got != d2 {
		t.Fatal("checkbits stale after write")
	}
}

func TestVoltageRaiseReenablesLines(t *testing.T) {
	// A fault active only at low voltage: the line is disabled at 0.55
	// and reclaimed by a Reset at nominal.
	m := faultmodel.Default()
	sevLow := m.CellFailureProb(0.57, 1.0) // active at v ≤ ~0.57 only
	faults := [][]faultmodel.Fault{{
		{Bit: 1, StuckAt: 1, Severity: sevLow},
		{Bit: 2, StuckAt: 1, Severity: sevLow},
	}}
	h := newHost(t, 2, 1, faults, 0.55)
	s := NewSECDEDPerLine()
	s.Attach(h)
	s.Reset(0.55)
	if !h.tags.Entry(0, 0).Disabled {
		t.Fatal("2-fault line not disabled at 0.55")
	}
	h.data.SetVoltage(1.0)
	s.Reset(1.0)
	if h.tags.Entry(0, 0).Disabled {
		t.Fatal("line not reclaimed at nominal voltage")
	}
}

func TestFLAIRPreTrainedMatchesSECDED(t *testing.T) {
	faults := [][]faultmodel.Fault{
		{stuck(3, 1)},
		{stuck(3, 1), stuck(99, 1)},
	}
	h := newHost(t, 4, 1, faults, 0.625)
	f := NewFLAIR()
	f.Attach(h)
	f.Reset(0.625)
	if f.Training() {
		t.Fatal("pre-trained FLAIR reports training")
	}
	if h.tags.Entry(0, 0).Disabled || !h.tags.Entry(1, 0).Disabled {
		t.Fatal("FLAIR pre-characterization wrong")
	}
	var data bitvec.Line
	fill(h, f, 0, 0, data)
	got := h.data.Read(0)
	if v := f.OnReadHit(0, 0, &got); v != Deliver || got != data {
		t.Fatal("FLAIR SECDED correction failed")
	}
}

func TestFLAIROnlineTrainingRestrictsCapacity(t *testing.T) {
	h := newHost(t, 2, 16, nil, 0.625)
	f := NewFLAIROnline(10)
	f.Attach(h)
	f.Reset(0.625)
	if !f.Training() {
		t.Fatal("online FLAIR not training after reset")
	}
	// During training only 7 of 16 ways are usable (DMR + ways under
	// test).
	if got := h.tags.EnabledWays(0); got != 7 {
		t.Fatalf("enabled ways during training = %d, want 7", got)
	}
	// Drive 10 accesses to finish training.
	r := xrand.New(3)
	for i := 0; i < 10; i++ {
		way, ok := h.tags.Victim(0, f.VictimFunc())
		if !ok {
			t.Fatal("no victim during training")
		}
		fill(h, f, 0, way, randomLine(r))
	}
	if f.Training() {
		t.Fatal("training did not complete")
	}
	if got := h.tags.EnabledWays(0); got != 16 {
		t.Fatalf("enabled ways after training = %d, want 16", got)
	}
	if h.ctr.Get("flair.training_completed") != 1 {
		t.Fatal("completion not counted")
	}
}

func TestFLAIRSteadyStateDisablesOnDetection(t *testing.T) {
	// A masked 2-fault line slips past MBIST if both faults are masked…
	// MBIST uses the oracle here, so emulate a post-training surprise via
	// soft errors instead: two transients on a clean line.
	h := newHost(t, 2, 1, nil, 0.625)
	f := NewFLAIR()
	f.Attach(h)
	f.Reset(0.625)
	var data bitvec.Line
	fill(h, f, 0, 0, data)
	h.data.InjectSoftError(0, 5)
	h.data.InjectSoftError(0, 300)
	got := h.data.Read(0)
	if v := f.OnReadHit(0, 0, &got); v != ErrorMiss {
		t.Fatalf("verdict %v", v)
	}
	if !h.tags.Entry(0, 0).Disabled {
		t.Fatal("FLAIR did not defensively disable after steady-state detection")
	}
}

func TestMarchCharacterizationEquivalentToOracle(t *testing.T) {
	// Resetting with the real March C- pass must produce the identical
	// disable map as the oracle-backed default.
	// Both hosts share one sampled fault map so the comparison is exact.
	fm := faultmodel.NewMap(xrand.New(17), faultmodel.Default(), 256, bitvec.LineBits, 0.55, 1.0)
	mk := func(useMarch bool) *testHost {
		cfg := cache.Config{Sets: 64, Ways: 4, LineBytes: 64}
		h := &testHost{tags: cache.New(cfg), data: sram.New(256, fm, 0.575)}
		s := NewSECDEDPerLine()
		s.UseMarchTest = useMarch
		s.Attach(h)
		s.Reset(0.575)
		return h
	}
	oracle, marchH := mk(false), mk(true)
	disabled := 0
	oracle.tags.ForEach(func(set, way int, e *cache.Entry) {
		if e.Disabled {
			disabled++
		}
		if e.Disabled != marchH.tags.Entry(set, way).Disabled {
			t.Fatalf("(%d,%d): oracle=%v march=%v", set, way, e.Disabled,
				marchH.tags.Entry(set, way).Disabled)
		}
	})
	if disabled == 0 {
		t.Fatal("no disabled lines at 0.575; test vacuous")
	}
	if marchH.ctr.Get("protection.mbist_ops") != 256*10 {
		t.Fatalf("mbist ops = %d, want 2560", marchH.ctr.Get("protection.mbist_ops"))
	}
}
