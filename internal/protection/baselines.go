package protection

import (
	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/ecc"
	"killi/internal/march"
	"killi/internal/stats"
)

// Pre-interned handles for the scheme hot-path counters.
var (
	cCorrectedReads   = stats.Intern("protection.corrected_reads")
	cErrorInducedMiss = stats.Intern("protection.error_induced_miss")
	cLinesDisabled    = stats.Intern("protection.lines_disabled")
)

// None is the fault-free baseline scheme: no metadata, every read trusted.
// It models the paper's "baseline fault-free system operating at nominal
// VDD" when paired with a nominal-voltage data array.
type None struct{ h Host }

// NewNone returns the no-protection scheme.
func NewNone() *None { return &None{} }

// Name implements Scheme.
func (n *None) Name() string { return "none" }

// Attach implements Scheme.
func (n *None) Attach(h Host) { n.h = h }

// Reset implements Scheme.
func (n *None) Reset(vNorm float64) {}

// VictimFunc implements Scheme.
func (n *None) VictimFunc() cache.VictimFunc { return nil }

// OnFill implements Scheme.
func (n *None) OnFill(set, way int, data bitvec.Line) {}

// OnReadHit implements Scheme.
func (n *None) OnReadHit(set, way int, data *bitvec.Line) Verdict { return Deliver }

// OnWriteHit implements Scheme.
func (n *None) OnWriteHit(set, way int, data bitvec.Line) {}

// OnEvict implements Scheme.
func (n *None) OnEvict(set, way int) {}

// PerLine protects every line with one codec's checkbits and relies on an
// MBIST pre-characterization pass: at Reset, every line whose active fault
// count exceeds the codec's correction strength is disabled (the paper's
// "one bit per L2 cache line to enable disabling lines").
//
// With ecc.SECDED() this is the conventional SECDED-per-line LV design
// (and, pre-trained, the FLAIR steady state); with ecc.DECTED() it is the
// paper's DECTED comparison; with ecc.OLSC(11) it is MS-ECC.
type PerLine struct {
	// UseMarchTest makes Reset characterize the array with a real March
	// C- MBIST pass (internal/march) instead of the simulator's fault
	// oracle. The two are provably equivalent for stuck-at faults (see
	// TestMarchMatchesOracle); the flag exists to run the actual
	// machinery the paper's baselines depend on.
	UseMarchTest bool
	// InArrayCheckbits models MS-ECC's capacity-for-reliability layout:
	// below the fault knee the checkbits live in the data array itself,
	// so each data way is paired with a sacrificed check way (half the
	// capacity, the Table 7 "1018-bit codeword" = data line + check
	// line), and a pair is disabled when the faults across BOTH lines
	// exceed the codec's strength. At nominal voltage the code is
	// unnecessary and the full capacity returns.
	InArrayCheckbits bool

	name  string
	codec ecc.Codec
	h     Host
	// Fills store the line's true data and encode lazily: checkbits are
	// deterministic functions of the data, so they are only materialized
	// (encoded[id] set) the first time a read-back mismatches stored[id].
	// A clean read hit is an 8-word compare with no codec work — and since
	// Decode(d, Encode(d)) is OK for every codec, the outcome is identical.
	stored  []bitvec.Line
	check   []ecc.Check // per line ID, valid only where encoded[id]
	encoded []bool
}

// NewPerLine returns a per-line scheme using the given codec.
func NewPerLine(name string, codec ecc.Codec) *PerLine {
	return &PerLine{name: name, codec: codec}
}

// NewSECDEDPerLine returns the conventional SECDED-per-line scheme
// (disables lines with ≥2 LV faults).
func NewSECDEDPerLine() *PerLine { return NewPerLine("secded-line", ecc.SECDED()) }

// NewDECTEDPerLine returns the DECTED-per-line scheme (disables ≥3 faults).
func NewDECTEDPerLine() *PerLine { return NewPerLine("dected-line", ecc.DECTED()) }

// NewMSECC returns the MS-ECC scheme: OLSC correcting up to 11 errors per
// line, disabling codewords with ≥12 faults. Its 506 checkbits per line are
// the paper's 18× area ratio (Table 5); at low voltage they are stored in
// the data array itself, sacrificing every other way (the scheme's
// capacity-for-reliability tradeoff).
func NewMSECC() *PerLine {
	p := NewPerLine("msecc", ecc.OLSC(11))
	p.InArrayCheckbits = true
	return p
}

// Name implements Scheme.
func (p *PerLine) Name() string { return p.name }

// Attach implements Scheme.
func (p *PerLine) Attach(h Host) {
	p.h = h
	lines := h.Tags().Config().Lines()
	p.stored = make([]bitvec.Line, lines)
	p.check = make([]ecc.Check, lines)
	p.encoded = make([]bool, lines)
}

// Codec exposes the underlying codec for area accounting.
func (p *PerLine) Codec() ecc.Codec { return p.codec }

// Reset implements Scheme: the MBIST pre-characterization pass. Lines with
// more active faults than the codec corrects are disabled; every other
// line is enabled (and re-enabled if a voltage raise deactivated faults).
//
// By default the fault counts come from the simulator's oracle (which is
// what a complete MBIST pass would report); with UseMarchTest set, an
// actual March C- sequence runs against the data array instead.
func (p *PerLine) Reset(vNorm float64) {
	tags := p.h.Tags()
	data := p.h.Data()
	faultCount := data.ActiveFaultCount
	if p.UseMarchTest {
		res := march.CMinus(data, tags.Config().Lines())
		p.h.Stats().Add("protection.mbist_ops", res.Ops)
		faultCount = res.FaultCount
	}
	// Below the Figure 1 fault knee an InArrayCheckbits scheme switches to
	// its low-voltage layout: each data way pairs with a sacrificed check
	// way holding its OLSC bits, and the enable decision covers the whole
	// codeword. Above the knee faults are negligible, the code is off, and
	// the full capacity returns.
	ways := tags.Config().Ways
	paired := p.InArrayCheckbits && vNorm < 0.7 && ways >= 2
	tags.ForEach(func(set, way int, e *cache.Entry) {
		id := tags.LineID(set, way)
		e.Valid = false
		switch {
		case !paired:
			e.Disabled = faultCount(id) > p.codec.CorrectsUpTo()
		case way >= ways/2:
			// Check way: stores the partner's checkbits, never data.
			e.Disabled = true
			p.h.Stats().Inc("protection.capacity_lines_sacrificed")
			return
		default:
			pair := tags.LineID(set, way+ways/2)
			e.Disabled = faultCount(id)+faultCount(pair) > p.codec.CorrectsUpTo()
		}
		if e.Disabled {
			p.h.Stats().IncC(cLinesDisabled)
		}
	})
}

// VictimFunc implements Scheme.
func (p *PerLine) VictimFunc() cache.VictimFunc { return nil }

// OnFill implements Scheme.
func (p *PerLine) OnFill(set, way int, data bitvec.Line) {
	id := p.h.Tags().LineID(set, way)
	p.stored[id] = data
	p.encoded[id] = false
}

// OnReadHit implements Scheme.
func (p *PerLine) OnReadHit(set, way int, data *bitvec.Line) Verdict {
	id := p.h.Tags().LineID(set, way)
	if *data == p.stored[id] {
		// Read-back matches the encoded data exactly: the syndrome is zero
		// by construction, so the decode outcome is OK.
		return Deliver
	}
	if !p.encoded[id] {
		p.check[id] = p.codec.Encode(p.stored[id])
		p.encoded[id] = true
	}
	out := p.codec.Decode(data, p.check[id])
	switch out.Status {
	case ecc.OK:
		return Deliver
	case ecc.Corrected:
		p.h.Stats().IncC(cCorrectedReads)
		return Deliver
	default:
		// Detected, uncorrectable: write-through cache ⇒ invalidate and
		// refetch.
		p.h.Stats().IncC(cErrorInducedMiss)
		p.h.Tags().Invalidate(set, way)
		return ErrorMiss
	}
}

// OnWriteHit implements Scheme.
func (p *PerLine) OnWriteHit(set, way int, data bitvec.Line) {
	p.OnFill(set, way, data)
}

// OnEvict implements Scheme.
func (p *PerLine) OnEvict(set, way int) {}
