// Package protection defines the contract between the simulated L2 cache
// and an error-protection scheme, and implements the paper's comparison
// baselines (SECDED-per-line, DECTED-per-line, FLAIR, MS-ECC).
//
// Killi itself implements the same Scheme interface in internal/killi; the
// L2 model is policy-free and the Figure 4/5 sweeps are a loop over
// schemes.
package protection

import (
	"fmt"

	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/obs"
	"killi/internal/sram"
	"killi/internal/stats"
)

// Verdict is a scheme's decision about a cache read hit.
type Verdict int

const (
	// Deliver: the (possibly corrected) data is clean; serve the hit.
	Deliver Verdict = iota
	// ErrorMiss: an uncorrectable error was detected. The line has been
	// invalidated; the controller must signal an error-induced cache miss
	// and refetch from memory (safe because the cache is write-through).
	ErrorMiss
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Deliver:
		return "deliver"
	case ErrorMiss:
		return "error-miss"
	default:
		return fmt.Sprintf("protection.Verdict(%d)", int(v))
	}
}

// Host is the view of the cache controller a scheme operates through.
type Host interface {
	// Tags returns the L2 tag structure. Schemes own Entry.Class and
	// Entry.Disabled.
	Tags() *cache.Cache
	// Data returns the low-voltage data array.
	Data() *sram.Array
	// SchemeInvalidate evicts a valid line at the scheme's request (e.g.
	// Killi's ECC-cache contention evictions). The host counts it and
	// invalidates the tag.
	SchemeInvalidate(set, way int)
	// Stats returns the run's counter set.
	Stats() *stats.Counters
	// Now returns the current simulation cycle (0 for hosts without a
	// clock, e.g. unit-test fixtures driving a scheme directly).
	Now() uint64
	// Observer returns the attached observability sink, nil when
	// observability is off — the common case, which schemes must keep
	// allocation-free by emitting nothing.
	Observer() obs.Observer
}

// Factory builds a fresh, unattached Scheme instance. The sharded L2
// attaches one instance per bank — each protects its bank's lines through
// its own Host view and shares nothing with its siblings — so systems are
// constructed from a factory rather than a single pre-built instance.
type Factory func() Scheme

// Scheme is an error-protection mechanism attached to the L2.
//
// Call ordering: Attach once, then Reset at every voltage change or
// power-on; OnFill after the controller writes fill data into the data
// array; OnReadHit with the freshly read (possibly corrupted) data;
// OnWriteHit after a write-through store updates the array; OnEvict before
// a valid victim's tag is invalidated.
type Scheme interface {
	// Name is a stable identifier for reports.
	Name() string
	// Attach binds the scheme to its host. It is called exactly once.
	Attach(h Host)
	// Reset (re)initializes fault knowledge for a new voltage. MBIST-based
	// schemes run their pre-characterization here; Killi clears DFH state.
	Reset(vNorm float64)
	// VictimFunc returns the allocation/replacement policy the scheme
	// wants (nil for default LRU).
	VictimFunc() cache.VictimFunc
	// OnFill is invoked after fill data was written at (set, way); the
	// scheme generates and stores its metadata. data is the true (encoder
	// input) payload.
	OnFill(set, way int, data bitvec.Line)
	// OnReadHit verifies read data (as read from the faulty array),
	// correcting it in place when possible. On ErrorMiss the scheme has
	// already invalidated or disabled the line.
	OnReadHit(set, way int, data *bitvec.Line) Verdict
	// OnWriteHit regenerates metadata after a store updated the line.
	OnWriteHit(set, way int, data bitvec.Line)
	// OnEvict observes a valid line leaving the cache (before tag
	// invalidation). Killi uses this to train DFH bits.
	OnEvict(set, way int)
}
