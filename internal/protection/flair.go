package protection

import (
	"killi/internal/bitvec"
	"killi/internal/cache"
	"killi/internal/ecc"
)

// FLAIR models Qureshi & Chishti's FLAIR (DSN'13): SECDED per line plus
// Dual Modular Redundancy, with an *online* MBIST pass that tests the cache
// a few ways at a time while the remaining ways run under DMR.
//
// Two operating modes:
//
//   - Pre-trained (the paper's Figure 4/5 setup: "we skip training for the
//     simulations with FLAIR and pre-train their DFH bits"): behaves as
//     SECDED-per-line with ≥2-fault lines disabled from the first cycle.
//
//   - Online training (TrainAccesses > 0): while training, two ways of
//     each set are under MBIST test and the remaining 14 run in DMR pairs,
//     so only 7 of 16 ways hold distinct lines — the paper's "cache
//     capacity is effectively 7/16 of the original". After TrainAccesses
//     cache accesses the MBIST results land: full associativity returns
//     and ≥2-fault lines are disabled. This reproduces FLAIR's
//     training-phase capacity/bandwidth loss that Killi avoids.
type FLAIR struct {
	// TrainAccesses is the number of cache accesses the online MBIST pass
	// needs. Zero means pre-trained.
	TrainAccesses uint64

	h     Host
	codec ecc.Codec
	// Lazy checkbits, as in PerLine: fills store the true line and encode
	// only on the first mismatching read-back.
	stored   []bitvec.Line
	check    []ecc.Check
	encoded  []bool
	accesses uint64
	training bool
}

// NewFLAIR returns a pre-trained FLAIR instance.
func NewFLAIR() *FLAIR { return &FLAIR{} }

// NewFLAIROnline returns a FLAIR instance that trains online for the given
// number of cache accesses.
func NewFLAIROnline(trainAccesses uint64) *FLAIR {
	return &FLAIR{TrainAccesses: trainAccesses}
}

// Name implements Scheme.
func (f *FLAIR) Name() string { return "flair" }

// Attach implements Scheme.
func (f *FLAIR) Attach(h Host) {
	f.h = h
	f.codec = ecc.SECDED()
	lines := h.Tags().Config().Lines()
	f.stored = make([]bitvec.Line, lines)
	f.check = make([]ecc.Check, lines)
	f.encoded = make([]bool, lines)
}

// Training reports whether the online MBIST pass is still running.
func (f *FLAIR) Training() bool { return f.training }

// Reset implements Scheme.
func (f *FLAIR) Reset(vNorm float64) {
	f.accesses = 0
	if f.TrainAccesses == 0 {
		f.training = false
		f.applyMBIST()
		return
	}
	f.training = true
	tags := f.h.Tags()
	ways := tags.Config().Ways
	usable := ways/2 - 1 // DMR halves capacity; two more ways are under test
	if usable < 1 {
		usable = 1
	}
	tags.ForEach(func(set, way int, e *cache.Entry) {
		e.Valid = false
		e.Disabled = way >= usable
	})
}

// applyMBIST installs the MBIST verdicts: disable every line with more
// faults than SECDED corrects, enable the rest.
func (f *FLAIR) applyMBIST() {
	tags := f.h.Tags()
	data := f.h.Data()
	tags.ForEach(func(set, way int, e *cache.Entry) {
		id := tags.LineID(set, way)
		wasDisabled := e.Disabled
		e.Disabled = data.ActiveFaultCount(id) > f.codec.CorrectsUpTo()
		if e.Disabled {
			f.h.Stats().IncC(cLinesDisabled)
			e.Valid = false
		} else if wasDisabled {
			// Ways freed from MBIST testing return empty.
			e.Valid = false
		}
	})
}

// tick advances the training access counter and completes training when
// the MBIST budget is spent.
func (f *FLAIR) tick() {
	if !f.training {
		return
	}
	f.accesses++
	if f.accesses >= f.TrainAccesses {
		f.training = false
		f.applyMBIST()
		f.h.Stats().Inc("flair.training_completed")
	}
}

// VictimFunc implements Scheme.
func (f *FLAIR) VictimFunc() cache.VictimFunc { return nil }

// OnFill implements Scheme.
func (f *FLAIR) OnFill(set, way int, data bitvec.Line) {
	f.tick()
	id := f.h.Tags().LineID(set, way)
	f.stored[id] = data
	f.encoded[id] = false
}

// OnReadHit implements Scheme.
func (f *FLAIR) OnReadHit(set, way int, data *bitvec.Line) Verdict {
	f.tick()
	id := f.h.Tags().LineID(set, way)
	if *data == f.stored[id] {
		// Zero syndrome by construction: decoding would report OK.
		return Deliver
	}
	if !f.encoded[id] {
		f.check[id] = f.codec.Encode(f.stored[id])
		f.encoded[id] = true
	}
	out := f.codec.Decode(data, f.check[id])
	switch out.Status {
	case ecc.OK:
		return Deliver
	case ecc.Corrected:
		f.h.Stats().IncC(cCorrectedReads)
		return Deliver
	default:
		f.h.Stats().IncC(cErrorInducedMiss)
		tags := f.h.Tags()
		if !f.training {
			// Steady state: a detected-uncorrectable pattern means the
			// MBIST characterization missed this line (e.g. a masked fault
			// unmasked, or a soft error on a 1-fault line, §2.3); disable
			// it defensively.
			tags.Entry(set, way).Disabled = true
			f.h.Stats().IncC(cLinesDisabled)
		}
		tags.Invalidate(set, way)
		return ErrorMiss
	}
}

// OnWriteHit implements Scheme.
func (f *FLAIR) OnWriteHit(set, way int, data bitvec.Line) {
	id := f.h.Tags().LineID(set, way)
	f.stored[id] = data
	f.encoded[id] = false
}

// OnEvict implements Scheme.
func (f *FLAIR) OnEvict(set, way int) {}
