// Package workload generates the synthetic GPU memory traces that stand in
// for the paper's ten HPC GPGPU applications.
//
// The paper names only two of its ten workloads (XSBENCH and FFT, the
// memory-bound outliers of Figures 4–5) and classifies the set into
// compute-bound (L2 MPKI < 50) and memory-bound (MPKI > 100) groups. We
// model ten DOE-PathForward-flavored proxies, each defined by its access
// pattern, footprint relative to the 2 MB L2, write mix, and
// instructions-per-access (which sets how latency-tolerant the workload
// is). What Figures 4 and 5 key on is locality structure, not instruction
// semantics, so pattern-faithful traces preserve the comparison.
package workload

import (
	"fmt"

	"killi/internal/xrand"
)

// Request is one coalesced memory access from a CU.
type Request struct {
	// Addr is a byte address.
	Addr uint64
	// Write marks a store (write-through at both cache levels).
	Write bool
	// Instrs is the number of instructions this access represents; it
	// sets issue spacing and the MPKI denominator.
	Instrs uint32
}

// Class groups workloads by the paper's Figure 5 split.
type Class int

const (
	// ComputeBound workloads have L2 MPKI below ~50.
	ComputeBound Class = iota
	// MemoryBound workloads have L2 MPKI above ~100.
	MemoryBound
)

// String names the class.
func (c Class) String() string {
	if c == MemoryBound {
		return "memory-bound"
	}
	return "compute-bound"
}

// Workload is a named trace generator.
type Workload struct {
	// Name is the proxy benchmark name.
	Name string
	// Class is the Figure 5 grouping.
	Class Class
	// Description summarizes the modeled access pattern.
	Description string
	// gen appends exactly n requests for one CU to out and returns the
	// grown slice. Generators never outgrow a capacity of n beyond
	// len(out), so callers may hand in a sub-capacity view of a larger
	// packed buffer and generation happens in place.
	gen func(cu, n int, r *xrand.Rand, out []Request) []Request
}

// rand returns the deterministic per-CU generator Trace and TraceSet share.
func (w Workload) rand(cu int, seed uint64) *xrand.Rand {
	return xrand.New(seed ^ uint64(cu)*0x9e3779b97f4a7c15 ^ hashName(w.Name))
}

// Trace generates n requests for one CU, deterministically from seed.
func (w Workload) Trace(cu, n int, seed uint64) []Request {
	return w.gen(cu, n, w.rand(cu, seed), make([]Request, 0, n))
}

// Traces generates per-CU traces for a whole GPU.
func (w Workload) Traces(cus, nPerCU int, seed uint64) [][]Request {
	out := make([][]Request, cus)
	for cu := range out {
		out[cu] = w.Trace(cu, nPerCU, seed)
	}
	return out
}

// TraceSet is the packed multi-kernel trace storage for one workload: every
// kernel's per-CU requests live in one flat contiguous buffer with
// per-(kernel, CU) views sliced into it. Compared with nested
// [][][]Request storage this is two long-lived allocations instead of
// kernels × CUs, and the replay loop walks sequential memory. A TraceSet is
// immutable after construction and shared read-only by every scheme task of
// a sweep workload.
type TraceSet struct {
	reqs  []Request
	views [][][]Request // kernel → CU → view into reqs
}

// TraceSet generates one kernel per seed (element k of seeds drives kernel
// k) for a whole GPU, bit-identical to calling Traces per seed.
func (w Workload) TraceSet(cus, nPerCU int, seeds []uint64) *TraceSet {
	t := &TraceSet{
		reqs:  make([]Request, 0, len(seeds)*cus*nPerCU),
		views: make([][][]Request, len(seeds)),
	}
	for k, seed := range seeds {
		t.views[k] = make([][]Request, cus)
		for cu := 0; cu < cus; cu++ {
			start := len(t.reqs)
			sub := w.gen(cu, nPerCU, w.rand(cu, seed), t.reqs[start:start:start+nPerCU])
			if len(sub) > nPerCU {
				panic("workload: generator outgrew its trace window")
			}
			t.reqs = t.reqs[:start+len(sub)]
			t.views[k][cu] = t.reqs[start : start+len(sub) : start+len(sub)]
		}
	}
	return t
}

// Kernels returns the number of kernels in the set.
func (t *TraceSet) Kernels() int { return len(t.views) }

// Kernel returns kernel k's per-CU traces, aliasing the packed buffer; the
// result must not be modified.
func (t *TraceSet) Kernel(k int) [][]Request { return t.views[k] }

// Requests returns the total request count across all kernels and CUs.
func (t *TraceSet) Requests() int { return len(t.reqs) }

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Memory-map bases keep each workload's data structures in disjoint
// regions.
const (
	baseA uint64 = 1 << 30
	baseB uint64 = 2 << 30
	baseC uint64 = 3 << 30
)

const lineBytes = 64

// Catalog returns the ten workloads in the order reports print them:
// compute-bound first, then memory-bound.
func Catalog() []Workload {
	return []Workload{
		lulesh(), comd(), snap(), miniamr(), nekbone(), quicksilver(),
		xsbench(), fft(), hpgmg(), pennant(),
	}
}

// ByName finds a workload by name.
func ByName(name string) (Workload, error) {
	for _, w := range Catalog() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown workload %q", name)
}

// --- memory-bound proxies ---

// xsbench models XSBench's macroscopic cross-section lookups: uniformly
// random reads over a nuclide grid far larger than the L2, alternating
// with lookups in a hot unionized-energy index that lives in the L2. The
// index is what an undersized ECC cache disrupts: its faulty lines lose
// their checkbits to the random-grid churn and must be refetched — XSBENCH
// is one of the paper's two ECC-cache-size-sensitive workloads.
func xsbench() Workload {
	const gridBytes = 3 << 20    // unionized energy grid, 1.5× the 2 MB L2
	const indexBytes = 256 << 10 // very hot hash index
	return Workload{
		Name:        "xsbench",
		Class:       MemoryBound,
		Description: "random lookups over a hot 256 KB index + 3 MB unionized grid (1.5× the L2)",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			for len(out) < n {
				// Each lookup walks the hot index, then probes two energy
				// points in the unionized grid. The grid is all live data
				// slightly bigger than the L2, so every line the protection
				// scheme throws away is one the workload will want back —
				// the paper's ECC-cache-thrash sensitivity (Figures 4–5).
				idx := baseB + uint64(r.Intn(indexBytes/lineBytes))*lineBytes
				out = append(out, Request{Addr: idx, Instrs: 2})
				for p := 0; p < 2 && len(out) < n; p++ {
					g := baseA + uint64(r.Intn(gridBytes/lineBytes))*lineBytes
					out = append(out, Request{Addr: g, Instrs: 2})
				}
			}
			return out
		},
	}
}

// fft models in-place FFT butterfly updates: bit-reversed butterfly
// addressing is an effective scatter at cache-line granularity across eight
// concurrent CUs, over a signal slightly bigger than the L2 that every pass
// re-references, plus lookups in a very hot shared twiddle table. The
// twiddle reuse is what an undersized ECC cache disrupts — FFT is one of
// the paper's two ECC-cache-size-sensitive workloads (Figures 4–5).
func fft() Workload {
	const signalBytes = 3 << 20 // in-place working signal, 1.5× the 2 MB L2
	const twBytes = 256 << 10   // hot twiddle table
	return Workload{
		Name:        "fft",
		Class:       MemoryBound,
		Description: "butterfly updates over a live 3 MB signal + hot 256 KB twiddle table",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			sigLines := signalBytes / lineBytes
			const twLines = twBytes / lineBytes
			for len(out) < n {
				// One butterfly: twiddle factor, then read-modify-write of
				// a signal node.
				tw := baseB + uint64(r.Intn(twLines))*lineBytes
				out = append(out, Request{Addr: tw, Instrs: 2})
				if len(out) < n {
					a := baseA + uint64(r.Intn(sigLines))*lineBytes
					out = append(out, Request{Addr: a, Instrs: 3})
					if len(out) < n {
						out = append(out, Request{Addr: a, Write: true, Instrs: 2})
					}
				}
			}
			return out
		},
	}
}

// hpgmg models multigrid smoothing: long streaming sweeps across grid
// levels with almost no temporal reuse at L2 scale.
func hpgmg() Workload {
	return Workload{
		Name:        "hpgmg",
		Class:       MemoryBound,
		Description: "streaming sweeps across 32/16/8 MB multigrid levels",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			levels := []struct {
				base  uint64
				bytes uint64
			}{
				{baseA, 32 << 20},
				{baseB, 16 << 20},
				{baseC, 8 << 20},
			}
			// Each kernel smooths a fresh window of every level, switching
			// levels every 2048-line chunk (a V-cycle leg).
			var starts [3]uint64
			for i, lv := range levels {
				starts[i] = uint64(r.Intn(int(lv.bytes / lineBytes)))
			}
			level, i := 0, uint64(0)
			for len(out) < n {
				lv := levels[level]
				lvLines := lv.bytes / lineBytes
				addr := lv.base + ((starts[level]+i)%lvLines)*lineBytes
				out = append(out, Request{Addr: addr, Instrs: 8})
				if len(out) < n && i%4 == 3 {
					out = append(out, Request{Addr: addr, Write: true, Instrs: 4})
				}
				i++
				if i%2048 == 0 {
					level = (level + 1) % len(levels)
				}
			}
			return out
		},
	}
}

// pennant models unstructured-mesh gather: a sequential index stream
// driving data-dependent random reads.
func pennant() Workload {
	const meshBytes = 16 << 20
	const idxBytes = 8 << 20
	return Workload{
		Name:        "pennant",
		Class:       MemoryBound,
		Description: "sequential index stream gathering randomly from a 16 MB mesh",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			// Each kernel walks its own slice of the index stream.
			idxPos := uint64(r.Intn(int(idxBytes / lineBytes)))
			for len(out) < n {
				idxAddr := baseA + (idxPos%(idxBytes/lineBytes))*lineBytes
				out = append(out, Request{Addr: idxAddr, Instrs: 6})
				idxPos++
				if len(out) < n {
					gather := baseB + uint64(r.Intn(meshBytes/lineBytes))*lineBytes
					out = append(out, Request{Addr: gather, Instrs: 12})
				}
			}
			return out
		},
	}
}

// --- compute-bound proxies ---

// lulesh models hydrodynamics stencils: neighborhood reads over a mesh
// that mostly fits in the L2, with regular writes.
func lulesh() Workload {
	const meshBytes = 3 << 20
	return Workload{
		Name:        "lulesh",
		Class:       ComputeBound,
		Description: "27-point stencil over a 3 MB mesh with neighbor reuse",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			lines := uint64(meshBytes / lineBytes)
			pos := uint64(cu) * (lines / 8)
			for len(out) < n {
				center := pos % lines
				for _, off := range []uint64{0, 1, 64, 4096} {
					if len(out) >= n {
						break
					}
					out = append(out, Request{
						Addr:   baseA + ((center+off)%lines)*lineBytes,
						Instrs: 80,
					})
				}
				if len(out) < n {
					out = append(out, Request{Addr: baseA + center*lineBytes, Write: true, Instrs: 20})
				}
				pos++
			}
			return out
		},
	}
}

// comd models molecular dynamics with cell lists: tight reuse within a
// working set well inside the L2.
func comd() Workload {
	const cellBytes = 3 << 19 // 1.5 MB
	return Workload{
		Name:        "comd",
		Class:       ComputeBound,
		Description: "cell-list force loops over a 1.5 MB particle region",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			lines := cellBytes / lineBytes
			for len(out) < n {
				cell := r.Intn(lines - 8)
				for k := 0; k < 8 && len(out) < n; k++ {
					out = append(out, Request{
						Addr:   baseA + uint64(cell+k)*lineBytes,
						Instrs: 120,
					})
				}
				if len(out) < n {
					out = append(out, Request{Addr: baseA + uint64(cell)*lineBytes, Write: true, Instrs: 30})
				}
			}
			return out
		},
	}
}

// snap models discrete-ordinates transport sweeps: wavefront-ordered
// streaming with immediate reuse.
func snap() Workload {
	const fluxBytes = 2 << 20
	return Workload{
		Name:        "snap",
		Class:       ComputeBound,
		Description: "wavefront sweeps over a 2 MB angular-flux array",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			lines := uint64(fluxBytes / lineBytes)
			pos := uint64(cu) * (lines / 8)
			for len(out) < n {
				addr := baseA + (pos%lines)*lineBytes
				out = append(out, Request{Addr: addr, Instrs: 60})
				if len(out) < n {
					out = append(out, Request{Addr: addr, Instrs: 40}) // reuse
				}
				if len(out) < n && pos%2 == 1 {
					out = append(out, Request{Addr: addr, Write: true, Instrs: 20})
				}
				pos++
			}
			return out
		},
	}
}

// miniamr models block-structured AMR: long dwell times on small blocks.
func miniamr() Workload {
	const blockBytes = 256 << 10
	const blocks = 64
	return Workload{
		Name:        "miniamr",
		Class:       ComputeBound,
		Description: "repeated passes over 256 KB AMR blocks before moving on",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			lines := uint64(blockBytes / lineBytes)
			for len(out) < n {
				block := uint64(r.Intn(blocks))
				base := baseA + block*uint64(blockBytes)
				// Three passes over the block.
				for pass := 0; pass < 3 && len(out) < n; pass++ {
					for l := uint64(0); l < lines && len(out) < n; l += 4 {
						out = append(out, Request{Addr: base + l*lineBytes, Instrs: 70})
					}
				}
			}
			return out
		},
	}
}

// nekbone models spectral-element kernels: very hot small matrices.
func nekbone() Workload {
	const matBytes = 512 << 10
	return Workload{
		Name:        "nekbone",
		Class:       ComputeBound,
		Description: "dense small-matrix kernels over a 512 KB hot set",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			lines := matBytes / lineBytes
			for len(out) < n {
				out = append(out, Request{
					Addr:   baseA + uint64(r.Intn(lines))*lineBytes,
					Instrs: 150,
				})
			}
			return out
		},
	}
}

// quicksilver models Monte Carlo particle transport: a hot cross-section
// table with an occasional cold excursion.
func quicksilver() Workload {
	const hotBytes = 1 << 20
	const coldBytes = 8 << 20
	return Workload{
		Name:        "quicksilver",
		Class:       ComputeBound,
		Description: "90% hits in a 1 MB table, 10% random 8 MB excursions",
		gen: func(cu, n int, r *xrand.Rand, out []Request) []Request {
			for len(out) < n {
				var addr uint64
				if r.Intn(10) == 0 {
					addr = baseB + uint64(r.Intn(coldBytes/lineBytes))*lineBytes
				} else {
					addr = baseA + uint64(r.Intn(hotBytes/lineBytes))*lineBytes
				}
				out = append(out, Request{Addr: addr, Instrs: 100})
			}
			return out
		},
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
