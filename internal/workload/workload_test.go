package workload

import (
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d workloads, want 10 (the paper's count)", len(cat))
	}
	names := map[string]bool{}
	compute, memory := 0, 0
	for _, w := range cat {
		if names[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
		if w.Description == "" {
			t.Fatalf("%s has no description", w.Name)
		}
		if w.Class == MemoryBound {
			memory++
		} else {
			compute++
		}
	}
	if memory != 4 || compute != 6 {
		t.Fatalf("class split %d compute / %d memory", compute, memory)
	}
	if !names["xsbench"] || !names["fft"] {
		t.Fatal("the paper's two named workloads missing")
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("xsbench")
	if err != nil || w.Name != "xsbench" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("missing"); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestTraceLengthAndDeterminism(t *testing.T) {
	for _, w := range Catalog() {
		a := w.Trace(0, 1000, 7)
		b := w.Trace(0, 1000, 7)
		if len(a) != 1000 {
			t.Fatalf("%s: trace length %d", w.Name, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: trace not deterministic at %d", w.Name, i)
			}
		}
		// Pattern-deterministic workloads (strided/stencil sweeps) may
		// ignore the seed; the stochastic ones must not.
		deterministic := map[string]bool{"fft": true, "hpgmg": true, "lulesh": true, "snap": true}
		if deterministic[w.Name] {
			continue
		}
		c := w.Trace(0, 1000, 8)
		same := 0
		for i := range a {
			if a[i] == c[i] {
				same++
			}
		}
		if same == 1000 {
			t.Fatalf("%s: seed has no effect", w.Name)
		}
	}
}

func TestCUsGetDistinctStreams(t *testing.T) {
	for _, w := range Catalog() {
		a := w.Trace(0, 500, 1)
		b := w.Trace(1, 500, 1)
		same := 0
		for i := range a {
			if a[i].Addr == b[i].Addr {
				same++
			}
		}
		if same == 500 {
			t.Fatalf("%s: CUs 0 and 1 produce identical address streams", w.Name)
		}
	}
}

func TestTracesShape(t *testing.T) {
	tr := Catalog()[0].Traces(8, 200, 3)
	if len(tr) != 8 {
		t.Fatalf("Traces returned %d CUs", len(tr))
	}
	for cu, reqs := range tr {
		if len(reqs) != 200 {
			t.Fatalf("CU %d trace length %d", cu, len(reqs))
		}
	}
}

func TestRequestsWellFormed(t *testing.T) {
	for _, w := range Catalog() {
		for _, r := range w.Trace(2, 2000, 5) {
			if r.Instrs == 0 {
				t.Fatalf("%s: request with zero instructions", w.Name)
			}
			if r.Addr%64 != 0 {
				t.Fatalf("%s: request address %#x not line-aligned", w.Name, r.Addr)
			}
		}
	}
}

func TestInstructionIntensityMatchesClass(t *testing.T) {
	// Compute-bound proxies must carry materially more instructions per
	// access than memory-bound ones — that is what makes them
	// latency-tolerant in the simulator.
	avg := func(w Workload) float64 {
		total := 0.0
		reqs := w.Trace(0, 2000, 9)
		for _, r := range reqs {
			total += float64(r.Instrs)
		}
		return total / float64(len(reqs))
	}
	for _, w := range Catalog() {
		a := avg(w)
		if w.Class == ComputeBound && a < 40 {
			t.Errorf("%s: compute-bound with %.1f instrs/access", w.Name, a)
		}
		if w.Class == MemoryBound && a > 20 {
			t.Errorf("%s: memory-bound with %.1f instrs/access", w.Name, a)
		}
	}
}

func TestWriteMixPresent(t *testing.T) {
	// At least some workloads must exercise the write-through path.
	withWrites := 0
	for _, w := range Catalog() {
		for _, r := range w.Trace(0, 3000, 11) {
			if r.Write {
				withWrites++
				break
			}
		}
	}
	if withWrites < 3 {
		t.Fatalf("only %d workloads issue writes", withWrites)
	}
}

func TestClassString(t *testing.T) {
	if ComputeBound.String() != "compute-bound" || MemoryBound.String() != "memory-bound" {
		t.Fatal("class names wrong")
	}
}
