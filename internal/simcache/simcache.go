// Package simcache is a content-addressed, on-disk cache of simulation
// results.
//
// A sweep task is fully determined by its inputs: the GPU configuration
// (fault seed, voltage, geometry, latencies), the protection scheme, the
// workload name, the trace seed and length, and the warmup kernel count.
// The cache keys each task result by a SHA-256 digest of a canonical
// description of those inputs plus a schema version, so re-running a figure
// whose inputs are unchanged is a disk read instead of a simulation.
//
// Robustness properties:
//
//   - entries carry a checksum of their own payload, so a corrupted or
//     truncated file is detected and reported as a miss (the caller
//     recomputes and overwrites it), never served;
//   - entries record the schema version; bump SchemaVersion whenever the
//     simulator's observable behavior changes so stale results from older
//     binaries are never served;
//   - writes go through a temp file that is fsynced before an atomic
//     rename (and the directory entry is fsynced after it), so concurrent
//     writers (the sweep worker pool) and crashes — including power loss
//     straddling the rename — leave either the old entry, the new entry,
//     or nothing: never a torn file;
//   - an interrupted writer can strand "put-*" temp files; RemoveTemps
//     sweeps them, and experiments.Run calls it when a sweep is cancelled.
//
// The cache holds only the scalar result of a task (cycles, instruction and
// miss counts, disabled lines) — everything the sweep merge consumes. Debug
// counters are not cached; runs that need them bypass the cache.
//
// Two record kinds share one directory: plain Result entries (one simulation
// each, the sweep/single-run unit) and DieRecord entries (one campaign die's
// complete evaluation — its fault-free baselines plus every per-cell scalar —
// the unit internal/campaign streams on a warm re-run). Kinds are disjoint
// by construction: the kind participates in both the content address and the
// entry checksum, so a die key can never deserialize as a plain result or
// vice versa.
package simcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// SchemaVersion invalidates every existing cache entry when bumped. It must
// change whenever a code change alters simulation results (a golden-digest
// change is the tell) or the Result layout. v3: fault-class results (SDC,
// transient strikes, misclassification scalars) joined the payload. v4: the
// campaign die-record kind joined the store.
const SchemaVersion = 4

// Result is the cacheable scalar slice of a simulation result. The
// misclassification fields are zero for runs whose scheme exposes no DFH
// codes (MisclassLines == 0 marks them absent).
type Result struct {
	Cycles           uint64 `json:"cycles"`
	Instructions     uint64 `json:"instructions"`
	L2Misses         uint64 `json:"l2_misses"`
	L2Accesses       uint64 `json:"l2_accesses"`
	MemAccesses      uint64 `json:"mem_accesses"`
	DisabledLines    int    `json:"disabled_lines"`
	SDC              uint64 `json:"sdc,omitempty"`
	TransientStrikes uint64 `json:"transient_strikes,omitempty"`
	MisclassLines    int    `json:"misclass_lines,omitempty"`
	TrueFaulty       int    `json:"true_faulty,omitempty"`
	MisclassDisabled int    `json:"misclass_disabled,omitempty"`
	MisclassInitial  int    `json:"misclass_initial,omitempty"`
	FalseDisable     int    `json:"false_disable,omitempty"`
	FalseTrust       int    `json:"false_trust,omitempty"`
}

// Entry kinds stored in the cache directory. The kind is part of both the
// content address and the checksum, so the kinds can never alias.
const (
	kindResult = "result"
	kindDie    = "die"
)

// DieRecord is one campaign die's complete evaluation: the fault-free
// nominal-voltage baseline per workload plus the scalar outcome of every
// (workload, scheme, class, voltage) cell, cell-index-major with voltage
// fastest — exactly the record internal/campaign aggregates, so a warm
// campaign re-run is one Get per die. The same shape serializes into
// campaign checkpoint files.
type DieRecord struct {
	Die          int       `json:"die"`
	Base         []uint64  `json:"base"`
	Cycles       []uint64  `json:"cycles"`
	MPKI         []float64 `json:"mpki"`
	Disabled     []int32   `json:"disabled"`
	SDC          []uint64  `json:"sdc"`
	FalseDisable []int32   `json:"false_disable"`
	FalseTrust   []int32   `json:"false_trust"`
}

// Canonical renders the record as a stable string: every float at %.17g (the
// round-trip-exact format), every slice length explicit. It feeds both the
// entry checksum and the campaign checkpoint's record validation.
func (r DieRecord) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "die=%d base=%d cells=%d|", r.Die, len(r.Base), len(r.Cycles))
	for _, v := range r.Base {
		fmt.Fprintf(&b, "%d ", v)
	}
	b.WriteByte('|')
	for i := range r.Cycles {
		fmt.Fprintf(&b, "%d %.17g %d %d %d %d;", r.Cycles[i], r.MPKI[i], r.Disabled[i], r.SDC[i], r.FalseDisable[i], r.FalseTrust[i])
	}
	return b.String()
}

// Shaped reports whether the record has the slice lengths a campaign with
// the given workload and cell counts expects — the structural validation a
// replayed checkpoint record and a cached die record both pass before being
// aggregated.
func (r DieRecord) Shaped(workloads, cells int) bool {
	return len(r.Base) == workloads &&
		len(r.Cycles) == cells && len(r.MPKI) == cells && len(r.Disabled) == cells &&
		len(r.SDC) == cells && len(r.FalseDisable) == cells && len(r.FalseTrust) == cells
}

// entry is the on-disk representation of one cached result.
type entry struct {
	Schema   int    `json:"schema"`
	Kind     string `json:"kind"`
	Key      string `json:"key"`
	Result   Result `json:"result"`
	Checksum string `json:"checksum"`
}

// checksum digests the fields the entry protects: the schema, the kind, the
// key, and the canonical encoding of the result.
func (e entry) checksum() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%s|%d %d %d %d %d %d %d %d %d %d %d %d %d %d",
		e.Schema, e.Kind, e.Key,
		e.Result.Cycles, e.Result.Instructions, e.Result.L2Misses,
		e.Result.L2Accesses, e.Result.MemAccesses, e.Result.DisabledLines,
		e.Result.SDC, e.Result.TransientStrikes, e.Result.MisclassLines,
		e.Result.TrueFaulty, e.Result.MisclassDisabled, e.Result.MisclassInitial,
		e.Result.FalseDisable, e.Result.FalseTrust)))
	return hex.EncodeToString(sum[:])
}

// dieEntry is the on-disk representation of one cached die record.
type dieEntry struct {
	Schema   int       `json:"schema"`
	Kind     string    `json:"kind"`
	Key      string    `json:"key"`
	Record   DieRecord `json:"record"`
	Checksum string    `json:"checksum"`
}

func (e dieEntry) checksum() string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%d|%s|%s|%s", e.Schema, e.Kind, e.Key, e.Record.Canonical())))
	return hex.EncodeToString(sum[:])
}

// Key returns the content address for a canonical task description. The
// schema version participates in the digest, so entries written by an
// incompatible simulator are unreachable even before the in-file schema
// check.
func Key(desc string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("simcache/v%d\n%s", SchemaVersion, desc)))
	return hex.EncodeToString(sum[:])
}

// Store is a cache directory. Methods are safe for concurrent use by the
// sweep worker pool.
type Store struct {
	dir           string
	hits, misses  atomic.Int64
	writeFailures atomic.Int64
}

// Open returns a store over dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Hits and Misses report how many Get calls were served and not served
// since Open. A corrupted or schema-mismatched entry counts as a miss.
func (s *Store) Hits() int64   { return s.hits.Load() }
func (s *Store) Misses() int64 { return s.misses.Load() }

// WriteFailures reports how many Put calls failed. Puts are best-effort
// from the caller's perspective (a full disk must not fail a sweep), but
// the count keeps failures observable.
func (s *Store) WriteFailures() int64 { return s.writeFailures.Load() }

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+".json") }

// Get returns the cached result for key. ok is false on a missing entry and
// on any entry that fails validation — wrong schema, wrong key, or a
// checksum mismatch from corruption — so the caller silently recomputes.
func (s *Store) Get(key string) (Result, bool) {
	buf, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return Result{}, false
	}
	var e entry
	if json.Unmarshal(buf, &e) != nil ||
		e.Schema != SchemaVersion ||
		e.Kind != kindResult ||
		e.Key != key ||
		e.Checksum != e.checksum() {
		s.misses.Add(1)
		return Result{}, false
	}
	s.hits.Add(1)
	return e.Result, true
}

// GetDie returns the cached die record for key. Validation mirrors Get: a
// missing file, wrong schema, wrong kind (a plain result under a confused
// key), wrong key, or checksum mismatch is a miss and the caller recomputes
// the die.
func (s *Store) GetDie(key string) (DieRecord, bool) {
	buf, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return DieRecord{}, false
	}
	var e dieEntry
	if json.Unmarshal(buf, &e) != nil ||
		e.Schema != SchemaVersion ||
		e.Kind != kindDie ||
		e.Key != key ||
		e.Checksum != e.checksum() {
		s.misses.Add(1)
		return DieRecord{}, false
	}
	s.hits.Add(1)
	return e.Record, true
}

// Put stores a result under key, atomically replacing any existing entry.
func (s *Store) Put(key string, r Result) error {
	e := entry{Schema: SchemaVersion, Kind: kindResult, Key: key, Result: r}
	e.Checksum = e.checksum()
	return s.write(key, e)
}

// PutDie stores a die record under key, atomically replacing any existing
// entry. Like Put it is best-effort from the campaign's perspective: a full
// disk must not fail a run.
func (s *Store) PutDie(key string, r DieRecord) error {
	e := dieEntry{Schema: SchemaVersion, Kind: kindDie, Key: key, Record: r}
	e.Checksum = e.checksum()
	return s.write(key, e)
}

// write marshals an entry of either kind and lands it atomically: temp file,
// write, fsync, rename, directory fsync.
func (s *Store) write(key string, e any) error {
	buf, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		s.writeFailures.Add(1)
		return fmt.Errorf("simcache: %w", err)
	}
	buf = append(buf, '\n')
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		s.writeFailures.Add(1)
		return fmt.Errorf("simcache: %w", err)
	}
	_, werr := tmp.Write(buf)
	// Sync before the rename: without it a crash shortly after Put can
	// persist the rename but not the data, leaving a torn entry that every
	// later Get would have to detect and recompute.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.writeFailures.Add(1)
		return fmt.Errorf("simcache: writing %s: write=%v sync=%v close=%v", key, werr, serr, cerr)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		s.writeFailures.Add(1)
		return fmt.Errorf("simcache: %w", err)
	}
	if err := s.syncDir(); err != nil {
		// The entry itself is durable and well-formed; only the rename's
		// directory update may still be unflushed. Count it, don't fail.
		s.writeFailures.Add(1)
		return fmt.Errorf("simcache: syncing %s: %w", s.dir, err)
	}
	return nil
}

// syncDir fsyncs the cache directory so a completed rename survives a
// crash. Filesystems that cannot fsync a directory report the error to the
// caller via Put.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// RemoveTemps deletes stranded "put-*" temp files from the cache directory
// and reports how many it removed. Completed entries are untouched. Call it
// only when no writer is mid-Put on this directory — e.g. after a cancelled
// sweep's workers have drained — since it would yank a live writer's temp
// file out from under it (that Put would then fail, which Put callers
// already treat as best-effort).
func (s *Store) RemoveTemps() (int, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "put-*"))
	if err != nil {
		return 0, fmt.Errorf("simcache: %w", err)
	}
	removed := 0
	var firstErr error
	for _, m := range matches {
		switch err := os.Remove(m); {
		case err == nil:
			removed++
		case firstErr == nil && !os.IsNotExist(err):
			firstErr = fmt.Errorf("simcache: %w", err)
		}
	}
	return removed, firstErr
}
