package simcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testResult() Result {
	return Result{
		Cycles:        23511,
		Instructions:  96000,
		L2Misses:      7927,
		L2Accesses:    19046,
		MemAccesses:   7927,
		DisabledLines: 2,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("gpu=... scheme=killi-1:64 workload=xsbench seed=1")
	if _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	want := testResult()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed a stored entry")
	}
	if got != want {
		t.Fatalf("round trip changed the result: got %+v, want %+v", got, want)
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Hits(), s.Misses())
	}
}

func TestDistinctDescriptionsDistinctKeys(t *testing.T) {
	a := Key("scheme=killi-1:64 seed=1")
	b := Key("scheme=killi-1:64 seed=2")
	if a == b {
		t.Fatal("different descriptions produced the same key")
	}
	if a != Key("scheme=killi-1:64 seed=1") {
		t.Fatal("key derivation is not deterministic")
	}
}

// entryFile locates the single cache entry file in the store directory.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one entry file, got %v (err %v)", files, err)
	}
	return files[0]
}

func TestCorruptedEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("desc")
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}

	path := entryFile(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string]string{
		"flipped payload": strings.Replace(string(orig), `"cycles": 23511`, `"cycles": 23512`, 1),
		"truncated":       string(orig[:len(orig)/2]),
		"not json":        "hello\n",
		"empty":           "",
	} {
		if corrupt == string(orig) {
			t.Fatalf("%s: corruption did not change the file", name)
		}
		if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("%s: corrupted entry served as a hit", name)
		}
	}

	// Recomputing (a fresh Put) must repair the entry in place.
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || got != testResult() {
		t.Fatalf("repaired entry not served: ok=%v got=%+v", ok, got)
	}
}

func TestSchemaMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("desc")
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}

	// Rewrite the entry as a future schema version with a self-consistent
	// checksum: the in-file schema check alone must reject it.
	e := entry{Schema: SchemaVersion + 1, Kind: "result", Key: key, Result: testResult()}
	e.Checksum = e.checksum()
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entryFile(t, dir), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("schema-mismatched entry served as a hit")
	}
}

func TestWrongKeyInFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := Key("a"), Key("b")
	if err := s.Put(keyA, testResult()); err != nil {
		t.Fatal(err)
	}
	// A file renamed onto another key's path (e.g. a botched manual copy)
	// self-identifies through its embedded key and is rejected.
	if err := os.Rename(filepath.Join(dir, keyA+".json"), filepath.Join(dir, keyB+".json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyB); ok {
		t.Fatal("entry with mismatched embedded key served as a hit")
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(Key(string(rune('a'+i))), testResult()); err != nil {
			t.Fatal(err)
		}
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestRemoveTempsSweepsOnlyTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("kept")
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}
	// Simulate two interrupted writers stranding temps mid-Put.
	for _, name := range []string{"put-1234", "put-deadbeef"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.RemoveTemps()
	if err != nil {
		t.Fatalf("RemoveTemps: %v", err)
	}
	if n != 2 {
		t.Fatalf("RemoveTemps removed %d files, want 2", n)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "put-*"))
	if err != nil || len(leftovers) != 0 {
		t.Fatalf("temp files survived the sweep: %v (err %v)", leftovers, err)
	}
	if got, ok := s.Get(key); !ok || got != testResult() {
		t.Fatalf("completed entry damaged by RemoveTemps: ok=%v got=%+v", ok, got)
	}
	// Idempotent on an already-clean directory.
	if n, err := s.RemoveTemps(); err != nil || n != 0 {
		t.Fatalf("second RemoveTemps = (%d, %v), want (0, nil)", n, err)
	}
}

func testDieRecord() DieRecord {
	return DieRecord{
		Die:          7,
		Base:         []uint64{23511, 40100},
		Cycles:       []uint64{23511, 23900, 40100, 40250},
		MPKI:         []float64{82.573, 83.001, 12.5, 12.625},
		Disabled:     []int32{0, 3, 0, 5},
		SDC:          []uint64{0, 1, 0, 0},
		FalseDisable: []int32{0, 0, 0, 2},
		FalseTrust:   []int32{0, 1, 0, 0},
	}
}

func TestDieRecordRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("campaign axes\ndie=7")
	if _, ok := s.GetDie(key); ok {
		t.Fatal("GetDie on empty store reported a hit")
	}
	want := testDieRecord()
	if err := s.PutDie(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetDie(key)
	if !ok {
		t.Fatal("GetDie missed a stored die record")
	}
	if got.Canonical() != want.Canonical() {
		t.Fatalf("round trip changed the record:\ngot  %s\nwant %s", got.Canonical(), want.Canonical())
	}
	if !got.Shaped(2, 4) {
		t.Fatal("round-tripped record lost its shape")
	}
	if got.Shaped(2, 5) || got.Shaped(1, 4) {
		t.Fatal("Shaped accepted wrong dimensions")
	}
}

// A die key must never deserialize as a plain result, nor a result key as a
// die record: the kind participates in the checksum, so cross-kind reads are
// misses even when the file parses.
func TestKindConfusionIsAMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dieKey, resKey := Key("die entry"), Key("result entry")
	if err := s.PutDie(dieKey, testDieRecord()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(resKey, testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(dieKey); ok {
		t.Fatal("Get served a die-record entry as a plain result")
	}
	if _, ok := s.GetDie(resKey); ok {
		t.Fatal("GetDie served a plain result entry as a die record")
	}
	// The right-kind reads still work after the wrong-kind probes.
	if _, ok := s.GetDie(dieKey); !ok {
		t.Fatal("GetDie missed its own entry")
	}
	if _, ok := s.Get(resKey); !ok {
		t.Fatal("Get missed its own entry")
	}
}

func TestCorruptedDieEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("die desc")
	if err := s.PutDie(key, testDieRecord()); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range map[string]string{
		"flipped payload": strings.Replace(string(orig), `"die": 7`, `"die": 8`, 1),
		"truncated":       string(orig[:len(orig)/2]),
		"not json":        "hello\n",
	} {
		if corrupt == string(orig) {
			t.Fatalf("%s: corruption did not change the file", name)
		}
		if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.GetDie(key); ok {
			t.Errorf("%s: corrupted die entry served as a hit", name)
		}
	}
	// Recomputing repairs in place.
	if err := s.PutDie(key, testDieRecord()); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetDie(key); !ok || got.Canonical() != testDieRecord().Canonical() {
		t.Fatalf("repaired die entry not served: ok=%v", ok)
	}
}

// Parallel die workers can Put the same key concurrently (two campaigns
// racing, or a worker repairing a corrupt entry while another recomputes
// it). Whatever write wins the final rename, the entry must be whole: a
// valid checksum over one writer's complete payload, never a torn mix.
func TestConcurrentPutSameKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("contended")
	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := testResult()
			r.Cycles += uint64(i) // distinct payloads make tearing detectable
			for j := 0; j < 8; j++ {
				if err := s.Put(key, r); err != nil {
					t.Errorf("writer %d: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("no valid entry after concurrent writers finished")
	}
	if d := got.Cycles - testResult().Cycles; d >= writers {
		t.Fatalf("winning entry is no single writer's payload: cycles=%d", got.Cycles)
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, "put-*")); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

// Same contention through the die-record path.
func TestConcurrentPutDieSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("contended die")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := testDieRecord()
			r.Cycles = append([]uint64(nil), r.Cycles...)
			r.Cycles[0] += uint64(i)
			if err := s.PutDie(key, r); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	got, ok := s.GetDie(key)
	if !ok {
		t.Fatal("no valid die entry after concurrent writers finished")
	}
	if d := got.Cycles[0] - testDieRecord().Cycles[0]; d >= 8 {
		t.Fatalf("winning die entry is no single writer's payload: cycles[0]=%d", got.Cycles[0])
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key("x"), testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Key("x")); !ok {
		t.Fatal("store under created directory not usable")
	}
}
