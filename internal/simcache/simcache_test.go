package simcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testResult() Result {
	return Result{
		Cycles:        23511,
		Instructions:  96000,
		L2Misses:      7927,
		L2Accesses:    19046,
		MemAccesses:   7927,
		DisabledLines: 2,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("gpu=... scheme=killi-1:64 workload=xsbench seed=1")
	if _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	want := testResult()
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed a stored entry")
	}
	if got != want {
		t.Fatalf("round trip changed the result: got %+v, want %+v", got, want)
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Hits(), s.Misses())
	}
}

func TestDistinctDescriptionsDistinctKeys(t *testing.T) {
	a := Key("scheme=killi-1:64 seed=1")
	b := Key("scheme=killi-1:64 seed=2")
	if a == b {
		t.Fatal("different descriptions produced the same key")
	}
	if a != Key("scheme=killi-1:64 seed=1") {
		t.Fatal("key derivation is not deterministic")
	}
}

// entryFile locates the single cache entry file in the store directory.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one entry file, got %v (err %v)", files, err)
	}
	return files[0]
}

func TestCorruptedEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("desc")
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}

	path := entryFile(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, corrupt := range map[string]string{
		"flipped payload": strings.Replace(string(orig), `"cycles": 23511`, `"cycles": 23512`, 1),
		"truncated":       string(orig[:len(orig)/2]),
		"not json":        "hello\n",
		"empty":           "",
	} {
		if corrupt == string(orig) {
			t.Fatalf("%s: corruption did not change the file", name)
		}
		if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("%s: corrupted entry served as a hit", name)
		}
	}

	// Recomputing (a fresh Put) must repair the entry in place.
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || got != testResult() {
		t.Fatalf("repaired entry not served: ok=%v got=%+v", ok, got)
	}
}

func TestSchemaMismatchIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("desc")
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}

	// Rewrite the entry as a future schema version with a self-consistent
	// checksum: the in-file schema check alone must reject it.
	e := entry{Schema: SchemaVersion + 1, Key: key, Result: testResult()}
	e.Checksum = e.checksum()
	buf, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entryFile(t, dir), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("schema-mismatched entry served as a hit")
	}
}

func TestWrongKeyInFileIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := Key("a"), Key("b")
	if err := s.Put(keyA, testResult()); err != nil {
		t.Fatal(err)
	}
	// A file renamed onto another key's path (e.g. a botched manual copy)
	// self-identifies through its embedded key and is rejected.
	if err := os.Rename(filepath.Join(dir, keyA+".json"), filepath.Join(dir, keyB+".json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyB); ok {
		t.Fatal("entry with mismatched embedded key served as a hit")
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(Key(string(rune('a'+i))), testResult()); err != nil {
			t.Fatal(err)
		}
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}

func TestRemoveTempsSweepsOnlyTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("kept")
	if err := s.Put(key, testResult()); err != nil {
		t.Fatal(err)
	}
	// Simulate two interrupted writers stranding temps mid-Put.
	for _, name := range []string{"put-1234", "put-deadbeef"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.RemoveTemps()
	if err != nil {
		t.Fatalf("RemoveTemps: %v", err)
	}
	if n != 2 {
		t.Fatalf("RemoveTemps removed %d files, want 2", n)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "put-*"))
	if err != nil || len(leftovers) != 0 {
		t.Fatalf("temp files survived the sweep: %v (err %v)", leftovers, err)
	}
	if got, ok := s.Get(key); !ok || got != testResult() {
		t.Fatalf("completed entry damaged by RemoveTemps: ok=%v got=%+v", ok, got)
	}
	// Idempotent on an already-clean directory.
	if n, err := s.RemoveTemps(); err != nil || n != 0 {
		t.Fatalf("second RemoveTemps = (%d, %v), want (0, nil)", n, err)
	}
}

func TestOpenCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key("x"), testResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Key("x")); !ok {
		t.Fatal("store under created directory not usable")
	}
}
