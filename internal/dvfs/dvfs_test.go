package dvfs

import (
	"strings"
	"testing"

	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/workload"
)

func smallCfg(v float64) gpu.Config {
	cfg := gpu.DefaultConfig()
	cfg.L2Bytes = 128 << 10
	cfg.Voltage = v
	cfg.RefVoltage = 0.55 // schedules dip this low
	return cfg
}

func kernel(n int) [][]workload.Request {
	w, err := workload.ByName("nekbone")
	if err != nil {
		panic(err)
	}
	return w.Traces(8, n, 5)
}

func TestMBISTStallCycles(t *testing.T) {
	m := DefaultMBIST()
	// Paper-size cache: 32768 lines × 10 passes × 4 cycles / 16 banks.
	if got, want := m.StallCycles(32768), uint64(32768*10*4/16); got != want {
		t.Fatalf("StallCycles = %d, want %d", got, want)
	}
	// Degenerate parallelism clamps to 1.
	bad := MBISTModel{MarchOps: 2, CyclesPerOp: 1, ParallelBanks: 0}
	if bad.StallCycles(10) != 20 {
		t.Fatal("parallelism clamp broken")
	}
}

func TestNeedsMBIST(t *testing.T) {
	if !NeedsMBIST(protection.NewSECDEDPerLine()) {
		t.Fatal("SECDED-per-line should need MBIST")
	}
	if !NeedsMBIST(protection.NewMSECC()) {
		t.Fatal("MS-ECC should need MBIST")
	}
	if !NeedsMBIST(protection.NewFLAIR()) {
		t.Fatal("offline FLAIR should need MBIST")
	}
	if NeedsMBIST(protection.NewFLAIROnline(1000)) {
		t.Fatal("online FLAIR must not need MBIST")
	}
	if NeedsMBIST(killi.New(killi.DefaultConfig())) {
		t.Fatal("Killi must never need MBIST")
	}
	if NeedsMBIST(protection.NewNone()) {
		t.Fatal("None needs no MBIST")
	}
}

func TestScheduleChargesStallsOnlyForMBISTSchemes(t *testing.T) {
	phases := []Phase{
		{Voltage: 1.0, Kernel: kernel(600)},
		{Voltage: 0.625, Kernel: kernel(600)},
		{Voltage: 0.7, Kernel: kernel(600)},
		{Voltage: 0.625, Kernel: kernel(600)},
	}
	m := DefaultMBIST()

	secded := protection.NewSECDEDPerLine()
	repS := RunSchedule(gpu.New(smallCfg(1.0), func() protection.Scheme { return protection.NewSECDEDPerLine() }), secded, m, phases)
	k := killi.New(killi.Config{Ratio: 64})
	repK := RunSchedule(gpu.New(smallCfg(1.0), func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }), k, m, phases)

	if repS.Transitions != 3 || repK.Transitions != 3 {
		t.Fatalf("transitions: secded=%d killi=%d, want 3", repS.Transitions, repK.Transitions)
	}
	wantStall := 3 * m.StallCycles(2048)
	if repS.StallCycles != wantStall {
		t.Fatalf("SECDED stall = %d, want %d", repS.StallCycles, wantStall)
	}
	if repK.StallCycles != 0 {
		t.Fatalf("Killi stall = %d, want 0", repK.StallCycles)
	}
	if len(repS.PhaseCycles) != 4 {
		t.Fatalf("phase count %d", len(repS.PhaseCycles))
	}
}

func TestVoltageTransitionReclaimsAndRelearns(t *testing.T) {
	// Drop to a harsh voltage (lines disabled), rise back to nominal
	// (reset reclaims), drop again: the system keeps running and never
	// silently corrupts.
	k := killi.New(killi.Config{Ratio: 32})
	sys := gpu.New(smallCfg(0.575), func() protection.Scheme { return killi.New(killi.Config{Ratio: 32}) })
	phases := []Phase{
		{Voltage: 0.575, Kernel: kernel(800)},
		{Voltage: 1.0, Kernel: kernel(800)},
		{Voltage: 0.575, Kernel: kernel(800)},
	}
	rep := RunSchedule(sys, k, DefaultMBIST(), phases)
	if rep.Transitions != 2 {
		t.Fatalf("transitions = %d", rep.Transitions)
	}
	ctr := sys.Stats()
	if ctr.Get("l2.voltage_transitions") != 2 {
		t.Fatal("transition counter wrong")
	}
	if ctr.Get("killi.lines_reclaim_attempted") == 0 {
		t.Fatal("no disabled lines reclaimed at the nominal phase")
	}
	if sdc := ctr.Get("l2.silent_data_corruption"); sdc > 20 {
		t.Fatalf("SDC = %d across transitions", sdc)
	}
}

func TestStallDelaysExecution(t *testing.T) {
	// The same schedule with and without MBIST: total cycles must differ
	// by at least the stall time (fault-free voltage so the protection
	// behaviour is identical).
	phases := []Phase{
		{Voltage: 1.0, Kernel: kernel(500)},
		{Voltage: 0.9, Kernel: kernel(500)},
	}
	m := DefaultMBIST()
	secded := protection.NewSECDEDPerLine()
	repS := RunSchedule(gpu.New(smallCfg(1.0), func() protection.Scheme { return protection.NewSECDEDPerLine() }), secded, m, phases)
	k := killi.New(killi.Config{Ratio: 64})
	repK := RunSchedule(gpu.New(smallCfg(1.0), func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }), k, m, phases)
	if repS.TotalCycles < repK.TotalCycles+m.StallCycles(2048)/2 {
		t.Fatalf("MBIST stall not reflected: secded=%d killi=%d", repS.TotalCycles, repK.TotalCycles)
	}
}

func TestReportString(t *testing.T) {
	r := Report{TotalCycles: 1000, StallCycles: 100, Transitions: 2}
	s := r.String()
	if !strings.Contains(s, "1000") || !strings.Contains(s, "10.0%") {
		t.Fatalf("report rendering: %q", s)
	}
}
