// Package dvfs models dynamic voltage scaling of the L2 cache and the cost
// of each power-state transition under different protection schemes.
//
// This is the paper's motivating scenario made measurable: "additional
// MBIST steps are time consuming, resulting in extended boot time or
// delayed power state transitions" (§1). Every pre-characterized scheme
// (SECDED/DECTED per line, MS-ECC, offline FLAIR) must re-run MBIST over
// the whole array at each voltage change to rebuild its fault map; Killi
// resets two DFH bits per line and keeps executing.
//
// The MBIST cost model follows standard March tests: a March C- pass
// performs 10 element operations per cell; at line granularity with
// word-wide access that is MarchOps full-array passes, divided across the
// banks that can test in parallel.
package dvfs

import (
	"fmt"

	"killi/internal/gpu"
	"killi/internal/protection"
	"killi/internal/workload"
)

// MBISTModel parameterizes the offline test pass pre-characterized schemes
// run at every voltage transition.
type MBISTModel struct {
	// MarchOps is the number of full-array access passes (March C- = 10).
	MarchOps int
	// CyclesPerOp is the array access time per line per pass.
	CyclesPerOp uint64
	// ParallelBanks is how many banks test concurrently.
	ParallelBanks int
}

// DefaultMBIST returns a March C- style model over the Table 3 cache:
// 10 passes, 4 cycles per line access (tag+data), 16 banks in parallel.
func DefaultMBIST() MBISTModel {
	return MBISTModel{MarchOps: 10, CyclesPerOp: 4, ParallelBanks: 16}
}

// StallCycles returns the full-array MBIST duration for a cache of the
// given line count.
func (m MBISTModel) StallCycles(lines int) uint64 {
	if m.ParallelBanks < 1 {
		m.ParallelBanks = 1
	}
	return uint64(lines) * uint64(m.MarchOps) * m.CyclesPerOp / uint64(m.ParallelBanks)
}

// NeedsMBIST reports whether a scheme requires an offline MBIST pass at
// voltage transitions. Killi and online-training FLAIR relearn at runtime;
// everything pre-characterized does not.
func NeedsMBIST(s protection.Scheme) bool {
	switch s.(type) {
	case *protection.PerLine:
		return true
	case *protection.FLAIR:
		return s.(*protection.FLAIR).TrainAccesses == 0 // offline variant
	default:
		return false
	}
}

// Phase is one segment of a voltage schedule: run the workload trace at
// the given L2 voltage.
type Phase struct {
	Voltage float64
	Kernel  [][]workload.Request
}

// Report summarizes a schedule run.
type Report struct {
	// TotalCycles includes compute and all transition stalls.
	TotalCycles uint64
	// StallCycles is the summed MBIST stall time.
	StallCycles uint64
	// PhaseCycles is the per-phase execution time (stall included in the
	// phase that begins with the transition).
	PhaseCycles []uint64
	// Transitions counts voltage changes.
	Transitions int
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("total=%d cycles (stalls=%d, %.1f%%), %d transitions",
		r.TotalCycles, r.StallCycles,
		float64(r.StallCycles)/float64(r.TotalCycles)*100, r.Transitions)
}

// RunSchedule drives a system through a voltage schedule, charging the
// MBIST stall at every transition when the scheme requires it. scheme is a
// probe instance (e.g. one built from the factory the system was
// constructed with) consulted only for NeedsMBIST.
func RunSchedule(sys *gpu.System, scheme protection.Scheme, m MBISTModel, phases []Phase) Report {
	rep := Report{}
	lines := sys.L2Lines()
	for i, ph := range phases {
		if i > 0 || ph.Voltage != sys.Voltage() {
			var stall uint64
			if NeedsMBIST(scheme) {
				stall = m.StallCycles(lines)
			}
			sys.SetVoltage(ph.Voltage, stall)
			rep.StallCycles += stall
			rep.Transitions++
		}
		res := sys.Run(ph.Kernel)
		rep.PhaseCycles = append(rep.PhaseCycles, res.Cycles)
		rep.TotalCycles += res.Cycles
	}
	return rep
}
