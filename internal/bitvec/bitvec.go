// Package bitvec provides fixed-width bit vectors used throughout the
// simulator: the 512-bit cache-line payload (Line) and an arbitrary-width
// Vector for ECC codewords.
//
// Bit numbering is little-endian within the vector: bit 0 is the least
// significant bit of word 0. All operations are allocation-free where
// practical because fault application and parity generation run on every
// simulated cache access.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// LineBits is the number of data bits in a cache line (64 bytes).
const LineBits = 512

// LineWords is the number of 64-bit words backing a Line.
const LineWords = LineBits / 64

// Line is a 512-bit cache-line payload. The zero value is the all-zero line.
// Line is a value type: assignment copies the payload, which mirrors how
// data moves between arrays in hardware.
type Line [LineWords]uint64

// Bit returns bit i (0 or 1). It panics if i is out of range.
func (l Line) Bit(i int) uint {
	if i < 0 || i >= LineBits {
		panic(fmt.Sprintf("bitvec: Line.Bit(%d) out of range", i))
	}
	return uint(l[i>>6]>>(uint(i)&63)) & 1
}

// SetBit sets bit i to v (v's low bit is used).
func (l *Line) SetBit(i int, v uint) {
	if i < 0 || i >= LineBits {
		panic(fmt.Sprintf("bitvec: Line.SetBit(%d) out of range", i))
	}
	mask := uint64(1) << (uint(i) & 63)
	if v&1 == 1 {
		l[i>>6] |= mask
	} else {
		l[i>>6] &^= mask
	}
}

// FlipBit inverts bit i.
func (l *Line) FlipBit(i int) {
	if i < 0 || i >= LineBits {
		panic(fmt.Sprintf("bitvec: Line.FlipBit(%d) out of range", i))
	}
	l[i>>6] ^= uint64(1) << (uint(i) & 63)
}

// Xor returns l XOR other.
func (l Line) Xor(other Line) Line {
	var out Line
	for i := range l {
		out[i] = l[i] ^ other[i]
	}
	return out
}

// PopCount returns the number of set bits.
func (l Line) PopCount() int {
	n := 0
	for _, w := range l {
		n += bits.OnesCount64(w)
	}
	return n
}

// Invert returns the bitwise complement of l.
func (l Line) Invert() Line {
	var out Line
	for i := range l {
		out[i] = ^l[i]
	}
	return out
}

// IsZero reports whether all bits are clear.
func (l Line) IsZero() bool {
	for _, w := range l {
		if w != 0 {
			return false
		}
	}
	return true
}

// DiffBits returns the positions at which l and other differ.
func (l Line) DiffBits(other Line) []int {
	var out []int
	for w := 0; w < LineWords; w++ {
		d := l[w] ^ other[w]
		for d != 0 {
			b := bits.TrailingZeros64(d)
			out = append(out, w*64+b)
			d &= d - 1
		}
	}
	return out
}

// Bytes returns the 64-byte little-endian representation of the line.
func (l *Line) Bytes() [64]byte {
	var out [64]byte
	for w, v := range l {
		for b := 0; b < 8; b++ {
			out[w*8+b] = byte(v >> (8 * uint(b)))
		}
	}
	return out
}

// LineFromBytes builds a Line from 64 little-endian bytes.
func LineFromBytes(b [64]byte) Line {
	var l Line
	for w := 0; w < LineWords; w++ {
		var v uint64
		for i := 7; i >= 0; i-- {
			v = v<<8 | uint64(b[w*8+i])
		}
		l[w] = v
	}
	return l
}

// String renders the line as 128 hex digits, most significant word first.
func (l Line) String() string {
	var sb strings.Builder
	for i := LineWords - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "%016x", l[i])
	}
	return sb.String()
}

// Vector is an arbitrary-width bit vector for ECC codewords (data bits plus
// checkbits, e.g. 523 bits for SECDED over a 512-bit line). The zero value
// of a Vector is unusable; construct with NewVector.
type Vector struct {
	n     int
	words []uint64
}

// NewVector returns an all-zero vector of n bits. It panics if n < 0.
func NewVector(n int) *Vector {
	if n < 0 {
		panic("bitvec: NewVector with negative size")
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// LineVector returns a 512-bit Vector holding a copy of l. A Line and a
// 512-bit Vector share the same little-endian word layout, so this is one
// 8-word copy rather than 512 bit inserts — it feeds the ECC codecs on the
// simulator's hot paths.
func LineVector(l Line) *Vector {
	v := &Vector{n: LineBits, words: make([]uint64, LineWords)}
	copy(v.words, l[:])
	return v
}

// Len returns the width of the vector in bits.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Vector index %d out of range [0,%d)", i, v.n))
	}
}

// Bit returns bit i.
func (v *Vector) Bit(i int) uint {
	v.check(i)
	return uint(v.words[i>>6]>>(uint(i)&63)) & 1
}

// SetBit sets bit i to b's low bit.
func (v *Vector) SetBit(i int, b uint) {
	v.check(i)
	mask := uint64(1) << (uint(i) & 63)
	if b&1 == 1 {
		v.words[i>>6] |= mask
	} else {
		v.words[i>>6] &^= mask
	}
}

// FlipBit inverts bit i.
func (v *Vector) FlipBit(i int) {
	v.check(i)
	v.words[i>>6] ^= uint64(1) << (uint(i) & 63)
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	out := NewVector(v.n)
	copy(out.words, v.words)
	return out
}

// Xor sets v to v XOR other. Both vectors must have the same length.
func (v *Vector) Xor(other *Vector) {
	if v.n != other.n {
		panic("bitvec: Xor of vectors with different lengths")
	}
	for i := range v.words {
		v.words[i] ^= other.words[i]
	}
}

// Equal reports whether v and other have identical length and bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every bit is clear.
func (v *Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Words exposes the vector's backing words (bit i lives at word i/64, bit
// i%64). The slice aliases the vector's storage; callers must treat it as
// read-only. It exists for word-parallel parity computations in ECC hot
// paths.
func (v *Vector) Words() []uint64 { return v.words }

// OneBits returns the positions of all set bits in ascending order.
func (v *Vector) OneBits() []int {
	var out []int
	for w, word := range v.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &= word - 1
		}
	}
	return out
}
