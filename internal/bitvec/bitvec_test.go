package bitvec

import (
	"testing"
	"testing/quick"

	"killi/internal/xrand"
)

func TestLineSetGetBit(t *testing.T) {
	var l Line
	for _, i := range []int{0, 1, 63, 64, 65, 127, 255, 511} {
		if l.Bit(i) != 0 {
			t.Fatalf("fresh line has bit %d set", i)
		}
		l.SetBit(i, 1)
		if l.Bit(i) != 1 {
			t.Fatalf("bit %d did not set", i)
		}
		l.SetBit(i, 0)
		if l.Bit(i) != 0 {
			t.Fatalf("bit %d did not clear", i)
		}
	}
}

func TestLineFlipBit(t *testing.T) {
	var l Line
	l.FlipBit(100)
	if l.Bit(100) != 1 {
		t.Fatal("flip did not set")
	}
	l.FlipBit(100)
	if l.Bit(100) != 0 {
		t.Fatal("double flip did not restore")
	}
}

func TestLineBitPanics(t *testing.T) {
	for _, i := range []int{-1, 512, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) did not panic", i)
				}
			}()
			var l Line
			l.Bit(i)
		}()
	}
}

func TestLinePopCountAndXor(t *testing.T) {
	var a, b Line
	a.SetBit(0, 1)
	a.SetBit(511, 1)
	b.SetBit(0, 1)
	b.SetBit(100, 1)
	x := a.Xor(b)
	if x.PopCount() != 2 {
		t.Fatalf("xor popcount = %d, want 2", x.PopCount())
	}
	if x.Bit(511) != 1 || x.Bit(100) != 1 || x.Bit(0) != 0 {
		t.Fatal("xor bits wrong")
	}
}

func TestLineDiffBits(t *testing.T) {
	var a, b Line
	b.SetBit(3, 1)
	b.SetBit(64, 1)
	b.SetBit(500, 1)
	d := a.DiffBits(b)
	want := []int{3, 64, 500}
	if len(d) != len(want) {
		t.Fatalf("DiffBits = %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("DiffBits = %v, want %v", d, want)
		}
	}
}

func TestLineInvert(t *testing.T) {
	var l Line
	l.SetBit(7, 1)
	inv := l.Invert()
	if inv.PopCount() != LineBits-1 {
		t.Fatalf("invert popcount = %d", inv.PopCount())
	}
	if inv.Bit(7) != 0 {
		t.Fatal("inverted bit 7 should be 0")
	}
	back := inv.Invert()
	if back != l {
		t.Fatal("double invert is not identity")
	}
}

func TestLineIsZero(t *testing.T) {
	var l Line
	if !l.IsZero() {
		t.Fatal("zero line not zero")
	}
	l.SetBit(200, 1)
	if l.IsZero() {
		t.Fatal("non-zero line reported zero")
	}
}

func TestLineBytesRoundTrip(t *testing.T) {
	f := func(w0, w1, w2, w3, w4, w5, w6, w7 uint64) bool {
		l := Line{w0, w1, w2, w3, w4, w5, w6, w7}
		return LineFromBytes(l.Bytes()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineString(t *testing.T) {
	var l Line
	l[LineWords-1] = 0xdead
	s := l.String()
	if len(s) != 128 {
		t.Fatalf("hex string length %d, want 128", len(s))
	}
	if s[:16] != "000000000000dead" {
		t.Fatalf("high word rendering = %q", s[:16])
	}
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(523)
	if v.Len() != 523 {
		t.Fatalf("Len = %d", v.Len())
	}
	if !v.IsZero() {
		t.Fatal("fresh vector not zero")
	}
	v.SetBit(522, 1)
	if v.Bit(522) != 1 {
		t.Fatal("bit 522 not set")
	}
	if v.PopCount() != 1 {
		t.Fatalf("popcount = %d", v.PopCount())
	}
	v.FlipBit(522)
	if !v.IsZero() {
		t.Fatal("flip did not clear")
	}
}

func TestVectorBoundsPanics(t *testing.T) {
	v := NewVector(10)
	for _, i := range []int{-1, 10, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) on 10-bit vector did not panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestVectorXorEqualClone(t *testing.T) {
	a := NewVector(100)
	b := NewVector(100)
	a.SetBit(5, 1)
	b.SetBit(5, 1)
	b.SetBit(99, 1)
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone not equal")
	}
	a.Xor(b)
	if a.Bit(5) != 0 || a.Bit(99) != 1 {
		t.Fatal("xor wrong")
	}
	if c.Bit(5) != 1 {
		t.Fatal("clone aliases original")
	}
	if a.Equal(NewVector(101)) {
		t.Fatal("vectors of different length compared equal")
	}
}

func TestVectorXorLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Xor with length mismatch did not panic")
		}
	}()
	NewVector(10).Xor(NewVector(11))
}

func TestVectorOneBits(t *testing.T) {
	v := NewVector(200)
	set := []int{0, 63, 64, 128, 199}
	for _, i := range set {
		v.SetBit(i, 1)
	}
	got := v.OneBits()
	if len(got) != len(set) {
		t.Fatalf("OneBits = %v", got)
	}
	for i := range set {
		if got[i] != set[i] {
			t.Fatalf("OneBits = %v, want %v", got, set)
		}
	}
}

func TestVectorZeroWidth(t *testing.T) {
	v := NewVector(0)
	if v.Len() != 0 || !v.IsZero() || v.PopCount() != 0 {
		t.Fatal("zero-width vector misbehaves")
	}
	if got := v.OneBits(); len(got) != 0 {
		t.Fatalf("OneBits on empty = %v", got)
	}
}

func TestRandomLineRoundTripProperty(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		var l Line
		for w := range l {
			l[w] = r.Uint64()
		}
		// SetBit(Bit(i)) must be identity for all words touched.
		for _, i := range []int{0, 17, 63, 64, 300, 511} {
			v := l.Bit(i)
			l.SetBit(i, v)
		}
		if got := LineFromBytes(l.Bytes()); got != l {
			t.Fatal("byte round trip failed")
		}
	}
}

func TestDiffBitsSymmetricProperty(t *testing.T) {
	r := xrand.New(5)
	for trial := 0; trial < 100; trial++ {
		var a, b Line
		for w := range a {
			a[w] = r.Uint64()
			b[w] = r.Uint64()
		}
		ab := a.DiffBits(b)
		ba := b.DiffBits(a)
		if len(ab) != len(ba) {
			t.Fatal("DiffBits not symmetric in count")
		}
		for i := range ab {
			if ab[i] != ba[i] {
				t.Fatal("DiffBits not symmetric in positions")
			}
		}
		if len(ab) != a.Xor(b).PopCount() {
			t.Fatal("DiffBits count != xor popcount")
		}
	}
}
