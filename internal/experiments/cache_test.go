package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"killi/internal/gpu"
	"killi/internal/simcache"
)

// cacheTestConfig is a small but non-trivial sweep: two workloads, a warmup
// kernel, and a parallel worker pool writing the cache concurrently. Every
// field that feeds the cache key is set explicitly so tests can reconstruct
// task keys.
func cacheTestConfig(dir string) Config {
	return Config{
		Voltage:       0.625,
		RequestsPerCU: 400,
		Seed:          1,
		Workloads:     []string{"xsbench", "nekbone"},
		WarmupKernels: 1,
		Parallelism:   2,
		CacheDir:      dir,
	}
}

// formatRows renders sweep rows with every float at %.17g — the
// bit-identity format of the repo's golden harnesses.
func formatRows(rows []Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s class=%v base_cycles=%d base_mpki=%.17g\n",
			r.Workload, r.Class, r.BaselineCycles, r.BaselineMPKI)
		for _, n := range r.SchemeNames() {
			fmt.Fprintf(&b, "  %s norm=%.17g mpki=%.17g disabled=%d\n",
				n, r.Normalized[n], r.MPKI[n], r.Disabled[n])
		}
	}
	return b.String()
}

func TestWarmRowsBitIdenticalToCold(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig(dir)

	uncached := cfg
	uncached.CacheDir = ""
	ref, err := Run(context.Background(), uncached)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	refS, coldS, warmS := formatRows(ref), formatRows(cold), formatRows(warm)
	if coldS != refS {
		t.Errorf("cold cached rows diverge from uncached rows:\n%s\nvs\n%s", coldS, refS)
	}
	if warmS != refS {
		t.Errorf("warm cached rows diverge from uncached rows:\n%s\nvs\n%s", warmS, refS)
	}

	// The cold run must have persisted one entry per task.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := len(cfg.Workloads) * (len(Schemes()) + 1)
	if len(files) != wantTasks {
		t.Fatalf("cache holds %d entries, want %d (one per task)", len(files), wantTasks)
	}
}

// TestWarmRunIsServedFromCache proves the warm run reads results from the
// store rather than recomputing: a hand-planted entry (valid checksum,
// fabricated cycle count) must surface in the returned rows.
func TestWarmRunIsServedFromCache(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig(dir)
	cold, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the dected/xsbench entry with double the true cycle count.
	g := gpu.DefaultConfig()
	g.Voltage = cfg.Voltage
	key := simcache.Key(taskDesc(cfg, g, "dected", "xsbench"))
	store, err := simcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(key); !ok {
		t.Fatal("reconstructed task key not present in cache: taskDesc drifted")
	}
	var base uint64
	for _, r := range cold {
		if r.Workload == "xsbench" {
			base = r.BaselineCycles
		}
	}
	if err := store.Put(key, simcache.Result{Cycles: 2 * base, Instructions: 1000}); err != nil {
		t.Fatal(err)
	}

	warm, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm {
		if r.Workload != "xsbench" {
			continue
		}
		if got := r.Normalized["dected"]; got != 2.0 {
			t.Fatalf("planted cache entry not served: normalized = %v, want 2.0", got)
		}
	}
}

func TestCorruptedEntriesRecomputed(t *testing.T) {
	dir := t.TempDir()
	cfg := cacheTestConfig(dir)
	cold, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt every entry in place: truncated JSON must be detected by the
	// store and recomputed, reproducing the rows bit-identically.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache entries to corrupt (err %v)", err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte(`{"schema":`), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	recomputed, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := formatRows(recomputed), formatRows(cold); got != want {
		t.Errorf("recomputed rows diverge from original:\n%s\nvs\n%s", got, want)
	}
}

func TestCacheDirCreateFailureSurfaces(t *testing.T) {
	// A path that collides with an existing file cannot become a cache
	// directory; the sweep must report it rather than silently disable
	// caching the user asked for.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := cacheTestConfig(filepath.Join(file, "cache"))
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("Run with an unusable cache directory succeeded")
	}
}
