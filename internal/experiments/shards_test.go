package experiments

import (
	"context"
	"testing"
)

// TestSweepRowsShardInvariant pins the sweep-level half of the sharded
// engine's determinism contract: a full Run at Shards=4 (each simulation
// parallel inside) renders byte-identical %.17g rows to the serial
// Shards=1 sweep, across every scheme and workload in the grid.
func TestSweepRowsShardInvariant(t *testing.T) {
	base := Config{
		Voltage:       0.625,
		RequestsPerCU: 400,
		Seed:          1,
		Workloads:     []string{"xsbench", "nekbone"},
		WarmupKernels: 1,
		Parallelism:   1,
	}
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 4
	got, err := Run(context.Background(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	refS, gotS := formatRows(ref), formatRows(got)
	if gotS != refS {
		t.Errorf("Shards=4 sweep rows diverge from serial rows:\n%s\nvs\n%s", gotS, refS)
	}
}

// TestWithDefaultsBudgetsWorkersAgainstShards pins the Parallelism<0
// budget: the auto worker count divides GOMAXPROCS by the shard count so
// shards x workers stays at the machine size.
func TestWithDefaultsBudgetsWorkersAgainstShards(t *testing.T) {
	c := Config{Parallelism: -1, Shards: 1 << 30}.withDefaults()
	if c.Parallelism != 1 {
		t.Fatalf("Parallelism = %d with huge shard count, want 1", c.Parallelism)
	}
	c = Config{}.withDefaults()
	if c.Shards != 1 || c.Parallelism != 1 {
		t.Fatalf("zero config defaults: shards %d parallelism %d, want 1/1", c.Shards, c.Parallelism)
	}
}
