package experiments

import (
	"context"
	"testing"

	"killi/internal/gpu"
	"killi/internal/workload"
)

// TestKernelSeedsGolden pins the kernel-seed derivation against literal
// values. internal/campaign regenerates each workload's TraceSet from
// KernelSeeds and shares it across every die of a fleet, so if this
// derivation drifted — across refactors or Go versions — campaign results
// would silently stop matching RunOne on the same seed.
func TestKernelSeedsGolden(t *testing.T) {
	cases := []struct {
		seed    uint64
		warmups int
		want    []uint64
	}{
		{1, 0, []uint64{0x1}},
		{1, 3, []uint64{0x1, 0xa24baed4963ee406, 0x44975da92c7dc80f, 0xe6e30c7dc2bcac14}},
		{42, 3, []uint64{0x2a, 0xa24baed4963ee42d, 0x44975da92c7dc824, 0xe6e30c7dc2bcac3f}},
		{0xdeadbeef, 3, []uint64{0xdeadbeef, 0xa24baed448935ae8, 0x44975da9f2d076e1, 0xe6e30c7d1c1112fa}},
	}
	for _, c := range cases {
		got := KernelSeeds(c.seed, c.warmups)
		if len(got) != len(c.want) {
			t.Fatalf("KernelSeeds(%d, %d) has %d entries, want %d", c.seed, c.warmups, len(got), len(c.want))
		}
		for k := range got {
			if got[k] != c.want[k] {
				t.Errorf("KernelSeeds(%d, %d)[%d] = %#x, want %#x", c.seed, c.warmups, k, got[k], c.want[k])
			}
		}
	}
}

// TestRunSharedMatchesRunOne pins RunShared's contract: handed the
// equivalent prepared state — the same complete gpu.Config, a fault
// population built by BuildSharedFaults, and traces from KernelSeeds — it
// reproduces RunOne bit-for-bit. This is the equivalence the campaign
// driver's sharing discipline rests on.
func TestRunSharedMatchesRunOne(t *testing.T) {
	g := gpu.DefaultConfig()
	g.FaultSeed = 0x5eed
	g.RefVoltage = 0.575
	cfg := Config{Seed: 21, RequestsPerCU: 300, WarmupKernels: 1, GPU: &g}

	newScheme, err := SchemeFactoryByName("killi-1:64")
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunOne(context.Background(), cfg, "xsbench", newScheme, 0.625)
	if err != nil {
		t.Fatalf("RunOne: %v", err)
	}

	w, err := workload.ByName("xsbench")
	if err != nil {
		t.Fatal(err)
	}
	traces := w.TraceSet(g.CUs, cfg.RequestsPerCU, KernelSeeds(cfg.Seed, cfg.WarmupKernels))
	gShared := g
	gShared.Voltage = 0.625
	faults := gpu.BuildSharedFaults(gShared)
	got, err := RunShared(context.Background(), gShared, newScheme, faults, traces, 1)
	if err != nil {
		t.Fatalf("RunShared: %v", err)
	}

	if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
		got.L2Misses != want.L2Misses || got.L2Accesses != want.L2Accesses ||
		got.MemAccesses != want.MemAccesses || got.DisabledLines != want.DisabledLines {
		t.Errorf("RunShared = %+v\nRunOne    = %+v", got, want)
	}
}
