// Package experiments assembles the paper's simulation-driven evaluation
// (Figures 4 and 5): workload × protection-scheme sweeps over the GPU
// model, with execution time normalized to the fault-free nominal-voltage
// baseline and L2 MPKI per configuration.
//
// The package is shared by cmd/killi-sim and the repository's benchmark
// harness so both print identical rows.
package experiments

import (
	"fmt"
	"sort"

	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/workload"
)

// KilliRatios are the ECC cache sizes the paper sweeps.
var KilliRatios = []int{256, 128, 64, 32, 16}

// SchemeSpec names a protection scheme and builds fresh instances
// (schemes carry per-run state, so every simulation needs its own).
type SchemeSpec struct {
	Name string
	New  func() protection.Scheme
}

// Schemes returns the paper's comparison set: DECTED-per-line, FLAIR,
// MS-ECC, and Killi at each ECC cache ratio.
func Schemes() []SchemeSpec {
	specs := []SchemeSpec{
		{Name: "dected", New: func() protection.Scheme { return protection.NewDECTEDPerLine() }},
		{Name: "flair", New: func() protection.Scheme { return protection.NewFLAIR() }},
		{Name: "msecc", New: func() protection.Scheme { return protection.NewMSECC() }},
	}
	for _, r := range KilliRatios {
		r := r
		specs = append(specs, SchemeSpec{
			Name: fmt.Sprintf("killi-1:%d", r),
			New:  func() protection.Scheme { return killi.New(killi.Config{Ratio: r}) },
		})
	}
	return specs
}

// SchemeByName builds a fresh protection scheme from a stable name:
// "none", "secded", "dected", "flair", "msecc", or "killi-1:<ratio>"
// (optionally prefixed "killi-dected-" for the §5.2 extension).
func SchemeByName(name string) (protection.Scheme, error) {
	switch name {
	case "none":
		return protection.NewNone(), nil
	case "secded":
		return protection.NewSECDEDPerLine(), nil
	case "dected":
		return protection.NewDECTEDPerLine(), nil
	case "flair":
		return protection.NewFLAIR(), nil
	case "msecc":
		return protection.NewMSECC(), nil
	}
	var ratio, strength int
	if _, err := fmt.Sscanf(name, "killi-dected-1:%d", &ratio); err == nil && ratio > 0 {
		return killi.New(killi.Config{Ratio: ratio, UseDECTED: true}), nil
	}
	if _, err := fmt.Sscanf(name, "killi-olsc%d-1:%d", &strength, &ratio); err == nil && strength > 0 && ratio > 0 {
		return killi.New(killi.Config{Ratio: ratio, OLSCStrength: strength}), nil
	}
	if _, err := fmt.Sscanf(name, "killi-1:%d", &ratio); err == nil && ratio > 0 {
		return killi.New(killi.Config{Ratio: ratio}), nil
	}
	return nil, fmt.Errorf("experiments: unknown scheme %q", name)
}

// Config parameterizes a sweep.
type Config struct {
	// Voltage is the LV operating point (paper: 0.625).
	Voltage float64
	// RequestsPerCU is the trace length per compute unit.
	RequestsPerCU int
	// Seed drives trace generation and fault sampling.
	Seed uint64
	// GPU overrides the base GPU configuration (zero value = Table 3).
	GPU *gpu.Config
	// Workloads restricts the sweep (nil = the full ten-workload catalog).
	Workloads []string
	// WarmupKernels runs the trace this many times before the measured
	// run. DFH state persists across kernels (the paper trains once per
	// reset, not per kernel), so warmups exclude one-time training cost
	// from the measurement — the steady state the paper's long kernels
	// reach on their own. Zero measures the first kernel, training
	// included.
	WarmupKernels int
}

func (c Config) withDefaults() Config {
	if c.Voltage == 0 {
		c.Voltage = 0.625
	}
	if c.RequestsPerCU == 0 {
		c.RequestsPerCU = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Workloads) == 0 {
		for _, w := range workload.Catalog() {
			c.Workloads = append(c.Workloads, w.Name)
		}
	}
	return c
}

func (c Config) baseGPU() gpu.Config {
	if c.GPU != nil {
		return *c.GPU
	}
	return gpu.DefaultConfig()
}

// Row is one workload's results across every scheme.
type Row struct {
	Workload string
	Class    workload.Class
	// BaselineCycles is the fault-free nominal-voltage execution time.
	BaselineCycles uint64
	// BaselineMPKI is the fault-free L2 MPKI.
	BaselineMPKI float64
	// Normalized maps scheme name → execution time / baseline (Figure 4).
	Normalized map[string]float64
	// MPKI maps scheme name → L2 MPKI (Figure 5).
	MPKI map[string]float64
	// Disabled maps scheme name → disabled L2 lines at run end.
	Disabled map[string]int
}

// SchemeNames returns the row's scheme names in a stable order.
func (r Row) SchemeNames() []string {
	names := make([]string, 0, len(r.Normalized))
	for n := range r.Normalized {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes the full sweep: for each workload, a fault-free baseline at
// nominal voltage plus every scheme at the LV operating point.
func Run(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	base := cfg.baseGPU()
	rows := make([]Row, 0, len(cfg.Workloads))
	for _, name := range cfg.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		traces := w.Traces(base.CUs, cfg.RequestsPerCU, cfg.Seed)

		baseCfg := base
		baseCfg.Voltage = 1.0
		baseSys := gpu.New(baseCfg, protection.NewNone())
		for w := 0; w < cfg.WarmupKernels; w++ {
			baseSys.Run(traces)
		}
		baseRes := baseSys.Run(traces)

		row := Row{
			Workload:       w.Name,
			Class:          w.Class,
			BaselineCycles: baseRes.Cycles,
			BaselineMPKI:   baseRes.MPKI(),
			Normalized:     map[string]float64{},
			MPKI:           map[string]float64{},
			Disabled:       map[string]int{},
		}
		for _, spec := range Schemes() {
			lvCfg := base
			lvCfg.Voltage = cfg.Voltage
			sys := gpu.New(lvCfg, spec.New())
			for w := 0; w < cfg.WarmupKernels; w++ {
				sys.Run(traces)
			}
			res := sys.Run(traces)
			row.Normalized[spec.Name] = float64(res.Cycles) / float64(baseRes.Cycles)
			row.MPKI[spec.Name] = res.MPKI()
			row.Disabled[spec.Name] = res.DisabledLines
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunOne runs a single workload × scheme pair at the given voltage and
// returns the raw result — the building block the examples use.
func RunOne(cfg Config, workloadName string, scheme protection.Scheme, voltage float64) (gpu.Result, error) {
	cfg = cfg.withDefaults()
	w, err := workload.ByName(workloadName)
	if err != nil {
		return gpu.Result{}, err
	}
	g := cfg.baseGPU()
	g.Voltage = voltage
	traces := w.Traces(g.CUs, cfg.RequestsPerCU, cfg.Seed)
	return gpu.New(g, scheme).Run(traces), nil
}
