// Package experiments assembles the paper's simulation-driven evaluation
// (Figures 4 and 5): workload × protection-scheme sweeps over the GPU
// model, with execution time normalized to the fault-free nominal-voltage
// baseline and L2 MPKI per configuration.
//
// The sweep fans out over a worker pool (Config.Parallelism): every
// workload × scheme simulation is an independent task with its own
// gpu.System and protection.Scheme, sharing only read-only traces, and the
// merge order is fixed, so the parallel path produces bit-for-bit the same
// rows as the serial one.
//
// The package is shared by cmd/killi-sim and the repository's benchmark
// harness so both print identical rows.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"killi/internal/faultmodel"
	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/obs"
	"killi/internal/protection"
	"killi/internal/simcache"
	"killi/internal/workload"
)

// KilliRatios are the ECC cache sizes the paper sweeps.
var KilliRatios = []int{256, 128, 64, 32, 16}

// SchemeSpec names a protection scheme and builds fresh instances
// (schemes carry per-run state, so every simulation needs its own).
type SchemeSpec struct {
	Name string
	New  func() protection.Scheme
}

// Schemes returns the paper's comparison set: DECTED-per-line, FLAIR,
// MS-ECC, and Killi at each ECC cache ratio.
func Schemes() []SchemeSpec {
	specs := []SchemeSpec{
		{Name: "dected", New: func() protection.Scheme { return protection.NewDECTEDPerLine() }},
		{Name: "flair", New: func() protection.Scheme { return protection.NewFLAIR() }},
		{Name: "msecc", New: func() protection.Scheme { return protection.NewMSECC() }},
	}
	for _, r := range KilliRatios {
		r := r
		specs = append(specs, SchemeSpec{
			Name: fmt.Sprintf("killi-1:%d", r),
			New:  func() protection.Scheme { return killi.New(killi.Config{Ratio: r}) },
		})
	}
	return specs
}

// SchemeByName builds a fresh protection scheme from a stable name:
// "none", "secded", "dected", "flair", "msecc", or "killi-1:<ratio>"
// (optionally "killi-dected-1:<ratio>" for the §5.2 extension, or
// "killi-olsc<strength>-1:<ratio>" for the §5.5 low-Vmin mode). Parsing is
// strict: a malformed or trailing-garbage name is an error, never a guess.
func SchemeByName(name string) (protection.Scheme, error) {
	switch name {
	case "none":
		return protection.NewNone(), nil
	case "secded":
		return protection.NewSECDEDPerLine(), nil
	case "dected":
		return protection.NewDECTEDPerLine(), nil
	case "flair":
		return protection.NewFLAIR(), nil
	case "msecc":
		return protection.NewMSECC(), nil
	}
	if rest, ok := strings.CutPrefix(name, "killi-"); ok {
		if s, ok := strings.CutPrefix(rest, "dected-"); ok {
			ratio, err := parseRatio(s)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad scheme %q: %v", name, err)
			}
			return killi.New(killi.Config{Ratio: ratio, UseDECTED: true}), nil
		}
		if s, ok := strings.CutPrefix(rest, "olsc"); ok {
			strengthStr, ratioStr, found := strings.Cut(s, "-")
			if !found {
				return nil, fmt.Errorf("experiments: bad scheme %q: want killi-olsc<strength>-1:<ratio>", name)
			}
			strength, err := strconv.Atoi(strengthStr)
			if err != nil || strength < 1 {
				return nil, fmt.Errorf("experiments: bad scheme %q: OLSC strength must be a positive integer", name)
			}
			ratio, err := parseRatio(ratioStr)
			if err != nil {
				return nil, fmt.Errorf("experiments: bad scheme %q: %v", name, err)
			}
			return killi.New(killi.Config{Ratio: ratio, OLSCStrength: strength}), nil
		}
		ratio, err := parseRatio(rest)
		if err != nil {
			return nil, fmt.Errorf("experiments: bad scheme %q: %v", name, err)
		}
		return killi.New(killi.Config{Ratio: ratio}), nil
	}
	return nil, fmt.Errorf("experiments: unknown scheme %q", name)
}

// parseRatio parses the "1:<ratio>" suffix of a Killi scheme name,
// rejecting anything but a positive integer ratio with no trailing bytes.
func parseRatio(s string) (int, error) {
	digits, ok := strings.CutPrefix(s, "1:")
	if !ok {
		return 0, fmt.Errorf("want an ECC cache ratio of the form 1:<n>, got %q", s)
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("want a positive integer ECC cache ratio, got %q", digits)
	}
	return n, nil
}

// SchemeFactoryByName validates a scheme name once and returns a factory
// building fresh instances of it — the form gpu.New consumes, since the
// sharded L2 attaches one scheme instance per bank. The name grammar is
// SchemeSyntax, exactly as SchemeByName.
func SchemeFactoryByName(name string) (protection.Factory, error) {
	if _, err := SchemeByName(name); err != nil {
		return nil, err
	}
	return func() protection.Scheme {
		s, err := SchemeByName(name)
		if err != nil {
			// Unreachable: the name was validated above and parsing is pure.
			panic(err)
		}
		return s
	}, nil
}

// SchemeSyntax is the single source of truth for the scheme-name grammar
// accepted by SchemeByName. CLI -scheme flag help and README documentation
// must quote it verbatim (pinned by TestSchemeSyntaxSingleSource) instead of
// restating the forms by hand, so the documented grammar can never drift
// from the parser.
func SchemeSyntax() string {
	return "none | secded | dected | flair | msecc | killi-1:<ratio> | " +
		"killi-dected-1:<ratio> | killi-olsc<strength>-1:<ratio>"
}

// SchemeExamples returns one concrete, parseable name per scheme form in
// SchemeSyntax. Tests feed every example through SchemeByName so the
// documented forms are guaranteed to construct.
func SchemeExamples() []string {
	return []string{
		"none", "secded", "dected", "flair", "msecc",
		"killi-1:64", "killi-dected-1:64", "killi-olsc2-1:64",
	}
}

// SplitList splits a comma-separated CLI list, trimming whitespace around
// every entry and dropping empty ones, so "fft, xsbench" and "fft,,xsbench,"
// both mean {fft, xsbench}.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Config parameterizes a sweep.
type Config struct {
	// Voltage is the LV operating point (paper: 0.625).
	Voltage float64
	// RequestsPerCU is the trace length per compute unit.
	RequestsPerCU int
	// Seed drives trace generation and fault sampling.
	Seed uint64
	// GPU overrides the base GPU configuration (zero value = Table 3).
	GPU *gpu.Config
	// Workloads restricts the sweep (nil = the full ten-workload catalog).
	Workloads []string
	// WarmupKernels runs this many kernels before the measured run. DFH
	// state persists across kernels (the paper trains once per reset, not
	// per kernel), so warmups exclude one-time training cost from the
	// measurement — the steady state the paper's long kernels reach on
	// their own. Zero measures the first kernel, training included. Each
	// kernel walks the same data structures in a fresh request order (an
	// exact replay of one request sequence is both unrealistic and
	// adversarial to LRU).
	WarmupKernels int
	// Parallelism bounds the number of concurrently running simulations.
	// 0 or 1 runs the sweep serially; higher values use a worker pool of
	// that size; negative values mean GOMAXPROCS divided by Shards (so
	// shards x sweep workers stays budgeted against the machine). Every
	// task builds its own gpu.System and protection schemes and the merge
	// order is fixed, so results are bit-for-bit identical at any
	// parallelism.
	Parallelism int
	// Shards is the intra-run shard count each simulation runs with
	// (gpu.System.SetShards). Results are bit-identical at every value —
	// the engine's lookahead barrier keeps per-domain event order
	// canonical — so this knob, like Parallelism, trades only wall-clock.
	// 0 or 1 is the serial fast path.
	Shards int
	// CacheDir, when non-empty, enables the content-addressed result cache
	// (internal/simcache) rooted at that directory: every task result is
	// keyed by a digest of its complete input description (GPU config,
	// scheme, workload, seed, trace length, warmup kernels) and reused by
	// later runs with identical inputs. Cached rows are bit-identical to
	// recomputed ones; corrupted or stale entries are recomputed. Cached
	// results carry no debug Counters.
	CacheDir string
	// FaultClasses selects the fault population's class mix for the LV
	// scheme runs, in faultmodel.ClassSyntax ("persistent" or a
	// "mixed:..." spec); empty means persistent, the paper's model. The
	// fault-free nominal baseline always runs with the zero spec, so
	// transient strikes never corrupt the unprotected reference machine.
	FaultClasses string
	// ScrubKernels, when positive, runs the scheme's disabled-line
	// scrubber (gpu.System.Scrub) after every ScrubKernels-th kernel,
	// except after the last. Zero never scrubs. Schemes without a
	// scrubber ignore the knob.
	ScrubKernels int
	// Progress, when non-nil, is called once per completed sweep task with
	// the cumulative completed count and the total task count. With
	// Parallelism > 1 it is called from worker goroutines (the counts stay
	// consistent; call order across workers is not deterministic), so the
	// callback must be safe for concurrent use. It feeds killi-sim's
	// -metrics-addr live-progress endpoint and never affects results.
	Progress func(done, total int)
}

func (c Config) withDefaults() Config {
	if c.Voltage == 0 {
		c.Voltage = 0.625
	}
	if c.RequestsPerCU == 0 {
		c.RequestsPerCU = 4000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Workloads) == 0 {
		for _, w := range workload.Catalog() {
			c.Workloads = append(c.Workloads, w.Name)
		}
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Parallelism < 0 {
		c.Parallelism = max(1, runtime.GOMAXPROCS(0)/c.Shards)
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	return c
}

func (c Config) baseGPU() gpu.Config {
	if c.GPU != nil {
		return *c.GPU
	}
	return gpu.DefaultConfig()
}

// Row is one workload's results across every scheme.
type Row struct {
	Workload string
	Class    workload.Class
	// BaselineCycles is the fault-free nominal-voltage execution time.
	BaselineCycles uint64
	// BaselineMPKI is the fault-free L2 MPKI.
	BaselineMPKI float64
	// Normalized maps scheme name → execution time / baseline (Figure 4).
	Normalized map[string]float64
	// MPKI maps scheme name → L2 MPKI (Figure 5).
	MPKI map[string]float64
	// Disabled maps scheme name → disabled L2 lines at run end.
	Disabled map[string]int
}

// SchemeNames returns the row's scheme names in a stable order.
func (r Row) SchemeNames() []string {
	names := make([]string, 0, len(r.Normalized))
	for n := range r.Normalized {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// kernelSeed derives the trace seed for the k-th kernel of a sweep: kernel
// 0 uses the configured seed unchanged, later kernels re-walk the same
// data structures in fresh orders.
func kernelSeed(seed uint64, k int) uint64 {
	if k == 0 {
		return seed
	}
	return seed ^ (uint64(k) * 0xa24baed4963ee407)
}

// KernelSeeds lists the trace seeds for a warmup+measured kernel sequence:
// element k drives kernel k, with kernel 0 using the configured seed
// unchanged. Exported for internal/campaign, which builds each workload's
// TraceSet once and shares it across every die of a fleet — the traces must
// be exactly the ones Run and RunOne would generate, so the derivation is
// pinned by TestKernelSeedsGolden.
func KernelSeeds(seed uint64, warmups int) []uint64 {
	out := make([]uint64, warmups+1)
	for k := range out {
		out[k] = kernelSeed(seed, k)
	}
	return out
}

// runKernels drives one simulation through every warmup kernel and returns
// the measured (final) kernel's result. Cancellation is checked between
// kernels — one kernel is the unit of work the engine runs to completion,
// so that is the granularity at which an interrupted run stops. When
// scrubEvery is positive, the scheme's disabled-line scrubber runs after
// every scrubEvery-th kernel except the last, so the measured kernel sees
// the scrubber's steady-state reclaim/re-disable churn but never a scrub
// immediately before its own measurement.
func runKernels(ctx context.Context, sys *gpu.System, traces *workload.TraceSet, scrubEvery int) (gpu.Result, error) {
	var res gpu.Result
	for k := 0; k < traces.Kernels(); k++ {
		if err := ctx.Err(); err != nil {
			return gpu.Result{}, err
		}
		res = sys.Run(traces.Kernel(k))
		if scrubEvery > 0 && k+1 < traces.Kernels() && (k+1)%scrubEvery == 0 {
			sys.Scrub()
		}
	}
	return res, nil
}

// task is one independent simulation of the sweep: a workload's fault-free
// baseline (scheme == -1) or one of its LV scheme runs.
type task struct {
	workload int
	scheme   int // index into Schemes(), or -1 for the baseline
}

// taskDesc canonically describes one sweep task's complete inputs for the
// result cache. The GPU config is rendered with %#v — it is deliberately a
// flat value type (no pointers, maps, or function fields), so the rendering
// is a stable, exhaustive serialization; any new config field automatically
// changes the key. The scheme is identified by its catalog name, which
// encodes its configuration (e.g. "killi-1:64").
func taskDesc(cfg Config, g gpu.Config, schemeName, workloadName string) string {
	return fmt.Sprintf("gpu=%#v\nscheme=%s\nworkload=%s\nseed=%d\nrequests=%d\nwarmup=%d\nscrub=%d",
		g, schemeName, workloadName, cfg.Seed, cfg.RequestsPerCU, cfg.WarmupKernels, cfg.ScrubKernels)
}

// CellKey returns the simcache key for one simulation cell described by its
// complete inputs — the exact key Run and RunOne use for the same inputs
// (scrub fixed at 0, matching RunShared), so a campaign's per-cell cache
// entries and a sweep's entries are one shared population: a fleet campaign
// warms the cache for later killi-sim runs and vice versa.
func CellKey(g gpu.Config, schemeName, workloadName string, seed uint64, requests, warmup int) string {
	cfg := Config{Seed: seed, RequestsPerCU: requests, WarmupKernels: warmup}
	return simcache.Key(taskDesc(cfg, g, schemeName, workloadName))
}

// CacheableResult extracts the scalar slice of a result that the cache
// stores; ResultFromCache inverts it. Exported for internal/campaign, which
// shares the sweep's per-cell cache population.
func CacheableResult(res gpu.Result) simcache.Result { return cacheable(res) }

// ResultFromCache rebuilds a gpu.Result from a cache entry. Counters stay
// nil: consumers of cached results use only the scalars.
func ResultFromCache(c simcache.Result) gpu.Result { return cachedResult(c) }

// cacheable extracts the scalar slice of a result that the cache stores.
func cacheable(res gpu.Result) simcache.Result {
	c := simcache.Result{
		Cycles:           res.Cycles,
		Instructions:     res.Instructions,
		L2Misses:         res.L2Misses,
		L2Accesses:       res.L2Accesses,
		MemAccesses:      res.MemAccesses,
		DisabledLines:    res.DisabledLines,
		SDC:              res.SDC,
		TransientStrikes: res.TransientStrikes,
	}
	if res.HasMisclass {
		c.MisclassLines = res.Misclass.Lines
		c.TrueFaulty = res.Misclass.TrueFaulty
		c.MisclassDisabled = res.Misclass.Disabled
		c.MisclassInitial = res.Misclass.Initial
		c.FalseDisable = res.Misclass.FalseDisable
		c.FalseTrust = res.Misclass.FalseTrust
	}
	return c
}

// cachedResult rebuilds a gpu.Result from a cache entry. Counters stay nil:
// the sweep merge consumes only the scalars.
func cachedResult(c simcache.Result) gpu.Result {
	res := gpu.Result{
		Cycles:           c.Cycles,
		Instructions:     c.Instructions,
		L2Misses:         c.L2Misses,
		L2Accesses:       c.L2Accesses,
		MemAccesses:      c.MemAccesses,
		DisabledLines:    c.DisabledLines,
		SDC:              c.SDC,
		TransientStrikes: c.TransientStrikes,
	}
	if c.MisclassLines > 0 {
		res.HasMisclass = true
		res.Misclass = gpu.Misclass{
			Lines:        c.MisclassLines,
			TrueFaulty:   c.TrueFaulty,
			Disabled:     c.MisclassDisabled,
			Initial:      c.MisclassInitial,
			FalseDisable: c.FalseDisable,
			FalseTrust:   c.FalseTrust,
		}
	}
	return res
}

// Run executes the full sweep: for each workload, a fault-free baseline at
// nominal voltage plus every scheme at the LV operating point. With
// cfg.Parallelism > 1 the tasks fan out over a worker pool; the output is
// identical to the serial sweep in either case.
//
// Cancelling ctx stops the sweep at the next kernel boundary of every
// in-flight task, drains the worker pool, removes any stranded simcache
// "put-*" temp files, and returns ctx.Err() — an interrupted sweep leaves
// no partial state behind (pinned by TestRunCancellation).
func Run(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	base := cfg.baseGPU()
	classes, err := faultmodel.ParseClassSpec(cfg.FaultClasses)
	if err != nil {
		return nil, err
	}
	specs := Schemes()

	// Resolve workloads and generate every kernel's traces up front, so
	// unknown names fail before any simulation runs and the (read-only)
	// packed traces are shared across that workload's tasks.
	seeds := KernelSeeds(cfg.Seed, cfg.WarmupKernels)
	loads := make([]workload.Workload, len(cfg.Workloads))
	traces := make([]*workload.TraceSet, len(cfg.Workloads))
	for i, name := range cfg.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		loads[i] = w
		traces[i] = w.TraceSet(base.CUs, cfg.RequestsPerCU, seeds)
	}

	// The sweep runs every task at one of two operating points — the
	// fault-free nominal baseline and the LV point — so the identical
	// 32K-line fault population each task would sample from cfg.FaultSeed
	// is built and voltage-resolved exactly once per point and handed to
	// every System read-only.
	gBase, gLV := base, base
	gBase.Voltage = 1.0
	gLV.Voltage = cfg.Voltage
	faultsBase := gpu.BuildSharedFaults(gBase)
	faultsLV := gpu.BuildSharedFaults(gLV)

	tasks := make([]task, 0, len(loads)*(len(specs)+1))
	for wi := range loads {
		tasks = append(tasks, task{workload: wi, scheme: -1})
		for si := range specs {
			tasks = append(tasks, task{workload: wi, scheme: si})
		}
	}

	var store *simcache.Store
	if cfg.CacheDir != "" {
		var err error
		if store, err = simcache.Open(cfg.CacheDir); err != nil {
			return nil, err
		}
	}

	var tasksDone atomic.Int64
	runTask := func(t task) (gpu.Result, error) {
		g := base
		var newScheme protection.Factory
		var schemeName string
		var faults *gpu.SharedFaults
		if t.scheme < 0 {
			// The baseline keeps the zero ClassSpec: it is the fault-free
			// nominal reference, so not even transient strikes touch it.
			g.Voltage = 1.0
			newScheme = func() protection.Scheme { return protection.NewNone() }
			schemeName = "none"
			faults = faultsBase
		} else {
			g.Voltage = cfg.Voltage
			g.Classes = classes
			newScheme = specs[t.scheme].New
			schemeName = specs[t.scheme].Name
			faults = faultsLV
		}
		done := func(res gpu.Result) gpu.Result {
			if cfg.Progress != nil {
				cfg.Progress(int(tasksDone.Add(1)), len(tasks))
			}
			return res
		}
		var key string
		if store != nil {
			key = simcache.Key(taskDesc(cfg, g, schemeName, loads[t.workload].Name))
			if c, ok := store.Get(key); ok {
				return done(cachedResult(c)), nil
			}
		}
		sys := gpu.NewShared(g, newScheme, faults)
		sys.SetShards(cfg.Shards)
		res, err := runKernels(ctx, sys, traces[t.workload], cfg.ScrubKernels)
		if err != nil {
			return gpu.Result{}, err
		}
		if store != nil {
			// Best-effort: a full disk or read-only cache directory must
			// not fail the sweep; Store.WriteFailures keeps it observable.
			_ = store.Put(key, cacheable(res))
		}
		return done(res), nil
	}

	results := make([]gpu.Result, len(tasks))
	if workers := min(cfg.Parallelism, len(tasks)); workers <= 1 {
		for i, t := range tasks {
			if ctx.Err() != nil {
				break
			}
			results[i], _ = runTask(t)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						continue // drain the channel without starting work
					}
					results[i], _ = runTask(tasks[i])
				}
			}()
		}
	feed:
		for i := range tasks {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		// Every worker has drained; any Put a worker was interrupted before
		// finishing (or a previous crash stranded) is safe to sweep now.
		if store != nil {
			_, _ = store.RemoveTemps()
		}
		return nil, err
	}

	// Deterministic merge: rows in workload order, every scheme keyed by
	// its stable name, normalized against the workload's baseline task.
	rows := make([]Row, len(loads))
	for i, t := range tasks {
		res := results[i]
		row := &rows[t.workload]
		if t.scheme < 0 {
			row.Workload = loads[t.workload].Name
			row.Class = loads[t.workload].Class
			row.BaselineCycles = res.Cycles
			row.BaselineMPKI = res.MPKI()
			row.Normalized = map[string]float64{}
			row.MPKI = map[string]float64{}
			row.Disabled = map[string]int{}
			continue
		}
		// The baseline task of this workload precedes its scheme tasks.
		name := specs[t.scheme].Name
		row.Normalized[name] = float64(res.Cycles) / float64(row.BaselineCycles)
		row.MPKI[name] = res.MPKI()
		row.Disabled[name] = res.DisabledLines
	}
	return rows, nil
}

// RunOne runs a single workload × scheme pair at the given voltage and
// returns the raw result — the building block the examples use. It follows
// Run's kernel semantics: cfg.WarmupKernels unmeasured warmup kernels
// precede the measured one, each re-walking the workload's data structures
// in a fresh request order, with cfg.FaultClasses and cfg.ScrubKernels
// applied exactly as the sweep applies them to its LV tasks (a nominal
// 1.0-voltage run keeps the zero spec, matching the sweep's baseline).
// Cancelling ctx stops the run at the next kernel boundary and returns
// ctx.Err().
func RunOne(ctx context.Context, cfg Config, workloadName string, newScheme protection.Factory, voltage float64) (gpu.Result, error) {
	cfg = cfg.withDefaults()
	w, err := workload.ByName(workloadName)
	if err != nil {
		return gpu.Result{}, err
	}
	g := cfg.baseGPU()
	g.Voltage = voltage
	if voltage != 1.0 {
		if g.Classes, err = faultmodel.ParseClassSpec(cfg.FaultClasses); err != nil {
			return gpu.Result{}, err
		}
	}
	traces := w.TraceSet(g.CUs, cfg.RequestsPerCU, KernelSeeds(cfg.Seed, cfg.WarmupKernels))
	sys := gpu.New(g, newScheme)
	sys.SetShards(cfg.Shards)
	return runKernels(ctx, sys, traces, cfg.ScrubKernels)
}

// RunShared runs one fully prepared simulation: the caller supplies the
// complete gpu.Config (voltage, fault seed, and reference voltage already
// set), a pre-built shared fault population, and pre-generated traces, and
// gets the raw result back. This is the campaign building block: a fleet
// run executes thousands of dies against one packed TraceSet per workload
// and one fault Map per die (resolved once per grid voltage), so the
// per-simulation work here is exactly the kernel loop — the same sharing
// discipline the sweep established in Run. The result is bit-identical to
// RunOne with the equivalent configuration (pinned by
// TestRunSharedMatchesRunOne). Cancelling ctx stops at the next kernel
// boundary and returns ctx.Err().
func RunShared(ctx context.Context, g gpu.Config, newScheme protection.Factory, faults *gpu.SharedFaults, traces *workload.TraceSet, shards int) (gpu.Result, error) {
	sys := gpu.NewShared(g, newScheme, faults)
	sys.SetShards(shards)
	return runKernels(ctx, sys, traces, 0)
}

// RunOneNamed is RunOne with the scheme given by its SchemeSyntax name and,
// when cfg.CacheDir is set, the content-addressed result cache consulted
// first. The cache key is the same per-task description the sweep uses, so
// a completed sweep warms identical single runs and vice versa — this is
// the fast path behind killi-simd's warm (cache-hit) requests. Cached
// results carry no debug Counters, exactly as in Run.
func RunOneNamed(ctx context.Context, cfg Config, workloadName, schemeName string, voltage float64) (gpu.Result, error) {
	cfg = cfg.withDefaults()
	newScheme, err := SchemeFactoryByName(schemeName)
	if err != nil {
		return gpu.Result{}, err
	}
	if cfg.CacheDir == "" {
		return RunOne(ctx, cfg, workloadName, newScheme, voltage)
	}
	if _, err := workload.ByName(workloadName); err != nil {
		return gpu.Result{}, err
	}
	store, err := simcache.Open(cfg.CacheDir)
	if err != nil {
		return gpu.Result{}, err
	}
	g := cfg.baseGPU()
	g.Voltage = voltage
	if voltage != 1.0 {
		// Mirror RunOne: the class spec is part of the simulated machine,
		// so it must be part of the cache key.
		if g.Classes, err = faultmodel.ParseClassSpec(cfg.FaultClasses); err != nil {
			return gpu.Result{}, err
		}
	}
	key := simcache.Key(taskDesc(cfg, g, schemeName, workloadName))
	if c, ok := store.Get(key); ok {
		return cachedResult(c), nil
	}
	res, err := RunOne(ctx, cfg, workloadName, newScheme, voltage)
	if err != nil {
		return gpu.Result{}, err
	}
	// Best-effort, as in Run: a failed Put must not fail the simulation.
	_ = store.Put(key, cacheable(res))
	return res, nil
}

// RunOneObserved is RunOne with an observability sink attached before the
// first kernel: o receives the initial DFH reset, every classification
// transition, and an epoch Sample every epochCycles cycles (0 means
// gpu.DefaultEpochCycles). The simulated machine is bit-identical to the
// unobserved RunOne — sampling only reads state — so the returned Result
// matches RunOne exactly (pinned by TestGoldenCounterDigestObserved).
func RunOneObserved(ctx context.Context, cfg Config, workloadName string, newScheme protection.Factory, voltage float64, o obs.Observer, epochCycles uint64) (gpu.Result, error) {
	cfg = cfg.withDefaults()
	w, err := workload.ByName(workloadName)
	if err != nil {
		return gpu.Result{}, err
	}
	g := cfg.baseGPU()
	g.Voltage = voltage
	if voltage != 1.0 {
		if g.Classes, err = faultmodel.ParseClassSpec(cfg.FaultClasses); err != nil {
			return gpu.Result{}, err
		}
	}
	traces := w.TraceSet(g.CUs, cfg.RequestsPerCU, KernelSeeds(cfg.Seed, cfg.WarmupKernels))
	sys := gpu.New(g, newScheme)
	sys.SetShards(cfg.Shards)
	sys.SetObserver(o, epochCycles)
	return runKernels(ctx, sys, traces, cfg.ScrubKernels)
}

// ValidateFlags rejects CLI knob combinations that would panic downstream
// or silently oversubscribe the machine, with one-line errors killi-sim
// and killi-simd print verbatim. maxProcs is the GOMAXPROCS budget
// (parameterized for tests). parallel follows the Config.Parallelism
// convention: -1 auto-budgets GOMAXPROCS/shards, positive is an explicit
// worker count; 0 and other negatives are rejected as ambiguous. An
// explicit parallel × shards product more than 8× over maxProcs is a
// configuration mistake (each unit is a busy goroutine), not a tuning
// choice, and is rejected rather than thrashed on.
func ValidateFlags(requests, parallel, shards, maxProcs int) error {
	if requests <= 0 {
		return fmt.Errorf("-requests must be a positive per-CU trace length, got %d", requests)
	}
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if parallel == 0 || parallel < -1 {
		return fmt.Errorf("-parallel must be -1 (auto: GOMAXPROCS/shards) or a positive worker count, got %d", parallel)
	}
	if parallel > 0 && maxProcs > 0 && parallel*shards > 8*maxProcs {
		return fmt.Errorf("-parallel %d x -shards %d = %d concurrent workers oversubscribes GOMAXPROCS=%d by more than 8x; lower one or use -parallel -1 to auto-budget",
			parallel, shards, parallel*shards, maxProcs)
	}
	return nil
}
