package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"killi/internal/faultmodel"
	"killi/internal/gpu"
	"killi/internal/workload"
)

// MisclassRow is one workload × class-mix measurement of the DFH
// classifier against fault-map ground truth: how many lines it falsely
// disabled or falsely trusted at the end of the run, how many silent data
// corruptions escaped, and what the scrubber reclaimed along the way.
type MisclassRow struct {
	Workload     string
	Classes      string // canonical class-spec string
	ScrubKernels int
	Kernels      int // total kernels simulated (warmups + measured)

	Cycles           uint64 // measured (final) kernel only
	SDC              uint64 // measured kernel's silent-corruption count
	TransientStrikes uint64 // measured kernel's strike count
	DisabledLines    int

	Misclass gpu.Misclass // end-of-run DFH vs ground truth

	ScrubTests     uint64 // cumulative scrubber line tests
	ScrubReclaimed uint64 // cumulative lines the scrubber reclaimed
}

// FalseDisableRate is the fraction of all L2 lines the classifier disabled
// although SECDED could have served them.
func (r MisclassRow) FalseDisableRate() float64 {
	if r.Misclass.Lines == 0 {
		return 0
	}
	return float64(r.Misclass.FalseDisable) / float64(r.Misclass.Lines)
}

// FalseTrustRate is the fraction of all L2 lines trusted at a protection
// level below their capable fault count — the SDC exposure window.
func (r MisclassRow) FalseTrustRate() float64 {
	if r.Misclass.Lines == 0 {
		return 0
	}
	return float64(r.Misclass.FalseTrust) / float64(r.Misclass.Lines)
}

// RunMisclass runs one workload × scheme pair at the given voltage under
// cfg.FaultClasses and reports the misclassification measurement: the
// kernel sequence follows RunOne exactly (cfg.WarmupKernels warmups, then
// the measured kernel, scrubbing per cfg.ScrubKernels), and the final
// DFH state is compared against the ground-truth oracle. The scheme must
// expose DFH codes (killi variants do; baselines return an error). The
// result cache is never consulted: the row needs live counters.
func RunMisclass(ctx context.Context, cfg Config, workloadName, schemeName string, voltage float64) (MisclassRow, error) {
	cfg = cfg.withDefaults()
	spec, err := faultmodel.ParseClassSpec(cfg.FaultClasses)
	if err != nil {
		return MisclassRow{}, err
	}
	newScheme, err := SchemeFactoryByName(schemeName)
	if err != nil {
		return MisclassRow{}, err
	}
	w, err := workload.ByName(workloadName)
	if err != nil {
		return MisclassRow{}, err
	}
	g := cfg.baseGPU()
	g.Voltage = voltage
	g.Classes = spec
	traces := w.TraceSet(g.CUs, cfg.RequestsPerCU, KernelSeeds(cfg.Seed, cfg.WarmupKernels))
	sys := gpu.New(g, newScheme)
	sys.SetShards(cfg.Shards)
	res, err := runKernels(ctx, sys, traces, cfg.ScrubKernels)
	if err != nil {
		return MisclassRow{}, err
	}
	if !res.HasMisclass {
		return MisclassRow{}, fmt.Errorf("scheme %q exposes no DFH codes; misclassification needs a killi variant", schemeName)
	}
	ctr := sys.Stats()
	return MisclassRow{
		Workload:         workloadName,
		Classes:          classDisplay(spec),
		ScrubKernels:     cfg.ScrubKernels,
		Kernels:          traces.Kernels(),
		Cycles:           res.Cycles,
		SDC:              res.SDC,
		TransientStrikes: res.TransientStrikes,
		DisabledLines:    res.DisabledLines,
		Misclass:         res.Misclass,
		ScrubTests:       ctr.Get("killi.scrub_tests"),
		ScrubReclaimed:   ctr.Get("killi.scrub_reclaimed"),
	}, nil
}

// classDisplay renders a spec for report rows: canonical String(), with
// the zero spec as its grammar keyword.
func classDisplay(spec faultmodel.ClassSpec) string {
	if spec.IsZero() {
		return "persistent"
	}
	return spec.String()
}

// WriteMisclassTable renders rows as the aligned table killi-sim -misclass
// prints and EXPERIMENTS.md embeds.
func WriteMisclassTable(out io.Writer, rows []MisclassRow) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tclasses\tscrub\tfaulty\tdisabled\tfalse-disable\tfalse-trust\tSDC\tstrikes\tscrub-reclaimed")
	for _, r := range rows {
		scrub := "never"
		if r.ScrubKernels > 0 {
			scrub = fmt.Sprintf("1/%dk", r.ScrubKernels)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d (%.4f)\t%d (%.4f)\t%d\t%d\t%d\n",
			r.Workload, r.Classes, scrub,
			r.Misclass.TrueFaulty, r.Misclass.Disabled,
			r.Misclass.FalseDisable, r.FalseDisableRate(),
			r.Misclass.FalseTrust, r.FalseTrustRate(),
			r.SDC, r.TransientStrikes, r.ScrubReclaimed)
	}
	return tw.Flush()
}
