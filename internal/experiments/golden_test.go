package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"testing"

	"killi/internal/killi"
	"killi/internal/obs"
	"killi/internal/protection"
)

// TestGoldenCounterDigest hashes every counter name and value after a short
// fixed-seed Killi run and compares against the digest captured on the
// string-keyed, container/heap, rehash-per-hit implementation, proving the
// interned-counter / typed-heap / content-model rewrite changed no
// statistic. The exact Result fields are pinned alongside.
func TestGoldenCounterDigest(t *testing.T) {
	res, err := RunOne(context.Background(), Config{RequestsPerCU: 800, Seed: 1}, "xsbench",
		func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, 0.625)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, n := range res.Counters.Names() {
		fmt.Fprintf(h, "%s=%d\n", n, res.Counters.Get(n))
	}
	const want = uint64(0x6cdf00dbcf931efb)
	if got := h.Sum64(); got != want {
		for _, n := range res.Counters.Names() {
			t.Logf("%s=%d", n, res.Counters.Get(n))
		}
		t.Fatalf("counter digest = %#x, want %#x (a statistic changed)", got, want)
	}
	if res.Cycles != 26032 || res.Instructions != 12800 ||
		res.L2Misses != 5796 || res.L2Accesses != 6361 ||
		res.MemAccesses != 5796 || res.DisabledLines != 2 {
		t.Fatalf("result fields diverged from golden: cycles=%d instrs=%d l2miss=%d l2acc=%d mem=%d disabled=%d",
			res.Cycles, res.Instructions, res.L2Misses, res.L2Accesses,
			res.MemAccesses, res.DisabledLines)
	}
}

// TestGoldenCounterDigestObserved repeats the golden run with a Collector
// attached and demands the identical digest and Result fields: attaching an
// observer must never perturb the simulated machine (sampling only reads
// state; daemon ticker events never affect non-daemon ordering). It then
// sanity-checks what the collector saw.
func TestGoldenCounterDigestObserved(t *testing.T) {
	col := obs.NewCollector()
	res, err := RunOneObserved(context.Background(), Config{RequestsPerCU: 800, Seed: 1}, "xsbench",
		func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, 0.625, col, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, n := range res.Counters.Names() {
		fmt.Fprintf(h, "%s=%d\n", n, res.Counters.Get(n))
	}
	const want = uint64(0x6cdf00dbcf931efb)
	if got := h.Sum64(); got != want {
		t.Fatalf("observed-run counter digest = %#x, want %#x (observation perturbed the simulation)", got, want)
	}
	if res.Cycles != 26032 || res.DisabledLines != 2 {
		t.Fatalf("observed-run result diverged: cycles=%d disabled=%d", res.Cycles, res.DisabledLines)
	}

	// The collector's view must agree with the simulator's own statistics.
	if len(col.Resets()) == 0 {
		t.Fatal("collector recorded no DFH reset")
	}
	if got := col.Populations()[obs.StateDisabled]; got != res.DisabledLines {
		t.Fatalf("collector disabled population %d, want %d", got, res.DisabledLines)
	}
	eps := col.Epochs()
	if len(eps) == 0 {
		t.Fatal("collector recorded no epochs")
	}
	var accs, instrs uint64
	lastCycle := uint64(0)
	for i, e := range eps {
		if e.Cycle < lastCycle {
			t.Fatalf("epoch %d cycle %d precedes previous %d", i, e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
		accs += e.L2Accesses
		instrs += e.Instructions
		if sum := e.DFH[0] + e.DFH[1] + e.DFH[2] + e.DFH[3]; sum != col.Lines() {
			t.Fatalf("epoch %d DFH populations sum to %d, want %d lines", i, sum, col.Lines())
		}
	}
	// Epoch deltas must tile the run exactly: summed L2 accesses and
	// instructions equal the run totals (final partial epoch included).
	if accs != res.L2Accesses {
		t.Fatalf("summed epoch L2 accesses %d, want %d", accs, res.L2Accesses)
	}
	if instrs != res.Instructions {
		t.Fatalf("summed epoch instructions %d, want %d", instrs, res.Instructions)
	}
	if last := eps[len(eps)-1]; last.Cycle != res.Cycles {
		t.Fatalf("final flush sampled at cycle %d, want run end %d", last.Cycle, res.Cycles)
	}
}
