package experiments

import (
	"fmt"
	"hash/fnv"
	"testing"

	"killi/internal/killi"
)

// TestGoldenCounterDigest hashes every counter name and value after a short
// fixed-seed Killi run and compares against the digest captured on the
// string-keyed, container/heap, rehash-per-hit implementation, proving the
// interned-counter / typed-heap / content-model rewrite changed no
// statistic. The exact Result fields are pinned alongside.
func TestGoldenCounterDigest(t *testing.T) {
	res, err := RunOne(Config{RequestsPerCU: 800, Seed: 1}, "xsbench",
		killi.New(killi.Config{Ratio: 64}), 0.625)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, n := range res.Counters.Names() {
		fmt.Fprintf(h, "%s=%d\n", n, res.Counters.Get(n))
	}
	const want = uint64(0xb727c485a3e75a1b)
	if got := h.Sum64(); got != want {
		for _, n := range res.Counters.Names() {
			t.Logf("%s=%d", n, res.Counters.Get(n))
		}
		t.Fatalf("counter digest = %#x, want %#x (a statistic changed)", got, want)
	}
	if res.Cycles != 23511 || res.Instructions != 12800 ||
		res.L2Misses != 5803 || res.L2Accesses != 6363 ||
		res.MemAccesses != 5803 || res.DisabledLines != 2 {
		t.Fatalf("result fields diverged from golden: cycles=%d instrs=%d l2miss=%d l2acc=%d mem=%d disabled=%d",
			res.Cycles, res.Instructions, res.L2Misses, res.L2Accesses,
			res.MemAccesses, res.DisabledLines)
	}
}
