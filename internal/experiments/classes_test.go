package experiments

import (
	"context"
	"os"
	"strings"
	"testing"

	"killi/internal/faultmodel"
)

// TestFaultClassSyntaxSingleSource pins the fault-class grammar's
// single-source-of-truth property, mirroring TestSchemeSyntaxSingleSource:
// README.md must quote faultmodel.ClassSyntax verbatim rather than
// paraphrasing it, so the documented grammar can never drift from the
// parser.
func TestFaultClassSyntaxSingleSource(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("README.md unreadable: %v", err)
	}
	if syntax := faultmodel.ClassSyntax(); !strings.Contains(string(readme), syntax) {
		t.Errorf("README.md does not quote the fault-class grammar %q verbatim", syntax)
	}
}

// misclassConfig is the small, fast configuration the misclassification
// tests share. Kernel count = warmups + 1.
func misclassConfig(classes string, scrub int) Config {
	return Config{
		RequestsPerCU: 2500,
		Seed:          1,
		GPU:           smallGPU(),
		WarmupKernels: 3,
		FaultClasses:  classes,
		ScrubKernels:  scrub,
	}
}

// TestRunMisclassGolden is the misclassification shape test: fixed inputs
// produce a deterministic row (pinned by running twice), the intermittent
// mix produces the nonzero misclassification the taxonomy predicts, and
// the persistent control stays misclassification-free on the false-trust
// side after training.
func TestRunMisclassGolden(t *testing.T) {
	ctx := context.Background()
	mixed, err := RunMisclass(ctx, misclassConfig("mixed:i=0.5@0.3", 0), "xsbench", "killi-1:64", 0.625)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Misclass.TrueFaulty == 0 {
		t.Fatal("no ground-truth faulty lines at 0.625V; the shape test measures nothing")
	}
	if mixed.Misclass.FalseTrust == 0 && mixed.Misclass.FalseDisable == 0 {
		t.Error("intermittent mix produced zero misclassification; dormant faults should fool the DFH")
	}
	if mixed.Classes != "mixed:i=0.5@0.3" {
		t.Errorf("row renders classes %q, want canonical spec", mixed.Classes)
	}
	again, err := RunMisclass(ctx, misclassConfig("mixed:i=0.5@0.3", 0), "xsbench", "killi-1:64", 0.625)
	if err != nil {
		t.Fatal(err)
	}
	if again != mixed {
		t.Errorf("RunMisclass not deterministic:\n first %+v\nsecond %+v", mixed, again)
	}

	persistent, err := RunMisclass(ctx, misclassConfig("", 0), "xsbench", "killi-1:64", 0.625)
	if err != nil {
		t.Fatal(err)
	}
	if persistent.Classes != "persistent" {
		t.Errorf("zero spec renders as %q, want \"persistent\"", persistent.Classes)
	}
	if persistent.TransientStrikes != 0 {
		t.Errorf("persistent run reports %d transient strikes", persistent.TransientStrikes)
	}

	if _, err := RunMisclass(ctx, misclassConfig("", 0), "xsbench", "secded", 0.625); err == nil {
		t.Error("RunMisclass accepted a scheme without DFH codes")
	}
	if _, err := RunMisclass(ctx, misclassConfig("mixed:bogus", 0), "xsbench", "killi-1:64", 0.625); err == nil {
		t.Error("RunMisclass accepted a malformed class spec")
	}
}

// TestRunMisclassScrubCounters checks the scrub plumbing end to end: with
// a scrub period set and an intermittent population, the scrubber actually
// tests lines between kernels and the counters land in the row.
func TestRunMisclassScrubCounters(t *testing.T) {
	row, err := RunMisclass(context.Background(), misclassConfig("mixed:i=0.6@0.3", 1),
		"xsbench", "killi-1:64", 0.625)
	if err != nil {
		t.Fatal(err)
	}
	if row.ScrubTests == 0 {
		t.Skip("no lines were disabled before any scrub; nothing to assert")
	}
	if row.ScrubReclaimed > row.ScrubTests {
		t.Fatalf("reclaimed %d > tested %d", row.ScrubReclaimed, row.ScrubTests)
	}
}

// TestSweepFaultClassParallelismInvariance extends the sweep's
// bit-identity contract to a classed population: the same mixed-class
// sweep produces identical rows serially and with a worker pool.
func TestSweepFaultClassParallelismInvariance(t *testing.T) {
	base := Config{
		RequestsPerCU: 600,
		Seed:          3,
		GPU:           smallGPU(),
		Workloads:     []string{"fft"},
		FaultClasses:  "mixed:i=0.3@0.5,t=2e-08",
		ScrubKernels:  1,
		WarmupKernels: 1,
	}
	serialCfg := base
	serialCfg.Parallelism = 1
	serial, err := Run(context.Background(), serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := base
	parCfg.Parallelism = 4
	parallel, err := Run(context.Background(), parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Workload != p.Workload || s.BaselineCycles != p.BaselineCycles {
			t.Fatalf("row %d baselines differ: %+v vs %+v", i, s, p)
		}
		for _, name := range s.SchemeNames() {
			if s.Normalized[name] != p.Normalized[name] || s.MPKI[name] != p.MPKI[name] ||
				s.Disabled[name] != p.Disabled[name] {
				t.Fatalf("scheme %s differs between serial and parallel", name)
			}
		}
	}

	if _, err := Run(context.Background(), Config{GPU: smallGPU(), RequestsPerCU: 10,
		Workloads: []string{"fft"}, FaultClasses: "mixed:nope"}); err == nil {
		t.Fatal("sweep accepted a malformed fault-class spec")
	}
}
