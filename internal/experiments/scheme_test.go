package experiments

import (
	"os"
	"strings"
	"testing"
)

// TestSchemeExamplesParse feeds every documented scheme-name form through
// the parser, so SchemeSyntax can never advertise a grammar SchemeByName
// rejects.
func TestSchemeExamplesParse(t *testing.T) {
	for _, name := range SchemeExamples() {
		if _, err := SchemeByName(name); err != nil {
			t.Errorf("documented example %q does not parse: %v", name, err)
		}
	}
}

// TestSweepSchemeNamesParse round-trips the sweep catalog's names through
// SchemeByName: every name Run prints in its rows must be reconstructible
// from the CLI.
func TestSweepSchemeNamesParse(t *testing.T) {
	for _, spec := range Schemes() {
		if _, err := SchemeByName(spec.Name); err != nil {
			t.Errorf("sweep scheme %q does not parse: %v", spec.Name, err)
		}
	}
}

// TestSchemeSyntaxSingleSource pins the single-source-of-truth property:
// every alternative in the grammar string has a corresponding example, and
// README.md quotes the grammar verbatim rather than paraphrasing it.
func TestSchemeSyntaxSingleSource(t *testing.T) {
	syntax := SchemeSyntax()
	forms := strings.Split(syntax, " | ")
	if len(forms) != len(SchemeExamples()) {
		t.Fatalf("grammar lists %d forms but SchemeExamples has %d entries", len(forms), len(SchemeExamples()))
	}
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	if !strings.Contains(string(readme), syntax) {
		t.Errorf("README.md does not quote SchemeSyntax() verbatim; update the scheme list there to:\n%s", syntax)
	}
}

func TestSchemeByNameRejectsMalformed(t *testing.T) {
	for _, name := range []string{
		"", "killi", "killi-", "killi-1:0", "killi-1:64x", "killi-2:64",
		"killi-olsc-1:64", "killi-olsc0-1:64", "killi-dected-1:",
		"secded ", "Killi-1:64",
	} {
		if _, err := SchemeByName(name); err == nil {
			t.Errorf("SchemeByName(%q) should be an error", name)
		}
	}
}
