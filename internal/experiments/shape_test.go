package experiments

import (
	"context"
	"math"
	"strconv"
	"testing"

	"killi/internal/gpu"
	"killi/internal/workload"
)

// Shape-regression suite: pins the qualitative shape of the Figure 4/5
// reproduction (DESIGN.md §4) rather than exact numbers, so legitimate model
// changes that keep the paper's story intact still pass while regressions of
// the "Killi 9-14x slower, flat across ECC ratios" kind fail loudly.
//
// The full suite simulates the whole catalog at steady state (a little over
// a minute single-threaded); -short runs a scaled-down sweep with coarser
// assertions.

// shapeConfig returns the sweep configuration the shape assertions are
// calibrated against, scaled down under -short.
func shapeConfig(short bool) Config {
	cfg := Config{
		RequestsPerCU: 6000,
		WarmupKernels: 2,
		Parallelism:   -1,
	}
	if short {
		cfg.RequestsPerCU = 3000
		cfg.WarmupKernels = 1
		cfg.Workloads = []string{"nekbone", "lulesh", "xsbench", "fft"}
	}
	return cfg
}

// ratioName formats a Killi scheme name for an ECC cache ratio.
func ratioName(r int) string { return "killi-1:" + strconv.Itoa(r) }

func TestFig45Shape(t *testing.T) {
	short := testing.Short()
	rows, err := Run(context.Background(), shapeConfig(short))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		t.Logf("%-12s %-13s baseMPKI=%7.2f norm=%v disabled=%v",
			r.Workload, r.Class, r.BaselineMPKI, r.Normalized, r.Disabled)
	}

	lines := gpu.DefaultConfig().L2Bytes / gpu.DefaultConfig().LineBytes

	// DESIGN.md §4: Killi within 5% of baseline for >= 8/10 workloads at
	// every ECC cache ratio. Under -short the catalog is reduced, so demand
	// all-but-one instead.
	allowedOutliers := len(rows) - 8
	if short {
		allowedOutliers = 1
	}
	for _, ratio := range KilliRatios {
		name := ratioName(ratio)
		outliers := 0
		for _, r := range rows {
			if math.Abs(r.Normalized[name]-1) > 0.05 {
				outliers++
				t.Logf("outlier: %s %s %.4f", r.Workload, name, r.Normalized[name])
			}
		}
		if outliers > allowedOutliers {
			t.Errorf("%s: %d workloads deviate more than 5%% from baseline (allowed %d)",
				name, outliers, allowedOutliers)
		}
	}

	// The two ECC-cache-size-sensitive workloads (paper Fig. 4): normalized
	// time falls monotonically as the ECC cache grows from 1:256 to 1:16,
	// with a clearly nonzero spread (no more identical columns), and the
	// smallest ECC cache costs real time.
	for _, wname := range []string{"xsbench", "fft"} {
		r, ok := byName[wname]
		if !ok {
			t.Fatalf("workload %s missing from sweep", wname)
		}
		// Adjacent ratios deep in the thrash regime differ only by noise
		// (the per-bank fault layout at one seed can cost a specific ratio
		// ~2% of cycles), so the pairwise check carries slack; the endpoint
		// checks below pin the actual trend.
		slack := 0.025
		if short {
			slack = 0.03
		}
		for i := 1; i < len(KilliRatios); i++ {
			big, small := ratioName(KilliRatios[i-1]), ratioName(KilliRatios[i])
			if r.Normalized[small] > r.Normalized[big]+slack {
				t.Errorf("%s: normalized time rises as the ECC cache grows: %s %.4f -> %s %.4f",
					wname, big, r.Normalized[big], small, r.Normalized[small])
			}
		}
		first, last := r.Normalized[ratioName(256)], r.Normalized[ratioName(16)]
		minSpread, minCost := 0.006, 1.005
		if short {
			minSpread, minCost = 0.001, 1.0
		}
		if first-last < minSpread {
			t.Errorf("%s: ECC ratio sweep is flat: killi-1:256 %.4f vs killi-1:16 %.4f",
				wname, first, last)
		}
		if first < minCost {
			t.Errorf("%s: the 1:256 ECC cache shows no thrash cost: %.4f", wname, first)
		}
	}

	// Memory-bound workloads stay memory-bound and every scheme's sweep
	// stays within sane bounds.
	for _, r := range rows {
		if r.Class == workload.MemoryBound && !short && r.BaselineMPKI < 40 {
			t.Errorf("%s: baseline MPKI %.2f too low for a memory-bound workload",
				r.Workload, r.BaselineMPKI)
		}
		for name, norm := range r.Normalized {
			if norm < 0.9 || norm > 3 {
				t.Errorf("%s/%s: normalized time %.4f out of sane range", r.Workload, name, norm)
			}
		}
	}

	// MS-ECC pays a nonzero capacity cost: it sacrifices half the ways below
	// the knee, which must show up both in disabled lines and as extra
	// misses/time on cache-pressured workloads.
	msPressured := false
	for _, r := range rows {
		if r.Disabled["msecc"] < lines/4 {
			t.Errorf("%s: MS-ECC disabled only %d of %d lines; expected at least a quarter",
				r.Workload, r.Disabled["msecc"], lines)
		}
		if r.Normalized["msecc"] > 1.05 || r.MPKI["msecc"] > r.BaselineMPKI*1.2 {
			msPressured = true
		}
	}
	if !msPressured {
		t.Error("MS-ECC shows no capacity-induced time or MPKI cost on any workload")
	}

	// Killi disables only the rare multi-bit-faulty lines — a tiny fraction
	// of the array, never the wholesale disabling of the flat-column bug era.
	for _, r := range rows {
		for _, ratio := range KilliRatios {
			name := ratioName(ratio)
			if d := r.Disabled[name]; d < 0 || d > lines/20 {
				t.Errorf("%s/%s: %d disabled lines (of %d) is not sane", r.Workload, name, d, lines)
			}
		}
	}
}
