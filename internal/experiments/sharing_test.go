package experiments

import (
	"context"
	"testing"

	"killi/internal/killi"
	"killi/internal/protection"
)

// TestRunSharedMapsMatchRunOne cross-checks the sweep's shared
// pre-resolved fault maps and packed traces against the independent RunOne
// path, which builds a private fault map per system: the same workload ×
// scheme × warmup configuration must produce identical cycle counts and
// MPKI through both. It also pins RunOne's kernel semantics — if RunOne
// ignored cfg.WarmupKernels it would measure a different kernel than Run
// and diverge here.
func TestRunSharedMapsMatchRunOne(t *testing.T) {
	cfg := Config{
		Voltage:       0.625,
		RequestsPerCU: 400,
		Seed:          1,
		Workloads:     []string{"xsbench"},
		WarmupKernels: 1,
	}
	rows, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := rows[0]

	baseRes, err := RunOne(context.Background(), cfg, "xsbench", func() protection.Scheme { return protection.NewNone() }, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Cycles != row.BaselineCycles {
		t.Fatalf("baseline cycles diverge: RunOne %d, Run %d", baseRes.Cycles, row.BaselineCycles)
	}
	if got, want := baseRes.MPKI(), row.BaselineMPKI; got != want {
		t.Fatalf("baseline MPKI diverges: RunOne %v, Run %v", got, want)
	}

	res, err := RunOne(context.Background(), cfg, "xsbench", func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, cfg.Voltage)
	if err != nil {
		t.Fatal(err)
	}
	name := "killi-1:64"
	if got, want := res.MPKI(), row.MPKI[name]; got != want {
		t.Fatalf("%s MPKI diverges: RunOne %v, Run %v", name, got, want)
	}
	if got, want := float64(res.Cycles)/float64(baseRes.Cycles), row.Normalized[name]; got != want {
		t.Fatalf("%s normalized time diverges: RunOne %v, Run %v", name, got, want)
	}
	if got, want := res.DisabledLines, row.Disabled[name]; got != want {
		t.Fatalf("%s disabled lines diverge: RunOne %d, Run %d", name, got, want)
	}
}

// TestRunOneHonorsWarmupKernels checks the warmup field changes what
// RunOne measures: with DFH training pushed into a warmup kernel, the
// measured kernel of a Killi run is not the same kernel as an untrained
// run — the configurations must produce different results.
func TestRunOneHonorsWarmupKernels(t *testing.T) {
	cfg := Config{
		Voltage:       0.625,
		RequestsPerCU: 400,
		Seed:          1,
	}
	cold, err := RunOne(context.Background(), cfg, "xsbench", func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, cfg.Voltage)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmupKernels = 1
	warm, err := RunOne(context.Background(), cfg, "xsbench", func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }, cfg.Voltage)
	if err != nil {
		t.Fatal(err)
	}
	// The measured kernel differs both in request order (fresh kernel
	// seed) and in starting DFH state; identical results would mean the
	// warmup ran as the measured kernel (the old silently-ignored bug).
	if cold.Cycles == warm.Cycles && cold.L2Misses == warm.L2Misses &&
		cold.Instructions == warm.Instructions {
		t.Fatalf("warmup kernel had no effect on the measured kernel: %+v", cold)
	}
}
