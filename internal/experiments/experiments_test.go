package experiments

import (
	"context"
	"testing"

	"killi/internal/gpu"
	"killi/internal/protection"
)

// smallGPU shrinks the L2 for fast sweeps.
func smallGPU() *gpu.Config {
	cfg := gpu.DefaultConfig()
	cfg.L2Bytes = 128 << 10
	return &cfg
}

func TestSchemesCatalog(t *testing.T) {
	specs := Schemes()
	if len(specs) != 3+len(KilliRatios) {
		t.Fatalf("scheme catalog has %d entries", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate scheme %q", s.Name)
		}
		seen[s.Name] = true
		inst := s.New()
		if inst == nil {
			t.Fatalf("%s factory returned nil", s.Name)
		}
		// Factories must return fresh instances.
		if s.New() == inst {
			t.Fatalf("%s factory reuses instances", s.Name)
		}
	}
	for _, want := range []string{"dected", "flair", "msecc", "killi-1:16", "killi-1:256"} {
		if !seen[want] {
			t.Fatalf("scheme %q missing", want)
		}
	}
}

func TestRunProducesCompleteRows(t *testing.T) {
	rows, err := Run(context.Background(), Config{
		RequestsPerCU: 800,
		Workloads:     []string{"nekbone", "xsbench"},
		GPU:           smallGPU(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BaselineCycles == 0 {
			t.Fatalf("%s: no baseline cycles", r.Workload)
		}
		if len(r.Normalized) != len(Schemes()) {
			t.Fatalf("%s: %d scheme results", r.Workload, len(r.Normalized))
		}
		for name, norm := range r.Normalized {
			if norm < 0.90 || norm > 3 {
				t.Errorf("%s/%s: normalized time %.3f implausible", r.Workload, name, norm)
			}
			if r.MPKI[name] < 0 {
				t.Errorf("%s/%s: negative MPKI", r.Workload, name)
			}
		}
	}
}

func TestRunUnknownWorkloadErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{Workloads: []string{"nope"}, GPU: smallGPU(), RequestsPerCU: 10}); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestDefaultsFillIn(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Voltage != 0.625 || cfg.RequestsPerCU == 0 || cfg.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if len(cfg.Workloads) != 10 {
		t.Fatalf("default workloads = %d, want the full catalog", len(cfg.Workloads))
	}
}

func TestSchemeNamesStable(t *testing.T) {
	r := Row{Normalized: map[string]float64{"b": 1, "a": 1, "c": 1}}
	names := r.SchemeNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names %v", names)
	}
}

func TestRunOne(t *testing.T) {
	res, err := RunOne(context.Background(), Config{RequestsPerCU: 500, GPU: smallGPU()},
		"lulesh", func() protection.Scheme { return protection.NewSECDEDPerLine() }, 0.625)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatal("degenerate RunOne result")
	}
	if _, err := RunOne(context.Background(), Config{GPU: smallGPU(), RequestsPerCU: 10},
		"nope", func() protection.Scheme { return protection.NewNone() }, 1.0); err == nil {
		t.Fatal("unknown workload did not error")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{"none", "secded", "dected", "flair", "msecc", "killi-1:64", "killi-dected-1:16"} {
		s, err := SchemeByName(name)
		if err != nil {
			t.Fatalf("SchemeByName(%q): %v", name, err)
		}
		if name != "none" && name != "secded" && name != "dected" && s.Name() == "" {
			t.Fatalf("%q: empty scheme name", name)
		}
	}
	for _, bad := range []string{
		"", "killi", "unknown",
		"killi-1:0", "killi-1:-16", "killi-1:x",
		"killi-1:16xyz", "killi-1:16 ", "killi-dected-1:32extra",
		"killi-olsc0-1:8", "killi-olsc11-1:2junk", "killi-olsc-1:8", "killi-olscx-1:8",
	} {
		if _, err := SchemeByName(bad); err == nil {
			t.Fatalf("SchemeByName(%q) did not error", bad)
		}
	}
}

// TestSchemeByNameRoundTripsCatalog pins the contract the CLI relies on:
// every name the sweep produces parses back to a scheme of that name.
func TestSchemeByNameRoundTripsCatalog(t *testing.T) {
	for _, spec := range Schemes() {
		s, err := SchemeByName(spec.Name)
		if err != nil {
			t.Fatalf("SchemeByName(%q): %v", spec.Name, err)
		}
		if got, want := s.Name(), spec.New().Name(); got != want {
			t.Fatalf("SchemeByName(%q).Name() = %q, want %q", spec.Name, got, want)
		}
	}
}

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"fft", []string{"fft"}},
		{"fft, xsbench", []string{"fft", "xsbench"}},
		{" fft ,,xsbench, ", []string{"fft", "xsbench"}},
	}
	for _, c := range cases {
		got := SplitList(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("SplitList(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitList(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// TestParallelMatchesSerial pins the worker pool's core guarantee: any
// parallelism produces bit-for-bit the rows of the serial sweep.
func TestParallelMatchesSerial(t *testing.T) {
	cfg := Config{
		RequestsPerCU: 600,
		Workloads:     []string{"nekbone", "xsbench"},
		WarmupKernels: 1,
		GPU:           smallGPU(),
	}
	serial := cfg
	serial.Parallelism = 1
	par := cfg
	par.Parallelism = 8
	want, err := Run(context.Background(), serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel rows %d, serial %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Workload != w.Workload || g.BaselineCycles != w.BaselineCycles || g.BaselineMPKI != w.BaselineMPKI {
			t.Fatalf("row %d diverges: serial %+v parallel %+v", i, w, g)
		}
		for _, n := range w.SchemeNames() {
			if g.Normalized[n] != w.Normalized[n] || g.MPKI[n] != w.MPKI[n] || g.Disabled[n] != w.Disabled[n] {
				t.Fatalf("%s/%s diverges: serial (%v, %v, %d) parallel (%v, %v, %d)",
					w.Workload, n, w.Normalized[n], w.MPKI[n], w.Disabled[n],
					g.Normalized[n], g.MPKI[n], g.Disabled[n])
			}
		}
	}
}

func TestSchemeByNameOLSC(t *testing.T) {
	s, err := SchemeByName("killi-olsc11-1:2")
	if err != nil || s.Name() != "killi-olsc11-1:2" {
		t.Fatalf("olsc scheme: %v / %v", s, err)
	}
}
