package experiments

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"killi/internal/obs"
)

// cancelConfig is a small but multi-task sweep so cancellation lands while
// work is genuinely in flight.
func cancelConfig(dir string, parallel int) Config {
	return Config{
		Voltage:       0.625,
		RequestsPerCU: 400,
		Seed:          1,
		Workloads:     []string{"xsbench", "nekbone"},
		GPU:           smallGPU(),
		Parallelism:   parallel,
		CacheDir:      dir,
	}
}

// TestRunCancellation pins the interrupted-sweep contract: cancelling the
// context mid-sweep returns ctx.Err() (not partial rows), drains the worker
// pool, and leaves no simcache "put-*" temp files behind — including ones
// stranded by an earlier crashed writer.
func TestRunCancellation(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		dir := t.TempDir()
		// A stranded temp file from a hypothetical earlier crash: the
		// cancellation path must sweep it too.
		if err := os.WriteFile(filepath.Join(dir, "put-stranded"), []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cfg := cancelConfig(dir, parallel)
		// Cancel as soon as the first task completes, so later tasks are
		// still pending or in flight.
		cfg.Progress = func(done, total int) {
			if done == 1 {
				cancel()
			}
		}
		rows, err := Run(ctx, cfg)
		cancel()
		if err != context.Canceled {
			t.Fatalf("parallel=%d: Run returned %v, want context.Canceled", parallel, err)
		}
		if rows != nil {
			t.Fatalf("parallel=%d: cancelled Run returned partial rows", parallel)
		}
		leftovers, globErr := filepath.Glob(filepath.Join(dir, "put-*"))
		if globErr != nil || len(leftovers) != 0 {
			t.Fatalf("parallel=%d: temp files left after cancellation: %v (err %v)",
				parallel, leftovers, globErr)
		}
	}
}

// TestRunCancelledBeforeStart pins the fast path: an already-cancelled
// context runs zero simulations.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := cancelConfig(t.TempDir(), 2)
	calls := 0
	cfg.Progress = func(done, total int) { calls++ }
	if _, err := Run(ctx, cfg); err != context.Canceled {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context, want 0", calls)
	}
}

// TestRunOneCancellation covers the single-run entry points.
func TestRunOneCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{RequestsPerCU: 200, GPU: smallGPU()}
	newScheme, err := SchemeFactoryByName("killi-1:64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOne(ctx, cfg, "xsbench", newScheme, 0.625); err != context.Canceled {
		t.Fatalf("RunOne = %v, want context.Canceled", err)
	}
	if _, err := RunOneNamed(ctx, cfg, "xsbench", "killi-1:64", 0.625); err != context.Canceled {
		t.Fatalf("RunOneNamed = %v, want context.Canceled", err)
	}
	if _, err := RunOneObserved(ctx, cfg, "xsbench", newScheme, 0.625, obs.NewCollector(), 0); err != context.Canceled {
		t.Fatalf("RunOneObserved = %v, want context.Canceled", err)
	}
}

// TestRunOneNamedCacheRoundTrip pins RunOneNamed's cache semantics: the
// cold call computes (Counters attached) and persists, the warm call is
// served from disk (no Counters, scalars bit-identical), and the key is the
// sweep's per-task key, so a prior Run warms RunOneNamed.
func TestRunOneNamedCacheRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := Config{RequestsPerCU: 300, Seed: 1, GPU: smallGPU(), CacheDir: dir}

	cold, err := RunOneNamed(ctx, cfg, "xsbench", "killi-1:64", 0.625)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Counters == nil {
		t.Fatal("cold RunOneNamed result has no Counters — did it not simulate?")
	}
	warm, err := RunOneNamed(ctx, cfg, "xsbench", "killi-1:64", 0.625)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Counters != nil {
		t.Fatal("warm RunOneNamed carries Counters — it recomputed instead of hitting the cache")
	}
	cold.Counters = nil
	// Sched, like Counters, is not round-tripped: it describes how the cold
	// run was scheduled (and depends on the shard count, which the cache key
	// deliberately excludes), not what the simulation computed.
	cold.Sched = warm.Sched
	if warm != cold {
		t.Fatalf("warm result diverges from cold: warm %+v, cold %+v", warm, cold)
	}

	// Unknown names fail fast, before any simulation or cache I/O.
	if _, err := RunOneNamed(ctx, cfg, "xsbench", "nope", 0.625); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := RunOneNamed(ctx, cfg, "nope", "killi-1:64", 0.625); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestSweepWarmsRunOneNamed pins the shared key space: after a cached
// sweep, a RunOneNamed with the same per-task inputs is a pure cache hit.
func TestSweepWarmsRunOneNamed(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := Config{
		Voltage:       0.625,
		RequestsPerCU: 300,
		Seed:          1,
		Workloads:     []string{"xsbench"},
		GPU:           smallGPU(),
		CacheDir:      dir,
	}
	rows, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOneNamed(ctx, cfg, "xsbench", "killi-1:64", cfg.Voltage)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters != nil {
		t.Fatal("RunOneNamed after a cached sweep recomputed instead of hitting the sweep's entry")
	}
	if got, want := res.MPKI(), rows[0].MPKI["killi-1:64"]; got != want {
		t.Fatalf("cache-served MPKI %v diverges from the sweep row %v", got, want)
	}
}

// TestProgressConcurrent drives the parallel sweep's Progress callback and
// obs.Metrics.TaskDone together under the race detector (CI runs this
// package with -race): every cumulative count 1..total must be reported
// exactly once, and the metrics document must land on done == total.
func TestProgressConcurrent(t *testing.T) {
	m := obs.NewMetrics()
	var mu sync.Mutex
	seen := map[int]int{}
	var total int
	cfg := cancelConfig("", 4)
	cfg.Progress = func(done, tot int) {
		m.TaskDone(done, tot)
		mu.Lock()
		seen[done]++
		total = tot
		mu.Unlock()
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("Progress never ran")
	}
	for d := 1; d <= total; d++ {
		if seen[d] != 1 {
			t.Fatalf("cumulative count %d reported %d times, want exactly once", d, seen[d])
		}
	}
	if len(seen) != total {
		t.Fatalf("%d distinct counts reported, want %d", len(seen), total)
	}
}

// TestValidateFlags covers the up-front CLI validation shared by killi-sim
// and killi-simd.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                                 string
		requests, parallel, shards, maxProcs int
		ok                                   bool
	}{
		{"defaults", 12000, -1, 1, 8, true},
		{"explicit parallel", 4000, 4, 2, 8, true},
		{"zero requests", 0, -1, 1, 8, false},
		{"negative requests", -5, -1, 1, 8, false},
		{"zero shards", 4000, -1, 0, 8, false},
		{"negative shards", 4000, -1, -2, 8, false},
		{"zero parallel", 4000, 0, 1, 8, false},
		{"parallel below -1", 4000, -3, 1, 8, false},
		{"8x budget is allowed", 4000, 16, 4, 8, true},
		{"over 8x budget", 4000, 32, 4, 8, false},
		{"single core small shards ok", 4000, 1, 8, 1, true},
		{"single core oversubscribed", 4000, 3, 8, 1, false},
	}
	for _, c := range cases {
		err := ValidateFlags(c.requests, c.parallel, c.shards, c.maxProcs)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: combination accepted, want error", c.name)
		}
	}
}
