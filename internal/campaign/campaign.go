// Package campaign runs fleet-scale Monte Carlo fault-map campaigns: N
// simulated dies — each a distinct fault population sampled from a per-die
// seed stream — crossed with a voltage grid, a protection scheme list, and
// a fault-class axis (persistent or mixed non-persistent populations, see
// faultmodel.ClassSyntax), executed through the sharded simulation engine
// and aggregated streamingly.
//
// The paper evaluates each scheme against a single sampled fault map per
// voltage; a fleet deployment decision needs the distribution across device
// instances (dpcs draws N=10,000 maps per config; HARP and the Patel thesis
// make the same argument for profiling-based mitigation). A campaign
// produces exactly that: per-(scheme, voltage) yield with Wilson confidence
// intervals, normalized-execution-time moments and quantiles, and per-die
// Vmin CDFs — the distributional version of the paper's Figure 6.
//
// Shared state is resolved once, the discipline the sweep established: one
// packed TraceSet per workload serves every die, one fault Map per die
// serves every (scheme, voltage) cell through per-voltage Resolved views,
// and per-die fault seeds come from faultmodel.DieSeed so the streams are
// pairwise independent and stable across hosts.
//
// Aggregation is streaming and bounded: online Welford moments and P²
// quantile sketches per cell, fed in canonical die order through a bounded
// reorder window, so memory stays O(window + cells) at any N and a campaign
// with a fixed seed is bit-reproducible at any parallelism or shard count.
package campaign

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"killi/internal/experiments"
	"killi/internal/faultmodel"
	"killi/internal/gpu"
	"killi/internal/protection"
	"killi/internal/simcache"
	"killi/internal/workload"
)

// DefaultVoltages is the grid a campaign sweeps when none is given: the
// paper's operating points from the MS-ECC floor (0.575×VDD) up to the
// fault-negligible region (0.700×VDD) in 25 mV steps.
func DefaultVoltages() []float64 {
	return []float64{0.575, 0.600, 0.625, 0.650, 0.675, 0.700}
}

// DefaultPassThreshold is the yield criterion: a die passes a cell when its
// execution time stays within 10% of its own fault-free nominal-voltage
// baseline. The paper's Figure 4 shows Killi within ~1% at 0.625×VDD, so
// 1.10 separates "deployable" from "crippled by disable/correction traffic"
// with a wide margin on both sides.
const DefaultPassThreshold = 1.10

// simFunc executes one prepared simulation; tests substitute a stub so the
// aggregation pipeline can be driven with 10k+ synthetic dies in
// milliseconds. The default is experiments.RunShared.
type simFunc func(ctx context.Context, g gpu.Config, newScheme protection.Factory, faults *gpu.SharedFaults, traces *workload.TraceSet, shards int) (gpu.Result, error)

// Config parameterizes a campaign.
type Config struct {
	// Workloads are the trace generators to campaign over (default
	// {"xsbench"} — a fleet campaign over the full catalog is a deliberate
	// choice, not a default).
	Workloads []string
	// Schemes lists the protection schemes by SchemeSyntax name (default
	// {"killi-1:64", "msecc"}).
	Schemes []string
	// FaultClasses lists fault-class specs (faultmodel.ClassSyntax) as a
	// campaign axis: every (workload, scheme, voltage) cell is run once per
	// class mix. Default {"persistent"} — the paper's model, and the value
	// under which results are bit-identical to a campaign predating the
	// axis. Each die's fault-free nominal baseline always runs the zero
	// spec regardless of this list.
	FaultClasses []string
	// Voltages is the LV grid, any order; Run sorts it ascending. Default
	// DefaultVoltages. Every die's fault map is sampled at the grid minimum
	// (the map's reference voltage) and resolved per grid point.
	Voltages []float64
	// Dies is the number of Monte Carlo device instances (required, >= 1).
	Dies int
	// Seed is the campaign seed: it drives trace generation (shared by all
	// dies) and the per-die fault-seed stream (faultmodel.DieSeed). Default 1.
	Seed uint64
	// RequestsPerCU is the trace length per compute unit (default 2000 —
	// shorter than the sweep's 4000: a campaign buys its statistical power
	// from die count, not trace length).
	RequestsPerCU int
	// WarmupKernels precede each measured kernel, as in experiments.Config.
	WarmupKernels int
	// Parallelism bounds concurrently simulating dies. 0 or 1 is serial;
	// negative auto-budgets GOMAXPROCS/Shards. Results are bit-identical at
	// every value: dies are aggregated in die order regardless of
	// completion order.
	Parallelism int
	// Shards is the intra-simulation shard count (bit-identical at any
	// value; 0 = 1).
	Shards int
	// GPU overrides the base GPU configuration (nil = Table 3). Voltage,
	// FaultSeed, and RefVoltage are owned by the campaign and overwritten.
	GPU *gpu.Config
	// PassThreshold is the normalized-execution-time yield criterion
	// (default DefaultPassThreshold).
	PassThreshold float64
	// Window bounds the reorder buffer between out-of-order die completion
	// and in-order aggregation, in dies (default 4 × workers). Memory grows
	// with Window, never with Dies.
	Window int
	// CacheDir, when non-empty, enables the content-addressed result cache
	// (internal/simcache) at two grains: a whole-die record keyed by the
	// campaign axes plus the die index (a warm identical re-run is one read
	// per die, no fault-map build), and the per-cell entries the sweep path
	// already uses (a campaign sharing a (seed, die, workload, scheme,
	// classes) prefix with a prior one — say, new grid voltages — only
	// simulates the new cells). Cached records are bit-identical to
	// recomputed ones; corrupted or stale entries are recomputed silently.
	CacheDir string
	// CheckpointDir, when non-empty, appends each die's record to a
	// checkpoint file in that directory as the die is aggregated, named by
	// the campaign's axes digest. With Resume, Run first replays the
	// checkpoint's valid prefix through the aggregator (truncating any torn
	// tail from a killed run) and only dispatches the remaining dies — so
	// an interrupted campaign restarts where it died with bit-identical
	// final output.
	CheckpointDir string
	// Resume replays an existing checkpoint before dispatching. It is a
	// no-op without CheckpointDir at the campaign layer; killi-fleet
	// rejects that combination up front.
	Resume bool
	// Progress, when non-nil, is called after each die is aggregated.
	// Calls happen in die order on the aggregating goroutine, so the
	// callback needs no locking of its own.
	Progress func(ProgressInfo)

	// runSim substitutes the simulation executor in tests (nil =
	// experiments.RunShared).
	runSim simFunc
	// dieFaults substitutes the per-die fault-population builder in tests
	// (nil = buildDieFaults): stub runs must not pay for — or be limited
	// by — 32K-line fault maps they never read.
	dieFaults func(g gpu.Config, voltages []float64) (at []*gpu.SharedFaults, nominal *gpu.SharedFaults)
}

// ProgressInfo is one progress callback's payload. Counts are cumulative:
// Done dies have been aggregated so far, of which Cached were served whole
// from the die-record cache and Resumed were replayed from a checkpoint.
type ProgressInfo struct {
	Done    int
	Total   int
	Cached  int
	Resumed int
}

// buildDieFaults samples one die's fault population at the grid minimum
// (g.Voltage must equal voltages[0] == g.RefVoltage) and returns read-only
// views resolved at every grid point plus the fault-free nominal point —
// one map per die serving every (workload, scheme, voltage) cell.
func buildDieFaults(g gpu.Config, voltages []float64) ([]*gpu.SharedFaults, *gpu.SharedFaults) {
	shared := gpu.BuildSharedFaults(g)
	at := make([]*gpu.SharedFaults, len(voltages))
	at[0] = shared
	for vi := 1; vi < len(voltages); vi++ {
		at[vi] = &gpu.SharedFaults{Map: shared.Map, Resolved: shared.Map.Resolve(voltages[vi])}
	}
	nominal := &gpu.SharedFaults{Map: shared.Map, Resolved: shared.Map.Resolve(1.0)}
	return at, nominal
}

// Normalized returns the config with every default made explicit, voltages
// sorted ascending, or a one-line validation error. It is exported so the
// simserver job layer normalizes campaign jobs exactly as Run will execute
// them (identical jobs written differently must coalesce identically).
func (c Config) Normalized() (Config, error) {
	if c.Dies < 1 {
		return c, fmt.Errorf("campaign: dies must be >= 1, got %d", c.Dies)
	}
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"xsbench"}
	}
	for _, name := range c.Workloads {
		if _, err := workload.ByName(name); err != nil {
			return c, err
		}
	}
	if len(c.Schemes) == 0 {
		c.Schemes = []string{"killi-1:64", "msecc"}
	}
	for _, name := range c.Schemes {
		if _, err := experiments.SchemeByName(name); err != nil {
			return c, err
		}
	}
	if len(c.FaultClasses) == 0 {
		c.FaultClasses = []string{"persistent"}
	}
	canon := make([]string, len(c.FaultClasses))
	seenClass := make(map[string]bool, len(c.FaultClasses))
	for i, s := range c.FaultClasses {
		spec, err := faultmodel.ParseClassSpec(s)
		if err != nil {
			return c, err
		}
		canon[i] = spec.String()
		if seenClass[canon[i]] {
			return c, fmt.Errorf("campaign: duplicate fault-class spec %q", canon[i])
		}
		seenClass[canon[i]] = true
	}
	c.FaultClasses = canon
	if len(c.Voltages) == 0 {
		c.Voltages = DefaultVoltages()
	}
	c.Voltages = append([]float64(nil), c.Voltages...)
	sort.Float64s(c.Voltages)
	for i, v := range c.Voltages {
		if v <= 0 || v > 2 {
			return c, fmt.Errorf("campaign: voltage %.3f is outside the plausible (0, 2] x VDD range", v)
		}
		if i > 0 && v == c.Voltages[i-1] {
			return c, fmt.Errorf("campaign: duplicate grid voltage %.3f", v)
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RequestsPerCU == 0 {
		c.RequestsPerCU = 2000
	}
	if c.RequestsPerCU < 0 {
		return c, fmt.Errorf("campaign: requests per CU must be positive, got %d", c.RequestsPerCU)
	}
	if c.WarmupKernels < 0 {
		return c, fmt.Errorf("campaign: warmup kernels must be >= 0, got %d", c.WarmupKernels)
	}
	if c.PassThreshold == 0 {
		c.PassThreshold = DefaultPassThreshold
	}
	if c.PassThreshold <= 1 {
		return c, fmt.Errorf("campaign: pass threshold must exceed 1 (it bounds time normalized to the fault-free baseline), got %.3f", c.PassThreshold)
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Parallelism < 0 {
		c.Parallelism = max(1, runtime.GOMAXPROCS(0)/c.Shards)
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.Window < 0 {
		return c, fmt.Errorf("campaign: window must be >= 0 (0 means 4 x workers), got %d", c.Window)
	}
	if c.Window == 0 {
		c.Window = 4 * c.Parallelism
	}
	return c, nil
}

func (c Config) baseGPU() gpu.Config {
	if c.GPU != nil {
		return *c.GPU
	}
	return gpu.DefaultConfig()
}

// axesDesc canonically describes every campaign input that determines a
// single die's raw record — the normalized axes plus the base GPU config
// with the campaign-owned fields (Voltage, FaultSeed, RefVoltage, Classes)
// zeroed, since runDie overwrites them from the axes. Dies, PassThreshold,
// Parallelism, Shards, and Window are deliberately absent: they change how
// much is computed, or how it is scheduled and aggregated, never a die's
// outcome — which is exactly what lets a 10k-die campaign reuse the records
// of an earlier 1k-die one, and a resumed run reuse a checkpoint regardless
// of worker count. Call on a Normalized config only.
func (c Config) axesDesc() string {
	g := c.baseGPU()
	g.Voltage, g.FaultSeed, g.RefVoltage = 0, 0, 0
	g.Classes = faultmodel.ClassSpec{}
	var b strings.Builder
	fmt.Fprintf(&b, "campaign-die\ngpu=%#v\nseed=%d\nrequests=%d\nwarmup=%d\n",
		g, c.Seed, c.RequestsPerCU, c.WarmupKernels)
	fmt.Fprintf(&b, "workloads=%s\nschemes=%s\nclasses=%s\nvoltages=",
		strings.Join(c.Workloads, ","), strings.Join(c.Schemes, ","), strings.Join(c.FaultClasses, ";"))
	for i, v := range c.Voltages {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%.17g", v)
	}
	return b.String()
}

// dieKey is the simcache content address of one die's whole record.
func (c Config) dieKey(die int) string {
	return simcache.Key(fmt.Sprintf("%s\ndie=%d", c.axesDesc(), die))
}

// dieRecord is one die's complete raw outcome: the fault-free baseline per
// workload plus one sample per (workload, scheme, class, voltage) cell.
// Records are small (a few scalars per cell), which is what keeps the
// reorder window cheap.
type dieRecord struct {
	die    int
	base   []uint64 // per workload: fault-free nominal-voltage cycles
	cycles []uint64 // per cell, cellIndex-major
	mpki   []float64
	dis    []int32
	sdc    []uint64 // silent corruptions in the measured kernel
	fdis   []int32  // DFH false disables vs the ground-truth oracle
	ftru   []int32  // DFH false trusts (0 for schemes without DFH codes)

	// Provenance, never serialized: how the record was obtained. The
	// aggregator folds these into the Result's execution counters.
	cached   bool // served whole from the die-record cache
	resumed  bool // replayed from a checkpoint
	cellHits int  // per-cell cache hits while computing this record
}

// toCache converts the record to its serialized form — the same shape the
// die cache and the checkpoint file store.
func (r *dieRecord) toCache() simcache.DieRecord {
	return simcache.DieRecord{
		Die: r.die, Base: r.base, Cycles: r.cycles, MPKI: r.mpki,
		Disabled: r.dis, SDC: r.sdc, FalseDisable: r.fdis, FalseTrust: r.ftru,
	}
}

func fromCache(c simcache.DieRecord) *dieRecord {
	return &dieRecord{
		die: c.Die, base: c.Base, cycles: c.Cycles, mpki: c.MPKI,
		dis: c.Disabled, sdc: c.SDC, fdis: c.FalseDisable, ftru: c.FalseTrust,
	}
}

// cellIndex flattens (workload, scheme, class, voltage) with voltage
// fastest, the order every output walks.
func cellIndex(cfg *Config, wi, si, ki, vi int) int {
	return ((wi*len(cfg.Schemes)+si)*len(cfg.FaultClasses)+ki)*len(cfg.Voltages) + vi
}

// vminIndex flattens (workload, scheme, class): one Vmin distribution per
// class mix, since a non-persistent population shifts the deployable floor.
func vminIndex(cfg *Config, wi, si, ki int) int {
	return (wi*len(cfg.Schemes)+si)*len(cfg.FaultClasses) + ki
}

// Run executes the campaign. Dies simulate concurrently up to
// cfg.Parallelism; aggregation consumes records strictly in die order
// through a reorder window of cfg.Window records, so the returned Result is
// bit-identical at any parallelism and memory stays bounded at any die
// count. Cancelling ctx stops in-flight simulations at their next kernel
// boundary and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	base := cfg.baseGPU()

	// Shared read-only state, resolved once for the whole fleet.
	seeds := experiments.KernelSeeds(cfg.Seed, cfg.WarmupKernels)
	traces := make([]*workload.TraceSet, len(cfg.Workloads))
	for i, name := range cfg.Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		traces[i] = w.TraceSet(base.CUs, cfg.RequestsPerCU, seeds)
	}
	factories := make([]protection.Factory, len(cfg.Schemes))
	for i, name := range cfg.Schemes {
		if factories[i], err = experiments.SchemeFactoryByName(name); err != nil {
			return nil, err
		}
	}
	noneFactory, err := experiments.SchemeFactoryByName("none")
	if err != nil {
		return nil, err
	}
	sim := cfg.runSim
	if sim == nil {
		sim = experiments.RunShared
	}
	dieFaults := cfg.dieFaults
	if dieFaults == nil {
		dieFaults = buildDieFaults
	}

	classSpecs := make([]faultmodel.ClassSpec, len(cfg.FaultClasses))
	for i, s := range cfg.FaultClasses {
		if classSpecs[i], err = faultmodel.ParseClassSpec(s); err != nil {
			return nil, err // unreachable: Normalized canonicalized the list
		}
	}

	var store *simcache.Store
	if cfg.CacheDir != "" {
		if store, err = simcache.Open(cfg.CacheDir); err != nil {
			return nil, err
		}
	}

	refV := cfg.Voltages[0]
	cells := len(cfg.Workloads) * len(cfg.Schemes) * len(cfg.FaultClasses) * len(cfg.Voltages)
	runDie := func(die int) (*dieRecord, error) {
		var dieKey string
		if store != nil {
			// Whole-die fast path: an identical campaign already evaluated
			// this die. The shape check rejects a record written under
			// different axes that collided (impossible short of a SHA-256
			// break, but cheap to verify).
			dieKey = cfg.dieKey(die)
			if c, ok := store.GetDie(dieKey); ok && c.Die == die && c.Shaped(len(cfg.Workloads), cells) {
				rec := fromCache(c)
				rec.cached = true
				return rec, nil
			}
		}
		rec := &dieRecord{
			die:    die,
			base:   make([]uint64, len(cfg.Workloads)),
			cycles: make([]uint64, cells),
			mpki:   make([]float64, cells),
			dis:    make([]int32, cells),
			sdc:    make([]uint64, cells),
			fdis:   make([]int32, cells),
			ftru:   make([]int32, cells),
		}
		g := base
		g.FaultSeed = faultmodel.DieSeed(cfg.Seed, die)
		g.RefVoltage = refV

		// One fault population per die, resolved once per operating point
		// and shared across every workload × scheme at that point — built
		// lazily, so a die whose every cell is served from the per-cell
		// cache (a prefix-sharing campaign) never pays for the map.
		gRef := g
		gRef.Voltage = refV
		var faultsAt []*gpu.SharedFaults
		var faultsNominal *gpu.SharedFaults
		ensureFaults := func() {
			if faultsAt == nil {
				faultsAt, faultsNominal = dieFaults(gRef, cfg.Voltages)
			}
		}
		// simCell is one cell through the per-cell cache: the key space is
		// experiments.CellKey — the same population the sweep and killi-sim
		// use — so a campaign sharing a (seed, die, workload, scheme,
		// classes) prefix with any earlier run only simulates new cells.
		simCell := func(g gpu.Config, f protection.Factory, schemeName string, wi int, pick func() *gpu.SharedFaults) (gpu.Result, error) {
			var key string
			if store != nil {
				key = experiments.CellKey(g, schemeName, cfg.Workloads[wi], cfg.Seed, cfg.RequestsPerCU, cfg.WarmupKernels)
				if c, ok := store.Get(key); ok {
					rec.cellHits++
					return experiments.ResultFromCache(c), nil
				}
			}
			ensureFaults()
			res, err := sim(ctx, g, f, pick(), traces[wi], cfg.Shards)
			if err == nil && store != nil {
				_ = store.Put(key, experiments.CacheableResult(res)) // best-effort, like the sweep
			}
			return res, err
		}

		for wi := range cfg.Workloads {
			// The die's own fault-free nominal baseline: replacement and
			// soft-error RNG streams derive from the die seed, so baselines
			// differ (slightly) per die and each die normalizes against
			// itself, as a real binned part would. The baseline always runs
			// the zero class spec: strikes and blinking faults are LV
			// phenomena being measured, not part of the yardstick.
			g.Voltage = 1.0
			g.Classes = faultmodel.ClassSpec{}
			res, err := simCell(g, noneFactory, "none", wi, func() *gpu.SharedFaults { return faultsNominal })
			if err != nil {
				return nil, err
			}
			rec.base[wi] = res.Cycles
			for si := range cfg.Schemes {
				for ki := range classSpecs {
					g.Classes = classSpecs[ki]
					for vi, v := range cfg.Voltages {
						g.Voltage = v
						vi := vi
						res, err := simCell(g, factories[si], cfg.Schemes[si], wi, func() *gpu.SharedFaults { return faultsAt[vi] })
						if err != nil {
							return nil, err
						}
						ci := cellIndex(&cfg, wi, si, ki, vi)
						rec.cycles[ci] = res.Cycles
						rec.mpki[ci] = res.MPKI()
						rec.dis[ci] = int32(res.DisabledLines)
						rec.sdc[ci] = res.SDC
						if res.HasMisclass {
							rec.fdis[ci] = int32(res.Misclass.FalseDisable)
							rec.ftru[ci] = int32(res.Misclass.FalseTrust)
						}
					}
				}
			}
		}
		if store != nil {
			_ = store.PutDie(dieKey, rec.toCache()) // best-effort
		}
		return rec, nil
	}

	agg := newAggregator(&cfg)
	start := time.Now()

	// fail funnels every error exit: by the time it runs no worker is
	// mid-Put (the serial loop is single-threaded; runParallel only returns
	// after its pool drains), so sweeping stranded cache temp files is safe.
	var ckpt *checkpoint
	fail := func(err error) (*Result, error) {
		if ckpt != nil {
			ckpt.close()
		}
		if store != nil {
			_, _ = store.RemoveTemps()
		}
		return nil, err
	}

	// deliver is the single in-order aggregation point: every record —
	// resumed, cached, or computed — passes through here exactly once, in
	// die order, on one goroutine.
	deliver := func(rec *dieRecord) error {
		agg.consume(rec)
		if ckpt != nil && !rec.resumed {
			if err := ckpt.append(rec); err != nil {
				return err
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(ProgressInfo{Done: agg.done, Total: cfg.Dies, Cached: agg.cachedDies, Resumed: agg.resumedDies})
		}
		return nil
	}

	firstDie := 0
	if cfg.CheckpointDir != "" {
		var replay []simcache.DieRecord
		ckpt, replay, err = openCheckpoint(&cfg, cells)
		if err != nil {
			return fail(err)
		}
		for _, c := range replay {
			if c.Die >= cfg.Dies {
				break // a longer prior campaign checkpointed more dies than this one needs
			}
			rec := fromCache(c)
			rec.resumed = true
			if err := deliver(rec); err != nil {
				return fail(err)
			}
		}
		firstDie = agg.done
	}

	if cfg.Parallelism <= 1 {
		for d := firstDie; d < cfg.Dies; d++ {
			if err := ctx.Err(); err != nil {
				return fail(err)
			}
			rec, err := runDie(d)
			if err != nil {
				return fail(err)
			}
			if err := deliver(rec); err != nil {
				return fail(err)
			}
		}
	} else if err := runParallel(ctx, &cfg, firstDie, runDie, deliver); err != nil {
		return fail(err)
	}

	if ckpt != nil {
		if err := ckpt.close(); err != nil {
			return nil, err
		}
	}
	res := agg.finalize()
	res.ElapsedSeconds = time.Since(start).Seconds()
	if res.ElapsedSeconds > 0 {
		res.DiesPerSecond = float64(cfg.Dies) / res.ElapsedSeconds
	}
	return res, nil
}

// runParallel fans dies [firstDie, cfg.Dies) out over a worker pool while
// the caller goroutine aggregates completed records strictly in die order
// (through deliver — the aggregation, checkpointing, and progress hook).
// The token channel is the memory bound: a die may only be dispatched while
// fewer than cfg.Window dies are un-aggregated, so pending records (in the
// reorder map or the results buffer) never exceed the window. Because the
// results channel's capacity equals the window, workers never block on it —
// the pipeline cannot deadlock.
func runParallel(parent context.Context, cfg *Config, firstDie int, runDie func(int) (*dieRecord, error), deliver func(*dieRecord) error) error {
	// A failed die leaves a permanent gap at the reorder point: no later
	// delivery can release its token, so without cancellation the producer
	// would eventually block on a full window while workers block on an
	// empty (unclosed) dies channel. The internal context breaks that cycle:
	// the first error cancels it, the producer stops dispatching, and the
	// pool drains.
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	workers := min(cfg.Parallelism, cfg.Dies-firstDie)
	tokens := make(chan struct{}, cfg.Window)
	dies := make(chan int)
	recs := make(chan *dieRecord, cfg.Window)
	errc := make(chan error, 1)

	go func() {
		defer close(dies)
		for d := firstDie; d < cfg.Dies; d++ {
			select {
			case tokens <- struct{}{}:
			case <-ctx.Done():
				return
			}
			select {
			case dies <- d:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range dies {
				if ctx.Err() != nil {
					continue // drain the channel without starting work
				}
				rec, err := runDie(d)
				if err != nil {
					select {
					case errc <- err:
					default:
					}
					cancel()
					continue
				}
				recs <- rec
			}
		}()
	}
	go func() { wg.Wait(); close(recs) }()

	pending := make(map[int]*dieRecord, cfg.Window)
	next := firstDie
	var deliverErr error
	for rec := range recs {
		pending[rec.die] = rec
		for {
			r, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if deliverErr == nil {
				deliverErr = deliver(r)
			}
			next++
			<-tokens
		}
	}
	// The parent context outranks everything (a cancelled campaign is
	// cancelled, whatever else went wrong); a worker's error outranks the
	// internal cancellation it triggered.
	if err := parent.Err(); err != nil {
		return err
	}
	select {
	case err := <-errc:
		return err
	default:
	}
	if deliverErr != nil {
		return deliverErr
	}
	if next != cfg.Dies {
		return fmt.Errorf("campaign: aggregated %d of %d dies without an error (dispatch bug)", next, cfg.Dies)
	}
	return nil
}

// cellAgg is the streaming state of one (workload, scheme, class, voltage)
// cell.
type cellAgg struct {
	norm     welford
	mpki     welford
	disabled welford
	sdc      welford
	fdis     welford
	ftru     welford
	q50      *p2
	q90      *p2
	q99      *p2
	pass     int64
}

// vminAgg is the streaming state of one (workload, scheme, class) Vmin
// distribution: counts over the (small, fixed) grid plus a moment
// accumulator over passing dies. The grid makes the CDF exact — no sketch
// needed.
type vminAgg struct {
	counts []int64 // per grid index
	fails  int64   // dies failing even at the grid maximum
	mean   welford
}

type aggregator struct {
	cfg   *Config
	cells []cellAgg
	vmin  []vminAgg
	base  []welford // per workload: baseline cycles across dies

	// Execution provenance counters, folded in by consume; they describe
	// how records were obtained, never what they contain.
	done        int
	cachedDies  int
	resumedDies int
	cellHits    int64
}

func newAggregator(cfg *Config) *aggregator {
	a := &aggregator{
		cfg:   cfg,
		cells: make([]cellAgg, len(cfg.Workloads)*len(cfg.Schemes)*len(cfg.FaultClasses)*len(cfg.Voltages)),
		vmin:  make([]vminAgg, len(cfg.Workloads)*len(cfg.Schemes)*len(cfg.FaultClasses)),
		base:  make([]welford, len(cfg.Workloads)),
	}
	for i := range a.cells {
		a.cells[i].q50 = newP2(0.50)
		a.cells[i].q90 = newP2(0.90)
		a.cells[i].q99 = newP2(0.99)
	}
	for i := range a.vmin {
		a.vmin[i].counts = make([]int64, len(cfg.Voltages))
	}
	return a
}

// consume folds one die into every accumulator. Callers feed records in
// strict die order; this is what makes every floating-point aggregate a
// pure function of the campaign seed.
func (a *aggregator) consume(rec *dieRecord) {
	a.done++
	if rec.cached {
		a.cachedDies++
	}
	if rec.resumed {
		a.resumedDies++
	}
	a.cellHits += int64(rec.cellHits)
	cfg := a.cfg
	for wi := range cfg.Workloads {
		a.base[wi].add(float64(rec.base[wi]))
		for si := range cfg.Schemes {
			for ki := range cfg.FaultClasses {
				// Vmin: the lowest grid voltage from which the die passes at
				// every higher grid point too (failures are monotone in
				// voltage; requiring a passing suffix keeps a fluke pass at
				// one low point from understating Vmin).
				vminIdx := len(cfg.Voltages)
				for vi := len(cfg.Voltages) - 1; vi >= 0; vi-- {
					ci := cellIndex(cfg, wi, si, ki, vi)
					c := &a.cells[ci]
					norm := float64(rec.cycles[ci]) / float64(rec.base[wi])
					c.norm.add(norm)
					c.mpki.add(rec.mpki[ci])
					c.disabled.add(float64(rec.dis[ci]))
					c.sdc.add(float64(rec.sdc[ci]))
					c.fdis.add(float64(rec.fdis[ci]))
					c.ftru.add(float64(rec.ftru[ci]))
					c.q50.add(norm)
					c.q90.add(norm)
					c.q99.add(norm)
					if norm <= cfg.PassThreshold {
						c.pass++
						if vminIdx == vi+1 {
							vminIdx = vi
						}
					}
				}
				va := &a.vmin[vminIndex(cfg, wi, si, ki)]
				if vminIdx < len(cfg.Voltages) {
					va.counts[vminIdx]++
					va.mean.add(cfg.Voltages[vminIdx])
				} else {
					va.fails++
				}
			}
		}
	}
}

func (a *aggregator) finalize() *Result {
	cfg := a.cfg
	res := &Result{
		Dies:          cfg.Dies,
		Seed:          cfg.Seed,
		RequestsPerCU: cfg.RequestsPerCU,
		WarmupKernels: cfg.WarmupKernels,
		PassThreshold: cfg.PassThreshold,
		Workloads:     cfg.Workloads,
		Schemes:       cfg.Schemes,
		FaultClasses:  cfg.FaultClasses,
		Voltages:      cfg.Voltages,
		CachedDies:    a.cachedDies,
		ResumedDies:   a.resumedDies,
		CellCacheHits: a.cellHits,
	}
	for wi, w := range cfg.Workloads {
		res.Baselines = append(res.Baselines, Baseline{
			Workload:   w,
			CyclesMean: a.base[wi].mean,
			CyclesStd:  a.base[wi].std(),
		})
		for si, s := range cfg.Schemes {
			for ki, cls := range cfg.FaultClasses {
				for vi, v := range cfg.Voltages {
					c := &a.cells[cellIndex(cfg, wi, si, ki, vi)]
					lo, hi := wilson(c.pass, c.norm.n)
					res.Cells = append(res.Cells, Cell{
						Workload:         w,
						Scheme:           s,
						Classes:          cls,
						Voltage:          v,
						Dies:             c.norm.n,
						Yield:            float64(c.pass) / float64(c.norm.n),
						YieldLo:          lo,
						YieldHi:          hi,
						NormMean:         c.norm.mean,
						NormStd:          c.norm.std(),
						NormQ50:          c.q50.quantile(),
						NormQ90:          c.q90.quantile(),
						NormQ99:          c.q99.quantile(),
						MPKIMean:         c.mpki.mean,
						MPKIStd:          c.mpki.std(),
						DisabledMean:     c.disabled.mean,
						SDCMean:          c.sdc.mean,
						FalseDisableMean: c.fdis.mean,
						FalseTrustMean:   c.ftru.mean,
					})
				}
				va := &a.vmin[vminIndex(cfg, wi, si, ki)]
				cdf := VminCDF{
					Workload: w,
					Scheme:   s,
					Classes:  cls,
					FailFrac: float64(va.fails) / float64(cfg.Dies),
					MeanVmin: va.mean.mean, // 0 when no die passes anywhere
				}
				var cum int64
				for vi, v := range cfg.Voltages {
					cum += va.counts[vi]
					cdf.Points = append(cdf.Points, VminPoint{
						Voltage: v,
						Count:   va.counts[vi],
						CumFrac: float64(cum) / float64(cfg.Dies),
					})
				}
				res.Vmin = append(res.Vmin, cdf)
			}
		}
	}
	return res
}

// Baseline is one workload's fault-free nominal-voltage execution time
// across the fleet (dies differ through their seed-derived replacement
// RNG, so the baseline is a narrow distribution, not a constant).
type Baseline struct {
	Workload   string  `json:"workload"`
	CyclesMean float64 `json:"cycles_mean"`
	CyclesStd  float64 `json:"cycles_std"`
}

// Cell is the aggregated outcome of one (workload, scheme, class, voltage)
// grid point across every die.
type Cell struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	// Classes is the canonical fault-class spec the cell ran under
	// ("persistent" for the paper's model).
	Classes string  `json:"classes"`
	Voltage float64 `json:"voltage"`
	Dies    int64   `json:"dies"`
	// Yield is the fraction of dies passing the normalized-time criterion
	// at this point; [YieldLo, YieldHi] is its 95% Wilson interval.
	Yield   float64 `json:"yield"`
	YieldLo float64 `json:"yield_lo"`
	YieldHi float64 `json:"yield_hi"`
	// Norm* summarize execution time normalized to the die's own fault-free
	// baseline: Welford moments and P² quantile estimates.
	NormMean float64 `json:"norm_mean"`
	NormStd  float64 `json:"norm_std"`
	NormQ50  float64 `json:"norm_q50"`
	NormQ90  float64 `json:"norm_q90"`
	NormQ99  float64 `json:"norm_q99"`
	MPKIMean float64 `json:"mpki_mean"`
	MPKIStd  float64 `json:"mpki_std"`
	// DisabledMean is the mean count of L2 lines the scheme disabled.
	DisabledMean float64 `json:"disabled_mean"`
	// SDCMean is the mean silent-data-corruption count of the measured
	// kernel; nonzero only under non-persistent populations (or schemes
	// that under-protect). FalseDisableMean and FalseTrustMean are the
	// mean DFH-vs-ground-truth misclassification counts, zero for schemes
	// without DFH codes.
	SDCMean          float64 `json:"sdc_mean"`
	FalseDisableMean float64 `json:"false_disable_mean"`
	FalseTrustMean   float64 `json:"false_trust_mean"`
}

// VminPoint is one grid step of a Vmin CDF.
type VminPoint struct {
	Voltage float64 `json:"voltage"`
	// Count is the number of dies whose Vmin is exactly this grid voltage;
	// CumFrac is the fraction of all dies with Vmin <= it — the CDF value.
	Count   int64   `json:"count"`
	CumFrac float64 `json:"cum_frac"`
}

// VminCDF is the per-die minimum-deployable-voltage distribution of one
// (workload, scheme, class) triple: Vmin is the lowest grid voltage from
// which the die passes at every higher grid point too.
type VminCDF struct {
	Workload string      `json:"workload"`
	Scheme   string      `json:"scheme"`
	Classes  string      `json:"classes"`
	Points   []VminPoint `json:"points"`
	// FailFrac is the fraction of dies that fail even at the grid maximum
	// (their Vmin lies above the grid).
	FailFrac float64 `json:"fail_frac"`
	// MeanVmin averages Vmin over dies that pass somewhere on the grid
	// (0 when none do).
	MeanVmin float64 `json:"mean_vmin"`
}

// Result is a completed campaign.
type Result struct {
	Dies          int       `json:"dies"`
	Seed          uint64    `json:"seed"`
	RequestsPerCU int       `json:"requests_per_cu"`
	WarmupKernels int       `json:"warmup_kernels"`
	PassThreshold float64   `json:"pass_threshold"`
	Workloads     []string  `json:"workloads"`
	Schemes       []string  `json:"schemes"`
	FaultClasses  []string  `json:"fault_classes"`
	Voltages      []float64 `json:"voltages"`

	Baselines []Baseline `json:"baselines"`
	Cells     []Cell     `json:"cells"`
	Vmin      []VminCDF  `json:"vmin"`

	// ElapsedSeconds and DiesPerSecond describe the execution, not the
	// simulation: they vary by host and are excluded from every
	// determinism comparison. CachedDies, ResumedDies, and CellCacheHits
	// are the same class of metadata — how records were obtained (whole-die
	// cache hits, checkpoint replays, per-cell cache hits), which varies
	// with cache state while the aggregates do not; WriteJSONL zeroes all
	// five in its header so warm output stays byte-identical to cold.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	DiesPerSecond  float64 `json:"dies_per_second"`
	CachedDies     int     `json:"cached_dies,omitempty"`
	ResumedDies    int     `json:"resumed_dies,omitempty"`
	CellCacheHits  int64   `json:"cell_cache_hits,omitempty"`
}

// YieldAt returns the yield of one (workload, scheme, voltage) cell, or
// NaN when the cell is not in the result. Voltage matches exactly (grid
// values round-trip unchanged through the config). With multiple fault
// classes in the axis it returns the first matching cell — the first
// class mix in config order.
func (r *Result) YieldAt(workloadName, scheme string, voltage float64) float64 {
	for _, c := range r.Cells {
		if c.Workload == workloadName && c.Scheme == scheme && c.Voltage == voltage {
			return c.Yield
		}
	}
	return math.NaN()
}
