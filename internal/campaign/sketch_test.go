package campaign

import (
	"math"
	"sort"
	"testing"

	"killi/internal/xrand"
)

// exactQuantile is the interpolated order statistic the P² sketch
// approximates.
func exactQuantile(sorted []float64, p float64) float64 {
	r := p * float64(len(sorted)-1)
	lo := int(math.Floor(r))
	hi := int(math.Ceil(r))
	return sorted[lo] + (r-float64(lo))*(sorted[hi]-sorted[lo])
}

func TestP2TracksExactQuantiles(t *testing.T) {
	r := xrand.New(7)
	const n = 20000
	data := make([]float64, n)
	for i := range data {
		// A skewed mixture, closer to normalized-execution-time shapes than
		// a uniform: mostly near 1.0 with a heavy upper tail.
		x := 1.0 + 0.02*r.Float64()
		if r.Float64() < 0.05 {
			x += r.Float64()
		}
		data[i] = x
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		s := newP2(p)
		for _, x := range data {
			s.add(x)
		}
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		want := exactQuantile(sorted, p)
		got := s.quantile()
		// P² is an approximation; for 20k samples of a smooth mixture it
		// lands well within a few percent of the exact order statistic.
		if math.Abs(got-want) > 0.05*math.Max(want, 1) {
			t.Errorf("p=%.2f: P² %.5f vs exact %.5f", p, got, want)
		}
	}
}

func TestP2SmallSamplesAreExact(t *testing.T) {
	s := newP2(0.5)
	for _, x := range []float64{3, 1, 2} {
		s.add(x)
	}
	if got := s.quantile(); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
	if got := newP2(0.9).quantile(); got != 0 {
		t.Errorf("empty sketch quantile = %v, want 0", got)
	}
}

func TestP2Deterministic(t *testing.T) {
	feed := func() float64 {
		s := newP2(0.9)
		r := xrand.New(42)
		for i := 0; i < 5000; i++ {
			s.add(r.Float64())
		}
		return s.quantile()
	}
	if a, b := feed(), feed(); a != b {
		t.Errorf("same input order produced %v then %v", a, b)
	}
}

func TestWelfordMatchesTwoPass(t *testing.T) {
	r := xrand.New(3)
	const n = 10000
	var w welford
	data := make([]float64, n)
	sum := 0.0
	for i := range data {
		data[i] = 100 + r.Float64()
		w.add(data[i])
		sum += data[i]
	}
	mean := sum / n
	var m2 float64
	for _, x := range data {
		m2 += (x - mean) * (x - mean)
	}
	std := math.Sqrt(m2 / (n - 1))
	if math.Abs(w.mean-mean) > 1e-9 {
		t.Errorf("mean %v vs two-pass %v", w.mean, mean)
	}
	if math.Abs(w.std()-std) > 1e-9 {
		t.Errorf("std %v vs two-pass %v", w.std(), std)
	}
	var single welford
	single.add(5)
	if single.std() != 0 {
		t.Errorf("std of one sample = %v, want 0", single.std())
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := wilson(0, 100)
	if lo != 0 || hi <= 0 || hi > 0.1 {
		t.Errorf("wilson(0,100) = [%v, %v]", lo, hi)
	}
	lo, hi = wilson(100, 100)
	if hi != 1 || lo >= 1 || lo < 0.9 {
		t.Errorf("wilson(100,100) = [%v, %v]", lo, hi)
	}
	lo, hi = wilson(50, 100)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("wilson(50,100) = [%v, %v] does not contain 0.5", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Errorf("wilson(50,100) = [%v, %v] is implausibly wide", lo, hi)
	}
	lo, hi = wilson(0, 0)
	if lo != 0 || hi != 0 {
		t.Errorf("wilson(0,0) = [%v, %v], want [0, 0]", lo, hi)
	}
}
