package campaign

import (
	"math"
	"sort"
)

// welford is Welford's online mean/variance accumulator: one pass, O(1)
// memory, numerically stable at any N. The campaign aggregator feeds every
// accumulator in canonical die order, so the floating-point result is a
// pure function of the campaign seed — bit-reproducible at any parallelism.
type welford struct {
	n    int64
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// std returns the sample standard deviation (n-1 denominator); 0 below two
// observations.
func (w *welford) std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// p2 estimates one quantile online with the P² algorithm (Jain & Chlamtac,
// CACM 1985): five markers, O(1) memory per quantile at any N, no stored
// samples. Below five observations it falls back to the exact order
// statistic over the buffered values. Like welford, it is deterministic in
// the input order, which the aggregator fixes to die order.
type p2 struct {
	p    float64
	n    int64      // observations seen
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
}

func newP2(p float64) *p2 {
	s := &p2{p: p}
	s.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	s.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

func (s *p2) add(x float64) {
	if s.n < 5 {
		s.q[s.n] = x
		s.n++
		if s.n == 5 {
			sort.Float64s(s.q[:])
			for i := range s.pos {
				s.pos[i] = float64(i + 1)
			}
		}
		return
	}
	s.n++

	// Find the marker cell containing x, adjusting the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.inc[i]
	}

	// Nudge the three interior markers toward their desired positions with
	// piecewise-parabolic (falling back to linear) height interpolation.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := s.parabolic(i, sign)
			if s.q[i-1] < h && h < s.q[i+1] {
				s.q[i] = h
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

func (s *p2) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

func (s *p2) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// quantile returns the current estimate. Below five observations it is the
// exact interpolated order statistic of the buffered samples; with no
// observations it is 0 (never NaN — results are JSON-encoded).
func (s *p2) quantile() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n < 5 {
		buf := append([]float64(nil), s.q[:s.n]...)
		sort.Float64s(buf)
		// Linear interpolation between order statistics.
		r := s.p * float64(len(buf)-1)
		lo := int(math.Floor(r))
		hi := int(math.Ceil(r))
		return buf[lo] + (r-float64(lo))*(buf[hi]-buf[lo])
	}
	return s.q[2]
}

// wilson returns the 95% Wilson score interval for k successes in n trials
// — the coverage confidence interval reported next to every yield number.
// It behaves sensibly at k = 0 and k = n, where the naive normal interval
// collapses to a point.
func wilson(k, n int64) (lo, hi float64) {
	if n == 0 {
		return 0, 0
	}
	const z = 1.959963984540054 // 97.5th normal percentile
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := p + z*z/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = (center - half) / denom
	hi = (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
