package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// Output formats killi-fleet can render a Result in.
const (
	FormatTable = "table"
	FormatCSV   = "csv"
	FormatJSONL = "jsonl"
)

// Write renders the result in the named format ("table", "csv", or
// "jsonl").
func (r *Result) Write(w io.Writer, format string) error {
	switch format {
	case FormatTable:
		return r.WriteTable(w)
	case FormatCSV:
		return r.WriteCSV(w)
	case FormatJSONL:
		return r.WriteJSONL(w)
	default:
		return fmt.Errorf("campaign: unknown output format %q (want %s, %s, or %s)",
			format, FormatTable, FormatCSV, FormatJSONL)
	}
}

// WriteTable renders the human-readable report: the yield-vs-voltage grid
// with confidence intervals and normalized-time statistics, then the Vmin
// CDF per (workload, scheme).
func (r *Result) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "campaign: %d dies, seed %d, %d req/CU, pass at <= %.2fx baseline\n\n",
		r.Dies, r.Seed, r.RequestsPerCU, r.PassThreshold)

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tscheme\tclasses\tvoltage\tyield\t95% CI\tnorm mean\tstd\tp50\tp90\tp99\tMPKI\tdisabled\tSDC\tfalse-dis\tfalse-trust")
	for _, c := range r.Cells {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.3f\t%.4f\t[%.4f, %.4f]\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.2f\t%.1f\t%.2f\t%.1f\t%.1f\n",
			c.Workload, c.Scheme, c.Classes, c.Voltage, c.Yield, c.YieldLo, c.YieldHi,
			c.NormMean, c.NormStd, c.NormQ50, c.NormQ90, c.NormQ99, c.MPKIMean, c.DisabledMean,
			c.SDCMean, c.FalseDisableMean, c.FalseTrustMean)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nVmin CDF (fraction of dies deployable at or below each voltage):")
	tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	header := "workload\tscheme\tclasses"
	for _, v := range r.Voltages {
		header += fmt.Sprintf("\t<=%.3f", v)
	}
	fmt.Fprintln(tw, header+"\tfail\tmean Vmin")
	for _, cdf := range r.Vmin {
		row := fmt.Sprintf("%s\t%s\t%s", cdf.Workload, cdf.Scheme, cdf.Classes)
		for _, p := range cdf.Points {
			row += fmt.Sprintf("\t%.4f", p.CumFrac)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\n", row, cdf.FailFrac, cdf.MeanVmin)
	}
	// No timing footer: every output format is a pure function of the
	// aggregates, so warm/resumed runs stay byte-identical to cold ones.
	// killi-fleet reports wall-clock on stderr instead.
	return tw.Flush()
}

// g17 renders a float at full precision (%.17g round-trips every float64
// bit pattern), the machine format the determinism tests compare.
func g17(f float64) string { return fmt.Sprintf("%.17g", f) }

// WriteCSV renders the machine-readable rows. Every row leads with a
// record type: "cell" rows carry the per-grid-point aggregates, "vmin"
// rows one CDF step each, and "vmin_summary" rows the per-(workload,
// scheme) tail. Floats print at %.17g, so two byte-identical CSVs mean
// bit-identical results — the property the parallelism-invariance test
// pins.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "type,workload,scheme,classes,voltage,dies,yield,yield_lo,yield_hi,norm_mean,norm_std,norm_q50,norm_q90,norm_q99,mpki_mean,mpki_std,disabled_mean,sdc_mean,false_disable_mean,false_trust_mean"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "cell,%s,%s,%s,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			c.Workload, c.Scheme, c.Classes, g17(c.Voltage), c.Dies,
			g17(c.Yield), g17(c.YieldLo), g17(c.YieldHi),
			g17(c.NormMean), g17(c.NormStd), g17(c.NormQ50), g17(c.NormQ90), g17(c.NormQ99),
			g17(c.MPKIMean), g17(c.MPKIStd), g17(c.DisabledMean),
			g17(c.SDCMean), g17(c.FalseDisableMean), g17(c.FalseTrustMean)); err != nil {
			return err
		}
	}
	for _, cdf := range r.Vmin {
		for _, p := range cdf.Points {
			if _, err := fmt.Fprintf(w, "vmin,%s,%s,%s,%s,%d,%s,,,,,,,,,,,,,\n",
				cdf.Workload, cdf.Scheme, cdf.Classes, g17(p.Voltage), p.Count, g17(p.CumFrac)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "vmin_summary,%s,%s,%s,,%d,%s,%s,,,,,,,,,,,,\n",
			cdf.Workload, cdf.Scheme, cdf.Classes, r.Dies, g17(cdf.FailFrac), g17(cdf.MeanVmin)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders one JSON object per line: a "campaign" header, then
// every baseline, cell, and vmin CDF. Go's JSON float encoding is the
// shortest exact round-trip, so JSONL output is bit-reproducible exactly
// like the CSV.
func (r *Result) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	type headed struct {
		Type string `json:"type"`
		Data any    `json:"data"`
	}
	header := *r
	header.Baselines, header.Cells, header.Vmin = nil, nil, nil
	// Execution metadata varies by host and cache state, never with the
	// simulation; zero it so warm/resumed JSONL is byte-identical to cold.
	header.ElapsedSeconds, header.DiesPerSecond = 0, 0
	header.CachedDies, header.ResumedDies, header.CellCacheHits = 0, 0, 0
	rows := []headed{{Type: "campaign", Data: header}}
	for i := range r.Baselines {
		rows = append(rows, headed{Type: "baseline", Data: r.Baselines[i]})
	}
	for i := range r.Cells {
		rows = append(rows, headed{Type: "cell", Data: r.Cells[i]})
	}
	for i := range r.Vmin {
		rows = append(rows, headed{Type: "vmin", Data: r.Vmin[i]})
	}
	for _, row := range rows {
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
