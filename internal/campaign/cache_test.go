package campaign

// Tests for the per-die result cache, cross-campaign prefix reuse, and
// checkpoint/resume — all pinned to the same invariant the parallelism
// tests establish: table, CSV, and JSONL output are byte-identical to a
// cold serial run no matter how the records were obtained (computed,
// cached, or replayed) or at what parallelism.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"killi/internal/gpu"
	"killi/internal/protection"
	"killi/internal/simcache"
	"killi/internal/workload"
)

// countingSim wraps the stub simulator with an invocation counter and an
// optional failure injector: calls after the first `failAfter` return a
// sentinel error (failAfter <= 0 disables injection).
func countingSim(calls *atomic.Int64, failAfter int64) simFunc {
	inner := stubSim()
	return func(ctx context.Context, g gpu.Config, f protection.Factory, sf *gpu.SharedFaults, ts *workload.TraceSet, shards int) (gpu.Result, error) {
		n := calls.Add(1)
		if failAfter > 0 && n > failAfter {
			return gpu.Result{}, errInjected
		}
		return inner(ctx, g, f, sf, ts, shards)
	}
}

var errInjected = errors.New("injected mid-campaign failure")

// allOutputs renders every output format of a result as one comparable blob.
func allOutputs(t *testing.T, r *Result) string {
	t.Helper()
	var buf bytes.Buffer
	for _, format := range []string{FormatTable, FormatCSV, FormatJSONL} {
		if err := r.Write(&buf, format); err != nil {
			t.Fatalf("Write(%s): %v", format, err)
		}
		buf.WriteString("\n----\n")
	}
	return buf.String()
}

// TestWarmCampaignBitIdentical pins the tentpole: an identical re-run
// against a populated cache streams whole-die records — zero simulator
// calls, zero fault-map builds — and produces byte-identical output in
// every format at several parallelism values.
func TestWarmCampaignBitIdentical(t *testing.T) {
	const dies = 60
	dir := t.TempDir()

	var coldCalls atomic.Int64
	cold := stubConfig(dies, 1)
	cold.CacheDir = dir
	cold.runSim = countingSim(&coldCalls, 0)
	coldRes, err := Run(context.Background(), cold)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	want := allOutputs(t, coldRes)
	if coldCalls.Load() == 0 {
		t.Fatal("cold run simulated nothing")
	}
	if coldRes.CachedDies != 0 || coldRes.CellCacheHits != 0 {
		t.Fatalf("cold run reported cache activity: %d dies, %d cells", coldRes.CachedDies, coldRes.CellCacheHits)
	}

	for _, parallel := range []int{1, 4, 16} {
		var warmCalls atomic.Int64
		var faultBuilds atomic.Int64
		warm := stubConfig(dies, parallel)
		warm.CacheDir = dir
		warm.runSim = countingSim(&warmCalls, 0)
		inner := stubFaults(0)
		warm.dieFaults = func(g gpu.Config, v []float64) ([]*gpu.SharedFaults, *gpu.SharedFaults) {
			faultBuilds.Add(1)
			return inner(g, v)
		}
		res, err := Run(context.Background(), warm)
		if err != nil {
			t.Fatalf("warm run (parallel=%d): %v", parallel, err)
		}
		if got := allOutputs(t, res); got != want {
			t.Errorf("warm output (parallel=%d) differs from cold", parallel)
		}
		if warmCalls.Load() != 0 {
			t.Errorf("warm run (parallel=%d) simulated %d cells, want 0", parallel, warmCalls.Load())
		}
		if faultBuilds.Load() != 0 {
			t.Errorf("warm run (parallel=%d) built %d fault maps, want 0", parallel, faultBuilds.Load())
		}
		if res.CachedDies != dies {
			t.Errorf("warm run (parallel=%d) CachedDies = %d, want %d", parallel, res.CachedDies, dies)
		}
	}
}

// TestPrefixSharedCampaign pins cross-campaign reuse: a campaign extending
// an earlier one's voltage grid upward misses the whole-die records (the
// axes changed) but hits every shared cell, simulating only the new
// voltages — and its output is byte-identical to a cold run of the same
// extended campaign.
func TestPrefixSharedCampaign(t *testing.T) {
	const dies = 40
	shared := []float64{0.550, 0.575, 0.600, 0.625, 0.650, 0.675, 0.700}
	extended := append(append([]float64(nil), shared...), 0.725)

	// Reference: the extended campaign, cold, no cache.
	refCfg := stubConfig(dies, 1)
	refCfg.Voltages = extended
	ref, err := Run(context.Background(), refCfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := allOutputs(t, ref)

	dir := t.TempDir()
	seedCfg := stubConfig(dies, 4)
	seedCfg.Voltages = shared
	seedCfg.CacheDir = dir
	if _, err := Run(context.Background(), seedCfg); err != nil {
		t.Fatalf("seeding run: %v", err)
	}

	for i, parallel := range []int{1, 4, 16} {
		var calls atomic.Int64
		cfg := stubConfig(dies, parallel)
		cfg.Voltages = extended
		cfg.CacheDir = dir
		cfg.runSim = countingSim(&calls, 0)
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("extended run (parallel=%d): %v", parallel, err)
		}
		if got := allOutputs(t, res); got != want {
			t.Errorf("extended output (parallel=%d) differs from cold reference", parallel)
		}
		if i == 0 {
			// First extended pass: the whole-die records miss (the axes
			// changed), the baseline and every shared voltage are per-cell
			// hits, and only the one new grid point per (die, scheme)
			// simulates.
			newCells := int64(dies * len(cfg.Schemes))
			if calls.Load() != newCells {
				t.Errorf("extended run simulated %d cells, want %d (new voltages only)", calls.Load(), newCells)
			}
			wantHits := int64(dies * (1 + len(cfg.Schemes)*len(shared))) // baseline + shared cells
			if res.CellCacheHits != wantHits {
				t.Errorf("extended run CellCacheHits = %d, want %d", res.CellCacheHits, wantHits)
			}
		} else {
			// The first pass rewrote whole-die records under the extended
			// axes; later passes are pure die hits.
			if res.CachedDies != dies {
				t.Errorf("re-run (parallel=%d) CachedDies = %d, want %d", parallel, res.CachedDies, dies)
			}
			if calls.Load() != 0 {
				t.Errorf("re-run (parallel=%d) simulated %d cells, want 0", parallel, calls.Load())
			}
		}
	}
}

// TestCorruptedDieEntryRecomputedMidCampaign pins the repair contract: a
// corrupted whole-die cache entry is silently recomputed during a warm
// campaign — the other dies still stream from cache, the aggregate is
// unpoisoned (byte-identical output), and the entry is repaired in place.
func TestCorruptedDieEntryRecomputedMidCampaign(t *testing.T) {
	const dies = 24
	dir := t.TempDir()
	cfg := stubConfig(dies, 1)
	cfg.CacheDir = dir
	cold, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	want := allOutputs(t, cold)

	// Corrupt die 7's whole-die entry (flip a payload byte, keeping it
	// parseable) and truncate die 13's.
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	for die, mangle := range map[int]func([]byte) []byte{
		7:  func(b []byte) []byte { return bytes.Replace(b, []byte(`"die": 7`), []byte(`"die": 8`), 1) },
		13: func(b []byte) []byte { return b[:len(b)/3] },
	} {
		path := filepath.Join(dir, norm.dieKey(die)+".json")
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("die %d entry: %v", die, err)
		}
		if err := os.WriteFile(path, mangle(buf), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	var calls atomic.Int64
	warm := stubConfig(dies, 4)
	warm.CacheDir = dir
	warm.runSim = countingSim(&calls, 0)
	res, err := Run(context.Background(), warm)
	if err != nil {
		t.Fatalf("warm run over corrupted entries: %v", err)
	}
	if got := allOutputs(t, res); got != want {
		t.Error("corrupted-entry warm run diverged from cold output")
	}
	if res.CachedDies != dies-2 {
		t.Errorf("CachedDies = %d, want %d (two corrupted entries recomputed)", res.CachedDies, dies-2)
	}
	// The recomputed dies' cells were cached per-cell by the cold run, so
	// repair costs cell reads, not simulations.
	if calls.Load() != 0 {
		t.Errorf("repair simulated %d cells, want 0 (per-cell entries intact)", calls.Load())
	}

	// Both entries must now be repaired: a third run is fully warm.
	third := stubConfig(dies, 1)
	third.CacheDir = dir
	res3, err := Run(context.Background(), third)
	if err != nil {
		t.Fatal(err)
	}
	if res3.CachedDies != dies {
		t.Errorf("after repair CachedDies = %d, want %d", res3.CachedDies, dies)
	}
}

// interruptedCheckpoint runs the campaign with failure injection until it
// dies mid-run, leaving a partial checkpoint behind. Returns how many dies
// the checkpoint holds.
func interruptedCheckpoint(t *testing.T, ckptDir string, dies, parallel int, failAfter int64) int {
	t.Helper()
	var calls atomic.Int64
	cfg := stubConfig(dies, parallel)
	cfg.CheckpointDir = ckptDir
	cfg.runSim = countingSim(&calls, failAfter)
	if _, err := Run(context.Background(), cfg); !errors.Is(err, errInjected) {
		t.Fatalf("interrupted run returned %v, want injected failure", err)
	}
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	path := checkpointPath(ckptDir, simcache.Key(norm.axesDesc()))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	lines := strings.Count(string(buf), "\n")
	if lines < 2 {
		t.Fatalf("checkpoint has %d lines, want a header plus at least one record", lines)
	}
	return lines - 1
}

// TestResumeBitIdentical pins checkpoint/resume: a campaign killed mid-run
// restarts from its checkpoint — replaying the completed prefix, computing
// only the remainder — with output byte-identical to an uninterrupted run,
// at several parallelism values on both sides of the interruption.
func TestResumeBitIdentical(t *testing.T) {
	const dies = 48
	ref, err := Run(context.Background(), stubConfig(dies, 1))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want := allOutputs(t, ref)

	cells := int64(1 + 2*8) // per die: baseline + schemes x voltages
	for _, tc := range []struct{ interruptedP, resumedP int }{
		{1, 1}, {1, 16}, {4, 1}, {4, 4}, {16, 4},
	} {
		tc := tc
		t.Run(fmt.Sprintf("p%d_resume_p%d", tc.interruptedP, tc.resumedP), func(t *testing.T) {
			dir := t.TempDir()
			done := interruptedCheckpoint(t, dir, dies, tc.interruptedP, cells*(dies/3))
			if done == 0 || done >= dies {
				t.Fatalf("checkpoint holds %d dies, want a strict mid-run prefix", done)
			}
			var calls atomic.Int64
			cfg := stubConfig(dies, tc.resumedP)
			cfg.CheckpointDir = dir
			cfg.Resume = true
			cfg.runSim = countingSim(&calls, 0)
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if got := allOutputs(t, res); got != want {
				t.Error("resumed output differs from uninterrupted run")
			}
			if res.ResumedDies != done {
				t.Errorf("ResumedDies = %d, want %d", res.ResumedDies, done)
			}
			if wantCalls := cells * int64(dies-done); calls.Load() != wantCalls {
				t.Errorf("resumed run simulated %d cells, want %d (remainder only)", calls.Load(), wantCalls)
			}

			// Resuming the now-complete checkpoint computes nothing.
			var again atomic.Int64
			cfg2 := stubConfig(dies, tc.resumedP)
			cfg2.CheckpointDir = dir
			cfg2.Resume = true
			cfg2.runSim = countingSim(&again, 0)
			res2, err := Run(context.Background(), cfg2)
			if err != nil {
				t.Fatalf("second resume: %v", err)
			}
			if got := allOutputs(t, res2); got != want {
				t.Error("fully-resumed output differs")
			}
			if again.Load() != 0 || res2.ResumedDies != dies {
				t.Errorf("full resume simulated %d cells, ResumedDies = %d; want 0 and %d", again.Load(), res2.ResumedDies, dies)
			}
		})
	}
}

// TestTornCheckpointTailTruncated pins SIGKILL tolerance: a checkpoint
// whose final line was torn mid-write (no trailing newline, invalid JSON)
// resumes from the valid prefix and still matches the uninterrupted output.
func TestTornCheckpointTailTruncated(t *testing.T) {
	const dies = 30
	ref, err := Run(context.Background(), stubConfig(dies, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := allOutputs(t, ref)

	dir := t.TempDir()
	done := interruptedCheckpoint(t, dir, dies, 4, int64((1+2*8)*(dies/2)))

	cfg := stubConfig(dies, 1)
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	path := checkpointPath(dir, simcache.Key(norm.axesDesc()))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A record a killed writer got halfway through: valid-looking JSON
	// prefix, no newline.
	if _, err := f.WriteString(`{"die":9999,"base":[123`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg.CheckpointDir = dir
	cfg.Resume = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if got := allOutputs(t, res); got != want {
		t.Error("torn-tail resume diverged from uninterrupted output")
	}
	if res.ResumedDies != done {
		t.Errorf("ResumedDies = %d, want %d (torn tail dropped)", res.ResumedDies, done)
	}
}

// TestCheckpointAxesMismatchStartsFresh pins the isolation property: a
// resume whose axes differ from the checkpoint's opens a different journal
// (the name is the axes digest), so records are never mixed across
// incompatible campaigns.
func TestCheckpointAxesMismatchStartsFresh(t *testing.T) {
	const dies = 12
	dir := t.TempDir()
	a := stubConfig(dies, 1)
	a.CheckpointDir = dir
	if _, err := Run(context.Background(), a); err != nil {
		t.Fatal(err)
	}

	// Same checkpoint dir, different seed: must compute everything.
	var calls atomic.Int64
	b := stubConfig(dies, 1)
	b.Seed = 99
	b.CheckpointDir = dir
	b.Resume = true
	b.runSim = countingSim(&calls, 0)
	res, err := Run(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResumedDies != 0 {
		t.Errorf("ResumedDies = %d under different axes, want 0", res.ResumedDies)
	}
	if calls.Load() == 0 {
		t.Error("different-axes resume simulated nothing")
	}
	entries, err := filepath.Glob(filepath.Join(dir, "campaign-*.jsonl"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("want two distinct checkpoint files, got %v (err %v)", entries, err)
	}
}

// TestCacheAndCheckpointCompose pins the combined path killi-fleet wires:
// -cache plus -checkpoint on the same run, resumed with both, stays
// byte-identical and counts cached/resumed dies disjointly.
func TestCacheAndCheckpointCompose(t *testing.T) {
	const dies = 36
	ref, err := Run(context.Background(), stubConfig(dies, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := allOutputs(t, ref)

	cacheDir, ckptDir := t.TempDir(), t.TempDir()
	var calls atomic.Int64
	cfg := stubConfig(dies, 4)
	cfg.CacheDir = cacheDir
	cfg.CheckpointDir = ckptDir
	cfg.runSim = countingSim(&calls, int64((1+2*8)*(dies/3)))
	if _, err := Run(context.Background(), cfg); !errors.Is(err, errInjected) {
		t.Fatalf("interrupted run returned %v", err)
	}

	resumed := stubConfig(dies, 4)
	resumed.CacheDir = cacheDir
	resumed.CheckpointDir = ckptDir
	resumed.Resume = true
	res, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got := allOutputs(t, res); got != want {
		t.Error("cache+checkpoint resume diverged from cold output")
	}
	if res.ResumedDies == 0 {
		t.Error("nothing resumed from the checkpoint")
	}
	if res.ResumedDies+res.CachedDies > dies {
		t.Errorf("ResumedDies (%d) + CachedDies (%d) exceed %d dies", res.ResumedDies, res.CachedDies, dies)
	}
}
