package campaign

// Checkpoint files make a campaign restartable: with Config.CheckpointDir
// set, every die record is appended to a JSONL file in that directory as it
// is aggregated (strictly in die order, by the single aggregating
// goroutine), and a resumed run replays the file's valid prefix through the
// aggregator before dispatching the remainder. Because records are appended
// only after the in-order merge point, the file's contents are by
// construction dies 0..k-1 with no gaps — a killed run can at worst leave a
// torn final line, which resume detects and truncates.
//
// The file is named by the campaign's axes digest (the same canonical
// description that keys per-die cache records), so resuming with changed
// axes opens a different file instead of silently mixing incompatible
// records, and a header line pins the schema, digest, and record shape for
// a second line of defense.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"killi/internal/simcache"
)

// checkpointHeader is the file's first line.
type checkpointHeader struct {
	Type      string `json:"type"`
	Schema    int    `json:"schema"`
	Axes      string `json:"axes"`
	Workloads int    `json:"workloads"`
	Cells     int    `json:"cells"`
}

// checkpointPath names the campaign's checkpoint file inside dir. Exported
// logic lives here so killi-fleet tests can locate the file.
func checkpointPath(dir, axesKey string) string {
	return filepath.Join(dir, "campaign-"+axesKey[:16]+".jsonl")
}

// checkpoint is an open, append-position checkpoint file. Records are
// written with plain Write (no per-record fsync): surviving SIGKILL only
// requires the write() to have reached the kernel, and a torn tail from a
// crash mid-write is truncated on resume.
type checkpoint struct {
	f *os.File
}

// openCheckpoint opens (and with cfg.Resume, reads) the campaign's
// checkpoint. It returns the open file positioned for appending plus the
// contiguous prefix of valid records to replay (nil unless resuming). A
// missing, header-mismatched, or otherwise unusable file under -resume
// degrades to a fresh checkpoint — the same silently-recompute contract the
// result cache has — never to mixed records.
func openCheckpoint(cfg *Config, cells int) (*checkpoint, []simcache.DieRecord, error) {
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("campaign: checkpoint dir: %w", err)
	}
	axes := simcache.Key(cfg.axesDesc())
	path := checkpointPath(cfg.CheckpointDir, axes)
	if cfg.Resume {
		if recs, validLen, ok := readCheckpoint(path, axes, len(cfg.Workloads), cells); ok {
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, nil, fmt.Errorf("campaign: reopening checkpoint: %w", err)
			}
			// Drop the torn tail (if any) so appended records continue the
			// contiguous prefix.
			if err := f.Truncate(validLen); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("campaign: truncating checkpoint tail: %w", err)
			}
			if _, err := f.Seek(0, io.SeekEnd); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("campaign: seeking checkpoint: %w", err)
			}
			return &checkpoint{f: f}, recs, nil
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: creating checkpoint: %w", err)
	}
	h := checkpointHeader{Type: "campaign-checkpoint", Schema: simcache.SchemaVersion, Axes: axes, Workloads: len(cfg.Workloads), Cells: cells}
	line, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: checkpoint header: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: checkpoint header: %w", err)
	}
	return &checkpoint{f: f}, nil, nil
}

// readCheckpoint parses the file's valid prefix: a matching header followed
// by records for dies 0, 1, 2, ... each with the expected shape. It stops at
// the first missing newline (torn tail), parse failure, out-of-order die,
// or shape mismatch, returning everything before it and the byte length of
// the valid prefix. ok is false when the file is unusable entirely (absent,
// or its header doesn't match this campaign).
func readCheckpoint(path, axes string, workloads, cells int) (recs []simcache.DieRecord, validLen int64, ok bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	first := true
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			break // torn tail from a killed writer
		}
		line := buf[:nl]
		if first {
			var h checkpointHeader
			if json.Unmarshal(line, &h) != nil ||
				h.Type != "campaign-checkpoint" ||
				h.Schema != simcache.SchemaVersion ||
				h.Axes != axes ||
				h.Workloads != workloads ||
				h.Cells != cells {
				return nil, 0, false
			}
			first = false
		} else {
			var r simcache.DieRecord
			if json.Unmarshal(line, &r) != nil || r.Die != len(recs) || !r.Shaped(workloads, cells) {
				break
			}
			recs = append(recs, r)
		}
		validLen += int64(nl + 1)
		buf = buf[nl+1:]
	}
	if first {
		return nil, 0, false
	}
	return recs, validLen, true
}

// append writes one die record as a line. Called only from the aggregating
// goroutine, in die order.
func (c *checkpoint) append(rec *dieRecord) error {
	line, err := json.Marshal(rec.toCache())
	if err != nil {
		return fmt.Errorf("campaign: checkpoint record: %w", err)
	}
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: checkpoint record: %w", err)
	}
	return nil
}

// close syncs and closes the file. Idempotent so error paths can call it
// unconditionally.
func (c *checkpoint) close() error {
	if c.f == nil {
		return nil
	}
	f := c.f
	c.f = nil
	serr := f.Sync()
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("campaign: closing checkpoint: %w", serr)
	}
	return nil
}
