package campaign

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"killi/internal/experiments"
	"killi/internal/faultmodel"
	"killi/internal/gpu"
	"killi/internal/protection"
	"killi/internal/workload"
)

// stubFaults skips the 32K-line fault-map build; stub simulators never read
// the views. ballast, when positive, allocates that many bytes per die so a
// pipeline bug that retained per-die state would blow the soak-test heap
// ceiling instead of hiding behind tiny records.
func stubFaults(ballast int) func(gpu.Config, []float64) ([]*gpu.SharedFaults, *gpu.SharedFaults) {
	return func(_ gpu.Config, voltages []float64) ([]*gpu.SharedFaults, *gpu.SharedFaults) {
		if ballast > 0 {
			_ = make([]byte, ballast)
		}
		return make([]*gpu.SharedFaults, len(voltages)), &gpu.SharedFaults{}
	}
}

// stubSim returns a deterministic pure function of (die seed, voltage):
// cycles grow as voltage drops, with die-to-die spread, so yields, quantiles
// and Vmin all take non-trivial values. The baseline run (voltage 1.0) lands
// near 100000 cycles.
func stubSim() simFunc {
	return func(_ context.Context, g gpu.Config, _ protection.Factory, _ *gpu.SharedFaults, _ *workload.TraceSet, _ int) (gpu.Result, error) {
		h := g.FaultSeed ^ math.Float64bits(g.Voltage)
		h ^= h >> 29
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 32
		cycles := 100000 + h%512
		if g.Voltage < 1.0 {
			// Low voltage hurts: up to ~40% slowdown at the bottom of the
			// grid, scaled by a per-(die,voltage) factor in [0, 2).
			penalty := (1.0 - g.Voltage) * float64(h%2048) / 1024
			cycles += uint64(float64(cycles) * penalty)
		}
		return gpu.Result{
			Cycles:       cycles,
			Instructions: 1000 * 1000,
			L2Misses:     h % 997,
			L2Accesses:   100000,
			MemAccesses:  h % 997,
		}, nil
	}
}

func stubConfig(dies, parallelism int) Config {
	return Config{
		Workloads:   []string{"xsbench"},
		Schemes:     []string{"killi-1:64", "msecc"},
		Voltages:    []float64{0.550, 0.575, 0.600, 0.625, 0.650, 0.675, 0.700, 0.725},
		Dies:        dies,
		Seed:        7,
		Parallelism: parallelism,
		// Tiny traces: the stub ignores them, but Run still generates them.
		RequestsPerCU: 16,
		runSim:        stubSim(),
		dieFaults:     stubFaults(0),
	}
}

// csvOf renders the determinism artifact: every simulation-derived float at
// %.17g, host-dependent timing excluded.
func csvOf(t *testing.T, r *Result) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return buf.String()
}

// TestParallelismInvariance pins the headline determinism property: the same
// campaign seed produces bit-identical aggregates (every float compared at
// %.17g) at parallelism 1, at several worker counts, and under deliberately
// tight and generous reorder windows.
func TestParallelismInvariance(t *testing.T) {
	ref, err := Run(context.Background(), stubConfig(300, 1))
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	refCSV := csvOf(t, ref)

	for _, tc := range []struct{ parallel, window int }{
		{2, 0}, {4, 0}, {16, 0},
		{4, 1},  // tightest legal window: fully serialized dispatch
		{4, 64}, // window far wider than needed
	} {
		cfg := stubConfig(300, tc.parallel)
		cfg.Window = tc.window
		got, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("parallel=%d window=%d: %v", tc.parallel, tc.window, err)
		}
		if gotCSV := csvOf(t, got); gotCSV != refCSV {
			t.Errorf("parallel=%d window=%d: CSV differs from serial run", tc.parallel, tc.window)
		}
		// The structural fields must agree too, not just the formatted rows.
		got.ElapsedSeconds, got.DiesPerSecond = 0, 0
		refCopy := *ref
		refCopy.ElapsedSeconds, refCopy.DiesPerSecond = 0, 0
		if !reflect.DeepEqual(got, &refCopy) {
			t.Errorf("parallel=%d window=%d: Result struct differs from serial run", tc.parallel, tc.window)
		}
	}
}

// TestProgressInOrder pins the Progress contract: called once per die, in
// die order, regardless of completion order.
func TestProgressInOrder(t *testing.T) {
	cfg := stubConfig(64, 8)
	var calls []int
	cfg.Progress = func(p ProgressInfo) {
		if p.Total != 64 {
			t.Errorf("Progress total = %d, want 64", p.Total)
		}
		calls = append(calls, p.Done)
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(calls) != 64 {
		t.Fatalf("Progress called %d times, want 64", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("Progress call %d reported done=%d, want %d", i, d, i+1)
		}
	}
}

// TestVminClassification drives the Vmin scan with hand-built pass/fail
// patterns: Vmin is the lowest grid voltage from which the die passes at
// every higher grid point too, a non-monotone die gets the top of its
// passing suffix, and an everywhere-failing die lands in FailFrac.
func TestVminClassification(t *testing.T) {
	grid := []float64{0.60, 0.65, 0.70}
	// Per die, per grid index: does the cell pass?
	pattern := [][]bool{
		{true, true, true},    // Vmin 0.60
		{false, true, true},   // Vmin 0.65
		{false, false, true},  // Vmin 0.70
		{true, false, true},   // fluke pass at 0.60 must not count: Vmin 0.70
		{false, false, false}, // fails everywhere
	}
	seedToDie := make(map[uint64]int)
	for d := range pattern {
		seedToDie[faultmodel.DieSeed(9, d)] = d
	}
	cfg := Config{
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"none"},
		Voltages:      grid,
		Dies:          len(pattern),
		Seed:          9,
		RequestsPerCU: 16,
		dieFaults:     stubFaults(0),
		runSim: func(_ context.Context, g gpu.Config, _ protection.Factory, _ *gpu.SharedFaults, _ *workload.TraceSet, _ int) (gpu.Result, error) {
			if g.Voltage == 1.0 {
				return gpu.Result{Cycles: 1000, Instructions: 1000}, nil
			}
			die := seedToDie[g.FaultSeed]
			vi := -1
			for i, v := range grid {
				if v == g.Voltage {
					vi = i
				}
			}
			if vi < 0 {
				t.Errorf("unexpected voltage %v", g.Voltage)
			}
			cycles := uint64(1050) // norm 1.05: passes at the default 1.10
			if !pattern[die][vi] {
				cycles = 2000 // norm 2.0: fails
			}
			return gpu.Result{Cycles: cycles, Instructions: 1000}, nil
		},
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cdf := res.Vmin[0]
	wantCounts := []int64{1, 1, 2}
	for i, p := range cdf.Points {
		if p.Count != wantCounts[i] {
			t.Errorf("Vmin count at %.2f = %d, want %d", p.Voltage, p.Count, wantCounts[i])
		}
	}
	if got, want := cdf.Points[2].CumFrac, 0.8; got != want {
		t.Errorf("CumFrac at grid max = %v, want %v", got, want)
	}
	if got, want := cdf.FailFrac, 0.2; got != want {
		t.Errorf("FailFrac = %v, want %v", got, want)
	}
	if got, want := cdf.MeanVmin, (0.60+0.65+0.70+0.70)/4; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanVmin = %v, want %v", got, want)
	}
	// Yield at the grid maximum: dies 0..3 pass, die 4 fails.
	if got := res.YieldAt("xsbench", "none", 0.70); got != 0.8 {
		t.Errorf("YieldAt(0.70) = %v, want 0.8", got)
	}
	if got := res.YieldAt("xsbench", "none", 0.60); got != 0.4 {
		t.Errorf("YieldAt(0.60) = %v, want 0.4", got)
	}
	if !math.IsNaN(res.YieldAt("xsbench", "none", 0.99)) {
		t.Errorf("YieldAt(off-grid) should be NaN")
	}
}

// TestBoundedMemorySoak runs the ISSUE's acceptance campaign shape — 10,000
// dies x 1 workload x 2 schemes x 8 voltages — through the full parallel
// pipeline with 64 KiB of per-die ballast and asserts the heap never grows
// past a fixed ceiling. Retaining per-die state (records outside the reorder
// window, fault views, results) would need hundreds of megabytes; streaming
// aggregation needs a few.
func TestBoundedMemorySoak(t *testing.T) {
	const dies = 10000
	cfg := stubConfig(dies, 8)
	cfg.dieFaults = stubFaults(64 << 10)

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	start := ms.HeapAlloc
	// Generous ceiling: a constant-factor bound, far below the ~640 MiB
	// that retaining 10k dies x 64 KiB ballast would need (never mind 10k
	// real fault maps), but far above window-bounded steady state.
	ceiling := start + 96<<20

	var peak atomic.Uint64
	var checks atomic.Int64
	cfg.Progress = func(p ProgressInfo) {
		if p.Done%512 != 0 && p.Done != p.Total {
			return
		}
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak.Load() {
			peak.Store(m.HeapAlloc)
		}
		checks.Add(1)
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dies != dies || res.Cells[0].Dies != dies {
		t.Fatalf("aggregated %d/%d dies", res.Cells[0].Dies, res.Dies)
	}
	if checks.Load() < dies/512 {
		t.Fatalf("heap sampled %d times, want >= %d", checks.Load(), dies/512)
	}
	if p := peak.Load(); p > ceiling {
		t.Errorf("peak HeapAlloc %d MiB exceeds ceiling %d MiB (start %d MiB): per-die state is accumulating",
			p>>20, ceiling>>20, start>>20)
	}
}

// TestRealCampaignMatchesRunOne cross-checks the whole campaign path against
// the established single-run entry point: a one-die campaign's cells must
// reproduce experiments.RunOne bit-for-bit when RunOne is handed the
// DieSeed-derived fault seed and the grid-minimum reference voltage.
func TestRealCampaignMatchesRunOne(t *testing.T) {
	grid := []float64{0.625, 0.650}
	const seed, reqs = 11, 300
	cfg := Config{
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"killi-1:64"},
		Voltages:      grid,
		Dies:          1,
		Seed:          seed,
		RequestsPerCU: reqs,
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	g := gpu.DefaultConfig()
	g.FaultSeed = faultmodel.DieSeed(seed, 0)
	g.RefVoltage = grid[0]
	ecfg := experiments.Config{Seed: seed, RequestsPerCU: reqs, GPU: &g}
	noneF, err := experiments.SchemeFactoryByName("none")
	if err != nil {
		t.Fatal(err)
	}
	killiF, err := experiments.SchemeFactoryByName("killi-1:64")
	if err != nil {
		t.Fatal(err)
	}
	base, err := experiments.RunOne(context.Background(), ecfg, "xsbench", noneF, 1.0)
	if err != nil {
		t.Fatalf("RunOne baseline: %v", err)
	}
	if got, want := res.Baselines[0].CyclesMean, float64(base.Cycles); got != want {
		t.Errorf("baseline cycles = %v, want %v", got, want)
	}
	for vi, v := range grid {
		lv, err := experiments.RunOne(context.Background(), ecfg, "xsbench", killiF, v)
		if err != nil {
			t.Fatalf("RunOne at %.3f: %v", v, err)
		}
		c := res.Cells[vi]
		if got, want := c.NormMean, float64(lv.Cycles)/float64(base.Cycles); got != want {
			t.Errorf("NormMean at %.3f = %v, want %v", v, got, want)
		}
		if got, want := c.MPKIMean, lv.MPKI(); got != want {
			t.Errorf("MPKIMean at %.3f = %v, want %v", v, got, want)
		}
		if got, want := c.DisabledMean, float64(lv.DisabledLines); got != want {
			t.Errorf("DisabledMean at %.3f = %v, want %v", v, got, want)
		}
	}
}

// TestRealCampaignParallelismInvariance is the invariance test over the real
// simulator (tiny: 3 dies, one scheme, two grid points).
func TestRealCampaignParallelismInvariance(t *testing.T) {
	cfg := Config{
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"killi-1:64"},
		Voltages:      []float64{0.625, 0.650},
		Dies:          3,
		Seed:          5,
		RequestsPerCU: 200,
	}
	serial, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	cfg.Parallelism = 3
	par, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if a, b := csvOf(t, serial), csvOf(t, par); a != b {
		t.Errorf("real campaign CSV differs between parallelism 1 and 3:\n%s\nvs\n%s", a, b)
	}
}

// TestRunErrors covers validation and failure propagation.
func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("Dies=0 should fail validation")
	}
	bad := []Config{
		{Dies: 1, Workloads: []string{"no-such-workload"}},
		{Dies: 1, Schemes: []string{"no-such-scheme"}},
		{Dies: 1, Voltages: []float64{0.6, 0.6}},
		{Dies: 1, Voltages: []float64{-0.1}},
		{Dies: 1, PassThreshold: 0.9},
		{Dies: 1, RequestsPerCU: -4},
		{Dies: 1, WarmupKernels: -1},
		{Dies: 1, Window: -2},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("bad config %d should fail validation", i)
		}
	}

	// A simulation error surfaces from the parallel path.
	boom := errors.New("boom")
	cfg := stubConfig(32, 4)
	inner := cfg.runSim
	cfg.runSim = func(ctx context.Context, g gpu.Config, f protection.Factory, sf *gpu.SharedFaults, ts *workload.TraceSet, sh int) (gpu.Result, error) {
		if g.FaultSeed == faultmodel.DieSeed(cfg.Seed, 17) {
			return gpu.Result{}, boom
		}
		return inner(ctx, g, f, sf, ts, sh)
	}
	if _, err := Run(context.Background(), cfg); !errors.Is(err, boom) {
		t.Errorf("parallel run error = %v, want %v", err, boom)
	}

	// Cancellation mid-campaign returns ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	cfg = stubConfig(512, 4)
	inner = cfg.runSim
	cfg.runSim = func(ctx context.Context, g gpu.Config, f protection.Factory, sf *gpu.SharedFaults, ts *workload.TraceSet, sh int) (gpu.Result, error) {
		if n.Add(1) == 100 {
			cancel()
		}
		return inner(ctx, g, f, sf, ts, sh)
	}
	if _, err := Run(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run error = %v, want context.Canceled", err)
	}
}

// TestOutputFormats smoke-tests the three renderers over one stub result.
func TestOutputFormats(t *testing.T) {
	res, err := Run(context.Background(), stubConfig(40, 1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var table, csv, jsonl bytes.Buffer
	if err := res.Write(&table, FormatTable); err != nil {
		t.Fatalf("table: %v", err)
	}
	if err := res.Write(&csv, FormatCSV); err != nil {
		t.Fatalf("csv: %v", err)
	}
	if err := res.Write(&jsonl, FormatJSONL); err != nil {
		t.Fatalf("jsonl: %v", err)
	}
	if err := res.Write(&table, "yaml"); err == nil {
		t.Error("unknown format should error")
	}
	if !strings.Contains(table.String(), "Vmin CDF") {
		t.Errorf("table output missing Vmin section:\n%s", table.String())
	}
	wantRows := 1 + 16 /*cells*/ + 16 /*vmin*/ + 2 /*summaries*/
	if got := strings.Count(csv.String(), "\n"); got != wantRows {
		t.Errorf("CSV has %d rows, want %d", got, wantRows)
	}
	for _, typ := range []string{`"type":"campaign"`, `"type":"baseline"`, `"type":"cell"`, `"type":"vmin"`} {
		if !strings.Contains(jsonl.String(), typ) {
			t.Errorf("JSONL missing %s row", typ)
		}
	}
	// NaN never reaches the encoders: yields of 0 and empty sketches must
	// still produce valid JSON.
	if strings.Contains(jsonl.String(), "NaN") {
		t.Error("JSONL contains NaN")
	}
}

// TestFaultClassAxis pins the class dimension: the axis defaults to
// {"persistent"}, specs canonicalize through ParseClassSpec (so two
// spellings of the same mix coalesce), duplicates and malformed specs fail
// validation, and a real two-class campaign produces per-class cells and
// Vmin rows whose persistent slice is bit-identical to a campaign without
// the axis.
func TestFaultClassAxis(t *testing.T) {
	if cfg, err := (Config{Dies: 1}).Normalized(); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(cfg.FaultClasses, []string{"persistent"}) {
		t.Fatalf("default FaultClasses = %v", cfg.FaultClasses)
	}
	if cfg, err := (Config{Dies: 1, FaultClasses: []string{"", "mixed:i=0.50@0.300"}}).Normalized(); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(cfg.FaultClasses, []string{"persistent", "mixed:i=0.5@0.3"}) {
		t.Fatalf("canonical FaultClasses = %v", cfg.FaultClasses)
	}
	if _, err := (Config{Dies: 1, FaultClasses: []string{"persistent", ""}}).Normalized(); err == nil {
		t.Error("duplicate class specs (post-canonicalization) should fail validation")
	}
	if _, err := (Config{Dies: 1, FaultClasses: []string{"mixed:zzz"}}).Normalized(); err == nil {
		t.Error("malformed class spec should fail validation")
	}

	base := Config{
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"killi-1:64"},
		Voltages:      []float64{0.625, 0.650},
		Dies:          2,
		Seed:          5,
		RequestsPerCU: 200,
	}
	ref, err := Run(context.Background(), base)
	if err != nil {
		t.Fatalf("persistent-only campaign: %v", err)
	}
	withAxis := base
	withAxis.FaultClasses = []string{"persistent", "mixed:i=0.4@0.3,t=2e-08"}
	res, err := Run(context.Background(), withAxis)
	if err != nil {
		t.Fatalf("two-class campaign: %v", err)
	}
	if got, want := len(res.Cells), 2*len(ref.Cells); got != want {
		t.Fatalf("two-class campaign has %d cells, want %d", got, want)
	}
	if got, want := len(res.Vmin), 2*len(ref.Vmin); got != want {
		t.Fatalf("two-class campaign has %d Vmin rows, want %d", got, want)
	}
	var persistent, mixed []Cell
	for _, c := range res.Cells {
		switch c.Classes {
		case "persistent":
			persistent = append(persistent, c)
		case "mixed:i=0.4@0.3,t=2e-08":
			mixed = append(mixed, c)
		default:
			t.Fatalf("cell with unexpected class %q", c.Classes)
		}
	}
	for i, c := range persistent {
		want := ref.Cells[i]
		want.Classes = "persistent"
		if c != want {
			t.Errorf("persistent cell %d differs with the axis present:\n got %+v\nwant %+v", i, c, want)
		}
	}
	// The mixed population must actually change the simulation and feed the
	// new aggregates: at least one cell differs, and the misclassification
	// means are live (killi schemes always classify some lines; the
	// intermittent mix makes false trust/disable plausible but the pinned
	// assertion is just that the plumbing reports something somewhere).
	differs := false
	for i := range mixed {
		if mixed[i].NormMean != persistent[i].NormMean || mixed[i].DisabledMean != persistent[i].DisabledMean ||
			mixed[i].SDCMean != persistent[i].SDCMean || mixed[i].FalseDisableMean != persistent[i].FalseDisableMean ||
			mixed[i].FalseTrustMean != persistent[i].FalseTrustMean {
			differs = true
		}
	}
	if !differs {
		t.Error("mixed-class cells are identical to persistent cells; the class axis is not reaching the simulator")
	}
}

// TestFaultClassParallelismInvariance extends the campaign's bit-identity
// contract to a mixed fault population over the real simulator.
func TestFaultClassParallelismInvariance(t *testing.T) {
	cfg := Config{
		Workloads:     []string{"xsbench"},
		Schemes:       []string{"killi-1:64"},
		FaultClasses:  []string{"mixed:i=0.3@0.5,t=2e-08"},
		Voltages:      []float64{0.625, 0.650},
		Dies:          3,
		Seed:          5,
		RequestsPerCU: 200,
	}
	serial, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	cfg.Parallelism = 3
	par, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if a, b := csvOf(t, serial), csvOf(t, par); a != b {
		t.Errorf("mixed-class campaign CSV differs between parallelism 1 and 3:\n%s\nvs\n%s", a, b)
	}
}
