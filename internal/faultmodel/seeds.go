package faultmodel

// DieSeed derives the fault-map seed for one die of a Monte Carlo campaign
// from the campaign's base seed. Every die of a fleet gets its own fault
// population (persistent or classed — ClassSeed derives the class streams
// from the same per-die seed), so the seeds must produce pairwise
// independent xrand streams: the derivation is an affine jump in the Weyl
// sequence splitmix64 is built on (the golden-ratio increment is odd, so
// die → x is injective for any base) followed by two rounds of the
// splitmix64 finalizer, the same avalanche construction xrand.New seeds
// xoshiro with. Die 0 deliberately does NOT reuse the base seed unchanged:
// a campaign's die 0 must not alias the single-sample experiments run at
// Seed == base (the constant below domain-separates them).
//
// The function is pure integer arithmetic — no floats, no map iteration,
// no library calls — so its values are stable across Go versions and
// architectures; TestDieSeedGolden pins them, because campaign
// reproducibility depends on this exact sequence.
func DieSeed(base uint64, die int) uint64 {
	x := base ^ 0x6c62272e07bb0142 // campaign domain separator
	x += (uint64(die) + 1) * 0x9e3779b97f4a7c15
	return mix64(mix64(x))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
