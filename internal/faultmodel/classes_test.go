package faultmodel

import (
	"math"
	"testing"

	"killi/internal/xrand"
)

func TestParseClassSpecRoundTrip(t *testing.T) {
	for _, s := range ClassExamples() {
		spec, err := ParseClassSpec(s)
		if err != nil {
			t.Fatalf("documented example %q does not parse: %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("ParseClassSpec(%q).String() = %q, want canonical round-trip", s, got)
		}
		again, err := ParseClassSpec(spec.String())
		if err != nil || again != spec {
			t.Errorf("String/Parse round-trip of %q changed the spec: %+v vs %+v (%v)", s, spec, again, err)
		}
	}
}

func TestParseClassSpecDefaults(t *testing.T) {
	for _, s := range []string{"", "persistent", "  persistent  "} {
		spec, err := ParseClassSpec(s)
		if err != nil || !spec.IsZero() {
			t.Errorf("ParseClassSpec(%q) = %+v, %v; want zero spec", s, spec, err)
		}
	}
}

func TestParseClassSpecRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"mixed:", "mixed:i=0.3", "mixed:i=@0.5", "mixed:i=0.3@",
		"mixed:x=0.3@0.5", "mixed:i=0.3@0.5,i=0.2@0.1", "mixed:i=1.5@0.5",
		"mixed:i=0.3@1.5", "mixed:i=0@0.5", "mixed:i=0.3@0",
		"mixed:t=0", "mixed:t=-1e-9", "mixed:t=2", "mixed:t=NaN",
		"mixed:i=0.7@0.5,a=0.7@0.1", "Mixed:i=0.3@0.5", "intermittent",
		"mixed:i=0.3@0.5,", "persistent,mixed:t=1e-9",
	} {
		if spec, err := ParseClassSpec(s); err == nil {
			t.Errorf("ParseClassSpec(%q) = %+v; want error", s, spec)
		}
	}
}

// TestClassOfDeterministicPartition pins that class assignment is a pure
// function (stable across calls), respects the configured fractions on a
// large sample, and never returns Transient.
func TestClassOfDeterministicPartition(t *testing.T) {
	spec := ClassSpec{IntermittentFrac: 0.3, IntermittentProb: 0.5, AgingFrac: 0.2, AgingRamp: 0.1}
	seed := ClassSeed(7)
	var counts [3]int
	const n = 20000
	for i := 0; i < n; i++ {
		c := ClassOf(seed, i, i%512, spec)
		if c == Transient {
			t.Fatalf("ClassOf returned Transient for line %d", i)
		}
		if again := ClassOf(seed, i, i%512, spec); again != c {
			t.Fatalf("ClassOf not deterministic at line %d: %v then %v", i, c, again)
		}
		counts[c]++
	}
	for c, want := range map[FaultClass]float64{Intermittent: 0.3, Aging: 0.2, Persistent: 0.5} {
		got := float64(counts[c]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("class %v fraction = %.3f, want ~%.2f", c, got, want)
		}
	}
}

// TestPersistentSpecClassesEverythingPersistent is the classed ≡ legacy
// half of the invariance suite at the model layer: with a zero spec (or a
// transient-only spec, which labels no sampled cell), every sampled fault
// classes as Persistent, and the Map underneath is the very same sampling
// stream — so a classed persistent-only population is the legacy map.
func TestPersistentSpecClassesEverythingPersistent(t *testing.T) {
	fm := NewMap(xrand.New(3), Model{}, 2048, 512, 0.55, 1.0)
	for _, spec := range []ClassSpec{{}, {TransientRate: 1e-8}} {
		counts := ClassCounts(fm, ClassSeed(3), spec)
		if counts[Intermittent] != 0 || counts[Aging] != 0 {
			t.Errorf("spec %v assigned non-persistent classes: %v", spec, counts)
		}
		if counts[Persistent] == 0 {
			t.Errorf("spec %v found no faults at all", spec)
		}
	}
}

// TestActiveInEpochStream pins the activation stream's contract: pure in
// its inputs, epoch-sensitive, probability-respecting, and clamped at the
// ends.
func TestActiveInEpochStream(t *testing.T) {
	seed := ClassSeed(11)
	if ActiveInEpoch(seed, 5, 9, 3, 0) {
		t.Error("p=0 must never activate")
	}
	if !ActiveInEpoch(seed, 5, 9, 3, 1) {
		t.Error("p=1 must always activate")
	}
	const epochs = 10000
	active := 0
	for e := uint64(0); e < epochs; e++ {
		a := ActiveInEpoch(seed, 5, 9, e, 0.25)
		if a != ActiveInEpoch(seed, 5, 9, e, 0.25) {
			t.Fatalf("ActiveInEpoch not deterministic at epoch %d", e)
		}
		if a {
			active++
		}
	}
	if got := float64(active) / epochs; math.Abs(got-0.25) > 0.02 {
		t.Errorf("activation duty cycle = %.3f, want ~0.25", got)
	}
	// Distinct cells and distinct epochs must not blink in lockstep.
	same := 0
	for e := uint64(0); e < 1000; e++ {
		if ActiveInEpoch(seed, 5, 9, e, 0.5) == ActiveInEpoch(seed, 6, 9, e, 0.5) {
			same++
		}
	}
	if same > 600 || same < 400 {
		t.Errorf("neighbouring cells agree in %d/1000 epochs; streams look correlated", same)
	}
}

// TestAgingRampMonotone pins the aging contract: activation probability is
// a monotone ramp that starts at zero and saturates at one, and the aging
// stream is domain-separated from the intermittent stream.
func TestAgingRampMonotone(t *testing.T) {
	spec := ClassSpec{AgingFrac: 1, AgingRamp: 0.01}
	prev := -1.0
	for e := uint64(0); e < 200; e++ {
		p := spec.AgingProb(e)
		if p < prev {
			t.Fatalf("AgingProb not monotone at epoch %d: %g < %g", e, p, prev)
		}
		prev = p
	}
	if spec.AgingProb(0) != 0 {
		t.Error("a fresh device (epoch 0) must see no aging faults")
	}
	if spec.AgingProb(100) != 1 || spec.AgingProb(1000) != 1 {
		t.Error("ramp must saturate at 1")
	}
	seed := ClassSeed(11)
	// At the saturated end, aging faults are always active.
	if !AgingActiveInEpoch(seed, 1, 2, 500, spec) {
		t.Error("saturated aging fault must be active")
	}
	// Mid-ramp, the duty cycle tracks the ramp and differs from the
	// intermittent stream at the same probability.
	agree := 0
	for line := 0; line < 1000; line++ {
		if AgingActiveInEpoch(seed, line, 3, 50, spec) == ActiveInEpoch(seed, line, 3, 50, 0.5) {
			agree++
		}
	}
	if agree > 600 || agree < 400 {
		t.Errorf("aging and intermittent streams agree on %d/1000 cells; want independent", agree)
	}
}

func TestFaultClassString(t *testing.T) {
	want := map[FaultClass]string{
		Persistent: "persistent", Intermittent: "intermittent",
		Aging: "aging", Transient: "transient",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if FaultClass(9).String() != "FaultClass(9)" {
		t.Errorf("unknown class renders %q", FaultClass(9).String())
	}
}
