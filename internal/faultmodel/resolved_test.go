package faultmodel

import (
	"testing"

	"killi/internal/xrand"
)

// TestResolveMatchesActiveFaults checks the pre-resolved view against the
// per-query API it replaces on the simulator's hot path: at every voltage,
// line faults, counts, and the 0/1/2+ class must agree exactly with
// ActiveFaults on the packed representation.
func TestResolveMatchesActiveFaults(t *testing.T) {
	fm := NewMap(xrand.New(17), Default(), 3000, 512, 0.55, 1.0)
	for _, v := range []float64{0.5, 0.55, 0.575, 0.6, 0.625, 0.7, 1.0} {
		r := fm.Resolve(v)
		if r.Voltage() != v {
			t.Fatalf("Resolve(%v).Voltage() = %v", v, r.Voltage())
		}
		if r.Lines() != fm.Lines() {
			t.Fatalf("Resolve(%v) covers %d lines, map has %d", v, r.Lines(), fm.Lines())
		}
		for line := 0; line < fm.Lines(); line++ {
			want := fm.ActiveFaults(line, v)
			got := r.LineFaults(line)
			if len(got) != len(want) {
				t.Fatalf("v=%v line %d: resolved %d faults, ActiveFaults %d",
					v, line, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("v=%v line %d fault %d differs: %+v vs %+v",
						v, line, i, got[i], want[i])
				}
			}
			if r.LineCount(line) != len(want) {
				t.Fatalf("v=%v line %d: LineCount %d, want %d",
					v, line, r.LineCount(line), len(want))
			}
			wantClass := uint8(len(want))
			if wantClass > 2 {
				wantClass = 2
			}
			if r.Class(line) != wantClass {
				t.Fatalf("v=%v line %d: class %d, want %d",
					v, line, r.Class(line), wantClass)
			}
		}
	}
}

// TestResolveMonotoneInVoltage asserts the persistence property on the
// resolved views directly: lowering the voltage only ever adds faults, and
// every fault active at the higher voltage stays active at the lower one.
func TestResolveMonotoneInVoltage(t *testing.T) {
	fm := NewMap(xrand.New(23), Default(), 3000, 512, 0.55, 1.0)
	voltages := []float64{1.0, 0.7, 0.625, 0.6, 0.575, 0.55, 0.5}
	prev := fm.Resolve(voltages[0])
	for _, v := range voltages[1:] {
		cur := fm.Resolve(v)
		for line := 0; line < fm.Lines(); line++ {
			hi, lo := prev.LineFaults(line), cur.LineFaults(line)
			if len(lo) < len(hi) {
				t.Fatalf("line %d: %d faults at %v but %d at higher voltage",
					line, len(lo), v, len(hi))
			}
			loBits := map[int]bool{}
			for _, f := range lo {
				loBits[f.Bit] = true
			}
			for _, f := range hi {
				if !loBits[f.Bit] {
					t.Fatalf("line %d: bit %d active at the higher voltage only", line, f.Bit)
				}
			}
		}
		prev = cur
	}
}

// TestResolveSharedViewsIndependent checks that views resolved at
// different voltages from one map do not interfere: resolving a second
// view must not perturb an existing one (they may alias the map's packed
// storage, never each other's filtered copies).
func TestResolveSharedViewsIndependent(t *testing.T) {
	fm := NewMap(xrand.New(29), Default(), 500, 512, 0.55, 1.0)
	a := fm.Resolve(0.575)
	before := make([]int, fm.Lines())
	for line := range before {
		before[line] = a.LineCount(line)
	}
	_ = fm.Resolve(0.7)
	_ = fm.Resolve(0.5)
	for line := 0; line < fm.Lines(); line++ {
		if a.LineCount(line) != before[line] {
			t.Fatalf("line %d: resolving other voltages changed an existing view", line)
		}
	}
}
