package faultmodel

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file extends the sampled stuck-at population with fault *classes*:
// how a sampled fault manifests over time. The persistent-only Map/Resolved
// pipeline is untouched — classes are a pure, stateless labelling layered on
// top of it, so a zero ClassSpec is bit-identical to the legacy model.
//
// Determinism contract: every classed decision is a pure hash of
// (seed, line, cell[, epoch]) — never a consumed RNG stream — so results
// are bit-identical at any engine shard count, sweep parallelism, or
// evaluation order. The per-die seed flows in through ClassSeed(FaultSeed),
// and FaultSeed is already domain-separated per die by DieSeed.

// FaultClass labels how a sampled fault manifests over time.
type FaultClass uint8

const (
	// Persistent faults are the paper's model: active at every access
	// (at voltages that activate them).
	Persistent FaultClass = iota
	// Intermittent faults blink: during each fault epoch the cell is
	// stuck with probability IntermittentProb, decided by a deterministic
	// per-(seed, line, cell, epoch) hash.
	Intermittent
	// Aging faults ramp in: the per-epoch activation probability grows as
	// min(1, AgingRamp x epoch), so a young device sees nothing and an old
	// one sees a persistent fault.
	Aging
	// Transient labels strike events, not sampled cells: Poisson-rate
	// single-cell flips that clear on rewrite. ClassOf never returns it.
	Transient
)

// String returns the class name used in reports and breakdown tables.
func (c FaultClass) String() string {
	switch c {
	case Persistent:
		return "persistent"
	case Intermittent:
		return "intermittent"
	case Aging:
		return "aging"
	case Transient:
		return "transient"
	}
	return fmt.Sprintf("FaultClass(%d)", uint8(c))
}

// ClassSpec parameterizes a classed fault population. The zero value means
// every sampled fault is persistent and no strike process runs — the
// paper's model, and the special case every pre-existing golden pins.
type ClassSpec struct {
	// IntermittentFrac is the fraction of sampled faults (selected by a
	// deterministic per-(line, cell) hash) that are intermittent rather
	// than persistent; each is active during a fault epoch independently
	// with probability IntermittentProb.
	IntermittentFrac float64
	IntermittentProb float64
	// AgingFrac of sampled faults start inactive and ramp in: during fault
	// epoch e such a fault is active with probability min(1, AgingRamp*e),
	// a monotone per-epoch activation ramp.
	AgingFrac float64
	AgingRamp float64
	// TransientRate is the Poisson strike rate in expected single-cell
	// flips per line per cycle. Strikes corrupt the stored payload once
	// and clear on the next write to the line.
	TransientRate float64
}

// IsZero reports whether the spec is the pure-persistent special case.
func (s ClassSpec) IsZero() bool { return s == ClassSpec{} }

// gf renders a float in its shortest exact round-trip form, so
// ParseClassSpec(spec.String()) reproduces the spec bit-for-bit.
func gf(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// String renders the spec in the canonical ClassSyntax form: "persistent"
// for the zero value, otherwise "mixed:" with the present parts in i,a,t
// order and shortest-round-trip floats.
func (s ClassSpec) String() string {
	if s.IsZero() {
		return "persistent"
	}
	var parts []string
	if s.IntermittentFrac > 0 {
		parts = append(parts, "i="+gf(s.IntermittentFrac)+"@"+gf(s.IntermittentProb))
	}
	if s.AgingFrac > 0 {
		parts = append(parts, "a="+gf(s.AgingFrac)+"@"+gf(s.AgingRamp))
	}
	if s.TransientRate > 0 {
		parts = append(parts, "t="+gf(s.TransientRate))
	}
	return "mixed:" + strings.Join(parts, ",")
}

// ClassSyntax returns the fault-class grammar accepted by ParseClassSpec.
// It is the single source of truth: CLI help text quotes it and
// TestFaultClassSyntaxSingleSource keeps README.md quoting it verbatim.
func ClassSyntax() string {
	return "persistent | mixed:[i=<frac>@<prob>][,a=<frac>@<ramp>][,t=<rate>]"
}

// ClassExamples returns one parsable example per grammar form, covering
// each mixed part alone and all three together.
func ClassExamples() []string {
	return []string{
		"persistent",
		"mixed:i=0.3@0.5",
		"mixed:a=0.2@0.25",
		"mixed:t=2e-08",
		"mixed:i=0.2@0.25,a=0.1@0.05,t=1e-08",
	}
}

// ParseClassSpec parses the ClassSyntax grammar. The empty string and
// "persistent" both mean the pure-persistent zero spec. Parsing is strict:
// unknown or duplicate parts, out-of-range values, and a "mixed:" spec
// that selects no non-persistent behaviour are all errors, so a typo fails
// fast instead of silently running the persistent model.
func ParseClassSpec(s string) (ClassSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "persistent" {
		return ClassSpec{}, nil
	}
	body, ok := strings.CutPrefix(s, "mixed:")
	if !ok {
		return ClassSpec{}, fmt.Errorf("faultmodel: unknown fault-class spec %q (want %s)", s, ClassSyntax())
	}
	var spec ClassSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(body, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok || val == "" {
			return ClassSpec{}, fmt.Errorf("faultmodel: bad fault-class part %q in %q (want key=value)", part, s)
		}
		if seen[key] {
			return ClassSpec{}, fmt.Errorf("faultmodel: duplicate fault-class part %q in %q", key, s)
		}
		seen[key] = true
		switch key {
		case "i", "a":
			fracStr, pStr, ok := strings.Cut(val, "@")
			if !ok {
				return ClassSpec{}, fmt.Errorf("faultmodel: part %q in %q needs <frac>@<value>", part, s)
			}
			frac, err := parseUnit(fracStr, true)
			if err != nil {
				return ClassSpec{}, fmt.Errorf("faultmodel: %s fraction in %q: %v", key, s, err)
			}
			p, err := parseUnit(pStr, false)
			if err != nil {
				return ClassSpec{}, fmt.Errorf("faultmodel: %s value in %q: %v", key, s, err)
			}
			if key == "i" {
				spec.IntermittentFrac, spec.IntermittentProb = frac, p
			} else {
				spec.AgingFrac, spec.AgingRamp = frac, p
			}
		case "t":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(rate) || rate <= 0 || rate > 1 {
				return ClassSpec{}, fmt.Errorf("faultmodel: transient rate %q in %q must be in (0, 1] flips/line/cycle", val, s)
			}
			spec.TransientRate = rate
		default:
			return ClassSpec{}, fmt.Errorf("faultmodel: unknown fault-class part %q in %q (want i=, a=, or t=)", key, s)
		}
	}
	if spec.IntermittentFrac+spec.AgingFrac > 1 {
		return ClassSpec{}, fmt.Errorf("faultmodel: fractions in %q sum past 1", s)
	}
	if spec.IsZero() {
		return ClassSpec{}, fmt.Errorf("faultmodel: %q selects no non-persistent behaviour; use \"persistent\"", s)
	}
	return spec, nil
}

// parseUnit parses a float constrained strictly to (0, 1]: a part with a
// zero fraction or probability is indistinguishable from persistent and is
// rejected so String round-trips canonically.
func parseUnit(s string, isFrac bool) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(f) || f <= 0 || f > 1 {
		what := "probability"
		if isFrac {
			what = "fraction"
		}
		return 0, fmt.Errorf("%s %q must be in (0, 1]", what, s)
	}
	return f, nil
}

// Domain separators for the class hash streams. Like DieSeed's constant,
// these only need to differ from every other seed-derivation constant in
// the repo so the streams share no affine structure.
const (
	classSeedSep    = 0x9d5c0fb1e4c1a55f
	intermittentSep = 0x1b5ad7a9f5a5e1a7
	agingSep        = 0x7b4ff3c57d5a6a3d
)

// ClassSeed derives the class-assignment/activation seed from a fault-map
// sampling seed (gpu.Config.FaultSeed). The derivation is domain-separated
// so classing never correlates with the sampled fault positions, and per
// die because FaultSeed already is.
func ClassSeed(faultSeed uint64) uint64 { return mix64(faultSeed ^ classSeedSep) }

// u01 maps a hash to the unit interval with 53-bit precision, exactly as
// xrand.Rand.Float64 does, so probability comparisons are reproducible.
func u01(h uint64) float64 { return float64(h>>11) * 0x1.0p-53 }

// cellHash mixes (seed, line, cell, stream) into one well-distributed
// word: golden-ratio / Weyl multipliers decorrelate the coordinates and a
// splitmix64 finalizer mixes the sum.
func cellHash(seed uint64, line, bit int, stream uint64) uint64 {
	return mix64(seed +
		uint64(line)*0x9e3779b97f4a7c15 +
		(uint64(bit)+1)*0xda942042e4dd58b5 +
		stream*0xd6e8feb86659fd93)
}

// ClassOf assigns a sampled fault's class: a pure hash over (class seed,
// line, cell) partitions the unit interval into [0, IntermittentFrac) →
// intermittent, [IntermittentFrac, IntermittentFrac+AgingFrac) → aging,
// remainder → persistent. Assignment is independent of voltage resolution
// and of the sampling RNG stream, so the same cell keeps the same class in
// every Resolved view of the map.
func ClassOf(classSeed uint64, line, bit int, spec ClassSpec) FaultClass {
	if spec.IntermittentFrac == 0 && spec.AgingFrac == 0 {
		return Persistent
	}
	u := u01(cellHash(classSeed, line, bit, 0))
	switch {
	case u < spec.IntermittentFrac:
		return Intermittent
	case u < spec.IntermittentFrac+spec.AgingFrac:
		return Aging
	default:
		return Persistent
	}
}

// ActiveInEpoch reports whether a non-persistent fault is active during a
// fault epoch: a deterministic per-(seed, line, cell, epoch) hash stream
// compared against the activation probability. The same (inputs → answer)
// mapping holds at any shard count because it consumes no mutable state.
func ActiveInEpoch(classSeed uint64, line, bit int, epoch uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return u01(cellHash(classSeed^intermittentSep, line, bit, epoch+1)) < p
}

// AgingProb returns the aging activation probability at a fault epoch:
// the monotone ramp min(1, AgingRamp x epoch). Epoch 0 (a fresh device)
// is always inactive.
func (s ClassSpec) AgingProb(epoch uint64) float64 {
	return math.Min(1, s.AgingRamp*float64(epoch))
}

// AgingActiveInEpoch is ActiveInEpoch on the aging stream (domain-separated
// from the intermittent stream so an intermittent and an aging fault in the
// same cell position never blink in lockstep).
func AgingActiveInEpoch(classSeed uint64, line, bit int, epoch uint64, spec ClassSpec) bool {
	p := spec.AgingProb(epoch)
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return u01(cellHash(classSeed^agingSep, line, bit, epoch+1)) < p
}

// ClassCounts tallies the map's sampled faults by assigned class, indexed
// by FaultClass (Transient stays 0: strikes are a rate process, not
// sampled cells). killi-faults prints this breakdown.
func ClassCounts(fm *Map, classSeed uint64, spec ClassSpec) [3]int {
	var counts [3]int
	for line := 0; line < fm.Lines(); line++ {
		for _, f := range fm.AllFaults(line) {
			counts[ClassOf(classSeed, line, f.Bit, spec)]++
		}
	}
	return counts
}
