package faultmodel

import (
	"testing"

	"killi/internal/xrand"
)

// TestDieSeedGolden pins the exact derivation: campaign reproducibility
// depends on every die sampling the same fault population on every host and
// Go version, so a change here is a semantic break, not a refactor.
func TestDieSeedGolden(t *testing.T) {
	for _, c := range []struct {
		base uint64
		die  int
		want uint64
	}{
		{1, 0, 0xee335bc2eedb730f},
		{1, 1, 0x51fd12e59f6fe5bd},
		{1, 2, 0x608de25864ff9917},
		{1, 9999, 0x8c75c0e277e51364},
		{42, 0, 0xa7e0cb980c60a6e5},
		{3735928559, 123, 0xb9781b2be202be6e},
	} {
		if got := DieSeed(c.base, c.die); got != c.want {
			t.Errorf("DieSeed(%d, %d) = %#016x, want %#016x", c.base, c.die, got, c.want)
		}
	}
}

// TestDieSeedStreamsPairwiseIndependent draws the first M values from every
// die's xrand stream and requires all of them distinct across all dies: no
// stream may overlap another's window, or two "independent" dies would
// sample correlated fault maps. With 64 dies × 4096 draws the collision
// probability for truly random 64-bit streams is ~2^-29, so any collision
// is a derivation bug, not chance.
func TestDieSeedStreamsPairwiseIndependent(t *testing.T) {
	const (
		dies = 64
		m    = 4096
	)
	seen := make(map[uint64]int, dies*m)
	for die := 0; die < dies; die++ {
		r := xrand.New(DieSeed(1, die))
		for i := 0; i < m; i++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("die %d draw %d collides with die %d's window (value %#x)", die, i, prev, v)
			}
			seen[v] = die
		}
	}
}

// TestDieSeedDomainSeparation: die 0's seed must differ from the base seed
// itself (a campaign die must not alias the single-sample run at that
// seed), and nearby bases must not produce overlapping die-seed sequences.
func TestDieSeedDomainSeparation(t *testing.T) {
	const dies = 1024
	seen := make(map[uint64]string, 3*dies)
	for _, base := range []uint64{1, 2, 3} {
		for die := 0; die < dies; die++ {
			s := DieSeed(base, die)
			if s == base {
				t.Fatalf("DieSeed(%d, %d) aliases the base seed", base, die)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("DieSeed(%d, %d) collides with %s", base, die, prev)
			}
			seen[s] = "earlier (base,die)"
		}
	}
}
