// Package faultmodel models low-voltage SRAM cell failures.
//
// The Killi paper consumes 14nm FinFET silicon measurements (Ganapathy et
// al., DAC'17): per-cell failure probabilities for writeability and
// read-disturbance tests across normalized supply voltages (Figure 1) and
// the resulting per-line fault-count distribution (Figure 2). We do not
// have the silicon data, so this package substitutes an analytic model
// calibrated to the paper's published anchor points:
//
//   - at 0.625×VDD and 1 GHz, >95 % of 64-byte lines have fewer than two
//     faults (§3), with a visible population of 1-fault lines (Figure 2);
//   - at 0.600×VDD every technique in Figure 6 still classifies ~100 % of
//     lines, which bounds the ≥3-fault population to near zero;
//   - at 0.575×VDD MS-ECC (corrects 11 errors per line) retains 69.6 % of
//     cache capacity (Table 7), which pins the high-failure regime;
//   - failure probability rises super-exponentially below ~0.675×VDD and
//     is negligible above it (Figure 1);
//   - failures are monotone: a cell failing at voltage v fails at every
//     v' < v, and failing at frequency f fails at every f' > f (§3).
//
// The model is piecewise log-linear between calibrated (voltage, P_cell)
// knots, with a multiplicative frequency factor.
//
// # Fault taxonomy
//
// Sampled fault positions (Map/Resolved) answer *where* cells fail; fault
// classes (ClassSpec, classes.go) answer *how* each failure manifests over
// time: persistent (the paper's model — always stuck while the voltage
// activates it), intermittent (stuck only during fault epochs chosen by a
// deterministic per-(seed, line, cell, epoch) hash stream), aging (a
// monotone per-epoch activation-probability ramp), and transient (Poisson
// strike events that flip a stored bit once and clear on rewrite — a rate
// process over lines, not a sampled-cell attribute). The zero ClassSpec is
// the pure-persistent special case and is bit-identical to the legacy
// Map/Resolved pipeline; ParseClassSpec/ClassSyntax define the
// "persistent | mixed:<spec>" grammar the CLIs accept. See ARCHITECTURE.md
// § Fault taxonomy for the determinism contract.
package faultmodel

import (
	"fmt"
	"math"
	"sort"

	"killi/internal/xrand"
)

// TestKind distinguishes the two silicon test conditions in Figure 1.
type TestKind int

const (
	// ReadDisturb checks for a cell flipping state when the wordline
	// turns on without write data driven.
	ReadDisturb TestKind = iota
	// Writeability checks the ability to change state within the wordline
	// pulse.
	Writeability
)

// String names the test kind.
func (k TestKind) String() string {
	switch k {
	case ReadDisturb:
		return "read-disturb"
	case Writeability:
		return "writeability"
	default:
		return fmt.Sprintf("faultmodel.TestKind(%d)", int(k))
	}
}

// knot is a calibration point of the combined cell-failure curve at 1 GHz.
type knot struct {
	v    float64 // normalized voltage
	logP float64 // log10 of combined cell failure probability
}

// knots1GHz is the combined (read + write) cell failure probability at
// 1 GHz. Between knots the model interpolates linearly in log10 space;
// outside it clamps (the floor represents the detection limit of the
// silicon tests).
var knots1GHz = []knot{
	{0.500, math.Log10(2.0e-1)},
	{0.550, math.Log10(3.0e-2)},
	{0.575, math.Log10(1.0e-2)},
	{0.600, math.Log10(1.2e-3)},
	{0.625, math.Log10(8.0e-5)},
	{0.650, math.Log10(6.0e-6)},
	{0.675, math.Log10(4.0e-7)},
	{0.700, math.Log10(1.0e-8)},
	{0.750, math.Log10(1.0e-10)},
	{0.800, math.Log10(1.0e-12)},
	{1.000, math.Log10(1.0e-14)},
}

// Model evaluates cell failure probabilities. The zero value is the
// calibrated default model.
type Model struct {
	// FreqSlope is the log10 change in failure probability per GHz of
	// frequency increase (failures increase with frequency). The default
	// 1.2 gives roughly a 5× decrease from 1 GHz down to 400 MHz,
	// mirroring the spread of Figure 1's frequency family.
	FreqSlope float64
	// WriteShare is the fraction of the combined failure probability
	// attributed to writeability failures; the remainder is read
	// disturbance. Writeability dominates slightly at low voltage in the
	// silicon data.
	WriteShare float64
}

// Default returns the calibrated default model.
func Default() Model { return Model{FreqSlope: 1.2, WriteShare: 0.6} }

func (m Model) freqSlope() float64 {
	if m.FreqSlope == 0 {
		return 1.2
	}
	return m.FreqSlope
}

func (m Model) writeShare() float64 {
	if m.WriteShare == 0 {
		return 0.6
	}
	return m.WriteShare
}

// CellFailureProb returns the probability that a single SRAM cell fails the
// combined (read or write) test at normalized voltage vNorm and frequency
// freqGHz. The result is monotone decreasing in vNorm and monotone
// increasing in freqGHz.
func (m Model) CellFailureProb(vNorm, freqGHz float64) float64 {
	if vNorm <= 0 {
		return 0.5
	}
	logP := interpLog(vNorm)
	logP += m.freqSlope() * (freqGHz - 1.0)
	p := math.Pow(10, logP)
	if p > 0.5 {
		p = 0.5
	}
	return p
}

// TestFailureProb splits the combined probability by test kind for
// rendering Figure 1's two curve families.
func (m Model) TestFailureProb(kind TestKind, vNorm, freqGHz float64) float64 {
	p := m.CellFailureProb(vNorm, freqGHz)
	switch kind {
	case Writeability:
		return p * m.writeShare()
	case ReadDisturb:
		return p * (1 - m.writeShare())
	default:
		panic(fmt.Sprintf("faultmodel: unknown test kind %d", int(kind)))
	}
}

// interpLog interpolates log10(P_cell) at 1 GHz across the calibration
// knots, clamping outside the table.
func interpLog(v float64) float64 {
	ks := knots1GHz
	if v <= ks[0].v {
		return ks[0].logP
	}
	if v >= ks[len(ks)-1].v {
		return ks[len(ks)-1].logP
	}
	i := sort.Search(len(ks), func(i int) bool { return ks[i].v >= v }) // first knot ≥ v
	lo, hi := ks[i-1], ks[i]
	frac := (v - lo.v) / (hi.v - lo.v)
	return lo.logP + frac*(hi.logP-lo.logP)
}

// LineDist is the per-line fault-count distribution of Figure 2.
type LineDist struct {
	P0      float64 // fraction of lines with zero faults
	P1      float64 // exactly one fault
	P2Plus  float64 // two or more faults
	PerCell float64 // the underlying cell probability
}

// LineFaultDist returns the probability of a line of bitsPerLine cells
// having 0, 1, or ≥2 faulty cells under independent per-cell failures.
func (m Model) LineFaultDist(bitsPerLine int, vNorm, freqGHz float64) LineDist {
	p := m.CellFailureProb(vNorm, freqGHz)
	n := float64(bitsPerLine)
	// Compute in log space to stay stable for tiny p.
	logQ := math.Log1p(-p)
	p0 := math.Exp(n * logQ)
	p1 := 0.0
	if p > 0 {
		p1 = math.Exp(math.Log(n) + math.Log(p) + (n-1)*logQ)
	}
	d := LineDist{P0: p0, P1: p1, P2Plus: 1 - p0 - p1, PerCell: p}
	if d.P2Plus < 0 {
		d.P2Plus = 0
	}
	return d
}

// Fault is a sampled stuck-at fault in one cell of a line. How the fault
// manifests over time is a separate, orthogonal label: persistent unless a
// ClassSpec assigns the cell an intermittent or aging class via ClassOf
// (the sampled position and polarity are class-independent).
type Fault struct {
	// Bit is the cell's bit position within the line.
	Bit int
	// StuckAt is the value the cell always returns (0 or 1). A fault is
	// masked whenever the stored data bit equals StuckAt.
	StuckAt uint
	// Severity encodes the fault's activation threshold: the fault is
	// active at voltage v (and the map's generation frequency) whenever
	// CellFailureProb(v) ≥ Severity. Lower severity ⇒ activates at higher
	// voltages too. This realizes the silicon observation that failures
	// are monotone in voltage.
	Severity float64
}

// Map is a sampled fault population for an array of lines, generated at
// a reference (minimum) voltage. Faults for any voltage ≥ the reference are
// the subset whose Severity is within that voltage's failure probability.
// The map records positions and polarities only; with no ClassSpec layered
// on top every fault behaves persistently.
//
// The population is stored packed: one flat fault buffer with per-line
// offsets, so a 32K-line map is two allocations instead of one slice per
// faulty line, and whole-map scans walk contiguous memory. A Map is
// immutable after construction and safe to share across goroutines.
type Map struct {
	model   Model
	bits    int
	freqGHz float64
	refProb float64
	faults  []Fault // line-major, sorted by bit within a line
	offsets []int32 // line i's faults are faults[offsets[i]:offsets[i+1]]
}

// NewMap samples a fault population for lines × bitsPerLine cells at
// reference voltage refV (the lowest voltage the map can serve) and
// frequency freqGHz.
func NewMap(r *xrand.Rand, m Model, lines, bitsPerLine int, refV, freqGHz float64) *Map {
	if lines < 0 || bitsPerLine <= 0 {
		panic("faultmodel: invalid map dimensions")
	}
	refProb := m.CellFailureProb(refV, freqGHz)
	fm := &Map{
		model:   m,
		bits:    bitsPerLine,
		freqGHz: freqGHz,
		refProb: refProb,
		offsets: make([]int32, lines+1),
	}
	for line := 0; line < lines; line++ {
		// Geometric skipping through the line's cells.
		for bit := r.Geometric(refProb); bit < bitsPerLine; {
			fm.faults = append(fm.faults, Fault{
				Bit:      bit,
				StuckAt:  uint(r.Uint64() & 1),
				Severity: r.Float64() * refProb,
			})
			skip := r.Geometric(refProb)
			if skip >= bitsPerLine { // avoid overflow on the index addition
				break
			}
			bit += skip + 1
		}
		fm.offsets[line+1] = int32(len(fm.faults))
	}
	return fm
}

// NewMapExplicit builds a map from an explicit per-line fault list, for
// tests and controlled experiments. A fault with Severity 0 is active at
// every voltage; Severity p is active wherever CellFailureProb(v) ≥ p.
func NewMapExplicit(m Model, bitsPerLine int, freqGHz float64, perLine [][]Fault) *Map {
	if bitsPerLine <= 0 {
		panic("faultmodel: invalid map dimensions")
	}
	for _, faults := range perLine {
		for _, f := range faults {
			if f.Bit < 0 || f.Bit >= bitsPerLine {
				panic(fmt.Sprintf("faultmodel: fault bit %d out of range", f.Bit))
			}
		}
	}
	fm := &Map{
		model:   m,
		bits:    bitsPerLine,
		freqGHz: freqGHz,
		refProb: m.CellFailureProb(0, freqGHz),
		offsets: make([]int32, len(perLine)+1),
	}
	for i, faults := range perLine {
		fm.faults = append(fm.faults, faults...)
		fm.offsets[i+1] = int32(len(fm.faults))
	}
	return fm
}

// Lines returns the number of lines covered by the map.
func (fm *Map) Lines() int { return len(fm.offsets) - 1 }

// BitsPerLine returns the per-line cell count.
func (fm *Map) BitsPerLine() int { return fm.bits }

// ActiveFaults returns the faults of a line active at voltage vNorm
// (vNorm must be ≥ the map's reference voltage for meaningful results;
// higher voltages yield subsets — the monotonicity property). The result
// may alias the map's packed storage and must not be modified. Callers that
// query many lines at one voltage should Resolve once instead: this method
// re-evaluates the failure probability per call.
func (fm *Map) ActiveFaults(line int, vNorm float64) []Fault {
	p := fm.model.CellFailureProb(vNorm, fm.freqGHz)
	all := fm.AllFaults(line)
	if p >= fm.refProb {
		// At or below the reference voltage every sampled fault is active
		// (severities are drawn within [0, refProb)).
		return all
	}
	var out []Fault
	for _, f := range all {
		if f.Severity <= p {
			out = append(out, f)
		}
	}
	return out
}

// AllFaults returns every sampled fault of a line (active at the reference
// voltage). The result aliases the map's packed storage and must not be
// modified.
func (fm *Map) AllFaults(line int) []Fault {
	return fm.faults[fm.offsets[line]:fm.offsets[line+1]:fm.offsets[line+1]]
}

// CountAtVoltage returns how many lines have exactly 0, exactly 1, and ≥2
// active faults at vNorm — the empirical Figure 2 distribution.
func (fm *Map) CountAtVoltage(vNorm float64) (zero, one, twoPlus int) {
	p := fm.model.CellFailureProb(vNorm, fm.freqGHz)
	for line := 0; line < fm.Lines(); line++ {
		n := 0
		for _, f := range fm.AllFaults(line) {
			if f.Severity <= p {
				n++
			}
		}
		switch {
		case n == 0:
			zero++
		case n == 1:
			one++
		default:
			twoPlus++
		}
	}
	return zero, one, twoPlus
}

// Resolved is a read-only view of a Map with the active-fault decision
// pre-computed at one voltage: per-line active fault sets in one packed
// buffer plus the per-line 0/1/2+ fault class. Hot paths (the SRAM read
// fault application, scheme classification checks) index dense slices
// instead of re-filtering by severity per access. A Resolved is immutable
// and safe to share across goroutines.
type Resolved struct {
	voltage float64
	faults  []Fault // line-major active faults at voltage
	offsets []int32
	class   []uint8 // per-line active-fault class: 0, 1, or 2 (meaning ≥2)
}

// Resolve computes the voltage-resolved view of the map at vNorm. At or
// below the reference voltage the view shares the map's packed buffers;
// above it the active subset is filtered once into a fresh packed buffer.
func (fm *Map) Resolve(vNorm float64) *Resolved {
	p := fm.model.CellFailureProb(vNorm, fm.freqGHz)
	lines := fm.Lines()
	r := &Resolved{voltage: vNorm, class: make([]uint8, lines)}
	if p >= fm.refProb {
		r.faults, r.offsets = fm.faults, fm.offsets
	} else {
		r.offsets = make([]int32, lines+1)
		for line := 0; line < lines; line++ {
			for _, f := range fm.AllFaults(line) {
				if f.Severity <= p {
					r.faults = append(r.faults, f)
				}
			}
			r.offsets[line+1] = int32(len(r.faults))
		}
	}
	for line := 0; line < lines; line++ {
		n := r.offsets[line+1] - r.offsets[line]
		if n > 2 {
			n = 2
		}
		r.class[line] = uint8(n)
	}
	return r
}

// Voltage returns the voltage the view was resolved at.
func (r *Resolved) Voltage() float64 { return r.voltage }

// Lines returns the number of lines covered by the view.
func (r *Resolved) Lines() int { return len(r.class) }

// LineFaults returns line i's active faults. The result aliases the view's
// packed storage and must not be modified.
func (r *Resolved) LineFaults(i int) []Fault {
	return r.faults[r.offsets[i]:r.offsets[i+1]:r.offsets[i+1]]
}

// LineCount returns the number of active faults in line i.
func (r *Resolved) LineCount(i int) int { return int(r.offsets[i+1] - r.offsets[i]) }

// Class returns line i's fault class: 0, 1, or 2 for two-plus — the
// classification Killi's DFH converges to at this voltage.
func (r *Resolved) Class(i int) uint8 { return r.class[i] }
