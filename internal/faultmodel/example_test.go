package faultmodel_test

import (
	"fmt"

	"killi/internal/faultmodel"
)

// Example evaluates the calibrated fault model at the paper's operating
// point: at 0.625×VDD and 1 GHz, more than 95 % of 64-byte lines have
// fewer than two faults — the observation Killi's design is built on.
func Example() {
	m := faultmodel.Default()
	d := m.LineFaultDist(512, 0.625, 1.0)
	fmt.Printf("P(<2 faults per line) > 95%%: %v\n", d.P0+d.P1 > 0.95)
	fmt.Printf("fault-free: %.1f%%  one-fault: %.1f%%  multi-fault: %.2f%%\n",
		d.P0*100, d.P1*100, d.P2Plus*100)

	// Output:
	// P(<2 faults per line) > 95%: true
	// fault-free: 96.0%  one-fault: 3.9%  multi-fault: 0.08%
}
