package faultmodel

import (
	"math"
	"testing"

	"killi/internal/xrand"
)

func TestMonotoneInVoltage(t *testing.T) {
	m := Default()
	prev := math.Inf(1)
	for v := 0.50; v <= 1.0; v += 0.005 {
		p := m.CellFailureProb(v, 1.0)
		if p > prev {
			t.Fatalf("P_cell increased with voltage at v=%v: %v > %v", v, p, prev)
		}
		if p <= 0 || p > 0.5 {
			t.Fatalf("P_cell out of range at v=%v: %v", v, p)
		}
		prev = p
	}
}

func TestMonotoneInFrequency(t *testing.T) {
	m := Default()
	for _, v := range []float64{0.55, 0.6, 0.625, 0.65} {
		prev := 0.0
		for f := 0.4; f <= 1.0; f += 0.1 {
			p := m.CellFailureProb(v, f)
			if p < prev {
				t.Fatalf("P_cell decreased with frequency at v=%v f=%v", v, f)
			}
			prev = p
		}
	}
}

func TestPaperAnchor625(t *testing.T) {
	// §3: at 1 GHz and 0.625×VDD, >95 % of rows have fewer than two
	// failures.
	d := Default().LineFaultDist(512, 0.625, 1.0)
	if d.P0+d.P1 < 0.95 {
		t.Fatalf("P(<2 faults) = %v at 0.625×VDD, want > 0.95", d.P0+d.P1)
	}
	// Figure 2 shows a visible 1-fault population (not essentially zero).
	if d.P1 < 0.01 {
		t.Fatalf("P(1 fault) = %v at 0.625×VDD, want ≥ 1%%", d.P1)
	}
	// And most lines are fault-free.
	if d.P0 < 0.90 {
		t.Fatalf("P(0 faults) = %v, want ≥ 0.90", d.P0)
	}
}

func TestPaperAnchor600(t *testing.T) {
	// Figure 6: at 0.600×VDD all techniques (including DECTED: detects up
	// to 3 errors) classify essentially all lines ⇒ the ≥4-fault line
	// population must be tiny.
	d := Default().LineFaultDist(523, 0.600, 1.0)
	lambda := 523 * d.PerCell
	// Poisson upper bound on P(≥4).
	p4 := 1 - math.Exp(-lambda)*(1+lambda+lambda*lambda/2+lambda*lambda*lambda/6)
	if p4 > 0.01 {
		t.Fatalf("P(≥4 faults) ≈ %v at 0.600×VDD, want < 1%%", p4)
	}
}

func TestPaperAnchor575MSECCCapacity(t *testing.T) {
	// Table 7: at 0.575×VDD MS-ECC (corrects ≤11 per line) keeps ~69.6 %
	// capacity. With codeword ≈ 1018 bits, P(≤11 faults) should be in the
	// 55–85 % band.
	p := Default().CellFailureProb(0.575, 1.0)
	lambda := 1018 * p
	cum := 0.0
	term := math.Exp(-lambda)
	for k := 0; k <= 11; k++ {
		cum += term
		term *= lambda / float64(k+1)
	}
	if cum < 0.55 || cum > 0.85 {
		t.Fatalf("P(≤11 faults) = %v at 0.575×VDD, want ≈ 0.70", cum)
	}
}

func TestNegligibleAboveKnee(t *testing.T) {
	// Figure 1: failures effectively vanish above ~0.7×VDD.
	p := Default().CellFailureProb(0.75, 1.0)
	if p > 1e-9 {
		t.Fatalf("P_cell = %v at 0.75×VDD, want < 1e-9", p)
	}
}

func TestTestKindSplit(t *testing.T) {
	m := Default()
	pw := m.TestFailureProb(Writeability, 0.6, 1.0)
	pr := m.TestFailureProb(ReadDisturb, 0.6, 1.0)
	if pw <= 0 || pr <= 0 {
		t.Fatal("split probabilities must be positive")
	}
	if math.Abs(pw+pr-m.CellFailureProb(0.6, 1.0)) > 1e-12 {
		t.Fatal("split does not sum to combined probability")
	}
	if pw <= pr {
		t.Fatal("writeability should dominate read disturb in this model")
	}
}

func TestTestKindString(t *testing.T) {
	if ReadDisturb.String() != "read-disturb" || Writeability.String() != "writeability" {
		t.Fatal("test kind names wrong")
	}
}

func TestUnknownTestKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown test kind did not panic")
		}
	}()
	Default().TestFailureProb(TestKind(9), 0.6, 1.0)
}

func TestLineFaultDistSumsToOne(t *testing.T) {
	m := Default()
	for _, v := range []float64{0.5, 0.575, 0.625, 0.7, 0.9} {
		d := m.LineFaultDist(512, v, 1.0)
		sum := d.P0 + d.P1 + d.P2Plus
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("v=%v: distribution sums to %v", v, sum)
		}
		if d.P0 < 0 || d.P1 < 0 || d.P2Plus < 0 {
			t.Fatalf("v=%v: negative probability %+v", v, d)
		}
	}
}

func TestZeroValueModelUsesDefaults(t *testing.T) {
	var zero Model
	def := Default()
	for _, v := range []float64{0.55, 0.625, 0.8} {
		if zero.CellFailureProb(v, 1.0) != def.CellFailureProb(v, 1.0) {
			t.Fatal("zero-value model differs from Default")
		}
	}
}

func TestMapEmpiricalMatchesAnalytic(t *testing.T) {
	m := Default()
	r := xrand.New(42)
	const lines = 200000
	fm := NewMap(r, m, lines, 512, 0.575, 1.0)
	zero, one, twoPlus := fm.CountAtVoltage(0.625)
	d := m.LineFaultDist(512, 0.625, 1.0)
	gotP0 := float64(zero) / lines
	gotP1 := float64(one) / lines
	gotP2 := float64(twoPlus) / lines
	if math.Abs(gotP0-d.P0) > 0.01 {
		t.Fatalf("empirical P0=%v analytic %v", gotP0, d.P0)
	}
	if math.Abs(gotP1-d.P1) > 0.01 {
		t.Fatalf("empirical P1=%v analytic %v", gotP1, d.P1)
	}
	if math.Abs(gotP2-d.P2Plus) > 0.005 {
		t.Fatalf("empirical P2+=%v analytic %v", gotP2, d.P2Plus)
	}
}

func TestMapMonotonicity(t *testing.T) {
	// Faults active at a voltage must be a superset of those active at
	// any higher voltage — the silicon persistence property.
	r := xrand.New(7)
	fm := NewMap(r, Default(), 5000, 512, 0.55, 1.0)
	for line := 0; line < fm.Lines(); line++ {
		hi := fm.ActiveFaults(line, 0.65)
		lo := fm.ActiveFaults(line, 0.60)
		loSet := map[int]bool{}
		for _, f := range lo {
			loSet[f.Bit] = true
		}
		for _, f := range hi {
			if !loSet[f.Bit] {
				t.Fatalf("line %d: fault at bit %d active at 0.65 but not 0.60", line, f.Bit)
			}
		}
		if len(lo) < len(hi) {
			t.Fatalf("line %d: fewer faults at lower voltage", line)
		}
	}
}

func TestMapDeterminism(t *testing.T) {
	a := NewMap(xrand.New(3), Default(), 1000, 512, 0.575, 1.0)
	b := NewMap(xrand.New(3), Default(), 1000, 512, 0.575, 1.0)
	for line := 0; line < 1000; line++ {
		fa, fb := a.AllFaults(line), b.AllFaults(line)
		if len(fa) != len(fb) {
			t.Fatalf("line %d: different fault counts", line)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("line %d fault %d differs", line, i)
			}
		}
	}
}

func TestMapFaultFields(t *testing.T) {
	fm := NewMap(xrand.New(9), Default(), 20000, 512, 0.5, 1.0)
	total := 0
	for line := 0; line < fm.Lines(); line++ {
		for _, f := range fm.AllFaults(line) {
			total++
			if f.Bit < 0 || f.Bit >= 512 {
				t.Fatalf("fault bit %d out of range", f.Bit)
			}
			if f.StuckAt > 1 {
				t.Fatalf("stuck-at value %d", f.StuckAt)
			}
			if f.Severity < 0 || f.Severity > fm.refProb {
				t.Fatalf("severity %v outside [0, refProb]", f.Severity)
			}
		}
	}
	if total == 0 {
		t.Fatal("no faults sampled at 0.5×VDD")
	}
}

func TestMapHighVoltageFaultFree(t *testing.T) {
	fm := NewMap(xrand.New(11), Default(), 50000, 512, 0.9, 1.0)
	zero, one, twoPlus := fm.CountAtVoltage(0.9)
	if one+twoPlus > 2 {
		t.Fatalf("%d lines faulty at 0.9×VDD; expected essentially none", one+twoPlus)
	}
	if zero < 49998 {
		t.Fatalf("zero-fault lines = %d", zero)
	}
}

func TestNewMapPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"neg lines": func() { NewMap(xrand.New(1), Default(), -1, 512, 0.6, 1.0) },
		"zero bits": func() { NewMap(xrand.New(1), Default(), 10, 0, 0.6, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkNewMap2MBCache(b *testing.B) {
	// 2 MB / 64 B = 32768 lines, the paper's L2 size.
	m := Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewMap(xrand.New(uint64(i)), m, 32768, 512, 0.625, 1.0)
	}
}
