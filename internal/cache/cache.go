// Package cache provides the generic set-associative cache structure shared
// by the simulated GPU L2 and by Killi's ECC cache.
//
// The structure manages tags, validity, true-LRU recency, and victim
// selection. It is policy-free: protection schemes influence replacement
// through per-entry Class/Disabled markers and custom VictimFunc
// implementations (the paper stresses that Killi "is designed to be
// independent of cache policies"; the seam lives here).
package cache

import (
	"fmt"
	"math/bits"
)

// Config describes a cache geometry.
type Config struct {
	// Sets is the number of sets (must be a power of two for address
	// slicing; Lookup by explicit set index works regardless).
	Sets int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size used by Index/Tag address splitting.
	LineBytes int
}

// Lines returns the total line count.
func (c Config) Lines() int { return c.Sets * c.Ways }

func (c Config) validate() error {
	if c.Sets <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: sets=%d ways=%d must be positive", c.Sets, c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineBytes)
	}
	return nil
}

// Entry is one tag-array entry. Protection schemes own Class and Disabled;
// the cache core maintains Tag, Valid, and LastUse. Field order packs the
// struct into 32 bytes so a 16-way set scan touches 8 cache lines, not 10.
type Entry struct {
	Tag uint64
	// LastUse is the recency stamp maintained by Touch/Install; larger is
	// more recent.
	LastUse uint64
	// Class is scheme-defined (Killi stores the DFH state here so its
	// allocation priority can see it).
	Class int
	Valid bool
	// Disabled marks a line the replacement policy must never select and
	// lookups must never hit (Killi's b'11, MBIST-disabled lines, MS-ECC
	// capacity loss).
	Disabled bool
}

// VictimFunc picks a victim way from a set's entries, or -1 if no entry may
// be victimized. Entries with Disabled set must not be returned.
type VictimFunc func(entries []Entry) int

// Cache is a set-associative tag store. Construct with New.
type Cache struct {
	cfg   Config
	sets  [][]Entry
	clock uint64
	// Address-slicing fast path: LineBytes is always a power of two and
	// Sets almost always is, so Index/Tag — on the critical path of every
	// simulated access — run as shifts and masks instead of div/mod.
	lineShift uint
	setShift  uint
	setMask   uint64
	pow2Sets  bool
}

// New returns an empty cache with the given geometry. It panics on invalid
// configuration (construction-time programmer error).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg, sets: make([][]Entry, cfg.Sets)}
	c.lineShift = uint(bits.TrailingZeros64(uint64(cfg.LineBytes)))
	if cfg.Sets&(cfg.Sets-1) == 0 {
		c.pow2Sets = true
		c.setShift = uint(bits.TrailingZeros64(uint64(cfg.Sets)))
		c.setMask = uint64(cfg.Sets - 1)
	}
	backing := make([]Entry, cfg.Sets*cfg.Ways)
	for s := range c.sets {
		c.sets[s] = backing[s*cfg.Ways : (s+1)*cfg.Ways : (s+1)*cfg.Ways]
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Index returns the set index for an address.
func (c *Cache) Index(addr uint64) int {
	if c.pow2Sets {
		return int(addr >> c.lineShift & c.setMask)
	}
	return int(addr >> c.lineShift % uint64(c.cfg.Sets))
}

// Tag returns the tag for an address.
func (c *Cache) Tag(addr uint64) uint64 {
	if c.pow2Sets {
		return addr >> c.lineShift >> c.setShift
	}
	return addr >> c.lineShift / uint64(c.cfg.Sets)
}

// LineID returns a dense identifier for (set, way), usable as a data-array
// index.
func (c *Cache) LineID(set, way int) int { return set*c.cfg.Ways + way }

// Lookup searches a set for a valid, enabled entry with the given tag. The
// tag compare comes first: it rejects 15 of 16 ways with one comparison,
// where leading with the flag checks costs three per way on a warm cache.
func (c *Cache) Lookup(set int, tag uint64) (way int, hit bool) {
	es := c.sets[set]
	for w := range es {
		e := &es[w]
		if e.Tag == tag && e.Valid && !e.Disabled {
			return w, true
		}
	}
	return -1, false
}

// Entry returns a pointer to the entry at (set, way) for inspection or
// scheme-state mutation.
func (c *Cache) Entry(set, way int) *Entry { return &c.sets[set][way] }

// Set returns the entries of a set. The slice aliases cache state; it is
// provided for read-mostly policy decisions and statistics.
func (c *Cache) Set(set int) []Entry { return c.sets[set] }

// Touch marks (set, way) most recently used.
func (c *Cache) Touch(set, way int) {
	c.clock++
	c.sets[set][way].LastUse = c.clock
}

// Install fills (set, way) with tag, marks it valid and most recently used.
// The entry's Class is preserved: Killi's DFH state is a property of the
// physical line, persistent across data installations (§4.4).
func (c *Cache) Install(set, way int, tag uint64) {
	e := &c.sets[set][way]
	if e.Disabled {
		panic(fmt.Sprintf("cache: Install into disabled line set=%d way=%d", set, way))
	}
	e.Tag = tag
	e.Valid = true
	c.Touch(set, way)
}

// Invalidate clears the valid bit at (set, way). Class and Disabled are
// preserved.
func (c *Cache) Invalidate(set, way int) {
	c.sets[set][way].Valid = false
}

// Victim picks a victim in the set using pick (LRUVictim if nil).
func (c *Cache) Victim(set int, pick VictimFunc) (way int, ok bool) {
	if pick == nil {
		pick = LRUVictim
	}
	w := pick(c.sets[set])
	if w < 0 {
		return -1, false
	}
	if c.sets[set][w].Disabled {
		panic("cache: victim function returned a disabled way")
	}
	return w, true
}

// LRUVictim is the default policy: prefer an invalid enabled way; otherwise
// evict the least recently used valid enabled way; -1 if every way is
// disabled.
func LRUVictim(entries []Entry) int {
	victim := -1
	var oldest uint64
	for w := range entries {
		e := &entries[w]
		if e.Disabled {
			continue
		}
		if !e.Valid {
			return w
		}
		if victim == -1 || e.LastUse < oldest {
			victim = w
			oldest = e.LastUse
		}
	}
	return victim
}

// EnabledWays counts non-disabled ways in a set.
func (c *Cache) EnabledWays(set int) int {
	n := 0
	for w := range c.sets[set] {
		if !c.sets[set][w].Disabled {
			n++
		}
	}
	return n
}

// DisabledLines counts disabled lines across the whole cache.
func (c *Cache) DisabledLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].Disabled {
				n++
			}
		}
	}
	return n
}

// ForEach visits every (set, way, entry) for statistics and bulk state
// transitions (e.g. Killi's DFH reset on a voltage change).
func (c *Cache) ForEach(fn func(set, way int, e *Entry)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			fn(s, w, &c.sets[s][w])
		}
	}
}
