package cache

import (
	"testing"

	"killi/internal/xrand"
)

func newTestCache(t *testing.T) *Cache {
	t.Helper()
	return New(Config{Sets: 8, Ways: 4, LineBytes: 64})
}

func TestConfigLines(t *testing.T) {
	if (Config{Sets: 2048, Ways: 16, LineBytes: 64}).Lines() != 32768 {
		t.Fatal("2MB L2 geometry line count wrong")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero sets": {Sets: 0, Ways: 4, LineBytes: 64},
		"zero ways": {Sets: 8, Ways: 0, LineBytes: 64},
		"npo2 line": {Sets: 8, Ways: 4, LineBytes: 48},
		"zero line": {Sets: 8, Ways: 4, LineBytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestAddressSplit(t *testing.T) {
	c := newTestCache(t)
	// addr = tag*sets*64 + set*64 + offset
	addr := uint64(5*8*64 + 3*64 + 17)
	if c.Index(addr) != 3 {
		t.Fatalf("Index = %d, want 3", c.Index(addr))
	}
	if c.Tag(addr) != 5 {
		t.Fatalf("Tag = %d, want 5", c.Tag(addr))
	}
}

func TestLookupMissOnEmpty(t *testing.T) {
	c := newTestCache(t)
	if _, hit := c.Lookup(0, 42); hit {
		t.Fatal("hit in empty cache")
	}
}

func TestInstallThenHit(t *testing.T) {
	c := newTestCache(t)
	c.Install(2, 1, 99)
	way, hit := c.Lookup(2, 99)
	if !hit || way != 1 {
		t.Fatalf("lookup after install: way=%d hit=%v", way, hit)
	}
	if _, hit := c.Lookup(3, 99); hit {
		t.Fatal("hit in wrong set")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTestCache(t)
	c.Install(0, 0, 7)
	c.Invalidate(0, 0)
	if _, hit := c.Lookup(0, 7); hit {
		t.Fatal("hit after invalidate")
	}
}

func TestDisabledLineNeverHits(t *testing.T) {
	c := newTestCache(t)
	c.Install(0, 0, 7)
	c.Entry(0, 0).Disabled = true
	if _, hit := c.Lookup(0, 7); hit {
		t.Fatal("disabled line produced a hit")
	}
}

func TestLRUVictimPrefersInvalid(t *testing.T) {
	c := newTestCache(t)
	for w := 0; w < 3; w++ {
		c.Install(0, w, uint64(w))
	}
	way, ok := c.Victim(0, nil)
	if !ok || way != 3 {
		t.Fatalf("victim = %d, want the invalid way 3", way)
	}
}

func TestLRUVictimEvictsOldest(t *testing.T) {
	c := newTestCache(t)
	for w := 0; w < 4; w++ {
		c.Install(0, w, uint64(w))
	}
	// Touch everything except way 2.
	c.Touch(0, 0)
	c.Touch(0, 1)
	c.Touch(0, 3)
	way, ok := c.Victim(0, nil)
	if !ok || way != 2 {
		t.Fatalf("victim = %d, want LRU way 2", way)
	}
}

func TestLRUVictimSkipsDisabled(t *testing.T) {
	c := newTestCache(t)
	for w := 0; w < 4; w++ {
		c.Install(0, w, uint64(w))
	}
	c.Entry(0, 1).Disabled = true // way 1 would otherwise be... make it LRU
	way, ok := c.Victim(0, nil)
	if !ok || way == 1 {
		t.Fatalf("victim = %d; disabled way must be skipped", way)
	}
}

func TestVictimNoneWhenAllDisabled(t *testing.T) {
	c := newTestCache(t)
	for w := 0; w < 4; w++ {
		c.Entry(0, w).Disabled = true
	}
	if _, ok := c.Victim(0, nil); ok {
		t.Fatal("victim found in fully disabled set")
	}
}

func TestVictimPanicsOnDisabledPick(t *testing.T) {
	c := newTestCache(t)
	c.Entry(0, 0).Disabled = true
	defer func() {
		if recover() == nil {
			t.Fatal("picking a disabled victim did not panic")
		}
	}()
	c.Victim(0, func(entries []Entry) int { return 0 })
}

func TestInstallPanicsOnDisabled(t *testing.T) {
	c := newTestCache(t)
	c.Entry(0, 0).Disabled = true
	defer func() {
		if recover() == nil {
			t.Fatal("install into disabled line did not panic")
		}
	}()
	c.Install(0, 0, 1)
}

func TestInstallPreservesClass(t *testing.T) {
	c := newTestCache(t)
	c.Entry(0, 0).Class = 2
	c.Install(0, 0, 5)
	if c.Entry(0, 0).Class != 2 {
		t.Fatal("Install clobbered Class; DFH must persist across data installs")
	}
}

func TestCustomVictimFunc(t *testing.T) {
	c := newTestCache(t)
	for w := 0; w < 4; w++ {
		c.Install(0, w, uint64(w))
		c.Entry(0, w).Class = w
	}
	// Priority: highest class first (a stand-in for Killi's b'01 > b'00 > b'10).
	pick := func(entries []Entry) int {
		best, bestClass := -1, -1
		for w := range entries {
			if entries[w].Disabled {
				continue
			}
			if entries[w].Class > bestClass {
				best, bestClass = w, entries[w].Class
			}
		}
		return best
	}
	way, ok := c.Victim(0, pick)
	if !ok || way != 3 {
		t.Fatalf("custom victim = %d, want 3", way)
	}
}

func TestEnabledWaysAndDisabledLines(t *testing.T) {
	c := newTestCache(t)
	c.Entry(0, 0).Disabled = true
	c.Entry(3, 2).Disabled = true
	if c.EnabledWays(0) != 3 {
		t.Fatalf("EnabledWays = %d", c.EnabledWays(0))
	}
	if c.DisabledLines() != 2 {
		t.Fatalf("DisabledLines = %d", c.DisabledLines())
	}
}

func TestLineIDDense(t *testing.T) {
	c := newTestCache(t)
	seen := map[int]bool{}
	c.ForEach(func(set, way int, e *Entry) {
		id := c.LineID(set, way)
		if id < 0 || id >= c.Config().Lines() || seen[id] {
			t.Fatalf("LineID(%d,%d)=%d invalid", set, way, id)
		}
		seen[id] = true
	})
	if len(seen) != c.Config().Lines() {
		t.Fatal("LineID not a bijection")
	}
}

func TestLRUStressProperty(t *testing.T) {
	// Model check against a reference LRU implementation.
	c := New(Config{Sets: 1, Ways: 4, LineBytes: 64})
	r := xrand.New(1)
	type ref struct{ order []uint64 } // most recent last
	var m ref
	refTouch := func(tag uint64) {
		for i, t := range m.order {
			if t == tag {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.order = append(m.order, tag)
	}
	for step := 0; step < 10000; step++ {
		tag := uint64(r.Intn(8))
		if way, hit := c.Lookup(0, tag); hit {
			c.Touch(0, way)
			refTouch(tag)
			continue
		}
		way, ok := c.Victim(0, nil)
		if !ok {
			t.Fatal("no victim")
		}
		if c.Entry(0, way).Valid {
			// Must be the reference's LRU (front).
			if c.Entry(0, way).Tag != m.order[0] {
				t.Fatalf("step %d: evicted %d, reference LRU %d", step, c.Entry(0, way).Tag, m.order[0])
			}
			m.order = m.order[1:]
		}
		c.Install(0, way, tag)
		refTouch(tag)
		if len(m.order) > 4 {
			t.Fatal("reference model overflow")
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{Sets: 2048, Ways: 16, LineBytes: 64})
	for w := 0; w < 16; w++ {
		c.Install(0, w, uint64(w))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = c.Lookup(0, uint64(i&15))
	}
}
