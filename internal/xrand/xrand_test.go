package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 1000 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	child := r.Split()
	// Parent and child must not mirror each other.
	same := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream mirrors parent (%d collisions)", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(21)
	const p, n = 0.137, 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.005 {
		t.Fatalf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestGeometricEdges(t *testing.T) {
	r := New(2)
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	if g := r.Geometric(0); g != math.MaxInt {
		t.Fatalf("Geometric(0) = %d, want MaxInt", g)
	}
	if g := r.Geometric(-1); g != math.MaxInt {
		t.Fatalf("Geometric(-1) = %d, want MaxInt", g)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	const p, n = 0.2, 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestBinomialMatchesMean(t *testing.T) {
	r := New(17)
	const n, p, trials = 523, 0.004, 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += r.Binomial(n, p)
	}
	mean := float64(sum) / trials
	want := float64(n) * p
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("Binomial mean = %v, want ~%v", mean, want)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(1)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := r.Binomial(10, 0); v != 0 {
		t.Fatalf("Binomial(10, 0) = %d", v)
	}
	if v := r.Binomial(10, 1); v != 10 {
		t.Fatalf("Binomial(10, 1) = %d", v)
	}
}

func TestBinomialRange(t *testing.T) {
	f := func(seed uint64) bool {
		rr := New(seed)
		v := rr.Binomial(523, 0.01)
		return v >= 0 && v <= 523
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(8)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(50)
		k := r.Intn(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) returned %d values", n, k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Sample(%d,%d) = %v invalid", n, k, s)
			}
			seen[v] = true
		}
	}
}

func TestSampleFull(t *testing.T) {
	s := New(3).Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing %d", i)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestMul128(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// TestPoisson pins the sampler's mean/variance against theory at a few
// means spanning the strike-count regime, plus the edge cases.
func TestPoisson(t *testing.T) {
	r := New(77)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 || r.Poisson(math.NaN()) != 0 {
		t.Fatal("Poisson of non-positive or NaN mean must be 0")
	}
	for _, mean := range []float64{0.01, 0.5, 3, 40, 1200} {
		const n = 20000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(r.Poisson(mean))
			sum += x
			sumSq += x * x
		}
		m := sum / n
		v := sumSq/n - m*m
		// Mean and variance are both `mean`; 5-sigma tolerance on the mean.
		tol := 5 * math.Sqrt(mean/n)
		if math.Abs(m-mean) > tol+1e-9 {
			t.Errorf("Poisson(%g): sample mean %g, want within %g", mean, m, tol)
		}
		if mean >= 0.5 && (v < mean*0.8 || v > mean*1.2) {
			t.Errorf("Poisson(%g): sample variance %g, want ~%g", mean, v, mean)
		}
	}
}
