// Package xrand provides small, fast, deterministic pseudo-random number
// generators for reproducible simulation experiments.
//
// The package deliberately avoids math/rand's global state: every consumer
// owns an explicit *Rand seeded from a 64-bit seed, so that a simulation
// configuration (seed included) fully determines its outcome. The core
// generator is xoshiro256**, seeded through splitmix64 as recommended by its
// authors.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; give each goroutine its own Rand
// (see Split).
type Rand struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds produce
// well-separated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but keep the guard for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator whose stream is independent of r's
// continued use. It is the supported way to derive per-component
// generators from a master seed.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns 32 uniformly random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the high 64 bits of the 128-bit product.
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= (-n)%n {
			return hi
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p. Values of p outside [0,1]
// are clamped.
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success, i.e. a sample from the geometric distribution on {0, 1, 2, ...}.
// It is the building block for sparse fault sampling: the index of the next
// faulty cell in a long run of cells is the current index plus
// Geometric(p) + 1. For p <= 0 it returns math.MaxInt. It panics if p > 1
// is combined with a non-finite result; p >= 1 returns 0.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return math.MaxInt
	}
	u := r.Float64()
	// Avoid log(0).
	for u == 0 {
		u = r.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g > float64(math.MaxInt/2) {
		return math.MaxInt / 2
	}
	return int(g)
}

// Binomial returns a sample from Binomial(n, p) using geometric skipping,
// which is efficient when n*p is small (the regime of SRAM fault sampling).
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	count := 0
	// Skip from one success to the next.
	for i := r.Geometric(p); i < n; i += r.Geometric(p) + 1 {
		count++
	}
	return count
}

// Poisson returns a sample from Poisson(mean) by Knuth's product method,
// which is exact and allocation-free in the small-mean regime of per-epoch
// transient-strike counts. For larger means it splits the draw into chunks
// (Poisson additivity) to keep the running product away from underflow.
// mean <= 0 returns 0.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 || math.IsNaN(mean) {
		return 0
	}
	count := 0
	for mean > 0 {
		chunk := mean
		if chunk > 500 {
			chunk = 500
		}
		mean -= chunk
		limit := math.Exp(-chunk)
		p := 1.0
		k := -1
		for {
			k++
			p *= r.Float64()
			if p <= limit {
				break
			}
		}
		count += k
	}
	return count
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct values drawn uniformly from [0, n) in no
// particular order. It panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample called with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
