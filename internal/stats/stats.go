// Package stats collects named counters and derived metrics for simulation
// runs, with stable deterministic rendering.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a set of named uint64 counters. The zero value is ready to
// use.
type Counters struct {
	m map[string]uint64
}

// Add increments a counter by n.
func (c *Counters) Add(name string, n uint64) {
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[name] += n
}

// Inc increments a counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns a counter's value (zero if never touched).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Snapshot returns a copy of the current counter values, for computing
// per-phase deltas.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Since returns the counter's increase since a snapshot.
func (c *Counters) Since(snap map[string]uint64, name string) uint64 {
	return c.m[name] - snap[name]
}

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	var sb strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&sb, "%-40s %12d\n", n, c.m[n])
	}
	return sb.String()
}

// MPKI computes misses per kilo-instruction.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}

// Ratio returns a/b as float (0 when b is 0).
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
