// Package stats collects named counters and derived metrics for simulation
// runs, with stable deterministic rendering.
//
// Counter names are interned in a package-level registry: each distinct name
// resolves once to a dense Counter index, and hot paths increment a slice
// slot through a pre-resolved handle instead of hashing a string per event.
// The string-keyed API (Add/Inc/Get/Since/Names/String) remains as a thin
// view over the same storage for tests and reports.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter is an interned handle for a counter name. Handles are process-wide:
// the same name yields the same handle in every Counters instance. Obtain one
// with Intern (typically once, at component construction).
type Counter int32

// The registry maps names to dense indices. Interning takes a write lock,
// reads of the name table take a read lock; per-event increments touch only
// the owning Counters value and never the registry.
var registry struct {
	sync.RWMutex
	index map[string]Counter
	names []string
}

// Intern returns the dense handle for name, registering it on first use.
// Safe for concurrent use.
func Intern(name string) Counter {
	registry.RLock()
	c, ok := registry.index[name]
	registry.RUnlock()
	if ok {
		return c
	}
	registry.Lock()
	defer registry.Unlock()
	if c, ok := registry.index[name]; ok {
		return c
	}
	if registry.index == nil {
		registry.index = make(map[string]Counter, 64)
	}
	c = Counter(len(registry.names))
	registry.index[name] = c
	registry.names = append(registry.names, name)
	return c
}

// CounterName returns the name a handle was interned under.
func CounterName(c Counter) string {
	registry.RLock()
	defer registry.RUnlock()
	return registry.names[c]
}

// NumCounters returns how many distinct names have been interned.
func NumCounters() int {
	registry.RLock()
	defer registry.RUnlock()
	return len(registry.names)
}

func lookup(name string) (Counter, bool) {
	registry.RLock()
	c, ok := registry.index[name]
	registry.RUnlock()
	return c, ok
}

// Counters is a set of named uint64 counters. The zero value is ready to
// use. A Counters value is not safe for concurrent use; distinct instances
// are independent and may be used from different goroutines.
type Counters struct {
	vals []uint64
}

// grow extends the dense value slice to cover handle c. Out of the hot path:
// it runs at most once per (instance, new high handle) pair.
func (c *Counters) grow(h Counter) {
	n := NumCounters()
	if n <= int(h) {
		n = int(h) + 1
	}
	vals := make([]uint64, n)
	copy(vals, c.vals)
	c.vals = vals
}

// AddC increments the counter behind an interned handle by n.
func (c *Counters) AddC(h Counter, n uint64) {
	if int(h) >= len(c.vals) {
		c.grow(h)
	}
	c.vals[h] += n
}

// IncC increments the counter behind an interned handle by one.
func (c *Counters) IncC(h Counter) { c.AddC(h, 1) }

// GetC returns the value behind an interned handle.
func (c *Counters) GetC(h Counter) uint64 {
	if int(h) >= len(c.vals) {
		return 0
	}
	return c.vals[h]
}

// Reset zeroes every counter, keeping the storage.
func (c *Counters) Reset() {
	for i := range c.vals {
		c.vals[i] = 0
	}
}

// MergeFrom adds every counter of src into c. Handles are process-wide, so
// the sum is well-defined across instances; merging a fixed sequence of
// instances is deterministic regardless of which goroutines incremented
// them (addition commutes).
func (c *Counters) MergeFrom(src *Counters) {
	if len(src.vals) > len(c.vals) {
		c.grow(Counter(len(src.vals) - 1))
	}
	for i, v := range src.vals {
		if v != 0 {
			c.vals[i] += v
		}
	}
}

// Add increments a counter by n.
func (c *Counters) Add(name string, n uint64) { c.AddC(Intern(name), n) }

// Inc increments a counter by one.
func (c *Counters) Inc(name string) { c.AddC(Intern(name), 1) }

// Get returns a counter's value (zero if never touched).
func (c *Counters) Get(name string) uint64 {
	h, ok := lookup(name)
	if !ok {
		return 0
	}
	return c.GetC(h)
}

// Snapshot returns a copy of the current nonzero counter values, for
// computing per-phase deltas.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, len(c.vals))
	for h, v := range c.vals {
		if v != 0 {
			out[CounterName(Counter(h))] = v
		}
	}
	return out
}

// Since returns the counter's increase since a snapshot.
func (c *Counters) Since(snap map[string]uint64, name string) uint64 {
	return c.Get(name) - snap[name]
}

// Names returns the names of all nonzero counters in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.vals))
	for h, v := range c.vals {
		if v != 0 {
			names = append(names, CounterName(Counter(h)))
		}
	}
	sort.Strings(names)
	return names
}

// String renders the counters one per line, sorted by name.
func (c *Counters) String() string {
	var sb strings.Builder
	for _, n := range c.Names() {
		fmt.Fprintf(&sb, "%-40s %12d\n", n, c.Get(n))
	}
	return sb.String()
}

// MPKI computes misses per kilo-instruction.
func MPKI(misses, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(misses) * 1000 / float64(instructions)
}

// Ratio returns a/b as float (0 when b is 0).
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
