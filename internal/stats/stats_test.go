package stats

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCountersZeroValue(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("untouched counter nonzero")
	}
	c.Inc("x")
	c.Add("x", 4)
	if c.Get("x") != 5 {
		t.Fatalf("x = %d", c.Get("x"))
	}
}

func TestNamesSorted(t *testing.T) {
	var c Counters
	c.Inc("zeta")
	c.Inc("alpha")
	c.Inc("mid")
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("names %v", names)
	}
}

func TestStringContainsAll(t *testing.T) {
	var c Counters
	c.Add("hits", 10)
	c.Add("misses", 3)
	s := c.String()
	if !strings.Contains(s, "hits") || !strings.Contains(s, "misses") {
		t.Fatalf("render missing counters: %q", s)
	}
	if strings.Index(s, "hits") > strings.Index(s, "misses") {
		t.Fatal("render not sorted")
	}
}

func TestHandleStringParity(t *testing.T) {
	h := Intern("parity.test.counter")
	if Intern("parity.test.counter") != h {
		t.Fatal("re-interning the same name returned a different handle")
	}
	if CounterName(h) != "parity.test.counter" {
		t.Fatalf("CounterName = %q", CounterName(h))
	}
	var c Counters
	c.AddC(h, 7)
	c.Inc("parity.test.counter")
	if c.Get("parity.test.counter") != 8 || c.GetC(h) != 8 {
		t.Fatalf("handle/string views disagree: %d vs %d",
			c.Get("parity.test.counter"), c.GetC(h))
	}
}

func TestSnapshotSince(t *testing.T) {
	var c Counters
	c.Add("phase.work", 10)
	snap := c.Snapshot()
	c.Add("phase.work", 5)
	c.Add("phase.other", 2)
	if c.Since(snap, "phase.work") != 5 {
		t.Fatalf("Since(work) = %d", c.Since(snap, "phase.work"))
	}
	if c.Since(snap, "phase.other") != 2 {
		t.Fatalf("Since(other) = %d", c.Since(snap, "phase.other"))
	}
}

func TestUnknownHandleGetC(t *testing.T) {
	var c Counters
	h := Intern("never.touched.in.this.instance")
	if c.GetC(h) != 0 {
		t.Fatal("GetC on untouched instance nonzero")
	}
}

// TestConcurrentIntern exercises the registry under -race: many goroutines
// interning overlapping names while separate Counters instances increment.
func TestConcurrentIntern(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var c Counters
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("race.%d", i%17)
				h := Intern(name)
				c.IncC(h)
				c.Add(name, 1)
			}
			if c.Get("race.0") == 0 {
				t.Error("lost increments")
			}
		}(g)
	}
	wg.Wait()
}

// TestSteadyStateAddAllocFree verifies the hot-path increment does not
// allocate once the value slice covers the handle.
func TestSteadyStateAddAllocFree(t *testing.T) {
	h := Intern("alloc.test")
	var c Counters
	c.IncC(h) // grow once
	allocs := testing.AllocsPerRun(100, func() { c.AddC(h, 1) })
	if allocs != 0 {
		t.Fatalf("AddC allocates %v per op in steady state", allocs)
	}
}

func BenchmarkIncHandle(b *testing.B) {
	h := Intern("bench.handle")
	var c Counters
	c.IncC(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IncC(h)
	}
}

func BenchmarkIncString(b *testing.B) {
	var c Counters
	c.Inc("bench.string")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc("bench.string")
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(50, 1000); got != 50 {
		t.Fatalf("MPKI = %v", got)
	}
	if got := MPKI(1, 0); got != 0 {
		t.Fatalf("MPKI with zero instructions = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
}
