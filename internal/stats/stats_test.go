package stats

import (
	"strings"
	"testing"
)

func TestCountersZeroValue(t *testing.T) {
	var c Counters
	if c.Get("x") != 0 {
		t.Fatal("untouched counter nonzero")
	}
	c.Inc("x")
	c.Add("x", 4)
	if c.Get("x") != 5 {
		t.Fatalf("x = %d", c.Get("x"))
	}
}

func TestNamesSorted(t *testing.T) {
	var c Counters
	c.Inc("zeta")
	c.Inc("alpha")
	c.Inc("mid")
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[1] != "mid" || names[2] != "zeta" {
		t.Fatalf("names %v", names)
	}
}

func TestStringContainsAll(t *testing.T) {
	var c Counters
	c.Add("hits", 10)
	c.Add("misses", 3)
	s := c.String()
	if !strings.Contains(s, "hits") || !strings.Contains(s, "misses") {
		t.Fatalf("render missing counters: %q", s)
	}
	if strings.Index(s, "hits") > strings.Index(s, "misses") {
		t.Fatal("render not sorted")
	}
}

func TestMPKI(t *testing.T) {
	if got := MPKI(50, 1000); got != 50 {
		t.Fatalf("MPKI = %v", got)
	}
	if got := MPKI(1, 0); got != 0 {
		t.Fatalf("MPKI with zero instructions = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio wrong")
	}
}
