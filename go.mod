module killi

go 1.22
