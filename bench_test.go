// Benchmark harness: one benchmark per figure and table of the paper's
// evaluation. Each benchmark regenerates its experiment's data and, on the
// first iteration, prints the rows/series the paper reports, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation (with trace lengths sized for a laptop;
// use cmd/killi-sim -requests N for longer steady-state runs).
package killi_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"killi/internal/analytic"
	"killi/internal/bitvec"
	"killi/internal/dvfs"
	"killi/internal/experiments"
	"killi/internal/faultmodel"
	"killi/internal/gpu"
	"killi/internal/killi"
	"killi/internal/protection"
	"killi/internal/workload"
	"killi/internal/xrand"
)

// pcell adapts the calibrated fault model for the analytic tables.
func pcell(v float64) float64 {
	return faultmodel.Default().CellFailureProb(v, 1.0)
}

// BenchmarkFig1CellFailure regenerates Figure 1: per-cell failure
// probability vs normalized voltage for both silicon test kinds and two
// frequencies.
func BenchmarkFig1CellFailure(b *testing.B) {
	m := faultmodel.Default()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		var rows int
		for v := 0.50; v <= 1.0001; v += 0.025 {
			_ = m.TestFailureProb(faultmodel.ReadDisturb, v, 1.0)
			_ = m.TestFailureProb(faultmodel.Writeability, v, 1.0)
			_ = m.TestFailureProb(faultmodel.ReadDisturb, v, 0.4)
			_ = m.TestFailureProb(faultmodel.Writeability, v, 0.4)
			rows++
		}
		once.Do(func() {
			b.Logf("Figure 1: %d voltage points; P_cell(0.625, 1GHz) = %.2e",
				rows, m.CellFailureProb(0.625, 1.0))
		})
	}
}

// BenchmarkFig2LineDistribution regenerates Figure 2: the 0 / 1 / ≥2
// fault-per-line split, both analytic and sampled over the paper's 2 MB L2.
func BenchmarkFig2LineDistribution(b *testing.B) {
	m := faultmodel.Default()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		fm := faultmodel.NewMap(xrand.New(1), m, 32768, bitvec.LineBits, 0.575, 1.0)
		zero, one, two := fm.CountAtVoltage(0.625)
		once.Do(func() {
			d := m.LineFaultDist(bitvec.LineBits, 0.625, 1.0)
			b.Logf("Figure 2 @0.625xVDD: analytic %.2f/%.2f/%.2f %%, sampled %d/%d/%d lines",
				d.P0*100, d.P1*100, d.P2Plus*100, zero, one, two)
		})
	}
}

// sweep runs the Figure 4/5 experiment once with benchmark-scale traces.
func sweep(b *testing.B, workloads []string) []experiments.Row {
	b.Helper()
	rows, err := experiments.Run(context.Background(), experiments.Config{
		Voltage:       0.625,
		RequestsPerCU: 2500,
		Seed:          1,
		Workloads:     workloads,
		Parallelism:   -1, // all cores; results identical to serial
	})
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// benchWorkloads is the Figure 4/5 subset used at benchmark scale: two
// compute-bound and two memory-bound, including both paper-named ones.
var benchWorkloads = []string{"nekbone", "quicksilver", "xsbench", "fft"}

// BenchmarkFig4ExecutionTime regenerates Figure 4 rows: normalized kernel
// execution time per workload and scheme at 0.625×VDD.
func BenchmarkFig4ExecutionTime(b *testing.B) {
	var once sync.Once
	for i := 0; i < b.N; i++ {
		rows := sweep(b, benchWorkloads)
		once.Do(func() {
			for _, r := range rows {
				line := fmt.Sprintf("Figure 4 %-12s (%s):", r.Workload, r.Class)
				for _, n := range r.SchemeNames() {
					line += fmt.Sprintf(" %s=%.3f", n, r.Normalized[n])
				}
				b.Log(line)
			}
		})
	}
}

// BenchmarkFig5MPKI regenerates Figure 5 rows: L2 MPKI per workload and
// scheme, grouped by the compute-/memory-bound split.
func BenchmarkFig5MPKI(b *testing.B) {
	var once sync.Once
	for i := 0; i < b.N; i++ {
		rows := sweep(b, benchWorkloads)
		once.Do(func() {
			for _, r := range rows {
				line := fmt.Sprintf("Figure 5 %-12s (%s): baseline=%.1f", r.Workload, r.Class, r.BaselineMPKI)
				for _, n := range r.SchemeNames() {
					line += fmt.Sprintf(" %s=%.1f", n, r.MPKI[n])
				}
				b.Log(line)
			}
		})
	}
}

// BenchmarkFig6Coverage regenerates Figure 6: classification coverage per
// technique across voltages (§5.3 closed forms).
func BenchmarkFig6Coverage(b *testing.B) {
	vs := []float64{0.50, 0.525, 0.55, 0.575, 0.60, 0.625, 0.65, 0.675, 0.70}
	var once sync.Once
	for i := 0; i < b.N; i++ {
		curve := analytic.CoverageCurve(vs, pcell)
		once.Do(func() {
			for _, pt := range curve {
				b.Logf("Figure 6 v=%.3f: killi=%.4f flair=%.4f secded=%.4f dected=%.4f msecc=%.4f",
					pt.Voltage, pt.Killi, pt.FLAIR, pt.SECDED, pt.DECTED, pt.MSECC)
			}
		})
	}
}

// BenchmarkTable4KilliECCArea regenerates Table 4: Killi storage with
// stronger ECC codes, normalized to SECDED-per-line.
func BenchmarkTable4KilliECCArea(b *testing.B) {
	g := analytic.PaperL2()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		rows := analytic.Table4(g)
		once.Do(func() {
			for _, row := range rows {
				b.Logf("Table 4 %s: 1:256=%.2f 1:128=%.2f 1:64=%.2f 1:32=%.2f 1:16=%.2f",
					row.Code, row.Ratios[256], row.Ratios[128], row.Ratios[64], row.Ratios[32], row.Ratios[16])
			}
		})
	}
}

// BenchmarkTable5AreaComparison regenerates Table 5: the cross-scheme area
// comparison.
func BenchmarkTable5AreaComparison(b *testing.B) {
	g := analytic.PaperL2()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		entries := analytic.Table5(g)
		once.Do(func() {
			for _, e := range entries {
				b.Logf("Table 5 %-12s: ratio=%.2f pct-over-L2=%.2f%%", e.Scheme, e.Ratio, e.PctOverL2)
			}
		})
	}
}

// BenchmarkTable6Power regenerates Table 6: normalized power at 0.625×VDD.
func BenchmarkTable6Power(b *testing.B) {
	var once sync.Once
	for i := 0; i < b.N; i++ {
		entries := analytic.Table6(0.625)
		once.Do(func() {
			for _, e := range entries {
				b.Logf("Table 6 %-12s: power=%.1f%% (saving %.1f%%)",
					e.Scheme, e.Power, analytic.PowerSavingVsNominal(e.Power))
			}
		})
	}
}

// BenchmarkTable7LowVmin regenerates Table 7: Killi-with-OLSC versus
// MS-ECC at 0.600 and 0.575×VDD.
func BenchmarkTable7LowVmin(b *testing.B) {
	g := analytic.PaperL2()
	var once sync.Once
	for i := 0; i < b.N; i++ {
		rows := analytic.Table7(g, pcell)
		once.Do(func() {
			for _, r := range rows {
				b.Logf("Table 7 v=%.3f: capacity=%.2f%% eccratio=1:%d killi/msecc=%.2f",
					r.Voltage, r.CapacityTarget, r.ECCRatio, r.KilliOverMSECC)
			}
		})
	}
}

// BenchmarkAblationEvictionTraining quantifies the design choice DESIGN.md
// calls out: Killi trains DFH bits on evictions (§4.4), including
// ECC-cache contention evictions. Disabling that training leaves
// classification to load hits only, and the number of lines reaching a
// stable state collapses.
func BenchmarkAblationEvictionTraining(b *testing.B) {
	run := func(cfg killi.Config) gpu.Result {
		g := gpu.DefaultConfig()
		g.Voltage = 0.625
		w, err := workload.ByName("xsbench")
		if err != nil {
			b.Fatal(err)
		}
		return gpu.New(g, func() protection.Scheme { return killi.New(cfg) }).Run(w.Traces(g.CUs, 2500, 1))
	}
	trained := func(r gpu.Result) uint64 {
		return r.Counters.Get("killi.dfh_b'01_to_b'00") + r.Counters.Get("killi.dfh_b'01_to_b'10")
	}
	var once sync.Once
	for i := 0; i < b.N; i++ {
		with := run(killi.Config{Ratio: 64})
		without := run(killi.Config{Ratio: 64, NoEvictionTraining: true})
		once.Do(func() {
			b.Logf("Ablation eviction-training: classified %d lines with it, %d without; cycles %d vs %d",
				trained(with), trained(without), with.Cycles, without.Cycles)
		})
	}
}

// BenchmarkAblationAllocationPriority quantifies §4.4's b'01 > b'00 > b'10
// allocation priority against plain invalid-first LRU.
func BenchmarkAblationAllocationPriority(b *testing.B) {
	run := func(cfg killi.Config) gpu.Result {
		g := gpu.DefaultConfig()
		g.Voltage = 0.625
		w, err := workload.ByName("miniamr")
		if err != nil {
			b.Fatal(err)
		}
		return gpu.New(g, func() protection.Scheme { return killi.New(cfg) }).Run(w.Traces(g.CUs, 2500, 1))
	}
	var once sync.Once
	for i := 0; i < b.N; i++ {
		pri := run(killi.Config{Ratio: 64})
		lru := run(killi.Config{Ratio: 64, PlainLRUAllocation: true})
		once.Do(func() {
			b.Logf("Ablation allocation-priority: cycles %d (priority) vs %d (plain LRU)",
				pri.Cycles, lru.Cycles)
		})
	}
}

// BenchmarkWorkloadGeneration measures trace generation throughput for the
// full ten-workload catalog.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range workload.Catalog() {
			_ = w.Trace(0, 1000, uint64(i))
		}
	}
}

// BenchmarkTransitionLatency quantifies the paper's deployment argument
// (§1): the voltage-transition cost of MBIST-based schemes versus Killi's
// zero-latency DFH reset, over a bursty DVFS schedule.
func BenchmarkTransitionLatency(b *testing.B) {
	w, err := workload.ByName("lulesh")
	if err != nil {
		b.Fatal(err)
	}
	cfg := gpu.DefaultConfig()
	cfg.RefVoltage = 0.6
	mk := func() []dvfs.Phase {
		var phases []dvfs.Phase
		for i := 0; i < 4; i++ {
			phases = append(phases,
				dvfs.Phase{Voltage: 1.0, Kernel: w.Traces(cfg.CUs, 800, uint64(i))},
				dvfs.Phase{Voltage: 0.625, Kernel: w.Traces(cfg.CUs, 800, uint64(i)+50)})
		}
		return phases
	}
	var once sync.Once
	for i := 0; i < b.N; i++ {
		secded := protection.NewSECDEDPerLine()
		repS := dvfs.RunSchedule(gpu.New(cfg, func() protection.Scheme { return protection.NewSECDEDPerLine() }), secded, dvfs.DefaultMBIST(), mk())
		k := killi.New(killi.Config{Ratio: 64})
		repK := dvfs.RunSchedule(gpu.New(cfg, func() protection.Scheme { return killi.New(killi.Config{Ratio: 64}) }), k, dvfs.DefaultMBIST(), mk())
		once.Do(func() {
			b.Logf("Transition latency: secded-per-line %s", repS)
			b.Logf("Transition latency: killi-1:64      %s", repK)
		})
	}
}

// BenchmarkAblationECCIndexing compares the paper's modulo ECC cache
// indexing against an XOR-folded hash: hashing spreads which L2 sets
// alias onto the same ECC set, changing contention-eviction patterns.
func BenchmarkAblationECCIndexing(b *testing.B) {
	run := func(cfg killi.Config) gpu.Result {
		g := gpu.DefaultConfig()
		g.Voltage = 0.625
		w, err := workload.ByName("xsbench")
		if err != nil {
			b.Fatal(err)
		}
		return gpu.New(g, func() protection.Scheme { return killi.New(cfg) }).Run(w.Traces(g.CUs, 2500, 1))
	}
	var once sync.Once
	for i := 0; i < b.N; i++ {
		mod := run(killi.Config{Ratio: 64})
		xor := run(killi.Config{Ratio: 64, XORHashECCIndex: true})
		once.Do(func() {
			b.Logf("Ablation ECC indexing: modulo %d contention evictions / %d cycles; xor %d / %d",
				mod.Counters.Get("killi.ecc_contention_evictions"), mod.Cycles,
				xor.Counters.Get("killi.ecc_contention_evictions"), xor.Cycles)
		})
	}
}
