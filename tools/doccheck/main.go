// doccheck fails (exit 1) when any Go package in the repository lacks a
// package-level doc comment. It is part of the tier-1 gate (`make doccheck`),
// so godoc coverage is enforced the same way tests are: a new package cannot
// land undocumented.
//
// A package is documented when at least one of its non-test files carries a
// doc comment on the package clause. Test-only packages (*_test) and
// testdata trees are exempt.
//
// Usage:
//
//	go run ./tools/doccheck [root]
//
// root defaults to ".". The tool walks every directory, parses the package
// clause and its comments only (fast; no type checking), and prints one line
// per undocumented package.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	undocumented, err := run(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	if len(undocumented) > 0 {
		for _, dir := range undocumented {
			fmt.Printf("doccheck: package in %s has no package doc comment\n", dir)
		}
		os.Exit(1)
	}
}

// run returns the directories holding packages without a doc comment.
func run(root string) ([]string, error) {
	// dirs maps a directory to whether any of its non-test files documents
	// the package; presence with value false means Go files were seen but
	// no doc comment yet.
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (len(name) > 1 && (name[0] == '.' || name[0] == '_')) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %v", path, err)
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			return nil
		}
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			dirs[dir] = true
		} else if _, ok := dirs[dir]; !ok {
			dirs[dir] = false
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var undocumented []string
	for dir, ok := range dirs {
		if !ok {
			undocumented = append(undocumented, dir)
		}
	}
	sort.Strings(undocumented)
	return undocumented, nil
}
